# Empty compiler generated dependencies file for multimodal_transit.
# This may be replaced when dependencies are built.
