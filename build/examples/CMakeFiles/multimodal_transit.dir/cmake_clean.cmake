file(REMOVE_RECURSE
  "CMakeFiles/multimodal_transit.dir/multimodal_transit.cpp.o"
  "CMakeFiles/multimodal_transit.dir/multimodal_transit.cpp.o.d"
  "multimodal_transit"
  "multimodal_transit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimodal_transit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
