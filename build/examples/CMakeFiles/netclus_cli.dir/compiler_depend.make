# Empty compiler generated dependencies file for netclus_cli.
# This may be replaced when dependencies are built.
