file(REMOVE_RECURSE
  "CMakeFiles/netclus_cli.dir/netclus_cli.cpp.o"
  "CMakeFiles/netclus_cli.dir/netclus_cli.cpp.o.d"
  "netclus_cli"
  "netclus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netclus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
