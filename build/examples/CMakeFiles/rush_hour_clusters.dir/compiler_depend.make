# Empty compiler generated dependencies file for rush_hour_clusters.
# This may be replaced when dependencies are built.
