file(REMOVE_RECURSE
  "CMakeFiles/rush_hour_clusters.dir/rush_hour_clusters.cpp.o"
  "CMakeFiles/rush_hour_clusters.dir/rush_hour_clusters.cpp.o.d"
  "rush_hour_clusters"
  "rush_hour_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_hour_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
