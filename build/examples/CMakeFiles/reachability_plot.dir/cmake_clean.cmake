file(REMOVE_RECURSE
  "CMakeFiles/reachability_plot.dir/reachability_plot.cpp.o"
  "CMakeFiles/reachability_plot.dir/reachability_plot.cpp.o.d"
  "reachability_plot"
  "reachability_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
