# Empty compiler generated dependencies file for dendrogram_explorer.
# This may be replaced when dependencies are built.
