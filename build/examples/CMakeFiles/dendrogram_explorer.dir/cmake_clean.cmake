file(REMOVE_RECURSE
  "CMakeFiles/dendrogram_explorer.dir/dendrogram_explorer.cpp.o"
  "CMakeFiles/dendrogram_explorer.dir/dendrogram_explorer.cpp.o.d"
  "dendrogram_explorer"
  "dendrogram_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dendrogram_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
