file(REMOVE_RECURSE
  "CMakeFiles/restaurant_hotspots.dir/restaurant_hotspots.cpp.o"
  "CMakeFiles/restaurant_hotspots.dir/restaurant_hotspots.cpp.o.d"
  "restaurant_hotspots"
  "restaurant_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restaurant_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
