# Empty dependencies file for restaurant_hotspots.
# This may be replaced when dependencies are built.
