file(REMOVE_RECURSE
  "CMakeFiles/disk_resident.dir/disk_resident.cpp.o"
  "CMakeFiles/disk_resident.dir/disk_resident.cpp.o.d"
  "disk_resident"
  "disk_resident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_resident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
