# Empty dependencies file for disk_resident.
# This may be replaced when dependencies are built.
