# Empty dependencies file for ablation_method_io.
# This may be replaced when dependencies are built.
