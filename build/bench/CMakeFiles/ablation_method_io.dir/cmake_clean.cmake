file(REMOVE_RECURSE
  "CMakeFiles/ablation_method_io.dir/ablation_method_io.cpp.o"
  "CMakeFiles/ablation_method_io.dir/ablation_method_io.cpp.o.d"
  "ablation_method_io"
  "ablation_method_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_method_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
