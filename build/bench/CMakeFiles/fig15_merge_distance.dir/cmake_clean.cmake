file(REMOVE_RECURSE
  "CMakeFiles/fig15_merge_distance.dir/fig15_merge_distance.cpp.o"
  "CMakeFiles/fig15_merge_distance.dir/fig15_merge_distance.cpp.o.d"
  "fig15_merge_distance"
  "fig15_merge_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_merge_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
