# Empty dependencies file for fig15_merge_distance.
# This may be replaced when dependencies are built.
