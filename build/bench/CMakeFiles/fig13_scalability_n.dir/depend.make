# Empty dependencies file for fig13_scalability_n.
# This may be replaced when dependencies are built.
