file(REMOVE_RECURSE
  "CMakeFiles/fig13_scalability_n.dir/fig13_scalability_n.cpp.o"
  "CMakeFiles/fig13_scalability_n.dir/fig13_scalability_n.cpp.o.d"
  "fig13_scalability_n"
  "fig13_scalability_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_scalability_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
