file(REMOVE_RECURSE
  "CMakeFiles/table1_kmedoids.dir/table1_kmedoids.cpp.o"
  "CMakeFiles/table1_kmedoids.dir/table1_kmedoids.cpp.o.d"
  "table1_kmedoids"
  "table1_kmedoids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_kmedoids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
