# Empty dependencies file for table1_kmedoids.
# This may be replaced when dependencies are built.
