file(REMOVE_RECURSE
  "CMakeFiles/fig11_effectiveness.dir/fig11_effectiveness.cpp.o"
  "CMakeFiles/fig11_effectiveness.dir/fig11_effectiveness.cpp.o.d"
  "fig11_effectiveness"
  "fig11_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
