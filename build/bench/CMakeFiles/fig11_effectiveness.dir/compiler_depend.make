# Empty compiler generated dependencies file for fig11_effectiveness.
# This may be replaced when dependencies are built.
