file(REMOVE_RECURSE
  "CMakeFiles/table2_methods.dir/table2_methods.cpp.o"
  "CMakeFiles/table2_methods.dir/table2_methods.cpp.o.d"
  "table2_methods"
  "table2_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
