file(REMOVE_RECURSE
  "CMakeFiles/fig14_scalability_v.dir/fig14_scalability_v.cpp.o"
  "CMakeFiles/fig14_scalability_v.dir/fig14_scalability_v.cpp.o.d"
  "fig14_scalability_v"
  "fig14_scalability_v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_scalability_v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
