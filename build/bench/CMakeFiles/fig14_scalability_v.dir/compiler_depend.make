# Empty compiler generated dependencies file for fig14_scalability_v.
# This may be replaced when dependencies are built.
