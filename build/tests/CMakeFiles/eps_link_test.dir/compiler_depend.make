# Empty compiler generated dependencies file for eps_link_test.
# This may be replaced when dependencies are built.
