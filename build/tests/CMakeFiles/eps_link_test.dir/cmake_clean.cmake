file(REMOVE_RECURSE
  "CMakeFiles/eps_link_test.dir/eps_link_test.cc.o"
  "CMakeFiles/eps_link_test.dir/eps_link_test.cc.o.d"
  "eps_link_test"
  "eps_link_test.pdb"
  "eps_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eps_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
