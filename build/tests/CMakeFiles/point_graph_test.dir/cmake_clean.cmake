file(REMOVE_RECURSE
  "CMakeFiles/point_graph_test.dir/point_graph_test.cc.o"
  "CMakeFiles/point_graph_test.dir/point_graph_test.cc.o.d"
  "point_graph_test"
  "point_graph_test.pdb"
  "point_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
