file(REMOVE_RECURSE
  "CMakeFiles/network_store_test.dir/network_store_test.cc.o"
  "CMakeFiles/network_store_test.dir/network_store_test.cc.o.d"
  "network_store_test"
  "network_store_test.pdb"
  "network_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
