# Empty compiler generated dependencies file for network_store_test.
# This may be replaced when dependencies are built.
