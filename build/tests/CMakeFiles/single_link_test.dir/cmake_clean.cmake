file(REMOVE_RECURSE
  "CMakeFiles/single_link_test.dir/single_link_test.cc.o"
  "CMakeFiles/single_link_test.dir/single_link_test.cc.o.d"
  "single_link_test"
  "single_link_test.pdb"
  "single_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
