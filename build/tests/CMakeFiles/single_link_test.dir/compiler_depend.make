# Empty compiler generated dependencies file for single_link_test.
# This may be replaced when dependencies are built.
