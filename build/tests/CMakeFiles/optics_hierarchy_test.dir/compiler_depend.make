# Empty compiler generated dependencies file for optics_hierarchy_test.
# This may be replaced when dependencies are built.
