file(REMOVE_RECURSE
  "CMakeFiles/optics_hierarchy_test.dir/optics_hierarchy_test.cc.o"
  "CMakeFiles/optics_hierarchy_test.dir/optics_hierarchy_test.cc.o.d"
  "optics_hierarchy_test"
  "optics_hierarchy_test.pdb"
  "optics_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optics_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
