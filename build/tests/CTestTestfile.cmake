# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/bptree_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/dijkstra_test[1]_include.cmake")
include("/root/repo/build/tests/network_store_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/kmedoids_test[1]_include.cmake")
include("/root/repo/build/tests/eps_link_test[1]_include.cmake")
include("/root/repo/build/tests/dbscan_test[1]_include.cmake")
include("/root/repo/build/tests/single_link_test[1]_include.cmake")
include("/root/repo/build/tests/core_util_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/point_graph_test[1]_include.cmake")
include("/root/repo/build/tests/text_io_test[1]_include.cmake")
include("/root/repo/build/tests/optics_hierarchy_test[1]_include.cmake")
