file(REMOVE_RECURSE
  "libnetclus.a"
)
