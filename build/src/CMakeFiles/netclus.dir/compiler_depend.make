# Empty compiler generated dependencies file for netclus.
# This may be replaced when dependencies are built.
