
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/random.cc" "src/CMakeFiles/netclus.dir/common/random.cc.o" "gcc" "src/CMakeFiles/netclus.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/netclus.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/netclus.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/netclus.dir/common/status.cc.o" "gcc" "src/CMakeFiles/netclus.dir/common/status.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/CMakeFiles/netclus.dir/core/brute_force.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/brute_force.cc.o.d"
  "/root/repo/src/core/clustering.cc" "src/CMakeFiles/netclus.dir/core/clustering.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/clustering.cc.o.d"
  "/root/repo/src/core/dbscan.cc" "src/CMakeFiles/netclus.dir/core/dbscan.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/dbscan.cc.o.d"
  "/root/repo/src/core/dendrogram.cc" "src/CMakeFiles/netclus.dir/core/dendrogram.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/dendrogram.cc.o.d"
  "/root/repo/src/core/eps_link.cc" "src/CMakeFiles/netclus.dir/core/eps_link.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/eps_link.cc.o.d"
  "/root/repo/src/core/hierarchy_variants.cc" "src/CMakeFiles/netclus.dir/core/hierarchy_variants.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/hierarchy_variants.cc.o.d"
  "/root/repo/src/core/interesting_levels.cc" "src/CMakeFiles/netclus.dir/core/interesting_levels.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/interesting_levels.cc.o.d"
  "/root/repo/src/core/kmedoids.cc" "src/CMakeFiles/netclus.dir/core/kmedoids.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/kmedoids.cc.o.d"
  "/root/repo/src/core/optics.cc" "src/CMakeFiles/netclus.dir/core/optics.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/optics.cc.o.d"
  "/root/repo/src/core/parameter_selection.cc" "src/CMakeFiles/netclus.dir/core/parameter_selection.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/parameter_selection.cc.o.d"
  "/root/repo/src/core/point_graph.cc" "src/CMakeFiles/netclus.dir/core/point_graph.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/point_graph.cc.o.d"
  "/root/repo/src/core/single_link.cc" "src/CMakeFiles/netclus.dir/core/single_link.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/single_link.cc.o.d"
  "/root/repo/src/core/union_find.cc" "src/CMakeFiles/netclus.dir/core/union_find.cc.o" "gcc" "src/CMakeFiles/netclus.dir/core/union_find.cc.o.d"
  "/root/repo/src/eval/evaluation.cc" "src/CMakeFiles/netclus.dir/eval/evaluation.cc.o" "gcc" "src/CMakeFiles/netclus.dir/eval/evaluation.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/netclus.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/netclus.dir/eval/metrics.cc.o.d"
  "/root/repo/src/ext/multi_network.cc" "src/CMakeFiles/netclus.dir/ext/multi_network.cc.o" "gcc" "src/CMakeFiles/netclus.dir/ext/multi_network.cc.o.d"
  "/root/repo/src/ext/time_dependent.cc" "src/CMakeFiles/netclus.dir/ext/time_dependent.cc.o" "gcc" "src/CMakeFiles/netclus.dir/ext/time_dependent.cc.o.d"
  "/root/repo/src/ext/weight_functions.cc" "src/CMakeFiles/netclus.dir/ext/weight_functions.cc.o" "gcc" "src/CMakeFiles/netclus.dir/ext/weight_functions.cc.o.d"
  "/root/repo/src/gen/network_gen.cc" "src/CMakeFiles/netclus.dir/gen/network_gen.cc.o" "gcc" "src/CMakeFiles/netclus.dir/gen/network_gen.cc.o.d"
  "/root/repo/src/gen/workload_gen.cc" "src/CMakeFiles/netclus.dir/gen/workload_gen.cc.o" "gcc" "src/CMakeFiles/netclus.dir/gen/workload_gen.cc.o.d"
  "/root/repo/src/graph/dijkstra.cc" "src/CMakeFiles/netclus.dir/graph/dijkstra.cc.o" "gcc" "src/CMakeFiles/netclus.dir/graph/dijkstra.cc.o.d"
  "/root/repo/src/graph/network.cc" "src/CMakeFiles/netclus.dir/graph/network.cc.o" "gcc" "src/CMakeFiles/netclus.dir/graph/network.cc.o.d"
  "/root/repo/src/graph/network_distance.cc" "src/CMakeFiles/netclus.dir/graph/network_distance.cc.o" "gcc" "src/CMakeFiles/netclus.dir/graph/network_distance.cc.o.d"
  "/root/repo/src/graph/network_store.cc" "src/CMakeFiles/netclus.dir/graph/network_store.cc.o" "gcc" "src/CMakeFiles/netclus.dir/graph/network_store.cc.o.d"
  "/root/repo/src/graph/text_io.cc" "src/CMakeFiles/netclus.dir/graph/text_io.cc.o" "gcc" "src/CMakeFiles/netclus.dir/graph/text_io.cc.o.d"
  "/root/repo/src/storage/bptree.cc" "src/CMakeFiles/netclus.dir/storage/bptree.cc.o" "gcc" "src/CMakeFiles/netclus.dir/storage/bptree.cc.o.d"
  "/root/repo/src/storage/buffer_manager.cc" "src/CMakeFiles/netclus.dir/storage/buffer_manager.cc.o" "gcc" "src/CMakeFiles/netclus.dir/storage/buffer_manager.cc.o.d"
  "/root/repo/src/storage/paged_file.cc" "src/CMakeFiles/netclus.dir/storage/paged_file.cc.o" "gcc" "src/CMakeFiles/netclus.dir/storage/paged_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
