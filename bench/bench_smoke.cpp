// Bench smoke: a minutes-scale micro pass over the substrates the
// distance index accelerates, on a small generated network — the
// `run_all.sh bench-smoke` target. Each benchmark runs index-off and
// index-on, prints the settled-node / heap-pop reduction, and the whole
// table is emitted as machine-readable BENCH_smoke.json via
// BenchRecorder so CI can diff substrate work across revisions.
//
// netclus-lint: allow-legacy-entry — the index-on/off contrast times the
// engine overload directly with a prebuilt accelerator; routing through
// RunClustering would rebuild the index inside the measured section.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/kmedoids.h"
#include "graph/network_distance.h"
#include "index/distance_index.h"

using namespace netclus;
using namespace netclus::bench;

namespace {

// One timed sample; the counter delta accumulates into `total`.
template <typename Fn>
double Timed(TraversalCounters* total, const Fn& fn) {
  TraversalCounters before = LocalTraversalCounters();
  WallTimer timer;
  fn();
  double s = timer.ElapsedSeconds();
  *total = *total + (LocalTraversalCounters() - before);
  return s;
}

}  // namespace

int main() {
  // Small on purpose: the smoke pass proves the index reduces traversal
  // work and the JSON plumbing works, not absolute throughput.
  GeneratedNetwork gen = GenerateRoadNetwork({3000, 1.3, 0.3, 99});
  PointSet points =
      std::move(GenerateUniformPoints(gen.net, 600, 100)).value();
  InMemoryNetworkView view(gen.net, points);
  std::printf("bench-smoke: %u nodes, %zu edges, %u points\n",
              gen.net.num_nodes(), gen.net.num_edges(), points.size());

  IndexOptions io;
  io.enable = true;
  io.num_landmarks = 8;
  std::unique_ptr<DistanceIndex> index =
      std::move(DistanceIndex::Build(view, io, nullptr).value());

  // eps adapted to the network's scale: a fraction of the median sampled
  // point-pair distance, so the expansion covers a real neighborhood on
  // any generator parameterization.
  double eps;
  {
    NodeScratch scratch(gen.net.num_nodes());
    std::vector<double> sample;
    Rng rng(12);
    for (int i = 0; i < 64; ++i) {
      PointId p = static_cast<PointId>(rng.NextBounded(points.size()));
      PointId q = static_cast<PointId>(rng.NextBounded(points.size()));
      double d = PointNetworkDistance(view, p, q, &scratch);
      if (d < kInfDist) sample.push_back(d);
    }
    std::sort(sample.begin(), sample.end());
    eps = 0.25 * sample[sample.size() / 2];
  }
  std::printf("eps = %.3f\n", eps);

  BenchRecorder rec("smoke");
  PrintRow({"bench", "median_ms", "settled", "heap_pops"}, 22);

  auto report = [&](const char* name, const std::vector<double>& samples,
                    const TraversalCounters& t,
                    const std::vector<std::pair<std::string, double>>& extra =
                        {}) {
    rec.Add(name, samples, t, extra);
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    PrintRow({name, Fmt(sorted[sorted.size() / 2] * 1e3),
              std::to_string(t.settled_nodes), std::to_string(t.heap_pops)},
             22);
  };

  // Range queries, index off vs on (Voronoi floor pruning + landmark
  // expansion bound), over a deterministic center set.
  const int kQueries = 200;
  {
    TraversalWorkspace ws(gen.net.num_nodes());
    std::vector<RangeResult> out;
    for (int pass = 0; pass < 2; ++pass) {
      bool on = pass == 1;
      TraversalCounters total;
      std::vector<double> samples;
      Rng rng(6);
      uint64_t results = 0;
      for (int i = 0; i < kQueries; ++i) {
        PointId p = static_cast<PointId>(rng.NextBounded(points.size()));
        samples.push_back(Timed(&total, [&] {
          if (on) {
            RangeQuery(view, p, eps, &ws, index.get(), &out);
          } else {
            RangeQuery(view, p, eps, &ws, &out);
          }
        }));
        results += out.size();
      }
      report(on ? "range_query_on" : "range_query_off", samples, total,
             {{"avg_results", static_cast<double>(results) / kQueries}});
    }
  }

  // Point-to-point distances under a threshold cut (the k-medoids inner
  // question "is d(p, m) below the current best"), index off vs on
  // (cache hits + lower-bound cutoffs skip whole expansions).
  {
    NodeScratch scratch(gen.net.num_nodes());
    for (int pass = 0; pass < 2; ++pass) {
      bool on = pass == 1;
      TraversalCounters total;
      std::vector<double> samples;
      Rng rng(7);
      for (int i = 0; i < 2000; ++i) {
        PointId p = static_cast<PointId>(rng.NextBounded(points.size()));
        PointId q = static_cast<PointId>(rng.NextBounded(points.size()));
        samples.push_back(Timed(&total, [&] {
          double d = on ? PointNetworkDistance(view, p, q, &scratch,
                                               index.get(), eps)
                        : PointNetworkDistance(view, p, q, &scratch);
          (void)d;
        }));
      }
      IndexStats s = index->Stats();
      report(on ? "point_distance_on" : "point_distance_off", samples, total,
             {{"cache_hits", static_cast<double>(s.cache_hits)}});
    }
  }

  // Full k-medoids runs, index off vs on (ALT lower bounds prune
  // provably non-improving swap evaluations; trajectories identical).
  {
    KMedoidsOptions ko;
    ko.k = 8;
    ko.seed = 11;
    index->InvalidateCache();
    for (int pass = 0; pass < 2; ++pass) {
      bool on = pass == 1;
      TraversalCounters total;
      std::vector<double> samples;
      uint32_t pruned = 0;
      double cost = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        samples.push_back(Timed(&total, [&] {
          KMedoidsResult r =
              std::move(KMedoidsCluster(view, ko, on ? index.get() : nullptr,
                                        nullptr)
                            .value());
          pruned = r.stats.pruned_swaps;
          cost = r.cost;
        }));
      }
      report(on ? "kmedoids_on" : "kmedoids_off", samples, total,
             {{"pruned_swaps", static_cast<double>(pruned)},
              {"cost", cost}});
    }
  }

  std::string path = rec.Write();
  std::printf("\nwrote %s\n", path.empty() ? "(json write FAILED)"
                                           : path.c_str());
  return path.empty() ? 1 : 0;
}
