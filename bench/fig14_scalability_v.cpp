// Figure 14 (paper Section 5.2): scalability with the network size |V|.
// Connected subnetworks of SF with 10%, 20%, 50%, 100% of the nodes;
// 200K (scaled) points in k = 10 clusters + 1% outliers on each.
//
// Expected shape (paper): k-medoids and Single-Link cost grows
// proportionally to |V| (they traverse the whole network); the density
// methods grow slowly because the number of populated edges barely
// changes with |V|.
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/dbscan.h"
#include "core/eps_link.h"
#include "core/kmedoids.h"
#include "core/single_link.h"
#include "gen/workload_gen.h"

using namespace netclus;
using namespace netclus::bench;

int main() {
  double scale = BenchScale();
  std::printf("=== Figure 14: scalability with |V| on SF (scale %.2f) ===\n\n",
              scale);
  GeneratedNetwork g = GenerateRoadNetwork(SpecSF(scale));
  PointId n_points = static_cast<PointId>(200000.0 / 174956.0 *
                                          g.net.num_nodes());
  PrintRow({"pct", "|V|", "k-medoids", "DBSCAN", "eps-link", "single-link"});
  for (double pct : {0.1, 0.2, 0.5, 1.0}) {
    NodeId count = static_cast<NodeId>(pct * g.net.num_nodes());
    std::vector<NodeId> mapping;
    Network sub = BfsSubnetwork(g.net, 0, count, &mapping);

    ClusterWorkloadSpec spec;
    spec.total_points = n_points;  // constant N across network sizes
    spec.num_clusters = 10;
    spec.outlier_fraction = 0.01;
    spec.s_init = DefaultSInit(sub, static_cast<PointId>(0.99 * n_points));
    spec.seed = 7;
    GeneratedWorkload w = std::move(GenerateClusteredPoints(sub, spec).value());
    InMemoryNetworkView view(sub, w.points);
    double eps = w.max_intra_gap;

    WallTimer t;
    KMedoidsOptions ko;
    ko.k = 10;
    ko.seed = 42;
    (void)RunKMedoids(view, ko).value();
    double t_kmed = t.ElapsedSeconds();

    t.Restart();
    DbscanOptions dbo;
    dbo.eps = eps;
    dbo.min_pts = 2;
    (void)RunDbscan(view, dbo).value();
    double t_dbscan = t.ElapsedSeconds();

    t.Restart();
    EpsLinkOptions eo;
    eo.eps = eps;
    (void)RunEpsLink(view, eo).value();
    double t_epslink = t.ElapsedSeconds();

    t.Restart();
    SingleLinkOptions so;
    so.delta = 0.7 * eps;
    (void)RunSingleLink(view, so).value();
    double t_single = t.ElapsedSeconds();

    PrintRow({Fmt(100 * pct, 0), std::to_string(sub.num_nodes()),
              Fmt(t_kmed, 3), Fmt(t_dbscan, 3), Fmt(t_epslink, 3),
              Fmt(t_single, 3)});
  }
  std::printf(
      "\npaper shape: k-medoids / single-link grow ~linearly with |V|;\n"
      "density methods grow slowly (populated-edge bound).\n");
  return 0;
}
