// Server throughput: the QueryServer serving a mixed read workload
// (point distances, range queries, nearest-object) at 1, 4, and 8
// worker threads. The measured run is CLOSED-LOOP: a bounded in-flight
// window sized below the admission queue keeps every submission
// accepted, so accepted_qps measures served work — not the cost of
// stamping kUnavailable on floods the server never executed (the trap
// an open-loop "qps" falls into once rejections dominate). The reported
// p99 queue wait comes from the server's own sample ring. A slice of
// the workload carries a soft deadline, and a separate shallow-queue
// OPEN-LOOP pressure probe floods admission control — that probe alone
// feeds rejection_rate, reported separately from accepted_qps in
// BENCH_server.json, alongside deadline_miss_rate (shed + cancelled
// over completed) per worker count. A final sparse-mutation probe
// measures mean publish latency with incremental publish off vs on
// and gates the incremental/full ratio below 0.9. BENCH_server.json
// is a per-PR history (one {sha, date, entries} row per run), not a
// snapshot.
// Wired into `run_all.sh bench-smoke` and `run_all.sh server-smoke`.
//
// Gate: throughput must scale from 1 to 4 workers. The bar is
// hardware-aware — on a multi-core host 4 workers must beat 1 by 5%;
// on a single core they only have to stay within 2x (the batching
// overhead bound), since there is no parallelism to win.
//
// On 4 -> 8 workers a qps *dip* is expected rather than a win, and it
// is annotated, not gated: past the physical core count the extra
// workers only oversubscribe (on this repo's 1-core CI container, 8
// workers time-slice one core), ParallelFor slices each <=64-request
// batch into smaller per-worker chunks whose wakeup/handoff cost is
// paid per slice, and the single dispatcher thread — which also runs
// replay validation — competes with its own workers for cycles.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/network_distance.h"
#include "server/query_server.h"

using namespace netclus;
using namespace netclus::bench;

namespace {

constexpr int kRequests = 1500;
constexpr int kReps = 3;

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::vector<QueryRequest> MakeWorkload(PointId n_points, double eps) {
  std::vector<QueryRequest> reqs;
  reqs.reserve(kRequests);
  Rng rng(31);
  for (int i = 0; i < kRequests; ++i) {
    PointId a = static_cast<PointId>(rng.NextBounded(n_points));
    PointId b = static_cast<PointId>(rng.NextBounded(n_points));
    switch (i % 3) {
      case 0:
        reqs.push_back(QueryRequest::PointDistance(a, b));
        break;
      case 1:
        reqs.push_back(QueryRequest::Range(a, eps));
        break;
      default:
        reqs.push_back(QueryRequest::NearestObject(a, 2));
        break;
    }
    // Every fifth request carries a soft deadline generous enough that
    // a healthy server almost never misses it — the measured miss rate
    // is the signal, and a miss resolves cleanly rather than failing
    // the bench.
    if (i % 5 == 0) reqs.back().deadline_ms = 250.0;
  }
  return reqs;
}

// Best-of-reps accepted queries/sec for one worker count, the p99
// queue wait across all of its reps, and the resilience rates.
struct RunResult {
  /// Closed-loop completions per second; every submission was accepted.
  double accepted_qps = 0.0;
  double p99_wait_ms = 0.0;
  /// (shed + cancelled) / completed over the throughput reps.
  double deadline_miss_rate = 0.0;
  /// kUnavailable rejections / submissions in the pressure probe.
  double rejection_rate = 0.0;
};

// Publish latency on a sparse-mutation workload: a large network with
// few points, one AddEdge per publish, so almost every CSR row of the
// next epoch is untouched. Full rebuilds re-materialize the whole graph
// each time; the incremental path splices the two dirty rows and copies
// the rest, which is what the mean publish latencies compare. Reported
// as publish_full_ms / publish_incremental_ms / publish_ratio in
// BENCH_server.json, and gated: the ratio must stay below 0.9.
struct PublishLatency {
  double full_ms = 0.0;
  double incremental_ms = 0.0;
  uint64_t publishes = 0;
};

PublishLatency MeasurePublishLatency() {
  GeneratedNetwork gen = GenerateRoadNetwork({20000, 1.3, 0.3, 91});
  PointSet points =
      std::move(GenerateUniformPoints(gen.net, 64, 92)).value();
  std::printf(
      "publish-latency: %u nodes, %zu edges, %u points, one edge "
      "mutation per publish\n",
      gen.net.num_nodes(), gen.net.num_edges(), points.size());

  constexpr int kPublishes = 9;
  PublishLatency out;
  for (bool incremental : {false, true}) {
    QueryServerOptions opts;
    opts.num_workers = 1;
    opts.incremental_publish = incremental;
    std::unique_ptr<QueryServer> server =
        std::move(QueryServer::Start(gen.net, points, opts).value());
    Rng rng(93);
    for (int i = 0; i < kPublishes; ++i) {
      // Random endpoints; a duplicate-edge rejection just redraws.
      for (;;) {
        NodeId u = static_cast<NodeId>(rng.NextBounded(gen.net.num_nodes()));
        NodeId v = static_cast<NodeId>(rng.NextBounded(gen.net.num_nodes()));
        if (u == v) continue;
        if (server->ApplyUpdate(
                       NetworkUpdate::AddEdge(u, v, 1.0 + 0.5 * i))
                .ok()) {
          break;
        }
      }
      // One publish per mutation: without the flush, queued mutations
      // would coalesce and the sample count would drift run to run.
      Status flushed = server->Flush();
      if (!flushed.ok()) {
        std::fprintf(stderr, "publish flush failed: %s\n",
                     flushed.ToString().c_str());
        std::exit(1);
      }
    }
    ServerStats stats = server->stats();
    if (incremental) {
      out.incremental_ms = stats.mean_publish_incremental_ms;
      out.publishes = stats.publishes_incremental;
      if (stats.publishes_incremental != kPublishes) {
        std::fprintf(stderr,
                     "expected %d incremental publishes, saw %llu\n",
                     kPublishes,
                     static_cast<unsigned long long>(
                         stats.publishes_incremental));
        std::exit(1);
      }
    } else {
      out.full_ms = stats.mean_publish_full_ms;
    }
  }
  return out;
}

RunResult RunAtWorkers(const Network& net, const PointSet& points,
                       uint32_t workers,
                       const std::vector<QueryRequest>& reqs) {
  QueryServerOptions opts;
  opts.num_workers = workers;
  opts.max_queue_depth = 256;
  opts.max_batch_size = 64;
  std::unique_ptr<QueryServer> server =
      std::move(QueryServer::Start(net, points, opts).value());

  // Closed loop: keep at most `window` requests in flight, submitting
  // the next only after the oldest completes. The window is sized below
  // the admission queue, so backpressure never fires and the timer
  // measures accepted work end to end.
  const size_t window = opts.max_queue_depth - 64;
  double best_seconds = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::deque<std::future<Result<QueryResponse>>> inflight;
    size_t next = 0;
    WallTimer timer;
    while (next < reqs.size() || !inflight.empty()) {
      while (inflight.size() < window && next < reqs.size()) {
        inflight.push_back(server->Submit(reqs[next++]));
      }
      Result<QueryResponse> r = inflight.front().get();
      inflight.pop_front();
      if (!r.ok() && !r.status().IsDeadlineExceeded()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
    }
    double s = timer.ElapsedSeconds();
    if (rep == 0 || s < best_seconds) best_seconds = s;
  }
  if (server->stats().rejected != 0) {
    std::fprintf(stderr,
                 "closed loop leaked %llu rejections — window missized\n",
                 static_cast<unsigned long long>(server->stats().rejected));
    std::exit(1);
  }

  RunResult out;
  out.accepted_qps = static_cast<double>(kRequests) / best_seconds;
  out.p99_wait_ms = Percentile(server->QueueWaitSamplesMs(), 0.99);
  ServerStats stats = server->stats();
  if (stats.completed > 0) {
    out.deadline_miss_rate =
        static_cast<double>(stats.deadline_expired +
                            stats.cancelled_traversals) /
        static_cast<double>(stats.completed);
  }

  // Pressure probe: a shallow-queue server flooded with the same
  // workload measures how admission control sheds load at this worker
  // count. Rejections resolve immediately with a structured retry-after
  // hint; everything admitted must still complete.
  QueryServerOptions pressure_opts = opts;
  pressure_opts.max_queue_depth = 128;
  std::unique_ptr<QueryServer> pressure =
      std::move(QueryServer::Start(net, points, pressure_opts).value());
  std::vector<std::future<Result<QueryResponse>>> flood;
  flood.reserve(reqs.size());
  for (const QueryRequest& req : reqs) {
    flood.push_back(pressure->Submit(req));
  }
  for (std::future<Result<QueryResponse>>& f : flood) {
    Result<QueryResponse> r = f.get();
    if (!r.ok() && !r.status().IsUnavailable() &&
        !r.status().IsDeadlineExceeded()) {
      std::fprintf(stderr, "pressure query failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
  }
  ServerStats pstats = pressure->stats();
  if (pstats.accepted + pstats.rejected > 0) {
    out.rejection_rate =
        static_cast<double>(pstats.rejected) /
        static_cast<double>(pstats.accepted + pstats.rejected);
  }
  return out;
}

}  // namespace

int main() {
  GeneratedNetwork gen = GenerateRoadNetwork({2500, 1.3, 0.3, 77});
  PointSet points =
      std::move(GenerateUniformPoints(gen.net, 1200, 78)).value();
  InMemoryNetworkView view(gen.net, points);
  std::printf("server-throughput: %u nodes, %zu edges, %u points\n",
              gen.net.num_nodes(), gen.net.num_edges(), points.size());

  // eps from the network's own scale, as in bench_smoke.
  double eps;
  {
    NodeScratch scratch(gen.net.num_nodes());
    std::vector<double> sample;
    Rng rng(12);
    for (int i = 0; i < 64; ++i) {
      PointId p = static_cast<PointId>(rng.NextBounded(points.size()));
      PointId q = static_cast<PointId>(rng.NextBounded(points.size()));
      double d = PointNetworkDistance(view, p, q, &scratch);
      if (d < kInfDist) sample.push_back(d);
    }
    std::sort(sample.begin(), sample.end());
    eps = 0.25 * sample[sample.size() / 2];
  }
  std::vector<QueryRequest> reqs = MakeWorkload(points.size(), eps);

  BenchRecorder rec("server");
  PrintRow({"workers", "accepted_qps", "p99_wait_ms", "miss_rate",
            "reject_rate"},
           16);
  std::vector<std::pair<uint32_t, RunResult>> results;
  for (uint32_t workers : {1u, 4u, 8u}) {
    RunResult r = RunAtWorkers(gen.net, points, workers, reqs);
    results.emplace_back(workers, r);
    PrintRow({std::to_string(workers), Fmt(r.accepted_qps, 0),
              Fmt(r.p99_wait_ms), Fmt(r.deadline_miss_rate, 4),
              Fmt(r.rejection_rate, 4)},
             16);
    // "qps" stays as an alias of accepted_qps so older dashboards keep
    // reading; rejection_rate comes solely from the open-loop probe.
    rec.Add("qps_workers_" + std::to_string(workers),
            {static_cast<double>(kRequests) / r.accepted_qps},
            TraversalCounters{},
            {{"qps", r.accepted_qps},
             {"accepted_qps", r.accepted_qps},
             {"p99_queue_wait_ms", r.p99_wait_ms},
             {"deadline_miss_rate", r.deadline_miss_rate},
             {"rejection_rate", r.rejection_rate},
             {"workers", static_cast<double>(workers)}});
  }

  PublishLatency pub = MeasurePublishLatency();
  const double pub_ratio =
      pub.full_ms > 0.0 ? pub.incremental_ms / pub.full_ms : 1.0;
  std::printf(
      "publish latency: full %.3f ms, incremental %.3f ms over %llu "
      "publishes (ratio %.2f, gate < 0.9)\n",
      pub.full_ms, pub.incremental_ms,
      static_cast<unsigned long long>(pub.publishes), pub_ratio);
  rec.Add("publish_latency", {pub.incremental_ms * 1e-3},
          TraversalCounters{},
          {{"publish_full_ms", pub.full_ms},
           {"publish_incremental_ms", pub.incremental_ms},
           {"publish_ratio", pub_ratio}});

  // Per-PR history: BENCH_server.json accumulates one {sha, date,
  // entries} row per run instead of being overwritten, so the perf
  // trajectory survives across revisions.
  std::string path = rec.WriteAppend();
  std::printf("\nwrote %s\n",
              path.empty() ? "(json write FAILED)" : path.c_str());
  if (path.empty()) return 1;

  // Incremental publish must beat the full rebuild decisively on this
  // sparse-mutation workload — splicing two dirty CSR rows cannot cost
  // 90% of re-materializing 20k of them.
  if (pub_ratio >= 0.9) {
    std::fprintf(stderr,
                 "FAIL: incremental publish latency ratio %.2f >= 0.9\n",
                 pub_ratio);
    return 1;
  }

  // Hardware-aware scaling gate on ACCEPTED work: 1 -> 4 workers.
  const double ratio =
      results[1].second.accepted_qps / results[0].second.accepted_qps;
  const unsigned cores = std::thread::hardware_concurrency();
  double floor = 0.5;  // single core: batching overhead bounded by 2x
  if (cores >= 4) {
    floor = 1.05;
  } else if (cores >= 2) {
    floor = 1.0;
  }
  std::printf("scaling 1->4 workers: %.2fx (floor %.2fx on %u cores)\n",
              ratio, floor, cores);
  if (ratio <= floor) {
    std::fprintf(stderr,
                 "FAIL: 4-worker throughput did not clear the scaling "
                 "floor\n");
    return 1;
  }

  // 4 -> 8 workers: annotated, not gated. Past the physical core count
  // the extra workers oversubscribe, ParallelFor pays per-slice wakeup
  // cost on smaller chunks, and the dispatcher competes with its own
  // workers for cycles — a dip here is expected (see header comment).
  const double ratio48 =
      results[2].second.accepted_qps / results[1].second.accepted_qps;
  std::printf("scaling 4->8 workers: %.2fx (annotation only: %s on %u "
              "cores)\n",
              ratio48,
              ratio48 < 1.0 ? "dip expected past physical core count"
                            : "no dip observed",
              cores);
  return 0;
}
