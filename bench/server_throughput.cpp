// Server throughput: the QueryServer serving a mixed read workload
// (point distances, range queries, nearest-object) at 1, 4, and 8
// worker threads. Each configuration submits the whole request set
// asynchronously — so the dispatcher batches and the pool fans out —
// and reports queries/sec plus the p99 queue wait from the server's
// own sample ring. Emitted as BENCH_server.json for CI diffing; wired
// into `run_all.sh bench-smoke` and `run_all.sh server-smoke`.
//
// Gate: throughput must scale from 1 to 4 workers. The bar is
// hardware-aware — on a multi-core host 4 workers must beat 1 by 5%;
// on a single core they only have to stay within 2x (the batching
// overhead bound), since there is no parallelism to win.
#include <algorithm>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/network_distance.h"
#include "server/query_server.h"

using namespace netclus;
using namespace netclus::bench;

namespace {

constexpr int kRequests = 1500;
constexpr int kReps = 3;

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::vector<QueryRequest> MakeWorkload(PointId n_points, double eps) {
  std::vector<QueryRequest> reqs;
  reqs.reserve(kRequests);
  Rng rng(31);
  for (int i = 0; i < kRequests; ++i) {
    PointId a = static_cast<PointId>(rng.NextBounded(n_points));
    PointId b = static_cast<PointId>(rng.NextBounded(n_points));
    switch (i % 3) {
      case 0:
        reqs.push_back(QueryRequest::PointDistance(a, b));
        break;
      case 1:
        reqs.push_back(QueryRequest::Range(a, eps));
        break;
      default:
        reqs.push_back(QueryRequest::NearestObject(a, 2));
        break;
    }
  }
  return reqs;
}

// Best-of-reps queries/sec for one worker count, plus the p99 queue
// wait across all of its reps.
struct RunResult {
  double qps = 0.0;
  double p99_wait_ms = 0.0;
};

RunResult RunAtWorkers(const Network& net, const PointSet& points,
                       uint32_t workers,
                       const std::vector<QueryRequest>& reqs) {
  QueryServerOptions opts;
  opts.num_workers = workers;
  opts.max_queue_depth = static_cast<size_t>(kRequests) + 16;
  opts.max_batch_size = 64;
  std::unique_ptr<QueryServer> server =
      std::move(QueryServer::Start(net, points, opts).value());

  double best_seconds = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<std::future<Result<QueryResponse>>> futures;
    futures.reserve(reqs.size());
    WallTimer timer;
    for (const QueryRequest& req : reqs) {
      futures.push_back(server->Submit(req));
    }
    for (std::future<Result<QueryResponse>>& f : futures) {
      Result<QueryResponse> r = f.get();
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
    }
    double s = timer.ElapsedSeconds();
    if (rep == 0 || s < best_seconds) best_seconds = s;
  }

  RunResult out;
  out.qps = static_cast<double>(kRequests) / best_seconds;
  out.p99_wait_ms = Percentile(server->QueueWaitSamplesMs(), 0.99);
  return out;
}

}  // namespace

int main() {
  GeneratedNetwork gen = GenerateRoadNetwork({2500, 1.3, 0.3, 77});
  PointSet points =
      std::move(GenerateUniformPoints(gen.net, 1200, 78)).value();
  InMemoryNetworkView view(gen.net, points);
  std::printf("server-throughput: %u nodes, %zu edges, %u points\n",
              gen.net.num_nodes(), gen.net.num_edges(), points.size());

  // eps from the network's own scale, as in bench_smoke.
  double eps;
  {
    NodeScratch scratch(gen.net.num_nodes());
    std::vector<double> sample;
    Rng rng(12);
    for (int i = 0; i < 64; ++i) {
      PointId p = static_cast<PointId>(rng.NextBounded(points.size()));
      PointId q = static_cast<PointId>(rng.NextBounded(points.size()));
      double d = PointNetworkDistance(view, p, q, &scratch);
      if (d < kInfDist) sample.push_back(d);
    }
    std::sort(sample.begin(), sample.end());
    eps = 0.25 * sample[sample.size() / 2];
  }
  std::vector<QueryRequest> reqs = MakeWorkload(points.size(), eps);

  BenchRecorder rec("server");
  PrintRow({"workers", "qps", "p99_wait_ms"}, 16);
  std::vector<std::pair<uint32_t, RunResult>> results;
  for (uint32_t workers : {1u, 4u, 8u}) {
    RunResult r = RunAtWorkers(gen.net, points, workers, reqs);
    results.emplace_back(workers, r);
    PrintRow({std::to_string(workers), Fmt(r.qps, 0), Fmt(r.p99_wait_ms)},
             16);
    rec.Add("qps_workers_" + std::to_string(workers),
            {static_cast<double>(kRequests) / r.qps}, TraversalCounters{},
            {{"qps", r.qps},
             {"p99_queue_wait_ms", r.p99_wait_ms},
             {"workers", static_cast<double>(workers)}});
  }

  std::string path = rec.Write();
  std::printf("\nwrote %s\n",
              path.empty() ? "(json write FAILED)" : path.c_str());
  if (path.empty()) return 1;

  // Hardware-aware scaling gate: 1 -> 4 workers.
  const double ratio = results[1].second.qps / results[0].second.qps;
  const unsigned cores = std::thread::hardware_concurrency();
  double floor = 0.5;  // single core: batching overhead bounded by 2x
  if (cores >= 4) {
    floor = 1.05;
  } else if (cores >= 2) {
    floor = 1.0;
  }
  std::printf("scaling 1->4 workers: %.2fx (floor %.2fx on %u cores)\n",
              ratio, floor, cores);
  if (ratio <= floor) {
    std::fprintf(stderr,
                 "FAIL: 4-worker throughput did not clear the scaling "
                 "floor\n");
    return 1;
  }
  return 0;
}
