// Transport tax: the same mixed query workload served twice from one
// QueryServer — first in-process (closed-loop Execute calls), then over
// loopback TCP through the binary wire protocol (net/) with concurrent
// blocking clients — so BENCH_net.json tracks per PR what the socket
// front end costs: loopback qps next to in-process qps, the p99
// round-trip latency a remote caller actually sees, and their ratio.
// No perf gate (the tax depends on the host's loopback stack); the run
// fails only on correctness problems — a failed query, a corrupt
// frame, or a refused connection.
// Wired into `run_all.sh net-smoke`.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/network_distance.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "server/query_server.h"

using namespace netclus;
using namespace netclus::bench;

namespace {

constexpr int kRequests = 1200;
constexpr int kClients = 4;

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::vector<QueryRequest> MakeWorkload(PointId n_points, double eps,
                                       uint64_t seed) {
  std::vector<QueryRequest> reqs;
  reqs.reserve(kRequests);
  Rng rng(seed);
  for (int i = 0; i < kRequests; ++i) {
    PointId a = static_cast<PointId>(rng.NextBounded(n_points));
    PointId b = static_cast<PointId>(rng.NextBounded(n_points));
    switch (i % 3) {
      case 0:
        reqs.push_back(QueryRequest::PointDistance(a, b));
        break;
      case 1:
        reqs.push_back(QueryRequest::Range(a, eps));
        break;
      default:
        reqs.push_back(QueryRequest::NearestObject(a, 2));
        break;
    }
  }
  return reqs;
}

[[noreturn]] void Die(const char* what, const Status& s) {
  std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  GeneratedNetwork gen = GenerateRoadNetwork({1500, 1.3, 0.3, 177});
  PointSet points =
      std::move(GenerateUniformPoints(gen.net, 800, 178)).value();
  InMemoryNetworkView view(gen.net, points);
  std::printf("net-throughput: %u nodes, %zu edges, %u points, %d clients\n",
              gen.net.num_nodes(), gen.net.num_edges(), points.size(),
              kClients);

  // eps from the network's own scale, as in server_throughput.
  double eps;
  {
    NodeScratch scratch(gen.net.num_nodes());
    std::vector<double> sample;
    Rng rng(12);
    for (int i = 0; i < 64; ++i) {
      PointId p = static_cast<PointId>(rng.NextBounded(points.size()));
      PointId q = static_cast<PointId>(rng.NextBounded(points.size()));
      double d = PointNetworkDistance(view, p, q, &scratch);
      if (d < kInfDist) sample.push_back(d);
    }
    std::sort(sample.begin(), sample.end());
    eps = 0.25 * sample[sample.size() / 2];
  }

  QueryServerOptions opts;
  opts.num_workers = 4;
  Result<std::unique_ptr<QueryServer>> started =
      QueryServer::Start(gen.net, points, opts);
  if (!started.ok()) Die("server start", started.status());
  QueryServer& server = *started.value();

  // Per-client slices, same shape for both paths so the comparison is
  // apples to apples.
  std::vector<std::vector<QueryRequest>> slices;
  slices.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    slices.push_back(MakeWorkload(points.size(), eps, 31 + c));
  }

  // --- in-process baseline: kClients threads of blocking Execute ------
  double inproc_seconds;
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    WallTimer timer;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        for (const QueryRequest& req : slices[c]) {
          Result<QueryResponse> r = server.Execute(req);
          if (!r.ok()) Die("in-process query", r.status());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    inproc_seconds = timer.ElapsedSeconds();
  }
  const double total_requests = static_cast<double>(kRequests) * kClients;
  const double inproc_qps = total_requests / inproc_seconds;

  // --- loopback: same threads, each through its own QueryClient -------
  Result<std::unique_ptr<TcpServer>> front =
      TcpServer::Start(&server, TcpServerOptions{});
  if (!front.ok()) Die("tcp start", front.status());
  TcpServer& tcp = *front.value();

  std::vector<std::vector<double>> rtts(kClients);
  double net_seconds;
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    WallTimer timer;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        ClientOptions copts;
        copts.port = tcp.port();
        Result<std::unique_ptr<QueryClient>> connected =
            QueryClient::Connect(copts);
        if (!connected.ok()) Die("client connect", connected.status());
        rtts[c].reserve(slices[c].size());
        WallTimer rtt;
        for (const QueryRequest& req : slices[c]) {
          const double t0 = rtt.ElapsedSeconds();
          Result<QueryResponse> r = connected.value()->Execute(req);
          if (!r.ok()) Die("loopback query", r.status());
          rtts[c].push_back((rtt.ElapsedSeconds() - t0) * 1e3);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    net_seconds = timer.ElapsedSeconds();
  }
  const double net_qps = total_requests / net_seconds;
  std::vector<double> all_rtts;
  all_rtts.reserve(static_cast<size_t>(total_requests));
  for (const std::vector<double>& v : rtts) {
    all_rtts.insert(all_rtts.end(), v.begin(), v.end());
  }
  const double p99_rtt_ms = Percentile(std::move(all_rtts), 0.99);
  const double transport_tax = net_qps > 0.0 ? inproc_qps / net_qps : 0.0;

  const TcpServerStats net_stats = tcp.stats();
  if (net_stats.corrupt_frames != 0 || net_stats.connections_refused != 0) {
    std::fprintf(stderr, "FAIL: %llu corrupt frames, %llu refused\n",
                 static_cast<unsigned long long>(net_stats.corrupt_frames),
                 static_cast<unsigned long long>(
                     net_stats.connections_refused));
    return 1;
  }

  PrintRow({"path", "qps", "p99_rtt_ms"}, 16);
  PrintRow({"in-process", Fmt(inproc_qps, 0), "-"}, 16);
  PrintRow({"loopback", Fmt(net_qps, 0), Fmt(p99_rtt_ms, 3)}, 16);
  std::printf("transport tax: %.2fx (in-process / loopback)\n",
              transport_tax);

  BenchRecorder rec("net");
  rec.Add("loopback_roundtrip",
          {net_seconds}, TraversalCounters{},
          {{"inproc_qps", inproc_qps},
           {"net_qps", net_qps},
           {"p99_rtt_ms", p99_rtt_ms},
           {"transport_tax", transport_tax},
           {"clients", static_cast<double>(kClients)},
           {"requests", total_requests}});
  // Per-PR history: appends a {sha, date, entries} row instead of
  // overwriting, so latency drift across revisions stays visible.
  std::string path = rec.WriteAppend();
  std::printf("wrote %s\n", path.empty() ? "(json write FAILED)"
                                         : path.c_str());
  return path.empty() ? 1 : 0;
}
