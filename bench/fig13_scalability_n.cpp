// Figure 13 (paper Section 5.2): scalability with the number of points N.
// SF network; N = 100K, 200K, 500K, 1000K (scaled); k = 10 clusters + 1%
// outliers.
//
// Expected shape (paper): DBSCAN and eps-Link cost grows proportionally
// to N (they touch every populated edge, with random point accesses);
// k-medoids and Single-Link grow slowly — their cost is dominated by the
// full network traversals, and points are only scanned sequentially.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dbscan.h"
#include "core/eps_link.h"
#include "core/kmedoids.h"
#include "core/single_link.h"
#include "gen/workload_gen.h"

using namespace netclus;
using namespace netclus::bench;

int main() {
  double scale = BenchScale();
  uint32_t threads = BenchThreads();
  std::printf(
      "=== Figure 13: scalability with N on SF (scale %.2f, %u threads) "
      "===\n\n",
      scale, threads);
  GeneratedNetwork g = GenerateRoadNetwork(SpecSF(scale));
  std::printf("network: %u nodes, %zu edges\n\n", g.net.num_nodes(),
              g.net.num_edges());

  // Sweep setup: the four point workloads are independent; generate them
  // in parallel before the (sequentially timed) algorithm runs.
  // Paper point counts relative to SF's 174,956 nodes.
  const std::vector<double> per_node = {
      100000.0 / 174956, 200000.0 / 174956, 500000.0 / 174956,
      1000000.0 / 174956};
  std::vector<GeneratedWorkload> workloads(per_node.size());
  {
    ThreadPool pool(threads);
    ParallelFor(&pool, per_node.size(), [&](size_t i, uint32_t) {
      ClusterWorkloadSpec spec;
      spec.total_points =
          static_cast<PointId>(per_node[i] * g.net.num_nodes());
      spec.num_clusters = 10;
      spec.outlier_fraction = 0.01;
      spec.s_init =
          DefaultSInit(g.net, static_cast<PointId>(0.99 * spec.total_points));
      spec.seed = 7;
      workloads[i] = std::move(GenerateClusteredPoints(g.net, spec).value());
    });
  }

  PrintRow({"N", "k-medoids", "DBSCAN", "eps-link", "single-link"});
  for (const GeneratedWorkload& w : workloads) {
    InMemoryNetworkView view(g.net, w.points);
    double eps = w.max_intra_gap;

    WallTimer t;
    KMedoidsOptions ko;
    ko.k = 10;
    ko.seed = 42;
    ko.num_threads = threads;
    (void)RunKMedoids(view, ko).value();
    double t_kmed = t.ElapsedSeconds();

    t.Restart();
    DbscanOptions dbo;
    dbo.eps = eps;
    dbo.min_pts = 2;
    dbo.num_threads = threads;
    (void)RunDbscan(view, dbo).value();
    double t_dbscan = t.ElapsedSeconds();

    t.Restart();
    EpsLinkOptions eo;
    eo.eps = eps;
    (void)RunEpsLink(view, eo).value();
    double t_epslink = t.ElapsedSeconds();

    t.Restart();
    SingleLinkOptions so;
    so.delta = 0.7 * eps;
    (void)RunSingleLink(view, so).value();
    double t_single = t.ElapsedSeconds();

    PrintRow({std::to_string(w.points.size()), Fmt(t_kmed, 3),
              Fmt(t_dbscan, 3), Fmt(t_epslink, 3), Fmt(t_single, 3)});
  }
  std::printf(
      "\npaper shape: density methods scale ~linearly in N; k-medoids and\n"
      "single-link costs are nearly flat (network-bound).\n");
  return 0;
}
