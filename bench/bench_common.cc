#include "bench_common.h"

#include <stdio.h>  // popen / pclose

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

namespace netclus {
namespace bench {

namespace {

/// Short commit hash stamped onto per-PR BENCH rows; "unknown" outside a
/// git checkout (e.g. an exported tarball).
std::string GitShaShort() {
  std::string sha;
  std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (p != nullptr) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha.assign(buf);
    ::pclose(p);
  }
  while (!sha.empty() &&
         std::isspace(static_cast<unsigned char>(sha.back()))) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

std::string TodayIso() {
  std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  char buf[16];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm_buf);
  return buf;
}

}  // namespace

double BenchScale() {
  const char* env = std::getenv("NETCLUS_BENCH_SCALE");
  if (env == nullptr) return 0.1;
  double v = std::atof(env);
  if (v <= 0.0) return 0.1;
  return v > 1.0 ? 1.0 : v;
}

uint32_t BenchThreads() {
  const char* env = std::getenv("NETCLUS_BENCH_THREADS");
  if (env == nullptr) return 1;
  long v = std::atol(env);
  if (v < 1) return 1;
  return v > 64 ? 64u : static_cast<uint32_t>(v);
}

double DefaultSInit(const Network& net, PointId clustered_points) {
  double total = 0.0;
  for (const Edge& e : net.Edges()) total += e.weight;
  // Mean spacing over a cluster's life is s_init * (1 + F) / 2 = 3 s_init
  // (F = 5); target occupancy 6% of the total edge length, compact enough
  // that 10 random cluster seeds rarely overlap.
  return 0.06 * total / (3.0 * static_cast<double>(clustered_points));
}

Dataset MakeDataset(const std::string& name, double scale,
                    double points_per_node, uint32_t k, uint64_t seed) {
  Dataset d;
  d.name = name;
  RoadNetworkSpec netspec;
  if (name == "NA") {
    netspec = SpecNA(scale);
  } else if (name == "SF") {
    netspec = SpecSF(scale);
  } else if (name == "TG") {
    netspec = SpecTG(scale);
  } else {
    netspec = SpecOL(scale);
  }
  d.gen = GenerateRoadNetwork(netspec);

  d.spec.total_points = static_cast<PointId>(
      points_per_node * d.gen.net.num_nodes());
  d.spec.num_clusters = k;
  d.spec.outlier_fraction = 0.01;
  d.spec.magnification = 5.0;
  d.spec.s_init = DefaultSInit(
      d.gen.net, static_cast<PointId>(0.99 * d.spec.total_points));
  d.spec.seed = seed;
  Result<GeneratedWorkload> w = GenerateClusteredPoints(d.gen.net, d.spec);
  if (!w.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 w.status().ToString().c_str());
    std::abort();
  }
  d.workload = std::move(w.value());
  return d;
}

void BenchRecorder::Add(
    const std::string& bench, std::vector<double> wall_seconds,
    const TraversalCounters& traversal,
    const std::vector<std::pair<std::string, double>>& extra) {
  Entry e;
  e.bench = bench;
  e.traversal = traversal;
  e.extra = extra;
  if (!wall_seconds.empty()) {
    std::sort(wall_seconds.begin(), wall_seconds.end());
    size_t n = wall_seconds.size();
    e.median_seconds = wall_seconds[n / 2];
    e.p95_seconds = wall_seconds[std::min(n - 1, n * 95 / 100)];
  }
  entries_.push_back(std::move(e));
}

std::string BenchRecorder::JsonPath() const {
  const char* dir = std::getenv("NETCLUS_BENCH_JSON_DIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
         "/BENCH_" + name_ + ".json";
}

void BenchRecorder::EmitEntries(std::FILE* f, const char* indent) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    std::fprintf(f,
                 "%s{\"bench\": \"%s\", \"median_seconds\": %.9g, "
                 "\"p95_seconds\": %.9g, \"settled_nodes\": %llu, "
                 "\"heap_pops\": %llu, \"heap_pushes\": %llu, "
                 "\"pruned_nodes\": %llu",
                 indent, e.bench.c_str(), e.median_seconds, e.p95_seconds,
                 static_cast<unsigned long long>(e.traversal.settled_nodes),
                 static_cast<unsigned long long>(e.traversal.heap_pops),
                 static_cast<unsigned long long>(e.traversal.heap_pushes),
                 static_cast<unsigned long long>(e.traversal.pruned_nodes));
    for (const auto& [key, value] : e.extra) {
      std::fprintf(f, ", \"%s\": %.9g", key.c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
  }
}

std::string BenchRecorder::Write() const {
  std::string path = JsonPath();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  std::fprintf(f, "[\n");
  EmitEntries(f, "  ");
  std::fprintf(f, "]\n");
  std::fclose(f);
  return path;
}

std::string BenchRecorder::WriteAppend() const {
  std::string path = JsonPath();
  // Slurp any existing history so this run can be spliced onto it.
  std::string existing;
  if (std::FILE* in = std::fopen(path.c_str(), "r")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(in);
  }
  while (!existing.empty() &&
         std::isspace(static_cast<unsigned char>(existing.back()))) {
    existing.pop_back();
  }
  // Only a well-formed run history (closed array whose objects carry a
  // "sha" key) is extended; the legacy flat-entry format and anything
  // truncated or unparseable are replaced by a fresh one-run history.
  bool splice = existing.size() > 1 && existing.front() == '[' &&
                existing.back() == ']' &&
                existing.find("\"sha\"") != std::string::npos;
  if (splice) {
    existing.pop_back();  // reopen the array
    while (!existing.empty() &&
           std::isspace(static_cast<unsigned char>(existing.back()))) {
      existing.pop_back();
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  if (splice) {
    std::fprintf(f, "%s,\n", existing.c_str());
  } else {
    std::fprintf(f, "[\n");
  }
  std::fprintf(f, "  {\"sha\": \"%s\", \"date\": \"%s\", \"entries\": [\n",
               GitShaShort().c_str(), TodayIso().c_str());
  EmitEntries(f, "    ");
  std::fprintf(f, "  ]}\n]\n");
  std::fclose(f);
  return path;
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& c : cells) {
    std::printf("%-*s", width, c.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
  return buf;
}

}  // namespace bench
}  // namespace netclus
