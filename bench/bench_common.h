// Shared setup for the experiment harnesses: dataset construction at a
// configurable scale and small table-printing helpers.
//
// Every harness honors NETCLUS_BENCH_SCALE (default 0.1): it scales the
// network sizes and point counts of the paper's experiments so the whole
// suite runs in minutes on one core. All reported effects are ratios or
// asymptotic shapes, which are preserved at any scale; set
// NETCLUS_BENCH_SCALE=1 to run the published sizes.
#ifndef NETCLUS_BENCH_BENCH_COMMON_H_
#define NETCLUS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/dijkstra.h"
#include "graph/network.h"
#include "netclus.h"

namespace netclus {
namespace bench {

// --- unified-entry adapters --------------------------------------------
// The per-algorithm convenience overloads are deprecated; harnesses time
// RunClustering(view, MakeSpec(options)) — the path users actually run,
// including its one-time Freeze() — and unpack the ClusterOutput back
// into the per-algorithm result shapes the tables read.

inline Result<KMedoidsResult> RunKMedoids(const NetworkView& view,
                                          const KMedoidsOptions& options) {
  NETCLUS_ASSIGN_OR_RETURN(ClusterOutput out,
                           RunClustering(view, MakeSpec(options)));
  KMedoidsResult r;
  r.clustering = std::move(out.clustering);
  r.medoids = std::move(out.medoids);
  r.cost = out.cost;
  r.stats = out.kmedoids_stats;
  return r;
}

inline Result<Clustering> RunEpsLink(const NetworkView& view,
                                     const EpsLinkOptions& options) {
  NETCLUS_ASSIGN_OR_RETURN(ClusterOutput out,
                           RunClustering(view, MakeSpec(options)));
  return std::move(out.clustering);
}

inline Result<Clustering> RunDbscan(const NetworkView& view,
                                    const DbscanOptions& options) {
  NETCLUS_ASSIGN_OR_RETURN(ClusterOutput out,
                           RunClustering(view, MakeSpec(options)));
  return std::move(out.clustering);
}

inline Result<SingleLinkResult> RunSingleLink(
    const NetworkView& view, const SingleLinkOptions& options) {
  NETCLUS_ASSIGN_OR_RETURN(ClusterOutput out,
                           RunClustering(view, MakeSpec(options)));
  if (!out.dendrogram.has_value()) {
    return Status::Internal("single-link run produced no dendrogram");
  }
  SingleLinkResult r(0);
  r.dendrogram = std::move(*out.dendrogram);
  r.stats = out.single_link_stats;
  return r;
}

/// Scale factor from NETCLUS_BENCH_SCALE (clamped to (0, 1]).
double BenchScale();

/// Worker-thread count from NETCLUS_BENCH_THREADS (default 1 so timing
/// columns stay comparable to the paper's single-core setup; clamped to
/// [1, 64]). Harnesses pass it to the algorithms' num_threads knobs and
/// to their own sweep-setup ParallelFor loops.
uint32_t BenchThreads();

/// One of the paper's four datasets, scaled.
struct Dataset {
  std::string name;
  GeneratedNetwork gen;
  GeneratedWorkload workload;
  ClusterWorkloadSpec spec;
};

/// Builds dataset `name` in {"NA","SF","TG","OL"} with N ~= points_per_node
/// * |V| points in k clusters (paper: N ~= 3 |V|, k = 10, 1% outliers).
Dataset MakeDataset(const std::string& name, double scale,
                    double points_per_node = 3.0, uint32_t k = 10,
                    uint64_t seed = 7);

/// An s_init under which the k clusters occupy ~6% of the total edge
/// length, keeping them compact and well separated (the generator's mean
/// point spacing over a cluster's growth is 3 * s_init for F = 5).
double DefaultSInit(const Network& net, PointId clustered_points);

/// \brief Machine-readable counterpart of the printed tables.
///
/// Harnesses Add() one entry per benchmark — the raw wall-clock samples
/// plus the TraversalCounters delta covering them — and Write() emits
/// `BENCH_<name>.json`: an array of objects with median/p95 wall seconds
/// and the settled-node / heap-pop / heap-push / pruned-node totals, so
/// CI and scripts can diff substrate work across revisions without
/// scraping stdout.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string name) : name_(std::move(name)) {}

  /// Records benchmark `bench`: its wall-clock samples (seconds; median
  /// and p95 are derived here) and the traversal-counter delta summed
  /// over all samples. Extra scalar facts (hit rates, sizes) go in
  /// `extra` as (key, value) pairs.
  void Add(const std::string& bench, std::vector<double> wall_seconds,
           const TraversalCounters& traversal,
           const std::vector<std::pair<std::string, double>>& extra = {});

  /// Writes BENCH_<name>.json into $NETCLUS_BENCH_JSON_DIR (default the
  /// working directory) and returns the path, or "" on I/O failure.
  /// The file is a snapshot: each run replaces the previous one.
  std::string Write() const;

  /// As Write(), but the file accumulates a perf trajectory instead of
  /// being replaced: each run appends one object
  /// `{"sha": "<git short sha>", "date": "YYYY-MM-DD", "entries": [...]}`
  /// to a top-level array, so per-PR rows line up for diffing. A file in
  /// the old flat-entry format (no "sha" key) is replaced by a fresh
  /// one-run history.
  std::string WriteAppend() const;

 private:
  struct Entry {
    std::string bench;
    double median_seconds = 0.0;
    double p95_seconds = 0.0;
    TraversalCounters traversal;
    std::vector<std::pair<std::string, double>> extra;
  };

  std::string JsonPath() const;
  /// Emits the entry array's objects, one per line, prefixed by `indent`.
  void EmitEntries(std::FILE* f, const char* indent) const;

  std::string name_;
  std::vector<Entry> entries_;
};

/// Prints a row of fixed-width columns to stdout.
void PrintRow(const std::vector<std::string>& cells, int width = 14);

/// Formats a double with `digits` decimals.
std::string Fmt(double x, int digits = 3);

}  // namespace bench
}  // namespace netclus

#endif  // NETCLUS_BENCH_BENCH_COMMON_H_
