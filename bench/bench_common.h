// Shared setup for the experiment harnesses: dataset construction at a
// configurable scale and small table-printing helpers.
//
// Every harness honors NETCLUS_BENCH_SCALE (default 0.1): it scales the
// network sizes and point counts of the paper's experiments so the whole
// suite runs in minutes on one core. All reported effects are ratios or
// asymptotic shapes, which are preserved at any scale; set
// NETCLUS_BENCH_SCALE=1 to run the published sizes.
#ifndef NETCLUS_BENCH_BENCH_COMMON_H_
#define NETCLUS_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/network.h"

namespace netclus {
namespace bench {

/// Scale factor from NETCLUS_BENCH_SCALE (clamped to (0, 1]).
double BenchScale();

/// Worker-thread count from NETCLUS_BENCH_THREADS (default 1 so timing
/// columns stay comparable to the paper's single-core setup; clamped to
/// [1, 64]). Harnesses pass it to the algorithms' num_threads knobs and
/// to their own sweep-setup ParallelFor loops.
uint32_t BenchThreads();

/// One of the paper's four datasets, scaled.
struct Dataset {
  std::string name;
  GeneratedNetwork gen;
  GeneratedWorkload workload;
  ClusterWorkloadSpec spec;
};

/// Builds dataset `name` in {"NA","SF","TG","OL"} with N ~= points_per_node
/// * |V| points in k clusters (paper: N ~= 3 |V|, k = 10, 1% outliers).
Dataset MakeDataset(const std::string& name, double scale,
                    double points_per_node = 3.0, uint32_t k = 10,
                    uint64_t seed = 7);

/// An s_init under which the k clusters occupy ~6% of the total edge
/// length, keeping them compact and well separated (the generator's mean
/// point spacing over a cluster's growth is 3 * s_init for F = 5).
double DefaultSInit(const Network& net, PointId clustered_points);

/// Prints a row of fixed-width columns to stdout.
void PrintRow(const std::vector<std::string>& cells, int width = 14);

/// Formats a double with `digits` decimals.
std::string Fmt(double x, int digits = 3);

}  // namespace bench
}  // namespace netclus

#endif  // NETCLUS_BENCH_BENCH_COMMON_H_
