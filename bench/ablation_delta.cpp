// Ablation A2: the Single-Link scalability heuristic (paper Section
// 4.4.2). Sweeps delta and reports the initial cluster count, the peak
// sizes of the pair heap P and node heap Q, the runtime, and whether the
// dendrogram above delta stays identical to the exact (delta = 0) run.
//
// Expected shape: initial clusters and heap sizes drop sharply with
// delta (the paper reports one order of magnitude at delta = 0.7 eps)
// while every cut above delta stays identical.
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/single_link.h"
#include "eval/metrics.h"

using namespace netclus;
using namespace netclus::bench;

int main() {
  double scale = BenchScale();
  std::printf("=== Ablation: Single-Link delta heuristic (scale %.2f) ===\n\n",
              scale);
  Dataset d = MakeDataset("OL", 1.0, 20000.0 / 6105.0, 10, 10);  // OL is small: always full size
  InMemoryNetworkView view(d.gen.net, d.workload.points);
  double eps = d.workload.max_intra_gap;
  std::printf("N = %u points, eps = %.4f\n\n", d.workload.points.size(), eps);

  SingleLinkResult exact =
      std::move(RunSingleLink(view, SingleLinkOptions{}).value());
  Clustering exact_cut = exact.dendrogram.CutAtDistance(eps, 2);

  PrintRow({"delta/eps", "init-clusters", "max|P|", "max|Q|", "time(s)",
            "cut@eps-same"});
  for (double frac : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9}) {
    SingleLinkOptions opts;
    opts.delta = frac * eps;
    WallTimer t;
    SingleLinkResult r = std::move(RunSingleLink(view, opts).value());
    double secs = t.ElapsedSeconds();
    Clustering cut = r.dendrogram.CutAtDistance(eps, 2);
    PrintRow({Fmt(frac, 1), std::to_string(r.stats.initial_clusters),
              std::to_string(r.stats.max_pair_heap),
              std::to_string(r.stats.max_node_heap), Fmt(secs, 3),
              SamePartition(cut.assignment, exact_cut.assignment) ? "yes"
                                                                  : "NO"});
  }
  std::printf(
      "\npaper shape: delta = 0.7 eps shrinks the starting cluster count\n"
      "and heaps by about an order of magnitude at identical results\n"
      "above delta.\n");
  return 0;
}
