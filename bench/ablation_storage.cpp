// Ablation A3: the disk storage architecture (paper Section 4.1 + the
// 1 MiB buffer / 4 KiB page setting of Section 5).
//
// Runs ε-Link over the disk-backed store and reports physical page reads
// for (a) CCAM-style connectivity placement vs. random placement of node
// records, and (b) a sweep of buffer pool sizes. Physical I/O is the
// hardware-independent cost signal of the paper's experiments.
#include <cstdio>

#include "bench_common.h"
#include "core/eps_link.h"
#include "graph/network_store.h"

using namespace netclus;
using namespace netclus::bench;

namespace {

struct IoResult {
  uint64_t physical_reads = 0;
  uint64_t logical = 0;
  double hit_rate = 0.0;
};

IoResult RunEpsLinkOnDisk(const Dataset& d, NodePlacement placement,
                          uint64_t pool_bytes, uint32_t page_size = 4096) {
  auto bundle = std::move(DiskNetworkBundle::Create(d.gen.net,
                                                    d.workload.points,
                                                    pool_bytes, page_size,
                                                    placement, 3)
                              .value());
  // Count only the clustering run, not the build.
  uint64_t before = bundle->TotalPhysicalReads();
  BufferStats bstats = bundle->buffer_manager().stats();
  uint64_t logical_before = bstats.logical_accesses();
  EpsLinkOptions opts;
  opts.eps = d.workload.max_intra_gap;
  (void)RunEpsLink(bundle->view(), opts).value();
  IoResult r;
  r.physical_reads = bundle->TotalPhysicalReads() - before;
  r.logical = bundle->buffer_manager().stats().logical_accesses() -
              logical_before;
  r.hit_rate = r.logical > 0
                   ? 1.0 - static_cast<double>(r.physical_reads) / r.logical
                   : 1.0;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablation: storage placement & buffer size ===\n\n");
  // TG at full size (18K nodes): the flat files span hundreds of pages,
  // so placement and buffer size actually matter.
  Dataset d = MakeDataset("TG", 1.0, 3.0, 10, 7);
  std::printf("network: %u nodes, %zu edges, %u points; eps-link workload\n\n",
              d.gen.net.num_nodes(), d.gen.net.num_edges(),
              d.workload.points.size());

  PrintRow({"buffer", "placement", "phys-reads", "logical", "hit-rate"});
  for (uint64_t kib : {64u, 128u, 256u, 512u, 1024u}) {
    for (auto [name, placement] :
         {std::pair<const char*, NodePlacement>{"connectivity",
                                                NodePlacement::kConnectivity},
          {"random", NodePlacement::kRandom}}) {
      IoResult r = RunEpsLinkOnDisk(d, placement, kib * 1024);
      PrintRow({std::to_string(kib) + "KiB", name,
                std::to_string(r.physical_reads), std::to_string(r.logical),
                Fmt(r.hit_rate, 4)});
    }
  }
  std::printf("\n--- page size sweep (256 KiB buffer, connectivity) ---\n");
  PrintRow({"page", "phys-reads", "phys-KiB", "logical"});
  for (uint32_t page : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    IoResult r = RunEpsLinkOnDisk(d, NodePlacement::kConnectivity, 256 * 1024,
                                  page);
    PrintRow({std::to_string(page / 1024) + "KiB",
              std::to_string(r.physical_reads),
              std::to_string(r.physical_reads * (page / 1024)),
              std::to_string(r.logical)});
  }

  std::printf(
      "\nexpected shape: connectivity placement needs fewer physical reads\n"
      "than random placement; physical reads fall as the buffer grows\n"
      "until the working set fits; larger pages trade fewer reads against\n"
      "more bytes transferred at a fixed buffer budget.\n");
  return 0;
}
