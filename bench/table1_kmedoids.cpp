// Table 1 (paper Section 5.2): execution cost of k-medoids on the four
// road networks NA / SF / TG / OL with N ~= 3 |V| points and k = 10.
//
// Columns: committed improving swaps ("# iterations"), wall time of the
// first full assignment ("first one"), and the mean time of a subsequent
// incremental swap evaluation ("next ones").
//
// Expected shape (paper): convergence after a handful of improving swaps,
// and an incremental iteration roughly 4x cheaper than the first.
#include <cstdio>

#include "bench_common.h"
#include "core/kmedoids.h"

using namespace netclus;
using namespace netclus::bench;

int main() {
  double scale = BenchScale();
  std::printf("=== Table 1: k-medoids cost (scale %.2f, k = 10) ===\n\n",
              scale);
  PrintRow({"dataset", "|V|", "N", "swaps", "first(s)", "next(s)",
            "first/next"});
  for (const char* name : {"NA", "SF", "TG", "OL"}) {
    Dataset d = MakeDataset(name, scale, 3.0, 10, 7);
    InMemoryNetworkView view(d.gen.net, d.workload.points);
    KMedoidsOptions opts;
    opts.k = 10;
    opts.seed = 42;
    opts.incremental_updates = true;
    KMedoidsResult r = std::move(KMedoidsCluster(view, opts).value());
    double ratio = r.stats.avg_swap_seconds > 0.0
                       ? r.stats.first_iteration_seconds /
                             r.stats.avg_swap_seconds
                       : 0.0;
    PrintRow({name, std::to_string(d.gen.net.num_nodes()),
              std::to_string(d.workload.points.size()),
              std::to_string(r.stats.committed_swaps),
              Fmt(r.stats.first_iteration_seconds, 4),
              Fmt(r.stats.avg_swap_seconds, 4), Fmt(ratio, 2)});
  }
  std::printf(
      "\npaper shape: 4-8 improving swaps; incremental iteration ~4x\n"
      "cheaper than the first (ratio grows with k, see Fig. 12).\n");
  return 0;
}
