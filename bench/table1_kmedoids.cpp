// Table 1 (paper Section 5.2): execution cost of k-medoids on the four
// road networks NA / SF / TG / OL with N ~= 3 |V| points and k = 10.
//
// Columns: committed improving swaps ("# iterations"), wall time of the
// first full assignment ("first one"), and the mean time of a subsequent
// incremental swap evaluation ("next ones").
//
// Expected shape (paper): convergence after a handful of improving swaps,
// and an incremental iteration roughly 4x cheaper than the first.
//
// A second section exercises the execution engine: 8 random restarts on
// the NA-sized network at 1 vs. 4 worker threads — wall time should drop
// toward the core count while cost and medoids stay bit-identical (the
// determinism-under-parallelism contract).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/kmedoids.h"

using namespace netclus;
using namespace netclus::bench;

int main() {
  double scale = BenchScale();
  std::printf("=== Table 1: k-medoids cost (scale %.2f, k = 10) ===\n\n",
              scale);

  // Sweep setup: the four datasets are independent work items; build
  // them in parallel on the bench thread budget.
  const std::vector<std::string> names = {"NA", "SF", "TG", "OL"};
  std::vector<Dataset> datasets(names.size());
  {
    ThreadPool pool(BenchThreads());
    ParallelFor(&pool, names.size(), [&](size_t i, uint32_t) {
      datasets[i] = MakeDataset(names[i], scale, 3.0, 10, 7);
    });
  }

  PrintRow({"dataset", "|V|", "N", "swaps", "first(s)", "next(s)",
            "first/next"});
  for (const Dataset& d : datasets) {
    InMemoryNetworkView view(d.gen.net, d.workload.points);
    KMedoidsOptions opts;
    opts.k = 10;
    opts.seed = 42;
    opts.incremental_updates = true;
    KMedoidsResult r = std::move(RunKMedoids(view, opts).value());
    double ratio = r.stats.avg_swap_seconds > 0.0
                       ? r.stats.first_iteration_seconds /
                             r.stats.avg_swap_seconds
                       : 0.0;
    PrintRow({d.name, std::to_string(d.gen.net.num_nodes()),
              std::to_string(d.workload.points.size()),
              std::to_string(r.stats.committed_swaps),
              Fmt(r.stats.first_iteration_seconds, 4),
              Fmt(r.stats.avg_swap_seconds, 4), Fmt(ratio, 2)});
  }
  std::printf(
      "\npaper shape: 4-8 improving swaps; incremental iteration ~4x\n"
      "cheaper than the first (ratio grows with k, see Fig. 12).\n");

  std::printf("\n=== Restart scaling: NA, 8 restarts, 1 vs 4 threads ===\n\n");
  {
    const Dataset& na = datasets[0];
    InMemoryNetworkView view(na.gen.net, na.workload.points);
    KMedoidsOptions opts;
    opts.k = 10;
    opts.seed = 42;
    opts.num_restarts = 8;

    PrintRow({"threads", "wall(s)", "cost"});
    double wall1 = 0.0, cost1 = 0.0;
    std::vector<PointId> medoids1;
    for (uint32_t threads : {1u, 4u}) {
      opts.num_threads = threads;
      WallTimer t;
      KMedoidsResult r = std::move(RunKMedoids(view, opts).value());
      double wall = t.ElapsedSeconds();
      PrintRow({std::to_string(threads), Fmt(wall, 3), Fmt(r.cost, 3)});
      if (threads == 1) {
        wall1 = wall;
        cost1 = r.cost;
        medoids1 = r.medoids;
      } else {
        bool identical = r.cost == cost1 && r.medoids == medoids1;
        std::printf("\nspeedup (1 -> %u threads): %.2fx  deterministic: %s\n",
                    threads, wall > 0.0 ? wall1 / wall : 0.0,
                    identical ? "yes (bit-identical cost + medoids)" : "NO");
      }
    }
  }
  return 0;
}
