// Figure 12 (paper Section 5.2): speedup of incremental medoid
// replacement (Inc_Medoid_Update) over re-running Medoid_Dist_Find from
// scratch after every swap, on the SF network with N ~= 500K points,
// as a function of k.
//
// Expected shape (paper): speedup grows with k — the larger k is, the
// smaller the fraction of the network affected by replacing one medoid.
#include <cstdio>

#include "bench_common.h"
#include "core/kmedoids.h"

using namespace netclus;
using namespace netclus::bench;

int main() {
  double scale = BenchScale();
  std::printf(
      "=== Figure 12: incremental replacement speedup on SF (scale %.2f) "
      "===\n\n",
      scale);
  // Paper: 500K points on SF (174,956 nodes) ~= 2.86 points per node.
  Dataset d = MakeDataset("SF", scale, 500000.0 / 174956.0, 10, 7);
  InMemoryNetworkView view(d.gen.net, d.workload.points);
  std::printf("network: %u nodes, %u points\n\n", d.gen.net.num_nodes(),
              d.workload.points.size());

  PrintRow({"k", "scratch(s)", "incremental(s)", "speedup"});
  for (uint32_t k : {2u, 5u, 10u, 25u, 50u}) {
    KMedoidsOptions opts;
    opts.k = k;
    opts.seed = 42;
    opts.max_unsuccessful_swaps = 8;
    opts.incremental_updates = true;
    KMedoidsResult inc = std::move(RunKMedoids(view, opts).value());
    opts.incremental_updates = false;
    KMedoidsResult scr = std::move(RunKMedoids(view, opts).value());
    // Identical seeds walk identical swap sequences, so the per-swap
    // averages are directly comparable.
    double speedup = inc.stats.avg_swap_seconds > 0.0
                         ? scr.stats.avg_swap_seconds /
                               inc.stats.avg_swap_seconds
                         : 0.0;
    PrintRow({std::to_string(k), Fmt(scr.stats.avg_swap_seconds, 4),
              Fmt(inc.stats.avg_swap_seconds, 4), Fmt(speedup, 2)});
  }
  std::printf("\npaper shape: speedup increases with k (x2 at k=2 up to\n"
              "x6-8 at k=50).\n");
  return 0;
}
