// Ablation A4: google-benchmark micro-benchmarks of the substrates the
// clustering algorithms are built on — Dijkstra traversals, point
// distance evaluation, range queries, B+-tree operations, and the buffer
// manager hit path.
//
// netclus-lint: allow-legacy-entry — the k-medoids micro-benchmark times
// the engine overload directly with a prebuilt accelerator; routing
// through RunClustering would rebuild the index inside the measured loop.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.h"
#include "core/kmedoids.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/dijkstra.h"
#include "graph/network_distance.h"
#include "graph/network_store.h"
#include "index/distance_index.h"
#include "storage/bptree.h"

namespace netclus {
namespace {

struct Fixture {
  GeneratedNetwork gen;
  PointSet points;
  std::unique_ptr<InMemoryNetworkView> view;

  explicit Fixture(NodeId nodes, PointId n_points) {
    gen = GenerateRoadNetwork({nodes, 1.3, 0.3, 99});
    points = std::move(GenerateUniformPoints(gen.net, n_points, 100)).value();
    view = std::make_unique<InMemoryNetworkView>(gen.net, points);
  }
};

Fixture& SharedFixture() {
  static Fixture f(20000, 60000);
  return f;
}

// The distance index over the shared fixture, built once on first use.
const DistanceIndex& SharedIndex() {
  static std::unique_ptr<DistanceIndex> index = [] {
    IndexOptions io;
    io.enable = true;
    io.num_landmarks = 8;
    return std::move(
        DistanceIndex::Build(*SharedFixture().view, io, nullptr).value());
  }();
  return *index;
}

// A sparser fixture for the indexed-vs-plain comparisons: nearest-object
// floors (and therefore the index's pruning leverage) shrink as point
// density grows, so the contrast benches run at ~0.25 points per node.
Fixture& SparseFixture() {
  static Fixture f(8000, 2000);
  return f;
}

const DistanceIndex& SparseIndex() {
  static std::unique_ptr<DistanceIndex> index = [] {
    IndexOptions io;
    io.enable = true;
    io.num_landmarks = 8;
    return std::move(
        DistanceIndex::Build(*SparseFixture().view, io, nullptr).value());
  }();
  return *index;
}

// Exports the settled-node / heap-pop deltas of the benchmark's whole
// run as per-iteration google-benchmark counters, so `index on` rows are
// directly comparable to their `index off` twins.
struct CounterScope {
  benchmark::State& state;
  TraversalCounters before;
  explicit CounterScope(benchmark::State& s)
      : state(s), before(LocalTraversalCounters()) {}
  ~CounterScope() {
    TraversalCounters d = LocalTraversalCounters() - before;
    auto rate = benchmark::Counter::kAvgIterations;
    state.counters["settled"] = benchmark::Counter(
        static_cast<double>(d.settled_nodes), rate);
    state.counters["heap_pops"] = benchmark::Counter(
        static_cast<double>(d.heap_pops), rate);
    state.counters["pruned"] = benchmark::Counter(
        static_cast<double>(d.pruned_nodes), rate);
  }
};

void BM_DijkstraFullSSSP(benchmark::State& state) {
  Fixture& f = SharedFixture();
  NodeId src = 0;
  for (auto _ : state) {
    std::vector<double> d = DijkstraDistances(*f.view, {{src, 0.0}});
    benchmark::DoNotOptimize(d.data());
    src = (src + 7919) % f.gen.net.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * f.gen.net.num_nodes());
}
BENCHMARK(BM_DijkstraFullSSSP)->Unit(benchmark::kMillisecond);

void BM_PointNetworkDistance(benchmark::State& state) {
  Fixture& f = SharedFixture();
  NodeScratch scratch(f.gen.net.num_nodes());
  Rng rng(5);
  for (auto _ : state) {
    PointId p = static_cast<PointId>(rng.NextBounded(f.points.size()));
    PointId q = static_cast<PointId>(rng.NextBounded(f.points.size()));
    benchmark::DoNotOptimize(PointNetworkDistance(*f.view, p, q, &scratch));
  }
}
BENCHMARK(BM_PointNetworkDistance)->Unit(benchmark::kMicrosecond);

void BM_RangeQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  NodeScratch scratch(f.gen.net.num_nodes());
  std::vector<RangeResult> out;
  Rng rng(6);
  double eps = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    PointId p = static_cast<PointId>(rng.NextBounded(f.points.size()));
    RangeQuery(*f.view, p, eps, &scratch, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RangeQuery)->Arg(5)->Arg(20)->Arg(50)->Unit(
    benchmark::kMicrosecond);

// Indexed-vs-plain range queries on the sparse fixture; arg = eps * 10.
// The `settled` / `heap_pops` counters are the comparison that matters:
// the indexed run answers the same queries settling fewer nodes (Voronoi
// floor pruning + landmark expansion bound).
void BM_RangeQueryContrast(benchmark::State& state) {
  Fixture& f = SparseFixture();
  const DistanceIndex* index = state.range(1) != 0 ? &SparseIndex() : nullptr;
  TraversalWorkspace ws(f.gen.net.num_nodes());
  std::vector<RangeResult> out;
  Rng rng(6);
  double eps = static_cast<double>(state.range(0)) / 10.0;
  CounterScope counters(state);
  for (auto _ : state) {
    PointId p = static_cast<PointId>(rng.NextBounded(f.points.size()));
    RangeQuery(*f.view, p, eps, &ws, index, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RangeQueryContrast)
    ->ArgNames({"eps10", "index"})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({150, 0})
    ->Args({150, 1})
    ->Unit(benchmark::kMicrosecond);

// Indexed point-to-point distance under a threshold cut (the question
// the k-medoids swap evaluation asks per point): cache hits and
// lower-bound cutoffs skip entire expansions.
void BM_PointNetworkDistanceIndexed(benchmark::State& state) {
  Fixture& f = SharedFixture();
  const DistanceIndex& index = SharedIndex();
  NodeScratch scratch(f.gen.net.num_nodes());
  Rng rng(5);
  CounterScope counters(state);
  for (auto _ : state) {
    PointId p = static_cast<PointId>(rng.NextBounded(f.points.size()));
    PointId q = static_cast<PointId>(rng.NextBounded(f.points.size()));
    benchmark::DoNotOptimize(
        PointNetworkDistance(*f.view, p, q, &scratch, &index, 5.0));
  }
}
BENCHMARK(BM_PointNetworkDistanceIndexed)->Unit(benchmark::kMicrosecond);

// Full k-medoids runs on the sparse fixture, index off (arg 0) vs on
// (arg 1): identical trajectories and results, with ALT lower bounds
// pruning provably non-improving swap evaluations in the `on` rows.
void BM_KMedoidsSwapEval(benchmark::State& state) {
  Fixture& f = SparseFixture();
  const DistanceIndex* index = state.range(0) != 0 ? &SparseIndex() : nullptr;
  KMedoidsOptions ko;
  ko.k = 8;
  ko.seed = 11;
  CounterScope counters(state);
  uint32_t pruned = 0;
  for (auto _ : state) {
    KMedoidsResult r =
        std::move(KMedoidsCluster(*f.view, ko, index, nullptr).value());
    pruned = r.stats.pruned_swaps;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["pruned_swaps"] = pruned;
}
BENCHMARK(BM_KMedoidsSwapEval)
    ->ArgNames({"index"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_BPlusTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto file = PagedFile::CreateInMemory(4096);
    BufferManager bm(1 << 20, 4096);
    FileId fid = bm.RegisterFile(file.get());
    auto tree = std::move(BPlusTree::Create(&bm, fid).value());
    Rng rng(7);
    state.ResumeTiming();
    for (int i = 0; i < 20000; ++i) {
      benchmark::DoNotOptimize(tree->Insert(rng.Next(), i).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_BPlusTreeInsert)->Unit(benchmark::kMillisecond);

void BM_BPlusTreeLookup(benchmark::State& state) {
  static auto file = PagedFile::CreateInMemory(4096);
  static BufferManager bm(1 << 22, 4096);
  static std::unique_ptr<BPlusTree> tree = [] {
    FileId fid = bm.RegisterFile(file.get());
    auto t = std::move(BPlusTree::Create(&bm, fid).value());
    std::vector<std::pair<uint64_t, uint64_t>> data;
    for (uint64_t i = 0; i < 100000; ++i) data.emplace_back(i * 3, i);
    (void)t->BulkLoad(data);
    return t;
  }();
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Get(rng.NextBounded(300000)));
  }
}
BENCHMARK(BM_BPlusTreeLookup);

void BM_BufferManagerHit(benchmark::State& state) {
  static auto file = PagedFile::CreateInMemory(4096);
  static BufferManager bm(1 << 20, 4096);
  static FileId fid = [] {
    FileId f = bm.RegisterFile(file.get());
    for (int i = 0; i < 64; ++i) (void)bm.NewPage(f);
    return f;
  }();
  Rng rng(9);
  for (auto _ : state) {
    Result<PageHandle> h = bm.FetchPage(fid, rng.NextBounded(64));
    benchmark::DoNotOptimize(h.value().data());
  }
}
BENCHMARK(BM_BufferManagerHit);

void BM_DiskAdjacencyRead(benchmark::State& state) {
  Fixture& f = SharedFixture();
  static auto bundle = std::move(
      DiskNetworkBundle::Create(SharedFixture().gen.net,
                                SharedFixture().points, 1 << 20, 4096,
                                NodePlacement::kConnectivity, 1)
          .value());
  Rng rng(10);
  for (auto _ : state) {
    NodeId n = static_cast<NodeId>(rng.NextBounded(f.gen.net.num_nodes()));
    double sum = 0.0;
    bundle->view().ForEachNeighbor(n, [&](NodeId, double w) { sum += w; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DiskAdjacencyRead);

void BM_WorkloadGeneration(benchmark::State& state) {
  Fixture& f = SharedFixture();
  uint64_t seed = 1;
  for (auto _ : state) {
    ClusterWorkloadSpec spec;
    spec.total_points = 20000;
    spec.num_clusters = 10;
    spec.s_init = 0.02;
    spec.seed = seed++;
    benchmark::DoNotOptimize(
        GenerateClusteredPoints(f.gen.net, spec).value().points.size());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace netclus

BENCHMARK_MAIN();
