// Table 2 (paper Section 5.2): execution cost of the four methods on the
// four road networks (same workloads as Table 1).
//
// k-medoids: cost of reaching one local optimum. DBSCAN: MinPts = 2 and
// the same eps as ε-Link (the minimum that recovers the generated
// clusters). Single-Link: full dendrogram with the delta heuristic
// (delta = 0.7 eps).
//
// Expected shape (paper): k-medoids >> DBSCAN > Single-Link > eps-Link.
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/dbscan.h"
#include "core/eps_link.h"
#include "core/kmedoids.h"
#include "core/single_link.h"

using namespace netclus;
using namespace netclus::bench;

int main() {
  double scale = BenchScale();
  std::printf("=== Table 2: method cost in seconds (scale %.2f) ===\n\n",
              scale);
  PrintRow({"dataset", "|V|", "N", "k-medoids", "DBSCAN", "eps-link",
            "single-link"});
  for (const char* name : {"NA", "SF", "TG", "OL"}) {
    Dataset d = MakeDataset(name, scale, 3.0, 10, 7);
    InMemoryNetworkView view(d.gen.net, d.workload.points);
    double eps = d.workload.max_intra_gap;

    WallTimer t;
    KMedoidsOptions ko;
    ko.k = 10;
    ko.seed = 42;
    KMedoidsResult km = std::move(RunKMedoids(view, ko).value());
    (void)km;
    double t_kmed = t.ElapsedSeconds();

    t.Restart();
    DbscanOptions dbo;
    dbo.eps = eps;
    dbo.min_pts = 2;
    Clustering db = std::move(RunDbscan(view, dbo).value());
    (void)db;
    double t_dbscan = t.ElapsedSeconds();

    t.Restart();
    EpsLinkOptions eo;
    eo.eps = eps;
    Clustering el = std::move(RunEpsLink(view, eo).value());
    (void)el;
    double t_epslink = t.ElapsedSeconds();

    t.Restart();
    SingleLinkOptions so;
    so.delta = 0.7 * eps;
    SingleLinkResult sl = std::move(RunSingleLink(view, so).value());
    (void)sl;
    double t_single = t.ElapsedSeconds();

    PrintRow({name, std::to_string(d.gen.net.num_nodes()),
              std::to_string(d.workload.points.size()), Fmt(t_kmed, 3),
              Fmt(t_dbscan, 3), Fmt(t_epslink, 3), Fmt(t_single, 3)});
  }
  std::printf("\npaper shape: k-medoids >> DBSCAN > single-link > eps-link\n");
  return 0;
}
