// Figure 11 (paper Section 5.1): clustering effectiveness.
//
// The paper shows scatter plots of the structures found on the OL network
// (20,000 points, k = 10 clusters, 1% outliers) by k-medoids (random and
// ideal seeding), DBSCAN / ε-Link, and Single-Link at three stages. We
// report the quantitative counterparts — ARI / NMI / purity against the
// generated ground truth, cluster and noise counts — plus coarse ASCII
// maps of the recovered structures.
//
// Expected shape (paper): k-medoids is visibly wrong even when ideally
// seeded (splits/merges clusters, absorbs outliers); DBSCAN and ε-Link
// recover the clusters exactly and identically; Single-Link recovers them
// at the dendrogram level right below the first sharp merge jump.
#include <cstdio>

#include "bench_common.h"
#include "core/dbscan.h"
#include "core/eps_link.h"
#include "core/interesting_levels.h"
#include "core/kmedoids.h"
#include "core/single_link.h"
#include "eval/evaluation.h"
#include "eval/metrics.h"

using namespace netclus;
using namespace netclus::bench;

namespace {

void Report(const char* name, const std::vector<int>& truth,
            const Clustering& c) {
  ClusterSummary s = Summarize(c);
  PrintRow({name,
            Fmt(AdjustedRandIndex(truth, c.assignment,
                                  NoiseHandling::kIgnore)),
            Fmt(NormalizedMutualInformation(truth, c.assignment,
                                            NoiseHandling::kIgnore)),
            Fmt(Purity(truth, c.assignment, NoiseHandling::kIgnore)),
            std::to_string(s.num_clusters), std::to_string(s.noise_points)},
           13);
}

}  // namespace

int main() {
  double scale = BenchScale();
  std::printf("=== Figure 11: effectiveness on OL (scale %.2f) ===\n", scale);
  // Paper: 20,000 points on OL (6105 nodes), k = 10, 1% outliers.
  Dataset d = MakeDataset("OL", 1.0, 20000.0 / 6105.0, 10, 10);  // OL is small: always full size
  const PointSet& pts = d.workload.points;
  std::printf("network: %u nodes, %zu edges; %u points in %u clusters\n\n",
              d.gen.net.num_nodes(), d.gen.net.num_edges(), pts.size(),
              d.spec.num_clusters);
  InMemoryNetworkView view(d.gen.net, pts);
  const std::vector<int>& truth = pts.labels();
  double eps = d.workload.max_intra_gap;

  PrintRow({"method", "ARI", "NMI", "purity", "clusters", "noise"}, 13);

  // (a) k-medoids, random initial medoids.
  KMedoidsOptions ko;
  ko.k = 10;
  ko.seed = 42;
  KMedoidsResult km = std::move(RunKMedoids(view, ko).value());
  Report("kmed-rand", truth, km.clustering);

  // (b) k-medoids seeded with the true cluster seeds ("best case").
  KMedoidsOptions ko_ideal = ko;
  ko_ideal.initial_medoids = d.workload.cluster_seeds;
  KMedoidsResult km_ideal =
      std::move(RunKMedoids(view, ko_ideal).value());
  Report("kmed-ideal", truth, km_ideal.clustering);

  // (c) DBSCAN and ε-Link with eps = max generator gap, MinPts = 2.
  DbscanOptions dbo;
  dbo.eps = eps;
  dbo.min_pts = 2;
  Clustering db = std::move(RunDbscan(view, dbo).value());
  Report("dbscan", truth, db);

  EpsLinkOptions eo;
  eo.eps = eps;
  eo.min_sup = 2;
  Clustering el = std::move(RunEpsLink(view, eo).value());
  Report("eps-link", truth, el);
  std::printf("dbscan == eps-link partitions: %s\n\n",
              SamePartition(db.assignment, el.assignment) ? "yes" : "NO");

  // (d-f) Single-Link with the delta heuristic, read at three stages.
  SingleLinkOptions so;
  so.delta = 0.7 * eps;
  SingleLinkResult sl = std::move(RunSingleLink(view, so).value());
  std::printf("single-link: initial clusters after delta phase = %zu "
              "(N = %u)\n",
              sl.stats.initial_clusters, pts.size());
  Clustering sl_at_delta = sl.dendrogram.CutAtDistance(so.delta, 2);
  Report("SL@delta", truth, sl_at_delta);
  Clustering sl_at_eps = sl.dendrogram.CutAtDistance(eps, 2);
  Report("SL@eps", truth, sl_at_eps);
  Clustering sl_at_6 = sl.dendrogram.CutAtLargeClusterCount(6, 100);
  Report("SL@6-large", truth, sl_at_6);
  std::printf("SL@eps == eps-link partitions: %s\n\n",
              SamePartition(sl_at_eps.assignment, el.assignment) ? "yes"
                                                                 : "NO");

  std::printf("--- ground truth map ---\n");
  Clustering truth_c;
  truth_c.assignment = truth;
  truth_c.num_clusters = 10;
  std::printf("%s\n", AsciiClusterMap(d.gen.net, pts, d.gen.coords, truth_c,
                                      16, 56)
                          .c_str());
  std::printf("--- eps-link map ---\n");
  std::printf("%s\n",
              AsciiClusterMap(d.gen.net, pts, d.gen.coords, el, 16, 56)
                  .c_str());
  std::printf("--- k-medoids (random seeds) map ---\n");
  std::printf("%s\n", AsciiClusterMap(d.gen.net, pts, d.gen.coords,
                                      km.clustering, 16, 56)
                          .c_str());
  return 0;
}
