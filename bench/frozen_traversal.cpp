// Frozen-traversal contrast: the same multi-source Dijkstra assignment
// pass (the k-medoids inner loop) over the live NetworkView (virtual
// dispatch + std::function per neighbor) and over the FrozenGraph CSR
// snapshot (inline pointer walk). The refactor's contract is measured
// directly:
//   - the settled-node / heap-op counters must match EXACTLY (the
//     snapshot replays the view's neighbor order, so the traversal is
//     the same computation) — any mismatch exits 1;
//   - the snapshot path must be >= 1.3x faster (best of interleaved
//     reps) — the de-virtualization payoff the PR claims.
// Emitted as BENCH_frozen_traversal.json for CI diffing; wired into
// `run_all.sh bench-smoke`.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/dijkstra.h"
#include "graph/frozen_graph.h"

using namespace netclus;
using namespace netclus::bench;

namespace {

// Best-of-reps: under a loaded machine the minimum approximates the
// true cost of the work, where a median still carries scheduler noise —
// and both paths get the same number of chances, interleaved.
double Best(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

}  // namespace

int main() {
  // Large enough that the per-neighbor dispatch cost dominates cache
  // noise; the assignment pass settles every reachable node.
  GeneratedNetwork gen = GenerateRoadNetwork({30000, 1.3, 0.3, 991});
  PointSet points =
      std::move(GenerateUniformPoints(gen.net, 2000, 992)).value();
  InMemoryNetworkView view(gen.net, points);
  FrozenGraph frozen = std::move(view.Freeze()).value();
  std::printf("frozen-traversal: %u nodes, %zu edges, %zu half-edge slots\n",
              gen.net.num_nodes(), gen.net.num_edges(),
              frozen.num_half_edges());

  // k multi-source seeds, as in the concurrent-expansion assignment
  // phase: every node is settled by its nearest seed.
  std::vector<DijkstraSource> sources;
  Rng rng(17);
  for (int i = 0; i < 8; ++i) {
    sources.push_back(DijkstraSource{
        static_cast<NodeId>(rng.NextBounded(gen.net.num_nodes())), 0.0});
  }

  const int kReps = 15;
  TraversalWorkspace ws(gen.net.num_nodes());
  std::vector<double> view_s, frozen_s;
  TraversalCounters view_total, frozen_total;
  std::vector<double> view_dist(gen.net.num_nodes());
  bool distances_match = true;

  // Interleaved reps: both paths see the same cache / frequency state.
  for (int rep = 0; rep < kReps; ++rep) {
    {
      TraversalCounters before = LocalTraversalCounters();
      WallTimer t;
      DijkstraDistances(view, sources, &ws);
      view_s.push_back(t.ElapsedSeconds());
      view_total = view_total + (LocalTraversalCounters() - before);
      for (NodeId n = 0; n < gen.net.num_nodes(); ++n) {
        view_dist[n] = ws.scratch.Get(n);
      }
    }
    {
      TraversalCounters before = LocalTraversalCounters();
      WallTimer t;
      DijkstraDistances(frozen, sources, &ws);
      frozen_s.push_back(t.ElapsedSeconds());
      frozen_total = frozen_total + (LocalTraversalCounters() - before);
      for (NodeId n = 0; n < gen.net.num_nodes(); ++n) {
        if (ws.scratch.Get(n) != view_dist[n]) distances_match = false;
      }
    }
  }

  double speedup = Best(view_s) / Best(frozen_s);
  PrintRow({"path", "best_ms", "settled", "heap_pushes", "heap_pops"}, 16);
  PrintRow({"view", Fmt(Best(view_s) * 1e3),
            std::to_string(view_total.settled_nodes),
            std::to_string(view_total.heap_pushes),
            std::to_string(view_total.heap_pops)},
           16);
  PrintRow({"frozen", Fmt(Best(frozen_s) * 1e3),
            std::to_string(frozen_total.settled_nodes),
            std::to_string(frozen_total.heap_pushes),
            std::to_string(frozen_total.heap_pops)},
           16);
  std::printf("speedup (view / frozen): %.2fx\n", speedup);

  BenchRecorder rec("frozen_traversal");
  rec.Add("assign_view", view_s, view_total, {});
  rec.Add("assign_frozen", frozen_s, frozen_total,
          {{"speedup_vs_view", speedup}});
  std::string path = rec.Write();
  std::printf("wrote %s\n", path.empty() ? "(json write FAILED)"
                                         : path.c_str());
  if (path.empty()) return 1;

  // Hard contracts, not soft regressions: same counters, same
  // distances, and the payoff the refactor exists for.
  bool counters_match =
      view_total.settled_nodes == frozen_total.settled_nodes &&
      view_total.heap_pushes == frozen_total.heap_pushes &&
      view_total.heap_pops == frozen_total.heap_pops;
  if (!counters_match) {
    std::printf("FAIL: traversal counters differ between view and frozen\n");
    return 1;
  }
  if (!distances_match) {
    std::printf("FAIL: settled distances differ between view and frozen\n");
    return 1;
  }
  if (speedup < 1.3) {
    std::printf("FAIL: speedup %.2fx below the 1.3x contract\n", speedup);
    return 1;
  }
  std::printf("OK: identical traversal, %.2fx faster over the snapshot\n",
              speedup);
  return 0;
}
