// Ablation A5: per-file I/O behaviour of the four methods over the disk
// store — the mechanism behind the paper's Section 5.2 cost discussion:
//
//   * k-medoids traverses the whole network repeatedly but scans the
//     points file sequentially once per iteration;
//   * DBSCAN issues a range query per point: many redundant accesses of
//     both files;
//   * ε-Link touches only the populated part of the network, but its
//     point accesses are random;
//   * Single-Link scans the points file once and then traverses the
//     network via the heaps.
//
// Logical accesses show the access-pattern volume; physical reads show
// how well each pattern survives a small (128 KiB) buffer.
#include <cstdio>

#include "bench_common.h"
#include "core/dbscan.h"
#include "core/eps_link.h"
#include "core/kmedoids.h"
#include "core/single_link.h"
#include "graph/network_store.h"

using namespace netclus;
using namespace netclus::bench;

int main() {
  double scale = BenchScale();
  std::printf("=== Ablation: per-method disk I/O (scale %.2f) ===\n\n",
              scale);
  Dataset d = MakeDataset("TG", 1.0, 3.0, 10, 7);  // TG full: real pressure
  (void)scale;
  double eps = d.workload.max_intra_gap;
  std::printf("network: %u nodes, %u points; 128 KiB buffer, 4 KiB pages\n\n",
              d.gen.net.num_nodes(), d.workload.points.size());

  PrintRow({"method", "logical", "phys-adj", "phys-adj-idx", "phys-pts",
            "phys-pts-idx"});
  auto run = [&](const char* name, auto&& algorithm) {
    auto bundle = std::move(DiskNetworkBundle::Create(d.gen.net,
                                                      d.workload.points,
                                                      128 * 1024, 4096,
                                                      NodePlacement::kConnectivity,
                                                      3)
                                .value());
    bundle->ResetIoStats();
    algorithm(bundle->view());
    DiskNetworkBundle::IoBreakdown io = bundle->GetIoBreakdown();
    PrintRow({name,
              std::to_string(bundle->buffer_manager().stats()
                                 .logical_accesses()),
              std::to_string(io.adj_flat.page_reads),
              std::to_string(io.adj_index.page_reads),
              std::to_string(io.pts_flat.page_reads),
              std::to_string(io.pts_index.page_reads)});
  };

  run("k-medoids", [&](const NetworkView& view) {
    KMedoidsOptions opts;
    opts.k = 10;
    opts.seed = 42;
    opts.max_unsuccessful_swaps = 5;
    (void)RunKMedoids(view, opts).value();
  });
  run("dbscan", [&](const NetworkView& view) {
    DbscanOptions opts;
    opts.eps = eps;
    opts.min_pts = 2;
    (void)RunDbscan(view, opts).value();
  });
  run("eps-link", [&](const NetworkView& view) {
    EpsLinkOptions opts;
    opts.eps = eps;
    (void)RunEpsLink(view, opts).value();
  });
  run("single-link", [&](const NetworkView& view) {
    SingleLinkOptions opts;
    opts.delta = 0.7 * eps;
    (void)RunSingleLink(view, opts).value();
  });

  std::printf(
      "\nexpected shape: k-medoids dominates the adjacency I/O (whole-graph\n"
      "traversal per swap); DBSCAN issues the most point-file reads (one\n"
      "range query per point); eps-link touches both files least;\n"
      "single-link sits between, scanning the points file once.\n");
  return 0;
}
