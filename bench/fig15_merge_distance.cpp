// Figure 15 (paper Section 5.3): merge distance of the last 49 cluster
// pairs popped while Single-Link clusters the OL dataset of Section 5.1,
// plus the automatic interesting-level detection built on the windowed
// average of merge-distance differences.
//
// Expected shape (paper): a staircase with a handful of sharp jumps; the
// sharpest one occurs when the merge distance reaches eps — the moment
// the generated clusters have all been discovered.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/interesting_levels.h"
#include "core/single_link.h"
#include "eval/metrics.h"

using namespace netclus;
using namespace netclus::bench;

int main() {
  double scale = BenchScale();
  std::printf("=== Figure 15: Single-Link merge distances on OL (scale %.2f) "
              "===\n\n",
              scale);
  Dataset d = MakeDataset("OL", 1.0, 20000.0 / 6105.0, 10, 10);  // OL is small: always full size
  InMemoryNetworkView view(d.gen.net, d.workload.points);
  double eps = d.workload.max_intra_gap;
  SingleLinkOptions so;
  so.delta = 0.7 * eps;
  SingleLinkResult r = std::move(RunSingleLink(view, so).value());

  std::vector<double> heights;
  for (const Merge& m : r.dendrogram.merges()) heights.push_back(m.distance);
  std::sort(heights.begin(), heights.end());

  std::printf("eps (max generator gap) = %.4f\n", eps);
  std::printf("last 49 merge distances (ascending), '*' marks d > eps:\n");
  size_t start = heights.size() > 49 ? heights.size() - 49 : 0;
  for (size_t i = start; i < heights.size(); ++i) {
    int bar = static_cast<int>(
        std::min(60.0, 60.0 * heights[i] / heights.back()));
    std::printf("%4zu %9.4f %c |%s\n", heights.size() - i, heights[i],
                heights[i] > eps ? '*' : ' ', std::string(bar, '#').c_str());
  }

  InterestingLevelOptions ilo;
  ilo.window = 10;
  ilo.factor = 5.0;
  std::vector<InterestingLevel> levels =
      DetectInterestingLevels(r.dendrogram, ilo);
  std::printf("\ndetected interesting levels (window=10, factor=5):\n");
  for (const InterestingLevel& l : levels) {
    Clustering cut = r.dendrogram.CutAtDistance(l.distance_before, 100);
    double ari = AdjustedRandIndex(d.workload.points.labels(),
                                   cut.assignment, NoiseHandling::kIgnore);
    std::printf(
        "  jump %8.4f -> %8.4f (x%.1f avg)  clusters(min 100 pts)=%d  "
        "ARI=%.3f\n",
        l.distance_before, l.distance_after, l.jump_ratio, cut.num_clusters,
        ari);
  }
  std::printf(
      "\npaper shape: sharp jumps mark meaningful clustering levels; the\n"
      "sharpest occurs when the merge distance reaches eps and the 10\n"
      "generated clusters stand discovered.\n");
  return 0;
}
