// Running the clustering algorithms over the disk-resident storage
// architecture of paper Section 4.1: flat adjacency-list and points files
// indexed by sparse B+-trees behind a 1 MiB LRU buffer (the paper's
// experimental setting). The same algorithm code runs unchanged over the
// DiskNetworkView, and the buffer statistics expose the I/O behaviour.
#include <cstdio>

#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/network_store.h"
#include "netclus.h"

using namespace netclus;

int main() {
  GeneratedNetwork g = GenerateRoadNetwork(SpecTG(1.0));  // 18K nodes
  double total_length = 0.0;
  for (const Edge& e : g.net.Edges()) total_length += e.weight;
  ClusterWorkloadSpec spec;
  spec.total_points = 3 * g.net.num_nodes();
  spec.num_clusters = 10;
  spec.outlier_fraction = 0.01;
  spec.s_init = 0.06 * total_length / (3.0 * 0.99 * spec.total_points);
  spec.seed = 7;
  GeneratedWorkload w = std::move(GenerateClusteredPoints(g.net, spec).value());

  // Build the four files (in-memory paged files here; PagedFile::Open
  // gives real on-disk files) behind one 1 MiB buffer pool.
  auto bundle = std::move(DiskNetworkBundle::Create(g.net, w.points, 1 << 20,
                                                    4096,
                                                    NodePlacement::kConnectivity,
                                                    1)
                              .value());
  std::printf("store built: %u nodes, %u points behind a 1 MiB buffer\n\n",
              bundle->store().num_nodes(), bundle->store().num_points());

  auto report = [&](const char* what) {
    const BufferStats& s = bundle->buffer_manager().stats();
    std::printf("%-22s logical=%8llu physical=%6llu hit-rate=%.4f\n", what,
                static_cast<unsigned long long>(s.logical_accesses()),
                static_cast<unsigned long long>(bundle->TotalPhysicalReads()),
                s.logical_accesses() > 0
                    ? 1.0 - static_cast<double>(bundle->TotalPhysicalReads()) /
                                s.logical_accesses()
                    : 1.0);
  };
  report("after build:");

  EpsLinkOptions eo;
  eo.eps = w.max_intra_gap;
  eo.min_sup = 10;
  Clustering c = std::move(
      RunClustering(bundle->view(), MakeSpec(eo)).value().clustering);
  std::printf("\neps-link on disk store: %d clusters\n", c.num_clusters);
  report("after eps-link:");

  KMedoidsOptions ko;
  ko.k = 10;
  ko.seed = 42;
  ko.max_unsuccessful_swaps = 5;
  ClusterOutput km =
      std::move(RunClustering(bundle->view(), MakeSpec(ko)).value());
  std::printf("\nk-medoids on disk store: cost R = %.1f after %u swaps\n",
              km.cost, km.kmedoids_stats.attempted_swaps);
  report("after k-medoids:");
  return 0;
}
