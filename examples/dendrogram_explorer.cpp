// Exploring the cluster hierarchy with Single-Link (paper Sections 4.4
// and 5.3): compute the dendrogram once, then read clusterings at every
// resolution — by distance threshold, by cluster count, and at the
// automatically detected "interesting levels" where the merge distance
// jumps.
#include <algorithm>
#include <cstdio>

#include "core/interesting_levels.h"
#include "eval/evaluation.h"
#include "eval/metrics.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "netclus.h"

using namespace netclus;

int main() {
  GeneratedNetwork g = GenerateRoadNetwork({3000, 1.3, 0.3, 77});
  double total_length = 0.0;
  for (const Edge& e : g.net.Edges()) total_length += e.weight;

  // A two-resolution structure: 4 sparse regions, each containing a pair
  // of dense cores — generated as 8 clusters whose seeds pair up by
  // construction of the workload seed.
  ClusterWorkloadSpec spec;
  spec.total_points = 4000;
  spec.num_clusters = 8;
  spec.outlier_fraction = 0.01;
  spec.s_init = 0.05 * total_length / (3.0 * 3960);
  spec.seed = 21;
  GeneratedWorkload w = std::move(GenerateClusteredPoints(g.net, spec).value());
  InMemoryNetworkView view(g.net, w.points);

  SingleLinkOptions opts;
  opts.delta = 0.5 * w.max_intra_gap;  // scalability heuristic
  ClusterOutput out = std::move(RunClustering(view, MakeSpec(opts)).value());
  const Dendrogram& dendrogram = *out.dendrogram;
  std::printf("single-link: %zu merges recorded, %zu initial clusters after "
              "delta pre-merge\n\n",
              dendrogram.merges().size(),
              out.single_link_stats.initial_clusters);

  // 1. Cut by distance.
  std::printf("--- cuts by distance threshold ---\n");
  for (double frac : {0.5, 1.0, 2.0, 8.0}) {
    double threshold = frac * w.max_intra_gap;
    Clustering c = dendrogram.CutAtDistance(threshold, 20);
    std::printf("  cut @ %.3f: %d clusters (ARI vs truth %.3f)\n", threshold,
                c.num_clusters,
                AdjustedRandIndex(w.points.labels(), c.assignment,
                                  NoiseHandling::kIgnore));
  }

  // 2. Cut by desired number of large clusters.
  std::printf("\n--- cuts by large-cluster count ---\n");
  for (uint32_t k : {8u, 4u, 2u}) {
    Clustering c = dendrogram.CutAtLargeClusterCount(k, 50);
    std::printf("  k = %u: %d clusters of >= 50 points\n", k, c.num_clusters);
  }

  // 3. Automatic interesting levels (paper Section 5.3).
  std::printf("\n--- detected interesting levels ---\n");
  InterestingLevelOptions ilo;
  ilo.window = 10;
  ilo.factor = 5.0;
  for (const InterestingLevel& level :
       DetectInterestingLevels(dendrogram, ilo)) {
    Clustering c = dendrogram.CutAtDistance(level.distance_before, 20);
    std::printf(
        "  jump x%-7.1f at %.3f -> %.3f: %d clusters, ARI vs truth %.3f\n",
        level.jump_ratio, level.distance_before, level.distance_after,
        c.num_clusters,
        AdjustedRandIndex(w.points.labels(), c.assignment,
                          NoiseHandling::kIgnore));
  }
  return 0;
}
