// Section 6 scenario: clustering across different networks. A road
// network and a canal network are combined through transition edges
// (piers with a boarding cost); shortest paths — and clusters — then span
// both networks.
//
// The demo shows the same point set clustered three ways: on the road
// network alone, on the canal network alone, and on the combined network,
// where a cheap pier connection fuses a road-side and a canal-side group
// into one waterfront cluster.
#include <cstdio>

#include "netclus.h"
#include "eval/evaluation.h"
#include "ext/multi_network.h"
#include "gen/network_gen.h"
#include "graph/network.h"

using namespace netclus;

namespace {
int CountClusters(const NetworkView& view, double eps) {
  EpsLinkOptions opts;
  opts.eps = eps;
  return std::move(RunClustering(view, MakeSpec(opts))).value().clustering.num_clusters;
}
}  // namespace

int main() {
  // Roads: a 6x6 grid. Canals: a single long waterway.
  Network roads = MakeGridNetwork(6, 6, 1.0);
  Network canal = MakePathNetwork(8, 1.0);

  // Cafes on the road grid near node 35 (bottom-right corner) and along
  // the canal's middle.
  PointSetBuilder road_b;
  road_b.Add(34, 35, 0.2, 0);
  road_b.Add(34, 35, 0.5, 0);
  road_b.Add(34, 35, 0.8, 0);
  PointSet road_pts = std::move(std::move(road_b).Build(roads)).value();

  PointSetBuilder canal_b;
  canal_b.Add(0, 1, 0.1, 1);
  canal_b.Add(0, 1, 0.4, 1);
  canal_b.Add(0, 1, 0.7, 1);
  PointSet canal_pts = std::move(std::move(canal_b).Build(canal)).value();

  const double eps = 0.8;
  InMemoryNetworkView road_view(roads, road_pts);
  InMemoryNetworkView canal_view(canal, canal_pts);
  std::printf("separate networks: %d road cluster(s), %d canal cluster(s)\n",
              CountClusters(road_view, eps), CountClusters(canal_view, eps));

  // A pier links road node 35 to canal node 0 with a 0.3 boarding cost.
  CombinedNetwork combined =
      std::move(CombineNetworks(roads, canal, {{35, 0, 0.3}}).value());
  PointSet all_pts =
      std::move(CombinePointSets(combined, road_pts, canal_pts).value());
  InMemoryNetworkView combined_view(combined.net, all_pts);
  Clustering joined =
      std::move(RunClustering(combined_view, MakeSpec(EpsLinkOptions{eps, 1}))
                    .value()
                    .clustering);
  std::printf("combined via pier (cost 0.3): %d cluster(s)\n",
              joined.num_clusters);
  std::printf("  road cafe #0 and canal cafe #%u share cluster: %s\n",
              all_pts.size() - 1,
              joined.assignment.front() == joined.assignment.back() ? "yes"
                                                                    : "no");

  // An expensive pier (ferry toll) keeps the groups apart.
  CombinedNetwork tolled =
      std::move(CombineNetworks(roads, canal, {{35, 0, 2.5}}).value());
  PointSet tolled_pts =
      std::move(CombinePointSets(tolled, road_pts, canal_pts).value());
  InMemoryNetworkView tolled_view(tolled.net, tolled_pts);
  std::printf("combined via tolled pier (cost 2.5): %d cluster(s)\n",
              CountClusters(tolled_view, eps));
  return 0;
}
