// Quickstart: build a tiny spatial network, place points on its edges,
// and run all three clustering paradigms through the unified entry
// point — RunClustering(view, MakeSpec(options)).
//
// The network is the one from the paper's Figure 1 (six nodes, seven
// edges, six points).
#include <cstdio>

#include "graph/network.h"
#include "netclus.h"

using namespace netclus;

namespace {
void PrintClustering(const char* name, const Clustering& c) {
  std::printf("%-12s clusters=%d assignment=[", name, c.num_clusters);
  for (size_t i = 0; i < c.assignment.size(); ++i) {
    std::printf("%s%d", i > 0 ? " " : "", c.assignment[i]);
  }
  std::printf("]\n");
}
}  // namespace

int main() {
  // --- 1. Build the network of the paper's Figure 1.
  Network net(6);
  (void)net.AddEdge(0, 1, 2.7);   // n1-n2
  (void)net.AddEdge(0, 2, 4.5);   // n1-n3
  (void)net.AddEdge(1, 2, 2.5);   // n2-n3
  (void)net.AddEdge(1, 3, 3.0);   // n2-n4
  (void)net.AddEdge(2, 4, 4.0);   // n3-n5
  (void)net.AddEdge(3, 5, 3.2);   // n4-n6
  (void)net.AddEdge(4, 5, 6.0);   // n5-n6

  // --- 2. Place points on edges: <smaller node, larger node, offset>.
  PointSetBuilder builder;
  builder.Add(0, 1, 1.2, /*label=*/-1);  // p1 on n1-n2
  builder.Add(0, 2, 1.0, -1);            // p2 on n1-n3
  builder.Add(0, 2, 3.3, -1);            // p3 (1.0 + 2.3 along the edge)
  builder.Add(2, 4, 2.8, -1);            // p5 on n3-n5
  builder.Add(1, 3, 2.5, -1);            // p6 on n2-n4
  builder.Add(4, 5, 5.1, -1);            // p4 on n5-n6
  Result<PointSet> points = std::move(builder).Build(net);
  if (!points.ok()) {
    std::fprintf(stderr, "points: %s\n", points.status().ToString().c_str());
    return 1;
  }
  InMemoryNetworkView view(net, points.value());
  std::printf("network: %u nodes, %zu edges, %u points\n\n", net.num_nodes(),
              net.num_edges(), view.num_points());

  // --- 3. Partitioning: k-medoids with k = 2.
  KMedoidsOptions kopts;
  kopts.k = 2;
  kopts.seed = 3;
  Result<ClusterOutput> km = RunClustering(view, MakeSpec(kopts));
  if (!km.ok()) {
    std::fprintf(stderr, "kmedoids: %s\n", km.status().ToString().c_str());
    return 1;
  }
  PrintClustering("k-medoids", km.value().clustering);
  std::printf("             medoids: p%u p%u, cost R=%.2f\n",
              km.value().medoids[0], km.value().medoids[1], km.value().cost);

  // --- 4. Density-based: ε-Link and DBSCAN with the same eps.
  EpsLinkOptions eopts;
  eopts.eps = 3.0;
  Result<ClusterOutput> el = RunClustering(view, MakeSpec(eopts));
  if (!el.ok()) return 1;
  PrintClustering("eps-link", el.value().clustering);

  DbscanOptions dopts;
  dopts.eps = 3.0;
  dopts.min_pts = 2;
  Result<ClusterOutput> db = RunClustering(view, MakeSpec(dopts));
  if (!db.ok()) return 1;
  PrintClustering("dbscan", db.value().clustering);

  // --- 5. Hierarchical: the full Single-Link dendrogram.
  Result<ClusterOutput> sl = RunClustering(view, MakeSpec(SingleLinkOptions{}));
  if (!sl.ok()) return 1;
  const Dendrogram& dendrogram = *sl.value().dendrogram;
  std::printf("\nsingle-link dendrogram (%zu merges):\n",
              dendrogram.merges().size());
  for (const Merge& m : dendrogram.merges()) {
    std::printf("  merge p%u + p%u at distance %.2f\n", m.a, m.b, m.distance);
  }
  PrintClustering("\ncut@3.0", dendrogram.CutAtDistance(3.0));
  return 0;
}
