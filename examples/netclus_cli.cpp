// netclus_cli: drive the library from the command line on text network
// files (see graph/text_io.h for the format).
//
//   netclus_cli generate --nodes 2000 --points 6000 --clusters 8
//       --seed 7 --out town.net
//   netclus_cli suggest --in town.net
//   netclus_cli cluster --in town.net --algo epslink --eps auto
//   netclus_cli cluster --in town.net --algo kmedoids --k 8
//   netclus_cli cluster --in town.net --algo singlelink --cut 0.5
//   netclus_cli serve --in town.net --workers 4 --clients 4
//       --queries 2000 --mutations 16
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/parameter_selection.h"
#include "eval/evaluation.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/text_io.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "netclus.h"
#include "server/query_server.h"
#include "server/wal.h"
#include "storage/paged_file.h"

using namespace netclus;

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: netclus_cli generate|suggest|cluster [flags]\n"
               "  generate --nodes N --points P --clusters K [--seed S] "
               "--out FILE\n"
               "  suggest  --in FILE\n"
               "  cluster  --in FILE --algo "
               "kmedoids|epslink|dbscan|singlelink\n"
               "           [--eps E|auto] [--k K] [--minpts M] [--minsup M]\n"
               "           [--delta D] [--cut D] [--seed S]\n"
               "           [--threads T] [--restarts R]\n"
               "           [--index on|off] [--landmarks K] [--cache-cap N]\n"
               "           [--voronoi on|off]\n"
               "  serve    --in FILE [--workers W] [--clients C]\n"
               "           [--queries N] [--mutations M] [--eps E|auto]\n"
               "           [--validate on|off] [--seed S]\n"
               "           [--wal FILE] [--wal-checkpoint-every N]\n"
               "           [--deadline-ms D]\n"
               "           [--port P] [--port-file F] [--serve-seconds S]\n"
               "           [--stop-file F]\n"
               "  wal      inspect --wal FILE\n"
               "  query    --in FILE --connect HOST:PORT [--queries N]\n"
               "           [--clients C] [--check on|off] [--eps E|auto]\n"
               "           [--seed S] [--deadline-ms D]\n");
  return 2;
}

// Offline diagnostics for a server's durability files: the mutation log
// (sequence base, record count, torn-tail scrub results) plus both
// checkpoint slots. Same page size and slot naming as the server, so it
// reads exactly what `serve --wal FILE` would recover from. Opening the
// log performs the same torn-tail scrub recovery would.
int RunWalInspect(int argc, char** argv) {
  constexpr uint32_t kWalPageSize = 4096;  // must match the server's
  const char* path = FlagValue(argc, argv, "--wal", nullptr);
  if (path == nullptr) return Usage();
  FILE* probe = std::fopen(path, "rb");
  if (probe == nullptr) {
    std::fprintf(stderr, "error: no WAL at %s\n", path);
    return 1;
  }
  std::fclose(probe);

  bool log_ok = true;
  Result<std::unique_ptr<PagedFile>> file =
      PagedFile::Open(path, kWalPageSize, /*truncate=*/false);
  if (!file.ok()) return Fail(file.status());
  Result<std::unique_ptr<MutationWal>> wal =
      MutationWal::Open(file.value().get());
  if (!wal.ok()) {
    log_ok = false;
    std::printf("wal %s: UNREADABLE (%s)\n", path,
                wal.status().ToString().c_str());
  } else {
    const MutationWal& log = *wal.value();
    std::printf("wal %s: %llu records, sequence [%llu, %llu)\n", path,
                static_cast<unsigned long long>(log.num_records()),
                static_cast<unsigned long long>(log.start_seq()),
                static_cast<unsigned long long>(log.next_seq()));
    if (log.recovery().records_dropped > 0) {
      std::printf("  torn tail: %llu record(s) scrubbed\n",
                  static_cast<unsigned long long>(
                      log.recovery().records_dropped));
    }
  }

  Result<std::unique_ptr<CheckpointStore>> store =
      CheckpointStore::Open(path, kWalPageSize);
  if (!store.ok()) return Fail(store.status());
  for (int slot = 0; slot < 2; ++slot) {
    const char name = slot == 0 ? 'a' : 'b';
    CheckpointSlotInfo info = store.value()->InspectSlot(slot);
    if (!info.present) {
      std::printf("checkpoint %s.ckpt.%c: empty\n", path, name);
    } else if (info.valid) {
      std::printf("checkpoint %s.ckpt.%c: generation %llu, covers seq %llu, "
                  "%llu edges, %llu points, %llu bytes\n",
                  path, name,
                  static_cast<unsigned long long>(info.generation),
                  static_cast<unsigned long long>(info.covers_seq),
                  static_cast<unsigned long long>(info.num_edges),
                  static_cast<unsigned long long>(info.num_points),
                  static_cast<unsigned long long>(info.total_bytes));
    } else {
      std::printf("checkpoint %s.ckpt.%c: INVALID (%s) — header claims "
                  "generation %llu, covers seq %llu\n",
                  path, name, info.detail.c_str(),
                  static_cast<unsigned long long>(info.generation),
                  static_cast<unsigned long long>(info.covers_seq));
    }
  }
  return log_ok ? 0 : 1;
}

int RunGenerate(int argc, char** argv) {
  NodeId nodes = static_cast<NodeId>(
      std::atol(FlagValue(argc, argv, "--nodes", "2000")));
  PointId points = static_cast<PointId>(
      std::atol(FlagValue(argc, argv, "--points", "6000")));
  uint32_t clusters = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--clusters", "8")));
  uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "--seed", "7")));
  const char* out = FlagValue(argc, argv, "--out", nullptr);
  if (out == nullptr) return Usage();

  GeneratedNetwork g = GenerateRoadNetwork({nodes, 1.3, 0.3, seed});
  double total = 0.0;
  for (const Edge& e : g.net.Edges()) total += e.weight;
  ClusterWorkloadSpec spec;
  spec.total_points = points;
  spec.num_clusters = clusters;
  spec.outlier_fraction = 0.01;
  spec.s_init = 0.06 * total / (3.0 * 0.99 * points);
  spec.seed = seed + 1;
  Result<GeneratedWorkload> w = GenerateClusteredPoints(g.net, spec);
  if (!w.ok()) return Fail(w.status());
  Status s = SaveNetworkFile(out, g.net, &w.value().points);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %u nodes, %zu edges, %u points "
              "(suggested eps from generator: %.6f)\n",
              out, g.net.num_nodes(), g.net.num_edges(), points,
              w.value().max_intra_gap);
  return 0;
}

int RunSuggest(const InMemoryNetworkView& view) {
  Result<double> eps = SuggestEps(view, EpsSuggestionOptions{});
  if (eps.ok()) {
    std::printf("suggested eps:   %.6f\n", eps.value());
  } else {
    std::printf("suggested eps:   n/a (%s)\n", eps.status().ToString().c_str());
  }
  Result<double> delta = SuggestDelta(view, 0.7);
  if (delta.ok()) {
    std::printf("suggested delta: %.6f\n", delta.value());
  } else {
    std::printf("suggested delta: n/a (%s)\n",
                delta.status().ToString().c_str());
  }
  return 0;
}

// Builds a ClusterSpec from the command-line flags and runs it through
// the library's single entry point (RunClustering, via the evaluation
// module's scoring wrapper).
int RunCluster(int argc, char** argv, const InMemoryNetworkView& view,
               const PointSet& points) {
  Result<Algorithm> algo =
      ParseAlgorithm(FlagValue(argc, argv, "--algo", "epslink"));
  if (!algo.ok()) {
    std::fprintf(stderr, "%s\n", algo.status().ToString().c_str());
    return Usage();
  }
  double eps = 0.0;
  std::string eps_flag = FlagValue(argc, argv, "--eps", "auto");
  if (eps_flag == "auto") {
    Result<double> suggested = SuggestEps(view, EpsSuggestionOptions{});
    if (!suggested.ok()) return Fail(suggested.status());
    eps = suggested.value();
    std::printf("eps = %.6f (auto)\n", eps);
  } else {
    eps = std::atof(eps_flag.c_str());
  }
  uint32_t threads = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--threads", "1")));

  ClusterSpec spec;
  spec.algorithm = algo.value();
  spec.eps_link.eps = eps;
  spec.eps_link.min_sup = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--minsup", "2")));
  spec.dbscan.eps = eps;
  spec.dbscan.min_pts = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--minpts", "2")));
  spec.dbscan.num_threads = threads;
  spec.kmedoids.k =
      static_cast<uint32_t>(std::atol(FlagValue(argc, argv, "--k", "8")));
  spec.kmedoids.seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--seed", "42")));
  spec.kmedoids.num_restarts = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--restarts", "1")));
  spec.kmedoids.num_threads = threads;
  spec.single_link.delta = std::atof(FlagValue(argc, argv, "--delta", "0"));
  double cut = std::atof(FlagValue(argc, argv, "--cut", "0"));
  spec.cut_distance = cut > 0.0 ? cut : eps;
  spec.cut_min_size = 2;

  // Distance index knobs (see IndexOptions in index/distance_index.h);
  // results are identical with the index on or off.
  spec.index.enable =
      std::strcmp(FlagValue(argc, argv, "--index", "off"), "on") == 0;
  spec.index.num_landmarks = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--landmarks", "8")));
  spec.index.cache_capacity = static_cast<size_t>(
      std::atoll(FlagValue(argc, argv, "--cache-cap", "65536")));
  spec.index.enable_voronoi =
      std::strcmp(FlagValue(argc, argv, "--voronoi", "on"), "off") != 0;
  spec.index.num_threads = threads;
  if (spec.index.enable) {
    std::printf("index: %u landmarks, cache capacity %zu, voronoi %s\n",
                spec.index.num_landmarks, spec.index.cache_capacity,
                spec.index.enable_voronoi ? "on" : "off");
  }

  Result<EvaluationReport> report =
      EvaluateClustering(view, spec, points.labels());
  if (!report.ok()) return Fail(report.status());
  std::fputs(FormatReport(report.value()).c_str(), stdout);
  return 0;
}

// An in-process serving demo over the loaded file: starts a QueryServer
// (which runs the initial ε-Link clustering so membership queries have
// an answer), drives it with concurrent client threads issuing a mixed
// query workload while this thread applies point mutations — each batch
// of which publishes a new RCU epoch — then prints the serving stats.
int RunServe(int argc, char** argv, const Network& net,
             const PointSet& points, const InMemoryNetworkView& view) {
  uint32_t workers = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--workers", "4")));
  uint32_t clients = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--clients", "4")));
  if (clients == 0) clients = 1;
  uint64_t queries = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--queries", "2000")));
  uint32_t mutations = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--mutations", "16")));
  uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "--seed", "42")));

  double eps = 0.0;
  std::string eps_flag = FlagValue(argc, argv, "--eps", "auto");
  if (eps_flag == "auto") {
    Result<double> suggested = SuggestEps(view, EpsSuggestionOptions{});
    if (!suggested.ok()) return Fail(suggested.status());
    eps = suggested.value();
    std::printf("eps = %.6f (auto)\n", eps);
  } else {
    eps = std::atof(eps_flag.c_str());
  }

  QueryServerOptions opts;
  opts.num_workers = workers;
  opts.validate_replay =
      std::strcmp(FlagValue(argc, argv, "--validate", "off"), "on") == 0;
  ClusterSpec spec;
  spec.algorithm = Algorithm::kEpsLink;
  spec.eps_link.eps = eps;
  spec.eps_link.min_sup = 2;
  opts.cluster_spec = spec;

  // --wal FILE makes mutations durable: accepted updates are logged
  // before they are applied, and a restart on the same file replays
  // them before publishing epoch 1 (a torn tail is truncated; a corrupt
  // middle refuses to boot).
  opts.wal_path = FlagValue(argc, argv, "--wal", "");
  // --wal-checkpoint-every N bounds replay: once the log holds N
  // records, the whole world is checkpointed into <wal>.ckpt.{a,b} and
  // the log is truncated behind it.
  opts.wal_checkpoint_every = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--wal-checkpoint-every", "0")));
  // --deadline-ms D stamps a soft deadline on every client query;
  // expired requests are shed or cancelled mid-traversal and resolve
  // with kDeadlineExceeded instead of blocking the queue.
  const double deadline_ms =
      std::atof(FlagValue(argc, argv, "--deadline-ms", "0"));

  Result<std::unique_ptr<QueryServer>> started =
      QueryServer::Start(net, points, opts);
  if (!started.ok()) return Fail(started.status());
  QueryServer& server = *started.value();
  std::printf("serving with %u workers%s; epoch %llu published\n",
              server.num_workers(),
              opts.validate_replay ? " (replay validation on)" : "",
              static_cast<unsigned long long>(server.current_epoch()));
  if (!opts.wal_path.empty()) {
    ServerStats boot = server.stats();
    std::printf("wal: %s (%llu records replayed at boot%s)\n",
                opts.wal_path.c_str(),
                static_cast<unsigned long long>(boot.wal_recoveries),
                boot.wal_recovered_from_checkpoint != 0
                    ? ", recovered from checkpoint"
                    : "");
    if (opts.wal_checkpoint_every > 0) {
      std::printf("checkpoint: every %llu records into %s.ckpt.{a,b}\n",
                  static_cast<unsigned long long>(opts.wal_checkpoint_every),
                  opts.wal_path.c_str());
    }
  }
  if (deadline_ms > 0.0) {
    std::printf("deadline: %.1f ms per query\n", deadline_ms);
  }

  // --port P switches serve to network mode: instead of driving an
  // in-process workload, front the server with a TCP listener (net/)
  // and let remote `netclus_cli query --connect` clients drive it.
  // Runs until --stop-file appears or --serve-seconds elapse.
  const char* port_flag = FlagValue(argc, argv, "--port", nullptr);
  if (port_flag != nullptr) {
    TcpServerOptions topts;
    topts.port = static_cast<uint16_t>(std::atoi(port_flag));
    Result<std::unique_ptr<TcpServer>> front =
        TcpServer::Start(&server, topts);
    if (!front.ok()) return Fail(front.status());
    TcpServer& tcp = *front.value();
    std::printf("listening on %s:%u\n", topts.host.c_str(), tcp.port());
    std::fflush(stdout);
    const char* port_file = FlagValue(argc, argv, "--port-file", nullptr);
    if (port_file != nullptr) {
      FILE* f = std::fopen(port_file, "w");
      if (f == nullptr) {
        return Fail(Status::IOError(std::string("cannot write port file ") +
                                    port_file));
      }
      std::fprintf(f, "%u\n", tcp.port());
      std::fclose(f);
    }
    const double serve_seconds =
        std::atof(FlagValue(argc, argv, "--serve-seconds", "120"));
    const char* stop_file = FlagValue(argc, argv, "--stop-file", nullptr);
    WallTimer up;
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (stop_file != nullptr) {
        FILE* f = std::fopen(stop_file, "r");
        if (f != nullptr) {
          std::fclose(f);
          break;
        }
      }
      if (up.ElapsedSeconds() >= serve_seconds) break;
    }
    tcp.Stop();
    const TcpServerStats net_stats = tcp.stats();
    std::printf("net: %llu connections accepted (%llu refused), %llu frames "
                "in, %llu frames out, %llu corrupt\n",
                static_cast<unsigned long long>(net_stats.connections_accepted),
                static_cast<unsigned long long>(net_stats.connections_refused),
                static_cast<unsigned long long>(net_stats.frames_read),
                static_cast<unsigned long long>(net_stats.frames_written),
                static_cast<unsigned long long>(net_stats.corrupt_frames));
    ServerStats sstats = server.stats();
    if (opts.validate_replay) {
      std::printf("replay: %llu batches validated, %llu mismatches\n",
                  static_cast<unsigned long long>(sstats.replay_batches),
                  static_cast<unsigned long long>(sstats.replay_mismatches));
      if (sstats.replay_mismatches > 0) return 1;
    }
    HealthReport health = server.Healthz();
    std::printf("health: %s\n", ServerHealthName(health.health));
    return net_stats.corrupt_frames == 0 ? 0 : 1;
  }

  // Point ids are epoch-relative; querying only the initial ids stays
  // valid across mutations because the point count never shrinks.
  const PointId n_points = points.size();
  const uint64_t per_client = queries / clients;
  std::vector<uint64_t> ok_counts(clients, 0);
  std::vector<uint64_t> err_counts(clients, 0);
  std::vector<uint64_t> miss_counts(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  WallTimer timer;
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + 100 + c);
      for (uint64_t i = 0; i < per_client; ++i) {
        PointId a = static_cast<PointId>(rng.NextBounded(n_points));
        PointId b = static_cast<PointId>(rng.NextBounded(n_points));
        QueryRequest req;
        switch (i % 4) {
          case 0: req = QueryRequest::PointDistance(a, b); break;
          case 1: req = QueryRequest::Range(a, eps); break;
          case 2: req = QueryRequest::NearestObject(a, 2); break;
          default: req = QueryRequest::ClusterMembership(a); break;
        }
        if (deadline_ms > 0.0) req.deadline_ms = deadline_ms;
        Result<QueryResponse> r = server.Execute(req);
        if (r.ok()) {
          ++ok_counts[c];
        } else if (r.status().IsDeadlineExceeded()) {
          ++miss_counts[c];
        } else {
          ++err_counts[c];
        }
      }
    });
  }

  std::vector<Edge> edges = net.Edges();
  Rng mrng(seed + 7);
  uint32_t applied = 0;
  for (uint32_t m = 0; m < mutations && !edges.empty(); ++m) {
    const Edge& e = edges[mrng.NextBounded(edges.size())];
    if (server
            .ApplyUpdate(NetworkUpdate::AddPoint(e.u, e.v, e.weight * 0.5, -1))
            .ok()) {
      ++applied;
    }
    std::this_thread::yield();
  }
  Status flushed = server.Flush();
  for (std::thread& t : threads) t.join();
  double seconds = timer.ElapsedSeconds();
  if (!flushed.ok()) return Fail(flushed);

  uint64_t ok = 0;
  uint64_t err = 0;
  uint64_t missed = 0;
  for (uint32_t c = 0; c < clients; ++c) {
    ok += ok_counts[c];
    err += err_counts[c];
    missed += miss_counts[c];
  }
  ServerStats stats = server.stats();
  std::printf("served %llu queries (%llu failed, %llu past deadline) in "
              "%.3f s = %.0f qps\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(err),
              static_cast<unsigned long long>(missed), seconds,
              seconds > 0.0 ? static_cast<double>(ok) / seconds : 0.0);
  std::printf("mutations applied: %u; epochs published %llu, drained %llu; "
              "final epoch %llu\n",
              applied,
              static_cast<unsigned long long>(stats.epochs_published),
              static_cast<unsigned long long>(stats.epochs_drained),
              static_cast<unsigned long long>(server.current_epoch()));
  std::printf("batches %llu (mean size %.1f, mean %.2f ms); queue wait mean "
              "%.2f ms, max %.2f ms\n",
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch_size, stats.mean_batch_ms,
              stats.mean_queue_wait_ms, stats.max_queue_wait_ms);
  if (opts.validate_replay) {
    std::printf("replay: %llu batches validated, %llu mismatches\n",
                static_cast<unsigned long long>(stats.replay_batches),
                static_cast<unsigned long long>(stats.replay_mismatches));
    if (stats.replay_mismatches > 0) return 1;
  }
  HealthReport health = server.Healthz();
  std::printf("health: %s (miss rate %.3f, publish failures %llu, wal "
              "records %llu, checkpoints %llu%s)\n",
              ServerHealthName(health.health), health.deadline_miss_rate,
              static_cast<unsigned long long>(stats.publish_failures),
              static_cast<unsigned long long>(stats.wal_records),
              static_cast<unsigned long long>(stats.checkpoints_written),
              health.wal_broken ? ", WAL BROKEN" : "");
  if (health.wal_broken) return 1;
  return err == 0 ? 0 : 1;
}

// Remote counterpart of the serve workload: connects to a running
// `serve --port` instance over the binary wire protocol and drives the
// same mixed query mix through net/client.h. With --check on, every
// remote answer is recomputed through the local inline path (same file,
// same eps-link spec as serve's default) and compared bit-exactly —
// client-side replay validation across the process boundary. The
// comparison assumes the server is serving this file's epoch 1 (no
// concurrent mutations).
int RunQuery(int argc, char** argv, const PointSet& points,
             const InMemoryNetworkView& view) {
  const char* connect = FlagValue(argc, argv, "--connect", nullptr);
  if (connect == nullptr) return Usage();
  const std::string hostport = connect;
  const size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon + 1 >= hostport.size()) {
    return Fail(Status::InvalidArgument("--connect expects HOST:PORT, got '" +
                                        hostport + "'"));
  }
  const std::string host = hostport.substr(0, colon);
  const uint16_t port =
      static_cast<uint16_t>(std::atoi(hostport.c_str() + colon + 1));

  uint32_t clients = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--clients", "4")));
  if (clients == 0) clients = 1;
  uint64_t queries = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--queries", "2000")));
  uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "--seed", "42")));
  const double deadline_ms =
      std::atof(FlagValue(argc, argv, "--deadline-ms", "0"));
  const bool check =
      std::strcmp(FlagValue(argc, argv, "--check", "off"), "on") == 0;

  double eps = 0.0;
  std::string eps_flag = FlagValue(argc, argv, "--eps", "auto");
  if (eps_flag == "auto") {
    Result<double> suggested = SuggestEps(view, EpsSuggestionOptions{});
    if (!suggested.ok()) return Fail(suggested.status());
    eps = suggested.value();
    std::printf("eps = %.6f (auto)\n", eps);
  } else {
    eps = std::atof(eps_flag.c_str());
  }

  // The membership reference: the same clustering serve runs at boot.
  Clustering expect_clusters;
  if (check) {
    ClusterSpec spec;
    spec.algorithm = Algorithm::kEpsLink;
    spec.eps_link.eps = eps;
    spec.eps_link.min_sup = 2;
    Result<ClusterOutput> out = RunClustering(view, spec);
    if (!out.ok()) return Fail(out.status());
    expect_clusters = std::move(out.value().clustering);
  }

  const PointId n_points = points.size();
  const uint64_t per_client = queries / clients;
  std::vector<uint64_t> ok_counts(clients, 0);
  std::vector<uint64_t> err_counts(clients, 0);
  std::vector<uint64_t> miss_counts(clients, 0);
  std::vector<uint64_t> checked_counts(clients, 0);
  std::vector<uint64_t> mismatch_counts(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  WallTimer timer;
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts;
      copts.host = host;
      copts.port = port;
      Result<std::unique_ptr<QueryClient>> connected =
          QueryClient::Connect(copts);
      if (!connected.ok()) {
        err_counts[c] = per_client;
        return;
      }
      QueryClient& client = *connected.value();
      Rng rng(seed + 200 + c);
      for (uint64_t i = 0; i < per_client; ++i) {
        PointId a = static_cast<PointId>(rng.NextBounded(n_points));
        PointId b = static_cast<PointId>(rng.NextBounded(n_points));
        QueryRequest req;
        switch (i % 4) {
          case 0: req = QueryRequest::PointDistance(a, b); break;
          case 1: req = QueryRequest::Range(a, eps); break;
          case 2: req = QueryRequest::NearestObject(a, 2); break;
          default: req = QueryRequest::ClusterMembership(a); break;
        }
        if (deadline_ms > 0.0) req.deadline_ms = deadline_ms;
        Result<QueryResponse> r = client.Execute(req);
        if (!r.ok()) {
          if (r.status().IsDeadlineExceeded()) {
            ++miss_counts[c];
          } else {
            ++err_counts[c];
          }
          continue;
        }
        ++ok_counts[c];
        if (!check) continue;
        ++checked_counts[c];
        if (req.kind == QueryKind::kClusterMembership) {
          if (r.value().cluster_id != expect_clusters.assignment[a]) {
            ++mismatch_counts[c];
          }
          continue;
        }
        Result<QueryResponse> local = ExecuteQuery(view, nullptr, req);
        if (!local.ok() ||
            !ResponsePayloadsEqual(r.value(), local.value())) {
          ++mismatch_counts[c];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();

  uint64_t ok = 0;
  uint64_t err = 0;
  uint64_t missed = 0;
  uint64_t checked = 0;
  uint64_t mismatches = 0;
  for (uint32_t c = 0; c < clients; ++c) {
    ok += ok_counts[c];
    err += err_counts[c];
    missed += miss_counts[c];
    checked += checked_counts[c];
    mismatches += mismatch_counts[c];
  }
  std::printf("remote: %llu queries ok (%llu failed, %llu past deadline) in "
              "%.3f s = %.0f qps over %u connections\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(err),
              static_cast<unsigned long long>(missed), seconds,
              seconds > 0.0 ? static_cast<double>(ok) / seconds : 0.0,
              clients);
  if (check) {
    std::printf("client replay: %llu validated, %llu mismatches\n",
                static_cast<unsigned long long>(checked),
                static_cast<unsigned long long>(mismatches));
    if (mismatches > 0) return 1;
  }
  return err == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "generate") return RunGenerate(argc, argv);
  // `wal inspect` works on durability files alone — no --in network.
  if (cmd == "wal") {
    if (argc >= 3 && std::strcmp(argv[2], "inspect") == 0) {
      return RunWalInspect(argc, argv);
    }
    return Usage();
  }

  const char* in = FlagValue(argc, argv, "--in", nullptr);
  if (in == nullptr) return Usage();
  Result<std::pair<Network, PointSet>> loaded = LoadNetworkFile(in);
  if (!loaded.ok()) return Fail(loaded.status());
  const auto& [net, points] = loaded.value();
  InMemoryNetworkView view(net, points);
  std::printf("loaded %s: %u nodes, %zu edges, %u points\n", in,
              net.num_nodes(), net.num_edges(), points.size());

  if (cmd == "suggest") return RunSuggest(view);
  if (cmd == "cluster") return RunCluster(argc, argv, view, points);
  if (cmd == "serve") return RunServe(argc, argv, net, points, view);
  if (cmd == "query") return RunQuery(argc, argv, points, view);
  return Usage();
}
