// netclus_cli: drive the library from the command line on text network
// files (see graph/text_io.h for the format).
//
//   netclus_cli generate --nodes 2000 --points 6000 --clusters 8
//       --seed 7 --out town.net
//   netclus_cli suggest --in town.net
//   netclus_cli cluster --in town.net --algo epslink --eps auto
//   netclus_cli cluster --in town.net --algo kmedoids --k 8
//   netclus_cli cluster --in town.net --algo singlelink --cut 0.5
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/parameter_selection.h"
#include "eval/evaluation.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/text_io.h"
#include "netclus.h"

using namespace netclus;

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: netclus_cli generate|suggest|cluster [flags]\n"
               "  generate --nodes N --points P --clusters K [--seed S] "
               "--out FILE\n"
               "  suggest  --in FILE\n"
               "  cluster  --in FILE --algo "
               "kmedoids|epslink|dbscan|singlelink\n"
               "           [--eps E|auto] [--k K] [--minpts M] [--minsup M]\n"
               "           [--delta D] [--cut D] [--seed S]\n"
               "           [--threads T] [--restarts R]\n"
               "           [--index on|off] [--landmarks K] [--cache-cap N]\n"
               "           [--voronoi on|off]\n");
  return 2;
}

int RunGenerate(int argc, char** argv) {
  NodeId nodes = static_cast<NodeId>(
      std::atol(FlagValue(argc, argv, "--nodes", "2000")));
  PointId points = static_cast<PointId>(
      std::atol(FlagValue(argc, argv, "--points", "6000")));
  uint32_t clusters = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--clusters", "8")));
  uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "--seed", "7")));
  const char* out = FlagValue(argc, argv, "--out", nullptr);
  if (out == nullptr) return Usage();

  GeneratedNetwork g = GenerateRoadNetwork({nodes, 1.3, 0.3, seed});
  double total = 0.0;
  for (const Edge& e : g.net.Edges()) total += e.weight;
  ClusterWorkloadSpec spec;
  spec.total_points = points;
  spec.num_clusters = clusters;
  spec.outlier_fraction = 0.01;
  spec.s_init = 0.06 * total / (3.0 * 0.99 * points);
  spec.seed = seed + 1;
  Result<GeneratedWorkload> w = GenerateClusteredPoints(g.net, spec);
  if (!w.ok()) return Fail(w.status());
  Status s = SaveNetworkFile(out, g.net, &w.value().points);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %u nodes, %zu edges, %u points "
              "(suggested eps from generator: %.6f)\n",
              out, g.net.num_nodes(), g.net.num_edges(), points,
              w.value().max_intra_gap);
  return 0;
}

int RunSuggest(const InMemoryNetworkView& view) {
  Result<double> eps = SuggestEps(view, EpsSuggestionOptions{});
  if (eps.ok()) {
    std::printf("suggested eps:   %.6f\n", eps.value());
  } else {
    std::printf("suggested eps:   n/a (%s)\n", eps.status().ToString().c_str());
  }
  Result<double> delta = SuggestDelta(view, 0.7);
  if (delta.ok()) {
    std::printf("suggested delta: %.6f\n", delta.value());
  } else {
    std::printf("suggested delta: n/a (%s)\n",
                delta.status().ToString().c_str());
  }
  return 0;
}

// Builds a ClusterSpec from the command-line flags and runs it through
// the library's single entry point (RunClustering, via the evaluation
// module's scoring wrapper).
int RunCluster(int argc, char** argv, const InMemoryNetworkView& view,
               const PointSet& points) {
  Result<Algorithm> algo =
      ParseAlgorithm(FlagValue(argc, argv, "--algo", "epslink"));
  if (!algo.ok()) {
    std::fprintf(stderr, "%s\n", algo.status().ToString().c_str());
    return Usage();
  }
  double eps = 0.0;
  std::string eps_flag = FlagValue(argc, argv, "--eps", "auto");
  if (eps_flag == "auto") {
    Result<double> suggested = SuggestEps(view, EpsSuggestionOptions{});
    if (!suggested.ok()) return Fail(suggested.status());
    eps = suggested.value();
    std::printf("eps = %.6f (auto)\n", eps);
  } else {
    eps = std::atof(eps_flag.c_str());
  }
  uint32_t threads = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--threads", "1")));

  ClusterSpec spec;
  spec.algorithm = algo.value();
  spec.eps_link.eps = eps;
  spec.eps_link.min_sup = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--minsup", "2")));
  spec.dbscan.eps = eps;
  spec.dbscan.min_pts = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--minpts", "2")));
  spec.dbscan.num_threads = threads;
  spec.kmedoids.k =
      static_cast<uint32_t>(std::atol(FlagValue(argc, argv, "--k", "8")));
  spec.kmedoids.seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--seed", "42")));
  spec.kmedoids.num_restarts = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--restarts", "1")));
  spec.kmedoids.num_threads = threads;
  spec.single_link.delta = std::atof(FlagValue(argc, argv, "--delta", "0"));
  double cut = std::atof(FlagValue(argc, argv, "--cut", "0"));
  spec.cut_distance = cut > 0.0 ? cut : eps;
  spec.cut_min_size = 2;

  // Distance index knobs (see IndexOptions in index/distance_index.h);
  // results are identical with the index on or off.
  spec.index.enable =
      std::strcmp(FlagValue(argc, argv, "--index", "off"), "on") == 0;
  spec.index.num_landmarks = static_cast<uint32_t>(
      std::atol(FlagValue(argc, argv, "--landmarks", "8")));
  spec.index.cache_capacity = static_cast<size_t>(
      std::atoll(FlagValue(argc, argv, "--cache-cap", "65536")));
  spec.index.enable_voronoi =
      std::strcmp(FlagValue(argc, argv, "--voronoi", "on"), "off") != 0;
  spec.index.num_threads = threads;
  if (spec.index.enable) {
    std::printf("index: %u landmarks, cache capacity %zu, voronoi %s\n",
                spec.index.num_landmarks, spec.index.cache_capacity,
                spec.index.enable_voronoi ? "on" : "off");
  }

  Result<EvaluationReport> report =
      EvaluateClustering(view, spec, points.labels());
  if (!report.ok()) return Fail(report.status());
  std::fputs(FormatReport(report.value()).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "generate") return RunGenerate(argc, argv);

  const char* in = FlagValue(argc, argv, "--in", nullptr);
  if (in == nullptr) return Usage();
  Result<std::pair<Network, PointSet>> loaded = LoadNetworkFile(in);
  if (!loaded.ok()) return Fail(loaded.status());
  const auto& [net, points] = loaded.value();
  InMemoryNetworkView view(net, points);
  std::printf("loaded %s: %u nodes, %zu edges, %u points\n", in,
              net.num_nodes(), net.num_edges(), points.size());

  if (cmd == "suggest") return RunSuggest(view);
  if (cmd == "cluster") return RunCluster(argc, argv, view, points);
  return Usage();
}
