// The paper's motivating scenario (Section 1): cluster the restaurants of
// a city by their road-network distance to find hotspot areas — input for
// location-based services or a chain scouting a new branch.
//
// A synthetic city road network is generated, restaurant "districts" are
// planted on it, and ε-Link discovers the hotspots. For each hotspot we
// then pick a representative location via a 1-medoid assignment (the
// restaurant minimizing total network distance to its peers).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "eval/evaluation.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/dijkstra.h"
#include "graph/network_distance.h"
#include "netclus.h"

using namespace netclus;

int main() {
  // --- A city: ~4,000 intersections, typical urban edge ratio.
  GeneratedNetwork city = GenerateRoadNetwork({4000, 1.35, 0.3, 2024});
  double total_length = 0.0;
  for (const Edge& e : city.net.Edges()) total_length += e.weight;

  // --- 900 restaurants: 6 districts plus 10% scattered independents.
  ClusterWorkloadSpec spec;
  spec.total_points = 900;
  spec.num_clusters = 6;
  spec.outlier_fraction = 0.10;
  spec.s_init = 0.02 * total_length / (3.0 * 810);
  spec.seed = 5;
  GeneratedWorkload town =
      std::move(GenerateClusteredPoints(city.net, spec).value());
  InMemoryNetworkView view(city.net, town.points);
  std::printf("city: %u intersections, %zu road segments, %u restaurants\n",
              city.net.num_nodes(), city.net.num_edges(),
              town.points.size());

  // --- Find hotspots: restaurants within eps driving distance chain up.
  EpsLinkOptions opts;
  opts.eps = town.max_intra_gap;
  opts.min_sup = 15;  // a hotspot needs at least 15 restaurants
  Clustering hotspots =
      std::move(RunClustering(view, MakeSpec(opts)).value().clustering);
  ClusterSummary summary = Summarize(hotspots);
  std::printf("hotspots found: %d (%u independents outside any hotspot)\n\n",
              summary.num_clusters, summary.noise_points);

  // --- Representative restaurant per hotspot: the medoid.
  NodeScratch scratch(city.net.num_nodes());
  for (int h = 0; h < summary.num_clusters; ++h) {
    std::vector<PointId> members;
    for (PointId p = 0; p < town.points.size(); ++p) {
      if (hotspots.assignment[p] == h) members.push_back(p);
    }
    // Exact medoid over the hotspot (hotspots are small enough).
    PointId best = members.front();
    double best_cost = kInfDist;
    for (PointId cand : members) {
      double cost = 0.0;
      for (PointId other : members) {
        cost += PointNetworkDistance(view, cand, other, &scratch);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
      }
    }
    auto [x, y] = PointCoordinates(city.net, town.points, city.coords, best);
    std::printf(
        "hotspot %d: %3zu restaurants, medoid #%-4u at (%.1f, %.1f), mean "
        "distance to peers %.3f\n",
        h, members.size(), best, x, y,
        best_cost / static_cast<double>(members.size()));
  }

  std::printf("\n--- hotspot map ('.' = independents) ---\n%s",
              AsciiClusterMap(city.net, town.points, city.coords, hotspots,
                              14, 48)
                  .c_str());
  return 0;
}
