// Network OPTICS in action: one reachability ordering answers every
// density level. The ASCII reachability plot shows the planted clusters
// as valleys; extracting at two different eps' values yields the coarse
// and the fine clustering without touching the network again.
#include <algorithm>
#include <cstdio>

#include "core/optics.h"
#include "eval/evaluation.h"
#include "eval/metrics.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/dijkstra.h"

using namespace netclus;

int main() {
  GeneratedNetwork g = GenerateRoadNetwork({1200, 1.3, 0.3, 31});
  double total_length = 0.0;
  for (const Edge& e : g.net.Edges()) total_length += e.weight;
  ClusterWorkloadSpec spec;
  spec.total_points = 1500;
  spec.num_clusters = 5;
  spec.outlier_fraction = 0.02;
  spec.s_init = 0.05 * total_length / (3.0 * 1470);
  spec.seed = 32;
  GeneratedWorkload w = std::move(GenerateClusteredPoints(g.net, spec).value());
  InMemoryNetworkView view(g.net, w.points);

  OpticsOptions opts;
  opts.eps = 4.0 * w.max_intra_gap;
  opts.min_pts = 5;
  OpticsResult r = std::move(OpticsOrder(view, opts).value());

  // Downsampled ASCII reachability plot (60 columns, 12 rows).
  const int cols = 64, rows = 12;
  double cap = opts.eps;
  std::printf("reachability plot (N = %u points, cap = %.3f):\n\n",
              w.points.size(), cap);
  std::vector<double> col_max(cols, 0.0);
  for (size_t i = 0; i < r.reachability.size(); ++i) {
    int c = static_cast<int>(i * cols / r.reachability.size());
    double v = std::min(cap, r.reachability[i] == kInfDist
                                 ? cap
                                 : r.reachability[i]);
    col_max[c] = std::max(col_max[c], v);
  }
  for (int row = rows; row >= 1; --row) {
    for (int c = 0; c < cols; ++c) {
      std::printf("%c", col_max[c] >= cap * row / rows ? '#' : ' ');
    }
    std::printf("\n");
  }
  std::printf("%s\n", std::string(cols, '-').c_str());
  std::printf("(valleys = clusters, spikes = cluster boundaries/outliers)\n\n");

  for (double frac : {1.0, 0.3}) {
    double eps_prime = frac * opts.eps;
    Clustering c = ExtractDbscanClustering(r, eps_prime, opts.min_pts);
    NormalizeClustering(&c, 10);
    std::printf("extract @ eps' = %.3f: %d clusters, ARI vs truth %.3f\n",
                eps_prime, c.num_clusters,
                AdjustedRandIndex(w.points.labels(), c.assignment,
                                  NoiseHandling::kIgnore));
  }
  return 0;
}
