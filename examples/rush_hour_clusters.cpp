// Section 6 scenario: time-dependent clusters. Edge weights model travel
// time that swells during rush hour; snapshotting the network across the
// day and clustering each snapshot yields time-parameterized clusters —
// groups that are "close" at 3am fall apart at 8:30am when congestion
// stretches the distances between them.
#include <cstdio>

#include "netclus.h"
#include "eval/evaluation.h"
#include "ext/time_dependent.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"

using namespace netclus;

int main() {
  GeneratedNetwork city = GenerateRoadNetwork({2500, 1.3, 0.3, 88});
  double total_length = 0.0;
  for (const Edge& e : city.net.Edges()) total_length += e.weight;

  // Delivery vans parked around 8 depots (free-flow travel times).
  ClusterWorkloadSpec spec;
  spec.total_points = 1600;
  spec.num_clusters = 8;
  spec.outlier_fraction = 0.02;
  spec.s_init = 0.06 * total_length / (3.0 * 1568);
  spec.seed = 9;
  GeneratedWorkload fleet =
      std::move(GenerateClusteredPoints(city.net, spec).value());
  std::printf("city: %u nodes; fleet: %u vans around %u depots\n\n",
              city.net.num_nodes(), fleet.points.size(), spec.num_clusters);

  // Cluster by 15-minute reachability at various times of day. eps is
  // calibrated at free flow; congestion (up to 3x) stretches distances.
  TimeProfile traffic = RushHourProfile(3.0);
  const double eps = 1.4 * fleet.max_intra_gap;
  std::printf("eps = %.4f travel-time units (fixed across the day)\n\n", eps);
  std::printf("%-8s%-14s%-12s%-10s\n", "time", "congestion", "clusters",
              "unreached");
  for (double t : {3.0, 6.5, 8.5, 12.0, 17.5, 21.0}) {
    Network snapshot = std::move(SnapshotAt(city.net, traffic, t).value());
    PointSet moved =
        std::move(RescalePoints(city.net, snapshot, fleet.points).value());
    InMemoryNetworkView view(snapshot, moved);
    EpsLinkOptions opts;
    opts.eps = eps;
    opts.min_sup = 5;
    Clustering c =
        std::move(RunClustering(view, MakeSpec(opts)).value().clustering);
    ClusterSummary s = Summarize(c);
    std::printf("%02d:%02d   x%-13.2f%-12d%-10u\n", static_cast<int>(t),
                static_cast<int>(t * 60) % 60, traffic(t, 0, 0),
                s.num_clusters, s.noise_points);
  }
  std::printf(
      "\nAt night the whole fleet chains into a few large groups; at rush\n"
      "hour congestion multiplies travel times and the clusters shatter\n"
      "into the depot neighbourhoods (time-parameterized clusters, paper\n"
      "Section 6).\n");
  return 0;
}
