#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

namespace netclus {
namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError("socket: " + what + ": " + std::strerror(err));
}

// Resolves host:port to an IPv4 address. getaddrinfo handles numeric
// addresses without consulting DNS, so loopback serving works in
// network-less sandboxes.
Status ResolveV4(const std::string& host, uint16_t port, sockaddr_in* out) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    if (res != nullptr) ::freeaddrinfo(res);
    return Status::IOError("socket: cannot resolve host '" + host +
                           "': " + ::gai_strerror(rc));
  }
  std::memcpy(out, res->ai_addr, sizeof(sockaddr_in));
  out->sin_port = htons(port);
  ::freeaddrinfo(res);
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Dial(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  NETCLUS_RETURN_IF_ERROR(ResolveV4(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket()", errno);
  Socket sock(fd);
  // Request/response frames are small and latency-bound; Nagle only
  // adds round-trip delay here. Best-effort — loopback works either way.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return ErrnoStatus("connect to " + host + ":" + std::to_string(port),
                       errno);
  }
  return sock;
}

Status Socket::SendAll(const char* data, size_t length) {
  if (!valid()) return Status::IOError("socket: send on closed socket");
  size_t sent = 0;
  while (sent < length) {
    const ssize_t n =
        ::send(fd_, data + sent, length - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send", errno);
    }
    if (n == 0) return Status::IOError("socket: send made no progress");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> Socket::Recv(char* buffer, size_t capacity) {
  if (!valid()) return Status::IOError("socket: recv on closed socket");
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n >= 0) return static_cast<size_t>(n);  // 0 = orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("socket: receive timed out");
    }
    return ErrnoStatus("recv", errno);
  }
}

Status Socket::SetRecvTimeout(double seconds) {
  if (!valid()) return Status::IOError("socket: closed socket");
  if (seconds < 0.0 || !std::isfinite(seconds)) {
    return Status::InvalidArgument("receive timeout must be finite and >= 0");
  }
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)", errno);
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (valid()) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<ListenSocket> ListenSocket::Listen(const std::string& host,
                                          uint16_t port, int backlog) {
  sockaddr_in addr;
  NETCLUS_RETURN_IF_ERROR(ResolveV4(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket()", errno);
  ListenSocket sock;
  sock.fd_ = fd;
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port), errno);
  }
  if (::listen(fd, backlog) != 0) return ErrnoStatus("listen", errno);
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  sock.port_ = ntohs(bound.sin_port);
  return sock;
}

Result<Socket> ListenSocket::Accept() {
  if (fd_ < 0) return Status::Unavailable("socket: listener is closed");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EINTR) continue;
    // A shut-down or closed listener reports "not accepting" rather
    // than a hard I/O error: this is the acceptor's clean-stop path.
    if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED) {
      return Status::Unavailable("socket: listener stopped accepting");
    }
    return ErrnoStatus("accept", errno);
  }
}

void ListenSocket::Shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

}  // namespace netclus
