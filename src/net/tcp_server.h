// The TCP front end of the query service: accepts connections, decodes
// wire frames (net/wire.h), and feeds the requests into an existing
// QueryServer's admission queue — one acceptor thread plus one blocking
// reader thread per connection, all on netclus::Mutex discipline.
//
// The front end adds no semantics of its own. Backpressure, deadlines,
// health, and epoch stamping are the QueryServer's; this layer's job is
// to carry them across the process boundary faithfully:
//
//   * a kQuery frame becomes Submit() + wait; success returns the
//     QueryResponse as a kResponse frame whose payload is bit-identical
//     to what an in-process caller would see,
//   * a failed request returns a kStatus frame carrying the Status
//     code, message, the retry-after hint when the server attached one
//     (admission rejection), and the current ServerHealth,
//   * a kHealthz frame rides the queue-bypassing Submit path, so health
//     stays probeable while the queue is full,
//   * hostile bytes (bad magic/CRC/length) poison only their own
//     connection: the server answers with a best-effort kCorruption
//     status frame, drops the connection, and keeps serving the rest.
//
// Resource bounds: at most `max_connections` live connections (excess
// accepts are answered with a kUnavailable status frame carrying a
// retry hint, then closed), and an optional per-connection idle timeout
// (SO_RCVTIMEO under the hood) reaps clients that stopped talking.
//
// Lifecycle: Start() binds and begins accepting (port 0 = ephemeral;
// read the bound port back with port()). Stop() shuts the listener
// down, unblocks every connection reader, joins all threads, and is
// idempotent; the destructor calls it. The TcpServer must be stopped or
// destroyed before the QueryServer it fronts.
#ifndef NETCLUS_NET_TCP_SERVER_H_
#define NETCLUS_NET_TCP_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"
#include "server/query_server.h"

namespace netclus {

/// \brief Transport knobs.
struct TcpServerOptions {
  /// Bind address. Loopback by default — serving beyond the local host
  /// is an explicit decision.
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (read back via port()).
  uint16_t port = 0;
  /// Live-connection bound; accepts beyond it are refused over the wire
  /// with kUnavailable + retry hint.
  size_t max_connections = 64;
  /// Seconds of silence before a connection is reaped; 0 disables.
  double idle_timeout_seconds = 0.0;
  int backlog = 64;
  /// Refused-connection retry hint carried in the kStatus frame.
  double refuse_retry_after_ms = 50.0;
};

/// \brief Transport counters (monotonic since Start).
struct TcpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  ///< over max_connections
  uint64_t connections_closed = 0;   ///< reader loops finished
  uint64_t idle_disconnects = 0;     ///< reaped by the idle timeout
  uint64_t frames_read = 0;
  uint64_t frames_written = 0;
  uint64_t corrupt_frames = 0;    ///< connections poisoned by bad bytes
  uint64_t protocol_errors = 0;   ///< well-formed but nonsensical frames
  uint64_t queries = 0;           ///< kQuery frames submitted
  uint64_t healthz_probes = 0;    ///< kHealthz frames answered
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  size_t open_connections = 0;  ///< live right now (gauge)
};

/// \brief The socket front end. Create with Start(), stop with Stop()
/// (or destruction). Thread-safe.
class TcpServer {
 public:
  /// Binds `options.host:options.port` and starts accepting. `server`
  /// is borrowed and must outlive this front end.
  static Result<std::unique_ptr<TcpServer>> Start(
      QueryServer* server, const TcpServerOptions& options);

  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolved when options.port was 0).
  uint16_t port() const { return listener_.port(); }

  /// Stops accepting, unblocks and joins every connection reader, and
  /// closes all sockets. Idempotent.
  void Stop();

  TcpServerStats stats() const;

  /// Adds the monotonic counters to `collector` under "net.*" names.
  void PublishStats(StatsCollector* collector) const;

 private:
  /// One live connection: its socket plus the reader thread draining it.
  struct Connection {
    Socket sock;
    std::thread reader;
    /// Reader loop finished; the connection is reapable.
    std::atomic<bool> done{false};
  };

  TcpServer(QueryServer* server, const TcpServerOptions& options,
            ListenSocket listener);

  void AcceptLoop();
  void ReaderLoop(Connection* conn);

  /// Serves one decoded frame on `conn`; false = drop the connection.
  bool HandleFrame(Connection* conn, const WireFrame& frame);

  /// Frames `status` (+ current server health) and best-effort sends it.
  void SendStatus(Connection* conn, const Status& status);
  /// Sends pre-encoded frame bytes, bumping frame/byte counters.
  bool SendEncoded(Connection* conn, const std::string& encoded);

  /// Joins and erases connections whose reader loops have finished.
  /// Acceptor thread (and Stop) only.
  void ReapFinishedLocked() NETCLUS_REQUIRES(mu_);

  QueryServer* const server_;  ///< borrowed; outlives the front end
  const TcpServerOptions options_;
  ListenSocket listener_;

  // Connection table + transport counters. Never held across a blocking
  // socket operation or a Submit — readers copy what they need and
  // release.
  mutable Mutex mu_{lock_rank::kNetServer, "TcpServer::mu_"};
  std::vector<std::unique_ptr<Connection>> connections_
      NETCLUS_GUARDED_BY(mu_);
  bool stopping_ NETCLUS_GUARDED_BY(mu_) = false;
  TcpServerStats counters_ NETCLUS_GUARDED_BY(mu_);

  // PublishStats delta tracking (same pattern as QueryServer; the two
  // publication locks are never held together).
  mutable Mutex publish_stats_mu_{lock_rank::kStatsPublish,
                                  "TcpServer::publish_stats_mu_"};
  mutable TcpServerStats published_stats_
      NETCLUS_GUARDED_BY(publish_stats_mu_);

  std::thread acceptor_;
};

}  // namespace netclus

#endif  // NETCLUS_NET_TCP_SERVER_H_
