// Thin RAII wrappers over POSIX TCP sockets: the ONLY place in the
// tree that touches raw socket syscalls (a netclus-lint rule confines
// <sys/socket.h> & friends to src/net/). Everything above — the frame
// codec, the TCP front end, the client library, tests that feed the
// server hostile bytes — speaks Socket/ListenSocket, so error mapping
// (EINTR retries, EOF vs timeout vs hard error) lives in exactly one
// translation unit.
//
// Error vocabulary: EOF is a successful Recv of 0 bytes; a receive
// timeout (SO_RCVTIMEO armed) is kDeadlineExceeded; everything else is
// kIOError with errno text. Send never raises SIGPIPE (MSG_NOSIGNAL) —
// a peer hangup is a Status, not a process kill.
#ifndef NETCLUS_NET_SOCKET_H_
#define NETCLUS_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace netclus {

/// \brief One connected TCP stream socket (move-only; closes on
/// destruction). Not thread-safe, with one sanctioned exception:
/// ShutdownBoth() may be called from another thread to unblock a
/// Recv()/SendAll() in flight (the server's drain path).
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-connected fd.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Connects to `host`:`port` (numeric or resolvable name).
  static Result<Socket> Dial(const std::string& host, uint16_t port);

  /// Writes all `length` bytes, retrying short writes and EINTR.
  Status SendAll(const char* data, size_t length);

  /// Reads up to `capacity` bytes. Returns 0 on orderly EOF,
  /// kDeadlineExceeded when an armed receive timeout fires, kIOError
  /// otherwise. EINTR is retried.
  Result<size_t> Recv(char* buffer, size_t capacity);

  /// Arms SO_RCVTIMEO (0 disables): Recv returns kDeadlineExceeded
  /// after ~`seconds` without data — the idle-timeout building block.
  Status SetRecvTimeout(double seconds);

  /// Half-closes both directions, unblocking any Recv in flight with
  /// EOF. Safe to call from another thread; idempotent; the fd stays
  /// owned until Close().
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// \brief A bound, listening TCP socket (move-only; closes on
/// destruction). Accept() blocks; Shutdown() from another thread makes
/// it return kUnavailable — the acceptor's clean-stop signal.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }

  ListenSocket(ListenSocket&& other) noexcept : fd_(other.fd_),
                                                port_(other.port_) {
    other.fd_ = -1;
  }
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds `host`:`port` (port 0 = kernel-assigned ephemeral port, read
  /// it back via port()) and listens with `backlog`.
  static Result<ListenSocket> Listen(const std::string& host, uint16_t port,
                                     int backlog);

  /// The bound port (resolved when Listen was given port 0).
  uint16_t port() const { return port_; }

  /// Blocks for the next connection. Returns kUnavailable once
  /// Shutdown() was called (or the socket failed terminally).
  Result<Socket> Accept();

  /// Stops accepting and unblocks a blocked Accept(). Safe from another
  /// thread; idempotent.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace netclus

#endif  // NETCLUS_NET_SOCKET_H_
