#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace netclus {

Result<std::unique_ptr<QueryClient>> QueryClient::Connect(
    const ClientOptions& options) {
  // make_unique needs a public constructor; bare new keeps it private.
  auto client = std::unique_ptr<QueryClient>(new QueryClient(options));
  NETCLUS_RETURN_IF_ERROR(client->EnsureConnected());
  return client;
}

Status QueryClient::EnsureConnected() {
  if (sock_.valid()) return Status::OK();
  NETCLUS_ASSIGN_OR_RETURN(Socket sock,
                           Socket::Dial(options_.host, options_.port));
  if (options_.recv_timeout_seconds > 0.0) {
    NETCLUS_RETURN_IF_ERROR(
        sock.SetRecvTimeout(options_.recv_timeout_seconds));
  }
  sock_ = std::move(sock);
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  return Status::OK();
}

double QueryClient::BackoffDelayMs(const Status& status, uint32_t attempt,
                                   const ClientOptions& options) {
  double delay;
  if (status.retry_after_ms().has_value()) {
    delay = *status.retry_after_ms();
  } else {
    delay = options.backoff_floor_ms;
    for (uint32_t i = 0; i < attempt; ++i) {
      delay *= 2.0;
      if (delay >= options.backoff_cap_ms) break;
    }
  }
  return std::clamp(delay, 0.0, options.backoff_cap_ms);
}

Status QueryClient::RoundTrip(const std::string& encoded,
                              QueryResponse* out) {
  NETCLUS_RETURN_IF_ERROR(EnsureConnected());
  {
    const Status sent = sock_.SendAll(encoded.data(), encoded.size());
    if (!sent.ok()) {
      sock_.Close();  // the stream is in an unknown state
      return sent;
    }
  }
  FrameReader reader;
  char buf[4096];
  for (;;) {
    Result<size_t> received = sock_.Recv(buf, sizeof(buf));
    if (!received.ok()) {
      sock_.Close();
      return received.status();
    }
    const size_t n = received.value();
    if (n == 0) {
      sock_.Close();
      return Status::IOError(
          "client: server closed the connection mid-request");
    }
    reader.Append(buf, n);
    WireFrame frame;
    bool got = false;
    const Status decoded = reader.Next(&frame, &got);
    if (!decoded.ok()) {
      sock_.Close();  // framing is lost; the connection is unusable
      return decoded;
    }
    if (!got) continue;  // partial frame: keep reading
    switch (frame.type) {
      case FrameType::kResponse: {
        QueryResponse resp;
        const Status s = DecodeResponsePayload(frame.payload.data(),
                                               frame.payload.size(), &resp);
        if (!s.ok()) {
          sock_.Close();
          return s;
        }
        ++stats_.responses;
        last_health_ = resp.health;
        *out = resp;
        return Status::OK();
      }
      case FrameType::kStatus: {
        WireStatus ws;
        const Status s = DecodeStatusPayload(frame.payload.data(),
                                             frame.payload.size(), &ws);
        if (!s.ok()) {
          sock_.Close();
          return s;
        }
        ++stats_.status_frames;
        last_health_ = ws.health;
        return ws.ToStatus();
      }
      case FrameType::kQuery:
      case FrameType::kHealthz:
        // Client-to-server frame types arriving at the client: drop the
        // connection rather than trying to resynchronize.
        sock_.Close();
        return Status::IOError(
            std::string("client: unexpected server frame type '") +
            FrameTypeName(frame.type) + "'");
    }
  }
}

Result<QueryResponse> QueryClient::Execute(const QueryRequest& req) {
  ++stats_.requests;
  const std::string encoded = req.kind == QueryKind::kHealthz
                                  ? EncodeHealthzFrame()
                                  : EncodeQueryFrame(req);
  Status last = Status::OK();
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    QueryResponse resp;
    last = RoundTrip(encoded, &resp);
    if (last.ok()) return resp;
    const bool retryable =
        last.code() == Status::Code::kUnavailable ||
        (options_.reconnect && !sock_.valid() &&
         last.code() == Status::Code::kIOError);
    if (!retryable || attempt == options_.max_retries) return last;
    const double delay_ms = BackoffDelayMs(last, attempt, options_);
    if (delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
  return last;
}

Result<QueryResponse> QueryClient::Healthz() {
  return Execute(QueryRequest::Healthz());
}

}  // namespace netclus
