// The binary wire protocol of the query service: versioned,
// length-prefixed, CRC32C-protected frames carrying the unified query
// vocabulary (server/query.h) between processes.
//
// Frame layout (all integers little-endian in-memory representation,
// doubles as their IEEE-754 bit patterns — payloads survive the wire
// bit-identically, which is what lets a remote response be replayed
// against the inline path and compared down to the last double bit):
//
//   [0, 4)    CRC32C of bytes [4, 16 + length)
//   [4, 8)    magic "NCLW"
//   [8, 9)    protocol version (kWireVersion)
//   [9, 10)   frame type (FrameType)
//   [10, 12)  zero padding (checked on decode)
//   [12, 16)  payload length in bytes (<= kMaxPayloadBytes)
//   [16, 16+length)  payload
//
// The same defensive posture as the mutation WAL (server/wal.h, whose
// record framing this header mirrors): every decode path assumes the
// bytes are hostile. A bad magic, unknown version or type, nonzero
// padding, oversized length, checksum mismatch, or malformed payload is
// Status::kCorruption — never a crash, never a partially trusted frame.
// A frame whose bytes simply have not all arrived yet is not an error;
// FrameReader reports "need more input" and keeps the prefix buffered.
//
// Frame types and their payloads:
//
//   kQuery     one QueryRequest (fixed 32 bytes), client -> server
//   kResponse  one QueryResponse (28-byte head + 12 bytes per range /
//              nearest result), server -> client
//   kStatus    a structured error: Status code, health state, optional
//              retry-after hint, message — the wire form of the
//              in-process Status vocabulary, so remote clients get the
//              same machine-readable backpressure hints
//              (Status::retry_after_ms()) local callers do
//   kHealthz   empty payload, client -> server: the queue-bypassing
//              health probe; answered with a kResponse of kind kHealthz
#ifndef NETCLUS_NET_WIRE_H_
#define NETCLUS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/query.h"

namespace netclus {

/// Protocol version stamped in every frame header; a decoder refuses
/// frames from any other version (kCorruption) rather than guessing.
inline constexpr uint8_t kWireVersion = 1;

/// Bytes before the payload.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Largest payload a frame may carry (16 MiB — comfortably above the
/// biggest range-query response the serving stack produces). A header
/// announcing more is rejected as corrupt before any buffering happens,
/// so a hostile peer cannot make the reader allocate unboundedly.
inline constexpr size_t kMaxPayloadBytes = 16u << 20;

/// What a frame carries.
enum class FrameType : uint8_t {
  kQuery = 0,
  kResponse = 1,
  kStatus = 2,
  kHealthz = 3,
};

/// Stable lower-case name ("query", "response", "status", "healthz").
const char* FrameTypeName(FrameType t);

/// \brief The wire form of a Status + serving condition: what the
/// server sends when a request fails, carrying the structured
/// backpressure hint across the process boundary.
struct WireStatus {
  Status::Code code = Status::Code::kInternal;
  std::string message;
  bool has_retry_after = false;
  double retry_after_ms = 0.0;
  ServerHealth health = ServerHealth::kServing;

  /// Rebuilds the in-process Status (UnavailableWithRetry when the
  /// retry hint rode along, so client->status().retry_after_ms() works
  /// exactly like the in-process API).
  Status ToStatus() const;

  /// Captures `s` (code, message, retry hint) plus the server's health.
  static WireStatus FromStatus(const Status& s, ServerHealth health);
};

/// \brief One decoded frame: its type and raw payload bytes.
struct WireFrame {
  FrameType type = FrameType::kQuery;
  std::string payload;
};

// --- encoding ---------------------------------------------------------

/// Appends a complete frame (header + payload, CRC stamped) to `*out`.
void AppendFrame(FrameType type, const char* payload, size_t length,
                 std::string* out);

/// One query request as a kQuery frame.
std::string EncodeQueryFrame(const QueryRequest& req);
/// One query response as a kResponse frame (doubles bit-exact).
std::string EncodeResponseFrame(const QueryResponse& resp);
/// One structured status as a kStatus frame.
std::string EncodeStatusFrame(const WireStatus& status);
/// The empty-payload health probe.
std::string EncodeHealthzFrame();

// --- payload decoding (all reject malformed bytes with kCorruption) ---

Status DecodeQueryPayload(const char* data, size_t length, QueryRequest* out);
Status DecodeResponsePayload(const char* data, size_t length,
                             QueryResponse* out);
Status DecodeStatusPayload(const char* data, size_t length, WireStatus* out);

// --- stream decoding --------------------------------------------------

/// \brief Incremental frame extractor over a byte stream.
///
/// Feed whatever the socket produced with Append(); Next() yields
/// complete frames one at a time. A partial frame stays buffered until
/// its remaining bytes arrive (`*got` = false, OK status); any header
/// or checksum violation is kCorruption, after which the stream is
/// unrecoverable (framing is lost) and every later Next() repeats the
/// verdict — the caller's move is to drop the connection.
class FrameReader {
 public:
  /// Buffers `length` more stream bytes.
  void Append(const char* data, size_t length);

  /// Extracts the next complete frame into `*out` and sets `*got`.
  /// Returns OK with `*got` = false when the buffered bytes end
  /// mid-frame (not an error — more input may arrive); kCorruption on
  /// any malformed header or checksum mismatch.
  Status Next(WireFrame* out, bool* got);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;  ///< consumed prefix of buffer_
  Status poisoned_ = Status::OK();  ///< sticky corruption verdict
};

}  // namespace netclus

#endif  // NETCLUS_NET_WIRE_H_
