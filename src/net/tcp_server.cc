#include "net/tcp_server.h"

#include <utility>

namespace netclus {
namespace {

/// Reader-side receive buffer. Small enough to stay cache-friendly,
/// large enough that a typical request arrives in one Recv.
constexpr size_t kRecvChunkBytes = 4096;

}  // namespace

TcpServer::TcpServer(QueryServer* server, const TcpServerOptions& options,
                     ListenSocket listener)
    : server_(server), options_(options), listener_(std::move(listener)) {}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    QueryServer* server, const TcpServerOptions& options) {
  if (server == nullptr) {
    return Status::InvalidArgument("TcpServer requires a QueryServer");
  }
  if (options.max_connections == 0) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  NETCLUS_ASSIGN_OR_RETURN(
      ListenSocket listener,
      ListenSocket::Listen(options.host, options.port, options.backlog));
  // make_unique needs a public constructor; bare new keeps it private.
  auto tcp = std::unique_ptr<TcpServer>(new TcpServer(
      server, options, std::move(listener)));
  tcp->acceptor_ = std::thread(&TcpServer::AcceptLoop, tcp.get());
  return tcp;
}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::Stop() {
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      // A previous Stop already ran (or is running) the join sequence.
      if (!acceptor_.joinable() && connections_.empty()) return;
    }
    stopping_ = true;
  }
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  // Unblock every reader (Recv returns EOF after ShutdownBoth), then
  // join outside the lock — readers take mu_ for their final counter
  // bump on the way out.
  std::vector<std::unique_ptr<Connection>> draining;
  {
    MutexLock lock(&mu_);
    for (auto& conn : connections_) conn->sock.ShutdownBoth();
    draining.swap(connections_);
  }
  for (auto& conn : draining) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  listener_.Close();
}

void TcpServer::AcceptLoop() {
  for (;;) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      // kUnavailable = listener shut down (the clean-stop signal); any
      // hard accept error also ends the acceptor — connections already
      // established keep being served until Stop.
      return;
    }
    Socket sock = std::move(accepted).value();
    bool refuse = false;
    {
      MutexLock lock(&mu_);
      if (stopping_) return;
      ReapFinishedLocked();
      if (connections_.size() >= options_.max_connections) {
        ++counters_.connections_refused;
        refuse = true;
      }
    }
    if (refuse) {
      // Refusal is a first-class protocol answer, not a silent close:
      // the client gets the same structured kUnavailable + retry hint
      // the admission queue would send, just one layer earlier.
      const WireStatus ws = WireStatus::FromStatus(
          Status::UnavailableWithRetry("connection limit reached",
                                       options_.refuse_retry_after_ms),
          server_->CurrentHealth());
      const std::string frame = EncodeStatusFrame(ws);
      if (sock.SendAll(frame.data(), frame.size()).ok()) {
        MutexLock lock(&mu_);
        ++counters_.frames_written;
        counters_.bytes_written += frame.size();
      }
      continue;  // sock closes on scope exit
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(sock);
    if (options_.idle_timeout_seconds > 0.0) {
      (void)conn->sock.SetRecvTimeout(options_.idle_timeout_seconds);
    }
    Connection* raw = conn.get();
    {
      MutexLock lock(&mu_);
      if (stopping_) return;  // conn closes on scope exit
      ++counters_.connections_accepted;
      connections_.push_back(std::move(conn));
      raw->reader = std::thread(&TcpServer::ReaderLoop, this, raw);
    }
  }
}

void TcpServer::ReaderLoop(Connection* conn) {
  FrameReader reader;
  char buf[kRecvChunkBytes];
  bool idle = false;
  for (;;) {
    Result<size_t> received = conn->sock.Recv(buf, sizeof(buf));
    if (!received.ok()) {
      idle = received.status().code() == Status::Code::kDeadlineExceeded;
      if (idle) {
        SendStatus(conn,
                   Status::DeadlineExceeded("idle timeout: disconnecting"));
      }
      break;
    }
    const size_t n = received.value();
    if (n == 0) break;  // orderly EOF
    {
      MutexLock lock(&mu_);
      counters_.bytes_read += n;
    }
    reader.Append(buf, n);
    bool drop = false;
    for (;;) {
      WireFrame frame;
      bool got = false;
      const Status s = reader.Next(&frame, &got);
      if (!s.ok()) {
        // Framing is lost; tell the peer why (best effort) and drop.
        {
          MutexLock lock(&mu_);
          ++counters_.corrupt_frames;
        }
        SendStatus(conn, s);
        drop = true;
        break;
      }
      if (!got) break;  // partial frame stays buffered
      {
        MutexLock lock(&mu_);
        ++counters_.frames_read;
      }
      if (!HandleFrame(conn, frame)) {
        drop = true;
        break;
      }
    }
    if (drop) break;
  }
  conn->sock.ShutdownBoth();
  {
    MutexLock lock(&mu_);
    ++counters_.connections_closed;
    if (idle) ++counters_.idle_disconnects;
  }
  // After this store the thread touches nothing of *this — which is
  // what makes joining it under mu_ (ReapFinishedLocked) safe.
  conn->done.store(true, std::memory_order_release);
}

bool TcpServer::HandleFrame(Connection* conn, const WireFrame& frame) {
  switch (frame.type) {
    case FrameType::kQuery: {
      QueryRequest req;
      const Status decoded =
          DecodeQueryPayload(frame.payload.data(), frame.payload.size(), &req);
      if (!decoded.ok()) {
        MutexLock lock(&mu_);
        ++counters_.corrupt_frames;
        lock.Unlock();
        SendStatus(conn, decoded);
        return false;
      }
      {
        MutexLock lock(&mu_);
        ++counters_.queries;
      }
      Result<QueryResponse> result = server_->Execute(req);
      if (!result.ok()) {
        // Carries the admission retry hint / deadline verdict verbatim;
        // a failed request does not cost the connection.
        SendStatus(conn, result.status());
        return true;
      }
      return SendEncoded(conn, EncodeResponseFrame(result.value()));
    }
    case FrameType::kHealthz: {
      if (!frame.payload.empty()) {
        MutexLock lock(&mu_);
        ++counters_.protocol_errors;
        lock.Unlock();
        SendStatus(conn, Status::Corruption(
                             "wire: healthz frame carries a payload"));
        return false;
      }
      {
        MutexLock lock(&mu_);
        ++counters_.healthz_probes;
      }
      Result<QueryResponse> result = server_->Execute(QueryRequest::Healthz());
      if (!result.ok()) {
        SendStatus(conn, result.status());
        return true;
      }
      return SendEncoded(conn, EncodeResponseFrame(result.value()));
    }
    case FrameType::kResponse:
    case FrameType::kStatus: {
      // Server-to-client frame types arriving at the server: the peer
      // is confused; answer once and hang up.
      {
        MutexLock lock(&mu_);
        ++counters_.protocol_errors;
      }
      SendStatus(conn,
                 Status::InvalidArgument(
                     std::string("wire: unexpected client frame type '") +
                     FrameTypeName(frame.type) + "'"));
      return false;
    }
  }
  return false;  // unreachable: FrameReader rejects unknown types
}

void TcpServer::SendStatus(Connection* conn, const Status& status) {
  const WireStatus ws =
      WireStatus::FromStatus(status, server_->CurrentHealth());
  (void)SendEncoded(conn, EncodeStatusFrame(ws));
}

bool TcpServer::SendEncoded(Connection* conn, const std::string& encoded) {
  if (!conn->sock.SendAll(encoded.data(), encoded.size()).ok()) return false;
  MutexLock lock(&mu_);
  ++counters_.frames_written;
  counters_.bytes_written += encoded.size();
  return true;
}

void TcpServer::ReapFinishedLocked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

TcpServerStats TcpServer::stats() const {
  MutexLock lock(&mu_);
  TcpServerStats out = counters_;
  size_t open = 0;
  for (const auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) ++open;
  }
  out.open_connections = open;
  return out;
}

void TcpServer::PublishStats(StatsCollector* collector) const {
  const TcpServerStats now = stats();
  MutexLock lock(&publish_stats_mu_);
  auto delta = [](uint64_t cur, uint64_t* prev) {
    uint64_t d = cur - *prev;
    *prev = cur;
    return d;
  };
  collector->Add(
      "net.connections_accepted",
      delta(now.connections_accepted, &published_stats_.connections_accepted));
  collector->Add(
      "net.connections_refused",
      delta(now.connections_refused, &published_stats_.connections_refused));
  collector->Add(
      "net.connections_closed",
      delta(now.connections_closed, &published_stats_.connections_closed));
  collector->Add("net.idle_disconnects", delta(now.idle_disconnects,
                                               &published_stats_.idle_disconnects));
  collector->Add("net.frames_read",
                 delta(now.frames_read, &published_stats_.frames_read));
  collector->Add("net.frames_written",
                 delta(now.frames_written, &published_stats_.frames_written));
  collector->Add("net.corrupt_frames",
                 delta(now.corrupt_frames, &published_stats_.corrupt_frames));
  collector->Add("net.protocol_errors",
                 delta(now.protocol_errors, &published_stats_.protocol_errors));
  collector->Add("net.queries", delta(now.queries, &published_stats_.queries));
  collector->Add("net.healthz_probes",
                 delta(now.healthz_probes, &published_stats_.healthz_probes));
  collector->Add("net.bytes_read",
                 delta(now.bytes_read, &published_stats_.bytes_read));
  collector->Add("net.bytes_written",
                 delta(now.bytes_written, &published_stats_.bytes_written));
  // Gauge, not a counter: overwritten with the point-in-time count.
  collector->Set("net.open_connections", now.open_connections);
}

}  // namespace netclus
