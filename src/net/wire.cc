#include "net/wire.h"

#include <cstring>

#include "common/crc32c.h"

namespace netclus {
namespace {

constexpr char kWireMagic[4] = {'N', 'C', 'L', 'W'};

constexpr size_t kQueryPayloadBytes = 40;
constexpr size_t kResponseHeadBytes = 28;
constexpr size_t kResultBytes = 16;  // ObjectId + double per range result
constexpr size_t kStatusHeadBytes = 16;

constexpr uint8_t kMaxFrameType = static_cast<uint8_t>(FrameType::kHealthz);
constexpr uint8_t kMaxQueryKind = static_cast<uint8_t>(QueryKind::kHealthz);
constexpr uint8_t kMaxHealth = static_cast<uint8_t>(ServerHealth::kStopping);
constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(Status::Code::kDeadlineExceeded);

void PutU32(char* out, uint32_t v) { std::memcpy(out, &v, 4); }
void PutU64(char* out, uint64_t v) { std::memcpy(out, &v, 8); }
void PutF64(char* out, double v) { std::memcpy(out, &v, 8); }
uint32_t GetU32(const char* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}
uint64_t GetU64(const char* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}
double GetF64(const char* in) {
  double v;
  std::memcpy(&v, in, 8);
  return v;
}

Status Corrupt(const std::string& what) {
  return Status::Corruption("wire: " + what);
}

}  // namespace

const char* FrameTypeName(FrameType t) {
  switch (t) {
    case FrameType::kQuery:
      return "query";
    case FrameType::kResponse:
      return "response";
    case FrameType::kStatus:
      return "status";
    case FrameType::kHealthz:
      return "healthz";
  }
  return "unknown";
}

Status WireStatus::ToStatus() const {
  std::string msg = message;
  switch (code) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case Status::Code::kIOError:
      return Status::IOError(std::move(msg));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Status::Code::kInternal:
      return Status::Internal(std::move(msg));
    case Status::Code::kUnavailable:
      return has_retry_after
                 ? Status::UnavailableWithRetry(std::move(msg), retry_after_ms)
                 : Status::Unavailable(std::move(msg));
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
  }
  return Status::Internal("wire: unknown status code " + std::move(msg));
}

WireStatus WireStatus::FromStatus(const Status& s, ServerHealth health_state) {
  WireStatus w;
  w.code = s.code();
  w.message = s.message();
  if (s.retry_after_ms().has_value()) {
    w.has_retry_after = true;
    w.retry_after_ms = *s.retry_after_ms();
  }
  w.health = health_state;
  return w;
}

void AppendFrame(FrameType type, const char* payload, size_t length,
                 std::string* out) {
  NETCLUS_CHECK(length <= kMaxPayloadBytes)
      << "frame payload " << length << " exceeds the wire limit";
  const size_t start = out->size();
  out->resize(start + kFrameHeaderBytes + length);
  char* h = &(*out)[start];
  std::memset(h, 0, kFrameHeaderBytes);
  std::memcpy(h + 4, kWireMagic, 4);
  h[8] = static_cast<char>(kWireVersion);
  h[9] = static_cast<char>(type);
  PutU32(h + 12, static_cast<uint32_t>(length));
  if (length > 0) std::memcpy(h + kFrameHeaderBytes, payload, length);
  const uint32_t crc = Crc32c(h + 4, kFrameHeaderBytes - 4 + length);
  PutU32(h, crc);
}

std::string EncodeQueryFrame(const QueryRequest& req) {
  char p[kQueryPayloadBytes];
  std::memset(p, 0, sizeof(p));
  p[0] = static_cast<char>(req.kind);
  PutU64(p + 4, req.a);
  PutU64(p + 12, req.b);
  PutF64(p + 20, req.eps);
  PutU32(p + 28, req.k);
  PutF64(p + 32, req.deadline_ms);
  std::string out;
  AppendFrame(FrameType::kQuery, p, sizeof(p), &out);
  return out;
}

std::string EncodeResponseFrame(const QueryResponse& resp) {
  std::string payload(
      kResponseHeadBytes + resp.results.size() * kResultBytes, '\0');
  char* p = payload.data();
  p[0] = static_cast<char>(resp.kind);
  p[1] = static_cast<char>(resp.health);
  PutF64(p + 4, resp.distance);
  PutU32(p + 12, static_cast<uint32_t>(resp.cluster_id));
  PutU64(p + 16, resp.epoch);
  PutU32(p + 24, static_cast<uint32_t>(resp.results.size()));
  char* r = p + kResponseHeadBytes;
  for (const QueryResult& res : resp.results) {
    PutU64(r, res.id);
    PutF64(r + 8, res.dist);
    r += kResultBytes;
  }
  std::string out;
  AppendFrame(FrameType::kResponse, payload.data(), payload.size(), &out);
  return out;
}

std::string EncodeStatusFrame(const WireStatus& status) {
  std::string payload(kStatusHeadBytes + status.message.size(), '\0');
  char* p = payload.data();
  p[0] = static_cast<char>(status.code);
  p[1] = static_cast<char>(status.health);
  p[2] = status.has_retry_after ? 1 : 0;
  PutF64(p + 4, status.has_retry_after ? status.retry_after_ms : 0.0);
  PutU32(p + 12, static_cast<uint32_t>(status.message.size()));
  std::memcpy(p + kStatusHeadBytes, status.message.data(),
              status.message.size());
  std::string out;
  AppendFrame(FrameType::kStatus, payload.data(), payload.size(), &out);
  return out;
}

std::string EncodeHealthzFrame() {
  std::string out;
  AppendFrame(FrameType::kHealthz, nullptr, 0, &out);
  return out;
}

Status DecodeQueryPayload(const char* data, size_t length,
                          QueryRequest* out) {
  if (length != kQueryPayloadBytes) {
    return Corrupt("query payload is " + std::to_string(length) +
                   " bytes, expected " + std::to_string(kQueryPayloadBytes));
  }
  const uint8_t kind = static_cast<uint8_t>(data[0]);
  if (kind > kMaxQueryKind) {
    return Corrupt("unknown query kind " + std::to_string(kind));
  }
  if (data[1] != 0 || data[2] != 0 || data[3] != 0) {
    return Corrupt("nonzero query padding");
  }
  out->kind = static_cast<QueryKind>(kind);
  out->a = GetU64(data + 4);
  out->b = GetU64(data + 12);
  out->eps = GetF64(data + 20);
  out->k = GetU32(data + 28);
  out->deadline_ms = GetF64(data + 32);
  return Status::OK();
}

Status DecodeResponsePayload(const char* data, size_t length,
                             QueryResponse* out) {
  if (length < kResponseHeadBytes) {
    return Corrupt("response payload truncated at " + std::to_string(length) +
                   " bytes");
  }
  const uint8_t kind = static_cast<uint8_t>(data[0]);
  if (kind > kMaxQueryKind) {
    return Corrupt("unknown response kind " + std::to_string(kind));
  }
  const uint8_t health = static_cast<uint8_t>(data[1]);
  if (health > kMaxHealth) {
    return Corrupt("unknown health state " + std::to_string(health));
  }
  if (data[2] != 0 || data[3] != 0) {
    return Corrupt("nonzero response padding");
  }
  const uint32_t n = GetU32(data + 24);
  if (length != kResponseHeadBytes + static_cast<size_t>(n) * kResultBytes) {
    return Corrupt("response announces " + std::to_string(n) +
                   " results but carries " + std::to_string(length) +
                   " payload bytes");
  }
  out->kind = static_cast<QueryKind>(kind);
  out->health = static_cast<ServerHealth>(health);
  out->distance = GetF64(data + 4);
  out->cluster_id = static_cast<int>(GetU32(data + 12));
  out->epoch = GetU64(data + 16);
  out->results.clear();
  out->results.reserve(n);
  const char* r = data + kResponseHeadBytes;
  for (uint32_t i = 0; i < n; ++i) {
    QueryResult res;
    res.id = GetU64(r);
    res.dist = GetF64(r + 8);
    out->results.push_back(res);
    r += kResultBytes;
  }
  return Status::OK();
}

Status DecodeStatusPayload(const char* data, size_t length, WireStatus* out) {
  if (length < kStatusHeadBytes) {
    return Corrupt("status payload truncated at " + std::to_string(length) +
                   " bytes");
  }
  const uint8_t code = static_cast<uint8_t>(data[0]);
  // An OK status never travels as a kStatus frame (success is a
  // kResponse), so code 0 is as hostile as code 255.
  if (code == 0 || code > kMaxStatusCode) {
    return Corrupt("unknown status code " + std::to_string(code));
  }
  const uint8_t health = static_cast<uint8_t>(data[1]);
  if (health > kMaxHealth) {
    return Corrupt("unknown health state " + std::to_string(health));
  }
  const uint8_t has_retry = static_cast<uint8_t>(data[2]);
  if (has_retry > 1 || data[3] != 0) {
    return Corrupt("malformed status flags");
  }
  const uint32_t msg_len = GetU32(data + 12);
  if (length != kStatusHeadBytes + static_cast<size_t>(msg_len)) {
    return Corrupt("status announces a " + std::to_string(msg_len) +
                   "-byte message but carries " + std::to_string(length) +
                   " payload bytes");
  }
  out->code = static_cast<Status::Code>(code);
  out->health = static_cast<ServerHealth>(health);
  out->has_retry_after = has_retry == 1;
  out->retry_after_ms = GetF64(data + 4);
  if (!out->has_retry_after && out->retry_after_ms != 0.0) {
    return Corrupt("retry hint bytes set without the retry flag");
  }
  out->message.assign(data + kStatusHeadBytes, msg_len);
  return Status::OK();
}

void FrameReader::Append(const char* data, size_t length) {
  buffer_.append(data, length);
}

Status FrameReader::Next(WireFrame* out, bool* got) {
  *got = false;
  if (!poisoned_.ok()) return poisoned_;
  // Reclaim the consumed prefix once it is large enough to matter.
  if (pos_ > (64u << 10)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buffer_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Status::OK();
  const char* h = buffer_.data() + pos_;
  // Header sanity runs before the CRC: a reader must reject an absurd
  // length without waiting for (or allocating) that many bytes.
  if (std::memcmp(h + 4, kWireMagic, 4) != 0) {
    poisoned_ = Corrupt("bad frame magic");
    return poisoned_;
  }
  if (static_cast<uint8_t>(h[8]) != kWireVersion) {
    poisoned_ = Corrupt("unsupported protocol version " +
                        std::to_string(static_cast<uint8_t>(h[8])));
    return poisoned_;
  }
  if (static_cast<uint8_t>(h[9]) > kMaxFrameType) {
    poisoned_ = Corrupt("unknown frame type " +
                        std::to_string(static_cast<uint8_t>(h[9])));
    return poisoned_;
  }
  if (h[10] != 0 || h[11] != 0) {
    poisoned_ = Corrupt("nonzero header padding");
    return poisoned_;
  }
  const uint32_t length = GetU32(h + 12);
  if (length > kMaxPayloadBytes) {
    poisoned_ = Corrupt("oversized frame (" + std::to_string(length) +
                        " payload bytes, limit " +
                        std::to_string(kMaxPayloadBytes) + ")");
    return poisoned_;
  }
  if (avail < kFrameHeaderBytes + length) return Status::OK();  // incomplete
  const uint32_t stored_crc = GetU32(h);
  const uint32_t actual_crc = Crc32c(h + 4, kFrameHeaderBytes - 4 + length);
  if (stored_crc != actual_crc) {
    poisoned_ = Corrupt("frame checksum mismatch");
    return poisoned_;
  }
  out->type = static_cast<FrameType>(h[9]);
  out->payload.assign(h + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  *got = true;
  return Status::OK();
}

}  // namespace netclus
