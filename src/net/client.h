// Blocking client for the query service's binary wire protocol
// (net/wire.h): dial once, Execute() per request, with the same
// structured-backpressure behavior a polite in-process caller would
// implement — a kUnavailable answer carrying retry_after_ms is slept on
// (hint first, capped exponential backoff otherwise) and retried, a
// dropped connection is redialed, and every other error is returned to
// the caller unchanged, code and message intact.
//
// One QueryClient is one connection and is NOT thread-safe; concurrent
// callers each open their own (connections are cheap, and the protocol
// is strictly one-request-at-a-time per connection).
#ifndef NETCLUS_NET_CLIENT_H_
#define NETCLUS_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"
#include "server/query.h"

namespace netclus {

/// \brief Dial + retry knobs.
struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Guards against a hung server: a response taking longer than this
  /// fails the request with kDeadlineExceeded. 0 waits forever.
  double recv_timeout_seconds = 30.0;
  /// Retries after a retryable failure (kUnavailable backpressure, a
  /// dropped connection); 0 = fail on first error.
  uint32_t max_retries = 3;
  /// Exponential backoff when the server sent no retry hint:
  /// min(cap, floor * 2^attempt) milliseconds.
  double backoff_floor_ms = 1.0;
  double backoff_cap_ms = 2000.0;
  /// Redial a broken connection instead of failing the request.
  bool reconnect = true;
};

/// \brief Client-side counters (monotonic since Connect).
struct ClientStats {
  uint64_t requests = 0;    ///< Execute/Healthz calls
  uint64_t responses = 0;   ///< kResponse frames received
  uint64_t status_frames = 0;  ///< kStatus frames received
  uint64_t retries = 0;     ///< attempts beyond each request's first
  uint64_t reconnects = 0;  ///< successful redials after a drop
};

/// \brief One blocking connection to a TcpServer. Create with
/// Connect(), then Execute()/Healthz(). Not thread-safe.
class QueryClient {
 public:
  /// Dials `options.host:options.port`. Fails (kIOError) when the
  /// server is not reachable — connecting is not retried here; callers
  /// that want connect-retry loop around Connect themselves.
  static Result<std::unique_ptr<QueryClient>> Connect(
      const ClientOptions& options);

  /// Sends `req` and blocks for the verdict. kUnavailable answers are
  /// backed off (server hint first) and retried up to max_retries; a
  /// dead connection is redialed when options.reconnect is set. All
  /// other failures — including kCorruption from a garbled stream —
  /// return immediately with the server's code and message.
  Result<QueryResponse> Execute(const QueryRequest& req);

  /// The queue-bypassing health probe (answerable under backpressure).
  Result<QueryResponse> Healthz();

  /// Health the server stamped on the most recent answer (kServing
  /// before any exchange).
  ServerHealth last_health() const { return last_health_; }

  ClientStats stats() const { return stats_; }

  /// The backoff schedule, exposed pure for unit tests: the server's
  /// retry hint when `status` carries one, else floor * 2^attempt, both
  /// clamped to [0, cap].
  static double BackoffDelayMs(const Status& status, uint32_t attempt,
                               const ClientOptions& options);

 private:
  explicit QueryClient(const ClientOptions& options)
      : options_(options) {}

  /// Sends one pre-encoded frame and reads frames until a kResponse
  /// (decoded into *out) or kStatus (returned as its Status) arrives.
  Status RoundTrip(const std::string& encoded, QueryResponse* out);

  /// Dials if the socket is down. Counts a reconnect only after the
  /// first successful dial.
  Status EnsureConnected();

  const ClientOptions options_;
  Socket sock_;
  bool ever_connected_ = false;
  ServerHealth last_health_ = ServerHealth::kServing;
  ClientStats stats_;
};

}  // namespace netclus

#endif  // NETCLUS_NET_CLIENT_H_
