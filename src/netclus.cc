#include "netclus.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/validate.h"
#include "graph/frozen_graph.h"

namespace netclus {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kKMedoids:
      return "kmedoids";
    case Algorithm::kEpsLink:
      return "epslink";
    case Algorithm::kSingleLink:
      return "singlelink";
    case Algorithm::kDbscan:
      return "dbscan";
  }
  return "unknown";
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  for (Algorithm a : {Algorithm::kKMedoids, Algorithm::kEpsLink,
                      Algorithm::kSingleLink, Algorithm::kDbscan}) {
    if (name == AlgorithmName(a)) return a;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

namespace {

// The Single-Link flat-cut cascade documented on ClusterSpec.
Clustering CutDendrogram(const Dendrogram& dendrogram,
                         const ClusterSpec& spec) {
  if (spec.cut_distance > 0.0) {
    return dendrogram.CutAtDistance(spec.cut_distance, spec.cut_min_size);
  }
  if (std::isfinite(spec.single_link.stop_distance)) {
    return dendrogram.CutAtDistance(spec.single_link.stop_distance,
                                    spec.cut_min_size);
  }
  return dendrogram.CutAtCount(
      std::max<uint32_t>(1, spec.single_link.stop_cluster_count),
      spec.cut_min_size);
}

// The per-algorithm invariant validators of core/validate.h, dispatched
// over the finished output. Runs when the spec asks for it, and on every
// run in -DNETCLUS_VALIDATE=ON builds.
Status ValidateOutput(const NetworkView& view, const ClusterSpec& spec,
                      const ClusterOutput& out) {
  switch (spec.algorithm) {
    case Algorithm::kKMedoids:
      return ValidateKMedoids(view, out.clustering, out.medoids, out.cost);
    case Algorithm::kEpsLink:
      return ValidateEpsLink(view, out.clustering, spec.eps_link);
    case Algorithm::kSingleLink:
      NETCLUS_RETURN_IF_ERROR(ValidateClusteringShape(view, out.clustering));
      return ValidateDendrogram(*out.dendrogram, spec.single_link);
    case Algorithm::kDbscan:
      return ValidateDbscan(view, out.clustering, spec.dbscan);
  }
  return Status::OK();
}

}  // namespace

ClusterSpec MakeSpec(const KMedoidsOptions& options) {
  ClusterSpec spec;
  spec.algorithm = Algorithm::kKMedoids;
  spec.kmedoids = options;
  return spec;
}

ClusterSpec MakeSpec(const EpsLinkOptions& options) {
  ClusterSpec spec;
  spec.algorithm = Algorithm::kEpsLink;
  spec.eps_link = options;
  return spec;
}

ClusterSpec MakeSpec(const DbscanOptions& options) {
  ClusterSpec spec;
  spec.algorithm = Algorithm::kDbscan;
  spec.dbscan = options;
  return spec;
}

ClusterSpec MakeSpec(const SingleLinkOptions& options, double cut_distance,
                     uint32_t cut_min_size) {
  ClusterSpec spec;
  spec.algorithm = Algorithm::kSingleLink;
  spec.single_link = options;
  spec.cut_distance = cut_distance;
  spec.cut_min_size = cut_min_size;
  return spec;
}

Result<ClusterOutput> RunClustering(const NetworkView& view,
                                    const ClusterSpec& spec) {
  // A view carrying a prior storage error would feed the algorithms
  // partial data; refuse up front.
  NETCLUS_RETURN_IF_ERROR(view.status());
  WallTimer timer;
  // Freeze the adjacency structure once per run: every traversal below
  // — index builds and the algorithms themselves — expands over this
  // immutable CSR snapshot, shared read-only across the thread pool,
  // instead of paying virtual dispatch per neighbor. Trajectories are
  // bit-identical to the live-view path (ValidateFrozenGraph re-proves
  // the snapshot under validate mode).
  NETCLUS_ASSIGN_OR_RETURN(FrozenGraph frozen, view.Freeze());
  // The optional distance index (landmarks + cache + Voronoi floors) is
  // built up front and handed to the algorithms that accept an
  // accelerator; the others simply ignore it. With `index.enable` unset
  // `index` stays null and every call below takes the unindexed path.
  std::unique_ptr<DistanceIndex> index;
  if (spec.index.enable) {
    uint32_t workers = ResolveNumThreads(spec.index.num_threads);
    std::optional<ThreadPool> pool;
    if (workers > 1 && spec.index.num_landmarks > 1) pool.emplace(workers);
    NETCLUS_ASSIGN_OR_RETURN(
        index, DistanceIndex::Build(view, spec.index,
                                    pool ? &*pool : nullptr, &frozen));
  }
  const DistanceAccelerator* accel = index.get();
  ClusterOutput out;
  out.algorithm = spec.algorithm;
  switch (spec.algorithm) {
    case Algorithm::kKMedoids: {
      Result<KMedoidsResult> r =
          KMedoidsCluster(view, spec.kmedoids, accel, &frozen);
      if (!r.ok()) return r.status();
      out.clustering = std::move(r.value().clustering);
      out.medoids = std::move(r.value().medoids);
      out.cost = r.value().cost;
      out.kmedoids_stats = r.value().stats;
      break;
    }
    case Algorithm::kEpsLink: {
      Result<Clustering> r = EpsLinkCluster(view, spec.eps_link, &frozen);
      if (!r.ok()) return r.status();
      out.clustering = std::move(r.value());
      break;
    }
    case Algorithm::kSingleLink: {
      Result<SingleLinkResult> r =
          SingleLinkCluster(view, spec.single_link, &frozen);
      if (!r.ok()) return r.status();
      out.clustering = CutDendrogram(r.value().dendrogram, spec);
      out.dendrogram = std::move(r.value().dendrogram);
      out.single_link_stats = r.value().stats;
      break;
    }
    case Algorithm::kDbscan: {
      Result<Clustering> r = DbscanCluster(view, spec.dbscan, accel, &frozen);
      if (!r.ok()) return r.status();
      out.clustering = std::move(r.value());
      break;
    }
  }
  // Storage failures during the run (recorded by DiskNetworkView while
  // the algorithms consumed neutral fallback values) invalidate the
  // result: report the I/O error, never a silently wrong clustering.
  NETCLUS_RETURN_IF_ERROR(view.status());
#if defined(NETCLUS_VALIDATE)
  constexpr bool kAlwaysValidate = true;
#else
  constexpr bool kAlwaysValidate = false;
#endif
  if (spec.validate || kAlwaysValidate) {
    // The snapshot every traversal above ran over must be a faithful
    // copy of the view — checked first, since a corrupt snapshot would
    // invalidate the algorithm output audits below.
    NETCLUS_RETURN_IF_ERROR(ValidateFrozenGraph(view, frozen));
    NETCLUS_RETURN_IF_ERROR(ValidateOutput(view, spec, out));
    // Re-prove every class of bound the index served during the run
    // against independent exact traversals.
    if (index != nullptr) {
      NETCLUS_RETURN_IF_ERROR(ValidateDistanceAccelerator(view, *index));
    }
    // The validators' own traversals may also have tripped a storage
    // error the algorithm's region never touched.
    NETCLUS_RETURN_IF_ERROR(view.status());
  }
  if (index != nullptr) {
    out.index_stats = index->Stats();
    index->PublishStats(&StatsCollector::Global());
  }
  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace netclus
