#include "server/snapshot.h"

namespace netclus {

void SnapshotView::GetEdgePoints(NodeId a, NodeId b,
                                 std::vector<EdgePoint>* out) const {
  out->clear();
  auto [first, count] = points_->EdgePointRange(a, b);
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(EdgePoint{first + i, points_->offset(first + i)});
  }
}

void SnapshotView::ForEachPointGroup(
    const std::function<void(NodeId, NodeId, PointId, uint32_t)>& fn) const {
  for (size_t i = 0; i < points_->num_groups(); ++i) {
    const PointSet::Group& g = points_->group(i);
    fn(g.u, g.v, g.first, g.count);
  }
}

EpochSnapshot::EpochSnapshot(
    uint64_t epoch, std::shared_ptr<const FrozenGraph> graph,
    std::shared_ptr<const PointSet> points,
    std::shared_ptr<const ClusterOutput> clusters,
    std::shared_ptr<const DistanceCache> cache, uint32_t num_pin_slots,
    std::shared_ptr<std::atomic<uint64_t>> freed_counter,
    std::shared_ptr<const IdentityMap> ids)
    : epoch_(epoch),
      clusters_(std::move(clusters)),
      cache_(std::move(cache)),
      ids_(std::move(ids)),
      view_(std::move(graph), std::move(points)),
      pin_slots_(num_pin_slots > 0 ? num_pin_slots : 1),
      freed_counter_(std::move(freed_counter)) {}

EpochSnapshot::~EpochSnapshot() {
  if (freed_counter_ != nullptr) {
    freed_counter_->fetch_add(1, std::memory_order_release);
  }
}

}  // namespace netclus
