#include "server/query.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace netclus {

const char* QueryKindName(QueryKind k) {
  switch (k) {
    case QueryKind::kPointDistance:
      return "distance";
    case QueryKind::kRange:
      return "range";
    case QueryKind::kNearestObject:
      return "nearest";
    case QueryKind::kClusterMembership:
      return "membership";
    case QueryKind::kHealthz:
      return "healthz";
  }
  return "unknown";
}

const char* ServerHealthName(ServerHealth h) {
  switch (h) {
    case ServerHealth::kServing:
      return "serving";
    case ServerHealth::kDegraded:
      return "degraded";
    case ServerHealth::kStopping:
      return "stopping";
  }
  return "unknown";
}

bool ResponsePayloadsEqual(const QueryResponse& a, const QueryResponse& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case QueryKind::kPointDistance:
      return a.distance == b.distance;
    case QueryKind::kRange:
    case QueryKind::kNearestObject:
      return a.results == b.results;
    case QueryKind::kClusterMembership:
      return a.cluster_id == b.cluster_id;
    case QueryKind::kHealthz:
      return a.health == b.health;
  }
  return false;
}

Status ValidateQueryRequest(const NetworkView& view, const QueryRequest& req,
                            const ClusterOutput* clusters) {
  if (req.kind == QueryKind::kHealthz) {
    return Status::InvalidArgument(
        "healthz is answered by the query server's admission path, not the "
        "query executor");
  }
  if (!(req.deadline_ms >= 0.0) || !std::isfinite(req.deadline_ms)) {
    return Status::InvalidArgument("deadline_ms must be finite and >= 0");
  }
  const PointId n = view.num_points();
  if (req.a >= n) {
    return Status::InvalidArgument("query point a=" + std::to_string(req.a) +
                                   " out of range [0, " + std::to_string(n) +
                                   ")");
  }
  switch (req.kind) {
    case QueryKind::kPointDistance:
      if (req.b >= n) {
        return Status::InvalidArgument(
            "query point b=" + std::to_string(req.b) + " out of range [0, " +
            std::to_string(n) + ")");
      }
      break;
    case QueryKind::kRange:
      if (!(req.eps >= 0.0) || !std::isfinite(req.eps)) {
        return Status::InvalidArgument("range eps must be finite and >= 0");
      }
      break;
    case QueryKind::kNearestObject:
      if (req.k == 0) {
        return Status::InvalidArgument("nearest-object k must be >= 1");
      }
      break;
    case QueryKind::kClusterMembership:
      if (clusters == nullptr) {
        return Status::NotFound(
            "no ClusterOutput available for membership queries (serve with a "
            "cluster_spec, or pass clusters inline)");
      }
      if (req.a >= clusters->clustering.assignment.size()) {
        return Status::OutOfRange(
            "membership point " + std::to_string(req.a) +
            " not covered by the cached clustering (" +
            std::to_string(clusters->clustering.assignment.size()) +
            " points)");
      }
      break;
    case QueryKind::kHealthz:
      break;  // unreachable — rejected above
  }
  return Status::OK();
}

Status ExecuteQueryInto(const NetworkView& view, const FrozenGraph* frozen,
                        const QueryRequest& req, TraversalWorkspace* ws,
                        const DistanceAccelerator* accel,
                        const ClusterOutput* clusters, QueryResponse* out) {
  NETCLUS_RETURN_IF_ERROR(ValidateQueryRequest(view, req, clusters));
  out->kind = req.kind;
  out->distance = 0.0;
  out->cluster_id = 0;
  out->health = ServerHealth::kServing;
  out->epoch = 0;
  out->results.clear();
  ws->cancel.triggered = false;

  switch (req.kind) {
    case QueryKind::kPointDistance:
      // The accelerated overloads fall back to the exact path on a null
      // accel; with the default threshold (kInfDist) they always return
      // the exact distance, so accel on/off cannot change the payload.
      out->distance = frozen ? PointNetworkDistance(view, *frozen, req.a,
                                                    req.b, ws, accel)
                             : PointNetworkDistance(view, req.a, req.b, ws,
                                                    accel);
      break;
    case QueryKind::kRange: {
      if (frozen) {
        RangeQuery(view, *frozen, req.a, req.eps, ws, accel, &out->results);
      } else {
        RangeQuery(view, req.a, req.eps, ws, accel, &out->results);
      }
      // The plain overloads emit in settle order and the accelerated
      // ones by id; canonicalize so every execution style agrees.
      std::sort(out->results.begin(), out->results.end(),
                [](const RangeResult& a, const RangeResult& b) {
                  return a.id < b.id;
                });
      break;
    }
    case QueryKind::kNearestObject:
      // Already ordered by (distance, id) — that order is the answer.
      if (frozen) {
        KNearestNeighbors(view, *frozen, req.a, req.k, ws, &out->results);
      } else {
        KNearestNeighbors(view, req.a, req.k, ws, &out->results);
      }
      break;
    case QueryKind::kClusterMembership:
      out->cluster_id = clusters->clustering.assignment[req.a];
      break;
    case QueryKind::kHealthz:
      break;  // unreachable — rejected by validation
  }
  if (ws->cancel.triggered) {
    // The traversal abandoned work mid-expansion; whatever landed in
    // `out` is a partial non-answer. Scrub it so no caller can serve it.
    out->distance = 0.0;
    out->results.clear();
    return Status::DeadlineExceeded("query cancelled mid-traversal: " +
                                    std::string(QueryKindName(req.kind)) +
                                    " query on point " + std::to_string(req.a));
  }
  return Status::OK();
}

Result<QueryResponse> ExecuteQuery(const NetworkView& view,
                                   const FrozenGraph* frozen,
                                   const QueryRequest& req,
                                   const DistanceAccelerator* accel,
                                   const ClusterOutput* clusters) {
  TraversalWorkspace ws(view.num_nodes());
  QueryResponse out;
  NETCLUS_RETURN_IF_ERROR(
      ExecuteQueryInto(view, frozen, req, &ws, accel, clusters, &out));
  return out;
}

Status ValidateServedBatch(const NetworkView& view, const FrozenGraph* frozen,
                           const std::vector<QueryRequest>& requests,
                           const std::vector<QueryResponse>& responses,
                           const ClusterOutput* clusters) {
  if (requests.size() != responses.size()) {
    return Status::Internal("served batch size mismatch: " +
                            std::to_string(requests.size()) + " requests vs " +
                            std::to_string(responses.size()) + " responses");
  }
  TraversalWorkspace ws(view.num_nodes());
  QueryResponse replay;
  for (size_t i = 0; i < requests.size(); ++i) {
    NETCLUS_RETURN_IF_ERROR(ExecuteQueryInto(view, frozen, requests[i], &ws,
                                             /*accel=*/nullptr, clusters,
                                             &replay));
    if (!ResponsePayloadsEqual(replay, responses[i])) {
      return Status::Internal(
          "served response diverges from the direct path: batch index " +
          std::to_string(i) + ", kind " +
          QueryKindName(requests[i].kind) + ", point " +
          std::to_string(requests[i].a));
    }
  }
  return Status::OK();
}

}  // namespace netclus
