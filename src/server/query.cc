#include "server/query.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace netclus {
namespace {

/// Graph-layer scratch for the raw dense-id results of range / nearest
/// traversals, reused across calls on the same thread so the steady
/// state stays allocation-free (the response's own vector holds the
/// translated ObjectId results).
std::vector<RangeResult>* RawResultScratch() {
  static thread_local std::vector<RangeResult> scratch;
  return &scratch;
}

}  // namespace

const char* QueryKindName(QueryKind k) {
  switch (k) {
    case QueryKind::kPointDistance:
      return "distance";
    case QueryKind::kRange:
      return "range";
    case QueryKind::kNearestObject:
      return "nearest";
    case QueryKind::kClusterMembership:
      return "membership";
    case QueryKind::kHealthz:
      return "healthz";
  }
  return "unknown";
}

const char* ServerHealthName(ServerHealth h) {
  switch (h) {
    case ServerHealth::kServing:
      return "serving";
    case ServerHealth::kDegraded:
      return "degraded";
    case ServerHealth::kStopping:
      return "stopping";
  }
  return "unknown";
}

bool ResponsePayloadsEqual(const QueryResponse& a, const QueryResponse& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case QueryKind::kPointDistance:
      return a.distance == b.distance;
    case QueryKind::kRange:
    case QueryKind::kNearestObject:
      return a.results == b.results;
    case QueryKind::kClusterMembership:
      return a.cluster_id == b.cluster_id;
    case QueryKind::kHealthz:
      return a.health == b.health;
  }
  return false;
}

Status ValidateQueryRequest(const NetworkView& view, const QueryRequest& req,
                            const ClusterOutput* clusters,
                            const IdentityMap* ids) {
  if (req.kind == QueryKind::kHealthz) {
    return Status::InvalidArgument(
        "healthz is answered by the query server's admission path, not the "
        "query executor");
  }
  if (!(req.deadline_ms >= 0.0) || !std::isfinite(req.deadline_ms)) {
    return Status::InvalidArgument("deadline_ms must be finite and >= 0");
  }
  const PointId n = view.num_points();
  const PointId pa = ResolveObject(ids, req.a, n);
  if (pa == kInvalidPointId || pa >= n) {
    return Status::InvalidArgument("query object a=" + std::to_string(req.a) +
                                   " does not name a point of this epoch (" +
                                   std::to_string(n) + " points)");
  }
  switch (req.kind) {
    case QueryKind::kPointDistance: {
      const PointId pb = ResolveObject(ids, req.b, n);
      if (pb == kInvalidPointId || pb >= n) {
        return Status::InvalidArgument(
            "query object b=" + std::to_string(req.b) +
            " does not name a point of this epoch (" + std::to_string(n) +
            " points)");
      }
      break;
    }
    case QueryKind::kRange:
      if (!(req.eps >= 0.0) || !std::isfinite(req.eps)) {
        return Status::InvalidArgument("range eps must be finite and >= 0");
      }
      break;
    case QueryKind::kNearestObject:
      if (req.k == 0) {
        return Status::InvalidArgument("nearest-object k must be >= 1");
      }
      break;
    case QueryKind::kClusterMembership:
      if (clusters == nullptr) {
        return Status::NotFound(
            "no ClusterOutput available for membership queries (serve with a "
            "cluster_spec, or pass clusters inline)");
      }
      if (pa >= clusters->clustering.assignment.size()) {
        return Status::OutOfRange(
            "membership object " + std::to_string(req.a) +
            " not covered by the cached clustering (" +
            std::to_string(clusters->clustering.assignment.size()) +
            " points)");
      }
      break;
    case QueryKind::kHealthz:
      break;  // unreachable — rejected above
  }
  return Status::OK();
}

Status ExecuteQueryInto(const NetworkView& view, const FrozenGraph* frozen,
                        const QueryRequest& req, TraversalWorkspace* ws,
                        const DistanceAccelerator* accel,
                        const ClusterOutput* clusters, QueryResponse* out,
                        const IdentityMap* ids) {
  NETCLUS_RETURN_IF_ERROR(ValidateQueryRequest(view, req, clusters, ids));
  out->kind = req.kind;
  out->distance = 0.0;
  out->cluster_id = 0;
  out->health = ServerHealth::kServing;
  out->epoch = 0;
  out->results.clear();
  ws->cancel.triggered = false;

  // Validation proved both ids resolve; from here the traversal runs on
  // this epoch's dense numbering and only the results translate back.
  const PointId pa = ResolveObject(ids, req.a, view.num_points());
  switch (req.kind) {
    case QueryKind::kPointDistance: {
      const PointId pb = ResolveObject(ids, req.b, view.num_points());
      // The accelerated overloads fall back to the exact path on a null
      // accel; with the default threshold (kInfDist) they always return
      // the exact distance, so accel on/off cannot change the payload.
      out->distance = frozen ? PointNetworkDistance(view, *frozen, pa, pb, ws,
                                                    accel)
                             : PointNetworkDistance(view, pa, pb, ws, accel);
      break;
    }
    case QueryKind::kRange: {
      std::vector<RangeResult>* raw = RawResultScratch();
      raw->clear();
      if (frozen) {
        RangeQuery(view, *frozen, pa, req.eps, ws, accel, raw);
      } else {
        RangeQuery(view, pa, req.eps, ws, accel, raw);
      }
      out->results.reserve(raw->size());
      for (const RangeResult& r : *raw) {
        out->results.push_back(QueryResult{ObjectOfPoint(ids, r.id), r.dist});
      }
      // The graph overloads emit in settle or dense-id order, neither of
      // which survives renumbering; canonicalize on the durable ids so
      // every execution style — and every epoch — agrees.
      std::sort(out->results.begin(), out->results.end(),
                [](const QueryResult& a, const QueryResult& b) {
                  return a.id < b.id;
                });
      break;
    }
    case QueryKind::kNearestObject: {
      std::vector<RangeResult>* raw = RawResultScratch();
      raw->clear();
      // Already ordered by (distance, settle order) — that order is the
      // answer; translation preserves it.
      if (frozen) {
        KNearestNeighbors(view, *frozen, pa, req.k, ws, raw);
      } else {
        KNearestNeighbors(view, pa, req.k, ws, raw);
      }
      out->results.reserve(raw->size());
      for (const RangeResult& r : *raw) {
        out->results.push_back(QueryResult{ObjectOfPoint(ids, r.id), r.dist});
      }
      break;
    }
    case QueryKind::kClusterMembership:
      out->cluster_id = clusters->clustering.assignment[pa];
      break;
    case QueryKind::kHealthz:
      break;  // unreachable — rejected by validation
  }
  if (ws->cancel.triggered) {
    // The traversal abandoned work mid-expansion; whatever landed in
    // `out` is a partial non-answer. Scrub it so no caller can serve it.
    out->distance = 0.0;
    out->results.clear();
    return Status::DeadlineExceeded("query cancelled mid-traversal: " +
                                    std::string(QueryKindName(req.kind)) +
                                    " query on object " +
                                    std::to_string(req.a));
  }
  return Status::OK();
}

Result<QueryResponse> ExecuteQuery(const NetworkView& view,
                                   const FrozenGraph* frozen,
                                   const QueryRequest& req,
                                   const DistanceAccelerator* accel,
                                   const ClusterOutput* clusters,
                                   const IdentityMap* ids) {
  TraversalWorkspace ws(view.num_nodes());
  QueryResponse out;
  NETCLUS_RETURN_IF_ERROR(
      ExecuteQueryInto(view, frozen, req, &ws, accel, clusters, &out, ids));
  return out;
}

Status ValidateServedBatch(const NetworkView& view, const FrozenGraph* frozen,
                           const std::vector<QueryRequest>& requests,
                           const std::vector<QueryResponse>& responses,
                           const ClusterOutput* clusters,
                           const IdentityMap* ids) {
  if (requests.size() != responses.size()) {
    return Status::Internal("served batch size mismatch: " +
                            std::to_string(requests.size()) + " requests vs " +
                            std::to_string(responses.size()) + " responses");
  }
  TraversalWorkspace ws(view.num_nodes());
  QueryResponse replay;
  for (size_t i = 0; i < requests.size(); ++i) {
    NETCLUS_RETURN_IF_ERROR(ExecuteQueryInto(view, frozen, requests[i], &ws,
                                             /*accel=*/nullptr, clusters,
                                             &replay, ids));
    if (!ResponsePayloadsEqual(replay, responses[i])) {
      return Status::Internal(
          "served response diverges from the direct path: batch index " +
          std::to_string(i) + ", kind " +
          QueryKindName(requests[i].kind) + ", object " +
          std::to_string(requests[i].a));
    }
  }
  return Status::OK();
}

}  // namespace netclus
