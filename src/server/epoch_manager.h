// EpochManager: RCU-style publication of EpochSnapshots.
//
// The lifecycle of an epoch:
//
//   Publish(world)        — the updater wraps the new world in an
//        |                  EpochSnapshot (monotone id), swaps it in as
//        v                  current, and retires the previous one
//   current ──Acquire──>   readers pin the current snapshot (per-slot
//        |                  refcount + shared_ptr) and run queries
//        v                  against it; new readers always see the
//   retired                 newest epoch
//        |
//        v                 the sweep (run on every publish/release and
//   freed                   on demand) frees a retired snapshot once its
//                           pins read zero — never sooner, so readers
//                           mid-batch keep a stable world
//
// Synchronization contract: Acquire and Publish serialize on one brief
// mutex (a pointer read + refcount bump; no traversal work happens under
// it). Pin release is lock-free. A retired snapshot can never gain new
// pins — Acquire only pins the current snapshot — so "pins == 0 under
// the mutex" is a stable condition and the sweep is race-free; tsan
// agrees (tests/server_test.cc hammers exactly this).
#ifndef NETCLUS_SERVER_EPOCH_MANAGER_H_
#define NETCLUS_SERVER_EPOCH_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "server/snapshot.h"

namespace netclus {

/// \brief Publishes immutable epochs to concurrent readers and frees
/// retired epochs once drained. All methods are thread-safe.
class EpochManager {
 public:
  /// `num_pin_slots` is the number of independent reader slots every
  /// published snapshot carries (one per worker thread; padded to a
  /// cache line each). Acquire reduces slot ids modulo this count, so
  /// any caller-supplied id is safe.
  explicit EpochManager(uint32_t num_pin_slots);
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// \brief RAII epoch pin: holds one reference in the worker's slot
  /// (plus shared ownership of the snapshot) for the scope of a batch.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept
        : snap_(std::move(other.snap_)), slot_(other.slot_) {}
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        snap_ = std::move(other.snap_);
        slot_ = other.slot_;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    /// Null when acquired before the first Publish.
    const EpochSnapshot* snapshot() const { return snap_.get(); }
    explicit operator bool() const { return snap_ != nullptr; }

    void Release() {
      if (snap_ != nullptr) {
        snap_->ReleasePin(slot_);
        snap_.reset();
      }
    }

   private:
    friend class EpochManager;
    Pin(std::shared_ptr<const EpochSnapshot> snap, uint32_t slot)
        : snap_(std::move(snap)), slot_(slot) {}

    std::shared_ptr<const EpochSnapshot> snap_;
    uint32_t slot_ = 0;
  };

  /// Pins the current epoch into reader slot `slot % num_pin_slots()`
  /// (reduced so an arbitrary rotation counter is a valid argument).
  /// Returns an empty pin when nothing has been published yet.
  Pin Acquire(uint32_t slot) NETCLUS_EXCLUDES(mu_);

  /// Wraps the next world in a snapshot with the next monotone epoch id,
  /// makes it current, retires the predecessor, and sweeps. Returns the
  /// new epoch id (first publish returns 1). `cache` becomes the
  /// snapshot's distance cache (null = no memoization); since cache keys
  /// are ObjectId pairs the publisher may pass the previous epoch's
  /// cache when the metric is unchanged, and must pass a fresh one
  /// otherwise. `ids` is the epoch's ObjectId <-> dense-PointId map
  /// (null = identity).
  uint64_t Publish(std::shared_ptr<const FrozenGraph> graph,
                   std::shared_ptr<const PointSet> points,
                   std::shared_ptr<const ClusterOutput> clusters,
                   std::shared_ptr<const DistanceCache> cache = nullptr,
                   std::shared_ptr<const IdentityMap> ids = nullptr)
      NETCLUS_EXCLUDES(mu_);

  /// Frees every retired snapshot whose pins read zero. Runs implicitly
  /// on each Publish; exposed so callers can reclaim promptly after the
  /// last reader of an old epoch finishes.
  void SweepRetired() NETCLUS_EXCLUDES(mu_);

  /// Shared handle to the current snapshot (null before first Publish).
  /// Unlike Acquire, holds no pin slot: suitable for inspection, not for
  /// gating the sweep.
  std::shared_ptr<const EpochSnapshot> CurrentShared() const
      NETCLUS_EXCLUDES(mu_);

  /// Current epoch id; 0 before the first Publish.
  uint64_t current_epoch() const NETCLUS_EXCLUDES(mu_);
  uint64_t epochs_published() const {
    return published_.load(std::memory_order_acquire);
  }
  /// Retired snapshots actually destroyed (the test-visible free signal).
  uint64_t epochs_drained() const {
    return freed_->load(std::memory_order_acquire);
  }
  /// Retired snapshots still awaiting their last reader.
  size_t retired_count() const NETCLUS_EXCLUDES(mu_);

  uint32_t num_pin_slots() const { return num_pin_slots_; }

 private:
  void SweepRetiredLocked() NETCLUS_REQUIRES(mu_);

  const uint32_t num_pin_slots_;
  // Rank kEpochManager: above the serving queues (the dispatcher has
  // released queue_mu_ before it pins an epoch) and below the worker
  // resource locks; the sweep destroys snapshots under this mutex, so
  // snapshot teardown must stay lock-free. Rationale: DESIGN.md §14.
  mutable Mutex mu_{lock_rank::kEpochManager, "EpochManager::mu_"};
  std::shared_ptr<const EpochSnapshot> current_ NETCLUS_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<const EpochSnapshot>> retired_
      NETCLUS_GUARDED_BY(mu_);
  std::atomic<uint64_t> published_{0};
  /// Shared with every snapshot so destruction after the manager dies
  /// still has somewhere to record itself.
  std::shared_ptr<std::atomic<uint64_t>> freed_;
};

}  // namespace netclus

#endif  // NETCLUS_SERVER_EPOCH_MANAGER_H_
