// NetworkUpdate: one mutation of a served world. Lives in its own
// header (below both the WAL and the query server) so the durability
// layer can frame mutation records without depending on the serving
// loop.
#ifndef NETCLUS_SERVER_UPDATE_H_
#define NETCLUS_SERVER_UPDATE_H_

#include "graph/types.h"

namespace netclus {

/// \brief One mutation of the served world, applied by the updater
/// thread and visible to queries from the next published epoch on.
struct NetworkUpdate {
  enum class Kind {
    kAddEdge,   ///< undirected edge {u, v} with weight `value`
    kAddPoint,  ///< point on edge {u, v} at offset `value` from min(u,v)
  };
  Kind kind = Kind::kAddEdge;
  NodeId u = kInvalidNodeId;
  NodeId v = kInvalidNodeId;
  /// Edge weight (kAddEdge) or offset from the smaller endpoint
  /// (kAddPoint).
  double value = 0.0;
  /// kAddPoint: ground-truth label riding along (-1 = none).
  int label = -1;

  static NetworkUpdate AddEdge(NodeId u, NodeId v, double weight) {
    return NetworkUpdate{Kind::kAddEdge, u, v, weight, -1};
  }
  static NetworkUpdate AddPoint(NodeId u, NodeId v, double offset,
                                int label = -1) {
    return NetworkUpdate{Kind::kAddPoint, u, v, offset, label};
  }
};

/// Field-wise equality (value/label compared bitwise-exactly via ==) —
/// what the WAL recovery tests use to check replayed records.
inline bool operator==(const NetworkUpdate& a, const NetworkUpdate& b) {
  return a.kind == b.kind && a.u == b.u && a.v == b.v && a.value == b.value &&
         a.label == b.label;
}
inline bool operator!=(const NetworkUpdate& a, const NetworkUpdate& b) {
  return !(a == b);
}

}  // namespace netclus

#endif  // NETCLUS_SERVER_UPDATE_H_
