#include "server/query_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "graph/accelerator.h"
#include "index/distance_cache.h"
#include "server/identity_map.h"

namespace netclus {
namespace {

constexpr size_t kWaitRingCapacity = 1 << 16;

// WAL page size: the storage stack's standard 4 KiB frame (128 records).
constexpr uint32_t kWalPageSize = 4096;

// Deadline-miss-rate degradation needs at least this many samples in
// the window before it can flip health — a couple of early misses on a
// cold server must not read as degradation.
constexpr size_t kMinHealthSamples = 16;

// Cold-start backpressure model: with no measured batch rate yet,
// assume roughly this much work per queued request, spread across the
// workers. Deliberately rough; replaced by the measured mean after the
// first batch drains.
constexpr double kColdStartPerRequestMs = 0.05;

// The server-side accelerator: vacuous bounds plus the pinned epoch's
// exact point-pair cache, keyed on durable ObjectIds. The traversal
// hands over the epoch's dense point ids, so the accelerator translates
// through the epoch's IdentityMap before touching the cache — which is
// exactly what lets warm entries survive republication: the keys name
// physical objects, not epoch-relative slots. An entry is only reused
// across epochs when the publisher shared the cache (metric-preserving,
// point-only batches); any edge mutation publishes a fresh cache, so a
// hit can never return a distance the serving adjacency does not
// produce. Accelerated serving stays bit-identical to the pure
// unaccelerated replay — the cache only skips repeated work. `cache`
// may be null (caching disabled); `ids` null means identity.
class CacheOnlyAccelerator final : public DistanceAccelerator {
 public:
  CacheOnlyAccelerator(const DistanceCache* cache, const IdentityMap* ids)
      : cache_(cache), ids_(ids) {}

  bool LookupDistance(PointId a, PointId b, double* out) const override {
    if (cache_ == nullptr) return false;
    const ObjectId oa = ObjectOfPoint(ids_, a);
    const ObjectId ob = ObjectOfPoint(ids_, b);
    if (oa == kInvalidObjectId || ob == kInvalidObjectId) return false;
    return cache_->Lookup(oa, ob, out);
  }
  void StoreDistance(PointId a, PointId b, double dist) const override {
    if (cache_ == nullptr) return;
    const ObjectId oa = ObjectOfPoint(ids_, a);
    const ObjectId ob = ObjectOfPoint(ids_, b);
    if (oa == kInvalidObjectId || ob == kInvalidObjectId) return;
    cache_->Store(oa, ob, dist);
  }

 private:
  const DistanceCache* cache_;
  const IdentityMap* ids_;
};

}  // namespace

Result<std::unique_ptr<QueryServer>> QueryServer::Start(
    Network net, PointSet points, const QueryServerOptions& options) {
  if (options.max_queue_depth == 0) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (options.max_batch_size == 0) {
    return Status::InvalidArgument("max_batch_size must be >= 1");
  }
  // The live world keeps point placements in raw (re-buildable) form so
  // kAddPoint mutations compose with the initial population.
  std::vector<NetworkUpdate> raws;
  raws.reserve(points.size());
  for (size_t g = 0; g < points.num_groups(); ++g) {
    const PointSet::Group& grp = points.group(g);
    for (uint32_t i = 0; i < grp.count; ++i) {
      PointId p = grp.first + i;
      raws.push_back(
          NetworkUpdate::AddPoint(grp.u, grp.v, points.offset(p),
                                  points.label(p)));
    }
  }
  auto server = std::unique_ptr<QueryServer>(new QueryServer(
      std::move(net), std::move(raws), options));
  // Crash recovery happens before the first publish: the recovered
  // mutations are part of the boot world, so epoch 1 already serves
  // them. A corrupt log fails Start — no epoch is ever built from a
  // partially trusted record sequence.
  if (options.wal_file != nullptr || !options.wal_path.empty()) {
    NETCLUS_RETURN_IF_ERROR(server->RecoverFromWal());
  }
  // Epoch 1 publishes before any thread starts; a failing initial
  // clustering (or freeze) fails Start instead of leaving a server with
  // nothing to serve.
  NETCLUS_RETURN_IF_ERROR(server->PublishWorld());
  server->dispatcher_ = std::thread([s = server.get()] { s->DispatcherLoop(); });
  server->updater_ = std::thread([s = server.get()] { s->UpdaterLoop(); });
  server->watchdog_ = std::thread([s = server.get()] { s->WatchdogLoop(); });
  return server;
}

QueryServer::QueryServer(Network net, std::vector<NetworkUpdate> raw_points,
                         const QueryServerOptions& options)
    : options_(options),
      net_(std::move(net)),
      raw_points_(std::move(raw_points)),
      epochs_(ResolveNumThreads(options.num_workers)),
      pool_(std::make_unique<ThreadPool>(
          ResolveNumThreads(options.num_workers))),
      workspaces_(net_.num_nodes()),
      chaos_publish_rng_(Rng::DeriveSeed(options.chaos.seed, 1)),
      chaos_stall_rng_(Rng::DeriveSeed(options.chaos.seed, 2)) {
  // Boot identity: points take ObjectIds 0..n-1 in their dense boot
  // order (the raws were extracted from the PointSet in group order, so
  // the boot epoch's identity map is exactly the identity permutation),
  // then edges take the next ids in canonical Edges() order. WAL replay
  // re-allocates from here deterministically, so an ObjectId survives a
  // crash even without a checkpoint.
  point_object_ids_.reserve(raw_points_.size());
  for (size_t i = 0; i < raw_points_.size(); ++i) {
    point_object_ids_.push_back(next_object_id_++);
  }
  for (const Edge& e : net_.Edges()) {
    edge_object_ids_[EdgeKeyOf(e.u, e.v)] = next_object_id_++;
  }
  wait_ring_.reserve(kWaitRingCapacity);
  outcome_ring_.assign(options_.health_window, 0);
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::RecoverFromWal() {
  PagedFile* file = options_.wal_file;
  if (file == nullptr) {
    NETCLUS_ASSIGN_OR_RETURN(
        owned_wal_file_,
        PagedFile::Open(options_.wal_path, kWalPageSize, /*truncate=*/false));
    file = owned_wal_file_.get();
  }
  NETCLUS_ASSIGN_OR_RETURN(wal_, MutationWal::Open(file));

  // The checkpoint store opens whenever one can exist: injected slot
  // files, or a path-backed WAL (a previous run may have checkpointed
  // even if this run's wal_checkpoint_every is 0 — a compacted log is
  // unusable without its checkpoint).
  if (options_.checkpoint_file_a != nullptr ||
      options_.checkpoint_file_b != nullptr) {
    if (options_.checkpoint_file_a == nullptr ||
        options_.checkpoint_file_b == nullptr) {
      return Status::InvalidArgument(
          "checkpoint_file_a/b must be set together");
    }
    checkpoints_ = std::make_unique<CheckpointStore>(
        options_.checkpoint_file_a, options_.checkpoint_file_b);
  } else if (!options_.wal_path.empty()) {
    NETCLUS_ASSIGN_OR_RETURN(
        checkpoints_, CheckpointStore::Open(options_.wal_path, kWalPageSize));
  }

  // Recovery order: newest durable checkpoint first (it replaces the
  // caller-provided base world), then the uncovered log suffix on top.
  uint64_t skip = 0;
  bool from_checkpoint = false;
  if (checkpoints_ != nullptr) {
    CheckpointState state;
    bool found = false;
    NETCLUS_RETURN_IF_ERROR(checkpoints_->ReadLatest(&state, &found));
    if (found) {
      if (state.covers_seq < wal_->start_seq()) {
        // The log was compacted past what this checkpoint covers — a
        // newer checkpoint must have existed and is gone. Refuse to
        // guess the gap.
        return Status::Corruption(
            "wal: log starts at seq " + std::to_string(wal_->start_seq()) +
            " but the newest checkpoint only covers seq " +
            std::to_string(state.covers_seq));
      }
      NETCLUS_RETURN_IF_ERROR(RestoreFromCheckpoint(state));
      ckpt_generation_ = state.generation;
      skip = state.covers_seq - wal_->start_seq();
      if (skip > wal_->recovery().records.size()) {
        skip = wal_->recovery().records.size();
      }
      from_checkpoint = true;
      MutexLock lock(&stats_mu_);
      wal_checkpoint_covers_ = state.covers_seq;
    }
  }
  if (!from_checkpoint && wal_->start_seq() > 0) {
    return Status::Corruption(
        "wal: log was compacted (starts at seq " +
        std::to_string(wal_->start_seq()) +
        ") but no valid covering checkpoint exists");
  }

  const std::vector<NetworkUpdate>& records = wal_->recovery().records;
  for (size_t i = static_cast<size_t>(skip); i < records.size(); ++i) {
    Status applied = ApplyToWorld(records[i]);
    // Records are logged before they are applied, so a mutation the
    // live server rejected (kInvalidArgument) is in the log too — and
    // replaying it fails identically, reproducing the same world. Any
    // other failure is a real recovery error.
    if (!applied.ok() && !applied.IsInvalidArgument()) return applied;
  }
  {
    // Start is single-threaded here, but wal_recovered_ lives with the
    // serving statistics, so it is written under their lock like
    // everything else the analysis guards.
    MutexLock lock(&stats_mu_);
    wal_recovered_ = records.size() - static_cast<size_t>(skip);
    wal_recovered_from_checkpoint_ = from_checkpoint;
  }
  return Status::OK();
}

Status QueryServer::RestoreFromCheckpoint(const CheckpointState& state) {
  if (state.num_nodes != net_.num_nodes()) {
    return Status::Corruption(
        "checkpoint names " + std::to_string(state.num_nodes) +
        " nodes but the boot network has " +
        std::to_string(net_.num_nodes()) +
        " (node count is fixed at Start)");
  }
  Network restored(state.num_nodes);
  edge_object_ids_.clear();
  edge_object_ids_.reserve(state.edges.size());
  for (const CheckpointEdge& e : state.edges) {
    NETCLUS_RETURN_IF_ERROR(restored.AddEdge(e.u, e.v, e.weight));
    edge_object_ids_[EdgeKeyOf(e.u, e.v)] = e.oid;
  }
  net_ = std::move(restored);
  raw_points_.clear();
  raw_points_.reserve(state.points.size());
  point_object_ids_.clear();
  point_object_ids_.reserve(state.points.size());
  for (const CheckpointPoint& p : state.points) {
    raw_points_.push_back(NetworkUpdate::AddPoint(p.u, p.v, p.offset,
                                                  p.label));
    point_object_ids_.push_back(p.oid);
  }
  next_object_id_ = state.next_object_id;
  return Status::OK();
}

CheckpointState QueryServer::BuildCheckpointState() const {
  CheckpointState state;
  state.covers_seq = wal_->next_seq();
  state.next_object_id = next_object_id_;
  state.num_nodes = net_.num_nodes();
  std::vector<Edge> edges = net_.Edges();
  state.edges.reserve(edges.size());
  for (const Edge& e : edges) {
    auto it = edge_object_ids_.find(EdgeKeyOf(e.u, e.v));
    const ObjectId oid =
        it != edge_object_ids_.end() ? it->second : kInvalidObjectId;
    state.edges.push_back(CheckpointEdge{e.u, e.v, e.weight, oid});
  }
  state.points.reserve(raw_points_.size());
  for (size_t i = 0; i < raw_points_.size(); ++i) {
    const NetworkUpdate& p = raw_points_[i];
    state.points.push_back(CheckpointPoint{p.u, p.v, p.value, p.label,
                                           point_object_ids_[i]});
  }
  return state;
}

void QueryServer::MaybeCheckpoint() {
  if (wal_ == nullptr || checkpoints_ == nullptr ||
      options_.wal_checkpoint_every == 0 || wal_->broken()) {
    return;
  }
  if (wal_->num_records() < options_.wal_checkpoint_every) return;
  // Order is the crash-safety argument: the checkpoint is durable
  // BEFORE the log shrinks. A crash after Write but before TruncateTo
  // just replays records the checkpoint already covers (replay is
  // idempotent: it skips the covered prefix).
  CheckpointState state = BuildCheckpointState();
  state.generation = ckpt_generation_ + 1;
  Status written = checkpoints_->Write(state);
  if (!written.ok()) {
    MutexLock lock(&stats_mu_);
    ++checkpoint_failures_;
    return;
  }
  ckpt_generation_ = state.generation;
  Status truncated = wal_->TruncateTo(state.covers_seq);
  if (wal_->broken()) wal_broken_.store(true, std::memory_order_relaxed);
  if (!truncated.ok()) {
    // The checkpoint is durable; only the log is still long. The next
    // cycle retries the truncate (via a fresh checkpoint generation).
    MutexLock lock(&stats_mu_);
    ++checkpoint_failures_;
    return;
  }
  MutexLock lock(&stats_mu_);
  ++checkpoints_written_;
  wal_checkpoint_covers_ = state.covers_seq;
}

Status QueryServer::PublishWorld(const std::vector<NetworkUpdate>* batch) {
  const double start_seconds = clock_.ElapsedSeconds();
  PointSetBuilder builder;
  for (const NetworkUpdate& p : raw_points_) {
    builder.Add(p.u, p.v, p.value, p.label);
  }
  std::vector<PointId> raw_to_final;
  NETCLUS_ASSIGN_OR_RETURN(PointSet ps,
                           std::move(builder).Build(net_, &raw_to_final));
  auto points = std::make_shared<const PointSet>(std::move(ps));

  // The epoch's identity map: dense point p was raw point i, so it
  // carries raw point i's stable ObjectId.
  std::vector<ObjectId> object_of_point(point_object_ids_.size(),
                                        kInvalidObjectId);
  for (size_t i = 0; i < raw_to_final.size(); ++i) {
    object_of_point[raw_to_final[i]] = point_object_ids_[i];
  }
  auto ids = std::make_shared<const IdentityMap>(std::move(object_of_point));

  InMemoryNetworkView live_view(net_, *points);

  // Incremental splice: when this publish came from a known mutation
  // batch and a predecessor snapshot exists, only the rows of nodes an
  // AddEdge touched are re-materialized — every other CSR row is copied
  // verbatim from the retiring snapshot.
  std::shared_ptr<const EpochSnapshot> prev = epochs_.CurrentShared();
  bool incremental = false;
  bool metric_changed = batch == nullptr;
  std::vector<char> dirty;
  if (batch != nullptr) {
    for (const NetworkUpdate& upd : *batch) {
      if (upd.kind != NetworkUpdate::Kind::kAddEdge) continue;
      metric_changed = true;
      if (options_.incremental_publish && prev != nullptr) {
        if (dirty.empty()) dirty.assign(net_.num_nodes(), 0);
        if (upd.u < net_.num_nodes()) dirty[upd.u] = 1;
        if (upd.v < net_.num_nodes()) dirty[upd.v] = 1;
      }
    }
    incremental = options_.incremental_publish && prev != nullptr;
  }
  FrozenGraph fg;
  if (incremental) {
    if (dirty.empty()) dirty.assign(net_.num_nodes(), 0);
    fg = FrozenGraph::MaterializeIncremental(live_view, prev->frozen(), dirty);
    NETCLUS_RETURN_IF_ERROR(live_view.status());
    bool validate = options_.validate_replay;
#if defined(NETCLUS_VALIDATE)
    validate = true;
#endif
    if (validate) {
      // The oracle: a from-scratch rebuild must be byte-for-byte the
      // spliced one. A divergence fails the publish — queries keep
      // serving the last good epoch, never a mis-spliced one.
      FrozenGraph full = FrozenGraph::Materialize(live_view);
      NETCLUS_RETURN_IF_ERROR(live_view.status());
      if (!fg.BitIdenticalTo(full)) {
        return Status::Internal(
            "incremental publish diverged from full rebuild");
      }
    }
  } else {
    NETCLUS_ASSIGN_OR_RETURN(fg, live_view.Freeze());
  }
  auto graph = std::make_shared<const FrozenGraph>(std::move(fg));

  std::shared_ptr<const ClusterOutput> clusters;
  if (options_.cluster_spec.has_value()) {
    NETCLUS_ASSIGN_OR_RETURN(ClusterOutput out,
                             RunClustering(live_view, *options_.cluster_spec));
    clusters = std::make_shared<const ClusterOutput>(std::move(out));
  }

  // Distance cache carry-over: the cache keys on ObjectId pairs, so its
  // entries stay correct for as long as the metric (edge set + weights)
  // is unchanged. A point-only batch therefore hands the SAME cache to
  // the new epoch — warm entries survive republication of untouched
  // regions — while any edge mutation (or a publish with no batch
  // provenance) replaces it fresh, so no batch can ever read a distance
  // the serving adjacency does not produce.
  if (options_.cache_capacity > 0 &&
      (metric_changed || live_cache_ == nullptr)) {
    live_cache_ = std::make_shared<const DistanceCache>(
        options_.cache_capacity, options_.cache_shards);
  }
  prev.reset();
  epochs_.Publish(std::move(graph), std::move(points), std::move(clusters),
                  live_cache_, std::move(ids));

  const double publish_ms =
      (clock_.ElapsedSeconds() - start_seconds) * 1e3;
  {
    MutexLock lock(&stats_mu_);
    if (incremental) {
      ++publishes_incremental_;
      publish_incremental_ms_.Add(publish_ms);
    } else {
      ++publishes_full_;
      publish_full_ms_.Add(publish_ms);
    }
  }
  return Status::OK();
}

Status QueryServer::ApplyToWorld(const NetworkUpdate& update) {
  // Every successful apply allocates the object's stable ObjectId from
  // the monotone watermark. WAL replay runs the same single-threaded
  // sequence, so a crash/recover re-derives identical ids.
  switch (update.kind) {
    case NetworkUpdate::Kind::kAddEdge: {
      NETCLUS_RETURN_IF_ERROR(net_.AddEdge(update.u, update.v, update.value));
      edge_object_ids_[EdgeKeyOf(update.u, update.v)] = next_object_id_++;
      return Status::OK();
    }
    case NetworkUpdate::Kind::kAddPoint: {
      double w = net_.EdgeWeight(update.u, update.v);
      if (w < 0.0) {
        return Status::InvalidArgument("AddPoint: edge does not exist");
      }
      if (update.value < 0.0 || update.value > w) {
        return Status::InvalidArgument("AddPoint: offset outside edge");
      }
      raw_points_.push_back(update);
      point_object_ids_.push_back(next_object_id_++);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown update kind");
}

std::future<Result<QueryResponse>> QueryServer::Submit(
    const QueryRequest& req) {
  PendingQuery pq;
  pq.req = req;
  pq.enqueue_seconds = clock_.ElapsedSeconds();
  std::future<Result<QueryResponse>> fut = pq.promise.get_future();

  // Health probes bypass admission control entirely: they must stay
  // answerable exactly when the queue is full or the server is
  // degraded, and they never cost a worker.
  if (req.kind == QueryKind::kHealthz) {
    QueryResponse resp;
    resp.kind = QueryKind::kHealthz;
    resp.health = CurrentHealth();
    resp.epoch = epochs_.current_epoch();
    pq.promise.set_value(std::move(resp));
    return fut;
  }

  std::shared_ptr<std::atomic<bool>> arm_flag;
  double arm_expiry = 0.0;
  if (req.deadline_ms > 0.0 && std::isfinite(req.deadline_ms)) {
    pq.deadline_seconds = pq.enqueue_seconds + req.deadline_ms * 1e-3;
    pq.cancel_flag = std::make_shared<std::atomic<bool>>(false);
    arm_flag = pq.cancel_flag;
    arm_expiry = pq.deadline_seconds;
  }

  MutexLock lock(&queue_mu_);
  if (stopping_) {
    lock.Unlock();
    pq.promise.set_value(Status::Unavailable("query server is stopping"));
    MutexLock slock(&stats_mu_);
    ++rejected_;
    return fut;
  }
  if (queue_.size() >= options_.max_queue_depth) {
    // Backpressure: reject now with a retry-after hint. Warm, the hint
    // is the measured mean batch duration scaled by how many batches
    // the current backlog represents; cold (nothing drained yet, so no
    // measured rate) it is a depth- and worker-aware model instead of a
    // blind constant. Clients read the structured field; the text echo
    // is for humans and logs.
    const double depth = static_cast<double>(queue_.size());
    double retry_ms;
    {
      // queue_mu_ (rank 30) -> stats_mu_ (rank 90): the one sanctioned
      // nesting between the serving locks.
      MutexLock slock(&stats_mu_);
      ++rejected_;
      if (batch_ms_.count() > 0) {
        const double batches_queued = std::max(
            1.0, std::ceil(depth /
                           static_cast<double>(options_.max_batch_size)));
        retry_ms = batch_ms_.mean() * batches_queued;
      } else {
        retry_ms = std::max(
            0.1, kColdStartPerRequestMs * depth /
                     static_cast<double>(pool_->size()));
      }
    }
    lock.Unlock();
    pq.promise.set_value(Status::UnavailableWithRetry(
        "query queue full (" + std::to_string(options_.max_queue_depth) +
            " deep); retry after ~" + std::to_string(retry_ms) + " ms",
        retry_ms));
    return fut;
  }
  queue_.push_back(std::move(pq));
  lock.Unlock();
  {
    MutexLock slock(&stats_mu_);
    ++accepted_;
  }
  if (arm_flag != nullptr) ArmDeadline(arm_expiry, std::move(arm_flag));
  queue_cv_.NotifyOne();
  return fut;
}

Result<QueryResponse> QueryServer::Execute(const QueryRequest& req) {
  return Submit(req).get();
}

std::future<Status> QueryServer::SubmitUpdate(const NetworkUpdate& update) {
  PendingUpdate pu;
  pu.update = update;
  std::future<Status> fut = pu.promise.get_future();
  {
    MutexLock lock(&update_mu_);
    if (update_stopping_) {
      pu.promise.set_value(Status::Unavailable("query server is stopping"));
      return fut;
    }
    pu.seq = ++update_seq_;
    update_queue_.push_back(std::move(pu));
  }
  update_cv_.NotifyOne();
  return fut;
}

Status QueryServer::ApplyUpdate(const NetworkUpdate& update) {
  return SubmitUpdate(update).get();
}

Status QueryServer::Flush() {
  MutexLock lock(&update_mu_);
  const uint64_t target = update_seq_;
  while (published_seq_ < target) flush_cv_.Wait(&update_mu_);
  return last_publish_error_;
}

void QueryServer::Stop() {
  stopping_flag_.store(true, std::memory_order_relaxed);
  {
    MutexLock lock(&queue_mu_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  {
    MutexLock lock(&update_mu_);
    update_stopping_ = true;
  }
  update_cv_.NotifyAll();
  {
    MutexLock lock(&deadline_mu_);
    deadline_stopping_ = true;
  }
  deadline_cv_.NotifyAll();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (updater_.joinable()) updater_.join();
  if (watchdog_.joinable()) watchdog_.join();
}

ServerHealth QueryServer::CurrentHealth() const {
  if (stopping_flag_.load(std::memory_order_relaxed)) {
    return ServerHealth::kStopping;
  }
  if (wal_broken_.load(std::memory_order_relaxed)) {
    return ServerHealth::kDegraded;
  }
  if (options_.degraded_publish_failures > 0 &&
      consecutive_publish_failures_.load(std::memory_order_relaxed) >=
          options_.degraded_publish_failures) {
    return ServerHealth::kDegraded;
  }
  if (options_.health_window > 0 && options_.degraded_miss_rate > 0.0) {
    MutexLock lock(&stats_mu_);
    const size_t samples =
        outcome_full_ ? outcome_ring_.size() : outcome_next_;
    if (samples >= kMinHealthSamples &&
        DeadlineMissRateLocked() >= options_.degraded_miss_rate) {
      return ServerHealth::kDegraded;
    }
  }
  return ServerHealth::kServing;
}

HealthReport QueryServer::Healthz() const {
  HealthReport report;
  report.health = CurrentHealth();
  report.epoch = epochs_.current_epoch();
  report.consecutive_publish_failures =
      consecutive_publish_failures_.load(std::memory_order_relaxed);
  report.wal_broken = wal_broken_.load(std::memory_order_relaxed);
  {
    MutexLock lock(&stats_mu_);
    report.deadline_miss_rate = DeadlineMissRateLocked();
  }
  {
    MutexLock lock(&queue_mu_);
    report.queue_depth = queue_.size();
  }
  return report;
}

void QueryServer::RecordOutcomeLocked(bool deadline_missed) {
  if (outcome_ring_.empty()) return;
  if (outcome_full_ && outcome_ring_[outcome_next_] != 0) --outcome_misses_;
  outcome_ring_[outcome_next_] = deadline_missed ? 1 : 0;
  if (deadline_missed) ++outcome_misses_;
  if (++outcome_next_ == outcome_ring_.size()) {
    outcome_next_ = 0;
    outcome_full_ = true;
  }
}

double QueryServer::DeadlineMissRateLocked() const {
  const size_t samples = outcome_full_ ? outcome_ring_.size() : outcome_next_;
  if (samples == 0) return 0.0;
  return static_cast<double>(outcome_misses_) / static_cast<double>(samples);
}

void QueryServer::DispatcherLoop() {
  for (;;) {
    std::vector<PendingQuery> batch;
    std::vector<PendingQuery> shed;
    {
      MutexLock lock(&queue_mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(&queue_mu_);
      if (queue_.empty()) {
        if (stopping_) return;  // drained; accepted work always finishes
        continue;
      }
      // Shed requests whose deadline already passed while they waited:
      // they resolve with kDeadlineExceeded right here, costing no
      // worker, and never count against the batch.
      const double now = clock_.ElapsedSeconds();
      while (batch.size() < options_.max_batch_size && !queue_.empty()) {
        PendingQuery pq = std::move(queue_.front());
        queue_.pop_front();
        if (pq.deadline_seconds > 0.0 && now >= pq.deadline_seconds) {
          shed.push_back(std::move(pq));
        } else {
          batch.push_back(std::move(pq));
        }
      }
    }
    if (!shed.empty()) {
      {
        MutexLock slock(&stats_mu_);
        // Shed requests complete (with an error) — every accepted
        // request still resolves exactly once.
        completed_ += shed.size();
        deadline_expired_ += shed.size();
        for (size_t i = 0; i < shed.size(); ++i) RecordOutcomeLocked(true);
      }
      for (PendingQuery& pq : shed) {
        const double late_ms =
            (clock_.ElapsedSeconds() - pq.deadline_seconds) * 1e3;
        pq.promise.set_value(Status::DeadlineExceeded(
            "deadline passed " + std::to_string(late_ms) +
            " ms ago while queued; request shed before execution"));
      }
    }
    if (!batch.empty()) ExecuteBatch(&batch);
  }
}

void QueryServer::ArmDeadline(double expiry_seconds,
                              std::shared_ptr<std::atomic<bool>> flag) {
  auto later = [](const DeadlineEntry& a, const DeadlineEntry& b) {
    return a.expiry_seconds > b.expiry_seconds;
  };
  {
    MutexLock lock(&deadline_mu_);
    deadline_heap_.push_back(DeadlineEntry{expiry_seconds, std::move(flag)});
    std::push_heap(deadline_heap_.begin(), deadline_heap_.end(), later);
  }
  deadline_cv_.NotifyOne();
}

void QueryServer::WatchdogLoop() {
  auto later = [](const DeadlineEntry& a, const DeadlineEntry& b) {
    return a.expiry_seconds > b.expiry_seconds;
  };
  MutexLock lock(&deadline_mu_);
  for (;;) {
    if (deadline_stopping_) return;
    if (deadline_heap_.empty()) {
      deadline_cv_.Wait(&deadline_mu_);
      continue;
    }
    const double now = clock_.ElapsedSeconds();
    if (deadline_heap_.front().expiry_seconds <= now) {
      // Fire and forget: the flag outlives the request via shared
      // ownership, so firing after completion is harmless.
      deadline_heap_.front().flag->store(true, std::memory_order_relaxed);
      std::pop_heap(deadline_heap_.begin(), deadline_heap_.end(), later);
      deadline_heap_.pop_back();
      continue;
    }
    deadline_cv_.WaitFor(&deadline_mu_,
                         deadline_heap_.front().expiry_seconds - now);
  }
}

void QueryServer::ExecuteBatch(std::vector<PendingQuery>* batch) {
  const double start_seconds = clock_.ElapsedSeconds();
  EpochManager::Pin pin =
      epochs_.Acquire(pin_slot_rr_++ % epochs_.num_pin_slots());
  if (!pin) {
    for (PendingQuery& pq : *batch) {
      pq.promise.set_value(Status::Internal("no epoch published"));
    }
    return;
  }
  const EpochSnapshot& snap = *pin.snapshot();
  CacheOnlyAccelerator accel(snap.cache(), snap.ids());

  // Chaos: the dispatcher (the only caller) decides per batch whether
  // one worker stalls, from its own seeded stream — deterministic in
  // the batch sequence.
  double stall_ms = 0.0;
  if (options_.chaos.worker_stall_prob > 0.0 &&
      chaos_stall_rng_.NextBernoulli(options_.chaos.worker_stall_prob)) {
    stall_ms = options_.chaos.worker_stall_ms;
  }
  const ServerHealth health = CurrentHealth();

  const size_t n = batch->size();
  std::vector<QueryResponse> responses(n);
  std::vector<Status> statuses(n, Status::OK());
  ParallelFor(pool_.get(), n, [&](size_t i, uint32_t worker) {
    (void)worker;
    if (i == 0 && stall_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          stall_ms));
    }
    WorkspacePool::Lease lease = workspaces_.Acquire();
    TraversalWorkspace* ws = lease.get();
    PendingQuery& pq = (*batch)[i];
    if (pq.cancel_flag != nullptr) {
      ws->cancel.flag = pq.cancel_flag.get();
      ws->cancel.check_interval = options_.cancel_check_interval;
    }
    statuses[i] = ExecuteQueryInto(snap.view(), &snap.frozen(), pq.req, ws,
                                   &accel, snap.clusters(), &responses[i],
                                   snap.ids());
    // Disarm before the workspace returns to the pool: leases outlive
    // requests, and a stale flag pointer must never cancel a stranger.
    ws->cancel.flag = nullptr;
    ws->cancel.triggered = false;
    responses[i].epoch = snap.epoch();
    responses[i].health = health;
  });

  bool do_replay = options_.validate_replay;
#if defined(NETCLUS_VALIDATE)
  do_replay = true;
#endif
  if (do_replay) {
    std::vector<QueryRequest> ok_requests;
    std::vector<QueryResponse> ok_responses;
    for (size_t i = 0; i < n; ++i) {
      if (statuses[i].ok()) {
        ok_requests.push_back((*batch)[i].req);
        ok_responses.push_back(responses[i]);
      }
    }
    Status verdict = ValidateServedBatch(snap.view(), &snap.frozen(),
                                         ok_requests, ok_responses,
                                         snap.clusters(), snap.ids());
    {
      MutexLock lock(&stats_mu_);
      ++replay_batches_;
      if (!verdict.ok()) ++replay_mismatches_;
    }
    if (!verdict.ok()) {
      // A divergence means the served epoch path computed something the
      // direct path would not — never hand that out as an answer.
      for (size_t i = 0; i < n; ++i) {
        if (statuses[i].ok()) statuses[i] = verdict;
      }
    }
  }

  // Count the batch before fulfilling its promises: a client holding a
  // response must already be visible in stats().completed.
  const double end_seconds = clock_.ElapsedSeconds();
  {
    MutexLock lock(&stats_mu_);
    ++batches_;
    completed_ += n;
    batch_size_.Add(static_cast<double>(n));
    batch_ms_.Add((end_seconds - start_seconds) * 1e3);
    for (size_t i = 0; i < n; ++i) {
      const bool missed = statuses[i].IsDeadlineExceeded();
      if (missed) ++cancelled_traversals_;
      RecordOutcomeLocked(missed);
    }
    for (const PendingQuery& pq : *batch) {
      double wait_ms = (start_seconds - pq.enqueue_seconds) * 1e3;
      queue_wait_ms_.Add(wait_ms);
      if (wait_ring_.size() < kWaitRingCapacity) {
        wait_ring_.push_back(wait_ms);
      } else {
        wait_ring_[wait_ring_next_] = wait_ms;
        wait_ring_next_ = (wait_ring_next_ + 1) % kWaitRingCapacity;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (statuses[i].ok()) {
      (*batch)[i].promise.set_value(std::move(responses[i]));
    } else {
      (*batch)[i].promise.set_value(statuses[i]);
    }
  }

  // Release the pin before sweeping so a batch that outlived its epoch
  // frees that epoch now rather than at the next publish.
  pin.Release();
  epochs_.SweepRetired();
}

void QueryServer::UpdaterLoop() {
  for (;;) {
    std::vector<PendingUpdate> batch;
    {
      MutexLock lock(&update_mu_);
      while (!update_stopping_ && update_queue_.empty()) {
        update_cv_.Wait(&update_mu_);
      }
      if (update_queue_.empty()) {
        if (update_stopping_) return;
        continue;
      }
      batch.reserve(update_queue_.size());
      while (!update_queue_.empty()) {
        batch.push_back(std::move(update_queue_.front()));
        update_queue_.pop_front();
      }
    }
    // Apply every queued mutation, then publish once: bursts of updates
    // coalesce into a single epoch swap. With a WAL configured each
    // mutation is logged durably *before* it touches the live world —
    // the recovery invariant is "everything applied is in the log".
    uint64_t max_seq = 0;
    bool mutated = false;
    uint64_t logged = 0;
    // The mutations that actually landed this round: PublishWorld
    // derives the incremental dirty-node set (and the cache carry-over
    // decision) from exactly these.
    std::vector<NetworkUpdate> applied_batch;
    applied_batch.reserve(batch.size());
    for (PendingUpdate& pu : batch) {
      max_seq = pu.seq;
      if (wal_ != nullptr) {
        Status durable = wal_->Append(pu.update);
        if (wal_->broken()) wal_broken_.store(true, std::memory_order_relaxed);
        if (!durable.ok()) {
          // Not durable → not applied. The caller sees the storage
          // error; the server keeps serving (degraded when the log is
          // broken) but refuses to advance the world past the log.
          pu.promise.set_value(std::move(durable));
          continue;
        }
        ++logged;
      }
      Status applied = ApplyToWorld(pu.update);
      if (applied.ok()) {
        mutated = true;
        applied_batch.push_back(pu.update);
      }
      pu.promise.set_value(std::move(applied));
    }
    if (logged > 0) {
      MutexLock lock(&stats_mu_);
      wal_records_ += logged;
    }
    Status publish = Status::OK();
    if (mutated) {
      if (options_.chaos.publish_failure_prob > 0.0 &&
          chaos_publish_rng_.NextBernoulli(
              options_.chaos.publish_failure_prob)) {
        publish = Status::Internal("chaos: injected publish failure");
      } else {
        publish = PublishWorld(&applied_batch);
      }
      if (publish.ok()) {
        consecutive_publish_failures_.store(0, std::memory_order_relaxed);
        MaybeCheckpoint();
      } else {
        // The epoch manager was not touched: queries keep serving the
        // last good epoch, and the applied mutations ride along with
        // the next successful publish.
        consecutive_publish_failures_.fetch_add(1, std::memory_order_relaxed);
        MutexLock lock(&stats_mu_);
        ++publish_failures_;
      }
    }
    {
      MutexLock lock(&update_mu_);
      published_seq_ = max_seq;
      // Record the outcome of every publish attempt — a success clears a
      // previous failure so Flush() stops reporting it once the world is
      // re-published. Rounds that publish nothing leave it untouched.
      if (mutated) last_publish_error_ = publish;
    }
    flush_cv_.NotifyAll();
  }
}

ServerStats QueryServer::stats() const {
  ServerStats s;
  {
    MutexLock lock(&stats_mu_);
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.batches = batches_;
    s.replay_batches = replay_batches_;
    s.replay_mismatches = replay_mismatches_;
    s.deadline_expired = deadline_expired_;
    s.cancelled_traversals = cancelled_traversals_;
    s.wal_records = wal_records_;
    s.wal_recoveries = wal_recovered_;
    s.publish_failures = publish_failures_;
    s.publishes_full = publishes_full_;
    s.publishes_incremental = publishes_incremental_;
    s.checkpoints_written = checkpoints_written_;
    s.checkpoint_failures = checkpoint_failures_;
    s.wal_recovered_from_checkpoint = wal_recovered_from_checkpoint_ ? 1 : 0;
    s.wal_checkpoint_covers = wal_checkpoint_covers_;
    s.mean_publish_full_ms = publish_full_ms_.mean();
    s.mean_publish_incremental_ms = publish_incremental_ms_.mean();
    s.mean_queue_wait_ms = queue_wait_ms_.mean();
    s.max_queue_wait_ms = queue_wait_ms_.max();
    s.mean_batch_size = batch_size_.mean();
    s.max_batch_size = batch_size_.max();
    s.mean_batch_ms = batch_ms_.mean();
  }
  s.epochs_published = epochs_.epochs_published();
  s.epochs_drained = epochs_.epochs_drained();
  s.retired_epochs = epochs_.retired_count();
  {
    MutexLock lock(&queue_mu_);
    s.queue_depth = queue_.size();
  }
  return s;
}

void QueryServer::PublishStats(StatsCollector* collector) const {
  ServerStats now = stats();
  MutexLock lock(&publish_stats_mu_);
  auto delta = [](uint64_t cur, uint64_t* prev) {
    uint64_t d = cur - *prev;
    *prev = cur;
    return d;
  };
  collector->Add("server.accepted",
                 delta(now.accepted, &published_stats_.accepted));
  collector->Add("server.rejected",
                 delta(now.rejected, &published_stats_.rejected));
  collector->Add("server.completed",
                 delta(now.completed, &published_stats_.completed));
  collector->Add("server.batches", delta(now.batches, &published_stats_.batches));
  collector->Add("server.epochs_published",
                 delta(now.epochs_published, &published_stats_.epochs_published));
  collector->Add("server.epochs_drained",
                 delta(now.epochs_drained, &published_stats_.epochs_drained));
  collector->Add("server.replay_batches",
                 delta(now.replay_batches, &published_stats_.replay_batches));
  collector->Add(
      "server.replay_mismatches",
      delta(now.replay_mismatches, &published_stats_.replay_mismatches));
  collector->Add("server.deadline_expired",
                 delta(now.deadline_expired, &published_stats_.deadline_expired));
  collector->Add(
      "server.cancelled_traversals",
      delta(now.cancelled_traversals, &published_stats_.cancelled_traversals));
  collector->Add("server.wal_records",
                 delta(now.wal_records, &published_stats_.wal_records));
  collector->Add("server.wal_recoveries",
                 delta(now.wal_recoveries, &published_stats_.wal_recoveries));
  collector->Add(
      "server.publish_failures",
      delta(now.publish_failures, &published_stats_.publish_failures));
  collector->Add("server.publishes_full",
                 delta(now.publishes_full, &published_stats_.publishes_full));
  collector->Add("server.publishes_incremental",
                 delta(now.publishes_incremental,
                       &published_stats_.publishes_incremental));
  collector->Add(
      "server.checkpoints_written",
      delta(now.checkpoints_written, &published_stats_.checkpoints_written));
  collector->Add(
      "server.checkpoint_failures",
      delta(now.checkpoint_failures, &published_stats_.checkpoint_failures));
  // Gauges, not counters: overwritten with the point-in-time values.
  collector->Set("server.queue_depth", now.queue_depth);
  collector->Set("server.wal_checkpoint_covers", now.wal_checkpoint_covers);
}

std::vector<double> QueryServer::QueueWaitSamplesMs() const {
  MutexLock lock(&stats_mu_);
  return wait_ring_;
}

}  // namespace netclus
