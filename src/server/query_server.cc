#include "server/query_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "graph/accelerator.h"
#include "index/distance_cache.h"

namespace netclus {
namespace {

constexpr size_t kWaitRingCapacity = 1 << 16;

// The server-side accelerator: vacuous bounds plus the pinned epoch's
// private exact point-pair cache. A hit returns a value some earlier
// exact expansion stored for the *same* snapshot (each publish hands
// its snapshot a fresh cache, so entries can never name another
// epoch's adjacency or renumbered point ids), which keeps serving
// bit-identical to the pure unaccelerated replay — it only skips
// repeated work. `cache` may be null (caching disabled).
class CacheOnlyAccelerator final : public DistanceAccelerator {
 public:
  explicit CacheOnlyAccelerator(const DistanceCache* cache) : cache_(cache) {}

  bool LookupDistance(PointId a, PointId b, double* out) const override {
    return cache_ != nullptr && cache_->Lookup(a, b, out);
  }
  void StoreDistance(PointId a, PointId b, double dist) const override {
    if (cache_ != nullptr) cache_->Store(a, b, dist);
  }

 private:
  const DistanceCache* cache_;
};

}  // namespace

Result<std::unique_ptr<QueryServer>> QueryServer::Start(
    Network net, PointSet points, const QueryServerOptions& options) {
  if (options.max_queue_depth == 0) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (options.max_batch_size == 0) {
    return Status::InvalidArgument("max_batch_size must be >= 1");
  }
  // The live world keeps point placements in raw (re-buildable) form so
  // kAddPoint mutations compose with the initial population.
  std::vector<NetworkUpdate> raws;
  raws.reserve(points.size());
  for (size_t g = 0; g < points.num_groups(); ++g) {
    const PointSet::Group& grp = points.group(g);
    for (uint32_t i = 0; i < grp.count; ++i) {
      PointId p = grp.first + i;
      raws.push_back(
          NetworkUpdate::AddPoint(grp.u, grp.v, points.offset(p),
                                  points.label(p)));
    }
  }
  auto server = std::unique_ptr<QueryServer>(new QueryServer(
      std::move(net), std::move(raws), options));
  // Epoch 1 publishes before any thread starts; a failing initial
  // clustering (or freeze) fails Start instead of leaving a server with
  // nothing to serve.
  NETCLUS_RETURN_IF_ERROR(server->PublishWorld());
  server->dispatcher_ = std::thread([s = server.get()] { s->DispatcherLoop(); });
  server->updater_ = std::thread([s = server.get()] { s->UpdaterLoop(); });
  return server;
}

QueryServer::QueryServer(Network net, std::vector<NetworkUpdate> raw_points,
                         const QueryServerOptions& options)
    : options_(options),
      net_(std::move(net)),
      raw_points_(std::move(raw_points)),
      epochs_(ResolveNumThreads(options.num_workers)),
      pool_(std::make_unique<ThreadPool>(
          ResolveNumThreads(options.num_workers))),
      workspaces_(net_.num_nodes()) {
  wait_ring_.reserve(kWaitRingCapacity);
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::PublishWorld() {
  PointSetBuilder builder;
  for (const NetworkUpdate& p : raw_points_) {
    builder.Add(p.u, p.v, p.value, p.label);
  }
  NETCLUS_ASSIGN_OR_RETURN(PointSet ps, std::move(builder).Build(net_));
  auto points = std::make_shared<const PointSet>(std::move(ps));
  InMemoryNetworkView live_view(net_, *points);
  NETCLUS_ASSIGN_OR_RETURN(FrozenGraph fg, live_view.Freeze());
  auto graph = std::make_shared<const FrozenGraph>(std::move(fg));
  std::shared_ptr<const ClusterOutput> clusters;
  if (options_.cluster_spec.has_value()) {
    NETCLUS_ASSIGN_OR_RETURN(ClusterOutput out,
                             RunClustering(live_view, *options_.cluster_spec));
    clusters = std::make_shared<const ClusterOutput>(std::move(out));
  }
  // Every epoch gets a private, empty distance cache: a batch pinned to
  // an old epoch keeps memoizing into that epoch's cache while new
  // batches start cold on the new one, so no publish ordering can pair
  // an epoch with distances computed under a different adjacency (or
  // under the pre-renumbering point ids).
  std::shared_ptr<const DistanceCache> cache;
  if (options_.cache_capacity > 0) {
    cache = std::make_shared<const DistanceCache>(options_.cache_capacity,
                                                  options_.cache_shards);
  }
  epochs_.Publish(std::move(graph), std::move(points), std::move(clusters),
                  std::move(cache));
  return Status::OK();
}

Status QueryServer::ApplyToWorld(const NetworkUpdate& update) {
  switch (update.kind) {
    case NetworkUpdate::Kind::kAddEdge:
      return net_.AddEdge(update.u, update.v, update.value);
    case NetworkUpdate::Kind::kAddPoint: {
      double w = net_.EdgeWeight(update.u, update.v);
      if (w < 0.0) {
        return Status::InvalidArgument("AddPoint: edge does not exist");
      }
      if (update.value < 0.0 || update.value > w) {
        return Status::InvalidArgument("AddPoint: offset outside edge");
      }
      raw_points_.push_back(update);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown update kind");
}

std::future<Result<QueryResponse>> QueryServer::Submit(
    const QueryRequest& req) {
  PendingQuery pq;
  pq.req = req;
  pq.enqueue_seconds = clock_.ElapsedSeconds();
  std::future<Result<QueryResponse>> fut = pq.promise.get_future();

  std::unique_lock<std::mutex> lock(queue_mu_);
  if (stopping_) {
    lock.unlock();
    pq.promise.set_value(Status::Unavailable("query server is stopping"));
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++rejected_;
    return fut;
  }
  if (queue_.size() >= options_.max_queue_depth) {
    // Backpressure: reject now with a retry-after hint sized to how
    // long one batch has recently taken to drain.
    double retry_ms;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++rejected_;
      retry_ms = batch_ms_.count() > 0 ? batch_ms_.mean() : 1.0;
    }
    lock.unlock();
    pq.promise.set_value(Status::Unavailable(
        "query queue full (" + std::to_string(options_.max_queue_depth) +
        " deep); retry after ~" + std::to_string(retry_ms) + " ms"));
    return fut;
  }
  queue_.push_back(std::move(pq));
  lock.unlock();
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++accepted_;
  }
  queue_cv_.notify_one();
  return fut;
}

Result<QueryResponse> QueryServer::Execute(const QueryRequest& req) {
  return Submit(req).get();
}

std::future<Status> QueryServer::SubmitUpdate(const NetworkUpdate& update) {
  PendingUpdate pu;
  pu.update = update;
  std::future<Status> fut = pu.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    if (update_stopping_) {
      pu.promise.set_value(Status::Unavailable("query server is stopping"));
      return fut;
    }
    pu.seq = ++update_seq_;
    update_queue_.push_back(std::move(pu));
  }
  update_cv_.notify_one();
  return fut;
}

Status QueryServer::ApplyUpdate(const NetworkUpdate& update) {
  return SubmitUpdate(update).get();
}

Status QueryServer::Flush() {
  std::unique_lock<std::mutex> lock(update_mu_);
  const uint64_t target = update_seq_;
  flush_cv_.wait(lock, [&] { return published_seq_ >= target; });
  return last_publish_error_;
}

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    update_stopping_ = true;
  }
  update_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (updater_.joinable()) updater_.join();
}

void QueryServer::DispatcherLoop() {
  for (;;) {
    std::vector<PendingQuery> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;  // drained; accepted work always finishes
        continue;
      }
      size_t take = std::min(queue_.size(), options_.max_batch_size);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ExecuteBatch(&batch);
  }
}

void QueryServer::ExecuteBatch(std::vector<PendingQuery>* batch) {
  const double start_seconds = clock_.ElapsedSeconds();
  EpochManager::Pin pin =
      epochs_.Acquire(pin_slot_rr_++ % epochs_.num_pin_slots());
  if (!pin) {
    for (PendingQuery& pq : *batch) {
      pq.promise.set_value(Status::Internal("no epoch published"));
    }
    return;
  }
  const EpochSnapshot& snap = *pin.snapshot();
  CacheOnlyAccelerator accel(snap.cache());

  const size_t n = batch->size();
  std::vector<QueryResponse> responses(n);
  std::vector<Status> statuses(n, Status::OK());
  ParallelFor(pool_.get(), n, [&](size_t i, uint32_t worker) {
    (void)worker;
    WorkspacePool::Lease lease = workspaces_.Acquire();
    statuses[i] =
        ExecuteQueryInto(snap.view(), &snap.frozen(), (*batch)[i].req,
                         lease.get(), &accel, snap.clusters(), &responses[i]);
    responses[i].epoch = snap.epoch();
  });

  bool do_replay = options_.validate_replay;
#if defined(NETCLUS_VALIDATE)
  do_replay = true;
#endif
  if (do_replay) {
    std::vector<QueryRequest> ok_requests;
    std::vector<QueryResponse> ok_responses;
    for (size_t i = 0; i < n; ++i) {
      if (statuses[i].ok()) {
        ok_requests.push_back((*batch)[i].req);
        ok_responses.push_back(responses[i]);
      }
    }
    Status verdict = ValidateServedBatch(snap.view(), &snap.frozen(),
                                         ok_requests, ok_responses,
                                         snap.clusters());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++replay_batches_;
      if (!verdict.ok()) ++replay_mismatches_;
    }
    if (!verdict.ok()) {
      // A divergence means the served epoch path computed something the
      // direct path would not — never hand that out as an answer.
      for (size_t i = 0; i < n; ++i) {
        if (statuses[i].ok()) statuses[i] = verdict;
      }
    }
  }

  // Count the batch before fulfilling its promises: a client holding a
  // response must already be visible in stats().completed.
  const double end_seconds = clock_.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++batches_;
    completed_ += n;
    batch_size_.Add(static_cast<double>(n));
    batch_ms_.Add((end_seconds - start_seconds) * 1e3);
    for (const PendingQuery& pq : *batch) {
      double wait_ms = (start_seconds - pq.enqueue_seconds) * 1e3;
      queue_wait_ms_.Add(wait_ms);
      if (wait_ring_.size() < kWaitRingCapacity) {
        wait_ring_.push_back(wait_ms);
      } else {
        wait_ring_[wait_ring_next_] = wait_ms;
        wait_ring_next_ = (wait_ring_next_ + 1) % kWaitRingCapacity;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (statuses[i].ok()) {
      (*batch)[i].promise.set_value(std::move(responses[i]));
    } else {
      (*batch)[i].promise.set_value(statuses[i]);
    }
  }

  // Release the pin before sweeping so a batch that outlived its epoch
  // frees that epoch now rather than at the next publish.
  pin.Release();
  epochs_.SweepRetired();
}

void QueryServer::UpdaterLoop() {
  for (;;) {
    std::vector<PendingUpdate> batch;
    {
      std::unique_lock<std::mutex> lock(update_mu_);
      update_cv_.wait(lock,
                      [&] { return update_stopping_ || !update_queue_.empty(); });
      if (update_queue_.empty()) {
        if (update_stopping_) return;
        continue;
      }
      batch.reserve(update_queue_.size());
      while (!update_queue_.empty()) {
        batch.push_back(std::move(update_queue_.front()));
        update_queue_.pop_front();
      }
    }
    // Apply every queued mutation, then publish once: bursts of updates
    // coalesce into a single epoch swap.
    uint64_t max_seq = 0;
    bool mutated = false;
    for (PendingUpdate& pu : batch) {
      Status applied = ApplyToWorld(pu.update);
      max_seq = pu.seq;
      mutated = mutated || applied.ok();
      pu.promise.set_value(std::move(applied));
    }
    Status publish = mutated ? PublishWorld() : Status::OK();
    {
      std::lock_guard<std::mutex> lock(update_mu_);
      published_seq_ = max_seq;
      // Record the outcome of every publish attempt — a success clears a
      // previous failure so Flush() stops reporting it once the world is
      // re-published. Rounds that publish nothing leave it untouched.
      if (mutated) last_publish_error_ = publish;
    }
    flush_cv_.notify_all();
  }
}

ServerStats QueryServer::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.batches = batches_;
    s.replay_batches = replay_batches_;
    s.replay_mismatches = replay_mismatches_;
    s.mean_queue_wait_ms = queue_wait_ms_.mean();
    s.max_queue_wait_ms = queue_wait_ms_.max();
    s.mean_batch_size = batch_size_.mean();
    s.max_batch_size = batch_size_.max();
    s.mean_batch_ms = batch_ms_.mean();
  }
  s.epochs_published = epochs_.epochs_published();
  s.epochs_drained = epochs_.epochs_drained();
  s.retired_epochs = epochs_.retired_count();
  return s;
}

void QueryServer::PublishStats(StatsCollector* collector) const {
  ServerStats now = stats();
  std::lock_guard<std::mutex> lock(publish_stats_mu_);
  auto delta = [](uint64_t cur, uint64_t* prev) {
    uint64_t d = cur - *prev;
    *prev = cur;
    return d;
  };
  collector->Add("server.accepted",
                 delta(now.accepted, &published_stats_.accepted));
  collector->Add("server.rejected",
                 delta(now.rejected, &published_stats_.rejected));
  collector->Add("server.completed",
                 delta(now.completed, &published_stats_.completed));
  collector->Add("server.batches", delta(now.batches, &published_stats_.batches));
  collector->Add("server.epochs_published",
                 delta(now.epochs_published, &published_stats_.epochs_published));
  collector->Add("server.epochs_drained",
                 delta(now.epochs_drained, &published_stats_.epochs_drained));
  collector->Add("server.replay_batches",
                 delta(now.replay_batches, &published_stats_.replay_batches));
  collector->Add(
      "server.replay_mismatches",
      delta(now.replay_mismatches, &published_stats_.replay_mismatches));
}

std::vector<double> QueryServer::QueueWaitSamplesMs() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return wait_ring_;
}

}  // namespace netclus
