// Per-epoch translation between durable ObjectIds and the epoch's dense
// PointIds.
//
// The live world allocates one ObjectId per object (point or edge) when
// it first appears and never reuses it; every epoch publish rebuilds the
// dense PointId numbering (PointSetBuilder sorts points by edge and
// offset), so the same object generally carries a different PointId in
// every epoch. The IdentityMap is the ONE place that crossing happens:
// the query layer translates request ObjectIds to this epoch's PointIds
// on the way in and translates traversal results back on the way out.
// Everything above the map (QueryRequest/QueryResponse, the wire codec,
// QueryClient, the distance cache) speaks ObjectIds exclusively —
// netclus-lint enforces that PointId never appears in those layers.
//
// A null IdentityMap* anywhere in the query layer means the identity
// mapping ObjectId == PointId, which is exact for the inline path over a
// standalone view and for a server's boot epoch (boot assigns point
// ObjectIds 0..n-1 in dense order).
#ifndef NETCLUS_SERVER_IDENTITY_MAP_H_
#define NETCLUS_SERVER_IDENTITY_MAP_H_

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace netclus {

/// \brief Immutable bidirectional ObjectId <-> dense-PointId map for one
/// epoch. Built once by the publisher, then shared read-only with every
/// reader of the snapshot (safe to use concurrently).
class IdentityMap {
 public:
  IdentityMap() = default;

  /// `object_of_point[p]` is the ObjectId of this epoch's dense point
  /// `p`. Entries must be unique; kInvalidObjectId entries get no
  /// reverse mapping.
  explicit IdentityMap(std::vector<ObjectId> object_of_point)
      : object_of_point_(std::move(object_of_point)) {
    point_of_object_.reserve(object_of_point_.size());
    for (size_t p = 0; p < object_of_point_.size(); ++p) {
      if (object_of_point_[p] != kInvalidObjectId) {
        point_of_object_.emplace(object_of_point_[p],
                                 static_cast<PointId>(p));
      }
    }
  }

  /// Number of dense points this epoch holds.
  PointId num_points() const {
    return static_cast<PointId>(object_of_point_.size());
  }

  /// ObjectId of dense point `p`; kInvalidObjectId when out of range.
  ObjectId ObjectOf(PointId p) const {
    return p < object_of_point_.size() ? object_of_point_[p]
                                       : kInvalidObjectId;
  }

  /// Dense point id of `oid` in this epoch; kInvalidPointId when the
  /// object is unknown (never existed, or is an edge).
  PointId PointOf(ObjectId oid) const {
    auto it = point_of_object_.find(oid);
    return it == point_of_object_.end() ? kInvalidPointId : it->second;
  }

 private:
  std::vector<ObjectId> object_of_point_;
  std::unordered_map<ObjectId, PointId> point_of_object_;
};

/// Request-side translation helper: the dense point id of `oid` under
/// `ids`, or under the identity mapping when `ids` is null (then any
/// oid < num_points passes through). Returns kInvalidPointId for an
/// unresolvable oid.
inline PointId ResolveObject(const IdentityMap* ids, ObjectId oid,
                             PointId num_points) {
  if (ids != nullptr) return ids->PointOf(oid);
  return oid < num_points ? static_cast<PointId>(oid) : kInvalidPointId;
}

/// Response-side translation helper: the ObjectId of dense point `p`
/// under `ids` (identity when null).
inline ObjectId ObjectOfPoint(const IdentityMap* ids, PointId p) {
  if (ids != nullptr) return ids->ObjectOf(p);
  return static_cast<ObjectId>(p);
}

}  // namespace netclus

#endif  // NETCLUS_SERVER_IDENTITY_MAP_H_
