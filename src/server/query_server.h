// QueryServer: the long-lived clustering-as-a-service front end.
//
// One server owns a live Network + point placements (the mutable world,
// touched only by its updater thread) and serves the unified query
// vocabulary (server/query.h) from immutable EpochSnapshots published
// RCU-style through an EpochManager:
//
//   clients ──Submit──> bounded queue ──dispatcher──> batch
//                                          │ pins current epoch once
//                                          ▼
//                              ThreadPool::ParallelFor over the batch
//                              (FrozenGraph traversals, the epoch's
//                               private DistanceCache as a pure
//                               accelerator)
//                                          │
//                                          ▼ optional replay validation
//                              promises fulfilled, epoch id stamped
//
//   ApplyUpdate ──> updater thread: mutate live Network / point list,
//                   rebuild PointSet + FrozenGraph (+ re-cluster when a
//                   cluster_spec is configured), publish the new epoch
//                   with its own fresh DistanceCache — caches are
//                   per-epoch, so a batch draining an old epoch can
//                   neither read nor write another epoch's distances.
//
// Admission control: when the queue holds max_queue_depth requests, a
// Submit is rejected immediately with kUnavailable; the message carries
// a retry-after hint derived from the recent mean batch duration. The
// contract is documented in DESIGN.md §12.
//
// Responses are epoch-relative: point ids name points of the epoch
// stamped on the response (adding points renumbers ids in later
// epochs); node count is fixed at Start. Queries never touch the live
// network, so a served batch is a pure function of its pinned snapshot
// — which is what lets ValidateServedBatch replay it bit-identically.
#ifndef NETCLUS_SERVER_QUERY_SERVER_H_
#define NETCLUS_SERVER_QUERY_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "graph/network.h"
#include "graph/workspace_pool.h"
#include "netclus.h"
#include "server/epoch_manager.h"
#include "server/query.h"

namespace netclus {

/// \brief One mutation of the served world, applied by the updater
/// thread and visible to queries from the next published epoch on.
struct NetworkUpdate {
  enum class Kind {
    kAddEdge,   ///< undirected edge {u, v} with weight `value`
    kAddPoint,  ///< point on edge {u, v} at offset `value` from min(u,v)
  };
  Kind kind = Kind::kAddEdge;
  NodeId u = kInvalidNodeId;
  NodeId v = kInvalidNodeId;
  /// Edge weight (kAddEdge) or offset from the smaller endpoint
  /// (kAddPoint).
  double value = 0.0;
  /// kAddPoint: ground-truth label riding along (-1 = none).
  int label = -1;

  static NetworkUpdate AddEdge(NodeId u, NodeId v, double weight) {
    return NetworkUpdate{Kind::kAddEdge, u, v, weight, -1};
  }
  static NetworkUpdate AddPoint(NodeId u, NodeId v, double offset,
                                int label = -1) {
    return NetworkUpdate{Kind::kAddPoint, u, v, offset, label};
  }
};

/// \brief Serving knobs.
struct QueryServerOptions {
  /// Worker threads executing batches (0 = one per hardware core).
  uint32_t num_workers = 0;
  /// Admission bound: Submits beyond this many queued requests are
  /// rejected with kUnavailable (backpressure).
  size_t max_queue_depth = 1024;
  /// Most requests the dispatcher drains into one batch.
  size_t max_batch_size = 64;
  /// Per-epoch point-pair distance cache: every published snapshot owns
  /// a fresh cache of this capacity, retired with the snapshot; 0
  /// disables caching.
  size_t cache_capacity = 1 << 16;
  uint32_t cache_shards = 16;
  /// Replay every served batch through the direct inline path and fail
  /// the batch kInternal on any payload divergence. Forced on by
  /// -DNETCLUS_VALIDATE=ON builds.
  bool validate_replay = false;
  /// When set, every epoch also runs RunClustering and caches the
  /// ClusterOutput, enabling kClusterMembership queries.
  std::optional<ClusterSpec> cluster_spec;
};

/// \brief Aggregate serving counters (monotonic since Start).
struct ServerStats {
  uint64_t accepted = 0;   ///< requests admitted to the queue
  uint64_t rejected = 0;   ///< requests refused with kUnavailable
  uint64_t completed = 0;  ///< requests whose promise was fulfilled
  uint64_t batches = 0;    ///< dispatcher batches executed
  uint64_t epochs_published = 0;
  uint64_t epochs_drained = 0;   ///< retired snapshots actually freed
  uint64_t retired_epochs = 0;   ///< retired, awaiting last reader
  uint64_t replay_batches = 0;   ///< batches replay-validated
  uint64_t replay_mismatches = 0;
  double mean_queue_wait_ms = 0.0;
  double max_queue_wait_ms = 0.0;
  double mean_batch_size = 0.0;
  double max_batch_size = 0.0;
  double mean_batch_ms = 0.0;
};

/// \brief The serving loop. Create with Start(), query with
/// Execute()/Submit(), mutate with ApplyUpdate(), stop with Stop() (or
/// destruction). All public methods are thread-safe.
class QueryServer {
 public:
  /// Takes ownership of the world, publishes epoch 1 (running the
  /// initial clustering when `options.cluster_spec` is set — a failure
  /// there fails Start), and starts the dispatcher, updater, and worker
  /// threads.
  static Result<std::unique_ptr<QueryServer>> Start(
      Network net, PointSet points, const QueryServerOptions& options);

  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueues one request. The future resolves to the response (epoch
  /// stamped) or to the request's error; under backpressure it resolves
  /// immediately to kUnavailable with a retry-after hint in the message.
  std::future<Result<QueryResponse>> Submit(const QueryRequest& req);

  /// Blocking convenience: Submit + wait.
  Result<QueryResponse> Execute(const QueryRequest& req);

  /// Hands the mutation to the updater thread and blocks until it has
  /// been applied to the live world (validation errors come back here).
  /// Publication happens asynchronously — queued mutations coalesce
  /// into one epoch; use Flush() to wait for visibility.
  Status ApplyUpdate(const NetworkUpdate& update);

  /// As above without waiting for the apply.
  std::future<Status> SubmitUpdate(const NetworkUpdate& update);

  /// Blocks until every previously applied mutation is visible in the
  /// current epoch. Returns the last publish failure, if any (e.g. a
  /// re-clustering error); queries keep serving the previous epoch then.
  Status Flush();

  /// Drains in-flight queries and pending updates, publishes the final
  /// epoch, and joins all threads. Subsequent Submits are rejected with
  /// kUnavailable. Idempotent.
  void Stop();

  /// Epoch currently being served.
  uint64_t current_epoch() const { return epochs_.current_epoch(); }

  ServerStats stats() const;

  /// Adds the monotonic counters to `collector` under "server.*" names.
  void PublishStats(StatsCollector* collector) const;

  /// Queue-wait samples (ms) of the most recent requests (bounded ring;
  /// the raw material for client-side percentiles in the bench).
  std::vector<double> QueueWaitSamplesMs() const;

  uint32_t num_workers() const { return pool_->size(); }

 private:
  struct PendingQuery {
    QueryRequest req;
    std::promise<Result<QueryResponse>> promise;
    double enqueue_seconds = 0.0;
  };
  struct PendingUpdate {
    NetworkUpdate update;
    std::promise<Status> promise;
    uint64_t seq = 0;
  };

  QueryServer(Network net, std::vector<NetworkUpdate> raw_points,
              const QueryServerOptions& options);

  /// Rebuilds the immutable world from the live one and publishes it as
  /// the next epoch (carrying its own fresh DistanceCache). Updater
  /// thread (and Start) only.
  Status PublishWorld();
  /// Applies one mutation to the live world. Updater thread (and Start)
  /// only.
  Status ApplyToWorld(const NetworkUpdate& update);

  void DispatcherLoop();
  void UpdaterLoop();
  void ExecuteBatch(std::vector<PendingQuery>* batch);

  const QueryServerOptions options_;
  WallTimer clock_;  ///< server-lifetime clock for queue-wait stamps

  // The live (mutable) world — updater thread only after Start.
  Network net_;
  std::vector<NetworkUpdate> raw_points_;  ///< kAddPoint records, in order

  EpochManager epochs_;
  std::unique_ptr<ThreadPool> pool_;
  WorkspacePool workspaces_;

  // Query admission queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingQuery> queue_;
  bool stopping_ = false;

  // Update queue + flush bookkeeping.
  mutable std::mutex update_mu_;
  std::condition_variable update_cv_;
  std::condition_variable flush_cv_;
  std::deque<PendingUpdate> update_queue_;
  bool update_stopping_ = false;
  uint64_t update_seq_ = 0;        ///< last sequence handed out
  uint64_t published_seq_ = 0;     ///< last sequence visible in an epoch
  Status last_publish_error_ = Status::OK();

  /// Dispatcher-only: rotates batches across the snapshot's pin slots so
  /// the multi-slot drain accounting is exercised in normal serving.
  uint32_t pin_slot_rr_ = 0;

  // Serving statistics.
  mutable std::mutex stats_mu_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t batches_ = 0;
  uint64_t replay_batches_ = 0;
  uint64_t replay_mismatches_ = 0;
  RunningStats queue_wait_ms_;
  RunningStats batch_size_;
  RunningStats batch_ms_;
  std::vector<double> wait_ring_;  ///< bounded queue-wait sample ring
  size_t wait_ring_next_ = 0;

  // PublishStats delta tracking (same pattern as DistanceIndex).
  mutable std::mutex publish_stats_mu_;
  mutable ServerStats published_stats_;

  std::thread dispatcher_;
  std::thread updater_;
};

}  // namespace netclus

#endif  // NETCLUS_SERVER_QUERY_SERVER_H_
