// QueryServer: the long-lived clustering-as-a-service front end.
//
// One server owns a live Network + point placements (the mutable world,
// touched only by its updater thread) and serves the unified query
// vocabulary (server/query.h) from immutable EpochSnapshots published
// RCU-style through an EpochManager:
//
//   clients ──Submit──> bounded queue ──dispatcher──> batch
//                                          │ pins current epoch once
//                                          ▼
//                              ThreadPool::ParallelFor over the batch
//                              (FrozenGraph traversals, the epoch's
//                               private DistanceCache as a pure
//                               accelerator)
//                                          │
//                                          ▼ optional replay validation
//                              promises fulfilled, epoch id stamped
//
//   ApplyUpdate ──> updater thread: mutate live Network / point list,
//                   rebuild PointSet + FrozenGraph (+ re-cluster when a
//                   cluster_spec is configured), publish the new epoch.
//                   Untouched CSR rows are spliced from the retiring
//                   snapshot (incremental publish); the ObjectId-keyed
//                   DistanceCache is carried forward across publishes
//                   that leave the metric unchanged (point-only
//                   batches) and replaced fresh whenever edge weights
//                   change, so no batch can ever read a distance the
//                   current adjacency does not produce.
//
// Admission control: when the queue holds max_queue_depth requests, a
// Submit is rejected immediately with kUnavailable carrying a
// structured retry-after hint (measured batch rate when warm, a
// depth/worker model when cold). The contract is documented in
// DESIGN.md §12.
//
// Resilience (DESIGN.md §13): requests may carry deadlines — expired
// ones are shed at dequeue and in-flight traversals are cooperatively
// cancelled via TraversalCancel; mutations are logged to a durable WAL
// (server/wal.h) before they apply, and Start replays the log after a
// crash; a ServerHealth state machine (kHealthz probes bypass
// admission) reports degradation from publish failures, a broken WAL,
// or a sustained deadline-miss rate, while serving continues from the
// last good epoch.
//
// Identity contract: requests and responses speak durable ObjectIds
// (graph/types.h) — an id names the SAME object in every epoch that
// contains it, across publishes, restarts, and checkpoint recovery.
// The dense, epoch-relative PointIds the graph layer traverses on are
// an implementation detail confined behind each snapshot's IdentityMap
// (server/identity_map.h); node count is fixed at Start. Queries never
// touch the live network, so a served batch is a pure function of its
// pinned snapshot — which is what lets ValidateServedBatch replay it
// bit-identically.
#ifndef NETCLUS_SERVER_QUERY_SERVER_H_
#define NETCLUS_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "graph/dijkstra.h"
#include "graph/network.h"
#include "graph/workspace_pool.h"
#include "netclus.h"
#include "server/epoch_manager.h"
#include "server/query.h"
#include "server/update.h"
#include "server/wal.h"
#include "storage/paged_file.h"

namespace netclus {

/// \brief Deterministic failure injection for the serving loop itself
/// (the chaos harness of DESIGN.md §13). All probabilities are per
/// decision and drawn from seeded per-thread streams, so a chaotic run
/// replays bit-identically from the same seed and request sequence.
struct ChaosOptions {
  uint64_t seed = 0;
  /// Probability that an updater publish round fails (kInternal) without
  /// touching the epoch manager — exercising serve-last-good-epoch.
  double publish_failure_prob = 0.0;
  /// Probability that a batch stalls one worker for `worker_stall_ms`
  /// before executing — exercising deadline expiry under load.
  double worker_stall_prob = 0.0;
  double worker_stall_ms = 0.0;

  bool enabled() const {
    return publish_failure_prob > 0.0 || worker_stall_prob > 0.0;
  }
};

/// \brief Serving knobs.
struct QueryServerOptions {
  /// Worker threads executing batches (0 = one per hardware core).
  uint32_t num_workers = 0;
  /// Admission bound: Submits beyond this many queued requests are
  /// rejected with kUnavailable (backpressure).
  size_t max_queue_depth = 1024;
  /// Most requests the dispatcher drains into one batch.
  size_t max_batch_size = 64;
  /// ObjectId-keyed point-pair distance cache: each snapshot carries a
  /// cache of this capacity, SHARED with its predecessor across
  /// metric-preserving publishes (warm entries survive) and replaced
  /// fresh whenever edge weights change; 0 disables caching.
  size_t cache_capacity = 1 << 16;
  uint32_t cache_shards = 16;
  /// Splice untouched CSR rows from the retiring snapshot instead of
  /// re-materializing the whole graph on every publish. Off = every
  /// publish is a full rebuild (the NETCLUS_VALIDATE oracle path).
  bool incremental_publish = true;
  /// Replay every served batch through the direct inline path and fail
  /// the batch kInternal on any payload divergence. Forced on by
  /// -DNETCLUS_VALIDATE=ON builds.
  bool validate_replay = false;
  /// When set, every epoch also runs RunClustering and caches the
  /// ClusterOutput, enabling kClusterMembership queries.
  std::optional<ClusterSpec> cluster_spec;

  /// Durable mutation log (server/wal.h). When `wal_path` is non-empty
  /// the server opens (or creates) the log there, replays any existing
  /// records into the boot world before publishing epoch 1, and appends
  /// every accepted mutation before applying it. `wal_file` is the test
  /// hook: a borrowed PagedFile (e.g. a FaultInjectionFile) used instead
  /// of opening `wal_path`; it must outlive the server.
  std::string wal_path;
  PagedFile* wal_file = nullptr;

  /// Checkpoint/compaction cycle: once at least this many records sit
  /// in the WAL after a publish, the updater serializes the whole world
  /// into the alternating checkpoint slots (`<wal_path>.ckpt.a/.b`) and
  /// truncates the log, capping replay-at-boot to one checkpoint plus a
  /// short delta suffix. 0 disables checkpointing (the log grows
  /// without bound, exactly as before). `checkpoint_file_a/b` are the
  /// test hooks: borrowed slot files (e.g. FaultInjectionFiles) used
  /// instead of opening the paths; both must be set together and
  /// outlive the server.
  uint64_t wal_checkpoint_every = 0;
  PagedFile* checkpoint_file_a = nullptr;
  PagedFile* checkpoint_file_b = nullptr;

  /// Settles between cancellation polls for served traversals.
  uint32_t cancel_check_interval = kDefaultCancelCheckInterval;
  /// Health state machine: the deadline-outcome window size (0 disables
  /// miss-rate-driven degradation) and the miss fraction over a full
  /// window that flips the server to kDegraded.
  size_t health_window = 256;
  double degraded_miss_rate = 0.5;
  /// Consecutive publish failures that flip the server to kDegraded
  /// (0 disables); one success resets the count.
  uint32_t degraded_publish_failures = 3;

  ChaosOptions chaos;
};

/// \brief Aggregate serving counters (monotonic since Start).
struct ServerStats {
  uint64_t accepted = 0;   ///< requests admitted to the queue
  uint64_t rejected = 0;   ///< requests refused with kUnavailable
  uint64_t completed = 0;  ///< requests whose promise was fulfilled
  uint64_t batches = 0;    ///< dispatcher batches executed
  uint64_t epochs_published = 0;
  uint64_t epochs_drained = 0;   ///< retired snapshots actually freed
  uint64_t retired_epochs = 0;   ///< retired, awaiting last reader
  uint64_t replay_batches = 0;   ///< batches replay-validated
  uint64_t replay_mismatches = 0;
  uint64_t deadline_expired = 0;  ///< requests shed at dequeue, past deadline
  uint64_t cancelled_traversals = 0;  ///< cancelled mid-execution
  uint64_t wal_records = 0;     ///< mutation records appended since Start
  uint64_t wal_recoveries = 0;  ///< records replayed from the WAL at Start
  uint64_t publish_failures = 0;  ///< failed publish rounds since Start
  uint64_t publishes_full = 0;  ///< epochs built by full materialization
  uint64_t publishes_incremental = 0;  ///< epochs built by CSR row splice
  uint64_t checkpoints_written = 0;  ///< completed checkpoint+truncate cycles
  uint64_t checkpoint_failures = 0;  ///< cycles that failed (write or trunc)
  /// 1 when Start rebuilt the boot world from a checkpoint (plus a log
  /// suffix) rather than from the caller-provided base world.
  uint64_t wal_recovered_from_checkpoint = 0;
  /// Global WAL sequence the newest durable checkpoint covers.
  uint64_t wal_checkpoint_covers = 0;
  size_t queue_depth = 0;  ///< requests waiting right now (gauge)
  double mean_queue_wait_ms = 0.0;
  double max_queue_wait_ms = 0.0;
  double mean_batch_size = 0.0;
  double max_batch_size = 0.0;
  double mean_batch_ms = 0.0;
  double mean_publish_full_ms = 0.0;
  double mean_publish_incremental_ms = 0.0;
};

/// \brief What a kHealthz probe (or Healthz()) reports: the health
/// verdict plus the raw signals it was derived from.
struct HealthReport {
  ServerHealth health = ServerHealth::kServing;
  uint64_t epoch = 0;
  uint32_t consecutive_publish_failures = 0;
  /// Fraction of the recent outcome window that missed its deadline
  /// (0 when no deadlines are in use).
  double deadline_miss_rate = 0.0;
  bool wal_broken = false;
  size_t queue_depth = 0;
};

/// \brief The serving loop. Create with Start(), query with
/// Execute()/Submit(), mutate with ApplyUpdate(), stop with Stop() (or
/// destruction). All public methods are thread-safe.
class QueryServer {
 public:
  /// Takes ownership of the world, replays the mutation WAL into it
  /// when one is configured (a torn tail is truncated; a corrupt log
  /// middle fails Start with kCorruption — the server never boots a
  /// guessed world), publishes epoch 1 (running the initial clustering
  /// when `options.cluster_spec` is set — a failure there fails Start),
  /// and starts the dispatcher, updater, watchdog, and worker threads.
  static Result<std::unique_ptr<QueryServer>> Start(
      Network net, PointSet points, const QueryServerOptions& options);

  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueues one request. The future resolves to the response (epoch
  /// and health stamped) or to the request's error; under backpressure
  /// it resolves immediately to kUnavailable carrying a structured
  /// retry-after hint (Status::retry_after_ms(), also echoed in the
  /// message). A request with deadline_ms set resolves to
  /// kDeadlineExceeded when its deadline passes before (shed at
  /// dequeue, costing no worker) or during (cooperatively cancelled)
  /// execution. kHealthz requests bypass admission control entirely and
  /// resolve immediately — they stay answerable under backpressure.
  std::future<Result<QueryResponse>> Submit(const QueryRequest& req);

  /// Blocking convenience: Submit + wait.
  Result<QueryResponse> Execute(const QueryRequest& req);

  /// Hands the mutation to the updater thread and blocks until it has
  /// been applied to the live world (validation errors come back here).
  /// Publication happens asynchronously — queued mutations coalesce
  /// into one epoch; use Flush() to wait for visibility.
  Status ApplyUpdate(const NetworkUpdate& update);

  /// As above without waiting for the apply.
  std::future<Status> SubmitUpdate(const NetworkUpdate& update);

  /// Blocks until every previously applied mutation is visible in the
  /// current epoch. Returns the last publish failure, if any (e.g. a
  /// re-clustering error); queries keep serving the previous epoch then.
  Status Flush();

  /// Drains in-flight queries and pending updates, publishes the final
  /// epoch, and joins all threads. Subsequent Submits are rejected with
  /// kUnavailable. Idempotent.
  void Stop();

  /// Epoch currently being served.
  uint64_t current_epoch() const { return epochs_.current_epoch(); }

  /// The server's condition right now (DESIGN.md §13): kDegraded when
  /// the WAL is broken, publishes keep failing, or the recent
  /// deadline-miss rate crossed the configured bar — the server still
  /// answers queries from the last good epoch in that state.
  ServerHealth CurrentHealth() const;

  /// CurrentHealth plus the raw signals (the kHealthz payload's richer
  /// in-process sibling).
  HealthReport Healthz() const;

  ServerStats stats() const;

  /// Adds the monotonic counters to `collector` under "server.*" names.
  void PublishStats(StatsCollector* collector) const;

  /// Queue-wait samples (ms) of the most recent requests (bounded ring;
  /// the raw material for client-side percentiles in the bench).
  std::vector<double> QueueWaitSamplesMs() const;

  uint32_t num_workers() const { return pool_->size(); }

 private:
  struct PendingQuery {
    QueryRequest req;
    std::promise<Result<QueryResponse>> promise;
    double enqueue_seconds = 0.0;
    /// Absolute expiry on the server clock; 0 = no deadline.
    double deadline_seconds = 0.0;
    /// Set by the watchdog at expiry; polled by the executing traversal.
    std::shared_ptr<std::atomic<bool>> cancel_flag;
  };
  struct PendingUpdate {
    NetworkUpdate update;
    std::promise<Status> promise;
    uint64_t seq = 0;
  };
  struct DeadlineEntry {
    double expiry_seconds = 0.0;
    std::shared_ptr<std::atomic<bool>> flag;
  };

  QueryServer(Network net, std::vector<NetworkUpdate> raw_points,
              const QueryServerOptions& options);

  /// Opens the configured WAL (and checkpoint store), restores the
  /// newest durable checkpoint when one exists — replacing the
  /// caller-provided base world — and replays the uncovered log suffix.
  /// Start only, before the first publish.
  Status RecoverFromWal();

  /// Rebuilds the boot world (network, points, object ids, allocator
  /// watermark) from a parsed checkpoint. Start only.
  Status RestoreFromCheckpoint(const CheckpointState& state);

  /// Serializes the live world for a checkpoint covering every WAL
  /// record appended so far. Updater thread (and Start) only.
  CheckpointState BuildCheckpointState() const;

  /// Runs one checkpoint + log-truncate cycle when the WAL has
  /// accumulated options_.wal_checkpoint_every records. Failures are
  /// counted and skipped — the log simply keeps growing until a cycle
  /// succeeds. Updater thread only.
  void MaybeCheckpoint();

  /// Rebuilds the immutable world from the live one and publishes it as
  /// the next epoch. `batch` is the coalesced mutation batch that
  /// produced this publish: its kAddEdge endpoints form the dirty-node
  /// set for the incremental CSR splice, and a batch with no kAddEdge
  /// carries the predecessor's ObjectId-keyed distance cache forward.
  /// nullptr (boot, or a caller without the batch) forces a full
  /// rebuild with a fresh cache. Updater thread (and Start) only.
  Status PublishWorld(const std::vector<NetworkUpdate>* batch = nullptr);
  /// Applies one mutation to the live world, allocating the new
  /// object's stable ObjectId on success. Updater thread (and Start)
  /// only.
  Status ApplyToWorld(const NetworkUpdate& update);

  void DispatcherLoop();
  void UpdaterLoop();
  void WatchdogLoop();
  void ExecuteBatch(std::vector<PendingQuery>* batch);

  /// Registers `flag` to be set when the server clock passes
  /// `expiry_seconds`.
  void ArmDeadline(double expiry_seconds,
                   std::shared_ptr<std::atomic<bool>> flag);

  /// Records one request outcome in the health window.
  void RecordOutcomeLocked(bool deadline_missed) NETCLUS_REQUIRES(stats_mu_);
  /// Miss fraction over the current window.
  double DeadlineMissRateLocked() const NETCLUS_REQUIRES(stats_mu_);

  const QueryServerOptions options_;
  WallTimer clock_;  ///< server-lifetime clock for queue-wait stamps

  // The live (mutable) world — updater thread only after Start.
  Network net_;
  std::vector<NetworkUpdate> raw_points_;  ///< kAddPoint records, in order

  // Stable identity (updater thread only after Start): every object
  // ever admitted gets the next watermark value, never reused.
  // point_object_ids_[i] is raw_points_[i]'s id; edge ids are keyed by
  // the canonical packed endpoint pair (min << 32 | max).
  uint64_t next_object_id_ = 0;
  std::vector<ObjectId> point_object_ids_;
  std::unordered_map<uint64_t, ObjectId> edge_object_ids_;

  /// The most recently published epoch's distance cache (updater thread
  /// only): a metric-preserving publish hands the SAME cache to the next
  /// epoch so warm ObjectId-keyed entries survive; any edge mutation
  /// replaces it fresh.
  std::shared_ptr<const DistanceCache> live_cache_;

  // Durability: the mutation log and the alternating checkpoint slots
  // (updater thread only after Start; the owned files back them unless
  // the options_ test hooks were injected).
  std::unique_ptr<PagedFile> owned_wal_file_;
  std::unique_ptr<MutationWal> wal_;
  std::unique_ptr<CheckpointStore> checkpoints_;
  /// Generation of the newest durable checkpoint (0 = none yet).
  uint64_t ckpt_generation_ = 0;

  EpochManager epochs_;
  std::unique_ptr<ThreadPool> pool_;
  WorkspacePool workspaces_;

  // Query admission queue. Rank kQueryServerQueue: Submit's rejection
  // path records stats while still holding this lock, which is the only
  // reason it ranks below stats_mu_.
  mutable Mutex queue_mu_{lock_rank::kQueryServerQueue,
                          "QueryServer::queue_mu_"};
  CondVar queue_cv_;
  std::deque<PendingQuery> queue_ NETCLUS_GUARDED_BY(queue_mu_);
  bool stopping_ NETCLUS_GUARDED_BY(queue_mu_) = false;

  // Update queue + flush bookkeeping.
  mutable Mutex update_mu_{lock_rank::kQueryServerUpdate,
                           "QueryServer::update_mu_"};
  CondVar update_cv_;
  CondVar flush_cv_;
  std::deque<PendingUpdate> update_queue_ NETCLUS_GUARDED_BY(update_mu_);
  bool update_stopping_ NETCLUS_GUARDED_BY(update_mu_) = false;
  /// Last sequence handed out.
  uint64_t update_seq_ NETCLUS_GUARDED_BY(update_mu_) = 0;
  /// Last sequence visible in an epoch.
  uint64_t published_seq_ NETCLUS_GUARDED_BY(update_mu_) = 0;
  Status last_publish_error_ NETCLUS_GUARDED_BY(update_mu_) = Status::OK();

  /// Dispatcher-only: rotates batches across the snapshot's pin slots so
  /// the multi-slot drain accounting is exercised in normal serving.
  uint32_t pin_slot_rr_ = 0;

  // Deadline watchdog: a min-heap of pending expiries on the server
  // clock, drained by its own thread.
  mutable Mutex deadline_mu_{lock_rank::kQueryServerDeadline,
                             "QueryServer::deadline_mu_"};
  CondVar deadline_cv_;
  std::vector<DeadlineEntry> deadline_heap_ NETCLUS_GUARDED_BY(deadline_mu_);
  bool deadline_stopping_ NETCLUS_GUARDED_BY(deadline_mu_) = false;

  // Health signals readable from any thread without the stats lock.
  std::atomic<bool> stopping_flag_{false};
  std::atomic<bool> wal_broken_{false};
  std::atomic<uint32_t> consecutive_publish_failures_{0};

  // Chaos: independent seeded streams per deciding thread (updater
  // decides publish failures, dispatcher decides worker stalls), so
  // neither perturbs the other's sequence.
  Rng chaos_publish_rng_{0};
  Rng chaos_stall_rng_{0};

  // Serving statistics. Rank kServerStats: acquired from Submit while
  // queue_mu_ is still held (the backpressure rejection path) and from
  // workers/dispatcher with nothing held; only the global registry may
  // be acquired beyond it.
  mutable Mutex stats_mu_{lock_rank::kServerStats, "QueryServer::stats_mu_"};
  uint64_t accepted_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t rejected_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t completed_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t batches_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t replay_batches_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t replay_mismatches_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t deadline_expired_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t cancelled_traversals_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t wal_records_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  /// Fixed after Start.
  uint64_t wal_recovered_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t publish_failures_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t publishes_full_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t publishes_incremental_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t checkpoints_written_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  uint64_t checkpoint_failures_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  /// Fixed after Start.
  bool wal_recovered_from_checkpoint_ NETCLUS_GUARDED_BY(stats_mu_) = false;
  uint64_t wal_checkpoint_covers_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  RunningStats publish_full_ms_ NETCLUS_GUARDED_BY(stats_mu_);
  RunningStats publish_incremental_ms_ NETCLUS_GUARDED_BY(stats_mu_);
  RunningStats queue_wait_ms_ NETCLUS_GUARDED_BY(stats_mu_);
  RunningStats batch_size_ NETCLUS_GUARDED_BY(stats_mu_);
  RunningStats batch_ms_ NETCLUS_GUARDED_BY(stats_mu_);
  /// Bounded queue-wait sample ring.
  std::vector<double> wait_ring_ NETCLUS_GUARDED_BY(stats_mu_);
  size_t wait_ring_next_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  /// Sliding deadline-outcome window (1 = missed); capacity
  /// options_.health_window.
  std::vector<char> outcome_ring_ NETCLUS_GUARDED_BY(stats_mu_);
  size_t outcome_next_ NETCLUS_GUARDED_BY(stats_mu_) = 0;
  bool outcome_full_ NETCLUS_GUARDED_BY(stats_mu_) = false;
  size_t outcome_misses_ NETCLUS_GUARDED_BY(stats_mu_) = 0;

  // PublishStats delta tracking (same pattern as DistanceIndex; same
  // rank — the two publication locks are never held together).
  mutable Mutex publish_stats_mu_{lock_rank::kStatsPublish,
                                  "QueryServer::publish_stats_mu_"};
  mutable ServerStats published_stats_ NETCLUS_GUARDED_BY(publish_stats_mu_);

  std::thread dispatcher_;
  std::thread updater_;
  std::thread watchdog_;
};

}  // namespace netclus

#endif  // NETCLUS_SERVER_QUERY_SERVER_H_
