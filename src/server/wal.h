// MutationWal: an append-only, CRC32C-framed log of NetworkUpdate
// records layered on PagedFile.
//
// Durability contract (DESIGN.md §13): the query server's updater
// thread appends every mutation to the log *before* applying it to the
// live world, so after a crash the world is reconstructed by replaying
// the log over the boot-time network. Building on PagedFile (rather
// than a raw fd) means FaultInjectionFile decorates the log for free:
// the torn-write / bit-flip / short-read recovery behavior is exercised
// by the same deterministic harness as the storage stack.
//
// Record framing: fixed 32-byte records, page_size/32 per page, never
// straddling a page boundary. Byte layout (all little-endian,
// in-memory representation):
//
//   [0, 4)   CRC32C of bytes [4, 32)
//   [4, 8)   magic "NWAL"
//   [8, 9)   kind (0 = kAddEdge, 1 = kAddPoint)
//   [9, 12)  zero padding (checked on decode)
//   [12,16)  u
//   [16,20)  v
//   [20,28)  value (IEEE double, bit pattern preserved exactly)
//   [28,32)  label (int32)
//
// An all-zero slot is "unwritten" (freshly allocated pages are zeroed).
// Recovery scans slots in order: the valid prefix is the log's content;
// a trailing run of invalid slots (torn final write, power cut
// mid-page) is scrubbed back to zero and reported as dropped; an
// invalid slot *followed by* a valid record is not a torn tail — that
// is Status::Corruption, and recovery refuses to guess.
#ifndef NETCLUS_SERVER_WAL_H_
#define NETCLUS_SERVER_WAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "server/update.h"
#include "storage/paged_file.h"

namespace netclus {

/// Serializes `update` into a 32-byte WAL record at `out`.
void EncodeWalRecord(const NetworkUpdate& update, char* out);

/// Validates the 32-byte record at `rec` (magic, padding, kind, CRC);
/// on success fills `*out` and returns true.
bool DecodeWalRecord(const char* rec, NetworkUpdate* out);

/// True when all 32 bytes of `rec` are zero (an unwritten slot).
bool WalSlotIsEmpty(const char* rec);

/// What MutationWal::Open reconstructed from an existing log.
struct WalRecovery {
  /// The valid record prefix, in append order.
  std::vector<NetworkUpdate> records;
  /// Torn (non-empty, invalid) tail slots scrubbed back to zero.
  uint64_t records_dropped = 0;
};

/// \brief Append-only mutation log over a borrowed PagedFile.
///
/// Single-writer: exactly one thread (the server's updater) appends.
/// Every Append is written through to the backing file before it
/// returns OK — there is no in-memory buffering beyond the tail-page
/// shadow, which always matches the last successful write.
class MutationWal {
 public:
  static constexpr uint32_t kRecordSize = 32;
  /// Transient (kUnavailable) page operations are retried this many
  /// times before the error is surfaced.
  static constexpr int kMaxIoRetries = 8;

  /// Opens a log over `file` (borrowed; must outlive the WAL). Scans
  /// any existing pages, truncates a torn tail (scrubbing it in the
  /// file so the next writer starts from a clean slot), and exposes the
  /// valid prefix via recovery(). Fails with kInvalidArgument when the
  /// page size cannot frame 32-byte records, kCorruption when the log
  /// has a valid record after an invalid one, or the underlying I/O
  /// error when a page cannot be read/scrubbed — never a partial
  /// recovery.
  static Result<std::unique_ptr<MutationWal>> Open(PagedFile* file);

  MutationWal(const MutationWal&) = delete;
  MutationWal& operator=(const MutationWal&) = delete;

  /// Durably appends one record. On failure the slot is scrubbed back
  /// to zero (so a torn write cannot survive into recovery); if even
  /// the scrub fails the log is marked broken() and every later Append
  /// is refused with kUnavailable — the caller keeps serving but must
  /// refuse further durable mutations.
  Status Append(const NetworkUpdate& update);

  /// What Open() reconstructed (empty for a fresh log).
  const WalRecovery& recovery() const { return recovery_; }

  /// Records currently in the log (recovered prefix + appends).
  uint64_t num_records() const { return next_slot_; }

  /// True once a failed append could not be scrubbed: the tail state on
  /// disk is unknown and the log refuses further writes.
  bool broken() const { return broken_; }

 private:
  MutationWal(PagedFile* file, uint32_t records_per_page)
      : file_(file),
        records_per_page_(records_per_page),
        shadow_(file->page_size(), 0) {}

  Status ReadPageRetry(PageId id, char* out);
  Status WritePageRetry(PageId id, const char* data);

  PagedFile* file_;  ///< borrowed
  uint32_t records_per_page_;
  uint64_t next_slot_ = 0;  ///< global index of the next record
  /// In-memory image of the tail page (valid when shadow_page_ is not
  /// kInvalidPageId); appends read-modify-write through it so one slot
  /// change never needs a page read.
  std::vector<char> shadow_;
  PageId shadow_page_ = kInvalidPageId;
  bool broken_ = false;
  WalRecovery recovery_;
};

}  // namespace netclus

#endif  // NETCLUS_SERVER_WAL_H_
