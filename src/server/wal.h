// MutationWal: an append-only, CRC32C-framed log of NetworkUpdate
// records layered on PagedFile, plus CheckpointStore: the durable
// world snapshots that bound how much of the log recovery must replay.
//
// Durability contract (DESIGN.md §13, §16): the query server's updater
// thread appends every mutation to the log *before* applying it to the
// live world, so after a crash the world is reconstructed by replaying
// the log over the boot-time network — or, once a checkpoint exists,
// over the checkpointed world, replaying only the log suffix the
// checkpoint does not cover. Building on PagedFile (rather than a raw
// fd) means FaultInjectionFile decorates both for free: the torn-write
// / bit-flip / short-read recovery behavior is exercised by the same
// deterministic harness as the storage stack.
//
// Log format, version 2. Page 0 is the header (all little-endian,
// in-memory representation):
//
//   [0, 4)   CRC32C of bytes [4, 24)
//   [4, 8)   magic "NWHD"
//   [8, 12)  format version (kWalVersion)
//   [12,20)  start_seq: global sequence number of the first record slot
//   [20,24)  zero padding (checked); rest of the page ignored
//
// Records fill pages 1..N, fixed 32-byte records, page_size/32 per
// page, never straddling a page boundary. The record at local slot i
// has global sequence start_seq + i — compaction truncates the record
// pages and advances start_seq, so a record's global sequence never
// changes across compactions. Record byte layout:
//
//   [0, 4)   CRC32C of bytes [4, 32)
//   [4, 8)   magic "NWAL"
//   [8, 9)   kind (0 = kAddEdge, 1 = kAddPoint)
//   [9, 12)  zero padding (checked on decode)
//   [12,16)  u
//   [16,20)  v
//   [20,28)  value (IEEE double, bit pattern preserved exactly)
//   [28,32)  label (int32)
//
// An all-zero slot is "unwritten" (freshly allocated pages are zeroed).
// Recovery scans slots in order: the valid prefix is the log's content;
// a trailing run of invalid slots (torn final write, power cut
// mid-page) is scrubbed back to zero and reported as dropped; an
// invalid slot *followed by* a valid record is not a torn tail — that
// is Status::Corruption, and recovery refuses to guess.
#ifndef NETCLUS_SERVER_WAL_H_
#define NETCLUS_SERVER_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"
#include "server/update.h"
#include "storage/paged_file.h"

namespace netclus {

/// Log format version stamped in the header page (version 1 logs had
/// no header; Open refuses them as corrupt rather than guessing).
inline constexpr uint32_t kWalVersion = 2;

/// Serializes `update` into a 32-byte WAL record at `out`.
void EncodeWalRecord(const NetworkUpdate& update, char* out);

/// Validates the 32-byte record at `rec` (magic, padding, kind, CRC);
/// on success fills `*out` and returns true.
bool DecodeWalRecord(const char* rec, NetworkUpdate* out);

/// True when all 32 bytes of `rec` are zero (an unwritten slot).
bool WalSlotIsEmpty(const char* rec);

/// Serializes a header page (the first 24 bytes; the caller provides a
/// zeroed full page).
void EncodeWalHeader(uint64_t start_seq, char* out);

/// Validates the header at `page` (magic, version, padding, CRC); on
/// success fills `*start_seq` and returns true.
bool DecodeWalHeader(const char* page, uint64_t* start_seq);

/// What MutationWal::Open reconstructed from an existing log.
struct WalRecovery {
  /// The valid record prefix, in append order. records[i] has global
  /// sequence start_seq + i.
  std::vector<NetworkUpdate> records;
  /// Torn (non-empty, invalid) tail slots scrubbed back to zero.
  uint64_t records_dropped = 0;
};

/// \brief Append-only mutation log over a borrowed PagedFile.
///
/// Single-writer: exactly one thread (the server's updater) appends.
/// Every Append is written through to the backing file before it
/// returns OK — there is no in-memory buffering beyond the tail-page
/// shadow, which always matches the last successful write.
class MutationWal {
 public:
  static constexpr uint32_t kRecordSize = 32;
  /// Transient (kUnavailable) page operations are retried this many
  /// times before the error is surfaced.
  static constexpr int kMaxIoRetries = 8;

  /// Opens a log over `file` (borrowed; must outlive the WAL). A fresh
  /// (zero-page) file gets a header with start_seq 0. An existing file
  /// must lead with a valid header page; then any record pages are
  /// scanned, a torn tail is truncated (scrubbed in the file so the
  /// next writer starts from a clean slot), and the valid prefix is
  /// exposed via recovery(). Fails with kInvalidArgument when the page
  /// size cannot frame 32-byte records, kCorruption on a bad header or
  /// when the log has a valid record after an invalid one, or the
  /// underlying I/O error when a page cannot be read/scrubbed — never a
  /// partial recovery.
  static Result<std::unique_ptr<MutationWal>> Open(PagedFile* file);

  MutationWal(const MutationWal&) = delete;
  MutationWal& operator=(const MutationWal&) = delete;

  /// Durably appends one record. On failure the slot is scrubbed back
  /// to zero (so a torn write cannot survive into recovery); if even
  /// the scrub fails the log is marked broken() and every later Append
  /// is refused with kUnavailable — the caller keeps serving but must
  /// refuse further durable mutations.
  Status Append(const NetworkUpdate& update);

  /// Compaction: drops every record page and advances start_seq to
  /// `new_start_seq`, which must equal next_seq() — the caller proves
  /// it holds a durable checkpoint covering the whole log before
  /// calling (write the checkpoint FIRST; a crash between the page drop
  /// and the header rewrite leaves an old start_seq over zero records,
  /// which recovery resolves correctly against any checkpoint covering
  /// at least start_seq). A failed record-page drop leaves the log
  /// untouched (skip this cycle); a failed header rewrite marks the log
  /// broken().
  Status TruncateTo(uint64_t new_start_seq);

  /// What Open() reconstructed (empty for a fresh log).
  const WalRecovery& recovery() const { return recovery_; }

  /// Records currently in the log (recovered prefix + appends).
  uint64_t num_records() const { return next_slot_; }

  /// Global sequence of the first record slot (advanced by TruncateTo).
  uint64_t start_seq() const { return start_seq_; }

  /// Global sequence the next Append will get.
  uint64_t next_seq() const { return start_seq_ + next_slot_; }

  /// True once a failed append could not be scrubbed (or a compaction
  /// header rewrite failed): the tail state on disk is unknown and the
  /// log refuses further writes.
  bool broken() const { return broken_; }

 private:
  MutationWal(PagedFile* file, uint32_t records_per_page)
      : file_(file),
        records_per_page_(records_per_page),
        shadow_(file->page_size(), 0) {}

  Status ReadPageRetry(PageId id, char* out);
  Status WritePageRetry(PageId id, const char* data);

  PagedFile* file_;  ///< borrowed
  uint32_t records_per_page_;
  uint64_t start_seq_ = 0;  ///< global sequence of local slot 0
  uint64_t next_slot_ = 0;  ///< local index of the next record
  /// In-memory image of the tail page (valid when shadow_page_ is not
  /// kInvalidPageId); appends read-modify-write through it so one slot
  /// change never needs a page read.
  std::vector<char> shadow_;
  PageId shadow_page_ = kInvalidPageId;
  bool broken_ = false;
  WalRecovery recovery_;
};

// --- checkpoints ------------------------------------------------------
//
// A checkpoint is the server's whole durable world — every edge and
// every point, each with its stable ObjectId, plus the object-id
// allocator watermark — serialized as one CRC32C-framed byte stream
// across the pages of a slot file:
//
//   [0, 4)   CRC32C of bytes [4, total_bytes)
//   [4, 8)   magic "NCKP"
//   [8, 12)  checkpoint format version (kCheckpointVersion)
//   [12,20)  generation (monotone per server lineage; picks the newest)
//   [20,28)  covers_seq: WAL records with seq < covers_seq are included
//   [28,36)  next_object_id
//   [36,40)  num_nodes
//   [40,48)  num_edges
//   [48,56)  num_points
//   [56,64)  total_bytes (header + all records)
//   then num_edges edge records of 24 bytes:
//     u u32, v u32, weight f64, oid u64
//   then num_points point records of 28 bytes:
//     u u32, v u32, offset f64, label i32, oid u64
//
// Two slot files alternate by generation parity, so the slot being
// overwritten is never the one holding the newest surviving checkpoint:
// a torn write leaves the previous generation intact in the other slot.

inline constexpr uint32_t kCheckpointVersion = 1;

struct CheckpointEdge {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 0.0;
  ObjectId oid = kInvalidObjectId;
};

struct CheckpointPoint {
  NodeId u = 0;
  NodeId v = 0;
  double offset = 0.0;
  int32_t label = -1;
  ObjectId oid = kInvalidObjectId;
};

/// \brief One serializable world: what a checkpoint stores and what
/// recovery rebuilds the boot world from.
struct CheckpointState {
  uint64_t generation = 0;
  uint64_t covers_seq = 0;
  uint64_t next_object_id = 0;
  uint32_t num_nodes = 0;
  std::vector<CheckpointEdge> edges;    ///< canonical (Network::Edges) order
  std::vector<CheckpointPoint> points;  ///< raw insertion order
};

/// Per-slot diagnostics for `netclus_cli wal inspect` (never fails —
/// problems land in `detail`).
struct CheckpointSlotInfo {
  bool present = false;  ///< slot file has any pages
  bool valid = false;    ///< full stream parsed and CRC-verified
  uint64_t generation = 0;
  uint64_t covers_seq = 0;
  uint64_t num_edges = 0;
  uint64_t num_points = 0;
  uint64_t total_bytes = 0;
  std::string detail;  ///< why the slot is invalid, when it is
};

/// \brief Two-slot alternating checkpoint writer/reader.
///
/// Single-writer (the server's updater thread), like the WAL. Reads
/// happen only at boot, before any writer exists.
class CheckpointStore {
 public:
  static constexpr uint32_t kHeadBytes = 64;
  static constexpr uint32_t kEdgeBytes = 24;
  static constexpr uint32_t kPointBytes = 28;
  static constexpr int kMaxIoRetries = 8;

  /// Borrowed slot files (the fault-injection test hook); both must
  /// outlive the store.
  CheckpointStore(PagedFile* slot_a, PagedFile* slot_b);

  /// Opens (or creates) the owned slot files `<base>.ckpt.a` and
  /// `<base>.ckpt.b`.
  static Result<std::unique_ptr<CheckpointStore>> Open(
      const std::string& base_path, uint32_t page_size);

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Durably writes `state` into the slot chosen by generation parity
  /// (never the slot of generation - 1). A failure may leave that slot
  /// torn; the other slot — and therefore the previous checkpoint — is
  /// untouched.
  Status Write(const CheckpointState& state);

  /// Parses both slots and returns the valid one with the highest
  /// generation via `*out`; `*found` is false when neither slot holds a
  /// valid checkpoint (fresh store, or both torn). Only I/O errors fail.
  Status ReadLatest(CheckpointState* out, bool* found);

  /// Diagnostics for slot 0 ("a") or 1 ("b").
  CheckpointSlotInfo InspectSlot(int slot);

 private:
  /// Full parse of one slot; on any validation failure returns the
  /// reason and leaves `*out` unspecified.
  Status ParseSlot(PagedFile* file, CheckpointState* out);

  PagedFile* slots_[2];
  std::unique_ptr<PagedFile> owned_a_;
  std::unique_ptr<PagedFile> owned_b_;
};

}  // namespace netclus

#endif  // NETCLUS_SERVER_WAL_H_
