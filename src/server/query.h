// The unified query vocabulary of the clustering service: one tagged
// request/response pair that every read path in the system speaks.
//
// Callers describe a read declaratively with a QueryRequest (a kind tag
// plus that kind's parameters) and execute it through ExecuteQuery,
// which dispatches onto the graph-layer primitives
// (graph/network_distance.h) and returns one QueryResponse. The same
// vocabulary serves two execution styles with bit-identical results:
//
//   * inline — a caller holding a NetworkView runs the query
//     synchronously on its own thread (frozen may be null);
//   * served — the QueryServer (server/query_server.h) batches
//     concurrent requests against a pinned FrozenGraph epoch and
//     executes them across a thread pool.
//
// The equivalence is not aspirational: both styles funnel into the
// same ExecuteQueryInto core, and ValidateServedBatch replays a served
// batch through the inline path and demands payload equality down to
// the last double bit. The query server runs that validator on every
// batch when QueryServerOptions::validate_replay is set (and always
// under -DNETCLUS_VALIDATE=ON builds).
//
// Identity: requests and responses speak durable ObjectIds, never the
// epoch-relative dense point numbering (netclus-lint bans the dense id
// type from this header and from src/net/). Translation in both
// directions happens inside ExecuteQueryInto through the IdentityMap of
// the epoch being served; a null map means the identity mapping, which
// is exact for inline runs over a standalone view and for a server's
// boot epoch. A held ObjectId keeps naming the same physical object
// across every republication and across restarts.
#ifndef NETCLUS_SERVER_QUERY_H_
#define NETCLUS_SERVER_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/accelerator.h"
#include "graph/network_distance.h"
#include "graph/network_view.h"
#include "graph/types.h"
#include "netclus.h"
#include "server/identity_map.h"

namespace netclus {

/// The read operations the service answers.
enum class QueryKind : uint8_t {
  kPointDistance,      ///< exact network distance d(a, b) (Definition 4)
  kRange,              ///< all objects within eps of `a` (incl. `a` itself)
  kNearestObject,      ///< the k objects nearest to `a` (excluding `a`)
  kClusterMembership,  ///< cluster id of `a` in the epoch's ClusterOutput
  kHealthz,            ///< server health probe (served path only)
};

/// Stable lower-case name of `k` ("distance", "range", "nearest",
/// "membership", "healthz") — the vocabulary of netclus_cli's serve
/// workload mix.
const char* QueryKindName(QueryKind k);

/// \brief The query server's serving condition (DESIGN.md §13).
///
/// Healthy serving is kServing. kDegraded means the server still
/// answers queries from the last good epoch but something durable is
/// wrong — repeated publish failures, a broken WAL, or a sustained
/// deadline-miss rate — so clients should shed load or alert.
/// kStopping is the drain window after Stop() begins.
enum class ServerHealth : uint8_t {
  kServing,
  kDegraded,
  kStopping,
};

/// Stable lower-case name ("serving", "degraded", "stopping").
const char* ServerHealthName(ServerHealth h);

/// \brief One read, declaratively: a kind tag plus that kind's
/// parameters. Only the fields of the selected kind are read. Object
/// references are durable ObjectIds (stable across epochs).
struct QueryRequest {
  QueryKind kind = QueryKind::kPointDistance;
  /// Primary object: the distance source, range/nearest center, or the
  /// membership subject.
  ObjectId a = kInvalidObjectId;
  /// kPointDistance only: the distance target.
  ObjectId b = kInvalidObjectId;
  /// kRange only: the query radius (>= 0, finite).
  double eps = 0.0;
  /// kNearestObject only: how many neighbors (>= 1).
  uint32_t k = 1;
  /// Soft deadline relative to submission, in milliseconds; 0 (the
  /// default) means no deadline. A served request whose deadline passes
  /// before execution starts is shed with kDeadlineExceeded; one whose
  /// deadline passes mid-traversal is cooperatively cancelled and
  /// resolves the same way. The inline path ignores it (there is no
  /// watchdog to arm).
  double deadline_ms = 0.0;

  /// Returns a copy with `deadline_ms` set — submission-site sugar.
  QueryRequest WithDeadline(double ms) const {
    QueryRequest r = *this;
    r.deadline_ms = ms;
    return r;
  }

  static QueryRequest PointDistance(ObjectId a, ObjectId b) {
    QueryRequest r;
    r.kind = QueryKind::kPointDistance;
    r.a = a;
    r.b = b;
    return r;
  }
  static QueryRequest Range(ObjectId center, double eps) {
    QueryRequest r;
    r.kind = QueryKind::kRange;
    r.a = center;
    r.eps = eps;
    return r;
  }
  static QueryRequest NearestObject(ObjectId center, uint32_t k = 1) {
    QueryRequest r;
    r.kind = QueryKind::kNearestObject;
    r.a = center;
    r.k = k;
    return r;
  }
  static QueryRequest ClusterMembership(ObjectId p) {
    QueryRequest r;
    r.kind = QueryKind::kClusterMembership;
    r.a = p;
    return r;
  }
  static QueryRequest Healthz() {
    QueryRequest r;
    r.kind = QueryKind::kHealthz;
    r.a = 0;
    return r;
  }
};

/// One object found by a range / nearest query: its durable ObjectId and
/// its exact network distance from the query center.
struct QueryResult {
  ObjectId id = kInvalidObjectId;
  double dist = 0.0;
};

/// Exact equality, distance compared bitwise — the comparison the served
/// batch replay validator relies on.
inline bool operator==(const QueryResult& a, const QueryResult& b) {
  return a.id == b.id && a.dist == b.dist;
}
inline bool operator!=(const QueryResult& a, const QueryResult& b) {
  return !(a == b);
}

/// \brief The unified result. Only the fields of the request's kind are
/// populated; `epoch` is stamped by the query server (0 on the inline
/// path, where there is no epoch to name).
struct QueryResponse {
  QueryKind kind = QueryKind::kPointDistance;
  /// kPointDistance: d(a, b); kInfDist when disconnected.
  double distance = 0.0;
  /// kRange (sorted by ascending ObjectId) / kNearestObject (sorted by
  /// ascending distance, ties by traversal order): the matching objects.
  std::vector<QueryResult> results;
  /// kClusterMembership: cluster id in [0, num_clusters) or kNoise.
  int cluster_id = 0;
  /// kHealthz: the server's condition at answer time. Also stamped on
  /// every served response (a free health signal riding along); the
  /// inline path leaves the default.
  ServerHealth health = ServerHealth::kServing;
  /// FrozenGraph epoch that served this response; 0 for inline runs.
  uint64_t epoch = 0;
};

/// Payload equality (kind + every kind field, doubles compared exactly);
/// `epoch` is excluded — it names the serving snapshot, not the answer.
bool ResponsePayloadsEqual(const QueryResponse& a, const QueryResponse& b);

/// Rejects malformed requests up front: object ids must resolve under
/// `ids` (null = identity mapping over [0, num_points)), eps finite and
/// >= 0, k >= 1, deadline_ms finite and >= 0, and kClusterMembership
/// requires `clusters` (the epoch's cached ClusterOutput) to exist.
/// kHealthz is rejected here — it is answered by the query server's
/// admission path, never by the executor.
Status ValidateQueryRequest(const NetworkView& view, const QueryRequest& req,
                            const ClusterOutput* clusters,
                            const IdentityMap* ids = nullptr);

/// \brief The single execution core both styles funnel into.
///
/// Runs `req` against `view`, traversing `frozen` when non-null (a
/// snapshot of `view`, see NetworkView::Freeze()) and the virtual view
/// otherwise — results are bit-identical either way. `ws` provides the
/// reusable traversal state (one per concurrent caller; lease from a
/// WorkspacePool under parallelism). `accel` may be null (= exact
/// unaccelerated path); a non-null accelerator never changes the
/// payload, only the work done. `clusters` is consulted only by
/// kClusterMembership. `ids` translates request ObjectIds into the
/// epoch's dense numbering on the way in and result ids back on the way
/// out (null = identity mapping). `out` is overwritten, reusing its
/// vector capacity — the zero-allocation steady state for serving loops.
///
/// Cancellation: the run honors `ws->cancel` (resetting its `triggered`
/// latch first). When the armed flag fires mid-traversal the function
/// returns kDeadlineExceeded and `out` holds no partial payload a
/// caller could mistake for an answer. With an unarmed token (the
/// default) behavior and payloads are bit-identical to a run with no
/// token at all.
Status ExecuteQueryInto(const NetworkView& view, const FrozenGraph* frozen,
                        const QueryRequest& req, TraversalWorkspace* ws,
                        const DistanceAccelerator* accel,
                        const ClusterOutput* clusters, QueryResponse* out,
                        const IdentityMap* ids = nullptr);

/// Convenience wrapper over ExecuteQueryInto: allocates the workspace
/// and returns the response by value. The one-shot inline path; serving
/// loops and algorithms use ExecuteQueryInto with pooled workspaces.
Result<QueryResponse> ExecuteQuery(const NetworkView& view,
                                   const FrozenGraph* frozen,
                                   const QueryRequest& req,
                                   const DistanceAccelerator* accel = nullptr,
                                   const ClusterOutput* clusters = nullptr,
                                   const IdentityMap* ids = nullptr);

/// \brief The served-batch replay validator.
///
/// Re-executes every request of a served batch through the inline path
/// (ExecuteQueryInto, no accelerator) against the same `view`/`frozen`/
/// `ids` the batch was pinned to, and returns Internal on the first
/// response whose payload is not bit-identical. This is the contract
/// that makes "inline or served, same answer" enforceable rather than
/// assumed.
Status ValidateServedBatch(const NetworkView& view, const FrozenGraph* frozen,
                           const std::vector<QueryRequest>& requests,
                           const std::vector<QueryResponse>& responses,
                           const ClusterOutput* clusters,
                           const IdentityMap* ids = nullptr);

}  // namespace netclus

#endif  // NETCLUS_SERVER_QUERY_H_
