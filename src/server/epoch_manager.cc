#include "server/epoch_manager.h"

#include <algorithm>

namespace netclus {

EpochManager::EpochManager(uint32_t num_pin_slots)
    : num_pin_slots_(num_pin_slots > 0 ? num_pin_slots : 1),
      freed_(std::make_shared<std::atomic<uint64_t>>(0)) {}

EpochManager::~EpochManager() = default;

EpochManager::Pin EpochManager::Acquire(uint32_t slot) {
  slot %= num_pin_slots_;  // any caller value maps onto a real slot
  MutexLock lock(&mu_);
  if (current_ == nullptr) return Pin();
  current_->AddPin(slot);
  return Pin(current_, slot);
}

uint64_t EpochManager::Publish(std::shared_ptr<const FrozenGraph> graph,
                               std::shared_ptr<const PointSet> points,
                               std::shared_ptr<const ClusterOutput> clusters,
                               std::shared_ptr<const DistanceCache> cache,
                               std::shared_ptr<const IdentityMap> ids) {
  MutexLock lock(&mu_);
  const uint64_t id = published_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto snap = std::make_shared<const EpochSnapshot>(
      id, std::move(graph), std::move(points), std::move(clusters),
      std::move(cache), num_pin_slots_, freed_, std::move(ids));
  if (current_ != nullptr) retired_.push_back(std::move(current_));
  current_ = std::move(snap);
  SweepRetiredLocked();
  return id;
}

void EpochManager::SweepRetired() {
  MutexLock lock(&mu_);
  SweepRetiredLocked();
}

void EpochManager::SweepRetiredLocked() {
  // Dropping the manager's reference is the free: readers pin only the
  // current snapshot, so a retired snapshot observed at zero pins can
  // never be re-pinned, and any reader still draining holds its own
  // shared_ptr via the Pin (destruction then happens at its release).
  retired_.erase(
      std::remove_if(retired_.begin(), retired_.end(),
                     [](const std::shared_ptr<const EpochSnapshot>& s) {
                       return s->TotalPins() == 0;
                     }),
      retired_.end());
}

std::shared_ptr<const EpochSnapshot> EpochManager::CurrentShared() const {
  MutexLock lock(&mu_);
  return current_;
}

uint64_t EpochManager::current_epoch() const {
  MutexLock lock(&mu_);
  return current_ == nullptr ? 0 : current_->epoch();
}

size_t EpochManager::retired_count() const {
  MutexLock lock(&mu_);
  return retired_.size();
}

}  // namespace netclus
