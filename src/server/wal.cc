#include "server/wal.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/crc32c.h"

namespace netclus {

namespace {

constexpr char kWalMagic[4] = {'N', 'W', 'A', 'L'};
constexpr char kWalHeaderMagic[4] = {'N', 'W', 'H', 'D'};
constexpr char kCheckpointMagic[4] = {'N', 'C', 'K', 'P'};

constexpr uint32_t kWalHeaderBytes = 24;

Status RetryRead(PagedFile* file, PageId id, char* out, int retries) {
  Status s = Status::OK();
  for (int attempt = 0; attempt < retries; ++attempt) {
    s = file->ReadPage(id, out);
    if (!s.IsUnavailable()) return s;
  }
  return s;
}

Status RetryWrite(PagedFile* file, PageId id, const char* data, int retries) {
  Status s = Status::OK();
  for (int attempt = 0; attempt < retries; ++attempt) {
    s = file->WritePage(id, data);
    if (!s.IsUnavailable()) return s;
  }
  return s;
}

Status RetryAllocate(PagedFile* file, int retries) {
  Result<PageId> alloc = file->AllocatePage();
  for (int attempt = 1;
       !alloc.ok() && alloc.status().IsUnavailable() && attempt < retries;
       ++attempt) {
    alloc = file->AllocatePage();
  }
  return alloc.ok() ? Status::OK() : alloc.status();
}

}  // namespace

void EncodeWalRecord(const NetworkUpdate& update, char* out) {
  std::memset(out, 0, MutationWal::kRecordSize);
  std::memcpy(out + 4, kWalMagic, 4);
  out[8] = update.kind == NetworkUpdate::Kind::kAddEdge ? 0 : 1;
  std::memcpy(out + 12, &update.u, 4);
  std::memcpy(out + 16, &update.v, 4);
  std::memcpy(out + 20, &update.value, 8);
  std::memcpy(out + 28, &update.label, 4);
  uint32_t crc = Crc32c(out + 4, MutationWal::kRecordSize - 4);
  std::memcpy(out, &crc, 4);
}

bool DecodeWalRecord(const char* rec, NetworkUpdate* out) {
  if (std::memcmp(rec + 4, kWalMagic, 4) != 0) return false;
  if (rec[8] != 0 && rec[8] != 1) return false;
  if (rec[9] != 0 || rec[10] != 0 || rec[11] != 0) return false;
  uint32_t stored_crc;
  std::memcpy(&stored_crc, rec, 4);
  if (stored_crc != Crc32c(rec + 4, MutationWal::kRecordSize - 4)) {
    return false;
  }
  out->kind = rec[8] == 0 ? NetworkUpdate::Kind::kAddEdge
                          : NetworkUpdate::Kind::kAddPoint;
  std::memcpy(&out->u, rec + 12, 4);
  std::memcpy(&out->v, rec + 16, 4);
  std::memcpy(&out->value, rec + 20, 8);
  std::memcpy(&out->label, rec + 28, 4);
  return true;
}

bool WalSlotIsEmpty(const char* rec) {
  for (uint32_t i = 0; i < MutationWal::kRecordSize; ++i) {
    if (rec[i] != 0) return false;
  }
  return true;
}

void EncodeWalHeader(uint64_t start_seq, char* out) {
  std::memset(out, 0, kWalHeaderBytes);
  std::memcpy(out + 4, kWalHeaderMagic, 4);
  std::memcpy(out + 8, &kWalVersion, 4);
  std::memcpy(out + 12, &start_seq, 8);
  uint32_t crc = Crc32c(out + 4, kWalHeaderBytes - 4);
  std::memcpy(out, &crc, 4);
}

bool DecodeWalHeader(const char* page, uint64_t* start_seq) {
  if (std::memcmp(page + 4, kWalHeaderMagic, 4) != 0) return false;
  uint32_t version;
  std::memcpy(&version, page + 8, 4);
  if (version != kWalVersion) return false;
  if (page[20] != 0 || page[21] != 0 || page[22] != 0 || page[23] != 0) {
    return false;
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, page, 4);
  if (stored_crc != Crc32c(page + 4, kWalHeaderBytes - 4)) return false;
  std::memcpy(start_seq, page + 12, 8);
  return true;
}

Status MutationWal::ReadPageRetry(PageId id, char* out) {
  return RetryRead(file_, id, out, kMaxIoRetries);
}

Status MutationWal::WritePageRetry(PageId id, const char* data) {
  return RetryWrite(file_, id, data, kMaxIoRetries);
}

Result<std::unique_ptr<MutationWal>> MutationWal::Open(PagedFile* file) {
  if (file == nullptr) {
    return Status::InvalidArgument("wal: null file");
  }
  if (file->page_size() < kRecordSize ||
      file->page_size() % kRecordSize != 0 ||
      file->page_size() < kWalHeaderBytes) {
    return Status::InvalidArgument(
        "wal: page size " + std::to_string(file->page_size()) +
        " cannot frame " + std::to_string(kRecordSize) + "-byte records");
  }
  const uint32_t rpp = file->page_size() / kRecordSize;
  auto wal = std::unique_ptr<MutationWal>(new MutationWal(file, rpp));

  std::vector<char> buf(file->page_size());
  if (file->num_pages() == 0) {
    // Fresh log: stamp the header before the first record can exist.
    NETCLUS_RETURN_IF_ERROR(RetryAllocate(file, kMaxIoRetries));
    std::fill(buf.begin(), buf.end(), 0);
    EncodeWalHeader(/*start_seq=*/0, buf.data());
    NETCLUS_RETURN_IF_ERROR(wal->WritePageRetry(0, buf.data()));
    return wal;
  }
  NETCLUS_RETURN_IF_ERROR(wal->ReadPageRetry(0, buf.data()));
  if (!DecodeWalHeader(buf.data(), &wal->start_seq_)) {
    return Status::Corruption(
        "wal: bad header page (torn header rewrite, or a log from before "
        "the header format) — refusing to guess the sequence base");
  }

  // Scan every record slot in order. The first non-valid slot ends the
  // log; a valid record after it means the middle of the log is damaged
  // (bit rot, misdirected write) — that is not recoverable by
  // truncation. Scrub writes are deferred until the scan has proven the
  // damage is a tail, so a Corruption verdict leaves the file untouched.
  constexpr uint64_t kNoInvalid = UINT64_MAX;
  uint64_t first_invalid = kNoInvalid;
  uint64_t dropped = 0;
  std::unordered_map<PageId, std::vector<char>> dirty;  // page -> scrubbed
  for (PageId pid = 1; pid < file->num_pages(); ++pid) {
    NETCLUS_RETURN_IF_ERROR(wal->ReadPageRetry(pid, buf.data()));
    bool page_dirty = false;
    for (uint32_t s = 0; s < rpp; ++s) {
      char* rec = buf.data() + static_cast<size_t>(s) * kRecordSize;
      const uint64_t local = static_cast<uint64_t>(pid - 1) * rpp + s;
      NetworkUpdate u;
      if (DecodeWalRecord(rec, &u)) {
        if (first_invalid != kNoInvalid) {
          return Status::Corruption(
              "wal: valid record at slot " + std::to_string(local) +
              " after invalid slot " + std::to_string(first_invalid) +
              " — damaged log middle, not a torn tail");
        }
        wal->recovery_.records.push_back(u);
        continue;
      }
      if (first_invalid == kNoInvalid) first_invalid = local;
      if (!WalSlotIsEmpty(rec)) {
        ++dropped;
        std::memset(rec, 0, kRecordSize);
        page_dirty = true;
      }
    }
    if (page_dirty) dirty.emplace(pid, buf);
    // The page holding the first invalid slot is the append tail; keep
    // its (scrubbed) image as the shadow so the next append is a pure
    // read-modify-write of memory.
    if (first_invalid != kNoInvalid && first_invalid / rpp == pid - 1) {
      wal->shadow_ = buf;
      wal->shadow_page_ = pid;
    }
  }
  for (const auto& [pid, page] : dirty) {
    NETCLUS_RETURN_IF_ERROR(wal->WritePageRetry(pid, page.data()));
  }
  wal->recovery_.records_dropped = dropped;
  wal->next_slot_ =
      first_invalid == kNoInvalid
          ? static_cast<uint64_t>(file->num_pages() - 1) * rpp
          : first_invalid;
  return wal;
}

Status MutationWal::Append(const NetworkUpdate& update) {
  if (broken_) {
    return Status::Unavailable(
        "wal: log is broken (a failed append could not be scrubbed); "
        "refusing further writes");
  }
  const PageId page =
      static_cast<PageId>(1 + next_slot_ / records_per_page_);
  const uint32_t slot = static_cast<uint32_t>(next_slot_ % records_per_page_);
  if (page >= file_->num_pages()) {
    // Fresh tail page. AllocatePage appends a zeroed page; transient
    // allocation failures are retried like any other page op.
    NETCLUS_RETURN_IF_ERROR(RetryAllocate(file_, kMaxIoRetries));
  }
  if (shadow_page_ != page) {
    std::fill(shadow_.begin(), shadow_.end(), 0);
    if (slot != 0) {
      // Only reachable when Open() did not leave a tail shadow, which
      // it always does for a mid-page tail; read defensively anyway.
      NETCLUS_RETURN_IF_ERROR(ReadPageRetry(page, shadow_.data()));
    }
    shadow_page_ = page;
  }
  char* rec = shadow_.data() + static_cast<size_t>(slot) * kRecordSize;
  EncodeWalRecord(update, rec);
  Status s = WritePageRetry(page, shadow_.data());
  if (s.ok()) {
    ++next_slot_;
    return s;
  }
  // The write failed and may have torn: the backend could hold any
  // prefix of the page. Scrub the slot so a later recovery sees a clean
  // empty tail instead of a half-written record. (Records before this
  // one in the page are rewritten with their existing bytes, so they
  // survive either way.)
  std::memset(rec, 0, kRecordSize);
  Status scrub = WritePageRetry(page, shadow_.data());
  if (!scrub.ok()) broken_ = true;
  return s;
}

Status MutationWal::TruncateTo(uint64_t new_start_seq) {
  if (broken_) {
    return Status::Unavailable("wal: log is broken; refusing compaction");
  }
  if (new_start_seq != next_seq()) {
    return Status::InvalidArgument(
        "wal: compaction must cover the whole log (asked to truncate to " +
        std::to_string(new_start_seq) + ", next sequence is " +
        std::to_string(next_seq()) + ")");
  }
  // 1) Drop the record pages. A failure here leaves the log exactly as
  //    it was (the backend either shrinks or does nothing) — the caller
  //    skips this compaction cycle and retries later. A crash AFTER the
  //    drop but before the header rewrite leaves the old start_seq over
  //    zero records; recovery then replays an empty suffix of the
  //    covering checkpoint, which is correct.
  NETCLUS_RETURN_IF_ERROR(file_->Truncate(1));
  // 2) Stamp the new sequence base.
  std::fill(shadow_.begin(), shadow_.end(), 0);
  EncodeWalHeader(new_start_seq, shadow_.data());
  Status s = WritePageRetry(0, shadow_.data());
  std::fill(shadow_.begin(), shadow_.end(), 0);
  shadow_page_ = kInvalidPageId;
  if (!s.ok()) {
    // The header on disk is in an unknown (possibly torn) state; any
    // further append could land under a base recovery cannot trust.
    broken_ = true;
    return s;
  }
  start_seq_ = new_start_seq;
  next_slot_ = 0;
  return Status::OK();
}

// --- CheckpointStore --------------------------------------------------

CheckpointStore::CheckpointStore(PagedFile* slot_a, PagedFile* slot_b)
    : slots_{slot_a, slot_b} {
  NETCLUS_CHECK(slot_a != nullptr && slot_b != nullptr)
      << "checkpoint store needs both slot files";
}

Result<std::unique_ptr<CheckpointStore>> CheckpointStore::Open(
    const std::string& base_path, uint32_t page_size) {
  if (page_size < kHeadBytes) {
    return Status::InvalidArgument(
        "checkpoint: page size cannot hold the stream head");
  }
  NETCLUS_ASSIGN_OR_RETURN(
      std::unique_ptr<PagedFile> a,
      PagedFile::Open(base_path + ".ckpt.a", page_size, /*truncate=*/false));
  NETCLUS_ASSIGN_OR_RETURN(
      std::unique_ptr<PagedFile> b,
      PagedFile::Open(base_path + ".ckpt.b", page_size, /*truncate=*/false));
  auto store = std::make_unique<CheckpointStore>(a.get(), b.get());
  store->owned_a_ = std::move(a);
  store->owned_b_ = std::move(b);
  return store;
}

Status CheckpointStore::Write(const CheckpointState& state) {
  PagedFile* file = slots_[state.generation % 2];
  const uint32_t page_size = file->page_size();
  const uint64_t total_bytes =
      kHeadBytes + state.edges.size() * uint64_t{kEdgeBytes} +
      state.points.size() * uint64_t{kPointBytes};

  // Serialize the whole stream, then blit it page by page. The head's
  // CRC covers everything after itself, so a torn multi-page write can
  // never parse.
  const uint64_t num_pages = (total_bytes + page_size - 1) / page_size;
  std::vector<char> stream(num_pages * page_size, 0);
  char* p = stream.data();
  std::memcpy(p + 4, kCheckpointMagic, 4);
  std::memcpy(p + 8, &kCheckpointVersion, 4);
  std::memcpy(p + 12, &state.generation, 8);
  std::memcpy(p + 20, &state.covers_seq, 8);
  std::memcpy(p + 28, &state.next_object_id, 8);
  std::memcpy(p + 36, &state.num_nodes, 4);
  const uint64_t num_edges = state.edges.size();
  const uint64_t num_points = state.points.size();
  std::memcpy(p + 40, &num_edges, 8);
  std::memcpy(p + 48, &num_points, 8);
  std::memcpy(p + 56, &total_bytes, 8);
  char* rec = p + kHeadBytes;
  for (const CheckpointEdge& e : state.edges) {
    std::memcpy(rec, &e.u, 4);
    std::memcpy(rec + 4, &e.v, 4);
    std::memcpy(rec + 8, &e.weight, 8);
    std::memcpy(rec + 16, &e.oid, 8);
    rec += kEdgeBytes;
  }
  for (const CheckpointPoint& pt : state.points) {
    std::memcpy(rec, &pt.u, 4);
    std::memcpy(rec + 4, &pt.v, 4);
    std::memcpy(rec + 8, &pt.offset, 8);
    std::memcpy(rec + 16, &pt.label, 4);
    std::memcpy(rec + 20, &pt.oid, 8);
    rec += kPointBytes;
  }
  const uint32_t crc = Crc32c(p + 4, total_bytes - 4);
  std::memcpy(p, &crc, 4);

  // Shape the slot file. A shrink failure is harmless — stale pages past
  // total_bytes are never parsed — so only growth failures abort.
  if (file->num_pages() > num_pages) {
    Status shrink = file->Truncate(static_cast<PageId>(num_pages));
    (void)shrink;  // stale tail pages beyond the stream are inert
  }
  while (file->num_pages() < num_pages) {
    NETCLUS_RETURN_IF_ERROR(RetryAllocate(file, kMaxIoRetries));
  }
  // Body pages first, head page last: until the head (and its CRC)
  // lands, the slot reads as its previous — now partially overwritten,
  // therefore CRC-invalid — content, never as a half-new checkpoint.
  for (uint64_t pid = num_pages; pid-- > 0;) {
    NETCLUS_RETURN_IF_ERROR(
        RetryWrite(file, static_cast<PageId>(pid),
                   stream.data() + pid * page_size, kMaxIoRetries));
  }
  return Status::OK();
}

Status CheckpointStore::ParseSlot(PagedFile* file, CheckpointState* out) {
  if (file->num_pages() == 0) {
    return Status::NotFound("checkpoint slot is empty");
  }
  const uint32_t page_size = file->page_size();
  std::vector<char> head(page_size);
  NETCLUS_RETURN_IF_ERROR(RetryRead(file, 0, head.data(), kMaxIoRetries));
  if (std::memcmp(head.data() + 4, kCheckpointMagic, 4) != 0) {
    return Status::Corruption("checkpoint: bad magic");
  }
  uint32_t version;
  std::memcpy(&version, head.data() + 8, 4);
  if (version != kCheckpointVersion) {
    return Status::Corruption("checkpoint: unsupported version " +
                              std::to_string(version));
  }
  uint64_t num_edges, num_points, total_bytes;
  std::memcpy(&out->generation, head.data() + 12, 8);
  std::memcpy(&out->covers_seq, head.data() + 20, 8);
  std::memcpy(&out->next_object_id, head.data() + 28, 8);
  std::memcpy(&out->num_nodes, head.data() + 36, 4);
  std::memcpy(&num_edges, head.data() + 40, 8);
  std::memcpy(&num_points, head.data() + 48, 8);
  std::memcpy(&total_bytes, head.data() + 56, 8);
  const uint64_t expected_bytes = kHeadBytes + num_edges * kEdgeBytes +
                                  num_points * kPointBytes;
  if (total_bytes != expected_bytes) {
    return Status::Corruption(
        "checkpoint: head announces " + std::to_string(total_bytes) +
        " bytes but its counts imply " + std::to_string(expected_bytes));
  }
  if (total_bytes >
      static_cast<uint64_t>(file->num_pages()) * page_size) {
    return Status::Corruption(
        "checkpoint: stream (" + std::to_string(total_bytes) +
        " bytes) exceeds the slot file — truncated write");
  }
  const uint64_t num_pages = (total_bytes + page_size - 1) / page_size;
  std::vector<char> stream(num_pages * page_size, 0);
  std::memcpy(stream.data(), head.data(), page_size);
  for (uint64_t pid = 1; pid < num_pages; ++pid) {
    NETCLUS_RETURN_IF_ERROR(RetryRead(file, static_cast<PageId>(pid),
                                      stream.data() + pid * page_size,
                                      kMaxIoRetries));
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, stream.data(), 4);
  if (stored_crc != Crc32c(stream.data() + 4, total_bytes - 4)) {
    return Status::Corruption("checkpoint: stream checksum mismatch");
  }
  out->edges.clear();
  out->edges.reserve(num_edges);
  const char* rec = stream.data() + kHeadBytes;
  for (uint64_t i = 0; i < num_edges; ++i) {
    CheckpointEdge e;
    std::memcpy(&e.u, rec, 4);
    std::memcpy(&e.v, rec + 4, 4);
    std::memcpy(&e.weight, rec + 8, 8);
    std::memcpy(&e.oid, rec + 16, 8);
    if (e.u >= out->num_nodes || e.v >= out->num_nodes) {
      return Status::Corruption("checkpoint: edge names a node outside the "
                                "recorded node count");
    }
    out->edges.push_back(e);
    rec += kEdgeBytes;
  }
  out->points.clear();
  out->points.reserve(num_points);
  for (uint64_t i = 0; i < num_points; ++i) {
    CheckpointPoint pt;
    std::memcpy(&pt.u, rec, 4);
    std::memcpy(&pt.v, rec + 4, 4);
    std::memcpy(&pt.offset, rec + 8, 8);
    std::memcpy(&pt.label, rec + 16, 4);
    std::memcpy(&pt.oid, rec + 20, 8);
    if (pt.u >= out->num_nodes || pt.v >= out->num_nodes) {
      return Status::Corruption("checkpoint: point names a node outside the "
                                "recorded node count");
    }
    out->points.push_back(pt);
    rec += kPointBytes;
  }
  return Status::OK();
}

Status CheckpointStore::ReadLatest(CheckpointState* out, bool* found) {
  *found = false;
  for (int slot = 0; slot < 2; ++slot) {
    CheckpointState state;
    Status parsed = ParseSlot(slots_[slot], &state);
    if (parsed.IsIOError()) return parsed;  // can't tell what the slot holds
    if (!parsed.ok()) continue;  // empty or torn: the other slot decides
    if (!*found || state.generation > out->generation) {
      *out = std::move(state);
      *found = true;
    }
  }
  return Status::OK();
}

CheckpointSlotInfo CheckpointStore::InspectSlot(int slot) {
  CheckpointSlotInfo info;
  PagedFile* file = slots_[slot % 2];
  info.present = file->num_pages() > 0;
  if (!info.present) {
    info.detail = "empty";
    return info;
  }
  CheckpointState state;
  Status parsed = ParseSlot(file, &state);
  if (parsed.ok()) {
    info.valid = true;
    info.generation = state.generation;
    info.covers_seq = state.covers_seq;
    info.num_edges = state.edges.size();
    info.num_points = state.points.size();
    info.total_bytes = kHeadBytes + info.num_edges * kEdgeBytes +
                       info.num_points * kPointBytes;
    return info;
  }
  info.detail = parsed.message();
  // Best-effort header fields for the diagnostic line, CRC-unverified.
  std::vector<char> head(file->page_size());
  if (file->ReadPage(0, head.data()).ok() &&
      std::memcmp(head.data() + 4, kCheckpointMagic, 4) == 0) {
    std::memcpy(&info.generation, head.data() + 12, 8);
    std::memcpy(&info.covers_seq, head.data() + 20, 8);
    std::memcpy(&info.num_edges, head.data() + 40, 8);
    std::memcpy(&info.num_points, head.data() + 48, 8);
    std::memcpy(&info.total_bytes, head.data() + 56, 8);
  }
  return info;
}

}  // namespace netclus
