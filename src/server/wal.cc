#include "server/wal.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/crc32c.h"

namespace netclus {

namespace {

constexpr char kWalMagic[4] = {'N', 'W', 'A', 'L'};

}  // namespace

void EncodeWalRecord(const NetworkUpdate& update, char* out) {
  std::memset(out, 0, MutationWal::kRecordSize);
  std::memcpy(out + 4, kWalMagic, 4);
  out[8] = update.kind == NetworkUpdate::Kind::kAddEdge ? 0 : 1;
  std::memcpy(out + 12, &update.u, 4);
  std::memcpy(out + 16, &update.v, 4);
  std::memcpy(out + 20, &update.value, 8);
  std::memcpy(out + 28, &update.label, 4);
  uint32_t crc = Crc32c(out + 4, MutationWal::kRecordSize - 4);
  std::memcpy(out, &crc, 4);
}

bool DecodeWalRecord(const char* rec, NetworkUpdate* out) {
  if (std::memcmp(rec + 4, kWalMagic, 4) != 0) return false;
  if (rec[8] != 0 && rec[8] != 1) return false;
  if (rec[9] != 0 || rec[10] != 0 || rec[11] != 0) return false;
  uint32_t stored_crc;
  std::memcpy(&stored_crc, rec, 4);
  if (stored_crc != Crc32c(rec + 4, MutationWal::kRecordSize - 4)) {
    return false;
  }
  out->kind = rec[8] == 0 ? NetworkUpdate::Kind::kAddEdge
                          : NetworkUpdate::Kind::kAddPoint;
  std::memcpy(&out->u, rec + 12, 4);
  std::memcpy(&out->v, rec + 16, 4);
  std::memcpy(&out->value, rec + 20, 8);
  std::memcpy(&out->label, rec + 28, 4);
  return true;
}

bool WalSlotIsEmpty(const char* rec) {
  for (uint32_t i = 0; i < MutationWal::kRecordSize; ++i) {
    if (rec[i] != 0) return false;
  }
  return true;
}

Status MutationWal::ReadPageRetry(PageId id, char* out) {
  Status s = Status::OK();
  for (int attempt = 0; attempt < kMaxIoRetries; ++attempt) {
    s = file_->ReadPage(id, out);
    if (!s.IsUnavailable()) return s;
  }
  return s;
}

Status MutationWal::WritePageRetry(PageId id, const char* data) {
  Status s = Status::OK();
  for (int attempt = 0; attempt < kMaxIoRetries; ++attempt) {
    s = file_->WritePage(id, data);
    if (!s.IsUnavailable()) return s;
  }
  return s;
}

Result<std::unique_ptr<MutationWal>> MutationWal::Open(PagedFile* file) {
  if (file == nullptr) {
    return Status::InvalidArgument("wal: null file");
  }
  if (file->page_size() < kRecordSize ||
      file->page_size() % kRecordSize != 0) {
    return Status::InvalidArgument(
        "wal: page size " + std::to_string(file->page_size()) +
        " cannot frame " + std::to_string(kRecordSize) + "-byte records");
  }
  const uint32_t rpp = file->page_size() / kRecordSize;
  auto wal = std::unique_ptr<MutationWal>(new MutationWal(file, rpp));

  // Scan every slot in order. The first non-valid slot ends the log; a
  // valid record after it means the middle of the log is damaged (bit
  // rot, misdirected write) — that is not recoverable by truncation.
  // Scrub writes are deferred until the scan has proven the damage is a
  // tail, so a Corruption verdict leaves the file untouched.
  constexpr uint64_t kNoInvalid = UINT64_MAX;
  uint64_t first_invalid = kNoInvalid;
  uint64_t dropped = 0;
  std::unordered_map<PageId, std::vector<char>> dirty;  // page -> scrubbed
  std::vector<char> buf(file->page_size());
  for (PageId pid = 0; pid < file->num_pages(); ++pid) {
    NETCLUS_RETURN_IF_ERROR(wal->ReadPageRetry(pid, buf.data()));
    bool page_dirty = false;
    for (uint32_t s = 0; s < rpp; ++s) {
      char* rec = buf.data() + static_cast<size_t>(s) * kRecordSize;
      const uint64_t global = static_cast<uint64_t>(pid) * rpp + s;
      NetworkUpdate u;
      if (DecodeWalRecord(rec, &u)) {
        if (first_invalid != kNoInvalid) {
          return Status::Corruption(
              "wal: valid record at slot " + std::to_string(global) +
              " after invalid slot " + std::to_string(first_invalid) +
              " — damaged log middle, not a torn tail");
        }
        wal->recovery_.records.push_back(u);
        continue;
      }
      if (first_invalid == kNoInvalid) first_invalid = global;
      if (!WalSlotIsEmpty(rec)) {
        ++dropped;
        std::memset(rec, 0, kRecordSize);
        page_dirty = true;
      }
    }
    if (page_dirty) dirty.emplace(pid, buf);
    // The page holding the first invalid slot is the append tail; keep
    // its (scrubbed) image as the shadow so the next append is a pure
    // read-modify-write of memory.
    if (first_invalid != kNoInvalid && first_invalid / rpp == pid) {
      wal->shadow_ = buf;
      wal->shadow_page_ = pid;
    }
  }
  for (const auto& [pid, page] : dirty) {
    NETCLUS_RETURN_IF_ERROR(wal->WritePageRetry(pid, page.data()));
  }
  wal->recovery_.records_dropped = dropped;
  wal->next_slot_ = first_invalid == kNoInvalid
                        ? static_cast<uint64_t>(file->num_pages()) * rpp
                        : first_invalid;
  return wal;
}

Status MutationWal::Append(const NetworkUpdate& update) {
  if (broken_) {
    return Status::Unavailable(
        "wal: log is broken (a failed append could not be scrubbed); "
        "refusing further writes");
  }
  const PageId page = static_cast<PageId>(next_slot_ / records_per_page_);
  const uint32_t slot = static_cast<uint32_t>(next_slot_ % records_per_page_);
  if (page >= file_->num_pages()) {
    // Fresh tail page. AllocatePage appends a zeroed page; transient
    // allocation failures are retried like any other page op.
    Result<PageId> alloc = file_->AllocatePage();
    for (int attempt = 1;
         !alloc.ok() && alloc.status().IsUnavailable() &&
         attempt < kMaxIoRetries;
         ++attempt) {
      alloc = file_->AllocatePage();
    }
    if (!alloc.ok()) return alloc.status();
  }
  if (shadow_page_ != page) {
    std::fill(shadow_.begin(), shadow_.end(), 0);
    if (slot != 0) {
      // Only reachable when Open() did not leave a tail shadow, which
      // it always does for a mid-page tail; read defensively anyway.
      NETCLUS_RETURN_IF_ERROR(ReadPageRetry(page, shadow_.data()));
    }
    shadow_page_ = page;
  }
  char* rec = shadow_.data() + static_cast<size_t>(slot) * kRecordSize;
  EncodeWalRecord(update, rec);
  Status s = WritePageRetry(page, shadow_.data());
  if (s.ok()) {
    ++next_slot_;
    return s;
  }
  // The write failed and may have torn: the backend could hold any
  // prefix of the page. Scrub the slot so a later recovery sees a clean
  // empty tail instead of a half-written record. (Records before this
  // one in the page are rewritten with their existing bytes, so they
  // survive either way.)
  std::memset(rec, 0, kRecordSize);
  Status scrub = WritePageRetry(page, shadow_.data());
  if (!scrub.ok()) broken_ = true;
  return s;
}

}  // namespace netclus
