// EpochSnapshot: one immutable, self-owning epoch of the served world —
// the CSR graph, the point set, the optional cached clustering, and a
// NetworkView stitched over them.
//
// The query server never lets a query touch the live (mutating) Network.
// Instead the updater thread materializes these snapshots and publishes
// them through the EpochManager (server/epoch_manager.h); queries run
// against the snapshot's SnapshotView + FrozenGraph pair, which is
// frozen forever — every byte a query can reach is immutable after
// construction, so snapshots are shared across worker threads with no
// synchronization beyond the epoch pin.
#ifndef NETCLUS_SERVER_SNAPSHOT_H_
#define NETCLUS_SERVER_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/frozen_graph.h"
#include "graph/network.h"
#include "graph/network_view.h"
#include "index/distance_cache.h"
#include "netclus.h"
#include "server/identity_map.h"

namespace netclus {

/// \brief NetworkView over a frozen (graph, point set) pair.
///
/// Unlike InMemoryNetworkView, which reads through a live Network that
/// may be mutating underneath it, every accessor here resolves against
/// the immutable snapshot: adjacency and edge weights from the
/// FrozenGraph CSR, positions / edge points / groups from the PointSet.
/// The view co-owns both, so it remains valid for as long as any copy
/// of it (or its EpochSnapshot) lives.
class SnapshotView final : public NetworkView {
 public:
  SnapshotView(std::shared_ptr<const FrozenGraph> graph,
               std::shared_ptr<const PointSet> points)
      : graph_(std::move(graph)), points_(std::move(points)) {}

  NodeId num_nodes() const override { return graph_->num_nodes(); }
  PointId num_points() const override { return points_->size(); }
  void ForEachNeighbor(
      NodeId n,
      const std::function<void(NodeId, double)>& fn) const override {
    graph_->ForEachNeighbor(n, fn);
  }
  double EdgeWeight(NodeId a, NodeId b) const override {
    return graph_->EdgeWeight(a, b);
  }
  PointPos PointPosition(PointId p) const override {
    return points_->position(p);
  }
  void GetEdgePoints(NodeId a, NodeId b,
                     std::vector<EdgePoint>* out) const override;
  void ForEachPointGroup(
      const std::function<void(NodeId, NodeId, PointId, uint32_t)>& fn)
      const override;

  const FrozenGraph& frozen() const { return *graph_; }
  const PointSet& points() const { return *points_; }

 private:
  std::shared_ptr<const FrozenGraph> graph_;
  std::shared_ptr<const PointSet> points_;
};

/// \brief One published epoch: id + the immutable world it serves.
///
/// Owned by shared_ptr from the EpochManager and from every in-flight
/// reader batch; the per-slot pin counts below additionally gate the
/// manager's retire-and-free sweep (see epoch_manager.h for the
/// lifecycle). Not copyable or movable — the pin slots are addresses
/// workers hold across the snapshot's whole life.
class EpochSnapshot {
 public:
  /// `clusters` may be null (membership queries then fail NotFound).
  /// `cache` may be null (no distance memoization for this epoch). The
  /// cache keys on durable ObjectIds, so the publisher may hand the
  /// SAME cache to consecutive epochs whenever the metric is unchanged
  /// (point-only mutations) — warm entries survive republication. Any
  /// mutation that changes edge weights must publish a fresh cache.
  /// `ids` is this epoch's ObjectId <-> dense-PointId map; null means
  /// the identity mapping (exact for a standalone snapshot or a boot
  /// epoch, where point ObjectIds are assigned in dense order).
  /// `freed_counter` (shared so it may outlive the manager) is bumped by
  /// the destructor — the observable "drained epoch actually freed"
  /// signal the epoch-swap tests assert on.
  EpochSnapshot(uint64_t epoch, std::shared_ptr<const FrozenGraph> graph,
                std::shared_ptr<const PointSet> points,
                std::shared_ptr<const ClusterOutput> clusters,
                std::shared_ptr<const DistanceCache> cache,
                uint32_t num_pin_slots,
                std::shared_ptr<std::atomic<uint64_t>> freed_counter,
                std::shared_ptr<const IdentityMap> ids = nullptr);
  ~EpochSnapshot();

  EpochSnapshot(const EpochSnapshot&) = delete;
  EpochSnapshot& operator=(const EpochSnapshot&) = delete;

  uint64_t epoch() const { return epoch_; }
  const SnapshotView& view() const { return view_; }
  const FrozenGraph& frozen() const { return view_.frozen(); }
  const PointSet& points() const { return view_.points(); }
  /// Null when the server runs without a cluster_spec.
  const ClusterOutput* clusters() const { return clusters_.get(); }
  /// This epoch's distance cache; null when caching is disabled. Keys
  /// are ObjectId pairs, so entries stay meaningful across epochs and a
  /// metric-preserving republication may share the cache with its
  /// predecessor — batches draining an old epoch then read and write
  /// the same (still correct) distances as the new one.
  const DistanceCache* cache() const { return cache_.get(); }
  /// This epoch's ObjectId <-> dense-PointId map; null means identity.
  const IdentityMap* ids() const { return ids_.get(); }

  uint32_t num_pin_slots() const {
    return static_cast<uint32_t>(pin_slots_.size());
  }

  /// Reader-side pin bookkeeping. The relaxed add is safe because pins
  /// are only ever taken under the EpochManager's publish mutex (the
  /// snapshot is provably alive there); the release/acquire pair makes
  /// a reader's memory operations visible to the sweep that frees the
  /// snapshot after observing its pins at zero.
  void AddPin(uint32_t slot) const {
    pin_slots_[slot].pins.fetch_add(1, std::memory_order_relaxed);
  }
  void ReleasePin(uint32_t slot) const {
    pin_slots_[slot].pins.fetch_sub(1, std::memory_order_release);
  }
  uint64_t TotalPins() const {
    uint64_t total = 0;
    for (const PinSlot& s : pin_slots_) {
      total += s.pins.load(std::memory_order_acquire);
    }
    return total;
  }

 private:
  /// One cache line per worker so concurrent pin/unpin never false-share.
  struct alignas(64) PinSlot {
    mutable std::atomic<uint64_t> pins{0};
  };

  uint64_t epoch_;
  std::shared_ptr<const ClusterOutput> clusters_;
  std::shared_ptr<const DistanceCache> cache_;
  std::shared_ptr<const IdentityMap> ids_;
  SnapshotView view_;  ///< co-owns the graph and the point set
  std::vector<PinSlot> pin_slots_;
  std::shared_ptr<std::atomic<uint64_t>> freed_counter_;
};

}  // namespace netclus

#endif  // NETCLUS_SERVER_SNAPSHOT_H_
