// netclus.h — the single entry point into the clustering library.
//
// Callers describe the run declaratively with a ClusterSpec (an algorithm
// tag plus that algorithm's options) and invoke RunClustering, which
// dispatches to the per-algorithm engine and returns one unified
// ClusterOutput: a flat Clustering, the dendrogram when the algorithm is
// hierarchical, per-run statistics, and the wall time.
//
// The legacy per-algorithm entry points (KMedoidsCluster,
// EpsLinkCluster, DbscanCluster, SingleLinkCluster convenience
// overloads) are [[deprecated]]: every in-tree caller goes through
// RunClustering — MakeSpec() below turns an algorithm's options struct
// into a one-algorithm spec — and netclus-lint bans new uses outside
// tests/compat. The engine overloads taking an explicit FrozenGraph
// remain as the internal dispatch surface RunClustering itself uses.
#ifndef NETCLUS_NETCLUS_H_
#define NETCLUS_NETCLUS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/clustering.h"
#include "core/dbscan.h"
#include "core/dendrogram.h"
#include "core/eps_link.h"
#include "core/kmedoids.h"
#include "core/single_link.h"
#include "graph/network_view.h"
#include "index/distance_index.h"

namespace netclus {

/// The clustering algorithms RunClustering dispatches over.
enum class Algorithm {
  kKMedoids,    ///< partitioning (paper §4.2)
  kEpsLink,     ///< density-based, single traversal per cluster (§4.3.1)
  kSingleLink,  ///< hierarchical, exact dendrogram (§4.4)
  kDbscan,      ///< density-based baseline, range query per point (§4.3)
};

/// Stable lower-case name of `a` ("kmedoids", "epslink", "singlelink",
/// "dbscan") — the vocabulary of netclus_cli's --algo flag.
const char* AlgorithmName(Algorithm a);

/// Inverse of AlgorithmName; InvalidArgument on unknown names.
Result<Algorithm> ParseAlgorithm(const std::string& name);

/// \brief One clustering run, declaratively: which algorithm plus its
/// options. Only the options of the selected algorithm are read.
struct ClusterSpec {
  Algorithm algorithm = Algorithm::kEpsLink;

  KMedoidsOptions kmedoids;
  EpsLinkOptions eps_link;
  SingleLinkOptions single_link;
  DbscanOptions dbscan;

  /// Single-Link only: distance at which the dendrogram is cut into the
  /// flat `ClusterOutput::clustering`. <= 0 falls back to
  /// `single_link.stop_distance` when that is finite, else to a cut at
  /// `single_link.stop_cluster_count` clusters.
  double cut_distance = 0.0;
  /// Single-Link only: flat-cut components smaller than this become
  /// noise (ε-Link's min_sup analogue).
  uint32_t cut_min_size = 1;

  /// Re-verify the run's invariants (core/validate.h) before returning:
  /// k-medoids nearest-medoid tags against independent Dijkstra, ε-Link
  /// ε-connectivity/ε-separation, Single-Link merge monotonicity +
  /// union-find replay, DBSCAN partition axioms. A violation surfaces as
  /// Status::Internal instead of a wrong clustering. Builds configured
  /// with -DNETCLUS_VALIDATE=ON validate every run regardless of this
  /// flag.
  bool validate = false;

  /// Network distance index (src/index/): landmark bounds, sharded
  /// distance cache and nearest-object Voronoi tags. Off by default;
  /// when `index.enable` is set the index is built before the run and
  /// passed to the algorithms that accept an accelerator (k-medoids
  /// swap pruning, DBSCAN range-query pruning). Clustering results are
  /// identical with the index on or off — it only skips provably
  /// irrelevant work — and validate mode re-proves the served bounds
  /// against exact traversals.
  IndexOptions index;
};

/// \brief The unified result of RunClustering.
struct ClusterOutput {
  Algorithm algorithm = Algorithm::kEpsLink;
  /// Flat clustering — every algorithm produces one (Single-Link via the
  /// spec's cut rule).
  Clustering clustering;
  /// Merge history; present for hierarchical algorithms (Single-Link).
  std::optional<Dendrogram> dendrogram;

  // Per-run statistics; populated by the producing algorithm.
  std::vector<PointId> medoids;   ///< k-medoids: final medoid point ids
  double cost = 0.0;              ///< k-medoids: evaluation function R
  KMedoidsStats kmedoids_stats;   ///< k-medoids only
  SingleLinkStats single_link_stats;  ///< Single-Link only
  IndexStats index_stats;         ///< distance index, when spec.index.enable

  /// Wall time of the whole run (including the flat cut).
  double wall_seconds = 0.0;
};

/// One-algorithm ClusterSpec from an options struct — the migration
/// shim that turns a legacy per-algorithm call into the unified entry:
///   KMedoidsCluster(view, opts)  ->  RunClustering(view, MakeSpec(opts))
/// Every other spec field keeps its default (no index, no validate).
ClusterSpec MakeSpec(const KMedoidsOptions& options);
ClusterSpec MakeSpec(const EpsLinkOptions& options);
ClusterSpec MakeSpec(const DbscanOptions& options);
/// Single-Link: `cut_distance` / `cut_min_size` ride along into the
/// spec's flat-cut rule (defaults mean "cut at stop_distance when
/// finite, else at stop_cluster_count clusters").
ClusterSpec MakeSpec(const SingleLinkOptions& options,
                     double cut_distance = 0.0, uint32_t cut_min_size = 1);

/// Runs the algorithm selected by `spec` over `view`. Fallible options
/// surface as the same Status the per-algorithm entry point returns.
/// RunClustering is also the storage-failure boundary: `view.status()` is
/// checked before and after the run, so any I/O error, checksum mismatch
/// or corrupt record a DiskNetworkView swallowed mid-run comes back as
/// that non-OK Status instead of a wrong clustering.
Result<ClusterOutput> RunClustering(const NetworkView& view,
                                    const ClusterSpec& spec);

}  // namespace netclus

#endif  // NETCLUS_NETCLUS_H_
