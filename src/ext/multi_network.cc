#include "ext/multi_network.h"

namespace netclus {

Result<CombinedNetwork> CombineNetworks(
    const Network& a, const Network& b,
    const std::vector<TransitionEdge>& transitions) {
  NodeId offset = a.num_nodes();
  Network net(a.num_nodes() + b.num_nodes());
  for (const Edge& e : a.Edges()) {
    NETCLUS_RETURN_IF_ERROR(net.AddEdge(e.u, e.v, e.weight));
  }
  for (const Edge& e : b.Edges()) {
    NETCLUS_RETURN_IF_ERROR(net.AddEdge(e.u + offset, e.v + offset, e.weight));
  }
  for (const TransitionEdge& t : transitions) {
    if (t.from_a >= a.num_nodes() || t.to_b >= b.num_nodes()) {
      return Status::InvalidArgument("transition endpoint out of range");
    }
    NETCLUS_RETURN_IF_ERROR(net.AddEdge(t.from_a, t.to_b + offset, t.cost));
  }
  return CombinedNetwork(std::move(net), offset);
}

Result<PointSet> CombinePointSets(const CombinedNetwork& combined,
                                  const PointSet& points_a,
                                  const PointSet& points_b) {
  PointSetBuilder builder;
  for (PointId p = 0; p < points_a.size(); ++p) {
    PointPos pos = points_a.position(p);
    builder.Add(pos.u, pos.v, pos.offset, points_a.label(p));
  }
  for (PointId p = 0; p < points_b.size(); ++p) {
    PointPos pos = points_b.position(p);
    builder.Add(combined.MapNodeB(pos.u), combined.MapNodeB(pos.v),
                pos.offset, points_b.label(p));
  }
  return std::move(builder).Build(combined.net);
}

}  // namespace netclus
