#include "ext/time_dependent.h"

#include <cmath>

namespace netclus {

TimeProfile RushHourProfile(double peak_factor) {
  return [peak_factor](double t, NodeId u, NodeId v) {
    (void)u;
    (void)v;
    auto peak = [&](double center) {
      double d = t - center;
      return std::exp(-d * d / (2.0 * 1.2 * 1.2));  // ~1.2h wide peaks
    };
    double congestion = peak(8.5) + peak(17.5);
    return 1.0 + (peak_factor - 1.0) * std::min(1.0, congestion);
  };
}

Result<Network> SnapshotAt(const Network& base, const TimeProfile& profile,
                           double t) {
  Network out(base.num_nodes());
  for (const Edge& e : base.Edges()) {
    double factor = profile(t, e.u, e.v);
    if (!(factor > 0.0)) {
      return Status::InvalidArgument("time profile returned non-positive");
    }
    NETCLUS_RETURN_IF_ERROR(out.AddEdge(e.u, e.v, e.weight * factor));
  }
  return out;
}

Result<PointSet> RescalePoints(const Network& base, const Network& snapshot,
                               const PointSet& points) {
  if (base.num_nodes() != snapshot.num_nodes()) {
    return Status::InvalidArgument("snapshot has a different node set");
  }
  PointSetBuilder builder;
  for (PointId p = 0; p < points.size(); ++p) {
    PointPos pos = points.position(p);
    double w_base = base.EdgeWeight(pos.u, pos.v);
    double w_new = snapshot.EdgeWeight(pos.u, pos.v);
    if (w_base <= 0.0 || w_new <= 0.0) {
      return Status::InvalidArgument("point edge missing in snapshot");
    }
    builder.Add(pos.u, pos.v, pos.offset / w_base * w_new, points.label(p));
  }
  return std::move(builder).Build(snapshot);
}

}  // namespace netclus
