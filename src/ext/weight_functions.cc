#include "ext/weight_functions.h"

#include <algorithm>

namespace netclus {

Result<Network> AggregateWeights(const std::vector<const Network*>& measures,
                                 const WeightAggregate& aggregate) {
  if (measures.empty()) {
    return Status::InvalidArgument("need at least one weight measure");
  }
  const Network& base = *measures.front();
  for (const Network* m : measures) {
    if (m->num_nodes() != base.num_nodes() ||
        m->num_edges() != base.num_edges()) {
      return Status::InvalidArgument("weight measures differ in topology");
    }
  }
  Network out(base.num_nodes());
  std::vector<double> weights(measures.size());
  for (const Edge& e : base.Edges()) {
    for (size_t i = 0; i < measures.size(); ++i) {
      double w = measures[i]->EdgeWeight(e.u, e.v);
      if (w < 0.0) {
        return Status::InvalidArgument("weight measures differ in topology");
      }
      weights[i] = w;
    }
    double combined = aggregate(weights);
    if (!(combined > 0.0)) {
      return Status::InvalidArgument("aggregate produced non-positive weight");
    }
    NETCLUS_RETURN_IF_ERROR(out.AddEdge(e.u, e.v, combined));
  }
  return out;
}

WeightAggregate LinearCombination(std::vector<double> coefficients) {
  return [coefficients = std::move(coefficients)](
             const std::vector<double>& weights) {
    double sum = 0.0;
    size_t n = std::min(coefficients.size(), weights.size());
    for (size_t i = 0; i < n; ++i) sum += coefficients[i] * weights[i];
    return sum;
  };
}

WeightAggregate MaxCombination() {
  return [](const std::vector<double>& weights) {
    return *std::max_element(weights.begin(), weights.end());
  };
}

}  // namespace netclus
