// Aggregate edge-weight functions (paper Section 6).
//
// "The weight on an edge ... could be their Euclidean distance, the time
// to travel ..., the cost (price) of traversing the edge, etc. ... it is
// possible to combine different weight measures with an aggregate
// function." Each measure is a Network over the same topology; the
// aggregate produces one Network to cluster on, giving the analyst
// multiple clustering layers from one dataset.
#ifndef NETCLUS_EXT_WEIGHT_FUNCTIONS_H_
#define NETCLUS_EXT_WEIGHT_FUNCTIONS_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "graph/network.h"

namespace netclus {

/// Combines per-edge weight vectors (one entry per input network, in
/// order) into a single positive weight.
using WeightAggregate = std::function<double(const std::vector<double>&)>;

/// Builds the aggregated network. All inputs must share the exact edge
/// topology (node count and edge set); the aggregate must return a
/// positive weight for every edge.
Result<Network> AggregateWeights(const std::vector<const Network*>& measures,
                                 const WeightAggregate& aggregate);

/// Convenience aggregate: weighted linear combination (coefficients must
/// be as many as the measures; the result must stay positive).
WeightAggregate LinearCombination(std::vector<double> coefficients);

/// Convenience aggregate: per-edge maximum (worst case across measures).
WeightAggregate MaxCombination();

}  // namespace netclus

#endif  // NETCLUS_EXT_WEIGHT_FUNCTIONS_H_
