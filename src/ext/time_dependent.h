// Time-dependent edge weights (paper Section 6).
//
// Edge weights model travel cost that varies with the time of day (e.g.
// rush-hour traffic). A TimeProfile scales each edge's base weight at a
// query time; snapshotting the network at different times and clustering
// each snapshot yields the paper's "time-parameterized clusters".
#ifndef NETCLUS_EXT_TIME_DEPENDENT_H_
#define NETCLUS_EXT_TIME_DEPENDENT_H_

#include <functional>

#include "common/status.h"
#include "graph/network.h"

namespace netclus {

/// Multiplier applied to an edge's base weight at time `t` (hours in
/// [0, 24)); must return a positive value.
using TimeProfile = std::function<double(double t, NodeId u, NodeId v)>;

/// A smooth two-peak commuter profile: congestion multiplies weights by
/// up to `peak_factor` around 8:30 and 17:30.
TimeProfile RushHourProfile(double peak_factor);

/// The network with every weight scaled by `profile` at time `t`.
Result<Network> SnapshotAt(const Network& base, const TimeProfile& profile,
                           double t);

/// Re-anchors `points` (placed on `base`) onto `snapshot`, preserving each
/// point's *fractional* position along its edge — a point halfway down a
/// road stays halfway down it regardless of congestion.
Result<PointSet> RescalePoints(const Network& base, const Network& snapshot,
                               const PointSet& points);

}  // namespace netclus

#endif  // NETCLUS_EXT_TIME_DEPENDENT_H_
