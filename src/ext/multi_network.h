// Clustering across different networks (paper Section 6).
//
// Two networks (e.g. a road network and a canal network) are combined
// into one by adding transition edges between pairs of nodes (e.g.
// piers), each with a transition cost. Shortest paths — and therefore
// clusters — may then span both networks.
#ifndef NETCLUS_EXT_MULTI_NETWORK_H_
#define NETCLUS_EXT_MULTI_NETWORK_H_

#include <vector>

#include "common/status.h"
#include "graph/network.h"

namespace netclus {

/// A connection between node `from_a` of network A and node `to_b` of
/// network B, with traversal cost `cost` (e.g. the time to board a ferry).
struct TransitionEdge {
  NodeId from_a = kInvalidNodeId;
  NodeId to_b = kInvalidNodeId;
  double cost = 0.0;
};

/// \brief A combined network and the id mappings into it.
///
/// Nodes of A keep their ids; nodes of B are shifted by A's node count.
struct CombinedNetwork {
  Network net;
  NodeId offset_b = 0;  ///< node id of B's node 0 inside `net`

  CombinedNetwork(Network n, NodeId off) : net(std::move(n)), offset_b(off) {}

  NodeId MapNodeA(NodeId a) const { return a; }
  NodeId MapNodeB(NodeId b) const { return b + offset_b; }
};

/// Combines `a` and `b` with the given transition edges. Transition costs
/// must be positive; endpoints must exist. Duplicate transitions between
/// the same node pair are rejected.
Result<CombinedNetwork> CombineNetworks(
    const Network& a, const Network& b,
    const std::vector<TransitionEdge>& transitions);

/// Re-anchors point sets of the two source networks onto the combined
/// network (labels are preserved; A's points keep ids before B's after
/// the canonical re-sort).
Result<PointSet> CombinePointSets(const CombinedNetwork& combined,
                                  const PointSet& points_a,
                                  const PointSet& points_b);

}  // namespace netclus

#endif  // NETCLUS_EXT_MULTI_NETWORK_H_
