// Experiment-facing reporting helpers: cluster summaries and the ASCII
// density maps that stand in for the paper's Fig. 11 visualizations.
#ifndef NETCLUS_EVAL_EVALUATION_H_
#define NETCLUS_EVAL_EVALUATION_H_

#include <string>
#include <vector>

#include "core/clustering.h"
#include "graph/network.h"
#include "netclus.h"

namespace netclus {

/// Aggregate shape of a clustering.
struct ClusterSummary {
  int num_clusters = 0;
  PointId num_points = 0;
  PointId noise_points = 0;
  PointId largest_cluster = 0;
  PointId smallest_cluster = 0;  ///< over non-empty clusters
};

ClusterSummary Summarize(const Clustering& clustering);

/// \brief One evaluated clustering run: the unified output plus its
/// summary and, when ground-truth labels are supplied, external quality
/// metrics.
struct EvaluationReport {
  ClusterOutput output;
  ClusterSummary summary;
  bool has_ground_truth = false;  ///< some label != kNoise was supplied
  double ari = 0.0;               ///< Adjusted Rand Index vs. labels
  double nmi = 0.0;               ///< Normalized Mutual Information
  double purity = 0.0;
};

/// Runs `spec` over `view` through RunClustering — the library's single
/// entry point — and scores the result. `truth_labels` may be empty (or
/// all kNoise) when no ground truth exists; metrics are then skipped.
Result<EvaluationReport> EvaluateClustering(
    const NetworkView& view, const ClusterSpec& spec,
    const std::vector<int>& truth_labels = {});

/// Renders a report as the CLI's human-readable block (summary line,
/// algorithm-specific statistics, metrics when available).
std::string FormatReport(const EvaluationReport& report);

/// Interpolated planar position of point `p` (its edge endpoints'
/// coordinates blended by the offset fraction).
std::pair<double, double> PointCoordinates(
    const Network& net, const PointSet& points,
    const std::vector<std::pair<double, double>>& node_coords, PointId p);

/// Renders a rows x cols character map of the clustering: each cell shows
/// the dominant cluster among the points falling in it ('a'..'z' cycling,
/// '.' for noise-dominated, ' ' for empty). The textual counterpart of the
/// paper's Fig. 11 scatter plots.
std::string AsciiClusterMap(
    const Network& net, const PointSet& points,
    const std::vector<std::pair<double, double>>& node_coords,
    const Clustering& clustering, int rows, int cols);

}  // namespace netclus

#endif  // NETCLUS_EVAL_EVALUATION_H_
