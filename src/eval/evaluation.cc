#include "eval/evaluation.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <unordered_map>

#include "eval/metrics.h"

namespace netclus {

ClusterSummary Summarize(const Clustering& clustering) {
  ClusterSummary s;
  s.num_points = static_cast<PointId>(clustering.assignment.size());
  std::unordered_map<int, PointId> sizes;
  for (int id : clustering.assignment) {
    if (id == kNoise) {
      ++s.noise_points;
    } else {
      ++sizes[id];
    }
  }
  s.num_clusters = static_cast<int>(sizes.size());
  s.smallest_cluster = std::numeric_limits<PointId>::max();
  for (const auto& [id, size] : sizes) {
    s.largest_cluster = std::max(s.largest_cluster, size);
    s.smallest_cluster = std::min(s.smallest_cluster, size);
  }
  if (sizes.empty()) s.smallest_cluster = 0;
  return s;
}

Result<EvaluationReport> EvaluateClustering(
    const NetworkView& view, const ClusterSpec& spec,
    const std::vector<int>& truth_labels) {
  Result<ClusterOutput> run = RunClustering(view, spec);
  if (!run.ok()) return run.status();
  EvaluationReport report;
  report.output = std::move(run.value());
  report.summary = Summarize(report.output.clustering);
  report.has_ground_truth =
      std::any_of(truth_labels.begin(), truth_labels.end(),
                  [](int l) { return l != kNoise; });
  if (report.has_ground_truth) {
    report.ari =
        AdjustedRandIndex(truth_labels, report.output.clustering.assignment);
    report.nmi = NormalizedMutualInformation(
        truth_labels, report.output.clustering.assignment);
    report.purity = Purity(truth_labels, report.output.clustering.assignment);
  }
  return report;
}

std::string FormatReport(const EvaluationReport& report) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "algorithm: %s  wall: %.3fs\n"
                "clusters: %d  noise: %u  largest: %u  smallest: %u\n",
                AlgorithmName(report.output.algorithm),
                report.output.wall_seconds, report.summary.num_clusters,
                report.summary.noise_points, report.summary.largest_cluster,
                report.summary.smallest_cluster);
  out += line;
  if (report.output.algorithm == Algorithm::kKMedoids) {
    std::snprintf(line, sizeof(line),
                  "R = %.3f after %u swaps (%u committed)\n",
                  report.output.cost,
                  report.output.kmedoids_stats.attempted_swaps,
                  report.output.kmedoids_stats.committed_swaps);
    out += line;
  }
  if (report.output.dendrogram.has_value()) {
    std::snprintf(line, sizeof(line), "dendrogram: %zu merges\n",
                  report.output.dendrogram->merges().size());
    out += line;
  }
  if (report.has_ground_truth) {
    std::snprintf(line, sizeof(line),
                  "vs. point labels: ARI %.3f, NMI %.3f, purity %.3f\n",
                  report.ari, report.nmi, report.purity);
    out += line;
  }
  return out;
}

std::pair<double, double> PointCoordinates(
    const Network& net, const PointSet& points,
    const std::vector<std::pair<double, double>>& node_coords, PointId p) {
  PointPos pos = points.position(p);
  double w = net.EdgeWeight(pos.u, pos.v);
  double t = w > 0.0 ? pos.offset / w : 0.0;
  const auto& [ux, uy] = node_coords[pos.u];
  const auto& [vx, vy] = node_coords[pos.v];
  return {ux + t * (vx - ux), uy + t * (vy - uy)};
}

std::string AsciiClusterMap(
    const Network& net, const PointSet& points,
    const std::vector<std::pair<double, double>>& node_coords,
    const Clustering& clustering, int rows, int cols) {
  double min_x = std::numeric_limits<double>::infinity(), min_y = min_x;
  double max_x = -min_x, max_y = -min_y;
  for (const auto& [x, y] : node_coords) {
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  if (!(max_x > min_x)) max_x = min_x + 1.0;
  if (!(max_y > min_y)) max_y = min_y + 1.0;

  // Per cell, count points by cluster; render the dominant one.
  std::vector<std::unordered_map<int, uint32_t>> cells(
      static_cast<size_t>(rows) * cols);
  for (PointId p = 0; p < points.size(); ++p) {
    auto [x, y] = PointCoordinates(net, points, node_coords, p);
    int c = std::min(cols - 1, static_cast<int>((x - min_x) / (max_x - min_x) *
                                                cols));
    int r = std::min(rows - 1, static_cast<int>((y - min_y) / (max_y - min_y) *
                                                rows));
    ++cells[static_cast<size_t>(r) * cols + c][clustering.assignment[p]];
  }
  std::string out;
  out.reserve(static_cast<size_t>(rows) * (cols + 1));
  for (int r = rows - 1; r >= 0; --r) {  // y grows upward
    for (int c = 0; c < cols; ++c) {
      const auto& counts = cells[static_cast<size_t>(r) * cols + c];
      if (counts.empty()) {
        out.push_back(' ');
        continue;
      }
      int best_id = kNoise;
      uint32_t best_count = 0;
      for (const auto& [id, count] : counts) {
        if (count > best_count) {
          best_count = count;
          best_id = id;
        }
      }
      out.push_back(best_id == kNoise ? '.'
                                      : static_cast<char>('a' + best_id % 26));
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace netclus
