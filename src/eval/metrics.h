// External clustering quality metrics, used to quantify the paper's
// visual effectiveness comparison (Fig. 11) against generated ground
// truth.
#ifndef NETCLUS_EVAL_METRICS_H_
#define NETCLUS_EVAL_METRICS_H_

#include <vector>

#include "core/clustering.h"

namespace netclus {

/// How noise labels (kNoise) are treated when comparing clusterings.
enum class NoiseHandling {
  /// Every noise point counts as its own singleton cluster.
  kSingletons,
  /// Points marked noise in either clustering are dropped from the
  /// comparison.
  kIgnore,
};

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions, ~0 = random
/// agreement.
double AdjustedRandIndex(const std::vector<int>& a, const std::vector<int>& b,
                         NoiseHandling noise = NoiseHandling::kSingletons);

/// Normalized Mutual Information in [0, 1] (arithmetic-mean
/// normalization).
double NormalizedMutualInformation(
    const std::vector<int>& a, const std::vector<int>& b,
    NoiseHandling noise = NoiseHandling::kSingletons);

/// Fraction of points whose cluster's majority ground-truth label matches
/// their own. Noise points in `predicted` count as errors unless ignored.
double Purity(const std::vector<int>& truth, const std::vector<int>& predicted,
              NoiseHandling noise = NoiseHandling::kSingletons);

/// True when the two assignments induce exactly the same partition
/// (cluster ids may differ; noise must coincide).
bool SamePartition(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace netclus

#endif  // NETCLUS_EVAL_METRICS_H_
