#include "eval/metrics.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>

namespace netclus {

namespace {

// Applies noise handling: returns the index set to compare and rewrites
// noise labels to unique singleton ids when requested.
struct Prepared {
  std::vector<int> a, b;
};

Prepared Prepare(const std::vector<int>& a, const std::vector<int>& b,
                 NoiseHandling noise) {
  Prepared out;
  int next_singleton = -2;  // unique ids below kNoise
  for (size_t i = 0; i < a.size(); ++i) {
    int la = a[i], lb = b[i];
    if (la == kNoise || lb == kNoise) {
      if (noise == NoiseHandling::kIgnore) continue;
      if (la == kNoise) la = next_singleton--;
      if (lb == kNoise) lb = next_singleton--;
    }
    out.a.push_back(la);
    out.b.push_back(lb);
  }
  return out;
}

// Contingency table between two label vectors of equal length.
struct Contingency {
  std::map<std::pair<int, int>, uint64_t> cells;
  std::unordered_map<int, uint64_t> row_sums, col_sums;
  uint64_t total = 0;
};

Contingency BuildContingency(const std::vector<int>& a,
                             const std::vector<int>& b) {
  Contingency c;
  for (size_t i = 0; i < a.size(); ++i) {
    ++c.cells[{a[i], b[i]}];
    ++c.row_sums[a[i]];
    ++c.col_sums[b[i]];
    ++c.total;
  }
  return c;
}

double Choose2(uint64_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

}  // namespace

double AdjustedRandIndex(const std::vector<int>& a, const std::vector<int>& b,
                         NoiseHandling noise) {
  Prepared p = Prepare(a, b, noise);
  if (p.a.size() < 2) return 1.0;
  Contingency c = BuildContingency(p.a, p.b);
  double sum_cells = 0.0, sum_rows = 0.0, sum_cols = 0.0;
  for (const auto& [key, n] : c.cells) sum_cells += Choose2(n);
  for (const auto& [key, n] : c.row_sums) sum_rows += Choose2(n);
  for (const auto& [key, n] : c.col_sums) sum_cols += Choose2(n);
  double total_pairs = Choose2(c.total);
  double expected = sum_rows * sum_cols / total_pairs;
  double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // both partitions trivial
  return (sum_cells - expected) / (max_index - expected);
}

double NormalizedMutualInformation(const std::vector<int>& a,
                                   const std::vector<int>& b,
                                   NoiseHandling noise) {
  Prepared p = Prepare(a, b, noise);
  if (p.a.empty()) return 1.0;
  Contingency c = BuildContingency(p.a, p.b);
  double n = static_cast<double>(c.total);
  double mi = 0.0;
  for (const auto& [key, nij] : c.cells) {
    double pij = nij / n;
    double pi = c.row_sums.at(key.first) / n;
    double pj = c.col_sums.at(key.second) / n;
    mi += pij * std::log(pij / (pi * pj));
  }
  auto entropy = [&](const std::unordered_map<int, uint64_t>& sums) {
    double h = 0.0;
    for (const auto& [key, cnt] : sums) {
      double q = cnt / n;
      h -= q * std::log(q);
    }
    return h;
  };
  double ha = entropy(c.row_sums), hb = entropy(c.col_sums);
  if (ha == 0.0 && hb == 0.0) return 1.0;
  double denom = 0.5 * (ha + hb);
  return denom > 0.0 ? mi / denom : 0.0;
}

double Purity(const std::vector<int>& truth,
              const std::vector<int>& predicted, NoiseHandling noise) {
  // Count, per predicted cluster, the dominant ground-truth label.
  std::unordered_map<int, std::unordered_map<int, uint64_t>> per_cluster;
  uint64_t total = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] == kNoise || truth[i] == kNoise) {
      if (noise == NoiseHandling::kIgnore) continue;
      // A noise prediction can never be "pure": count it in a unique
      // cluster holding only itself vs. its truth label.
      ++total;
      continue;
    }
    ++per_cluster[predicted[i]][truth[i]];
    ++total;
  }
  if (total == 0) return 1.0;
  uint64_t correct = 0;
  for (const auto& [cluster, labels] : per_cluster) {
    uint64_t best = 0;
    for (const auto& [label, count] : labels) best = std::max(best, count);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

bool SamePartition(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<int, int> a_to_b, b_to_a;
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] == kNoise) != (b[i] == kNoise)) return false;
    if (a[i] == kNoise) continue;
    auto [it_ab, ins_ab] = a_to_b.emplace(a[i], b[i]);
    if (!ins_ab && it_ab->second != b[i]) return false;
    auto [it_ba, ins_ba] = b_to_a.emplace(b[i], a[i]);
    if (!ins_ba && it_ba->second != a[i]) return false;
  }
  return true;
}

}  // namespace netclus
