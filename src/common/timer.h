// Wall-clock timing for benchmarks and experiment harnesses.
#ifndef NETCLUS_COMMON_TIMER_H_
#define NETCLUS_COMMON_TIMER_H_

#include <chrono>

namespace netclus {

/// \brief Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace netclus

#endif  // NETCLUS_COMMON_TIMER_H_
