// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding on-disk pages against bit rot, torn writes and
// misdirected I/O. Software table-driven implementation; the polynomial
// matches what SSE4.2 `crc32` instructions and RocksDB/LevelDB compute,
// so files stay verifiable by standard tooling.
#ifndef NETCLUS_COMMON_CRC32C_H_
#define NETCLUS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace netclus {

/// Extends `crc` (the running checksum of preceding bytes, 0 for the first
/// chunk) with `data[0, n)` and returns the new running checksum.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Checksum of a single buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace netclus

#endif  // NETCLUS_COMMON_CRC32C_H_
