// Status and Result<T>: exception-free error handling for the netclus
// library, in the style of RocksDB / Abseil.
#ifndef NETCLUS_COMMON_STATUS_H_
#define NETCLUS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace netclus {

/// \brief Outcome of a fallible library operation.
///
/// Library code never throws; every operation that can fail returns a
/// Status (or a Result<T> when it also produces a value). A Status is
/// either OK or carries an error code plus a human-readable message.
///
/// Status is [[nodiscard]]: silently dropping a fallible operation's
/// outcome is a compile error. Cast to void only where ignoring the
/// error is a documented decision (e.g. destructors).
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kIOError,
    kCorruption,
    kInternal,
    kUnavailable,
    kDeadlineExceeded,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// A transient failure (e.g. an interrupted or short read) that may
  /// succeed if retried; the BufferManager's retry policy keys off this.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// As Unavailable, with a machine-readable backpressure hint: the
  /// caller should wait ~`retry_after_ms` before retrying. Clients read
  /// it via retry_after_ms() instead of parsing the message.
  static Status UnavailableWithRetry(std::string msg, double retry_after_ms) {
    Status s(Code::kUnavailable, std::move(msg));
    s.retry_after_ms_ = retry_after_ms;
    return s;
  }
  /// The operation's deadline passed before it completed: a request shed
  /// at dequeue or a traversal cooperatively cancelled mid-expansion.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }

  /// Structured retry-after hint in milliseconds; only set on statuses
  /// built with UnavailableWithRetry (admission-control rejections).
  std::optional<double> retry_after_ms() const { return retry_after_ms_; }

  /// Renders e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
  std::optional<double> retry_after_ms_;
};

/// \brief A Status or a value of type T.
///
/// Accessing value() on a non-OK result is a programming error (checked
/// in debug and NETCLUS_VALIDATE builds); callers must check ok() first.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success path).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status (error path).
  Result(Status status) : status_(std::move(status)) {
    NETCLUS_DCHECK(!status_.ok()) << "Result(Status) requires a non-OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    NETCLUS_DCHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    NETCLUS_DCHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    NETCLUS_DCHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define NETCLUS_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::netclus::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define NETCLUS_STATUS_CONCAT_(a, b) a##b
#define NETCLUS_STATUS_CONCAT(a, b) NETCLUS_STATUS_CONCAT_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error propagates the Status to the
/// caller, otherwise assigns the value to `lhs`:
///   NETCLUS_ASSIGN_OR_RETURN(PageHandle h, bm->FetchPage(file, page));
#define NETCLUS_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  NETCLUS_ASSIGN_OR_RETURN_IMPL(                                          \
      NETCLUS_STATUS_CONCAT(_netclus_result_, __LINE__), lhs, rexpr)
#define NETCLUS_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value()

}  // namespace netclus

#endif  // NETCLUS_COMMON_STATUS_H_
