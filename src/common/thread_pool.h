// Shared execution layer: a fixed-size thread pool and a blocking
// ParallelFor over an index range.
//
// Determinism contract: ParallelFor runs `body(i, worker)` exactly once
// for every i in [0, n), in an unspecified order and thread assignment.
// Bodies that (a) derive all randomness from the item index i, not from
// the worker or arrival order, and (b) write only to per-index output
// slots, produce results bit-identical to a serial loop — this is the
// invariant every parallel algorithm in netclus is built on and tested
// for (see kmedoids restarts and DBSCAN range queries).
//
// Exceptions thrown by a body are captured and rethrown from ParallelFor
// on the calling thread (first one wins; remaining items may be skipped).
// The pool itself never throws past ParallelFor and stays usable.
#ifndef NETCLUS_COMMON_THREAD_POOL_H_
#define NETCLUS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace netclus {

/// Resolves a user-facing `num_threads` knob: 0 = one thread per hardware
/// core, otherwise the requested count (at least 1).
uint32_t ResolveNumThreads(uint32_t requested);

/// \brief Fixed-size worker pool executing queued tasks.
///
/// Workers are started in the constructor and joined in the destructor;
/// each task receives the stable index of the worker running it (in
/// [0, size())), which callers use to address per-thread workspaces.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(uint32_t num_threads);

  /// Drains queued tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  /// Runs `body(i, worker)` for every i in [0, n); blocks until all items
  /// completed (or an exception aborted the loop). Rethrows the first
  /// exception thrown by a body.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, uint32_t)>& body)
      NETCLUS_EXCLUDES(mu_);

 private:
  void WorkerLoop(uint32_t worker) NETCLUS_EXCLUDES(mu_);

  Mutex mu_{lock_rank::kThreadPoolQueue, "ThreadPool::mu_"};
  CondVar work_available_;
  std::deque<std::function<void(uint32_t)>> queue_ NETCLUS_GUARDED_BY(mu_);
  bool shutting_down_ NETCLUS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Convenience dispatcher: with a null pool (or a single-worker pool) the
/// loop runs inline on the calling thread as worker 0 — the serial
/// reference execution the determinism tests compare against.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, uint32_t)>& body);

}  // namespace netclus

#endif  // NETCLUS_COMMON_THREAD_POOL_H_
