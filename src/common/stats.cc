#include "common/stats.h"

#include <cmath>

namespace netclus {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SlidingWindowMean::Add(double x) {
  window_.push_back(x);
  sum_ += x;
  if (window_.size() > capacity_) {
    sum_ -= window_.front();
    window_.pop_front();
  }
}

double SlidingWindowMean::mean() const {
  if (window_.empty()) return 0.0;
  return sum_ / static_cast<double>(window_.size());
}

}  // namespace netclus
