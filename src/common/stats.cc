#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace netclus {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SlidingWindowMean::Add(double x) {
  window_.push_back(x);
  sum_ += x;
  if (window_.size() > capacity_) {
    sum_ -= window_.front();
    window_.pop_front();
  }
}

double SlidingWindowMean::mean() const {
  if (window_.empty()) return 0.0;
  return sum_ / static_cast<double>(window_.size());
}

void StatsCollector::Add(const std::string& counter, uint64_t delta) {
  MutexLock lock(&mu_);
  counters_[counter] += delta;
}

void StatsCollector::Set(const std::string& counter, uint64_t value) {
  MutexLock lock(&mu_);
  counters_[counter] = value;
}

uint64_t StatsCollector::value(const std::string& counter) const {
  MutexLock lock(&mu_);
  auto it = counters_.find(counter);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> StatsCollector::Snapshot()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    MutexLock lock(&mu_);
    out.assign(counters_.begin(), counters_.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void StatsCollector::Reset() {
  MutexLock lock(&mu_);
  counters_.clear();
}

StatsCollector& StatsCollector::Global() {
  static StatsCollector collector;
  return collector;
}

}  // namespace netclus
