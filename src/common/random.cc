#include "common/random.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace netclus {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::DeriveSeed(uint64_t base, uint64_t stream) {
  if (stream == 0) return base;
  uint64_t sm = base + stream;
  uint64_t derived = SplitMix64(&sm);
  // Guard the (astronomically unlikely) collision with stream 0.
  return derived == base ? derived + 1 : derived;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  NETCLUS_CHECK_GT(bound, 0u) << "NextBounded requires a positive bound";
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t population,
                                                    uint64_t count) {
  NETCLUS_CHECK_LE(count, population)
      << "cannot sample more indices than the population holds";
  std::unordered_set<uint64_t> chosen;
  std::vector<uint64_t> out;
  out.reserve(count);
  for (uint64_t j = population - count; j < population; ++j) {
    uint64_t t = NextBounded(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace netclus
