// Deterministic pseudo-random number generation for reproducible
// experiments. All workloads, generators and randomized algorithms in
// netclus take an explicit Rng so that a seed fully determines a run.
#ifndef NETCLUS_COMMON_RANDOM_H_
#define NETCLUS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace netclus {

/// \brief xoshiro256** PRNG seeded via splitmix64.
///
/// Fast, high-quality, and fully deterministic across platforms (unlike
/// std::mt19937 + std::uniform_*_distribution, whose outputs differ across
/// standard library implementations).
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` using splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives the seed of parallel stream `stream` from a base seed.
  /// Stream 0 is the base seed itself, so a single-stream run is
  /// bit-identical to pre-stream behaviour; streams >= 1 get splitmix64-
  /// decorrelated seeds. Work items that each construct
  /// `Rng(DeriveSeed(seed, item))` draw independent sequences that do not
  /// depend on execution order — the determinism-under-parallelism
  /// contract of the execution layer.
  static uint64_t DeriveSeed(uint64_t base, uint64_t stream);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling (Lemire) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, population) without
  /// replacement (Floyd's algorithm). `count` must be <= population.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t population,
                                                 uint64_t count);

 private:
  uint64_t s_[4];
};

}  // namespace netclus

#endif  // NETCLUS_COMMON_RANDOM_H_
