#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace netclus {

namespace {

void DefaultCheckFailureHandler(const CheckFailure& failure) {
  std::fprintf(stderr, "netclus: %s:%d: %s\n", failure.file, failure.line,
               failure.message.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<CheckFailureHandler> g_handler{&DefaultCheckFailureHandler};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler
                                               : &DefaultCheckFailureHandler);
}

namespace check_internal {

void FailCheck(const CheckFailure& failure) {
  g_handler.load()(failure);
  // A handler that neither throws nor exits cannot resume the failed
  // computation; a check failure is never survivable in place.
  std::abort();
}

}  // namespace check_internal
}  // namespace netclus
