// Annotated synchronization primitives: the only mutex vocabulary in
// netclus (scripts/lint.sh forbids raw std::mutex & friends anywhere
// else under src/).
//
// Two enforcement layers ride on these wrappers, the way
// [[nodiscard]] Status + netclus-lint prove error-handling discipline:
//
//   1. Compile time — the NETCLUS_* macros below expand to clang's
//      Thread Safety Analysis attributes, so `clang++ -Wthread-safety
//      -Werror` (the default clang configure; gated by
//      scripts/check_tsa.sh) rejects any access to NETCLUS_GUARDED_BY
//      state without its lock, any NETCLUS_REQUIRES callee reached from
//      an unlocked caller, and any double-acquire. Under gcc the macros
//      expand to nothing: zero cost, identical semantics.
//   2. Debug runtime — every Mutex carries a lock rank and a name. A
//      thread may only acquire a mutex whose rank is STRICTLY greater
//      than every rank it already holds (so same-rank reacquisition is
//      also rejected); any out-of-order acquisition — the building
//      block of every lock-cycle deadlock — trips NETCLUS_CHECK naming
//      both locks. The detector is on by default in debug and
//      NETCLUS_VALIDATE builds and off in release;
//      SetLockRankChecking() overrides (tests force it on).
//
// The full lock hierarchy — which subsystem's locks may be held while
// acquiring which others, and why — is documented in DESIGN.md §14;
// the lock_rank:: constants below are its machine-readable form.
//
// Wrapper bodies are NETCLUS_NO_THREAD_SAFETY_ANALYSIS: this file is
// the trusted base that translates annotated operations into
// std::mutex calls, so analyzing its internals against its own
// annotations would only produce noise (the same convention as
// abseil's Mutex).
#ifndef NETCLUS_COMMON_MUTEX_H_
#define NETCLUS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

// ---------------------------------------------------------------------
// Thread Safety Analysis attribute macros (clang only; empty elsewhere).
// ---------------------------------------------------------------------
#if defined(__clang__) && !defined(SWIG)
#define NETCLUS_TSA_ENABLED 1
#define NETCLUS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NETCLUS_TSA_ENABLED 0
#define NETCLUS_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define NETCLUS_CAPABILITY(x) NETCLUS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define NETCLUS_SCOPED_CAPABILITY NETCLUS_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the named mutex.
#define NETCLUS_GUARDED_BY(x) NETCLUS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose pointee is guarded by the named mutex.
#define NETCLUS_PT_GUARDED_BY(x) NETCLUS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that may only be called with the listed mutexes held.
#define NETCLUS_REQUIRES(...) \
  NETCLUS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that acquires the listed mutexes (or `this` capability when
/// the list is empty) and does not release them before returning.
#define NETCLUS_ACQUIRE(...) \
  NETCLUS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the listed mutexes (or `this` capability).
#define NETCLUS_RELEASE(...) \
  NETCLUS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when returning `ret`.
#define NETCLUS_TRY_ACQUIRE(ret, ...) \
  NETCLUS_THREAD_ANNOTATION_(try_acquire_capability(ret, ##__VA_ARGS__))

/// Function that must NOT be called with the listed mutexes held (it
/// acquires them itself — the self-deadlock tripwire).
#define NETCLUS_EXCLUDES(...) \
  NETCLUS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the named mutex.
#define NETCLUS_RETURN_CAPABILITY(x) \
  NETCLUS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Reserved for the
/// wrapper internals below; library code must not need it.
#define NETCLUS_NO_THREAD_SAFETY_ANALYSIS \
  NETCLUS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace netclus {

// ---------------------------------------------------------------------
// The lock hierarchy. Ranks strictly increase along every permitted
// acquisition chain; a thread holding rank r may only acquire ranks
// > r. Gaps are deliberate room for future subsystems (sharding,
// transport). Prose rationale: DESIGN.md §14.
// ---------------------------------------------------------------------
namespace lock_rank {
/// ThreadPool task queue. Held only to push/pop closures; never while
/// running one, so pool tasks may acquire anything.
inline constexpr int kThreadPoolQueue = 10;
/// Per-ParallelFor completion state (pending count + first error).
inline constexpr int kParallelForState = 20;
/// TcpServer connection table + transport counters. Below the query
/// admission queue so the front end could legally hold it across a
/// Submit (it doesn't today — the lock is never held across blocking
/// socket or queue operations — but the rank keeps that door open).
inline constexpr int kNetServer = 25;
/// QueryServer query admission queue.
inline constexpr int kQueryServerQueue = 30;
/// QueryServer mutation queue + flush bookkeeping.
inline constexpr int kQueryServerUpdate = 31;
/// QueryServer deadline-watchdog heap.
inline constexpr int kQueryServerDeadline = 32;
/// EpochManager publish/pin mutex (see DESIGN.md §14 for why it sits
/// between the serving queues and the per-worker resource locks).
inline constexpr int kEpochManager = 40;
/// WorkspacePool free list (leased from inside pool workers).
inline constexpr int kWorkspacePool = 50;
/// DistanceCache shard stripes (innermost lock of the query hot path).
inline constexpr int kDistanceCacheShard = 60;
/// DiskNetworkView sticky-status slot (leaf of the disk read path).
inline constexpr int kDiskViewStatus = 70;
/// Stats-delta publication locks (DistanceIndex / QueryServer
/// PublishStats), held while flushing into the global registry.
inline constexpr int kStatsPublish = 80;
/// QueryServer serving-statistics lock (inner to the admission queue:
/// Submit records rejections while still holding the queue lock).
inline constexpr int kServerStats = 90;
/// Process-wide StatsCollector registry — the global leaf: anything may
/// flush counters into it, so nothing may be acquired beyond it.
inline constexpr int kStatsRegistry = 100;
}  // namespace lock_rank

namespace lock_rank_internal {
/// Checks `rank` against the calling thread's held set and records the
/// acquisition. Trips NETCLUS_CHECK (naming both locks) on a rank that
/// is not strictly greater than everything held. No-op (no recording)
/// while checking is disabled.
void RankCheckAcquire(const void* mu, int rank, const char* name);
/// Forgets the most recent recorded acquisition of `mu` by this thread.
/// Always scans, even when checking is disabled, so toggling the
/// detector mid-hold cannot strand entries.
void RankCheckRelease(const void* mu);
}  // namespace lock_rank_internal

/// Enables/disables the runtime lock-rank detector process-wide and
/// returns the previous setting. Default: on when NETCLUS_DCHECK is on
/// (debug / NETCLUS_VALIDATE builds), off in plain release.
bool SetLockRankChecking(bool enabled);
bool LockRankCheckingEnabled();

/// Locks the calling thread currently holds according to the detector
/// (0 when checking is disabled). Test visibility only.
size_t HeldLockCountForTesting();

/// \brief Annotated exclusive mutex with a lock rank and a name.
///
/// Construction is allocation-free; `name` must outlive the mutex (use
/// a string literal). Not copyable or movable — guarded members refer
/// to it by address.
class NETCLUS_CAPABILITY("mutex") Mutex {
 public:
  /// Every Mutex picks its place in the global hierarchy (a lock_rank::
  /// constant — or any int in tests) and names itself for diagnostics.
  Mutex(int rank, const char* name) : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NETCLUS_ACQUIRE() NETCLUS_NO_THREAD_SAFETY_ANALYSIS {
    lock_rank_internal::RankCheckAcquire(this, rank_, name_);
    mu_.lock();
  }

  void Unlock() NETCLUS_RELEASE() NETCLUS_NO_THREAD_SAFETY_ANALYSIS {
    lock_rank_internal::RankCheckRelease(this);
    mu_.unlock();
  }

  /// Non-blocking acquire. A TryLock that would violate the rank order
  /// still trips the detector: a try-lock only avoids deadlocking
  /// itself, not the cycle it completes for everyone else.
  bool TryLock() NETCLUS_TRY_ACQUIRE(true) NETCLUS_NO_THREAD_SAFETY_ANALYSIS {
    lock_rank_internal::RankCheckAcquire(this, rank_, name_);
    if (mu_.try_lock()) return true;
    lock_rank_internal::RankCheckRelease(this);
    return false;
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const int rank_;
  const char* const name_;
};

/// \brief RAII lock for a Mutex, with optional early release.
class NETCLUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) NETCLUS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release; the destructor then does nothing. The relock
  /// counterpart is deliberately absent — re-acquisition through a
  /// scoped object hides a fresh rank check behind an innocent-looking
  /// call; take a new MutexLock instead.
  void Unlock() NETCLUS_RELEASE() NETCLUS_NO_THREAD_SAFETY_ANALYSIS {
    held_ = false;
    mu_->Unlock();
  }

  ~MutexLock() NETCLUS_RELEASE() {
    if (held_) mu_->Unlock();
  }

 private:
  Mutex* const mu_;
  bool held_ = true;
};

/// \brief Condition variable paired with Mutex.
///
/// There is deliberately no predicate-lambda Wait overload: clang's
/// analysis cannot see a lock held across a lambda boundary, so wait
/// predicates are written as explicit `while (!cond) cv.Wait(&mu);`
/// loops in the annotated caller, where every guarded access is
/// visibly under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu` and blocks until notified (or a spurious
  /// wake); re-acquires `*mu` before returning. The rank detector keeps
  /// the mutex on the thread's held stack across the wait — the thread
  /// is blocked, and on wake it owns the lock again, so REQUIRES
  /// semantics hold throughout.
  void Wait(Mutex* mu) NETCLUS_REQUIRES(mu) NETCLUS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// As Wait, but also returns once ~`seconds` elapse without a
  /// notification (callers re-check their predicate either way).
  void WaitFor(Mutex* mu, double seconds) NETCLUS_REQUIRES(mu)
      NETCLUS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait_for(native, std::chrono::duration<double>(seconds));
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace netclus

#endif  // NETCLUS_COMMON_MUTEX_H_
