#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace netclus {

uint32_t ResolveNumThreads(uint32_t requested) {
  if (requested != 0) return requested;
  uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  uint32_t n = std::max<uint32_t>(1, num_threads);
  workers_.reserve(n);
  for (uint32_t w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(uint32_t worker) {
  for (;;) {
    std::function<void(uint32_t)> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(&mu_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker);
  }
}

namespace {

// Shared state of one ParallelFor call: a work-stealing index counter plus
// completion/error bookkeeping. Lives on the caller's stack; drain tasks
// hold a reference only while the caller is blocked in Wait().
struct ForLoopState {
  explicit ForLoopState(size_t total) : n(total) {}

  void Drain(uint32_t worker,
             const std::function<void(size_t, uint32_t)>& body) {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        body(i, worker);
      } catch (...) {
        MutexLock lock(&mu);
        if (!error) error = std::current_exception();
        // Stop handing out further items; in-flight ones finish.
        next.store(n, std::memory_order_relaxed);
        break;
      }
    }
  }

  void TaskDone() {
    MutexLock lock(&mu);
    if (--pending_tasks == 0) done.NotifyOne();
  }

  const size_t n;
  std::atomic<size_t> next{0};
  Mutex mu{lock_rank::kParallelForState, "ForLoopState::mu"};
  CondVar done;
  size_t pending_tasks NETCLUS_GUARDED_BY(mu) = 0;
  std::exception_ptr error NETCLUS_GUARDED_BY(mu);
};

}  // namespace

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, uint32_t)>& body) {
  if (n == 0) return;
  ForLoopState state(n);
  // One drain task per worker; each pulls indices until the counter runs
  // out, so load-imbalanced items (e.g. k-medoids restarts of different
  // swap counts) still pack tightly.
  size_t tasks = std::min<size_t>(size(), n);
  {
    // pending_tasks is guarded by state.mu, not the pool's queue lock;
    // it must be initialized under its own mutex before any drain task
    // can observe it. (The thread-safety analysis caught the original
    // version writing it under mu_.)
    MutexLock lock(&state.mu);
    state.pending_tasks = tasks;
  }
  {
    MutexLock lock(&mu_);
    for (size_t t = 0; t < tasks; ++t) {
      queue_.emplace_back([&state, &body](uint32_t worker) {
        state.Drain(worker, body);
        state.TaskDone();
      });
    }
  }
  work_available_.NotifyAll();
  std::exception_ptr error;
  {
    MutexLock lock(&state.mu);
    while (state.pending_tasks != 0) state.done.Wait(&state.mu);
    error = state.error;
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, uint32_t)>& body) {
  if (pool != nullptr && pool->size() > 1) {
    pool->ParallelFor(n, body);
    return;
  }
  for (size_t i = 0; i < n; ++i) body(i, 0);
}

}  // namespace netclus
