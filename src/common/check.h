// Runtime assertion framework: NETCLUS_CHECK and friends.
//
// The library's invariants fall into two classes. Programming errors —
// "this can only fire if netclus itself is buggy" — are enforced with the
// macros here, which stay active in release builds (unlike assert()),
// render the failed condition plus streamed context, and route through a
// pluggable failure handler so tests can observe failures without dying.
// Fallible conditions (I/O, user input) are NOT checks; they return
// Status (see common/status.h).
//
//   NETCLUS_CHECK(page < num_pages) << "file " << file_id;
//   NETCLUS_CHECK_LE(count, population);
//   NETCLUS_CHECK_OK(bm->FlushAll());
//   NETCLUS_DCHECK(IsHeap(q));   // debug / NETCLUS_VALIDATE builds only
//
// The default failure handler prints "check failed at file:line: message"
// to stderr and aborts. SetCheckFailureHandler installs a replacement; a
// handler may throw to unwind out of the failed check (how the tests
// assert on failures), but if it returns normally the process aborts —
// execution never continues past a failed check.
#ifndef NETCLUS_COMMON_CHECK_H_
#define NETCLUS_COMMON_CHECK_H_

#include <memory>
#include <sstream>
#include <string>

namespace netclus {

/// One failed check, as delivered to the failure handler.
struct CheckFailure {
  const char* file = nullptr;
  int line = 0;
  /// Fully rendered message: the failed condition (with operand values
  /// for the comparison checks) followed by any streamed context.
  std::string message;
};

/// Handler invoked on every failed check. Must either throw or not
/// return meaningfully: a handler that returns normally is followed by
/// std::abort().
using CheckFailureHandler = void (*)(const CheckFailure&);

/// Installs `handler` (nullptr restores the default stderr+abort handler)
/// and returns the previously installed one. Thread-safe.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

namespace check_internal {

/// Invokes the installed failure handler; aborts if it returns.
[[noreturn]] void FailCheck(const CheckFailure& failure);

/// Accumulates the streamed context of one failing check and fires the
/// failure handler when destroyed at the end of the full expression. The
/// destructor propagates exceptions a test-installed handler throws,
/// hence noexcept(false).
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* prefix)
      : file_(file), line_(line) {
    stream_ << prefix;
  }
  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;
  ~CheckFailureStream() noexcept(false) {
    CheckFailure failure;
    failure.file = file_;
    failure.line = line_;
    failure.message = stream_.str();
    FailCheck(failure);
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the ostream& so the failure arm of NETCLUS_CHECK's ternary
/// has type void. operator& binds looser than operator<<, so the user's
/// streamed context attaches to the stream first.
struct Voidify {
  void operator&(std::ostream&) {}
};

/// Renders "<expr> (<a> vs. <b>)" for a failed comparison check.
template <typename A, typename B>
std::unique_ptr<std::string> MakeOpFailure(const A& a, const B& b,
                                           const char* expr) {
  std::ostringstream os;
  os << expr << " (" << a << " vs. " << b << ") ";
  return std::make_unique<std::string>(os.str());
}

// One CheckXxImpl per comparison; returns null on success, the rendered
// failure prefix otherwise. Operands are evaluated exactly once.
#define NETCLUS_CHECK_DEFINE_OP_IMPL_(name, op)                       \
  template <typename A, typename B>                                   \
  std::unique_ptr<std::string> Check##name##Impl(const A& a, const B& b, \
                                                 const char* expr) {  \
    if (a op b) return nullptr;                                       \
    return MakeOpFailure(a, b, expr);                                 \
  }
NETCLUS_CHECK_DEFINE_OP_IMPL_(EQ, ==)
NETCLUS_CHECK_DEFINE_OP_IMPL_(NE, !=)
NETCLUS_CHECK_DEFINE_OP_IMPL_(LT, <)
NETCLUS_CHECK_DEFINE_OP_IMPL_(LE, <=)
NETCLUS_CHECK_DEFINE_OP_IMPL_(GT, >)
NETCLUS_CHECK_DEFINE_OP_IMPL_(GE, >=)
#undef NETCLUS_CHECK_DEFINE_OP_IMPL_

/// Success test for NETCLUS_CHECK_OK: anything with ok() and ToString()
/// (Status; for a Result pass result.status()).
template <typename StatusLike>
std::unique_ptr<std::string> CheckOkImpl(const StatusLike& s,
                                         const char* expr) {
  if (s.ok()) return nullptr;
  return std::make_unique<std::string>(std::string(expr) + " = " +
                                       s.ToString() + " ");
}

}  // namespace check_internal
}  // namespace netclus

/// Always-on assertion. On failure, renders the condition plus any
/// streamed context and fires the failure handler (default: abort).
#define NETCLUS_CHECK(condition)                                     \
  (condition) ? (void)0                                              \
              : ::netclus::check_internal::Voidify() &               \
                    ::netclus::check_internal::CheckFailureStream(   \
                        __FILE__, __LINE__,                          \
                        "check failed: " #condition " ")             \
                        .stream()

// Comparison checks render both operand values on failure. The while
// loop runs its body at most once: FailCheck never returns normally.
#define NETCLUS_CHECK_OP_(name, a, b)                                  \
  while (std::unique_ptr<std::string> _netclus_check_failure =         \
             ::netclus::check_internal::Check##name##Impl(             \
                 (a), (b), "check failed: " #a " " #name " " #b))      \
  ::netclus::check_internal::Voidify() &                               \
      ::netclus::check_internal::CheckFailureStream(                   \
          __FILE__, __LINE__, _netclus_check_failure->c_str())         \
          .stream()

#define NETCLUS_CHECK_EQ(a, b) NETCLUS_CHECK_OP_(EQ, a, b)
#define NETCLUS_CHECK_NE(a, b) NETCLUS_CHECK_OP_(NE, a, b)
#define NETCLUS_CHECK_LT(a, b) NETCLUS_CHECK_OP_(LT, a, b)
#define NETCLUS_CHECK_LE(a, b) NETCLUS_CHECK_OP_(LE, a, b)
#define NETCLUS_CHECK_GT(a, b) NETCLUS_CHECK_OP_(GT, a, b)
#define NETCLUS_CHECK_GE(a, b) NETCLUS_CHECK_OP_(GE, a, b)

/// Checks that a Status(-like) expression is OK; on failure the rendered
/// message includes Status::ToString().
#define NETCLUS_CHECK_OK(expr)                                         \
  while (std::unique_ptr<std::string> _netclus_check_failure =         \
             ::netclus::check_internal::CheckOkImpl(                   \
                 (expr), "check failed: " #expr))                      \
  ::netclus::check_internal::Voidify() &                               \
      ::netclus::check_internal::CheckFailureStream(                   \
          __FILE__, __LINE__, _netclus_check_failure->c_str())         \
          .stream()

/// Debug assertion: active in !NDEBUG builds and in NETCLUS_VALIDATE
/// builds, compiled to nothing (operands type-checked, never evaluated)
/// otherwise.
#if !defined(NDEBUG) || defined(NETCLUS_VALIDATE)
#define NETCLUS_DCHECK_IS_ON() 1
#define NETCLUS_DCHECK(condition) NETCLUS_CHECK(condition)
#else
#define NETCLUS_DCHECK_IS_ON() 0
#define NETCLUS_DCHECK(condition) NETCLUS_CHECK(true || (condition))
#endif

#endif  // NETCLUS_COMMON_CHECK_H_
