#include "common/mutex.h"

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace netclus {
namespace {

struct HeldLock {
  const void* mu;
  int rank;
  const char* name;
};

// Per-thread acquisition stack, newest last. Small (a thread holds at
// most a handful of locks) so linear scans beat any indexed structure.
thread_local std::vector<HeldLock> t_held;

std::atomic<bool> g_rank_checking{NETCLUS_DCHECK_IS_ON() != 0};

}  // namespace

bool SetLockRankChecking(bool enabled) {
  return g_rank_checking.exchange(enabled, std::memory_order_relaxed);
}

bool LockRankCheckingEnabled() {
  return g_rank_checking.load(std::memory_order_relaxed);
}

size_t HeldLockCountForTesting() { return t_held.size(); }

namespace lock_rank_internal {

void RankCheckAcquire(const void* mu, int rank, const char* name) {
  if (!g_rank_checking.load(std::memory_order_relaxed)) return;
  const HeldLock* highest = nullptr;
  for (const HeldLock& held : t_held) {
    if (highest == nullptr || held.rank >= highest->rank) highest = &held;
  }
  // The check runs before the underlying lock is taken, so a throwing
  // check-failure handler (tests) leaves the mutex unowned and the
  // stack untouched.
  if (highest != nullptr) {
    NETCLUS_CHECK(rank > highest->rank)
        << "lock-rank violation: acquiring \"" << name << "\" (rank " << rank
        << ") while holding \"" << highest->name << "\" (rank "
        << highest->rank
        << "); a thread may only acquire strictly increasing ranks — see the "
           "lock hierarchy in DESIGN.md section 14";
  }
  t_held.push_back(HeldLock{mu, rank, name});
}

void RankCheckRelease(const void* mu) {
  // Scan newest-first and always (even with checking disabled): an
  // entry recorded while checking was on must not outlive its release.
  for (size_t i = t_held.size(); i > 0; --i) {
    if (t_held[i - 1].mu == mu) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
}

}  // namespace lock_rank_internal
}  // namespace netclus
