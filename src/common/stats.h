// Streaming summary statistics used by generators, benches, and the
// interesting-level detector, plus the process-wide named-counter
// registry subsystem counters flow into.
#ifndef NETCLUS_COMMON_STATS_H_
#define NETCLUS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace netclus {

/// \brief Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Mean over a sliding window of the last `capacity` samples.
///
/// Backs the paper's Section 5.3 detector: the average of the last K merge
/// distance *differences* is maintained incrementally.
class SlidingWindowMean {
 public:
  explicit SlidingWindowMean(size_t capacity) : capacity_(capacity) {}

  void Add(double x);
  size_t size() const { return window_.size(); }
  bool full() const { return window_.size() == capacity_; }
  /// Mean of the samples currently in the window; 0 when empty.
  double mean() const;

 private:
  size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

/// \brief Thread-safe registry of named monotonic counters.
///
/// Subsystems publish operational counters here (the distance index's
/// cache hits/misses/evictions above all) so tools and tests can read
/// one aggregate view instead of threading per-component stats structs
/// around. Counters are created on first Add and never removed (except
/// by Reset). Publishing is coarse — components accumulate locally and
/// flush once per run — so the mutex is never on a hot path.
class StatsCollector {
 public:
  /// Adds `delta` to `counter`, creating it at zero first if needed.
  void Add(const std::string& counter, uint64_t delta) NETCLUS_EXCLUDES(mu_);

  /// Overwrites `counter` with `value` — gauge semantics for
  /// point-in-time readings (queue depth) that must not accumulate
  /// across flushes the way the monotonic counters above do.
  void Set(const std::string& counter, uint64_t value) NETCLUS_EXCLUDES(mu_);

  /// Current value of `counter`; 0 when it was never added to.
  uint64_t value(const std::string& counter) const NETCLUS_EXCLUDES(mu_);

  /// All counters as (name, value), sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const
      NETCLUS_EXCLUDES(mu_);

  /// Drops every counter (tests only).
  void Reset() NETCLUS_EXCLUDES(mu_);

  /// The process-wide collector RunClustering publishes into.
  static StatsCollector& Global();

 private:
  // Rank kStatsRegistry: the global leaf of the lock hierarchy — every
  // subsystem may flush into the registry while holding its own
  // publication lock, so nothing may be acquired beyond this one.
  mutable Mutex mu_{lock_rank::kStatsRegistry, "StatsCollector::mu_"};
  std::unordered_map<std::string, uint64_t> counters_ NETCLUS_GUARDED_BY(mu_);
};

}  // namespace netclus

#endif  // NETCLUS_COMMON_STATS_H_
