// Streaming summary statistics used by generators, benches, and the
// interesting-level detector.
#ifndef NETCLUS_COMMON_STATS_H_
#define NETCLUS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>

namespace netclus {

/// \brief Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Mean over a sliding window of the last `capacity` samples.
///
/// Backs the paper's Section 5.3 detector: the average of the last K merge
/// distance *differences* is maintained incrementally.
class SlidingWindowMean {
 public:
  explicit SlidingWindowMean(size_t capacity) : capacity_(capacity) {}

  void Add(double x);
  size_t size() const { return window_.size(); }
  bool full() const { return window_.size() == capacity_; }
  /// Mean of the samples currently in the window; 0 when empty.
  double mean() const;

 private:
  size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

}  // namespace netclus

#endif  // NETCLUS_COMMON_STATS_H_
