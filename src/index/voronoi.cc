#include "index/voronoi.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "graph/dijkstra.h"
#include "graph/frozen_graph.h"

namespace netclus {

namespace {

// A (distance, node, source-object) label of the 2-best multi-source
// Dijkstra.
struct Label {
  double dist;
  NodeId node;
  PointId src;
  bool operator>(const Label& other) const { return dist > other.dist; }
};

void PushLabel(std::vector<Label>* heap, double dist, NodeId node,
               PointId src) {
  heap->push_back(Label{dist, node, src});
  std::push_heap(heap->begin(), heap->end(), std::greater<>());
  ++LocalTraversalCounters().heap_pushes;
}

Label PopLabel(std::vector<Label>* heap) {
  std::pop_heap(heap->begin(), heap->end(), std::greater<>());
  Label top = heap->back();
  heap->pop_back();
  ++LocalTraversalCounters().heap_pops;
  return top;
}

}  // namespace

// Templated over the traversal substrate: Graph is NetworkView (legacy
// virtual dispatch) or FrozenGraph (inline CSR walk). Point data always
// comes from the view; only the relax step touches `graph`.
template <typename Graph>
Result<VoronoiPrecompute> VoronoiPrecompute::BuildImpl(const NetworkView& view,
                                                       const Graph& graph) {
  VoronoiPrecompute vp;
  const NodeId num_nodes = view.num_nodes();
  vp.first_id_.assign(num_nodes, kInvalidPointId);
  vp.first_d_.assign(num_nodes, kInfDist);
  vp.second_id_.assign(num_nodes, kInvalidPointId);
  vp.second_d_.assign(num_nodes, kInfDist);

  // Seed with at most four labels per point-bearing edge: the two
  // smallest-offset points toward u and the two largest toward v (group
  // points are ordered by ascending offset from u, the smaller id).
  std::vector<Label> heap;
  std::vector<EdgePoint> pts;
  view.ForEachPointGroup([&](NodeId u, NodeId v, PointId /*first*/,
                             uint32_t count) {
    view.GetEdgePoints(u, v, &pts);
    NETCLUS_CHECK_EQ(pts.size(), count);
    double w = view.EdgeWeight(u, v);
    NETCLUS_CHECK_GE(w, 0.0);
    uint32_t seeds = std::min<uint32_t>(2, count);
    for (uint32_t i = 0; i < seeds; ++i) {
      PushLabel(&heap, pts[i].offset, u, pts[i].id);
      const EdgePoint& back = pts[count - 1 - i];
      PushLabel(&heap, w - back.offset, v, back.id);
    }
  });

  TraversalCounters& tc = LocalTraversalCounters();
  while (!heap.empty()) {
    Label label = PopLabel(&heap);
    NodeId n = label.node;
    if (vp.first_id_[n] == label.src || vp.second_id_[n] == label.src) {
      continue;  // this source already settled a better label here
    }
    if (vp.first_id_[n] == kInvalidPointId) {
      vp.first_id_[n] = label.src;
      vp.first_d_[n] = label.dist;
    } else if (vp.second_id_[n] == kInvalidPointId) {
      vp.second_id_[n] = label.src;
      vp.second_d_[n] = label.dist;
    } else {
      continue;  // two distinct sources already settled
    }
    ++tc.settled_nodes;
    VisitNeighbors(graph, n, [&](NodeId m, double ew) {
      // A node with both labels settled cannot be improved, and any
      // path through it is dominated by its settled labels — prune.
      if (vp.second_id_[m] != kInvalidPointId) return;
      PushLabel(&heap, label.dist + ew, m, label.src);
    });
  }

  NETCLUS_RETURN_IF_ERROR(view.status());
  return vp;
}

Result<VoronoiPrecompute> VoronoiPrecompute::Build(const NetworkView& view) {
  return BuildImpl(view, view);
}

Result<VoronoiPrecompute> VoronoiPrecompute::Build(const NetworkView& view,
                                                   const FrozenGraph* frozen) {
  if (frozen == nullptr) return BuildImpl(view, view);
  return BuildImpl(view, *frozen);
}

}  // namespace netclus
