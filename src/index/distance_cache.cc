#include "index/distance_cache.h"

#include <algorithm>

namespace netclus {

namespace {

uint32_t RoundUpPow2(uint32_t x) {
  if (x <= 1) return 1;
  uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

// Finalizer of splitmix64: full-avalanche mix so consecutive point ids
// (the common access pattern) spread across shards.
uint64_t MixKey(uint64_t key) {
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ULL;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebULL;
  key ^= key >> 31;
  return key;
}

}  // namespace

size_t DistanceCache::PairKeyHash::operator()(const PairKey& k) const {
  // Mix each half independently, then combine: full avalanche on both
  // words so neighboring ObjectIds (the common access pattern) spread.
  return static_cast<size_t>(MixKey(k.lo) ^ (MixKey(k.hi) * 0x9e3779b97f4a7c15ULL));
}

DistanceCache::DistanceCache(size_t capacity, uint32_t num_shards)
    : capacity_(capacity),
      shard_mask_(RoundUpPow2(num_shards) - 1),
      shards_(RoundUpPow2(num_shards)) {
  per_shard_capacity_ = capacity_ / shards_.size();
  if (capacity_ > 0 && per_shard_capacity_ == 0) per_shard_capacity_ = 1;
}

DistanceCache::Shard& DistanceCache::ShardFor(const PairKey& key) const {
  return shards_[PairKeyHash{}(key) & shard_mask_];
}

void DistanceCache::RefreshEpochLocked(Shard* shard) const {
  uint64_t current = epoch_.load(std::memory_order_acquire);
  if (shard->epoch != current) {
    shard->lru.clear();
    shard->map.clear();
    shard->epoch = current;
  }
}

bool DistanceCache::Lookup(uint64_t a, uint64_t b, double* out) const {
  if (capacity_ == 0) return false;
  PairKey key = KeyOf(a, b);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  RefreshEpochLocked(&shard);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.counters.misses;
    return false;
  }
  // Refresh recency: splice the entry to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.counters.hits;
  *out = it->second->dist;
  return true;
}

void DistanceCache::Store(uint64_t a, uint64_t b, double dist) const {
  if (capacity_ == 0) return;
  PairKey key = KeyOf(a, b);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  RefreshEpochLocked(&shard);
  ++shard.counters.stores;
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->dist = dist;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, dist});
  shard.map.emplace(key, shard.lru.begin());
  if (shard.map.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.counters.evictions;
  }
}

void DistanceCache::Invalidate() const {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

DistanceCache::Counters DistanceCache::counters() const {
  Counters total;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    total.hits += shard.counters.hits;
    total.misses += shard.counters.misses;
    total.stores += shard.counters.stores;
    total.evictions += shard.counters.evictions;
  }
  return total;
}

size_t DistanceCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    // Entries from a stale epoch are logically absent.
    if (shard.epoch == epoch_.load(std::memory_order_acquire)) {
      total += shard.map.size();
    }
  }
  return total;
}

}  // namespace netclus
