#include "index/landmark_oracle.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "graph/dijkstra.h"
#include "graph/frozen_graph.h"

namespace netclus {

namespace {

// Farthest-point sampling pick: the node with the largest distance to
// the already-chosen landmark set (unreached nodes compare as kInfDist,
// so every component receives a landmark before any component gets a
// second one). Ties break toward the smallest node id for determinism.
NodeId FarthestNode(const std::vector<double>& min_dist) {
  NodeId best = 0;
  for (NodeId n = 1; n < static_cast<NodeId>(min_dist.size()); ++n) {
    if (min_dist[n] > min_dist[best]) best = n;
  }
  return best;
}

// One landmark SSSP into a dense |V| distance row, via the reusable
// workspace overload (the allocating DijkstraDistances is tests-only).
template <typename Graph>
void LandmarkSssp(const Graph& graph, NodeId source, NodeId num_nodes,
                  TraversalWorkspace* ws, std::vector<double>* out) {
  DijkstraDistances(graph, {DijkstraSource{source, 0.0}}, ws);
  out->resize(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    (*out)[n] = ws->scratch.Get(n);
  }
}

}  // namespace

Result<LandmarkOracle> LandmarkOracle::Build(const NetworkView& view,
                                             uint32_t num_landmarks,
                                             ThreadPool* pool) {
  return Build(view, num_landmarks, pool, nullptr);
}

Result<LandmarkOracle> LandmarkOracle::Build(const NetworkView& view,
                                             uint32_t num_landmarks,
                                             ThreadPool* pool,
                                             const FrozenGraph* frozen) {
  LandmarkOracle oracle;
  oracle.num_points_ = view.num_points();
  const NodeId num_nodes = view.num_nodes();
  const uint32_t k = std::min<uint32_t>(num_landmarks, num_nodes);
  if (k == 0) return oracle;  // vacuous bounds

  // Phase 1 (sequential): farthest-point sampling. Each landmark's full
  // SSSP is both the FPS distance update and the raw material for its
  // point table, so the node-distance rows are kept for phase 2.
  std::vector<std::vector<double>> node_dist(k);
  std::vector<double> min_dist(num_nodes, kInfDist);
  TraversalWorkspace ws(num_nodes);
  for (uint32_t l = 0; l < k; ++l) {
    NodeId pick = l == 0 ? NodeId{0} : FarthestNode(min_dist);
    oracle.landmarks_.push_back(pick);
    if (frozen != nullptr) {
      LandmarkSssp(*frozen, pick, num_nodes, &ws, &node_dist[l]);
    } else {
      LandmarkSssp(view, pick, num_nodes, &ws, &node_dist[l]);
    }
    for (NodeId n = 0; n < num_nodes; ++n) {
      min_dist[n] = std::min(min_dist[n], node_dist[l][n]);
    }
  }

  // Phase 2 (parallel over landmarks): convert node distances into exact
  // point distances. Each row is an independent per-index output slot,
  // so the result is bit-identical to a serial fill.
  oracle.point_dist_.assign(static_cast<size_t>(k) * oracle.num_points_,
                            kInfDist);
  const PointId num_points = oracle.num_points_;
  double* base = oracle.point_dist_.data();
  ParallelFor(pool, k, [&](size_t l, uint32_t /*worker*/) {
    const std::vector<double>& nd = node_dist[l];
    double* out = base + l * num_points;
    for (PointId p = 0; p < num_points; ++p) {
      PointPos pos = view.PointPosition(p);
      double w = view.EdgeWeight(pos.u, pos.v);
      NETCLUS_CHECK_GE(w, 0.0) << "point " << p << " on missing edge";
      out[p] = std::min(nd[pos.u] + pos.offset,
                        nd[pos.v] + (w - pos.offset));
    }
  });

  NETCLUS_RETURN_IF_ERROR(view.status());
  return oracle;
}

double LandmarkOracle::LowerBound(PointId a, PointId b) const {
  double lb = 0.0;
  for (uint32_t l = 0; l < num_landmarks(); ++l) {
    double da = point_dist_[static_cast<size_t>(l) * num_points_ + a];
    double db = point_dist_[static_cast<size_t>(l) * num_points_ + b];
    // Both infinite: the landmark sees neither side; |da - db| would be
    // NaN and the landmark proves nothing — skip it.
    if (da == kInfDist && db == kInfDist) continue;
    double diff = std::fabs(da - db);  // kInfDist when exactly one is inf
    if (diff > lb) lb = diff;
    if (lb == kInfDist) break;  // disconnection proven
  }
  return lb;
}

double LandmarkOracle::UpperBound(PointId a, PointId b) const {
  double ub = kInfDist;
  for (uint32_t l = 0; l < num_landmarks(); ++l) {
    double da = point_dist_[static_cast<size_t>(l) * num_points_ + a];
    double db = point_dist_[static_cast<size_t>(l) * num_points_ + b];
    double sum = da + db;  // inf-safe: inf + x = inf
    if (sum < ub) ub = sum;
  }
  return ub;
}

double LandmarkOracle::LandmarkPointDistance(uint32_t l, PointId p) const {
  NETCLUS_CHECK_LT(l, num_landmarks());
  NETCLUS_CHECK_LT(p, num_points_);
  return point_dist_[static_cast<size_t>(l) * num_points_ + p];
}

void LandmarkOracle::CorruptEntryForTesting(uint32_t l, PointId p,
                                            double value) {
  NETCLUS_CHECK_LT(l, num_landmarks());
  NETCLUS_CHECK_LT(p, num_points_);
  point_dist_[static_cast<size_t>(l) * num_points_ + p] = value;
}

}  // namespace netclus
