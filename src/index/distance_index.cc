#include "index/distance_index.h"

#include <utility>

namespace netclus {

Result<std::unique_ptr<DistanceIndex>> DistanceIndex::Build(
    const NetworkView& view, const IndexOptions& options, ThreadPool* pool) {
  return Build(view, options, pool, nullptr);
}

Result<std::unique_ptr<DistanceIndex>> DistanceIndex::Build(
    const NetworkView& view, const IndexOptions& options, ThreadPool* pool,
    const FrozenGraph* frozen) {
  NETCLUS_RETURN_IF_ERROR(view.status());
  NETCLUS_ASSIGN_OR_RETURN(
      LandmarkOracle landmarks,
      LandmarkOracle::Build(view, options.num_landmarks, pool, frozen));
  std::optional<VoronoiPrecompute> voronoi;
  if (options.enable_voronoi) {
    NETCLUS_ASSIGN_OR_RETURN(VoronoiPrecompute built,
                             VoronoiPrecompute::Build(view, frozen));
    voronoi = std::move(built);
  }
  auto index = std::make_unique<DistanceIndex>(
      options, view.num_points(), std::move(landmarks), std::move(voronoi));
  NETCLUS_RETURN_IF_ERROR(view.status());
  return index;
}

double DistanceIndex::RangeExpansionBound(PointId center, double eps) const {
  // The prefilter scans all points with O(k) bound checks each; past
  // the knob it would dominate the query it is meant to accelerate.
  if (landmarks_.num_landmarks() == 0) return eps;
  if (num_points_ > options_.prefilter_max_points) return eps;
  bool any = false;
  double max_ub = 0.0;
  for (PointId p = 0; p < num_points_; ++p) {
    if (p == center) continue;
    if (landmarks_.LowerBound(center, p) > eps) continue;
    any = true;
    double ub = landmarks_.UpperBound(center, p);
    if (ub == kInfDist) return eps;  // candidate with no finite UB
    if (ub > max_ub) max_ub = ub;
  }
  if (!any) return 0.0;
  // Slack factor keeps the bound valid under fp rounding differences
  // between the UB computation and the traversal's accumulated sums.
  double bound = max_ub * (1.0 + 1e-9);
  return bound < eps ? bound : eps;
}

IndexStats DistanceIndex::Stats() const {
  IndexStats stats;
  stats.num_landmarks = landmarks_.num_landmarks();
  stats.voronoi_built = voronoi_.has_value();
  DistanceCache::Counters c = cache_.counters();
  stats.cache_hits = c.hits;
  stats.cache_misses = c.misses;
  stats.cache_stores = c.stores;
  stats.cache_evictions = c.evictions;
  return stats;
}

void DistanceIndex::PublishStats(StatsCollector* collector) const {
  DistanceCache::Counters now = cache_.counters();
  MutexLock lock(&publish_mu_);
  collector->Add("index.cache.hits", now.hits - published_.hits);
  collector->Add("index.cache.misses", now.misses - published_.misses);
  collector->Add("index.cache.stores", now.stores - published_.stores);
  collector->Add("index.cache.evictions",
                 now.evictions - published_.evictions);
  published_ = now;
}

}  // namespace netclus
