// Network-Voronoi nearest-object precompute: for every network node,
// the nearest point (object) and its distance, plus the second-nearest
// point with a *distinct* id.
//
// Built with one multi-source Dijkstra carrying up to two labels with
// distinct sources per node (the standard k-best-distinct labeling, k =
// 2). Seeding exploits the edge-group point order: from an endpoint,
// the best and second-best points reachable via a given edge are the
// two with the smallest offsets from that endpoint, so each edge
// contributes at most four seeds (two per side) regardless of how many
// points it holds — every other point on the edge is dominated via both
// routes.
//
// The second-best label is what makes exclusion sound: range-query
// pruning must lower-bound "distance from node n to the nearest object
// that is not the query center". With the two nearest distinct objects
// per node, FloorExcluding answers that exactly (see the proof sketch
// in DESIGN.md section 10).
#ifndef NETCLUS_INDEX_VORONOI_H_
#define NETCLUS_INDEX_VORONOI_H_

#include <vector>

#include "common/status.h"
#include "graph/dijkstra.h"
#include "graph/network_view.h"
#include "graph/types.h"

namespace netclus {

/// \brief Per-node nearest / second-nearest object tags, O(1) lookup.
///
/// Immutable after Build; all const methods are concurrency-safe.
class VoronoiPrecompute {
 public:
  static Result<VoronoiPrecompute> Build(const NetworkView& view);

  /// As above with an optional FrozenGraph snapshot of `view` (see
  /// NetworkView::Freeze()): when non-null, the multi-source expansion
  /// runs over the snapshot's CSR arrays. Bit-identical tables.
  static Result<VoronoiPrecompute> Build(const NetworkView& view,
                                         const FrozenGraph* frozen);

  /// Nearest object to node n (kInvalidPointId if no object reaches n).
  PointId NearestObject(NodeId n) const { return first_id_[n]; }

  /// Distance to the nearest object (kInfDist if none reaches n).
  double NearestDistance(NodeId n) const { return first_d_[n]; }

  /// Exact distance from n to the nearest object whose id differs from
  /// `exclude` (pass kInvalidPointId to exclude nothing); kInfDist when
  /// no such object reaches n.
  double FloorExcluding(NodeId n, PointId exclude) const {
    if (first_id_[n] == kInvalidPointId) return kInfDist;
    if (first_id_[n] != exclude) return first_d_[n];
    return second_id_[n] == kInvalidPointId ? kInfDist : second_d_[n];
  }

  NodeId num_nodes() const { return static_cast<NodeId>(first_id_.size()); }

 private:
  VoronoiPrecompute() = default;

  // Shared implementation, templated over the traversal substrate
  // (NetworkView or FrozenGraph). Defined and instantiated in
  // voronoi.cc only.
  template <typename Graph>
  static Result<VoronoiPrecompute> BuildImpl(const NetworkView& view,
                                             const Graph& graph);

  std::vector<PointId> first_id_;
  std::vector<double> first_d_;
  std::vector<PointId> second_id_;
  std::vector<double> second_d_;
};

}  // namespace netclus

#endif  // NETCLUS_INDEX_VORONOI_H_
