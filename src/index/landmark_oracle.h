// ALT-style landmark oracle: O(k) triangle-inequality lower and upper
// bounds on point-pair network distances.
//
// k landmark nodes are chosen by farthest-point sampling (the standard
// "avoid clustered landmarks" heuristic; on disconnected networks the
// infinite separation between components makes FPS place one landmark
// per component before refining within components). For each landmark L
// the oracle stores the exact network distance to every point p — the
// SSSP from L gives node distances nd[], and d(L, p) for p = <u, v, o>
// is min(nd[u] + o, nd[v] + w - o), exact because every path from L to
// an edge-interior point enters through an endpoint.
//
// Bounds served, for any points a, b (triangle inequality both ways):
//   LowerBound(a, b) = max_L |d(L, a) - d(L, b)|  <=  d(a, b)
//   UpperBound(a, b) = min_L (d(L, a) + d(L, b))  >=  d(a, b)
// A lower bound of kInfDist is a proof of disconnection (one side
// reaches a landmark the other cannot).
#ifndef NETCLUS_INDEX_LANDMARK_ORACLE_H_
#define NETCLUS_INDEX_LANDMARK_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/network_view.h"
#include "graph/types.h"

namespace netclus {

/// \brief Per-landmark exact point-distance tables with O(k) bound queries.
///
/// Immutable after Build; all const methods are safe to call concurrently.
class LandmarkOracle {
 public:
  /// Builds an oracle with min(num_landmarks, |V|) landmarks. Landmark
  /// selection (farthest-point sampling) is inherently sequential — each
  /// pick needs the previous landmark's SSSP — but the per-landmark
  /// point-distance tables are filled in parallel on `pool` (null pool =
  /// serial), with identical results either way.
  static Result<LandmarkOracle> Build(const NetworkView& view,
                                      uint32_t num_landmarks,
                                      ThreadPool* pool);

  /// As above with an optional FrozenGraph snapshot of `view` (see
  /// NetworkView::Freeze()): when non-null, every landmark SSSP runs
  /// over the snapshot's CSR arrays. Bit-identical tables.
  static Result<LandmarkOracle> Build(const NetworkView& view,
                                      uint32_t num_landmarks,
                                      ThreadPool* pool,
                                      const FrozenGraph* frozen);

  uint32_t num_landmarks() const {
    return static_cast<uint32_t>(landmarks_.size());
  }
  const std::vector<NodeId>& landmarks() const { return landmarks_; }

  /// A value <= d(a, b); kInfDist proves disconnection. 0 with no
  /// landmarks (vacuous).
  double LowerBound(PointId a, PointId b) const;

  /// A value >= d(a, b); kInfDist with no landmarks (vacuous).
  double UpperBound(PointId a, PointId b) const;

  /// Exact network distance from landmark index `l` to point `p`.
  double LandmarkPointDistance(uint32_t l, PointId p) const;

  /// Overwrites one table entry, deliberately breaking the bound
  /// invariant so tests can prove the validator catches it.
  void CorruptEntryForTesting(uint32_t l, PointId p, double value);

 private:
  LandmarkOracle() = default;

  PointId num_points_ = 0;
  std::vector<NodeId> landmarks_;
  /// Row-major [l * num_points_ + p] exact landmark-to-point distances.
  std::vector<double> point_dist_;
};

}  // namespace netclus

#endif  // NETCLUS_INDEX_LANDMARK_ORACLE_H_
