// Sharded LRU cache of exact point-pair network distances.
//
// The key is the unordered pair {a, b} of 64-bit ids (distance is
// symmetric). Callers may pass dense PointIds (the clustering-time
// DistanceIndex does) or durable ObjectIds (the serving path does, so
// warm entries survive metric-preserving republication — see
// server/snapshot.h). Entries are spread over a power-of-two number of
// shards by a mixed hash of the key; each shard is an independent LRU
// list under its own mutex, so concurrent readers on different shards
// never contend (striped locking).
//
// Invalidation is epoch-based and lazy: mutating the network bumps a
// global atomic epoch; a shard discovers the stale epoch on its next
// access under its own lock and drops its entries then. No mutation
// ever has to visit all shards synchronously.
//
// Hit / miss / store / eviction counters are kept per shard (under the
// shard mutex, so they cost nothing extra) and aggregated on demand;
// DistanceIndex flushes them into the global StatsCollector once per
// clustering run.
#ifndef NETCLUS_INDEX_DISTANCE_CACHE_H_
#define NETCLUS_INDEX_DISTANCE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "graph/types.h"

namespace netclus {

/// \brief Thread-safe sharded LRU map from point pairs to exact distances.
class DistanceCache {
 public:
  /// Aggregated operation counters (monotonic until the cache dies).
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    uint64_t evictions = 0;
  };

  /// `capacity` is the total entry budget across all shards (0 disables
  /// the cache: every Lookup misses, every Store is dropped).
  /// `num_shards` is rounded up to a power of two.
  explicit DistanceCache(size_t capacity, uint32_t num_shards = 16);

  DistanceCache(const DistanceCache&) = delete;
  DistanceCache& operator=(const DistanceCache&) = delete;

  /// If d(a, b) is cached, writes it to `*out`, refreshes the entry's
  /// LRU position, and returns true. Ids are any 64-bit naming scheme
  /// the caller keys on consistently (dense PointIds widen implicitly).
  bool Lookup(uint64_t a, uint64_t b, double* out) const;

  /// Inserts (or refreshes) the exact distance d(a, b), evicting the
  /// shard's least-recently-used entry when over budget.
  void Store(uint64_t a, uint64_t b, double dist) const;

  /// Invalidates every entry (network mutation). O(1): bumps the global
  /// epoch; shards drop their entries lazily on next access.
  void Invalidate() const;

  /// Sum of all shard counters.
  Counters counters() const;

  /// Entries currently resident across all shards (test visibility).
  size_t size() const;

  size_t capacity() const { return capacity_; }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  /// Canonicalized unordered pair of 64-bit ids (lo <= hi). A full
  /// 128-bit key: packing two u64s into one word would collide once
  /// ObjectIds pass 2^32, and a colliding distance cache returns wrong
  /// distances silently.
  struct PairKey {
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool operator==(const PairKey& o) const {
      return lo == o.lo && hi == o.hi;
    }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const;
  };
  struct Entry {
    PairKey key;
    double dist = 0.0;
  };
  struct Shard {
    // All shard mutexes share one rank: a thread only ever holds one
    // shard at a time (Lookup/Store lock exactly the key's shard;
    // counters()/size() visit shards strictly one after another).
    mutable Mutex mu{lock_rank::kDistanceCacheShard, "DistanceCache::Shard::mu"};
    /// Epoch the resident entries belong to; on mismatch with the
    /// cache-wide epoch the shard clears itself before serving.
    uint64_t epoch NETCLUS_GUARDED_BY(mu) = 0;
    std::list<Entry> lru NETCLUS_GUARDED_BY(mu);  ///< front = most recent
    std::unordered_map<PairKey, std::list<Entry>::iterator, PairKeyHash> map
        NETCLUS_GUARDED_BY(mu);
    Counters counters NETCLUS_GUARDED_BY(mu);
  };

  static PairKey KeyOf(uint64_t a, uint64_t b) {
    return a < b ? PairKey{a, b} : PairKey{b, a};
  }

  Shard& ShardFor(const PairKey& key) const;
  /// Clears the shard if its resident epoch is stale. Caller holds mu.
  void RefreshEpochLocked(Shard* shard) const NETCLUS_REQUIRES(shard->mu);

  size_t capacity_;
  size_t per_shard_capacity_ = 0;
  uint32_t shard_mask_;
  mutable std::atomic<uint64_t> epoch_{0};
  mutable std::vector<Shard> shards_;
};

}  // namespace netclus

#endif  // NETCLUS_INDEX_DISTANCE_CACHE_H_
