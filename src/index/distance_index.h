// DistanceIndex: the facade of the read-side acceleration subsystem.
//
// Bundles the three cooperating components behind the graph-layer
// DistanceAccelerator interface:
//   - LandmarkOracle     O(k) ALT lower/upper bounds on d(p, q)
//   - DistanceCache      sharded LRU of exact point-pair distances
//   - VoronoiPrecompute  O(1) nearest-object floors per node
//
// The index is built once per (network, point set) and is immutable
// except for the cache, which fills as queries run. Mutating the
// network invalidates everything: call InvalidateCache() for the cache
// (O(1), epoch-based) and rebuild the index for the precomputes.
//
// Every served bound is audited by ValidateDistanceAccelerator in
// core/validate.cc against exact Dijkstra distances.
#ifndef NETCLUS_INDEX_DISTANCE_INDEX_H_
#define NETCLUS_INDEX_DISTANCE_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/accelerator.h"
#include "graph/network_view.h"
#include "graph/types.h"
#include "index/distance_cache.h"
#include "index/landmark_oracle.h"
#include "index/voronoi.h"

namespace netclus {

/// \brief Construction knobs for the distance index (ClusterSpec::index).
struct IndexOptions {
  /// Master switch: RunClustering builds and threads an index through
  /// the algorithms only when true. Results are identical either way —
  /// the index is a pure accelerator (audited under NETCLUS_VALIDATE).
  bool enable = false;
  /// ALT landmarks (farthest-point sampled); 0 disables landmark bounds.
  uint32_t num_landmarks = 8;
  /// Total point-pair cache entries across shards; 0 disables the cache.
  size_t cache_capacity = 1 << 16;
  /// Shard count for the cache (rounded up to a power of two).
  uint32_t cache_shards = 16;
  /// Build the per-node nearest-object precompute.
  bool enable_voronoi = true;
  /// The O(N·k) landmark prefilter in RangeExpansionBound is skipped on
  /// point sets larger than this (it would make DBSCAN O(N²·k)).
  PointId prefilter_max_points = 4096;
  /// Worker threads for the landmark table build (0 = one per core,
  /// 1 = serial). Build results are bit-identical across thread counts.
  uint32_t num_threads = 0;
};

/// \brief Snapshot of index effectiveness counters for one run.
struct IndexStats {
  uint32_t num_landmarks = 0;
  bool voronoi_built = false;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_stores = 0;
  uint64_t cache_evictions = 0;
};

/// \brief The concrete DistanceAccelerator combining all three components.
///
/// Not movable (the cache holds mutexes); lives behind a unique_ptr.
/// All query methods are safe to call concurrently.
class DistanceIndex : public DistanceAccelerator {
 public:
  /// Builds the precomputes for `view` per `options` (landmark tables in
  /// parallel on `pool`; null pool = serial, identical results). Prefer
  /// this over the constructor — it runs the traversals and surfaces
  /// view I/O errors as a Status.
  static Result<std::unique_ptr<DistanceIndex>> Build(
      const NetworkView& view, const IndexOptions& options, ThreadPool* pool);

  /// As above with an optional FrozenGraph snapshot of `view` (see
  /// NetworkView::Freeze()): when non-null, the landmark SSSPs and the
  /// Voronoi expansion run over the snapshot's CSR arrays. Bit-identical
  /// index contents.
  static Result<std::unique_ptr<DistanceIndex>> Build(
      const NetworkView& view, const IndexOptions& options, ThreadPool* pool,
      const FrozenGraph* frozen);

  /// Assembles an index from prebuilt components (Build's back end;
  /// public so tests can inject doctored components).
  DistanceIndex(const IndexOptions& options, PointId num_points,
                LandmarkOracle landmarks,
                std::optional<VoronoiPrecompute> voronoi)
      : options_(options),
        num_points_(num_points),
        landmarks_(std::move(landmarks)),
        voronoi_(std::move(voronoi)),
        cache_(options.cache_capacity, options.cache_shards) {}

  double LowerBound(PointId a, PointId b) const override {
    return landmarks_.LowerBound(a, b);
  }
  double UpperBound(PointId a, PointId b) const override {
    return landmarks_.UpperBound(a, b);
  }
  bool LookupDistance(PointId a, PointId b, double* out) const override {
    return cache_.Lookup(a, b, out);
  }
  void StoreDistance(PointId a, PointId b, double dist) const override {
    cache_.Store(a, b, dist);
  }
  double NearestObjectFloor(NodeId n, PointId exclude) const override {
    return voronoi_ ? voronoi_->FloorExcluding(n, exclude) : 0.0;
  }
  double RangeExpansionBound(PointId center, double eps) const override;

  /// Drops all cached distances (epoch bump; O(1)). The landmark and
  /// Voronoi precomputes cannot be patched incrementally — rebuild the
  /// index after a network mutation.
  void InvalidateCache() const { cache_.Invalidate(); }

  IndexStats Stats() const;

  /// Adds the counter deltas since the previous PublishStats call to
  /// `collector` under "index.cache.*" names.
  void PublishStats(StatsCollector* collector) const
      NETCLUS_EXCLUDES(publish_mu_);

  const LandmarkOracle& landmarks() const { return landmarks_; }
  const VoronoiPrecompute* voronoi() const {
    return voronoi_ ? &*voronoi_ : nullptr;
  }
  const DistanceCache& cache() const { return cache_; }
  const IndexOptions& options() const { return options_; }

  /// Mutable landmark access so tests can seed a corrupt bound and
  /// prove the validator rejects it.
  LandmarkOracle* mutable_landmarks_for_testing() { return &landmarks_; }

 private:
  IndexOptions options_;
  PointId num_points_ = 0;
  LandmarkOracle landmarks_;
  std::optional<VoronoiPrecompute> voronoi_;
  DistanceCache cache_;

  // Rank kStatsPublish: held across the StatsCollector flush, so it
  // must rank below the registry lock and above everything the counter
  // read could touch (the cache shard locks are released before the
  // flush starts).
  mutable Mutex publish_mu_{lock_rank::kStatsPublish,
                            "DistanceIndex::publish_mu_"};
  mutable DistanceCache::Counters published_ NETCLUS_GUARDED_BY(publish_mu_);
};

}  // namespace netclus

#endif  // NETCLUS_INDEX_DISTANCE_INDEX_H_
