#include "gen/workload_gen.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "common/random.h"
#include "graph/dijkstra.h"

namespace netclus {

namespace {

struct HeapEntry {
  double dist;
  NodeId node;
  bool operator>(const HeapEntry& other) const { return dist > other.dist; }
};
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

// Grows one cluster of `c_final` points, returning the raw builder index
// of the seed point.
uint32_t GrowCluster(const Network& net, const std::vector<Edge>& edges,
                     Rng* rng, PointId c_final, double s_init, double f,
                     int label, PointSetBuilder* builder,
                     uint32_t* raw_counter) {
  PointId placed = 0;
  auto gap = [&]() {
    double s_cur =
        s_init + s_init * (f - 1.0) *
                     (static_cast<double>(placed) / static_cast<double>(c_final));
    return rng->NextUniform(0.5 * s_cur, 1.5 * s_cur);
  };

  const Edge& seed_edge = edges[rng->NextBounded(edges.size())];
  double seed_off = rng->NextUniform(0.0, seed_edge.weight);
  builder->Add(seed_edge.u, seed_edge.v, seed_off, label);
  uint32_t seed_raw = (*raw_counter)++;
  ++placed;

  std::unordered_set<uint64_t> visited_edges;
  visited_edges.insert(EdgeKeyOf(seed_edge.u, seed_edge.v));

  // tail[n]: distance from node n to the nearest point already placed on
  // one of its walked incident edges. Each new point is spaced from the
  // *previous* point, so the spacing chain carries across nodes and the
  // largest point-to-point gap stays <= 1.5 * s_cur (the paper's model).
  std::unordered_map<NodeId, double> tail;

  // Points on the seed edge, walking both directions from the seed point.
  double pos = seed_off;
  while (placed < c_final) {
    double next = pos - gap();
    if (next < 0.0) break;
    builder->Add(seed_edge.u, seed_edge.v, next, label);
    ++(*raw_counter);
    ++placed;
    pos = next;
  }
  tail[seed_edge.u] = pos;
  pos = seed_off;
  while (placed < c_final) {
    double next = pos + gap();
    if (next > seed_edge.weight) break;
    builder->Add(seed_edge.u, seed_edge.v, next, label);
    ++(*raw_counter);
    ++placed;
    pos = next;
  }
  tail[seed_edge.v] = seed_edge.weight - pos;

  // Dijkstra traversal from the seed point; points are generated on every
  // edge met for the first time, continuing the spacing chain from the
  // settled endpoint's tail debt.
  std::vector<double> dist(net.num_nodes(), kInfDist);
  MinHeap heap;
  dist[seed_edge.u] = seed_off;
  dist[seed_edge.v] = seed_edge.weight - seed_off;
  heap.push(HeapEntry{dist[seed_edge.u], seed_edge.u});
  heap.push(HeapEntry{dist[seed_edge.v], seed_edge.v});
  while (!heap.empty() && placed < c_final) {
    auto [d, n] = heap.top();
    heap.pop();
    if (d > dist[n]) continue;
    for (const auto& [m, w] : net.neighbors(n)) {
      if (placed >= c_final) break;
      if (visited_edges.insert(EdgeKeyOf(n, m)).second) {
        // Walk from the n side; convert to canonical-u offsets.
        bool forward = n < m;
        auto it = tail.find(n);
        double debt = it != tail.end() ? it->second : 0.0;
        double walk = -debt;  // distance of the last point, measured from n
        bool any = false;
        while (placed < c_final) {
          double next = walk + gap();
          // A sampled position behind the node would land on the previous
          // (already walked) edge; clamp it to the node so the chain gap
          // never exceeds one sample.
          if (next < 0.0) next = 0.0;
          if (next > w) break;
          builder->Add(n, m, forward ? next : w - next, label);
          ++(*raw_counter);
          ++placed;
          any = true;
          walk = next;
        }
        double m_tail = any ? w - walk : debt + w;
        auto [mt, inserted] = tail.emplace(m, m_tail);
        if (!inserted && m_tail < mt->second) mt->second = m_tail;
      }
      double nd = d + w;
      if (nd < dist[m]) {
        dist[m] = nd;
        heap.push(HeapEntry{nd, m});
      }
    }
  }
  // If the traversal exhausted the (sub)network early, fill the remainder
  // uniformly on visited edges so the requested count is exact.
  std::vector<uint64_t> visited(visited_edges.begin(), visited_edges.end());
  while (placed < c_final && !visited.empty()) {
    uint64_t key = visited[rng->NextBounded(visited.size())];
    NodeId u = EdgeKeyU(key), v = EdgeKeyV(key);
    builder->Add(u, v, rng->NextUniform(0.0, net.EdgeWeight(u, v)), label);
    ++(*raw_counter);
    ++placed;
  }
  return seed_raw;
}

}  // namespace

Result<GeneratedWorkload> GenerateClusteredPoints(
    const Network& net, const ClusterWorkloadSpec& spec) {
  if (spec.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (spec.total_points < spec.num_clusters) {
    return Status::InvalidArgument("need at least one point per cluster");
  }
  if (!(spec.s_init > 0.0) || !(spec.magnification >= 1.0)) {
    return Status::InvalidArgument("require s_init > 0 and F >= 1");
  }
  if (spec.outlier_fraction < 0.0 || spec.outlier_fraction >= 1.0) {
    return Status::InvalidArgument("outlier_fraction must be in [0, 1)");
  }
  if (net.num_edges() == 0) {
    return Status::InvalidArgument("network has no edges");
  }
  std::vector<Edge> edges = net.Edges();
  Rng rng(spec.seed);

  PointId num_outliers =
      static_cast<PointId>(std::llround(spec.outlier_fraction *
                                        spec.total_points));
  PointId clustered = spec.total_points - num_outliers;
  PointId per_cluster = clustered / spec.num_clusters;
  PointId remainder = clustered % spec.num_clusters;

  PointSetBuilder builder;
  uint32_t raw_counter = 0;
  std::vector<uint32_t> seed_raw;
  for (uint32_t c = 0; c < spec.num_clusters; ++c) {
    PointId size = per_cluster + (c < remainder ? 1 : 0);
    if (size == 0) continue;
    seed_raw.push_back(GrowCluster(net, edges, &rng, size, spec.s_init,
                                   spec.magnification, static_cast<int>(c),
                                   &builder, &raw_counter));
  }
  for (PointId i = 0; i < num_outliers; ++i) {
    const Edge& e = edges[rng.NextBounded(edges.size())];
    builder.Add(e.u, e.v, rng.NextUniform(0.0, e.weight), -1);
    ++raw_counter;
  }

  std::vector<PointId> raw_to_final;
  Result<PointSet> points = std::move(builder).Build(net, &raw_to_final);
  if (!points.ok()) return points.status();

  GeneratedWorkload out;
  out.points = std::move(points.value());
  for (uint32_t raw : seed_raw) out.cluster_seeds.push_back(raw_to_final[raw]);
  out.max_intra_gap = 1.5 * spec.s_init * spec.magnification;
  return out;
}

Result<PointSet> GenerateUniformPoints(const Network& net, PointId n,
                                       uint64_t seed) {
  if (net.num_edges() == 0) {
    return Status::InvalidArgument("network has no edges");
  }
  std::vector<Edge> edges = net.Edges();
  Rng rng(seed);
  PointSetBuilder builder;
  for (PointId i = 0; i < n; ++i) {
    const Edge& e = edges[rng.NextBounded(edges.size())];
    builder.Add(e.u, e.v, rng.NextUniform(0.0, e.weight), -1);
  }
  return std::move(builder).Build(net);
}

}  // namespace netclus
