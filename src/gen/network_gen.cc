#include "gen/network_gen.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/random.h"

namespace netclus {

namespace {
double Dist(const std::pair<double, double>& a,
            const std::pair<double, double>& b) {
  double dx = a.first - b.first, dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

// Minimal union-find for the spanning-tree construction (the full
// Union-Find used by clustering lives in core/union_find.h).
struct Dsu {
  std::vector<NodeId> parent;
  explicit Dsu(NodeId n) : parent(n) {
    for (NodeId i = 0; i < n; ++i) parent[i] = i;
  }
  NodeId Find(NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool Union(NodeId a, NodeId b) {
    NodeId ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent[ra] = rb;
    return true;
  }
};
}  // namespace

GeneratedNetwork GenerateRoadNetwork(const RoadNetworkSpec& spec) {
  Rng rng(spec.seed);
  NodeId target = std::max<NodeId>(spec.target_nodes, 2);
  NodeId rows = std::max<NodeId>(1, static_cast<NodeId>(std::sqrt(target)));
  NodeId cols = (target + rows - 1) / rows;
  NodeId n = rows * cols;
  double jitter = std::clamp(spec.jitter, 0.0, 0.45);

  GeneratedNetwork out{Network(n), {}};
  out.coords.reserve(n);
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      out.coords.emplace_back(c + jitter * rng.NextUniform(-1.0, 1.0),
                              r + jitter * rng.NextUniform(-1.0, 1.0));
    }
  }
  auto id = [&](NodeId r, NodeId c) { return r * cols + c; };

  // Grid-neighbor candidates (the planar skeleton) and diagonal shortcuts.
  std::vector<std::pair<NodeId, NodeId>> grid_cand, diag_cand;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) grid_cand.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) grid_cand.emplace_back(id(r, c), id(r + 1, c));
      if (r + 1 < rows && c + 1 < cols) {
        diag_cand.emplace_back(id(r, c), id(r + 1, c + 1));
        diag_cand.emplace_back(id(r, c + 1), id(r + 1, c));
      }
    }
  }
  rng.Shuffle(&grid_cand);

  // Random spanning tree over the grid skeleton guarantees connectivity.
  Dsu dsu(n);
  std::vector<std::pair<NodeId, NodeId>> leftover;
  size_t edges_added = 0;
  for (const auto& [a, b] : grid_cand) {
    if (dsu.Union(a, b)) {
      Status s = out.net.AddEdge(a, b, Dist(out.coords[a], out.coords[b]));
      (void)s;
      ++edges_added;
    } else {
      leftover.push_back({a, b});
    }
  }

  // Extra edges up to the target |E|/|V| ratio: leftover grid candidates
  // first (keeps the network planar-style), then diagonal shortcuts.
  size_t target_edges = static_cast<size_t>(
      std::llround(std::max(spec.edge_ratio, 0.0) * n));
  target_edges = std::max<size_t>(target_edges, edges_added);
  rng.Shuffle(&leftover);
  rng.Shuffle(&diag_cand);
  leftover.insert(leftover.end(), diag_cand.begin(), diag_cand.end());
  for (const auto& [a, b] : leftover) {
    if (edges_added >= target_edges) break;
    if (out.net.HasEdge(a, b)) continue;
    Status s = out.net.AddEdge(a, b, Dist(out.coords[a], out.coords[b]));
    (void)s;
    ++edges_added;
  }
  return out;
}

namespace {
RoadNetworkSpec MakeSpec(NodeId nodes, double ratio, double scale,
                         uint64_t seed) {
  RoadNetworkSpec spec;
  double s = std::clamp(scale, 1e-6, 1.0);
  spec.target_nodes =
      std::max<NodeId>(16, static_cast<NodeId>(std::llround(nodes * s)));
  spec.edge_ratio = ratio;
  spec.seed = seed;
  return spec;
}
}  // namespace

// Published sizes: NA 175813/179179, SF 174956/223001, TG 18263/23874,
// OL 6105/7035.
RoadNetworkSpec SpecNA(double scale, uint64_t seed) {
  return MakeSpec(175813, 179179.0 / 175813.0, scale, seed);
}
RoadNetworkSpec SpecSF(double scale, uint64_t seed) {
  return MakeSpec(174956, 223001.0 / 174956.0, scale, seed);
}
RoadNetworkSpec SpecTG(double scale, uint64_t seed) {
  return MakeSpec(18263, 23874.0 / 18263.0, scale, seed);
}
RoadNetworkSpec SpecOL(double scale, uint64_t seed) {
  return MakeSpec(6105, 7035.0 / 6105.0, scale, seed);
}

Network BfsSubnetwork(const Network& net, NodeId start, NodeId count,
                      std::vector<NodeId>* old_to_new) {
  std::vector<NodeId> mapping(net.num_nodes(), kInvalidNodeId);
  std::queue<NodeId> q;
  q.push(start);
  mapping[start] = 0;
  NodeId taken = 1;
  std::vector<NodeId> order = {start};
  while (!q.empty() && taken < count) {
    NodeId x = q.front();
    q.pop();
    for (const auto& [y, w] : net.neighbors(x)) {
      (void)w;
      if (mapping[y] == kInvalidNodeId && taken < count) {
        mapping[y] = taken++;
        order.push_back(y);
        q.push(y);
      }
    }
  }
  Network out(taken);
  for (NodeId x : order) {
    for (const auto& [y, w] : net.neighbors(x)) {
      if (mapping[y] != kInvalidNodeId && mapping[x] < mapping[y]) {
        Status s = out.AddEdge(mapping[x], mapping[y], w);
        (void)s;
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return out;
}

Network MakePathNetwork(NodeId n, double w) {
  Network net(n);
  for (NodeId i = 0; i + 1 < n; ++i) {
    Status s = net.AddEdge(i, i + 1, w);
    (void)s;
  }
  return net;
}

Network MakeRingNetwork(NodeId n, double w) {
  Network net(n);
  for (NodeId i = 0; i < n; ++i) {
    Status s = net.AddEdge(i, (i + 1) % n, w);
    (void)s;
  }
  return net;
}

Network MakeGridNetwork(NodeId rows, NodeId cols, double w) {
  Network net(rows * cols);
  auto id = [&](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        Status s = net.AddEdge(id(r, c), id(r, c + 1), w);
        (void)s;
      }
      if (r + 1 < rows) {
        Status s = net.AddEdge(id(r, c), id(r + 1, c), w);
        (void)s;
      }
    }
  }
  return net;
}

Network MakeStarNetwork(NodeId n, double w) {
  Network net(n);
  for (NodeId i = 1; i < n; ++i) {
    Status s = net.AddEdge(0, i, w);
    (void)s;
  }
  return net;
}

}  // namespace netclus
