// Synthetic road-network generation.
//
// The paper evaluates on four real road networks (NA, SF, TG, OL). Those
// datasets are not redistributable here, so GenerateRoadNetwork produces a
// connected, sparse, planar-style substitute: nodes on a jittered grid, a
// random spanning tree of grid-neighbor candidates for connectivity, plus
// extra candidate edges until a target |E|/|V| ratio is met. Edge weights
// are the Euclidean distances of the jittered endpoints, exactly as the
// paper sets them. Presets mirror the four datasets' node counts and edge
// ratios (optionally scaled down).
#ifndef NETCLUS_GEN_NETWORK_GEN_H_
#define NETCLUS_GEN_NETWORK_GEN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/network.h"
#include "graph/types.h"

namespace netclus {

/// Parameters for GenerateRoadNetwork.
struct RoadNetworkSpec {
  /// Approximate number of nodes (grid rounding may change it slightly;
  /// the result is always connected).
  NodeId target_nodes = 1000;
  /// Target |E| / |V| ratio; clamped to [1 - 1/V, ~1.9].
  double edge_ratio = 1.2;
  /// Node coordinate jitter as a fraction of grid spacing, in [0, 0.45].
  double jitter = 0.3;
  uint64_t seed = 1;
};

/// A generated network plus node coordinates (used by weight assignment
/// and by the ASCII visualizations of the effectiveness experiment).
struct GeneratedNetwork {
  Network net;
  std::vector<std::pair<double, double>> coords;  // per node (x, y)
};

/// Generates a connected road-style network per `spec`.
GeneratedNetwork GenerateRoadNetwork(const RoadNetworkSpec& spec);

/// The paper's four datasets. `scale` in (0, 1] shrinks the node count
/// (1.0 = the published size: NA 175813, SF 174956, TG 18263, OL 6105).
RoadNetworkSpec SpecNA(double scale = 1.0, uint64_t seed = 41);
RoadNetworkSpec SpecSF(double scale = 1.0, uint64_t seed = 42);
RoadNetworkSpec SpecTG(double scale = 1.0, uint64_t seed = 43);
RoadNetworkSpec SpecOL(double scale = 1.0, uint64_t seed = 44);

/// Extracts the connected subnetwork induced by the first `count` nodes of
/// a BFS from `start` (used by the scalability-with-|V| experiment).
/// `old_to_new` receives the node mapping (kInvalidNodeId for dropped).
Network BfsSubnetwork(const Network& net, NodeId start, NodeId count,
                      std::vector<NodeId>* old_to_new);

// --- Tiny deterministic topologies for tests and examples. ---

/// Path 0-1-...-(n-1) with all edge weights `w`.
Network MakePathNetwork(NodeId n, double w);

/// Cycle over n nodes with all edge weights `w`.
Network MakeRingNetwork(NodeId n, double w);

/// rows x cols grid; horizontal/vertical edges of weight `w`.
Network MakeGridNetwork(NodeId rows, NodeId cols, double w);

/// Star: center 0 connected to 1..n-1 with weight `w`.
Network MakeStarNetwork(NodeId n, double w);

}  // namespace netclus

#endif  // NETCLUS_GEN_NETWORK_GEN_H_
