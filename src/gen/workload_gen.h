// Clustered point workloads (paper Section 5).
//
// Clusters are grown exactly as described in the paper: a seed point on a
// random edge, then a Dijkstra traversal of the network that, on each
// newly met edge, drops points with consecutive spacing drawn uniformly
// from [0.5 s_cur, 1.5 s_cur], where s_cur = s_init + s_init (F - 1) |C| /
// C_final grows linearly from s_init to s_init * F — a dense core that
// thins toward the boundary. 99% of the points go to k equal-size
// clusters, the rest are uniform outliers (label -1).
#ifndef NETCLUS_GEN_WORKLOAD_GEN_H_
#define NETCLUS_GEN_WORKLOAD_GEN_H_

#include <vector>

#include "common/status.h"
#include "graph/network.h"
#include "graph/types.h"

namespace netclus {

/// Parameters of the paper's workload generator.
struct ClusterWorkloadSpec {
  PointId total_points = 10000;  ///< N (clusters + outliers)
  uint32_t num_clusters = 10;    ///< k
  double outlier_fraction = 0.01;
  double s_init = 0.05;          ///< initial separation distance
  double magnification = 5.0;    ///< F; final spacing = s_init * F
  uint64_t seed = 7;
};

/// A generated workload: points (labels = generating cluster, -1 for
/// outliers) plus bookkeeping the experiments need.
struct GeneratedWorkload {
  PointSet points;
  /// Final point id of each cluster's seed (first) point; the "ideal"
  /// initial medoids of the effectiveness experiment (Fig. 11b).
  std::vector<PointId> cluster_seeds;
  /// Largest possible gap between consecutive generated points of one
  /// cluster (= 1.5 * s_init * F). Any eps >= this reconnects every
  /// cluster, so it is the canonical eps for the density methods.
  double max_intra_gap = 0.0;
};

/// Generates the paper's clustered workload on `net`.
Result<GeneratedWorkload> GenerateClusteredPoints(
    const Network& net, const ClusterWorkloadSpec& spec);

/// Places `n` points uniformly: a random edge, then a uniform offset.
/// All labels are -1.
Result<PointSet> GenerateUniformPoints(const Network& net, PointId n,
                                       uint64_t seed);

}  // namespace netclus

#endif  // NETCLUS_GEN_WORKLOAD_GEN_H_
