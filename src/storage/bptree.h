// Paged B+-tree with fixed-width uint64 keys and values.
//
// The paper's storage architecture (Section 4.1) indexes the adjacency-list
// flat file by node id and the points flat file by the first point id of
// each point group, both with sparse B+-trees. FloorEntry() implements the
// "sparse" lookup: the greatest indexed key <= the probe (e.g., point id ->
// containing point group).
#ifndef NETCLUS_STORAGE_BPTREE_H_
#define NETCLUS_STORAGE_BPTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/buffer_manager.h"

namespace netclus {

/// \brief Disk-resident B+-tree mapping uint64 -> uint64.
///
/// All nodes live in a dedicated PagedFile accessed through a
/// BufferManager; page 0 is a metadata page holding the root pointer,
/// height and entry count. Inserts upsert; deletes rebalance (borrow or
/// merge) so invariants hold under arbitrary workloads.
class BPlusTree {
 public:
  /// Initializes a fresh tree in `file`, which must be empty.
  static Result<std::unique_ptr<BPlusTree>> Create(BufferManager* bm,
                                                   FileId file);

  /// Opens a tree previously created in `file`.
  static Result<std::unique_ptr<BPlusTree>> Open(BufferManager* bm,
                                                 FileId file);

  /// Inserts `key` -> `value`, overwriting any existing value.
  Status Insert(uint64_t key, uint64_t value);

  /// Returns the value for `key`, or NotFound.
  Result<uint64_t> Get(uint64_t key) const;

  /// Removes `key`; NotFound if absent.
  Status Delete(uint64_t key);

  /// Returns the entry with the greatest key <= `key`, or NotFound when
  /// every key in the tree is greater than `key`.
  Result<std::pair<uint64_t, uint64_t>> FloorEntry(uint64_t key) const;

  /// Calls `fn(key, value)` for each entry with lo <= key <= hi in key
  /// order; stops early when `fn` returns false.
  Status Scan(uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t, uint64_t)>& fn) const;

  /// Builds the tree from `sorted` (strictly increasing keys). The tree
  /// must be empty. Leaves are packed to ~100% occupancy.
  Status BulkLoad(const std::vector<std::pair<uint64_t, uint64_t>>& sorted);

  uint64_t size() const { return count_; }
  uint32_t height() const { return height_; }

  /// Verifies structural invariants (ordering, occupancy, leaf chain);
  /// used by tests.
  Status CheckInvariants() const;

 private:
  BPlusTree(BufferManager* bm, FileId file);

  Status WriteMeta();
  Status ReadMeta();

  // Descends to the leaf that may contain `key`; returns a pinned handle.
  Result<PageHandle> FindLeaf(uint64_t key) const;

  struct SplitResult {
    bool did_split = false;
    uint64_t separator = 0;   // smallest key in the new right sibling
    PageId right = kInvalidPageId;
  };
  Status InsertRec(PageId node, uint64_t key, uint64_t value,
                   SplitResult* split, bool* inserted_new);

  // Returns true (via *underflow) when `node` dropped below minimum
  // occupancy and the parent must rebalance it.
  Status DeleteRec(PageId node, uint64_t key, bool* underflow);
  Status RebalanceChild(PageHandle& parent, int child_idx);

  uint32_t leaf_capacity() const;
  uint32_t internal_capacity() const;

  BufferManager* bm_;
  FileId file_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;  // 1 = root is a leaf
  uint64_t count_ = 0;
};

}  // namespace netclus

#endif  // NETCLUS_STORAGE_BPTREE_H_
