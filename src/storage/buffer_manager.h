// LRU buffer pool over one or more PagedFiles.
//
// Reproduces the paper's experimental setting (Section 5): a fixed memory
// buffer (1 MiB by default) of 4 KiB pages in front of the adjacency-list
// and points files. Hit/miss/eviction counters expose the logical vs.
// physical I/O split that the paper's cost discussion relies on.
//
// The pool is also the integrity boundary of the storage stack:
//  - Files registered with `checksummed = true` carry a per-page CRC32C
//    footer (kPageFooterBytes at the end of every page, covering the
//    payload and the page id). The footer is written on write-back and
//    verified on every physical read; a mismatch surfaces as
//    Status::Corruption naming the page and file offset. Callers must pack
//    records into usable_page_size(file) bytes, not page_size().
//  - Transient read errors (Status::Unavailable, e.g. short reads or
//    injected faults) are retried with bounded exponential backoff per
//    RetryPolicy; the sleep hook is injectable so tests run instantly.
#ifndef NETCLUS_STORAGE_BUFFER_MANAGER_H_
#define NETCLUS_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/paged_file.h"

namespace netclus {

class BufferManager;

/// Index of a file registered with a BufferManager.
using FileId = uint32_t;

/// Buffer pool counters.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  // Robustness counters.
  uint64_t read_retries = 0;       ///< re-reads after a transient error
  uint64_t retries_exhausted = 0;  ///< reads that failed every attempt
  uint64_t checksum_failures = 0;  ///< physical reads rejected by the CRC

  uint64_t logical_accesses() const { return hits + misses; }
};

/// How physical reads that return Status::Unavailable are retried.
struct RetryPolicy {
  uint32_t max_retries = 3;         ///< retries after the first attempt
  uint64_t backoff_micros = 100;    ///< sleep before the first retry
  double backoff_multiplier = 2.0;  ///< growth factor per retry
};

/// \brief RAII pin on a buffered page.
///
/// While a handle is alive the frame stays in memory and its pointer stays
/// valid. Destroying (or moving from) the handle unpins the frame. Call
/// MarkDirty() after mutating data().
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle() { Release(); }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return bm_ != nullptr; }
  char* data() const { return data_; }
  PageId page_id() const { return page_id_; }
  FileId file_id() const { return file_id_; }

  /// Marks the page dirty; it will be written back before eviction/flush.
  void MarkDirty();

  /// Explicitly unpins the page (also done by the destructor).
  void Release();

 private:
  friend class BufferManager;
  PageHandle(BufferManager* bm, size_t frame, char* data, FileId file,
             PageId page)
      : bm_(bm), frame_(frame), data_(data), file_id_(file), page_id_(page) {}

  BufferManager* bm_ = nullptr;
  size_t frame_ = 0;
  char* data_ = nullptr;
  FileId file_id_ = 0;
  PageId page_id_ = kInvalidPageId;
};

/// \brief Fixed-capacity LRU buffer pool.
///
/// All registered files must share the pool's page size. Not thread-safe
/// (the clustering algorithms are single-threaded, as in the paper).
class BufferManager {
 public:
  /// Bytes of every page reserved for the integrity footer of checksummed
  /// files: [crc32c u32][page id u32].
  static constexpr uint32_t kPageFooterBytes = 8;

  /// A pool of `pool_bytes / page_size` frames.
  BufferManager(uint64_t pool_bytes, uint32_t page_size);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Registers `file` (not owned; must outlive the manager) and returns its
  /// FileId for use with FetchPage/NewPage. When `checksummed` is true the
  /// pool maintains and verifies the per-page CRC32C footer; callers then
  /// own only the first usable_page_size(id) bytes of each page.
  FileId RegisterFile(PagedFile* file, bool checksummed = false);

  /// Bytes of a page of `file` available to callers: the page size, minus
  /// the footer when the file is checksummed.
  uint32_t usable_page_size(FileId file) const {
    return page_size_ - (checksummed_[file] ? kPageFooterBytes : 0);
  }

  /// Pins page (`file`, `page`), reading it from disk on a miss.
  Result<PageHandle> FetchPage(FileId file, PageId page);

  /// Allocates a fresh zeroed page in `file` and pins it.
  Result<PageHandle> NewPage(FileId file);

  /// Writes back all dirty frames (pages stay cached).
  Status FlushAll();

  /// Replaces the transient-read retry policy (defaults: 3 retries,
  /// 100 us first backoff, doubling).
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Replaces the backoff sleep hook (micros -> void). Tests inject a
  /// recording no-op clock; the default really sleeps.
  void set_sleep_function(std::function<void(uint64_t)> sleep_micros) {
    sleep_micros_ = std::move(sleep_micros);
  }

  size_t frame_count() const { return frames_.size(); }
  uint32_t page_size() const { return page_size_; }
  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats{}; }

  /// Number of currently pinned frames (for tests).
  size_t pinned_frames() const;

 private:
  friend class PageHandle;

  struct Frame {
    FileId file = 0;
    PageId page = kInvalidPageId;
    uint32_t pins = 0;
    bool dirty = false;
    bool in_use = false;
    bool in_lru = false;
    std::list<size_t>::iterator lru_it;
    std::unique_ptr<char[]> data;
  };

  static uint64_t Key(FileId file, PageId page) {
    return (static_cast<uint64_t>(file) << 32) | page;
  }

  void Unpin(size_t frame, bool dirty);
  // Physical read with transient-error retries and checksum verification.
  Status ReadPageChecked(FileId file, PageId page, char* out);
  // Physical write; stamps the checksum footer first when applicable.
  Status WritePageChecked(FileId file, PageId page, char* data);
  // Finds a frame for a new page: free list first, then LRU eviction.
  Result<size_t> GrabFrame();
  Result<PageHandle> InstallPage(FileId file, PageId page, bool read_from_disk);

  uint32_t page_size_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = least recently used unpinned frame
  std::unordered_map<uint64_t, size_t> page_table_;
  std::vector<PagedFile*> files_;
  std::vector<bool> checksummed_;  // parallel to files_
  RetryPolicy retry_policy_;
  std::function<void(uint64_t)> sleep_micros_;  // empty = real sleep
  BufferStats stats_;
};

}  // namespace netclus

#endif  // NETCLUS_STORAGE_BUFFER_MANAGER_H_
