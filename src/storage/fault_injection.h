// Deterministic fault injection for the storage stack.
//
// FaultInjectionFile decorates any PagedFile and perturbs its operations
// according to a schedule: transient errors (Status::Unavailable — the
// BufferManager retries these), permanent I/O errors, short reads, torn
// writes (only a prefix of the page reaches the backend) and silent bit
// flips (the op "succeeds" with corrupted data — the page-checksum layer
// must turn these into Status::Corruption). Faults fire either at exact
// operation indices (AddFault) or randomly from a seeded RNG
// (EnableRandomFaults); both are fully deterministic given the same op
// sequence, so a faulty run can be replayed bit-identically.
#ifndef NETCLUS_STORAGE_FAULT_INJECTION_H_
#define NETCLUS_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "storage/paged_file.h"

namespace netclus {

/// Which operation class a FaultEvent applies to.
enum class FaultOp { kRead, kWrite };

/// What the injected fault does.
enum class FaultKind {
  kTransientError,  ///< op not executed; returns Unavailable (retryable)
  kPermanentError,  ///< op not executed; returns IOError (not retried)
  kShortRead,       ///< only the first half of the page is read; Unavailable
  kTornWrite,       ///< only the first half of the page is written; IOError
  kBitFlip,         ///< op executes and returns OK, one bit is flipped
};

/// \brief One scheduled fault.
struct FaultEvent {
  FaultOp op = FaultOp::kRead;
  FaultKind kind = FaultKind::kTransientError;
  /// Fires on ops `[op_index, op_index + count)` of class `op`, counted
  /// from 0 across the file's lifetime.
  uint64_t op_index = 0;
  uint64_t count = 1;
  /// Restricts the fault to one page; kInvalidPageId matches any page.
  PageId page = kInvalidPageId;
  /// kBitFlip target: `bit_mask` is XORed into byte `byte` of the page.
  uint32_t byte = 0;
  uint8_t bit_mask = 1;
};

/// Counters of what the harness actually injected.
struct FaultInjectionStats {
  uint64_t transient_errors = 0;
  uint64_t permanent_errors = 0;
  uint64_t short_reads = 0;
  uint64_t torn_writes = 0;
  uint64_t bit_flips = 0;

  uint64_t total() const {
    return transient_errors + permanent_errors + short_reads + torn_writes +
           bit_flips;
  }
};

/// \brief PagedFile decorator that injects faults from a schedule.
class FaultInjectionFile final : public PagedFile {
 public:
  /// Decorates `base` (not owned; must outlive this file). The decorator
  /// starts transparent: with no schedule every op passes through.
  explicit FaultInjectionFile(PagedFile* base);

  /// Schedules one fault. Events are matched independently; multiple
  /// events may fire on the same op (first match wins).
  void AddFault(const FaultEvent& event);

  /// Additionally injects random faults: each read fails transiently with
  /// probability `transient_prob` and each read is silently bit-flipped
  /// with probability `bit_flip_prob`. Deterministic in `seed` and the op
  /// sequence.
  void EnableRandomFaults(uint64_t seed, double transient_prob,
                          double bit_flip_prob);

  /// Drops the whole schedule (scheduled events and random mode).
  void ClearFaults();

  const FaultInjectionStats& fault_stats() const { return fault_stats_; }
  uint64_t read_ops() const { return read_ops_; }
  uint64_t write_ops() const { return write_ops_; }

 protected:
  Status DoAllocate(PageId id) override;
  Status DoRead(PageId id, char* out) override;
  Status DoWrite(PageId id, const char* data) override;
  Status DoTruncate(PageId new_num_pages) override;

 private:
  // Returns the first scheduled event matching this op, or nullptr.
  const FaultEvent* Match(FaultOp op, uint64_t index, PageId page) const;

  PagedFile* base_;
  std::vector<FaultEvent> schedule_;
  bool random_enabled_ = false;
  Rng rng_{0};
  double transient_prob_ = 0.0;
  double bit_flip_prob_ = 0.0;
  uint64_t read_ops_ = 0;
  uint64_t write_ops_ = 0;
  FaultInjectionStats fault_stats_;
};

}  // namespace netclus

#endif  // NETCLUS_STORAGE_FAULT_INJECTION_H_
