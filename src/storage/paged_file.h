// Page-granular file abstraction with I/O accounting.
//
// The paper (Section 4.1, 5) stores the network adjacency lists and the
// point groups in flat files of 4 KiB pages accessed through a 1 MiB
// memory buffer. PagedFile is the bottom layer: it reads and writes whole
// pages and counts every physical access, so experiments can report
// hardware-independent I/O counts.
//
// PagedFile is an abstract interface. Three implementations exist: a POSIX
// file on disk, an anonymous in-memory store (tests and benches that only
// care about I/O counts), and FaultInjectionFile (storage/fault_injection.h),
// a decorator that injects deterministic faults for robustness testing. All
// share the bounds checks and counters of the non-virtual public methods.
#ifndef NETCLUS_STORAGE_PAGED_FILE_H_
#define NETCLUS_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace netclus {

/// Identifier of a page within a PagedFile.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Physical I/O counters for one PagedFile.
struct FileIoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  // Operations that returned a non-OK status (still counted above when the
  // backend partially executed them). Transient faults the BufferManager
  // later retries successfully also show up here.
  uint64_t failed_reads = 0;
  uint64_t failed_writes = 0;
};

/// \brief A growable sequence of fixed-size pages.
class PagedFile {
 public:
  /// Creates an anonymous in-memory paged file.
  static std::unique_ptr<PagedFile> CreateInMemory(uint32_t page_size);

  /// Opens (or creates) a paged file backed by `path`. When `truncate` is
  /// true any existing content is discarded. The existing file size must be
  /// a multiple of `page_size`.
  static Result<std::unique_ptr<PagedFile>> Open(const std::string& path,
                                                 uint32_t page_size,
                                                 bool truncate);

  virtual ~PagedFile() = default;

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  uint32_t page_size() const { return page_size_; }
  PageId num_pages() const { return num_pages_; }

  /// Appends a zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `out` (page_size() bytes).
  Status ReadPage(PageId id, char* out);

  /// Overwrites page `id` with `data` (page_size() bytes).
  Status WritePage(PageId id, const char* data);

  /// Shrinks the file to exactly `new_num_pages` pages, discarding the
  /// tail. Growing is not a truncate — use AllocatePage. Backends that
  /// cannot shrink return kInternal and leave the file untouched (the
  /// WAL's compaction then simply skips this cycle).
  Status Truncate(PageId new_num_pages);

  const FileIoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FileIoStats{}; }

 protected:
  explicit PagedFile(uint32_t page_size) : page_size_(page_size) {}

  // Backend hooks; `id` is already bounds-checked by the public wrappers
  // and counters are maintained there.
  virtual Status DoAllocate(PageId id) = 0;
  virtual Status DoRead(PageId id, char* out) = 0;
  virtual Status DoWrite(PageId id, const char* data) = 0;
  virtual Status DoTruncate(PageId new_num_pages);

  uint32_t page_size_;
  PageId num_pages_ = 0;
  FileIoStats stats_;
};

}  // namespace netclus

#endif  // NETCLUS_STORAGE_PAGED_FILE_H_
