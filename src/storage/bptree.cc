#include "storage/bptree.h"

#include <algorithm>
#include <cstring>

namespace netclus {

namespace {

// All node fields are accessed through memcpy to avoid unaligned loads.
template <typename T>
T Load(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
template <typename T>
void Store(char* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

constexpr uint16_t kLeaf = 1;
constexpr uint16_t kInternal = 2;
constexpr uint64_t kMagic = 0x4E43424254524545ULL;  // "NCBBTREE"

// Leaf layout:     [kind u16][nkeys u16][next u32][(key u64, val u64)...]
// Internal layout: [kind u16][nkeys u16][pad u32][child0 u32]
//                  [(key u64, child u32)...]
constexpr size_t kLeafHeader = 8;
constexpr size_t kLeafEntry = 16;
constexpr size_t kInternalHeader = 12;
constexpr size_t kInternalEntry = 12;

uint16_t NodeKind(const char* p) { return Load<uint16_t>(p); }
uint16_t NumKeys(const char* p) { return Load<uint16_t>(p + 2); }
void SetKind(char* p, uint16_t k) { Store<uint16_t>(p, k); }
void SetNumKeys(char* p, uint16_t n) { Store<uint16_t>(p + 2, n); }

PageId LeafNext(const char* p) { return Load<PageId>(p + 4); }
void SetLeafNext(char* p, PageId n) { Store<PageId>(p + 4, n); }

uint64_t LeafKey(const char* p, int i) {
  return Load<uint64_t>(p + kLeafHeader + i * kLeafEntry);
}
uint64_t LeafVal(const char* p, int i) {
  return Load<uint64_t>(p + kLeafHeader + i * kLeafEntry + 8);
}
void SetLeafEntry(char* p, int i, uint64_t k, uint64_t v) {
  Store<uint64_t>(p + kLeafHeader + i * kLeafEntry, k);
  Store<uint64_t>(p + kLeafHeader + i * kLeafEntry + 8, v);
}

uint64_t InternalKey(const char* p, int i) {
  return Load<uint64_t>(p + kInternalHeader + i * kInternalEntry);
}
PageId InternalChild(const char* p, int i) {
  if (i == 0) return Load<PageId>(p + 8);
  return Load<PageId>(p + kInternalHeader + (i - 1) * kInternalEntry + 8);
}
void SetInternalKey(char* p, int i, uint64_t k) {
  Store<uint64_t>(p + kInternalHeader + i * kInternalEntry, k);
}
void SetInternalChild(char* p, int i, PageId c) {
  if (i == 0) {
    Store<PageId>(p + 8, c);
  } else {
    Store<PageId>(p + kInternalHeader + (i - 1) * kInternalEntry + 8, c);
  }
}

// First child index whose subtree may contain `key`
// (= number of separator keys <= key).
int ChildIndex(const char* p, uint64_t key) {
  int lo = 0, hi = NumKeys(p);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (InternalKey(p, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First leaf slot with key >= `key`.
int LeafLowerBound(const char* p, uint64_t key) {
  int lo = 0, hi = NumKeys(p);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (LeafKey(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

struct Entry {
  uint64_t key;
  uint64_t val;
};

std::vector<Entry> ReadLeafEntries(const char* p) {
  int n = NumKeys(p);
  std::vector<Entry> out(n);
  for (int i = 0; i < n; ++i) out[i] = {LeafKey(p, i), LeafVal(p, i)};
  return out;
}

void WriteLeafEntries(char* p, const std::vector<Entry>& entries, size_t lo,
                      size_t hi) {
  SetNumKeys(p, static_cast<uint16_t>(hi - lo));
  for (size_t i = lo; i < hi; ++i) {
    SetLeafEntry(p, static_cast<int>(i - lo), entries[i].key, entries[i].val);
  }
}

struct InternalContent {
  std::vector<uint64_t> keys;
  std::vector<PageId> children;  // keys.size() + 1
};

InternalContent ReadInternal(const char* p) {
  InternalContent c;
  int n = NumKeys(p);
  c.keys.resize(n);
  c.children.resize(n + 1);
  for (int i = 0; i < n; ++i) c.keys[i] = InternalKey(p, i);
  for (int i = 0; i <= n; ++i) c.children[i] = InternalChild(p, i);
  return c;
}

void WriteInternal(char* p, const InternalContent& c, size_t key_lo,
                   size_t key_hi) {
  SetNumKeys(p, static_cast<uint16_t>(key_hi - key_lo));
  SetInternalChild(p, 0, c.children[key_lo]);
  for (size_t i = key_lo; i < key_hi; ++i) {
    SetInternalKey(p, static_cast<int>(i - key_lo), c.keys[i]);
    SetInternalChild(p, static_cast<int>(i - key_lo) + 1, c.children[i + 1]);
  }
}

}  // namespace

BPlusTree::BPlusTree(BufferManager* bm, FileId file) : bm_(bm), file_(file) {}

// Node capacities derive from the usable page area, so trees in
// checksummed files transparently leave room for the page footer.
uint32_t BPlusTree::leaf_capacity() const {
  return (bm_->usable_page_size(file_) - kLeafHeader) / kLeafEntry;
}
uint32_t BPlusTree::internal_capacity() const {
  return (bm_->usable_page_size(file_) - kInternalHeader) / kInternalEntry;
}

Status BPlusTree::WriteMeta() {
  Result<PageHandle> meta = bm_->FetchPage(file_, 0);
  if (!meta.ok()) return meta.status();
  char* p = meta.value().data();
  Store<uint64_t>(p, kMagic);
  Store<PageId>(p + 8, root_);
  Store<uint32_t>(p + 12, height_);
  Store<uint64_t>(p + 16, count_);
  meta.value().MarkDirty();
  return Status::OK();
}

Status BPlusTree::ReadMeta() {
  Result<PageHandle> meta = bm_->FetchPage(file_, 0);
  if (!meta.ok()) return meta.status();
  const char* p = meta.value().data();
  if (Load<uint64_t>(p) != kMagic) {
    return Status::Corruption("BPlusTree: bad magic in meta page");
  }
  root_ = Load<PageId>(p + 8);
  height_ = Load<uint32_t>(p + 12);
  count_ = Load<uint64_t>(p + 16);
  return Status::OK();
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(BufferManager* bm,
                                                     FileId file) {
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(bm, file));
  if (bm->usable_page_size(file) < 64) {
    return Status::InvalidArgument("BPlusTree: page size too small");
  }
  {
    Result<PageHandle> meta = bm->NewPage(file);
    if (!meta.ok()) return meta.status();
    if (meta.value().page_id() != 0) {
      return Status::InvalidArgument("BPlusTree::Create: file not empty");
    }
  }
  Result<PageHandle> root = bm->NewPage(file);
  if (!root.ok()) return root.status();
  SetKind(root.value().data(), kLeaf);
  SetNumKeys(root.value().data(), 0);
  SetLeafNext(root.value().data(), kInvalidPageId);
  root.value().MarkDirty();
  tree->root_ = root.value().page_id();
  tree->height_ = 1;
  tree->count_ = 0;
  NETCLUS_RETURN_IF_ERROR(tree->WriteMeta());
  return tree;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(BufferManager* bm,
                                                   FileId file) {
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(bm, file));
  NETCLUS_RETURN_IF_ERROR(tree->ReadMeta());
  return tree;
}

Result<PageHandle> BPlusTree::FindLeaf(uint64_t key) const {
  PageId node = root_;
  for (uint32_t level = 1; level < height_; ++level) {
    Result<PageHandle> h = bm_->FetchPage(file_, node);
    if (!h.ok()) return h.status();
    const char* p = h.value().data();
    if (NodeKind(p) != kInternal) {
      return Status::Corruption("BPlusTree: expected internal node");
    }
    node = InternalChild(p, ChildIndex(p, key));
  }
  Result<PageHandle> h = bm_->FetchPage(file_, node);
  if (!h.ok()) return h.status();
  if (NodeKind(h.value().data()) != kLeaf) {
    return Status::Corruption("BPlusTree: expected leaf node");
  }
  return h;
}

Result<uint64_t> BPlusTree::Get(uint64_t key) const {
  Result<PageHandle> leaf = FindLeaf(key);
  if (!leaf.ok()) return leaf.status();
  const char* p = leaf.value().data();
  int i = LeafLowerBound(p, key);
  if (i < NumKeys(p) && LeafKey(p, i) == key) return LeafVal(p, i);
  return Status::NotFound("key not in tree");
}

Status BPlusTree::InsertRec(PageId node, uint64_t key, uint64_t value,
                            SplitResult* split, bool* inserted_new) {
  Result<PageHandle> h = bm_->FetchPage(file_, node);
  if (!h.ok()) return h.status();
  char* p = h.value().data();

  if (NodeKind(p) == kLeaf) {
    int i = LeafLowerBound(p, key);
    int n = NumKeys(p);
    if (i < n && LeafKey(p, i) == key) {
      SetLeafEntry(p, i, key, value);
      h.value().MarkDirty();
      *inserted_new = false;
      return Status::OK();
    }
    *inserted_new = true;
    if (n < static_cast<int>(leaf_capacity())) {
      std::memmove(p + kLeafHeader + (i + 1) * kLeafEntry,
                   p + kLeafHeader + i * kLeafEntry, (n - i) * kLeafEntry);
      SetLeafEntry(p, i, key, value);
      SetNumKeys(p, static_cast<uint16_t>(n + 1));
      h.value().MarkDirty();
      return Status::OK();
    }
    // Split the full leaf.
    std::vector<Entry> entries = ReadLeafEntries(p);
    entries.insert(entries.begin() + i, Entry{key, value});
    Result<PageHandle> right = bm_->NewPage(file_);
    if (!right.ok()) return right.status();
    char* rp = right.value().data();
    size_t mid = entries.size() / 2;
    SetKind(rp, kLeaf);
    SetLeafNext(rp, LeafNext(p));
    WriteLeafEntries(rp, entries, mid, entries.size());
    right.value().MarkDirty();
    SetLeafNext(p, right.value().page_id());
    WriteLeafEntries(p, entries, 0, mid);
    h.value().MarkDirty();
    split->did_split = true;
    split->separator = entries[mid].key;
    split->right = right.value().page_id();
    return Status::OK();
  }

  // Internal node.
  int idx = ChildIndex(p, key);
  PageId child = InternalChild(p, idx);
  SplitResult child_split;
  NETCLUS_RETURN_IF_ERROR(
      InsertRec(child, key, value, &child_split, inserted_new));
  if (!child_split.did_split) return Status::OK();

  int n = NumKeys(p);
  if (n < static_cast<int>(internal_capacity())) {
    // Shift (key, right-child) pairs one slot to the right.
    std::memmove(p + kInternalHeader + (idx + 1) * kInternalEntry,
                 p + kInternalHeader + idx * kInternalEntry,
                 (n - idx) * kInternalEntry);
    SetInternalKey(p, idx, child_split.separator);
    SetInternalChild(p, idx + 1, child_split.right);
    SetNumKeys(p, static_cast<uint16_t>(n + 1));
    h.value().MarkDirty();
    return Status::OK();
  }
  // Split the full internal node; the middle key moves up.
  InternalContent c = ReadInternal(p);
  c.keys.insert(c.keys.begin() + idx, child_split.separator);
  c.children.insert(c.children.begin() + idx + 1, child_split.right);
  size_t mid = c.keys.size() / 2;
  Result<PageHandle> right = bm_->NewPage(file_);
  if (!right.ok()) return right.status();
  char* rp = right.value().data();
  SetKind(rp, kInternal);
  WriteInternal(rp, c, mid + 1, c.keys.size());
  right.value().MarkDirty();
  WriteInternal(p, c, 0, mid);
  h.value().MarkDirty();
  split->did_split = true;
  split->separator = c.keys[mid];
  split->right = right.value().page_id();
  return Status::OK();
}

Status BPlusTree::Insert(uint64_t key, uint64_t value) {
  SplitResult split;
  bool inserted_new = false;
  NETCLUS_RETURN_IF_ERROR(InsertRec(root_, key, value, &split, &inserted_new));
  if (split.did_split) {
    Result<PageHandle> new_root = bm_->NewPage(file_);
    if (!new_root.ok()) return new_root.status();
    char* p = new_root.value().data();
    SetKind(p, kInternal);
    SetNumKeys(p, 1);
    SetInternalChild(p, 0, root_);
    SetInternalKey(p, 0, split.separator);
    SetInternalChild(p, 1, split.right);
    new_root.value().MarkDirty();
    root_ = new_root.value().page_id();
    ++height_;
  }
  if (inserted_new) ++count_;
  return WriteMeta();
}

Status BPlusTree::RebalanceChild(PageHandle& parent, int child_idx) {
  char* pp = parent.data();
  int n = NumKeys(pp);
  // Prefer the left sibling; the leftmost child uses its right sibling.
  int left_idx = child_idx > 0 ? child_idx - 1 : child_idx;
  int right_idx = left_idx + 1;
  Result<PageHandle> lh = bm_->FetchPage(file_, InternalChild(pp, left_idx));
  if (!lh.ok()) return lh.status();
  Result<PageHandle> rh = bm_->FetchPage(file_, InternalChild(pp, right_idx));
  if (!rh.ok()) return rh.status();
  char* lp = lh.value().data();
  char* rp = rh.value().data();
  bool leaf = NodeKind(lp) == kLeaf;
  uint32_t min_keys = (leaf ? leaf_capacity() : internal_capacity()) / 2;
  // `donor` is the sibling of the underflowing child.
  bool child_is_left = (left_idx == child_idx);
  char* donor = child_is_left ? rp : lp;

  if (NumKeys(donor) > min_keys) {
    // Borrow one entry through the parent separator.
    if (leaf) {
      std::vector<Entry> le = ReadLeafEntries(lp);
      std::vector<Entry> re = ReadLeafEntries(rp);
      if (child_is_left) {
        le.push_back(re.front());
        re.erase(re.begin());
      } else {
        re.insert(re.begin(), le.back());
        le.pop_back();
      }
      WriteLeafEntries(lp, le, 0, le.size());
      WriteLeafEntries(rp, re, 0, re.size());
      SetInternalKey(pp, left_idx, re.front().key);
    } else {
      InternalContent lc = ReadInternal(lp);
      InternalContent rc = ReadInternal(rp);
      uint64_t sep = InternalKey(pp, left_idx);
      if (child_is_left) {
        lc.keys.push_back(sep);
        lc.children.push_back(rc.children.front());
        SetInternalKey(pp, left_idx, rc.keys.front());
        rc.keys.erase(rc.keys.begin());
        rc.children.erase(rc.children.begin());
      } else {
        rc.keys.insert(rc.keys.begin(), sep);
        rc.children.insert(rc.children.begin(), lc.children.back());
        SetInternalKey(pp, left_idx, lc.keys.back());
        lc.keys.pop_back();
        lc.children.pop_back();
      }
      WriteInternal(lp, lc, 0, lc.keys.size());
      WriteInternal(rp, rc, 0, rc.keys.size());
    }
    lh.value().MarkDirty();
    rh.value().MarkDirty();
    parent.MarkDirty();
    return Status::OK();
  }

  // Merge right into left, then drop the separator from the parent.
  if (leaf) {
    std::vector<Entry> le = ReadLeafEntries(lp);
    std::vector<Entry> re = ReadLeafEntries(rp);
    le.insert(le.end(), re.begin(), re.end());
    SetLeafNext(lp, LeafNext(rp));
    WriteLeafEntries(lp, le, 0, le.size());
  } else {
    InternalContent lc = ReadInternal(lp);
    InternalContent rc = ReadInternal(rp);
    lc.keys.push_back(InternalKey(pp, left_idx));
    lc.keys.insert(lc.keys.end(), rc.keys.begin(), rc.keys.end());
    lc.children.insert(lc.children.end(), rc.children.begin(),
                       rc.children.end());
    WriteInternal(lp, lc, 0, lc.keys.size());
  }
  lh.value().MarkDirty();
  // Remove separator `left_idx` and child `right_idx` from the parent.
  std::memmove(pp + kInternalHeader + left_idx * kInternalEntry,
               pp + kInternalHeader + right_idx * kInternalEntry,
               (n - right_idx) * kInternalEntry);
  SetNumKeys(pp, static_cast<uint16_t>(n - 1));
  parent.MarkDirty();
  // The right page is now orphaned; a production system would return it to
  // a free list. Space reuse is out of scope for these experiments.
  return Status::OK();
}

Status BPlusTree::DeleteRec(PageId node, uint64_t key, bool* underflow) {
  Result<PageHandle> h = bm_->FetchPage(file_, node);
  if (!h.ok()) return h.status();
  char* p = h.value().data();

  if (NodeKind(p) == kLeaf) {
    int i = LeafLowerBound(p, key);
    int n = NumKeys(p);
    if (i >= n || LeafKey(p, i) != key) {
      return Status::NotFound("key not in tree");
    }
    std::memmove(p + kLeafHeader + i * kLeafEntry,
                 p + kLeafHeader + (i + 1) * kLeafEntry,
                 (n - i - 1) * kLeafEntry);
    SetNumKeys(p, static_cast<uint16_t>(n - 1));
    h.value().MarkDirty();
    --count_;
    *underflow = static_cast<uint32_t>(n - 1) < leaf_capacity() / 2;
    return Status::OK();
  }

  int idx = ChildIndex(p, key);
  bool child_underflow = false;
  NETCLUS_RETURN_IF_ERROR(
      DeleteRec(InternalChild(p, idx), key, &child_underflow));
  if (child_underflow) {
    NETCLUS_RETURN_IF_ERROR(RebalanceChild(h.value(), idx));
  }
  *underflow = NumKeys(p) < internal_capacity() / 2;
  return Status::OK();
}

Status BPlusTree::Delete(uint64_t key) {
  bool underflow = false;
  NETCLUS_RETURN_IF_ERROR(DeleteRec(root_, key, &underflow));
  // Collapse an empty internal root.
  if (height_ > 1) {
    Result<PageHandle> h = bm_->FetchPage(file_, root_);
    if (!h.ok()) return h.status();
    if (NumKeys(h.value().data()) == 0) {
      root_ = InternalChild(h.value().data(), 0);
      --height_;
    }
  }
  return WriteMeta();
}

Result<std::pair<uint64_t, uint64_t>> BPlusTree::FloorEntry(
    uint64_t key) const {
  // Descend to the target leaf, remembering the nearest subtree to the
  // left; the floor lives there when the leaf holds no key <= `key`.
  PageId node = root_;
  PageId left_subtree = kInvalidPageId;
  for (uint32_t level = 1; level < height_; ++level) {
    Result<PageHandle> h = bm_->FetchPage(file_, node);
    if (!h.ok()) return h.status();
    const char* p = h.value().data();
    int idx = ChildIndex(p, key);
    if (idx > 0) left_subtree = InternalChild(p, idx - 1);
    node = InternalChild(p, idx);
  }
  {
    Result<PageHandle> h = bm_->FetchPage(file_, node);
    if (!h.ok()) return h.status();
    const char* p = h.value().data();
    int i = LeafLowerBound(p, key);
    if (i < NumKeys(p) && LeafKey(p, i) == key) {
      return std::make_pair(LeafKey(p, i), LeafVal(p, i));
    }
    if (i > 0) {
      return std::make_pair(LeafKey(p, i - 1), LeafVal(p, i - 1));
    }
  }
  if (left_subtree == kInvalidPageId) {
    return Status::NotFound("no key <= probe");
  }
  // Rightmost descent from the recorded left subtree.
  node = left_subtree;
  while (true) {
    Result<PageHandle> h = bm_->FetchPage(file_, node);
    if (!h.ok()) return h.status();
    const char* p = h.value().data();
    if (NodeKind(p) == kLeaf) {
      int n = NumKeys(p);
      if (n == 0) return Status::Corruption("empty non-root leaf");
      return std::make_pair(LeafKey(p, n - 1), LeafVal(p, n - 1));
    }
    node = InternalChild(p, NumKeys(p));
  }
}

Status BPlusTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, uint64_t)>& fn) const {
  Result<PageHandle> leaf = FindLeaf(lo);
  if (!leaf.ok()) return leaf.status();
  PageHandle h = std::move(leaf.value());
  while (true) {
    const char* p = h.data();
    int n = NumKeys(p);
    for (int i = LeafLowerBound(p, lo); i < n; ++i) {
      uint64_t k = LeafKey(p, i);
      if (k > hi) return Status::OK();
      if (!fn(k, LeafVal(p, i))) return Status::OK();
    }
    PageId next = LeafNext(p);
    if (next == kInvalidPageId) return Status::OK();
    Result<PageHandle> nh = bm_->FetchPage(file_, next);
    if (!nh.ok()) return nh.status();
    h = std::move(nh.value());
  }
}

Status BPlusTree::BulkLoad(
    const std::vector<std::pair<uint64_t, uint64_t>>& sorted) {
  if (count_ != 0) {
    return Status::InvalidArgument("BulkLoad: tree not empty");
  }
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1].first >= sorted[i].first) {
      return Status::InvalidArgument("BulkLoad: keys not strictly increasing");
    }
  }
  if (sorted.empty()) return Status::OK();

  // Level 0: packed leaves. `level` collects (first key of node, page id).
  std::vector<std::pair<uint64_t, PageId>> level;
  const uint32_t lcap = leaf_capacity();
  size_t pos = 0;
  PageHandle prev_leaf;
  while (pos < sorted.size()) {
    size_t take = std::min<size_t>(lcap, sorted.size() - pos);
    size_t remaining = sorted.size() - pos - take;
    // Keep the final leaf at >= half occupancy by leaving it more entries.
    if (remaining > 0 && remaining < lcap / 2) {
      take = sorted.size() - pos - lcap / 2;
    }
    Result<PageHandle> h = bm_->NewPage(file_);
    if (!h.ok()) return h.status();
    char* p = h.value().data();
    SetKind(p, kLeaf);
    SetLeafNext(p, kInvalidPageId);
    SetNumKeys(p, static_cast<uint16_t>(take));
    for (size_t i = 0; i < take; ++i) {
      SetLeafEntry(p, static_cast<int>(i), sorted[pos + i].first,
                   sorted[pos + i].second);
    }
    h.value().MarkDirty();
    if (prev_leaf.valid()) {
      SetLeafNext(prev_leaf.data(), h.value().page_id());
      prev_leaf.MarkDirty();
    }
    level.emplace_back(sorted[pos].first, h.value().page_id());
    prev_leaf = std::move(h.value());
    pos += take;
  }
  prev_leaf.Release();

  // Internal levels until a single root remains.
  uint32_t height = 1;
  const uint32_t icap = internal_capacity();
  while (level.size() > 1) {
    std::vector<std::pair<uint64_t, PageId>> next_level;
    size_t i = 0;
    while (i < level.size()) {
      // children per node = keys + 1; cap at icap keys.
      size_t take = std::min<size_t>(icap + 1, level.size() - i);
      size_t remaining = level.size() - i - take;
      if (remaining > 0 && remaining < icap / 2 + 1) {
        take = level.size() - i - (icap / 2 + 1);
      }
      if (take < 2 && level.size() - i >= 2) take = 2;
      Result<PageHandle> h = bm_->NewPage(file_);
      if (!h.ok()) return h.status();
      char* p = h.value().data();
      SetKind(p, kInternal);
      SetNumKeys(p, static_cast<uint16_t>(take - 1));
      SetInternalChild(p, 0, level[i].second);
      for (size_t j = 1; j < take; ++j) {
        SetInternalKey(p, static_cast<int>(j - 1), level[i + j].first);
        SetInternalChild(p, static_cast<int>(j), level[i + j].second);
      }
      h.value().MarkDirty();
      next_level.emplace_back(level[i].first, h.value().page_id());
      i += take;
    }
    level = std::move(next_level);
    ++height;
  }
  root_ = level.front().second;
  height_ = height;
  count_ = sorted.size();
  return WriteMeta();
}

namespace {
struct CheckState {
  uint64_t count = 0;
  std::vector<PageId> leaves_in_order;
};
}  // namespace

Status BPlusTree::CheckInvariants() const {
  // Recursive structural check via an explicit lambda.
  CheckState st;
  std::function<Status(PageId, uint32_t, bool, bool, uint64_t, bool, uint64_t)>
      walk = [&](PageId node, uint32_t depth, bool is_root, bool has_lo,
                 uint64_t lo, bool has_hi, uint64_t hi) -> Status {
    Result<PageHandle> h = bm_->FetchPage(file_, node);
    if (!h.ok()) return h.status();
    const char* p = h.value().data();
    int n = NumKeys(p);
    if (NodeKind(p) == kLeaf) {
      if (depth != height_) return Status::Corruption("leaf at wrong depth");
      if (!is_root && static_cast<uint32_t>(n) < leaf_capacity() / 2) {
        return Status::Corruption("leaf underflow");
      }
      for (int i = 0; i < n; ++i) {
        uint64_t k = LeafKey(p, i);
        if (i > 0 && LeafKey(p, i - 1) >= k) {
          return Status::Corruption("leaf keys not increasing");
        }
        if ((has_lo && k < lo) || (has_hi && k >= hi)) {
          return Status::Corruption("leaf key outside separator range");
        }
      }
      st.count += n;
      st.leaves_in_order.push_back(node);
      return Status::OK();
    }
    if (NodeKind(p) != kInternal) return Status::Corruption("bad node kind");
    if (!is_root && static_cast<uint32_t>(n) < internal_capacity() / 2) {
      return Status::Corruption("internal underflow");
    }
    if (is_root && n < 1) return Status::Corruption("internal root empty");
    for (int i = 0; i < n; ++i) {
      uint64_t k = InternalKey(p, i);
      if (i > 0 && InternalKey(p, i - 1) >= k) {
        return Status::Corruption("internal keys not increasing");
      }
      if ((has_lo && k < lo) || (has_hi && k >= hi)) {
        return Status::Corruption("separator outside range");
      }
    }
    for (int i = 0; i <= n; ++i) {
      bool child_has_lo = has_lo || i > 0;
      uint64_t child_lo = i > 0 ? InternalKey(p, i - 1) : lo;
      bool child_has_hi = has_hi || i < n;
      uint64_t child_hi = i < n ? InternalKey(p, i) : hi;
      NETCLUS_RETURN_IF_ERROR(walk(InternalChild(p, i), depth + 1, false,
                                   child_has_lo, child_lo, child_has_hi,
                                   child_hi));
    }
    return Status::OK();
  };
  NETCLUS_RETURN_IF_ERROR(walk(root_, 1, true, false, 0, false, 0));
  if (st.count != count_) return Status::Corruption("count mismatch");
  // Leaf chain must visit the leaves in key order.
  for (size_t i = 0; i + 1 < st.leaves_in_order.size(); ++i) {
    Result<PageHandle> h = bm_->FetchPage(file_, st.leaves_in_order[i]);
    if (!h.ok()) return h.status();
    if (LeafNext(h.value().data()) != st.leaves_in_order[i + 1]) {
      return Status::Corruption("leaf chain broken");
    }
  }
  if (!st.leaves_in_order.empty()) {
    Result<PageHandle> h = bm_->FetchPage(file_, st.leaves_in_order.back());
    if (!h.ok()) return h.status();
    if (LeafNext(h.value().data()) != kInvalidPageId) {
      return Status::Corruption("last leaf has a next pointer");
    }
  }
  return Status::OK();
}

}  // namespace netclus
