#include "storage/paged_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace netclus {

PagedFile::PagedFile(uint32_t page_size, int fd)
    : page_size_(page_size), fd_(fd) {}

PagedFile::~PagedFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<PagedFile> PagedFile::CreateInMemory(uint32_t page_size) {
  return std::unique_ptr<PagedFile>(new PagedFile(page_size, -1));
}

Result<std::unique_ptr<PagedFile>> PagedFile::Open(const std::string& path,
                                                   uint32_t page_size,
                                                   bool truncate) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek " + path + ": " + std::strerror(errno));
  }
  if (size % page_size != 0) {
    ::close(fd);
    return Status::Corruption(path + ": size is not a multiple of page size");
  }
  auto file = std::unique_ptr<PagedFile>(new PagedFile(page_size, fd));
  file->num_pages_ = static_cast<PageId>(size / page_size);
  return file;
}

Result<PageId> PagedFile::AllocatePage() {
  PageId id = num_pages_;
  if (fd_ >= 0) {
    std::vector<char> zeros(page_size_, 0);
    ssize_t n = ::pwrite(fd_, zeros.data(), page_size_,
                         static_cast<off_t>(id) * page_size_);
    if (n != static_cast<ssize_t>(page_size_)) {
      return Status::IOError("pwrite: " + std::string(std::strerror(errno)));
    }
  } else {
    auto page = std::make_unique<char[]>(page_size_);
    std::memset(page.get(), 0, page_size_);
    mem_pages_.push_back(std::move(page));
  }
  ++num_pages_;
  ++stats_.pages_allocated;
  return id;
}

Status PagedFile::ReadPage(PageId id, char* out) {
  if (id >= num_pages_) {
    return Status::OutOfRange("ReadPage: page id out of range");
  }
  if (fd_ >= 0) {
    ssize_t n = ::pread(fd_, out, page_size_,
                        static_cast<off_t>(id) * page_size_);
    if (n != static_cast<ssize_t>(page_size_)) {
      return Status::IOError("pread: " + std::string(std::strerror(errno)));
    }
  } else {
    std::memcpy(out, mem_pages_[id].get(), page_size_);
  }
  ++stats_.page_reads;
  return Status::OK();
}

Status PagedFile::WritePage(PageId id, const char* data) {
  if (id >= num_pages_) {
    return Status::OutOfRange("WritePage: page id out of range");
  }
  if (fd_ >= 0) {
    ssize_t n = ::pwrite(fd_, data, page_size_,
                         static_cast<off_t>(id) * page_size_);
    if (n != static_cast<ssize_t>(page_size_)) {
      return Status::IOError("pwrite: " + std::string(std::strerror(errno)));
    }
  } else {
    std::memcpy(mem_pages_[id].get(), data, page_size_);
  }
  ++stats_.page_writes;
  return Status::OK();
}

}  // namespace netclus
