#include "storage/paged_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace netclus {

namespace {

class InMemoryPagedFile final : public PagedFile {
 public:
  explicit InMemoryPagedFile(uint32_t page_size) : PagedFile(page_size) {}

 protected:
  Status DoAllocate(PageId id) override {
    (void)id;
    auto page = std::make_unique<char[]>(page_size_);
    std::memset(page.get(), 0, page_size_);
    pages_.push_back(std::move(page));
    return Status::OK();
  }
  Status DoRead(PageId id, char* out) override {
    std::memcpy(out, pages_[id].get(), page_size_);
    return Status::OK();
  }
  Status DoWrite(PageId id, const char* data) override {
    std::memcpy(pages_[id].get(), data, page_size_);
    return Status::OK();
  }
  Status DoTruncate(PageId new_num_pages) override {
    pages_.resize(new_num_pages);
    return Status::OK();
  }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

class PosixPagedFile final : public PagedFile {
 public:
  PosixPagedFile(uint32_t page_size, int fd) : PagedFile(page_size), fd_(fd) {}
  ~PosixPagedFile() override { ::close(fd_); }

  void set_num_pages(PageId n) { num_pages_ = n; }

 protected:
  Status DoAllocate(PageId id) override {
    std::vector<char> zeros(page_size_, 0);
    return DoWrite(id, zeros.data());
  }
  Status DoRead(PageId id, char* out) override {
    ssize_t n = ::pread(fd_, out, page_size_,
                        static_cast<off_t>(id) * page_size_);
    if (n < 0) {
      return Status::IOError("pread: " + std::string(std::strerror(errno)));
    }
    if (n != static_cast<ssize_t>(page_size_)) {
      // A short read of a page we know exists is transient (signal,
      // concurrent truncation being repaired, ...); let callers retry.
      return Status::Unavailable("pread: short read of page " +
                                 std::to_string(id));
    }
    return Status::OK();
  }
  Status DoWrite(PageId id, const char* data) override {
    ssize_t n = ::pwrite(fd_, data, page_size_,
                         static_cast<off_t>(id) * page_size_);
    if (n != static_cast<ssize_t>(page_size_)) {
      return Status::IOError("pwrite: " + std::string(std::strerror(errno)));
    }
    return Status::OK();
  }
  Status DoTruncate(PageId new_num_pages) override {
    if (::ftruncate(fd_, static_cast<off_t>(new_num_pages) * page_size_) !=
        0) {
      return Status::IOError("ftruncate: " +
                             std::string(std::strerror(errno)));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

}  // namespace

std::unique_ptr<PagedFile> PagedFile::CreateInMemory(uint32_t page_size) {
  return std::make_unique<InMemoryPagedFile>(page_size);
}

Result<std::unique_ptr<PagedFile>> PagedFile::Open(const std::string& path,
                                                   uint32_t page_size,
                                                   bool truncate) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek " + path + ": " + std::strerror(errno));
  }
  if (size % page_size != 0) {
    ::close(fd);
    return Status::Corruption(path + ": size is not a multiple of page size");
  }
  auto file = std::make_unique<PosixPagedFile>(page_size, fd);
  file->set_num_pages(static_cast<PageId>(size / page_size));
  return std::unique_ptr<PagedFile>(std::move(file));
}

Result<PageId> PagedFile::AllocatePage() {
  PageId id = num_pages_;
  Status s = DoAllocate(id);
  if (!s.ok()) {
    ++stats_.failed_writes;
    return s;
  }
  ++num_pages_;
  ++stats_.pages_allocated;
  return id;
}

Status PagedFile::ReadPage(PageId id, char* out) {
  if (id >= num_pages_) {
    return Status::OutOfRange("ReadPage: page id out of range");
  }
  ++stats_.page_reads;
  Status s = DoRead(id, out);
  if (!s.ok()) ++stats_.failed_reads;
  return s;
}

Status PagedFile::WritePage(PageId id, const char* data) {
  if (id >= num_pages_) {
    return Status::OutOfRange("WritePage: page id out of range");
  }
  ++stats_.page_writes;
  Status s = DoWrite(id, data);
  if (!s.ok()) ++stats_.failed_writes;
  return s;
}

Status PagedFile::Truncate(PageId new_num_pages) {
  if (new_num_pages > num_pages_) {
    return Status::OutOfRange("Truncate: cannot grow a file");
  }
  if (new_num_pages == num_pages_) return Status::OK();
  Status s = DoTruncate(new_num_pages);
  if (!s.ok()) {
    ++stats_.failed_writes;
    return s;
  }
  num_pages_ = new_num_pages;
  return s;
}

Status PagedFile::DoTruncate(PageId new_num_pages) {
  (void)new_num_pages;
  return Status::Internal("Truncate: not supported by this backend");
}

}  // namespace netclus
