#include "storage/fault_injection.h"

#include <cstring>
#include <string>

namespace netclus {

namespace {
std::string Describe(const char* what, PageId page) {
  return std::string("injected ") + what + " (page " + std::to_string(page) +
         ")";
}
}  // namespace

FaultInjectionFile::FaultInjectionFile(PagedFile* base)
    : PagedFile(base->page_size()), base_(base) {
  num_pages_ = base->num_pages();
}

void FaultInjectionFile::AddFault(const FaultEvent& event) {
  schedule_.push_back(event);
}

void FaultInjectionFile::EnableRandomFaults(uint64_t seed,
                                            double transient_prob,
                                            double bit_flip_prob) {
  random_enabled_ = true;
  rng_ = Rng(seed);
  transient_prob_ = transient_prob;
  bit_flip_prob_ = bit_flip_prob;
}

void FaultInjectionFile::ClearFaults() {
  schedule_.clear();
  random_enabled_ = false;
}

const FaultEvent* FaultInjectionFile::Match(FaultOp op, uint64_t index,
                                            PageId page) const {
  for (const FaultEvent& e : schedule_) {
    if (e.op != op) continue;
    // index - op_index, not op_index + count: the sum overflows for
    // open-ended events (count = UINT64_MAX at a nonzero start).
    if (index < e.op_index || index - e.op_index >= e.count) continue;
    if (e.page != kInvalidPageId && e.page != page) continue;
    return &e;
  }
  return nullptr;
}

Status FaultInjectionFile::DoAllocate(PageId id) {
  // Allocation goes straight to the backend; read/write faults model the
  // data path. Keep the decorator's page count mirroring the backend's.
  Result<PageId> allocated = base_->AllocatePage();
  if (!allocated.ok()) return allocated.status();
  (void)id;
  return Status::OK();
}

Status FaultInjectionFile::DoTruncate(PageId new_num_pages) {
  // Truncation passes through un-faulted (it is a metadata op, not the
  // data path the fault kinds model); mirror the backend's page count.
  return base_->Truncate(new_num_pages);
}

Status FaultInjectionFile::DoRead(PageId id, char* out) {
  uint64_t index = read_ops_++;
  const FaultEvent* e = Match(FaultOp::kRead, index, id);
  FaultKind kind;
  uint32_t flip_byte;
  uint8_t flip_mask;
  if (e != nullptr) {
    kind = e->kind;
    flip_byte = e->byte;
    flip_mask = e->bit_mask;
  } else if (random_enabled_ && rng_.NextBernoulli(transient_prob_)) {
    kind = FaultKind::kTransientError;
    flip_byte = 0;
    flip_mask = 0;
  } else if (random_enabled_ && rng_.NextBernoulli(bit_flip_prob_)) {
    kind = FaultKind::kBitFlip;
    flip_byte = static_cast<uint32_t>(rng_.NextBounded(page_size_));
    flip_mask = static_cast<uint8_t>(1u << rng_.NextBounded(8));
  } else {
    return base_->ReadPage(id, out);
  }
  switch (kind) {
    case FaultKind::kTransientError:
      ++fault_stats_.transient_errors;
      return Status::Unavailable(Describe("transient read error", id));
    case FaultKind::kPermanentError:
      ++fault_stats_.permanent_errors;
      return Status::IOError(Describe("read error", id));
    case FaultKind::kShortRead: {
      ++fault_stats_.short_reads;
      std::memset(out, 0, page_size_);
      Status s = base_->ReadPage(id, out);  // then keep only a prefix
      if (!s.ok()) return s;
      std::memset(out + page_size_ / 2, 0, page_size_ - page_size_ / 2);
      return Status::Unavailable(Describe("short read", id));
    }
    case FaultKind::kTornWrite:  // write-only kind; treat as transparent
      return base_->ReadPage(id, out);
    case FaultKind::kBitFlip: {
      ++fault_stats_.bit_flips;
      Status s = base_->ReadPage(id, out);
      if (!s.ok()) return s;
      out[flip_byte % page_size_] ^= static_cast<char>(flip_mask);
      return Status::OK();  // silent: the checksum layer must catch this
    }
  }
  return Status::Internal("unreachable fault kind");
}

Status FaultInjectionFile::DoWrite(PageId id, const char* data) {
  uint64_t index = write_ops_++;
  const FaultEvent* e = Match(FaultOp::kWrite, index, id);
  if (e == nullptr) return base_->WritePage(id, data);
  switch (e->kind) {
    case FaultKind::kTransientError:
      ++fault_stats_.transient_errors;
      return Status::Unavailable(Describe("transient write error", id));
    case FaultKind::kPermanentError:
      ++fault_stats_.permanent_errors;
      return Status::IOError(Describe("write error", id));
    case FaultKind::kTornWrite: {
      // The first half of the page reaches the medium, the rest keeps the
      // old content — the classic power-cut torn page.
      ++fault_stats_.torn_writes;
      std::vector<char> merged(page_size_);
      Status s = base_->ReadPage(id, merged.data());
      if (!s.ok()) return s;
      std::memcpy(merged.data(), data, page_size_ / 2);
      s = base_->WritePage(id, merged.data());
      if (!s.ok()) return s;
      return Status::IOError(Describe("torn write", id));
    }
    case FaultKind::kShortRead:  // read-only kind; treat as transparent
      return base_->WritePage(id, data);
    case FaultKind::kBitFlip: {
      ++fault_stats_.bit_flips;
      std::vector<char> flipped(data, data + page_size_);
      flipped[e->byte % page_size_] ^= static_cast<char>(e->bit_mask);
      return base_->WritePage(id, flipped.data());
    }
  }
  return Status::Internal("unreachable fault kind");
}

}  // namespace netclus
