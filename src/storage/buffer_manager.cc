#include "storage/buffer_manager.h"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/crc32c.h"

namespace netclus {

namespace {

// Footer of a checksummed page: [crc32c u32][page id u32], where the crc
// covers the payload plus the page id, so a structurally valid page read
// from the wrong offset (misdirected I/O) also fails verification.
uint32_t PageCrc(const char* data, uint32_t payload_bytes, PageId page) {
  uint32_t crc = Crc32c(data, payload_bytes);
  return Crc32cExtend(crc, &page, sizeof(page));
}

}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    bm_ = other.bm_;
    frame_ = other.frame_;
    data_ = other.data_;
    file_id_ = other.file_id_;
    page_id_ = other.page_id_;
    other.bm_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  if (bm_ != nullptr) bm_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (bm_ != nullptr) {
    bm_->Unpin(frame_, /*dirty=*/false);
    bm_ = nullptr;
    data_ = nullptr;
  }
}

BufferManager::BufferManager(uint64_t pool_bytes, uint32_t page_size)
    : page_size_(page_size) {
  size_t n = static_cast<size_t>(pool_bytes / page_size);
  if (n == 0) n = 1;
  frames_.resize(n);
  free_frames_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    frames_[i].data = std::make_unique<char[]>(page_size_);
    free_frames_.push_back(n - 1 - i);  // hand out frame 0 first
  }
}

BufferManager::~BufferManager() {
  Status s = FlushAll();
  (void)s;  // destructor cannot propagate errors; tests call FlushAll().
}

FileId BufferManager::RegisterFile(PagedFile* file, bool checksummed) {
  // A mismatched page size would corrupt every frame swap; this is a
  // caller bug, kept fatal in release builds.
  NETCLUS_CHECK_EQ(file->page_size(), page_size_)
      << "RegisterFile: file page size does not match the buffer pool";
  files_.push_back(file);
  checksummed_.push_back(checksummed);
  return static_cast<FileId>(files_.size() - 1);
}

Status BufferManager::ReadPageChecked(FileId file, PageId page, char* out) {
  uint64_t backoff = retry_policy_.backoff_micros;
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = files_[file]->ReadPage(page, out);
    if (s.ok()) break;
    if (!s.IsUnavailable() || attempt >= retry_policy_.max_retries) {
      if (s.IsUnavailable()) ++stats_.retries_exhausted;
      return s;
    }
    ++stats_.read_retries;
    if (sleep_micros_) {
      sleep_micros_(backoff);
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
    backoff = static_cast<uint64_t>(
        static_cast<double>(backoff) * retry_policy_.backoff_multiplier);
  }
  if (!checksummed_[file]) return Status::OK();
  const uint32_t payload = page_size_ - kPageFooterBytes;
  uint32_t stored_crc, stored_page;
  std::memcpy(&stored_crc, out + payload, sizeof(stored_crc));
  std::memcpy(&stored_page, out + payload + 4, sizeof(stored_page));
  if (stored_page != page || stored_crc != PageCrc(out, payload, page)) {
    ++stats_.checksum_failures;
    return Status::Corruption(
        "page checksum mismatch: file " + std::to_string(file) + ", page " +
        std::to_string(page) + " (file offset " +
        std::to_string(static_cast<uint64_t>(page) * page_size_) + ")");
  }
  return Status::OK();
}

Status BufferManager::WritePageChecked(FileId file, PageId page, char* data) {
  if (checksummed_[file]) {
    const uint32_t payload = page_size_ - kPageFooterBytes;
    uint32_t crc = PageCrc(data, payload, page);
    std::memcpy(data + payload, &crc, sizeof(crc));
    std::memcpy(data + payload + 4, &page, sizeof(page));
  }
  return files_[file]->WritePage(page, data);
}

void BufferManager::Unpin(size_t frame, bool dirty) {
  Frame& f = frames_[frame];
  NETCLUS_CHECK_GT(f.pins, 0u)
      << "Unpin of frame " << frame << " without a matching pin";
  if (dirty) f.dirty = true;
  if (--f.pins == 0) {
    lru_.push_back(frame);
    f.lru_it = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Result<size_t> BufferManager::GrabFrame() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  size_t victim = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[victim];
  f.in_lru = false;
  if (f.dirty) {
    NETCLUS_RETURN_IF_ERROR(WritePageChecked(f.file, f.page, f.data.get()));
    f.dirty = false;
    ++stats_.dirty_writebacks;
  }
  page_table_.erase(Key(f.file, f.page));
  f.in_use = false;
  ++stats_.evictions;
  return victim;
}

Result<PageHandle> BufferManager::InstallPage(FileId file, PageId page,
                                              bool read_from_disk) {
  Result<size_t> grabbed = GrabFrame();
  if (!grabbed.ok()) return grabbed.status();
  size_t frame = grabbed.value();
  Frame& f = frames_[frame];
  if (read_from_disk) {
    Status s = ReadPageChecked(file, page, f.data.get());
    if (!s.ok()) {
      free_frames_.push_back(frame);
      return s;
    }
  } else {
    std::memset(f.data.get(), 0, page_size_);
  }
  f.file = file;
  f.page = page;
  f.pins = 1;
  f.dirty = false;
  f.in_use = true;
  f.in_lru = false;
  page_table_[Key(file, page)] = frame;
  return PageHandle(this, frame, f.data.get(), file, page);
}

Result<PageHandle> BufferManager::FetchPage(FileId file, PageId page) {
  if (file >= files_.size()) {
    return Status::InvalidArgument("FetchPage: unknown file id");
  }
  auto it = page_table_.find(Key(file, page));
  if (it != page_table_.end()) {
    ++stats_.hits;
    size_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.pins == 0 && f.in_lru) {
      lru_.erase(f.lru_it);
      f.in_lru = false;
    }
    ++f.pins;
    return PageHandle(this, frame, f.data.get(), file, page);
  }
  ++stats_.misses;
  return InstallPage(file, page, /*read_from_disk=*/true);
}

Result<PageHandle> BufferManager::NewPage(FileId file) {
  if (file >= files_.size()) {
    return Status::InvalidArgument("NewPage: unknown file id");
  }
  Result<PageId> page = files_[file]->AllocatePage();
  if (!page.ok()) return page.status();
  ++stats_.misses;
  Result<PageHandle> handle =
      InstallPage(file, page.value(), /*read_from_disk=*/false);
  if (handle.ok()) {
    // The zeroed content only exists in the frame; make sure it reaches
    // disk even if the caller never writes to the page.
    frames_[handle.value().frame_].dirty = true;
  }
  return handle;
}

Status BufferManager::FlushAll() {
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty) {
      NETCLUS_RETURN_IF_ERROR(WritePageChecked(f.file, f.page, f.data.get()));
      f.dirty = false;
      ++stats_.dirty_writebacks;
    }
  }
  return Status::OK();
}

size_t BufferManager::pinned_frames() const {
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.in_use && f.pins > 0) ++n;
  }
  return n;
}

}  // namespace netclus
