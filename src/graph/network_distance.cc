#include "graph/network_distance.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "graph/frozen_graph.h"

namespace netclus {

double DirectDistance(const PointPos& p, const PointPos& q) {
  if (p.u != q.u || p.v != q.v) return kInfDist;
  return std::fabs(p.offset - q.offset);
}

double DirectDistanceToNode(const PointPos& p, double edge_weight, NodeId n) {
  if (n == p.u) return p.offset;
  if (n == p.v) return edge_weight - p.offset;
  return kInfDist;
}

namespace {

// The implementations below are templated on the traversal graph: the
// live NetworkView (compatibility path, virtual dispatch per node) or a
// FrozenGraph CSR snapshot (inlined pointer walk). Point data (positions,
// edge points) always comes from the view — the snapshot carries
// adjacency and point-id ranges only. Both instantiations relax edges in
// the same order, so results are bit-identical.

template <typename Graph>
double PointNetworkDistanceImpl(const NetworkView& view, const Graph& graph,
                                PointId p, PointId q, NodeScratch* scratch,
                                std::vector<DijkstraHeapEntry>* heap,
                                TraversalCancel* cancel) {
  if (p == q) return 0.0;
  PointPos pp = view.PointPosition(p);
  PointPos qq = view.PointPosition(q);
  double wq = view.EdgeWeight(qq.u, qq.v);
  bool same_edge = pp.u == qq.u && pp.v == qq.v;
  double best = same_edge ? std::fabs(pp.offset - qq.offset) : kInfDist;

  double wp = view.EdgeWeight(pp.u, pp.v);
  std::vector<DijkstraSource> sources = {{pp.u, pp.offset},
                                         {pp.v, wp - pp.offset}};
  bool settled_u = false, settled_v = false;
  DijkstraExpandKernel(graph, sources, kInfDist, scratch, heap,
                       [&](NodeId n, double d) {
                         // All later settles have distance >= d, so once d
                         // reaches `best` no candidate can improve it.
                         if (d >= best) return false;
                         if (n == qq.u) {
                           best = std::min(best, d + qq.offset);
                           settled_u = true;
                         }
                         if (n == qq.v) {
                           best = std::min(best, d + wq - qq.offset);
                           settled_v = true;
                         }
                         return !(settled_u && settled_v);
                       },
                       cancel);
  return best;
}

// Second phase of RangeQuery, common to all overloads: inspect every
// edge incident to a settled node and emit the points within eps.
template <typename Graph>
void CollectRangePoints(const NetworkView& view, const Graph& graph,
                        const PointPos& c, double wc, double eps,
                        const NodeScratch& scratch,
                        const std::vector<std::pair<NodeId, double>>& settled,
                        std::vector<RangeResult>* out) {
  std::vector<EdgePoint> pts;
  auto process_edge = [&](NodeId a, NodeId b, double we) {
    view.GetEdgePoints(a, b, &pts);
    if (pts.empty()) return;
    NodeId u = std::min(a, b), v = std::max(a, b);
    double du = scratch.Get(u);  // kInfDist when not reached within eps
    double dv = scratch.Get(v);
    bool is_center_edge = (u == c.u && v == c.v);
    for (const EdgePoint& ep : pts) {
      double d = std::min(du + ep.offset, dv + (we - ep.offset));
      if (is_center_edge) d = std::min(d, std::fabs(ep.offset - c.offset));
      if (d <= eps) out->push_back(RangeResult{ep.id, d});
    }
  };

  std::unordered_set<uint64_t> seen_edges;
  seen_edges.insert(EdgeKeyOf(c.u, c.v));
  process_edge(c.u, c.v, wc);
  for (const auto& [n, d] : settled) {
    (void)d;
    VisitNeighbors(graph, n, [&](NodeId m, double we) {
      if (seen_edges.insert(EdgeKeyOf(n, m)).second) {
        process_edge(n, m, we);
      }
    });
  }
}

template <typename Graph>
void RangeQueryImpl(const NetworkView& view, const Graph& graph,
                    PointId center, double eps, TraversalWorkspace* ws,
                    std::vector<RangeResult>* out) {
  out->clear();
  PointPos c = view.PointPosition(center);
  double wc = view.EdgeWeight(c.u, c.v);

  ws->settled.clear();
  ws->cancel.triggered = false;
  DijkstraExpandBounded(graph, {{c.u, c.offset}, {c.v, wc - c.offset}}, eps,
                        ws, [&](NodeId n, double d) {
                          ws->settled.emplace_back(n, d);
                          return true;
                        });
  // A cancelled expansion settled only part of the region: the collection
  // phase would emit a silently incomplete (and wrong-distance) set.
  if (ws->cancel.triggered) return;
  CollectRangePoints(view, graph, c, wc, eps, ws->scratch, ws->settled, out);
}

template <typename Graph>
void RangeQueryAccelImpl(const NetworkView& view, const Graph& graph,
                         PointId center, double eps, TraversalWorkspace* ws,
                         const DistanceAccelerator* accel,
                         std::vector<RangeResult>* out) {
  out->clear();
  PointPos c = view.PointPosition(center);
  double wc = view.EdgeWeight(c.u, c.v);

  // Landmark prefilter: an expansion radius covering the farthest
  // in-range candidate is as good as eps (the proof needs every node on
  // an in-range point's shortest path to stay under the bound, and
  // those prefixes are <= the point's own distance).
  double bound = accel->RangeExpansionBound(center, eps);
  // Slack mirrors Tolerance(): a floor equal to the remaining budget up
  // to fp rounding must not prune.
  const double prune_cut = eps * (1.0 + 1e-9);
  ws->settled.clear();
  ws->cancel.triggered = false;
  DijkstraExpandBounded(
      graph, {{c.u, c.offset}, {c.v, wc - c.offset}}, bound, ws,
      [&](NodeId n, double d) {
        ws->settled.emplace_back(n, d);
        // Every point != center whose shortest path runs through n is at
        // least d + floor away; past eps, n's edges still get inspected
        // (it stays settled) but nothing needs to be reached through it.
        if (d + accel->NearestObjectFloor(n, center) > prune_cut) {
          return SettleAction::kSkipNeighbors;
        }
        return SettleAction::kContinue;
      });
  if (ws->cancel.triggered) return;
  CollectRangePoints(view, graph, c, wc, eps, ws->scratch, ws->settled, out);
  // Pruning changes the settle order, so canonicalize: emitted sets are
  // provably identical to the unaccelerated query, order is not.
  std::sort(out->begin(), out->end(),
            [](const RangeResult& a, const RangeResult& b) {
              return a.id < b.id;
            });
}

template <typename Graph>
void KNearestNeighborsImpl(const NetworkView& view, const Graph& graph,
                           PointId center, uint32_t k, NodeScratch* scratch,
                           TraversalCancel* cancel,
                           std::vector<RangeResult>* out) {
  out->clear();
  if (cancel != nullptr) cancel->triggered = false;
  if (k == 0) return;
  PointPos c = view.PointPosition(center);
  double wc = view.EdgeWeight(c.u, c.v);

  // Candidate bookkeeping: per-point best distance found so far (offers
  // via a settled endpoint are upper bounds that only improve), plus a
  // multiset of those distances to read the current k-th best.
  std::unordered_map<PointId, double> cand;
  std::multiset<double> dists;
  auto offer = [&](PointId id, double d) {
    if (id == center) return;
    auto [it, inserted] = cand.emplace(id, d);
    if (inserted) {
      dists.insert(d);
    } else if (d < it->second) {
      dists.erase(dists.find(it->second));
      it->second = d;
      dists.insert(d);
    }
  };
  auto bound = [&]() {
    if (dists.size() < k) return kInfDist;
    return *std::next(dists.begin(), k - 1);
  };

  std::vector<EdgePoint> pts;
  // Offers along an edge from a settled endpoint: every offered value is
  // a genuine path length, i.e. an upper bound on the point's distance.
  auto offer_edge = [&](NodeId from, NodeId to, double we, double dist) {
    view.GetEdgePoints(from, to, &pts);
    for (const EdgePoint& ep : pts) {
      double dl = from < to ? ep.offset : we - ep.offset;
      offer(ep.id, dist + dl);
    }
  };
  // The center's own edge is reachable without any node: offer the
  // direct distances (via-node paths for these points arrive when the
  // endpoints settle below).
  view.GetEdgePoints(c.u, c.v, &pts);
  for (const EdgePoint& ep : pts) {
    offer(ep.id, std::fabs(ep.offset - c.offset));
  }

  // INE-style expansion: a point whose best offer has not arrived yet
  // lies behind an unsettled node, so once the settle distance reaches
  // the current k-th candidate no candidate can improve.
  scratch->NewEpoch();
  struct Entry {
    double dist;
    NodeId node;
    bool operator>(const Entry& other) const { return dist > other.dist; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  scratch->Set(c.u, c.offset);
  heap.push(Entry{c.offset, c.u});
  if (scratch->Get(c.v) > wc - c.offset) {
    scratch->Set(c.v, wc - c.offset);
    heap.push(Entry{wc - c.offset, c.v});
  }
  // The INE loop is not the shared kernel, so it polls the cancellation
  // token itself, at the same cadence (every check_interval settles).
  const uint32_t poll_interval =
      cancel != nullptr ? std::max<uint32_t>(1, cancel->check_interval) : 0;
  uint32_t settles_until_poll = poll_interval;
  while (!heap.empty()) {
    auto [d, n] = heap.top();
    heap.pop();
    if (d > scratch->Get(n)) continue;  // stale
    if (d >= bound()) break;
    if (cancel != nullptr && --settles_until_poll == 0) {
      settles_until_poll = poll_interval;
      if (cancel->ShouldCancel()) {
        cancel->triggered = true;
        return;  // `out` stays empty — partial candidates are garbage
      }
    }
    VisitNeighbors(graph, n, [&](NodeId m, double we) {
      // Offer via this (settled) side; the other side offers again when
      // it settles, and per-point minimization keeps the best.
      offer_edge(n, m, we, d);
      double nd = d + we;
      if (nd < scratch->Get(m)) {
        scratch->Set(m, nd);
        heap.push(Entry{nd, m});
      }
    });
  }

  std::vector<RangeResult> results;
  results.reserve(cand.size());
  for (const auto& [id, d] : cand) results.push_back(RangeResult{id, d});
  std::sort(results.begin(), results.end(),
            [](const RangeResult& a, const RangeResult& b) {
              return a.dist != b.dist ? a.dist < b.dist : a.id < b.id;
            });
  if (results.size() > k) results.resize(k);
  *out = std::move(results);
}

}  // namespace

double PointNetworkDistance(const NetworkView& view, PointId p, PointId q,
                            NodeScratch* scratch) {
  std::vector<DijkstraHeapEntry> heap;
  return PointNetworkDistanceImpl(view, view, p, q, scratch, &heap, nullptr);
}

double PointNetworkDistance(const NetworkView& view, const FrozenGraph& frozen,
                            PointId p, PointId q, NodeScratch* scratch) {
  std::vector<DijkstraHeapEntry> heap;
  return PointNetworkDistanceImpl(view, frozen, p, q, scratch, &heap, nullptr);
}

void RangeQuery(const NetworkView& view, PointId center, double eps,
                NodeScratch* scratch, std::vector<RangeResult>* out) {
  out->clear();
  PointPos c = view.PointPosition(center);
  double wc = view.EdgeWeight(c.u, c.v);

  std::vector<std::pair<NodeId, double>> settled;
  DijkstraExpandBounded(view, {{c.u, c.offset}, {c.v, wc - c.offset}}, eps,
                        scratch, [&](NodeId n, double d) {
                          settled.emplace_back(n, d);
                          return true;
                        });
  CollectRangePoints(view, view, c, wc, eps, *scratch, settled, out);
}

void RangeQuery(const NetworkView& view, PointId center, double eps,
                TraversalWorkspace* ws, std::vector<RangeResult>* out) {
  RangeQueryImpl(view, view, center, eps, ws, out);
}

void RangeQuery(const NetworkView& view, const FrozenGraph& frozen,
                PointId center, double eps, TraversalWorkspace* ws,
                std::vector<RangeResult>* out) {
  RangeQueryImpl(view, frozen, center, eps, ws, out);
}

double PointNetworkDistance(const NetworkView& view, PointId p, PointId q,
                            NodeScratch* scratch,
                            const DistanceAccelerator* accel,
                            double threshold) {
  if (accel == nullptr) return PointNetworkDistance(view, p, q, scratch);
  if (p == q) return 0.0;
  double cached;
  if (accel->LookupDistance(p, q, &cached)) return cached;
  double lb = accel->LowerBound(p, q);
  if (lb == kInfDist) return kInfDist;  // proven disconnected — exact
  if (lb > threshold) return lb;        // caller only branches on the cut
  double exact = PointNetworkDistance(view, p, q, scratch);
  accel->StoreDistance(p, q, exact);
  return exact;
}

double PointNetworkDistance(const NetworkView& view, const FrozenGraph& frozen,
                            PointId p, PointId q, NodeScratch* scratch,
                            const DistanceAccelerator* accel,
                            double threshold) {
  if (accel == nullptr) {
    return PointNetworkDistance(view, frozen, p, q, scratch);
  }
  if (p == q) return 0.0;
  double cached;
  if (accel->LookupDistance(p, q, &cached)) return cached;
  double lb = accel->LowerBound(p, q);
  if (lb == kInfDist) return kInfDist;  // proven disconnected — exact
  if (lb > threshold) return lb;        // caller only branches on the cut
  double exact = PointNetworkDistance(view, frozen, p, q, scratch);
  accel->StoreDistance(p, q, exact);
  return exact;
}

void RangeQuery(const NetworkView& view, PointId center, double eps,
                TraversalWorkspace* ws, const DistanceAccelerator* accel,
                std::vector<RangeResult>* out) {
  if (accel == nullptr) {
    RangeQuery(view, center, eps, ws, out);
    return;
  }
  RangeQueryAccelImpl(view, view, center, eps, ws, accel, out);
}

void RangeQuery(const NetworkView& view, const FrozenGraph& frozen,
                PointId center, double eps, TraversalWorkspace* ws,
                const DistanceAccelerator* accel,
                std::vector<RangeResult>* out) {
  if (accel == nullptr) {
    RangeQuery(view, frozen, center, eps, ws, out);
    return;
  }
  RangeQueryAccelImpl(view, frozen, center, eps, ws, accel, out);
}

double PointNetworkDistance(const NetworkView& view, PointId p, PointId q,
                            TraversalWorkspace* ws,
                            const DistanceAccelerator* accel,
                            double threshold) {
  ws->cancel.triggered = false;
  if (accel == nullptr) {
    return PointNetworkDistanceImpl(view, view, p, q, &ws->scratch, &ws->heap,
                                    &ws->cancel);
  }
  if (p == q) return 0.0;
  double cached;
  if (accel->LookupDistance(p, q, &cached)) return cached;
  double lb = accel->LowerBound(p, q);
  if (lb == kInfDist) return kInfDist;  // proven disconnected — exact
  if (lb > threshold) return lb;        // caller only branches on the cut
  double exact = PointNetworkDistanceImpl(view, view, p, q, &ws->scratch,
                                          &ws->heap, &ws->cancel);
  // A cancelled expansion yields a garbage partial value — never let it
  // poison the cache.
  if (!ws->cancel.triggered) accel->StoreDistance(p, q, exact);
  return exact;
}

double PointNetworkDistance(const NetworkView& view, const FrozenGraph& frozen,
                            PointId p, PointId q, TraversalWorkspace* ws,
                            const DistanceAccelerator* accel,
                            double threshold) {
  ws->cancel.triggered = false;
  if (accel == nullptr) {
    return PointNetworkDistanceImpl(view, frozen, p, q, &ws->scratch,
                                    &ws->heap, &ws->cancel);
  }
  if (p == q) return 0.0;
  double cached;
  if (accel->LookupDistance(p, q, &cached)) return cached;
  double lb = accel->LowerBound(p, q);
  if (lb == kInfDist) return kInfDist;  // proven disconnected — exact
  if (lb > threshold) return lb;        // caller only branches on the cut
  double exact = PointNetworkDistanceImpl(view, frozen, p, q, &ws->scratch,
                                          &ws->heap, &ws->cancel);
  if (!ws->cancel.triggered) accel->StoreDistance(p, q, exact);
  return exact;
}

void KNearestNeighbors(const NetworkView& view, PointId center, uint32_t k,
                       NodeScratch* scratch, std::vector<RangeResult>* out) {
  KNearestNeighborsImpl(view, view, center, k, scratch, nullptr, out);
}

void KNearestNeighbors(const NetworkView& view, const FrozenGraph& frozen,
                       PointId center, uint32_t k, NodeScratch* scratch,
                       std::vector<RangeResult>* out) {
  KNearestNeighborsImpl(view, frozen, center, k, scratch, nullptr, out);
}

void KNearestNeighbors(const NetworkView& view, PointId center, uint32_t k,
                       TraversalWorkspace* ws, std::vector<RangeResult>* out) {
  KNearestNeighborsImpl(view, view, center, k, &ws->scratch, &ws->cancel, out);
}

void KNearestNeighbors(const NetworkView& view, const FrozenGraph& frozen,
                       PointId center, uint32_t k, TraversalWorkspace* ws,
                       std::vector<RangeResult>* out) {
  KNearestNeighborsImpl(view, frozen, center, k, &ws->scratch, &ws->cancel,
                        out);
}

}  // namespace netclus
