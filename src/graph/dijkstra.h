// Dijkstra shortest-path primitives: a header-template traversal kernel
// plus NetworkView compatibility wrappers.
//
// Every clustering algorithm in the paper is built on (multi-source,
// possibly bounded) Dijkstra traversals; these helpers centralize the
// priority-queue mechanics and the epoch-trick scratch space that lets
// thousands of bounded expansions run without O(|V|) reinitialization.
//
// The kernel (DijkstraExpandKernel) is parameterized on the graph type
// and the settle functor, so over a FrozenGraph with a lambda the inner
// loop compiles to a plain CSR pointer walk — no virtual dispatch, no
// std::function. Neighbor iteration is reached through the
// VisitNeighbors(graph, node, fn) adapter, overloaded per graph type;
// the NetworkView adapter below is the sanctioned bridge to the virtual
// interface, kept so code that has not (or cannot — e.g. streaming
// disk-backed scans) migrate to a snapshot still works unchanged.
#ifndef NETCLUS_GRAPH_DIJKSTRA_H_
#define NETCLUS_GRAPH_DIJKSTRA_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/network_view.h"
#include "graph/types.h"

namespace netclus {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// A Dijkstra start: node `node` begins with distance `dist` (supports
/// starting "from a point" by seeding both endpoint nodes of its edge).
struct DijkstraSource {
  NodeId node = kInvalidNodeId;
  double dist = 0.0;
};

/// \brief Per-thread monotonic traversal counters.
///
/// Every expansion in the library (the primitives below, the range
/// queries built on them, the k-medoids concurrent expansion, the index
/// precomputes) bumps these, so benches can report settled-node and
/// heap-op counts as first-class metrics next to wall time. Counters are
/// thread-local: a caller snapshots LocalTraversalCounters() before and
/// after a measured section and diffs; multi-threaded sections must sum
/// per-worker snapshots themselves.
struct TraversalCounters {
  uint64_t heap_pushes = 0;
  uint64_t heap_pops = 0;
  uint64_t settled_nodes = 0;
  /// Nodes whose outgoing relaxation was skipped by an accelerator
  /// (nearest-object floor pruning in the indexed range query).
  uint64_t pruned_nodes = 0;

  TraversalCounters operator-(const TraversalCounters& other) const {
    return TraversalCounters{heap_pushes - other.heap_pushes,
                             heap_pops - other.heap_pops,
                             settled_nodes - other.settled_nodes,
                             pruned_nodes - other.pruned_nodes};
  }
  TraversalCounters operator+(const TraversalCounters& other) const {
    return TraversalCounters{heap_pushes + other.heap_pushes,
                             heap_pops + other.heap_pops,
                             settled_nodes + other.settled_nodes,
                             pruned_nodes + other.pruned_nodes};
  }
};

/// The calling thread's counters (never reset; diff snapshots instead).
TraversalCounters& LocalTraversalCounters();

/// What an extended settle callback wants done after visiting a node.
enum class SettleAction {
  kContinue,       ///< relax neighbors and keep expanding
  kSkipNeighbors,  ///< keep the node settled but do not relax through it
  kStop,           ///< abandon the whole expansion
};

/// \brief Reusable per-node distance array with O(1) logical reset.
///
/// Each NewEpoch() invalidates all stored distances without touching
/// memory; repeated bounded expansions over a large graph stay
/// proportional to the region actually visited.
class NodeScratch {
 public:
  explicit NodeScratch(NodeId num_nodes)
      : dist_(num_nodes, 0.0), epoch_(num_nodes, 0), current_(0) {}

  /// Invalidates all distances.
  void NewEpoch() { ++current_; }

  bool Has(NodeId n) const { return epoch_[n] == current_; }
  double Get(NodeId n) const { return Has(n) ? dist_[n] : kInfDist; }
  void Set(NodeId n, double d) {
    dist_[n] = d;
    epoch_[n] = current_;
  }
  NodeId size() const { return static_cast<NodeId>(dist_.size()); }

 private:
  std::vector<double> dist_;
  std::vector<uint64_t> epoch_;
  uint64_t current_;
};

/// A (distance, node) min-heap element of a Dijkstra traversal; exposed so
/// TraversalWorkspace can own the reusable heap storage.
struct DijkstraHeapEntry {
  double dist;
  NodeId node;
  bool operator>(const DijkstraHeapEntry& other) const {
    return dist > other.dist;
  }
};

/// Default settle count between cancellation polls — cheap enough that
/// an uncancelled traversal is indistinguishable from one run without a
/// token, frequent enough that an expansion abandons work within
/// microseconds of the flag flipping.
inline constexpr uint32_t kDefaultCancelCheckInterval = 1024;

/// \brief Cooperative cancellation for one traversal.
///
/// `flag` (owned elsewhere — e.g. a deadline watchdog) is polled by the
/// kernel every `check_interval` settled nodes; when it reads true the
/// expansion abandons the rest of its work and sets `triggered`. A null
/// flag (the default) makes the token inert: the kernel's results,
/// settle order, and TraversalCounters are bit-identical to a run with
/// no token at all — polling never perturbs the traversal.
struct TraversalCancel {
  const std::atomic<bool>* flag = nullptr;
  uint32_t check_interval = kDefaultCancelCheckInterval;
  /// Set by the kernel when it abandoned the expansion; callers must
  /// treat any distances/results produced by that run as garbage.
  bool triggered = false;

  bool ShouldCancel() const {
    return flag != nullptr && flag->load(std::memory_order_relaxed);
  }
};

/// \brief Reusable per-traversal state: node distances plus heap storage.
///
/// Constructing one is O(|V|); reusing it makes every subsequent
/// traversal proportional to the region visited, with zero allocation in
/// the steady state. One workspace serves one traversal at a time —
/// concurrent algorithms lease one per worker thread (see
/// graph/workspace_pool.h).
struct TraversalWorkspace {
  explicit TraversalWorkspace(NodeId num_nodes) : scratch(num_nodes) {}

  NodeScratch scratch;
  std::vector<DijkstraHeapEntry> heap;  ///< binary-heap storage, reused
  std::vector<std::pair<NodeId, double>> settled;  ///< settle-order log
  /// Cancellation token threaded into the kernel by the workspace-based
  /// entry points. Inert (null flag) by default; the query server arms
  /// it per request with the deadline watchdog's flag.
  TraversalCancel cancel;
};

/// Neighbor-iteration adapter for the template kernel: the NetworkView
/// side funnels through the virtual call (one std::function built per
/// visited node). This is the compatibility bridge — algorithm code
/// passes a FrozenGraph to get the inlined CSR walk instead (see
/// graph/frozen_graph.h for that overload).
template <typename Fn>
inline void VisitNeighbors(const NetworkView& view, NodeId n, Fn&& fn) {
  view.ForEachNeighbor(n, fn);
}

namespace internal {

// Min-heap primitives over the reusable vector storage (std::greater
// turns the max-heap of push_heap/pop_heap into a min-heap on dist).
inline void HeapPushEntry(std::vector<DijkstraHeapEntry>* heap, double dist,
                          NodeId node) {
  heap->push_back(DijkstraHeapEntry{dist, node});
  std::push_heap(heap->begin(), heap->end(), std::greater<>());
  ++LocalTraversalCounters().heap_pushes;
}

inline DijkstraHeapEntry HeapPopEntry(std::vector<DijkstraHeapEntry>* heap) {
  std::pop_heap(heap->begin(), heap->end(), std::greater<>());
  DijkstraHeapEntry top = heap->back();
  heap->pop_back();
  ++LocalTraversalCounters().heap_pops;
  return top;
}

// Adapts both settle protocols onto SettleAction at compile time: a
// bool-returning functor means false = stop (the original protocol).
template <typename SettleFn>
inline SettleAction InvokeSettle(SettleFn& on_settle, NodeId n, double d) {
  if constexpr (std::is_same_v<std::invoke_result_t<SettleFn&, NodeId, double>,
                               bool>) {
    return on_settle(n, d) ? SettleAction::kContinue : SettleAction::kStop;
  } else {
    return on_settle(n, d);
  }
}

}  // namespace internal

/// \brief The traversal kernel: bounded multi-source Dijkstra over any
/// graph type reachable through VisitNeighbors.
///
/// Settled distances land in `scratch` (a fresh epoch is started);
/// `heap` is cleared but keeps its capacity. `on_settle(node, dist)` is
/// invoked once per settled node with dist <= `bound` and may return
/// either bool (false = stop) or SettleAction. Instantiated with a
/// FrozenGraph and a lambda, the inner loop carries no virtual dispatch
/// and no std::function — this is the de-virtualized hot path every
/// algorithm runs on.
///
/// `cancel` (optional) is polled every `cancel->check_interval` settled
/// nodes; when its flag reads true the expansion abandons its remaining
/// work, sets `cancel->triggered`, and returns — partial distances in
/// `scratch` must then be discarded by the caller. When no cancellation
/// fires (or `cancel` is null / its flag unset) the traversal, its
/// settle order, and its counters are bit-identical to an uncancellable
/// run.
template <typename Graph, typename SettleFn>
void DijkstraExpandKernel(const Graph& graph,
                          const std::vector<DijkstraSource>& sources,
                          double bound, NodeScratch* scratch,
                          std::vector<DijkstraHeapEntry>* heap,
                          SettleFn&& on_settle,
                          TraversalCancel* cancel = nullptr) {
  scratch->NewEpoch();
  heap->clear();
  TraversalCounters& tc = LocalTraversalCounters();
  const uint32_t poll_interval =
      cancel != nullptr ? std::max<uint32_t>(1, cancel->check_interval) : 0;
  uint32_t settles_until_poll = poll_interval;
  // `scratch` holds tentative distances during the run; a separate settled
  // mark is unnecessary because a popped entry matching the scratch value
  // is settled (standard lazy-deletion Dijkstra).
  for (const DijkstraSource& s : sources) {
    if (s.dist <= bound && s.dist < scratch->Get(s.node)) {
      scratch->Set(s.node, s.dist);
      internal::HeapPushEntry(heap, s.dist, s.node);
    }
  }
  while (!heap->empty()) {
    auto [d, n] = internal::HeapPopEntry(heap);
    if (d > scratch->Get(n)) continue;  // stale entry
    ++tc.settled_nodes;
    if (cancel != nullptr && --settles_until_poll == 0) {
      settles_until_poll = poll_interval;
      if (cancel->ShouldCancel()) {
        cancel->triggered = true;
        return;
      }
    }
    SettleAction action = internal::InvokeSettle(on_settle, n, d);
    if (action == SettleAction::kStop) return;
    if (action == SettleAction::kSkipNeighbors) {
      ++tc.pruned_nodes;
      continue;
    }
    VisitNeighbors(graph, n, [&](NodeId m, double w) {
      double nd = d + w;
      if (nd <= bound && nd < scratch->Get(m)) {
        scratch->Set(m, nd);
        internal::HeapPushEntry(heap, nd, m);
      }
    });
  }
}

/// Expands the graph from `sources` in distance order, invoking
/// `on_settle(node, dist)` once per settled node with dist <= `bound`;
/// the functor returns bool (false = stop) or SettleAction
/// (kSkipNeighbors keeps the node settled without relaxing through it —
/// accelerator pruning, counted in TraversalCounters::pruned_nodes).
/// Settled distances are recorded in `scratch` (a fresh epoch is
/// started).
template <typename Graph, typename SettleFn>
void DijkstraExpandBounded(const Graph& graph,
                           const std::vector<DijkstraSource>& sources,
                           double bound, NodeScratch* scratch,
                           SettleFn&& on_settle) {
  std::vector<DijkstraHeapEntry> heap;
  DijkstraExpandKernel(graph, sources, bound, scratch, &heap,
                       std::forward<SettleFn>(on_settle));
}

/// As above with the workspace's scratch, reusing its heap storage and
/// honoring its cancellation token (`ws->cancel`, inert by default).
/// (`ws->settled` is untouched — it belongs to higher-level callers.)
template <typename Graph, typename SettleFn>
void DijkstraExpandBounded(const Graph& graph,
                           const std::vector<DijkstraSource>& sources,
                           double bound, TraversalWorkspace* ws,
                           SettleFn&& on_settle) {
  DijkstraExpandKernel(graph, sources, bound, &ws->scratch, &ws->heap,
                       std::forward<SettleFn>(on_settle), &ws->cancel);
}

/// Computes exact shortest-path distances from `sources` to every
/// reachable node; distances land in `ws->scratch` (a fresh epoch is
/// started; unreached nodes read kInfDist) and the heap storage of `ws`
/// is reused instead of reallocated.
template <typename Graph>
void DijkstraDistances(const Graph& graph,
                       const std::vector<DijkstraSource>& sources,
                       TraversalWorkspace* ws) {
  DijkstraExpandKernel(graph, sources, kInfDist, &ws->scratch, &ws->heap,
                       [](NodeId, double) { return SettleAction::kContinue; },
                       &ws->cancel);
}

/// As above but allocates and returns a fresh |V|-sized distance vector
/// (kInfDist where unreachable). The allocation makes it unfit for hot
/// loops — kept for tests and one-shot diagnostics only; production code
/// uses the TraversalWorkspace overload.
std::vector<double> DijkstraDistances(const NetworkView& view,
                                      const std::vector<DijkstraSource>& sources);

// --- NetworkView + std::function compatibility wrappers ------------------
// Thin non-template overloads delegating to the kernel. They exist so
// pre-snapshot call sites (and call sites that store their callback in a
// std::function) keep compiling and linking unchanged; overload
// resolution prefers them for std::function lvalues and the templates
// above for everything else.

void DijkstraDistances(const NetworkView& view,
                       const std::vector<DijkstraSource>& sources,
                       TraversalWorkspace* ws);

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, NodeScratch* scratch,
    const std::function<bool(NodeId, double)>& on_settle);

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, TraversalWorkspace* ws,
    const std::function<bool(NodeId, double)>& on_settle);

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, NodeScratch* scratch,
    const std::function<SettleAction(NodeId, double)>& on_settle);

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, TraversalWorkspace* ws,
    const std::function<SettleAction(NodeId, double)>& on_settle);

}  // namespace netclus

#endif  // NETCLUS_GRAPH_DIJKSTRA_H_
