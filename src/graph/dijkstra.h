// Dijkstra shortest-path primitives over a NetworkView.
//
// Every clustering algorithm in the paper is built on (multi-source,
// possibly bounded) Dijkstra traversals; these helpers centralize the
// priority-queue mechanics and the epoch-trick scratch space that lets
// thousands of bounded expansions run without O(|V|) reinitialization.
#ifndef NETCLUS_GRAPH_DIJKSTRA_H_
#define NETCLUS_GRAPH_DIJKSTRA_H_

#include <functional>
#include <limits>
#include <vector>

#include "graph/network_view.h"
#include "graph/types.h"

namespace netclus {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// A Dijkstra start: node `node` begins with distance `dist` (supports
/// starting "from a point" by seeding both endpoint nodes of its edge).
struct DijkstraSource {
  NodeId node = kInvalidNodeId;
  double dist = 0.0;
};

/// \brief Per-thread monotonic traversal counters.
///
/// Every expansion in the library (the primitives below, the range
/// queries built on them, the k-medoids concurrent expansion, the index
/// precomputes) bumps these, so benches can report settled-node and
/// heap-op counts as first-class metrics next to wall time. Counters are
/// thread-local: a caller snapshots LocalTraversalCounters() before and
/// after a measured section and diffs; multi-threaded sections must sum
/// per-worker snapshots themselves.
struct TraversalCounters {
  uint64_t heap_pushes = 0;
  uint64_t heap_pops = 0;
  uint64_t settled_nodes = 0;
  /// Nodes whose outgoing relaxation was skipped by an accelerator
  /// (nearest-object floor pruning in the indexed range query).
  uint64_t pruned_nodes = 0;

  TraversalCounters operator-(const TraversalCounters& other) const {
    return TraversalCounters{heap_pushes - other.heap_pushes,
                             heap_pops - other.heap_pops,
                             settled_nodes - other.settled_nodes,
                             pruned_nodes - other.pruned_nodes};
  }
  TraversalCounters operator+(const TraversalCounters& other) const {
    return TraversalCounters{heap_pushes + other.heap_pushes,
                             heap_pops + other.heap_pops,
                             settled_nodes + other.settled_nodes,
                             pruned_nodes + other.pruned_nodes};
  }
};

/// The calling thread's counters (never reset; diff snapshots instead).
TraversalCounters& LocalTraversalCounters();

/// What an extended settle callback wants done after visiting a node.
enum class SettleAction {
  kContinue,       ///< relax neighbors and keep expanding
  kSkipNeighbors,  ///< keep the node settled but do not relax through it
  kStop,           ///< abandon the whole expansion
};

/// \brief Reusable per-node distance array with O(1) logical reset.
///
/// Each NewEpoch() invalidates all stored distances without touching
/// memory; repeated bounded expansions over a large graph stay
/// proportional to the region actually visited.
class NodeScratch {
 public:
  explicit NodeScratch(NodeId num_nodes)
      : dist_(num_nodes, 0.0), epoch_(num_nodes, 0), current_(0) {}

  /// Invalidates all distances.
  void NewEpoch() { ++current_; }

  bool Has(NodeId n) const { return epoch_[n] == current_; }
  double Get(NodeId n) const { return Has(n) ? dist_[n] : kInfDist; }
  void Set(NodeId n, double d) {
    dist_[n] = d;
    epoch_[n] = current_;
  }
  NodeId size() const { return static_cast<NodeId>(dist_.size()); }

 private:
  std::vector<double> dist_;
  std::vector<uint64_t> epoch_;
  uint64_t current_;
};

/// A (distance, node) min-heap element of a Dijkstra traversal; exposed so
/// TraversalWorkspace can own the reusable heap storage.
struct DijkstraHeapEntry {
  double dist;
  NodeId node;
  bool operator>(const DijkstraHeapEntry& other) const {
    return dist > other.dist;
  }
};

/// \brief Reusable per-traversal state: node distances plus heap storage.
///
/// Constructing one is O(|V|); reusing it makes every subsequent
/// traversal proportional to the region visited, with zero allocation in
/// the steady state. One workspace serves one traversal at a time —
/// concurrent algorithms lease one per worker thread (see
/// graph/workspace_pool.h).
struct TraversalWorkspace {
  explicit TraversalWorkspace(NodeId num_nodes) : scratch(num_nodes) {}

  NodeScratch scratch;
  std::vector<DijkstraHeapEntry> heap;  ///< binary-heap storage, reused
  std::vector<std::pair<NodeId, double>> settled;  ///< settle-order log
};

/// Computes exact shortest-path distances from `sources` to every node
/// (kInfDist where unreachable). O(|E| log |V|). Allocates a fresh
/// distance array per call; prefer the TraversalWorkspace overload in
/// loops.
std::vector<double> DijkstraDistances(const NetworkView& view,
                                      const std::vector<DijkstraSource>& sources);

/// As above, but distances land in `ws->scratch` (a fresh epoch is
/// started; unreached nodes read kInfDist) and the heap storage of `ws`
/// is reused instead of reallocated.
void DijkstraDistances(const NetworkView& view,
                       const std::vector<DijkstraSource>& sources,
                       TraversalWorkspace* ws);

/// Expands the network from `sources` in distance order, invoking
/// `on_settle(node, dist)` once per settled node with dist <= `bound`.
/// Returning false from `on_settle` stops the expansion. Settled distances
/// are recorded in `scratch` (a fresh epoch is started).
void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, NodeScratch* scratch,
    const std::function<bool(NodeId, double)>& on_settle);

/// As above with the workspace's scratch, reusing its heap storage.
/// (`ws->settled` is untouched — it belongs to higher-level callers.)
void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, TraversalWorkspace* ws,
    const std::function<bool(NodeId, double)>& on_settle);

/// Extended protocol: the callback chooses per node between continuing,
/// keeping the node settled without relaxing its neighbors (accelerator
/// pruning — counted in TraversalCounters::pruned_nodes), or stopping.
void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, NodeScratch* scratch,
    const std::function<SettleAction(NodeId, double)>& on_settle);

/// As above with the workspace's scratch, reusing its heap storage.
void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, TraversalWorkspace* ws,
    const std::function<SettleAction(NodeId, double)>& on_settle);

}  // namespace netclus

#endif  // NETCLUS_GRAPH_DIJKSTRA_H_
