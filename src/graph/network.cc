#include "graph/network.h"

#include <algorithm>
#include <queue>

#include "graph/frozen_graph.h"

namespace netclus {

Network::Network(NodeId num_nodes) : adj_(num_nodes) {}

Status Network::AddEdge(NodeId a, NodeId b, double w) {
  if (a >= num_nodes() || b >= num_nodes()) {
    return Status::InvalidArgument("AddEdge: node id out of range");
  }
  if (a == b) {
    return Status::InvalidArgument("AddEdge: self loops are not allowed");
  }
  if (!(w > 0.0)) {
    return Status::InvalidArgument("AddEdge: weight must be positive");
  }
  // Duplicate detection scans the sparser endpoint's adjacency row —
  // O(min degree), matching the lookup path now that the edge-weight
  // hash table is gone.
  const std::vector<std::pair<NodeId, double>>& row =
      adj_[a].size() <= adj_[b].size() ? adj_[a] : adj_[b];
  const NodeId other = adj_[a].size() <= adj_[b].size() ? b : a;
  for (const auto& [m, mw] : row) {
    (void)mw;
    if (m == other) {
      return Status::InvalidArgument("AddEdge: duplicate edge");
    }
  }
  adj_[a].emplace_back(b, w);
  adj_[b].emplace_back(a, w);
  ++num_edges_;
  frozen_.reset();  // snapshot no longer reflects the adjacency
  return Status::OK();
}

double Network::EdgeWeight(NodeId a, NodeId b) const {
  if (a >= num_nodes() || b >= num_nodes() || a == b) return -1.0;
  if (frozen_ != nullptr) return frozen_->EdgeWeight(a, b);
  // Unfrozen fallback: O(min(deg a, deg b)) adjacency scan.
  const std::vector<std::pair<NodeId, double>>& row =
      adj_[a].size() <= adj_[b].size() ? adj_[a] : adj_[b];
  const NodeId other = adj_[a].size() <= adj_[b].size() ? b : a;
  for (const auto& [m, w] : row) {
    if (m == other) return w;
  }
  return -1.0;
}

std::shared_ptr<const FrozenGraph> Network::Freeze() {
  if (frozen_ == nullptr) {
    frozen_ = std::make_shared<const FrozenGraph>(
        FrozenGraph::FromAdjacency(adj_));
  }
  return frozen_;
}

std::vector<Edge> Network::Edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const auto& [v, w] : adj_[u]) {
      if (u < v) out.push_back(Edge{u, v, w});
    }
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return out;
}

bool Network::IsConnected() const {
  if (num_nodes() == 0) return true;
  std::vector<bool> seen(num_nodes(), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  NodeId visited = 1;
  while (!q.empty()) {
    NodeId n = q.front();
    q.pop();
    for (const auto& [m, w] : adj_[n]) {
      (void)w;
      if (!seen[m]) {
        seen[m] = true;
        ++visited;
        q.push(m);
      }
    }
  }
  return visited == num_nodes();
}

Network Network::LargestComponent(const Network& g,
                                  std::vector<NodeId>* old_to_new) {
  NodeId n = g.num_nodes();
  std::vector<int> comp(n, -1);
  int num_comps = 0;
  std::vector<NodeId> comp_size;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] >= 0) continue;
    int c = num_comps++;
    comp_size.push_back(0);
    std::queue<NodeId> q;
    q.push(s);
    comp[s] = c;
    while (!q.empty()) {
      NodeId x = q.front();
      q.pop();
      ++comp_size[c];
      for (const auto& [y, w] : g.adj_[x]) {
        (void)w;
        if (comp[y] < 0) {
          comp[y] = c;
          q.push(y);
        }
      }
    }
  }
  int best = 0;
  for (int c = 1; c < num_comps; ++c) {
    if (comp_size[c] > comp_size[best]) best = c;
  }
  std::vector<NodeId> mapping(n, kInvalidNodeId);
  NodeId next = 0;
  for (NodeId x = 0; x < n; ++x) {
    if (comp[x] == best) mapping[x] = next++;
  }
  Network out(next);
  for (NodeId x = 0; x < n; ++x) {
    for (const auto& [y, w] : g.adj_[x]) {
      if (x >= y) continue;  // canonical orientation: each edge once
      NodeId u = mapping[x];
      NodeId v = mapping[y];
      if (u != kInvalidNodeId && v != kInvalidNodeId) {
        Status s = out.AddEdge(u, v, w);
        (void)s;  // cannot fail: source edges were valid and unique
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return out;
}

std::pair<PointId, uint32_t> PointSet::EdgePointRange(NodeId a,
                                                      NodeId b) const {
  auto it = edge_to_group_.find(EdgeKeyOf(a, b));
  if (it == edge_to_group_.end()) return {kInvalidPointId, 0};
  const Group& g = groups_[it->second];
  return {g.first, g.count};
}

void PointSetBuilder::Add(NodeId a, NodeId b, double offset_from_min,
                          int label) {
  raw_.push_back(Raw{EdgeKeyOf(a, b), offset_from_min, label,
                     static_cast<uint32_t>(raw_.size())});
}

Result<PointSet> PointSetBuilder::Build(const Network& net,
                                        std::vector<PointId>* raw_to_final) && {
  for (const Raw& r : raw_) {
    double w = net.EdgeWeight(EdgeKeyU(r.edge_key), EdgeKeyV(r.edge_key));
    if (w < 0.0) {
      return Status::InvalidArgument("PointSet: point on non-existent edge");
    }
    if (r.offset < 0.0 || r.offset > w) {
      return Status::InvalidArgument("PointSet: offset outside edge");
    }
  }
  std::stable_sort(raw_.begin(), raw_.end(), [](const Raw& a, const Raw& b) {
    return a.edge_key != b.edge_key ? a.edge_key < b.edge_key
                                    : a.offset < b.offset;
  });
  PointSet ps;
  ps.offsets_.reserve(raw_.size());
  ps.labels_.reserve(raw_.size());
  ps.group_of_.reserve(raw_.size());
  for (size_t i = 0; i < raw_.size(); ++i) {
    const Raw& r = raw_[i];
    if (ps.groups_.empty() || ps.groups_.back().u != EdgeKeyU(r.edge_key) ||
        ps.groups_.back().v != EdgeKeyV(r.edge_key)) {
      PointSet::Group g;
      g.u = EdgeKeyU(r.edge_key);
      g.v = EdgeKeyV(r.edge_key);
      g.first = static_cast<PointId>(i);
      g.count = 0;
      ps.edge_to_group_.emplace(r.edge_key,
                                static_cast<uint32_t>(ps.groups_.size()));
      ps.groups_.push_back(g);
    }
    ++ps.groups_.back().count;
    ps.group_of_.push_back(static_cast<uint32_t>(ps.groups_.size() - 1));
    ps.offsets_.push_back(r.offset);
    ps.labels_.push_back(r.label);
  }
  if (raw_to_final != nullptr) {
    raw_to_final->assign(raw_.size(), kInvalidPointId);
    for (size_t i = 0; i < raw_.size(); ++i) {
      (*raw_to_final)[raw_[i].raw_index] = static_cast<PointId>(i);
    }
  }
  return ps;
}

void InMemoryNetworkView::ForEachNeighbor(
    NodeId n, const std::function<void(NodeId, double)>& fn) const {
  for (const auto& [m, w] : net_.neighbors(n)) fn(m, w);
}

void InMemoryNetworkView::GetEdgePoints(NodeId a, NodeId b,
                                        std::vector<EdgePoint>* out) const {
  out->clear();
  auto [first, count] = points_.EdgePointRange(a, b);
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(EdgePoint{first + i, points_.offset(first + i)});
  }
}

void InMemoryNetworkView::ForEachPointGroup(
    const std::function<void(NodeId, NodeId, PointId, uint32_t)>& fn) const {
  for (size_t i = 0; i < points_.num_groups(); ++i) {
    const PointSet::Group& g = points_.group(i);
    fn(g.u, g.v, g.first, g.count);
  }
}

}  // namespace netclus
