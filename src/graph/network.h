// In-memory spatial network (Definition 1): an undirected weighted graph
// plus a set of objects (points) lying on its edges.
#ifndef NETCLUS_GRAPH_NETWORK_H_
#define NETCLUS_GRAPH_NETWORK_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/network_view.h"
#include "graph/types.h"

namespace netclus {

class FrozenGraph;

/// \brief Undirected weighted graph G = (V, E, W) with adjacency lists.
class Network {
 public:
  /// An empty network (0 nodes).
  Network() = default;
  explicit Network(NodeId num_nodes);

  /// Adds undirected edge {a, b} with weight `w` > 0. Self loops,
  /// duplicate edges, out-of-range endpoints and non-positive weights are
  /// rejected. Invalidates any snapshot cached by Freeze().
  Status AddEdge(NodeId a, NodeId b, double w);

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  size_t num_edges() const { return num_edges_; }

  /// Weight of edge {a, b}; negative when absent. Served from the CSR
  /// snapshot when one has been cached by Freeze(); otherwise an
  /// O(min(deg a, deg b)) scan of the adjacency list — for road-like
  /// networks the degree is a small constant, so the fallback only
  /// matters on star-shaped graphs, and freezing removes even that.
  double EdgeWeight(NodeId a, NodeId b) const;
  bool HasEdge(NodeId a, NodeId b) const { return EdgeWeight(a, b) >= 0.0; }

  /// Builds (or returns the cached) CSR snapshot of this network's
  /// adjacency and routes subsequent EdgeWeight/HasEdge lookups through
  /// it.
  ///
  /// Ownership rule: the returned shared_ptr co-owns the snapshot, so a
  /// held snapshot stays valid — and keeps describing the adjacency as
  /// of this call — across any later AddEdge(). Mutation only drops the
  /// network's own reference (the next Freeze() builds a fresh
  /// snapshot); it never frees a snapshot a caller still holds. This is
  /// what lets the query server keep serving a pinned epoch while the
  /// updater mutates the live network. Freeze() itself is not
  /// thread-safe against concurrent AddEdge(); publish the returned
  /// pointer before sharing.
  std::shared_ptr<const FrozenGraph> Freeze();

  /// Neighbors of `n` as (node, weight) pairs, in insertion order.
  const std::vector<std::pair<NodeId, double>>& neighbors(NodeId n) const {
    return adj_[n];
  }

  /// All edges in canonical orientation (u < v), ordered by (u, v).
  std::vector<Edge> Edges() const;

  /// True when every node is reachable from node 0 (or the graph is empty).
  bool IsConnected() const;

  /// Extracts the largest connected component as a new network plus the
  /// mapping old node id -> new node id (kInvalidNodeId for dropped nodes).
  /// Mirrors the paper's cleanup of the SF / TG datasets.
  static Network LargestComponent(const Network& g,
                                  std::vector<NodeId>* old_to_new);

 private:
  std::vector<std::vector<std::pair<NodeId, double>>> adj_;
  std::shared_ptr<const FrozenGraph> frozen_;  // EdgeWeight fast path
  size_t num_edges_ = 0;
};

/// \brief Immutable set of points placed on the edges of a Network.
///
/// Point ids are assigned in group order: points on the same edge are
/// consecutive, sorted by ascending offset from the smaller-id endpoint
/// (paper Section 4.1). An integer label (e.g. the generating cluster, or
/// -1) rides along with each point for evaluation against ground truth.
class PointSet {
 public:
  /// One edge holding points: ids [first, first + count).
  struct Group {
    NodeId u = kInvalidNodeId;
    NodeId v = kInvalidNodeId;
    PointId first = kInvalidPointId;
    uint32_t count = 0;
  };

  PointId size() const { return static_cast<PointId>(offsets_.size()); }
  PointPos position(PointId p) const {
    const Group& g = groups_[group_of_[p]];
    return PointPos{g.u, g.v, offsets_[p]};
  }
  double offset(PointId p) const { return offsets_[p]; }
  int label(PointId p) const { return labels_[p]; }

  size_t num_groups() const { return groups_.size(); }
  const Group& group(size_t i) const { return groups_[i]; }

  /// Points on edge {a, b} as [first, first + count); count == 0 if none.
  std::pair<PointId, uint32_t> EdgePointRange(NodeId a, NodeId b) const;

  /// Ground-truth labels for all points (index = point id).
  const std::vector<int>& labels() const { return labels_; }

 private:
  friend class PointSetBuilder;
  std::vector<double> offsets_;       // per point, from canonical u
  std::vector<int> labels_;           // per point
  std::vector<uint32_t> group_of_;    // per point -> group index
  std::vector<Group> groups_;         // ordered by first point id
  std::unordered_map<uint64_t, uint32_t> edge_to_group_;
};

/// \brief Accumulates raw point placements and finalizes them into a
/// PointSet with canonical point-id assignment.
class PointSetBuilder {
 public:
  /// Places a point on edge {a, b} at `offset_from_min` measured from the
  /// smaller-id endpoint, tagged with `label`.
  void Add(NodeId a, NodeId b, double offset_from_min, int label);

  /// Validates placements against `net` (edge exists, offset within the
  /// edge weight) and produces the PointSet. When `raw_to_final` is given
  /// it receives, for each Add() call in order, the final point id.
  Result<PointSet> Build(const Network& net,
                         std::vector<PointId>* raw_to_final = nullptr) &&;

 private:
  struct Raw {
    uint64_t edge_key;
    double offset;
    int label;
    uint32_t raw_index;
  };
  std::vector<Raw> raw_;
};

/// \brief NetworkView over an in-memory Network + PointSet.
class InMemoryNetworkView : public NetworkView {
 public:
  /// Both `net` and `points` must outlive the view.
  InMemoryNetworkView(const Network& net, const PointSet& points)
      : net_(net), points_(points) {}

  NodeId num_nodes() const override { return net_.num_nodes(); }
  PointId num_points() const override { return points_.size(); }
  void ForEachNeighbor(
      NodeId n,
      const std::function<void(NodeId, double)>& fn) const override;
  double EdgeWeight(NodeId a, NodeId b) const override {
    return net_.EdgeWeight(a, b);
  }
  PointPos PointPosition(PointId p) const override {
    return points_.position(p);
  }
  void GetEdgePoints(NodeId a, NodeId b,
                     std::vector<EdgePoint>* out) const override;
  void ForEachPointGroup(
      const std::function<void(NodeId, NodeId, PointId, uint32_t)>& fn)
      const override;

  const Network& network() const { return net_; }
  const PointSet& points() const { return points_; }

 private:
  const Network& net_;
  const PointSet& points_;
};

}  // namespace netclus

#endif  // NETCLUS_GRAPH_NETWORK_H_
