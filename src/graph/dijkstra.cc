#include "graph/dijkstra.h"

namespace netclus {

TraversalCounters& LocalTraversalCounters() {
  thread_local TraversalCounters counters;
  return counters;
}

// Tests-only overload: allocates a fresh distance vector per call. The
// unbounded relaxation is re-expressed through the kernel so the two
// paths cannot drift.
std::vector<double> DijkstraDistances(
    const NetworkView& view, const std::vector<DijkstraSource>& sources) {
  TraversalWorkspace ws(view.num_nodes());
  DijkstraDistances<NetworkView>(view, sources, &ws);
  std::vector<double> dist(view.num_nodes(), kInfDist);
  for (NodeId n = 0; n < view.num_nodes(); ++n) dist[n] = ws.scratch.Get(n);
  return dist;
}

// The std::function compatibility wrappers below all delegate to the
// template kernel; the per-neighbor std::function invocation they imply
// is paid only by legacy call sites, never by kernel instantiations
// over lambdas.

void DijkstraDistances(const NetworkView& view,
                       const std::vector<DijkstraSource>& sources,
                       TraversalWorkspace* ws) {
  DijkstraExpandKernel(view, sources, kInfDist, &ws->scratch, &ws->heap,
                       [](NodeId, double) { return SettleAction::kContinue; });
}

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, NodeScratch* scratch,
    const std::function<bool(NodeId, double)>& on_settle) {
  std::vector<DijkstraHeapEntry> heap;
  DijkstraExpandKernel(view, sources, bound, scratch, &heap, on_settle);
}

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, TraversalWorkspace* ws,
    const std::function<bool(NodeId, double)>& on_settle) {
  DijkstraExpandKernel(view, sources, bound, &ws->scratch, &ws->heap,
                       on_settle, &ws->cancel);
}

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, NodeScratch* scratch,
    const std::function<SettleAction(NodeId, double)>& on_settle) {
  std::vector<DijkstraHeapEntry> heap;
  DijkstraExpandKernel(view, sources, bound, scratch, &heap, on_settle);
}

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, TraversalWorkspace* ws,
    const std::function<SettleAction(NodeId, double)>& on_settle) {
  DijkstraExpandKernel(view, sources, bound, &ws->scratch, &ws->heap,
                       on_settle, &ws->cancel);
}

}  // namespace netclus
