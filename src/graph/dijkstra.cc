#include "graph/dijkstra.h"

#include <queue>

namespace netclus {

namespace {
struct HeapEntry {
  double dist;
  NodeId node;
  bool operator>(const HeapEntry& other) const { return dist > other.dist; }
};
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
}  // namespace

std::vector<double> DijkstraDistances(
    const NetworkView& view, const std::vector<DijkstraSource>& sources) {
  std::vector<double> dist(view.num_nodes(), kInfDist);
  MinHeap heap;
  for (const DijkstraSource& s : sources) {
    if (s.dist < dist[s.node]) {
      dist[s.node] = s.dist;
      heap.push(HeapEntry{s.dist, s.node});
    }
  }
  while (!heap.empty()) {
    auto [d, n] = heap.top();
    heap.pop();
    if (d > dist[n]) continue;  // stale entry
    view.ForEachNeighbor(n, [&](NodeId m, double w) {
      double nd = d + w;
      if (nd < dist[m]) {
        dist[m] = nd;
        heap.push(HeapEntry{nd, m});
      }
    });
  }
  return dist;
}

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, NodeScratch* scratch,
    const std::function<bool(NodeId, double)>& on_settle) {
  scratch->NewEpoch();
  MinHeap heap;
  // `scratch` holds tentative distances during the run; a separate settled
  // mark is unnecessary because a popped entry matching the scratch value
  // is settled (standard lazy-deletion Dijkstra).
  for (const DijkstraSource& s : sources) {
    if (s.dist <= bound && s.dist < scratch->Get(s.node)) {
      scratch->Set(s.node, s.dist);
      heap.push(HeapEntry{s.dist, s.node});
    }
  }
  while (!heap.empty()) {
    auto [d, n] = heap.top();
    heap.pop();
    if (d > scratch->Get(n)) continue;  // stale entry
    if (!on_settle(n, d)) return;
    view.ForEachNeighbor(n, [&](NodeId m, double w) {
      double nd = d + w;
      if (nd <= bound && nd < scratch->Get(m)) {
        scratch->Set(m, nd);
        heap.push(HeapEntry{nd, m});
      }
    });
  }
}

}  // namespace netclus
