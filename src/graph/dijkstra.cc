#include "graph/dijkstra.h"

#include <algorithm>

namespace netclus {

namespace {

// Min-heap primitives over the reusable vector storage (std::greater
// turns the max-heap of push_heap/pop_heap into a min-heap on dist).
inline void HeapPush(std::vector<DijkstraHeapEntry>* heap, double dist,
                     NodeId node) {
  heap->push_back(DijkstraHeapEntry{dist, node});
  std::push_heap(heap->begin(), heap->end(), std::greater<>());
  ++LocalTraversalCounters().heap_pushes;
}

inline DijkstraHeapEntry HeapPop(std::vector<DijkstraHeapEntry>* heap) {
  std::pop_heap(heap->begin(), heap->end(), std::greater<>());
  DijkstraHeapEntry top = heap->back();
  heap->pop_back();
  ++LocalTraversalCounters().heap_pops;
  return top;
}

// Core bounded expansion over (scratch, heap); every public overload
// forwards here. `heap` is cleared first but keeps its capacity.
void ExpandBounded(const NetworkView& view,
                   const std::vector<DijkstraSource>& sources, double bound,
                   NodeScratch* scratch, std::vector<DijkstraHeapEntry>* heap,
                   const std::function<SettleAction(NodeId, double)>& on_settle) {
  scratch->NewEpoch();
  heap->clear();
  TraversalCounters& tc = LocalTraversalCounters();
  // `scratch` holds tentative distances during the run; a separate settled
  // mark is unnecessary because a popped entry matching the scratch value
  // is settled (standard lazy-deletion Dijkstra).
  for (const DijkstraSource& s : sources) {
    if (s.dist <= bound && s.dist < scratch->Get(s.node)) {
      scratch->Set(s.node, s.dist);
      HeapPush(heap, s.dist, s.node);
    }
  }
  while (!heap->empty()) {
    auto [d, n] = HeapPop(heap);
    if (d > scratch->Get(n)) continue;  // stale entry
    ++tc.settled_nodes;
    SettleAction action = on_settle(n, d);
    if (action == SettleAction::kStop) return;
    if (action == SettleAction::kSkipNeighbors) {
      ++tc.pruned_nodes;
      continue;
    }
    view.ForEachNeighbor(n, [&](NodeId m, double w) {
      double nd = d + w;
      if (nd <= bound && nd < scratch->Get(m)) {
        scratch->Set(m, nd);
        HeapPush(heap, nd, m);
      }
    });
  }
}

// Adapts the original bool protocol (false = stop) onto SettleAction.
std::function<SettleAction(NodeId, double)> AdaptBool(
    const std::function<bool(NodeId, double)>& on_settle) {
  return [&on_settle](NodeId n, double d) {
    return on_settle(n, d) ? SettleAction::kContinue : SettleAction::kStop;
  };
}

}  // namespace

TraversalCounters& LocalTraversalCounters() {
  thread_local TraversalCounters counters;
  return counters;
}

std::vector<double> DijkstraDistances(
    const NetworkView& view, const std::vector<DijkstraSource>& sources) {
  std::vector<double> dist(view.num_nodes(), kInfDist);
  std::vector<DijkstraHeapEntry> heap;
  TraversalCounters& tc = LocalTraversalCounters();
  for (const DijkstraSource& s : sources) {
    if (s.dist < dist[s.node]) {
      dist[s.node] = s.dist;
      HeapPush(&heap, s.dist, s.node);
    }
  }
  while (!heap.empty()) {
    auto [d, n] = HeapPop(&heap);
    if (d > dist[n]) continue;  // stale entry
    ++tc.settled_nodes;
    view.ForEachNeighbor(n, [&](NodeId m, double w) {
      double nd = d + w;
      if (nd < dist[m]) {
        dist[m] = nd;
        HeapPush(&heap, nd, m);
      }
    });
  }
  return dist;
}

void DijkstraDistances(const NetworkView& view,
                       const std::vector<DijkstraSource>& sources,
                       TraversalWorkspace* ws) {
  ExpandBounded(view, sources, kInfDist, &ws->scratch, &ws->heap,
                [](NodeId, double) { return SettleAction::kContinue; });
}

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, NodeScratch* scratch,
    const std::function<bool(NodeId, double)>& on_settle) {
  std::vector<DijkstraHeapEntry> heap;
  ExpandBounded(view, sources, bound, scratch, &heap, AdaptBool(on_settle));
}

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, TraversalWorkspace* ws,
    const std::function<bool(NodeId, double)>& on_settle) {
  ExpandBounded(view, sources, bound, &ws->scratch, &ws->heap,
                AdaptBool(on_settle));
}

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, NodeScratch* scratch,
    const std::function<SettleAction(NodeId, double)>& on_settle) {
  std::vector<DijkstraHeapEntry> heap;
  ExpandBounded(view, sources, bound, scratch, &heap, on_settle);
}

void DijkstraExpandBounded(
    const NetworkView& view, const std::vector<DijkstraSource>& sources,
    double bound, TraversalWorkspace* ws,
    const std::function<SettleAction(NodeId, double)>& on_settle) {
  ExpandBounded(view, sources, bound, &ws->scratch, &ws->heap, on_settle);
}

}  // namespace netclus
