// Disk-based storage of the network and its points (paper Section 4.1).
//
// Two flat files hold the adjacency lists and the point groups; each is
// indexed by a sparse B+-tree (adjacency keyed by node id, points keyed by
// the first point id of each group). All four files sit behind one LRU
// buffer pool, reproducing the paper's 1 MiB buffer / 4 KiB page setting.
//
// Adjacency record (one per node):
//   [degree u32] then per neighbor [node u32][group_first u32][weight f64]
//   where group_first is the first point id of the point group on that
//   edge, or kInvalidPointId when the edge holds no points.
// Point-group record (one per chunk; large groups split across chunks):
//   [u u32][v u32][count u32][offset f64 x count]
//
// Node records are placed into pages either in connectivity (BFS) order —
// the CCAM idea of co-locating neighbor nodes — or in random order, the
// ablation baseline.
//
// On-disk format versions (u32 in each flat file's header page; 0 in
// files written before the field existed):
//   v1 (or 0): no page checksums; records may use the full page.
//   v2: every page of all four files carries the BufferManager's CRC32C
//       footer; records are packed into usable_page_size() bytes.
// Build() writes v2; Open() sniffs the version and reads either, with
// checksum verification off for v1 files.
#ifndef NETCLUS_GRAPH_NETWORK_STORE_H_
#define NETCLUS_GRAPH_NETWORK_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/bptree.h"
#include "storage/buffer_manager.h"
#include "storage/paged_file.h"
#include "graph/network.h"
#include "graph/network_view.h"

namespace netclus {

/// How node adjacency records are assigned to disk pages.
enum class NodePlacement {
  kConnectivity,  // BFS order: neighbors tend to share pages (CCAM-style)
  kRandom,        // shuffled order: the ablation baseline
};

/// \brief The four paged files of the storage architecture.
struct NetworkStoreFiles {
  PagedFile* adj_flat = nullptr;
  PagedFile* adj_index = nullptr;
  PagedFile* pts_flat = nullptr;
  PagedFile* pts_index = nullptr;
};

/// \brief Disk-resident network + points, queried through a buffer pool.
class NetworkStore {
 public:
  /// Serializes `net` and `points` into the (empty) files and builds the
  /// B+-tree indexes. `seed` drives the kRandom placement shuffle.
  static Result<std::unique_ptr<NetworkStore>> Build(
      const Network& net, const PointSet& points, BufferManager* bm,
      const NetworkStoreFiles& files, NodePlacement placement, uint64_t seed);

  /// Reopens a store previously Build()-written into `files`.
  static Result<std::unique_ptr<NetworkStore>> Open(
      BufferManager* bm, const NetworkStoreFiles& files);

  NodeId num_nodes() const { return num_nodes_; }
  PointId num_points() const { return num_points_; }

  /// Reads the adjacency record of `n`:
  /// fn(neighbor, weight, group_first_point_or_invalid).
  Status ReadAdjacency(
      NodeId n,
      const std::function<void(NodeId, double, PointId)>& fn) const;

  /// Reads the point group starting at point id `first` (all chunks of one
  /// edge), filling `u`, `v` and the ascending offsets.
  Status ReadGroup(PointId first, NodeId* u, NodeId* v,
                   std::vector<double>* offsets) const;

  /// Position of point `p` via a floor lookup on the points index.
  Result<PointPos> ReadPointPosition(PointId p) const;

  /// Scans all point groups in point-id order (chunks of one edge are
  /// coalesced): fn(u, v, first, count).
  Status ScanGroups(
      const std::function<void(NodeId, NodeId, PointId, uint32_t)>& fn) const;

  /// On-disk format version this store was built/opened with.
  uint32_t format_version() const { return format_version_; }

 private:
  NetworkStore(BufferManager* bm, FileId adj_flat, FileId pts_flat)
      : bm_(bm), adj_flat_(adj_flat), pts_flat_(pts_flat) {}

  BufferManager* bm_;
  FileId adj_flat_;
  FileId pts_flat_;
  std::unique_ptr<BPlusTree> adj_index_;
  std::unique_ptr<BPlusTree> pts_index_;
  NodeId num_nodes_ = 0;
  PointId num_points_ = 0;
  uint32_t format_version_ = 0;
};

/// \brief NetworkView over a NetworkStore: the algorithms' disk path.
///
/// The NetworkView accessors cannot report I/O failures inline, so the
/// view records the first non-OK Status from the store (returning neutral
/// values for the failed call) and exposes it through status(), which
/// RunClustering checks at its boundary. Recording is thread-safe; the
/// first error wins.
class DiskNetworkView : public NetworkView {
 public:
  explicit DiskNetworkView(const NetworkStore* store) : store_(store) {}

  NodeId num_nodes() const override { return store_->num_nodes(); }
  PointId num_points() const override { return store_->num_points(); }
  void ForEachNeighbor(
      NodeId n,
      const std::function<void(NodeId, double)>& fn) const override;
  double EdgeWeight(NodeId a, NodeId b) const override;
  PointPos PointPosition(PointId p) const override;
  void GetEdgePoints(NodeId a, NodeId b,
                     std::vector<EdgePoint>* out) const override;
  void ForEachPointGroup(
      const std::function<void(NodeId, NodeId, PointId, uint32_t)>& fn)
      const override;

  /// First storage error any accessor swallowed, or OK.
  Status status() const override NETCLUS_EXCLUDES(mu_);

  /// Forgets a recorded error (fault-injection tests reuse one view
  /// across injected and clean phases).
  void ClearStatus() NETCLUS_EXCLUDES(mu_);

 private:
  void Record(const Status& s) const NETCLUS_EXCLUDES(mu_);

  const NetworkStore* store_;
  // Rank kDiskViewStatus: the leaf of the disk read path — Record runs
  // from deep inside traversals, which must not be holding anything
  // that ranks above it.
  mutable Mutex mu_{lock_rank::kDiskViewStatus, "DiskNetworkView::mu_"};
  mutable Status first_error_ NETCLUS_GUARDED_BY(mu_);
};

/// \brief Convenience bundle owning the files, pool, store and view.
///
/// Benches and tests use this to stand up a disk-backed network in one
/// call. With `on_disk` false the paged files are in-memory (I/O is still
/// counted identically).
class DiskNetworkBundle {
 public:
  static Result<std::unique_ptr<DiskNetworkBundle>> Create(
      const Network& net, const PointSet& points, uint64_t pool_bytes,
      uint32_t page_size, NodePlacement placement, uint64_t seed);

  /// Like Create, but the four paged files live on disk under
  /// `directory` (created files: adj.dat, adj.idx, pts.dat, pts.idx;
  /// any existing ones are truncated).
  static Result<std::unique_ptr<DiskNetworkBundle>> CreateOnDisk(
      const std::string& directory, const Network& net,
      const PointSet& points, uint64_t pool_bytes, uint32_t page_size,
      NodePlacement placement, uint64_t seed);

  /// Reopens a store previously written by CreateOnDisk.
  static Result<std::unique_ptr<DiskNetworkBundle>> OpenOnDisk(
      const std::string& directory, uint64_t pool_bytes, uint32_t page_size);

  const DiskNetworkView& view() const { return *view_; }
  BufferManager& buffer_manager() { return *bm_; }
  const NetworkStore& store() const { return *store_; }

  /// Physical page reads across all four files.
  uint64_t TotalPhysicalReads() const;

  /// Per-file physical I/O counters (the paper's cost discussion is
  /// about which files an algorithm touches and how).
  struct IoBreakdown {
    FileIoStats adj_flat, adj_index, pts_flat, pts_index;
  };
  IoBreakdown GetIoBreakdown() const;

  /// Zeroes all per-file counters and the buffer statistics.
  void ResetIoStats();

 private:
  DiskNetworkBundle() = default;
  std::unique_ptr<PagedFile> adj_flat_, adj_index_, pts_flat_, pts_index_;
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<NetworkStore> store_;
  std::unique_ptr<DiskNetworkView> view_;
};

}  // namespace netclus

#endif  // NETCLUS_GRAPH_NETWORK_STORE_H_
