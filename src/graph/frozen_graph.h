// FrozenGraph: an immutable struct-of-arrays CSR snapshot of a
// NetworkView's adjacency structure.
//
// Every algorithm in the paper is a Dijkstra traversal, and the
// traversal inner loop is exactly "for each neighbor of the popped
// node". Behind NetworkView that loop pays a virtual call plus a
// std::function invocation per neighbor over vector-of-vectors
// adjacency; FrozenGraph replaces it with a contiguous pointer walk
// the compiler can inline. The snapshot stores, per half-edge slot:
//
//   offsets_[n] .. offsets_[n+1]   slots of node n's neighbors
//   neighbors_[i]                  the neighbor id
//   weights_[i]                    the edge weight
//   pt_first_[i], pt_count_[i]     points on that edge (id range), or
//                                  (kInvalidPointId, 0) when none
//
// The neighbor order of each node matches the source view's iteration
// order exactly, so a traversal over the snapshot settles nodes, pushes
// heap entries, and breaks distance ties in the same sequence as one
// over the live view — clustering trajectories stay bit-identical.
// See DESIGN.md section 11.
#ifndef NETCLUS_GRAPH_FROZEN_GRAPH_H_
#define NETCLUS_GRAPH_FROZEN_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace netclus {

class NetworkView;

/// \brief Immutable CSR adjacency snapshot; cheap to share read-only
/// across threads (all state is set once at materialization).
class FrozenGraph {
 public:
  /// An empty snapshot (0 nodes). Assign a materialized one over it.
  FrozenGraph() = default;

  NodeId num_nodes() const {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of half-edges (2x the undirected edge count).
  size_t num_half_edges() const { return neighbors_.size(); }

  uint32_t degree(NodeId n) const { return offsets_[n + 1] - offsets_[n]; }

  /// Invokes `fn(neighbor, weight)` for every edge incident to `n`, in
  /// the source view's iteration order. This is the de-virtualized hot
  /// loop: a plain pointer walk over two parallel arrays.
  template <typename Fn>
  void ForEachNeighbor(NodeId n, Fn&& fn) const {
    const uint32_t first = offsets_[n];
    const uint32_t last = offsets_[n + 1];
    const NodeId* nb = neighbors_.data();
    const double* w = weights_.data();
    for (uint32_t i = first; i < last; ++i) fn(nb[i], w[i]);
  }

  /// Weight of edge {a, b}; negative when absent. O(min(deg a, deg b))
  /// contiguous scan — no hash table, and for road-like networks the
  /// degree is a small constant.
  double EdgeWeight(NodeId a, NodeId b) const;
  bool HasEdge(NodeId a, NodeId b) const { return EdgeWeight(a, b) >= 0.0; }

  /// Points on edge {a, b} as [first, first + count); count == 0 when
  /// the edge holds none (or the edge is absent). Only meaningful when
  /// has_point_ranges() — snapshots built from a bare adjacency carry
  /// no point information.
  std::pair<PointId, uint32_t> EdgePointRange(NodeId a, NodeId b) const;
  bool has_point_ranges() const { return has_point_ranges_; }

  /// Builds a snapshot from any NetworkView by iterating its adjacency
  /// (two passes: degree count, then fill) and its point groups. The
  /// caller is responsible for checking view.status() around the call
  /// (NetworkView::Freeze() does); Materialize itself cannot fail.
  static FrozenGraph Materialize(const NetworkView& view);

  /// Incremental rebuild: produces the same snapshot Materialize(view)
  /// would, but copies the CSR row of every node NOT flagged in `dirty`
  /// straight out of `prev` (the retiring epoch's snapshot) instead of
  /// re-iterating the view. Callers flag exactly the nodes whose
  /// adjacency changed since `prev` was built; a clean row's neighbor
  /// order must be unchanged in the view (Network::AddEdge appends, so
  /// rows it does not touch keep their order). Point ranges are always
  /// rebuilt — dense point ids shift on every publish. Falls back to a
  /// full Materialize when the node count changed or `dirty` is
  /// malformed.
  static FrozenGraph MaterializeIncremental(const NetworkView& view,
                                            const FrozenGraph& prev,
                                            const std::vector<char>& dirty);

  /// True when every array (offsets, neighbors, weight bit patterns,
  /// point ranges) matches exactly — the NETCLUS_VALIDATE oracle that an
  /// incremental rebuild spliced correctly.
  bool BitIdenticalTo(const FrozenGraph& other) const;

  /// Builds a snapshot from raw adjacency lists (no point ranges).
  /// Used by Network to serve EdgeWeight lookups from the CSR arrays.
  static FrozenGraph FromAdjacency(
      const std::vector<std::vector<std::pair<NodeId, double>>>& adj);

  /// Test-only: overwrites half-edge slot `i` so validator-rejection
  /// paths can be exercised. Never call outside tests.
  void CorruptHalfEdgeForTest(size_t i, NodeId neighbor, double weight) {
    neighbors_[i] = neighbor;
    weights_[i] = weight;
  }

 private:
  // Slot index of neighbor `b` in `a`'s CSR row; SIZE_MAX when absent.
  size_t SlotOf(NodeId a, NodeId b) const;

  std::vector<uint32_t> offsets_;   // |V| + 1
  std::vector<NodeId> neighbors_;   // 2|E|
  std::vector<double> weights_;     // 2|E|
  std::vector<PointId> pt_first_;   // 2|E|, kInvalidPointId when no points
  std::vector<uint32_t> pt_count_;  // 2|E|
  bool has_point_ranges_ = false;
};

/// Neighbor-iteration adapter the template traversal kernel dispatches
/// through (see graph/dijkstra.h): the FrozenGraph side inlines the CSR
/// pointer walk with no virtual dispatch and no std::function.
template <typename Fn>
inline void VisitNeighbors(const FrozenGraph& g, NodeId n, Fn&& fn) {
  g.ForEachNeighbor(n, std::forward<Fn>(fn));
}

}  // namespace netclus

#endif  // NETCLUS_GRAPH_FROZEN_GRAPH_H_
