#include "graph/frozen_graph.h"

#include "common/check.h"
#include "graph/network_view.h"

namespace netclus {

size_t FrozenGraph::SlotOf(NodeId a, NodeId b) const {
  const uint32_t first = offsets_[a];
  const uint32_t last = offsets_[a + 1];
  for (uint32_t i = first; i < last; ++i) {
    if (neighbors_[i] == b) return i;
  }
  return SIZE_MAX;
}

double FrozenGraph::EdgeWeight(NodeId a, NodeId b) const {
  if (a >= num_nodes() || b >= num_nodes()) return -1.0;
  // Scan the smaller row: undirected edges appear in both rows with the
  // same weight.
  if (degree(b) < degree(a)) std::swap(a, b);
  size_t slot = SlotOf(a, b);
  return slot == SIZE_MAX ? -1.0 : weights_[slot];
}

std::pair<PointId, uint32_t> FrozenGraph::EdgePointRange(NodeId a,
                                                         NodeId b) const {
  if (!has_point_ranges_ || a >= num_nodes() || b >= num_nodes()) {
    return {kInvalidPointId, 0};
  }
  size_t slot = SlotOf(a, b);
  if (slot == SIZE_MAX || pt_first_[slot] == kInvalidPointId) {
    return {kInvalidPointId, 0};
  }
  return {pt_first_[slot], pt_count_[slot]};
}

FrozenGraph FrozenGraph::Materialize(const NetworkView& view) {
  FrozenGraph g;
  const NodeId n = view.num_nodes();
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);

  // Pass 1: degrees into offsets_[i + 1], then prefix-sum.
  for (NodeId i = 0; i < n; ++i) {
    uint32_t deg = 0;
    view.ForEachNeighbor(i, [&deg](NodeId, double) { ++deg; });
    g.offsets_[i + 1] = deg;
  }
  for (NodeId i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];

  const size_t half_edges = g.offsets_[n];
  g.neighbors_.resize(half_edges);
  g.weights_.resize(half_edges);

  // Pass 2: fill each row in the view's own iteration order — this is
  // what keeps frozen traversals bit-identical to live ones. A view
  // whose reads start failing between the passes can report different
  // neighbors here (it records a sticky error and hands out neutral
  // fallbacks); the bounds guard keeps the fill in-row and Freeze()
  // rejects the snapshot via view.status() afterwards.
  for (NodeId i = 0; i < n; ++i) {
    uint32_t slot = g.offsets_[i];
    const uint32_t row_end = g.offsets_[i + 1];
    view.ForEachNeighbor(i, [&](NodeId m, double w) {
      if (slot < row_end) {
        g.neighbors_[slot] = m;
        g.weights_[slot] = w;
      }
      ++slot;
    });
    NETCLUS_DCHECK(slot == row_end || !view.status().ok())
        << "adjacency changed between Materialize passes at node " << i;
  }

  // Point ranges: one slot-scan per populated edge, both directions.
  g.pt_first_.assign(half_edges, kInvalidPointId);
  g.pt_count_.assign(half_edges, 0);
  g.has_point_ranges_ = true;
  view.ForEachPointGroup([&g](NodeId u, NodeId v, PointId first,
                              uint32_t count) {
    size_t su = g.SlotOf(u, v);
    size_t sv = g.SlotOf(v, u);
    if (su != SIZE_MAX) {
      g.pt_first_[su] = first;
      g.pt_count_[su] = count;
    }
    if (sv != SIZE_MAX) {
      g.pt_first_[sv] = first;
      g.pt_count_[sv] = count;
    }
  });
  return g;
}

FrozenGraph FrozenGraph::FromAdjacency(
    const std::vector<std::vector<std::pair<NodeId, double>>>& adj) {
  FrozenGraph g;
  const size_t n = adj.size();
  g.offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    g.offsets_[i + 1] =
        g.offsets_[i] + static_cast<uint32_t>(adj[i].size());
  }
  const size_t half_edges = g.offsets_[n];
  g.neighbors_.resize(half_edges);
  g.weights_.resize(half_edges);
  for (size_t i = 0; i < n; ++i) {
    uint32_t slot = g.offsets_[i];
    for (const auto& [m, w] : adj[i]) {
      g.neighbors_[slot] = m;
      g.weights_[slot] = w;
      ++slot;
    }
  }
  // No point information in a bare adjacency; has_point_ranges_ stays
  // false and EdgePointRange reports empty.
  return g;
}

Result<FrozenGraph> NetworkView::Freeze() const {
  NETCLUS_RETURN_IF_ERROR(status());
  FrozenGraph g = FrozenGraph::Materialize(*this);
  // A disk-backed view records I/O failures out of band; re-check so a
  // snapshot built over damaged reads is rejected instead of returned.
  NETCLUS_RETURN_IF_ERROR(status());
  return g;
}

}  // namespace netclus
