#include "graph/frozen_graph.h"

#include <cstring>

#include "common/check.h"
#include "graph/network_view.h"

namespace netclus {

size_t FrozenGraph::SlotOf(NodeId a, NodeId b) const {
  const uint32_t first = offsets_[a];
  const uint32_t last = offsets_[a + 1];
  for (uint32_t i = first; i < last; ++i) {
    if (neighbors_[i] == b) return i;
  }
  return SIZE_MAX;
}

double FrozenGraph::EdgeWeight(NodeId a, NodeId b) const {
  if (a >= num_nodes() || b >= num_nodes()) return -1.0;
  // Scan the smaller row: undirected edges appear in both rows with the
  // same weight.
  if (degree(b) < degree(a)) std::swap(a, b);
  size_t slot = SlotOf(a, b);
  return slot == SIZE_MAX ? -1.0 : weights_[slot];
}

std::pair<PointId, uint32_t> FrozenGraph::EdgePointRange(NodeId a,
                                                         NodeId b) const {
  if (!has_point_ranges_ || a >= num_nodes() || b >= num_nodes()) {
    return {kInvalidPointId, 0};
  }
  size_t slot = SlotOf(a, b);
  if (slot == SIZE_MAX || pt_first_[slot] == kInvalidPointId) {
    return {kInvalidPointId, 0};
  }
  return {pt_first_[slot], pt_count_[slot]};
}

FrozenGraph FrozenGraph::Materialize(const NetworkView& view) {
  FrozenGraph g;
  const NodeId n = view.num_nodes();
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);

  // Pass 1: degrees into offsets_[i + 1], then prefix-sum.
  for (NodeId i = 0; i < n; ++i) {
    uint32_t deg = 0;
    view.ForEachNeighbor(i, [&deg](NodeId, double) { ++deg; });
    g.offsets_[i + 1] = deg;
  }
  for (NodeId i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];

  const size_t half_edges = g.offsets_[n];
  g.neighbors_.resize(half_edges);
  g.weights_.resize(half_edges);

  // Pass 2: fill each row in the view's own iteration order — this is
  // what keeps frozen traversals bit-identical to live ones. A view
  // whose reads start failing between the passes can report different
  // neighbors here (it records a sticky error and hands out neutral
  // fallbacks); the bounds guard keeps the fill in-row and Freeze()
  // rejects the snapshot via view.status() afterwards.
  for (NodeId i = 0; i < n; ++i) {
    uint32_t slot = g.offsets_[i];
    const uint32_t row_end = g.offsets_[i + 1];
    view.ForEachNeighbor(i, [&](NodeId m, double w) {
      if (slot < row_end) {
        g.neighbors_[slot] = m;
        g.weights_[slot] = w;
      }
      ++slot;
    });
    NETCLUS_DCHECK(slot == row_end || !view.status().ok())
        << "adjacency changed between Materialize passes at node " << i;
  }

  // Point ranges: one slot-scan per populated edge, both directions.
  g.pt_first_.assign(half_edges, kInvalidPointId);
  g.pt_count_.assign(half_edges, 0);
  g.has_point_ranges_ = true;
  view.ForEachPointGroup([&g](NodeId u, NodeId v, PointId first,
                              uint32_t count) {
    size_t su = g.SlotOf(u, v);
    size_t sv = g.SlotOf(v, u);
    if (su != SIZE_MAX) {
      g.pt_first_[su] = first;
      g.pt_count_[su] = count;
    }
    if (sv != SIZE_MAX) {
      g.pt_first_[sv] = first;
      g.pt_count_[sv] = count;
    }
  });
  return g;
}

FrozenGraph FrozenGraph::MaterializeIncremental(
    const NetworkView& view, const FrozenGraph& prev,
    const std::vector<char>& dirty) {
  const NodeId n = view.num_nodes();
  if (prev.num_nodes() != n || dirty.size() != static_cast<size_t>(n)) {
    // Nothing safe to splice from: the node space itself moved (or the
    // dirty set does not describe it). Full rebuild.
    return Materialize(view);
  }
  FrozenGraph g;
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);

  // Pass 1: degrees. A clean row's degree is already known from prev;
  // only dirty rows pay a view iteration.
  for (NodeId i = 0; i < n; ++i) {
    uint32_t deg;
    if (dirty[i] != 0) {
      deg = 0;
      view.ForEachNeighbor(i, [&deg](NodeId, double) { ++deg; });
    } else {
      deg = prev.degree(i);
    }
    g.offsets_[i + 1] = deg;
  }
  for (NodeId i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];

  const size_t half_edges = g.offsets_[n];
  g.neighbors_.resize(half_edges);
  g.weights_.resize(half_edges);

  // Pass 2: clean rows splice their (neighbor, weight) spans verbatim
  // out of the retiring snapshot — unchanged rows keep their iteration
  // order in the view, so the bytes are identical to what a full
  // Materialize would produce. Dirty rows refill from the view.
  for (NodeId i = 0; i < n; ++i) {
    uint32_t slot = g.offsets_[i];
    const uint32_t row_end = g.offsets_[i + 1];
    if (dirty[i] == 0) {
      const uint32_t prev_first = prev.offsets_[i];
      const uint32_t count = row_end - slot;
      if (count > 0) {
        std::memcpy(g.neighbors_.data() + slot,
                    prev.neighbors_.data() + prev_first,
                    static_cast<size_t>(count) * sizeof(NodeId));
        std::memcpy(g.weights_.data() + slot,
                    prev.weights_.data() + prev_first,
                    static_cast<size_t>(count) * sizeof(double));
      }
      continue;
    }
    view.ForEachNeighbor(i, [&](NodeId m, double w) {
      if (slot < row_end) {
        g.neighbors_[slot] = m;
        g.weights_[slot] = w;
      }
      ++slot;
    });
    NETCLUS_DCHECK(slot == row_end || !view.status().ok())
        << "adjacency changed between incremental passes at node " << i;
  }

  // Point ranges always rebuild: every publish renumbers dense point
  // ids, so no prior epoch's ranges can be reused.
  g.pt_first_.assign(half_edges, kInvalidPointId);
  g.pt_count_.assign(half_edges, 0);
  g.has_point_ranges_ = true;
  view.ForEachPointGroup([&g](NodeId u, NodeId v, PointId first,
                              uint32_t count) {
    size_t su = g.SlotOf(u, v);
    size_t sv = g.SlotOf(v, u);
    if (su != SIZE_MAX) {
      g.pt_first_[su] = first;
      g.pt_count_[su] = count;
    }
    if (sv != SIZE_MAX) {
      g.pt_first_[sv] = first;
      g.pt_count_[sv] = count;
    }
  });
  return g;
}

bool FrozenGraph::BitIdenticalTo(const FrozenGraph& other) const {
  // Weights compare by bit pattern (memcmp), not operator== — the whole
  // point is that the spliced arrays are byte-for-byte the full
  // rebuild's arrays.
  return offsets_ == other.offsets_ && neighbors_ == other.neighbors_ &&
         weights_.size() == other.weights_.size() &&
         (weights_.empty() ||
          std::memcmp(weights_.data(), other.weights_.data(),
                      weights_.size() * sizeof(double)) == 0) &&
         pt_first_ == other.pt_first_ && pt_count_ == other.pt_count_ &&
         has_point_ranges_ == other.has_point_ranges_;
}

FrozenGraph FrozenGraph::FromAdjacency(
    const std::vector<std::vector<std::pair<NodeId, double>>>& adj) {
  FrozenGraph g;
  const size_t n = adj.size();
  g.offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    g.offsets_[i + 1] =
        g.offsets_[i] + static_cast<uint32_t>(adj[i].size());
  }
  const size_t half_edges = g.offsets_[n];
  g.neighbors_.resize(half_edges);
  g.weights_.resize(half_edges);
  for (size_t i = 0; i < n; ++i) {
    uint32_t slot = g.offsets_[i];
    for (const auto& [m, w] : adj[i]) {
      g.neighbors_[slot] = m;
      g.weights_[slot] = w;
      ++slot;
    }
  }
  // No point information in a bare adjacency; has_point_ranges_ stays
  // false and EdgePointRange reports empty.
  return g;
}

Result<FrozenGraph> NetworkView::Freeze() const {
  NETCLUS_RETURN_IF_ERROR(status());
  FrozenGraph g = FrozenGraph::Materialize(*this);
  // A disk-backed view records I/O failures out of band; re-check so a
  // snapshot built over damaged reads is rejected instead of returned.
  NETCLUS_RETURN_IF_ERROR(status());
  return g;
}

}  // namespace netclus
