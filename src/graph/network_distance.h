// Point-level distance functions of the paper's Section 3.1 and the
// ε-range query over the network ([16]-style expansion) used by DBSCAN.
//
// These free functions are the synchronous compatibility surface of the
// unified query API in server/query.h: a QueryRequest of each kind
// (kPointDistance, kRange, kNearestObject) executes by dispatching onto
// the function below matching the execution context — live view or
// FrozenGraph snapshot, accelerated or exact. Every frozen/view and
// accel/plain overload pair is bit-identical in its results, which is
// what lets ValidateServedBatch replay a served batch through any of
// them and demand exact payload equality. Existing callers keep using
// these functions directly; new query-shaped code should prefer the
// QueryRequest vocabulary.
#ifndef NETCLUS_GRAPH_NETWORK_DISTANCE_H_
#define NETCLUS_GRAPH_NETWORK_DISTANCE_H_

#include <vector>

#include "graph/accelerator.h"
#include "graph/dijkstra.h"
#include "graph/frozen_graph.h"
#include "graph/network_view.h"
#include "graph/types.h"

namespace netclus {

/// Direct distance d_L(p, q) (Definition 2): |offset difference| when the
/// points share an edge, +infinity otherwise. Not necessarily the shortest
/// distance even on a shared edge.
double DirectDistance(const PointPos& p, const PointPos& q);

/// Direct distance d_L(p, n) from a point to an endpoint of its edge
/// (`edge_weight` = W(p.u, p.v)); +infinity when `n` is neither endpoint.
double DirectDistanceToNode(const PointPos& p, double edge_weight, NodeId n);

/// Network distance d(p, q) (Definition 4): length of the shortest path
/// between the two points. Exact; early-terminating bidirectionally
/// bounded single-source Dijkstra seeded at p's edge endpoints.
/// `scratch` may be shared across calls (a fresh epoch is started).
double PointNetworkDistance(const NetworkView& view, PointId p, PointId q,
                            NodeScratch* scratch);

/// Frozen-path variant: the traversal runs over `frozen` (a snapshot of
/// `view`, see NetworkView::Freeze()) with no virtual dispatch in the
/// inner loop; point positions still come from `view`. Bit-identical to
/// the overload above.
double PointNetworkDistance(const NetworkView& view, const FrozenGraph& frozen,
                            PointId p, PointId q, NodeScratch* scratch);

/// Accelerated variant (`accel` may be null = exact path above). Early
/// exits on a cache hit and on a kInfDist lower bound (proven
/// disconnection); exact results are offered back to the cache.
/// Callers that only branch on "d(p, q) <= threshold" may pass
/// `threshold`: when the accelerator's lower bound already exceeds it,
/// the expansion is skipped and that lower bound — some value >
/// threshold, not the exact distance — is returned.
double PointNetworkDistance(const NetworkView& view, PointId p, PointId q,
                            NodeScratch* scratch,
                            const DistanceAccelerator* accel,
                            double threshold = kInfDist);

/// Frozen-path accelerated variant; same contract, exact expansions run
/// over the snapshot.
double PointNetworkDistance(const NetworkView& view, const FrozenGraph& frozen,
                            PointId p, PointId q, NodeScratch* scratch,
                            const DistanceAccelerator* accel,
                            double threshold = kInfDist);

/// Workspace-based variants: the expansion reuses `ws`'s heap storage
/// and honors its cancellation token (`ws->cancel`, inert by default —
/// results are bit-identical to the NodeScratch overloads above). When
/// the token fires mid-expansion the returned value is garbage: callers
/// must check `ws->cancel.triggered`, and a cancelled expansion is
/// never offered back to the accelerator's cache.
double PointNetworkDistance(const NetworkView& view, PointId p, PointId q,
                            TraversalWorkspace* ws,
                            const DistanceAccelerator* accel = nullptr,
                            double threshold = kInfDist);
double PointNetworkDistance(const NetworkView& view, const FrozenGraph& frozen,
                            PointId p, PointId q, TraversalWorkspace* ws,
                            const DistanceAccelerator* accel = nullptr,
                            double threshold = kInfDist);

/// A point found by RangeQuery, with its exact network distance from the
/// query point.
struct RangeResult {
  PointId id = kInvalidPointId;
  double dist = 0.0;
};

/// Exact equality, distance compared bitwise — the comparison the served
/// batch replay validator (server/query.h) relies on.
inline bool operator==(const RangeResult& a, const RangeResult& b) {
  return a.id == b.id && a.dist == b.dist;
}
inline bool operator!=(const RangeResult& a, const RangeResult& b) {
  return !(a == b);
}

/// Finds every point q with d(center, q) <= eps (including `center`
/// itself). Expands the network around `center` up to distance eps and
/// inspects only edges incident to reached nodes, so the cost is
/// proportional to the region spanned by eps, not to |V| or N.
/// Results are unordered.
void RangeQuery(const NetworkView& view, PointId center, double eps,
                NodeScratch* scratch, std::vector<RangeResult>* out);

/// As above, reusing the workspace's heap and settle-log storage as well
/// as its scratch — the zero-allocation steady state for algorithms that
/// issue one range query per point (DBSCAN). One workspace per concurrent
/// caller; lease them from a WorkspacePool under parallelism.
void RangeQuery(const NetworkView& view, PointId center, double eps,
                TraversalWorkspace* ws, std::vector<RangeResult>* out);

/// Frozen-path variant: expansion and edge inspection run over the
/// snapshot (point data still comes from `view`). Bit-identical results.
void RangeQuery(const NetworkView& view, const FrozenGraph& frozen,
                PointId center, double eps, TraversalWorkspace* ws,
                std::vector<RangeResult>* out);

/// Accelerated variant (`accel` may be null = plain overload above).
/// Two levers, both result-preserving: the expansion radius is tightened
/// to accel->RangeExpansionBound(center, eps) (landmark prefilter), and
/// a settled node n with d(n) + NearestObjectFloor(n, center) > eps has
/// its relaxation skipped — no point other than `center` reachable
/// through n can lie within eps. The emitted (id, dist) multiset is
/// identical to the unaccelerated query; only the internal visit order
/// differs, so results are sorted by id before returning.
void RangeQuery(const NetworkView& view, PointId center, double eps,
                TraversalWorkspace* ws, const DistanceAccelerator* accel,
                std::vector<RangeResult>* out);

/// Frozen-path accelerated variant; same result-preserving levers, with
/// the expansion over the snapshot.
void RangeQuery(const NetworkView& view, const FrozenGraph& frozen,
                PointId center, double eps, TraversalWorkspace* ws,
                const DistanceAccelerator* accel,
                std::vector<RangeResult>* out);

/// Finds the `k` points nearest to `center` by network distance
/// (excluding `center` itself), ordered by ascending distance. Fewer
/// than k results when the reachable point population is smaller.
/// Implemented as an expanding range search with a shrinking bound, in
/// the spirit of the [16] query algorithms the paper builds on.
void KNearestNeighbors(const NetworkView& view, PointId center, uint32_t k,
                       NodeScratch* scratch, std::vector<RangeResult>* out);

/// Frozen-path variant: the INE expansion runs over the snapshot's CSR
/// arrays (point data still comes from `view`). Bit-identical results.
void KNearestNeighbors(const NetworkView& view, const FrozenGraph& frozen,
                       PointId center, uint32_t k, NodeScratch* scratch,
                       std::vector<RangeResult>* out);

/// Workspace-based variants honoring `ws->cancel` (the INE expansion
/// polls the token like the Dijkstra kernel does). On cancellation
/// `out` is cleared and `ws->cancel.triggered` is set; otherwise
/// results are bit-identical to the NodeScratch overloads above.
void KNearestNeighbors(const NetworkView& view, PointId center, uint32_t k,
                       TraversalWorkspace* ws, std::vector<RangeResult>* out);
void KNearestNeighbors(const NetworkView& view, const FrozenGraph& frozen,
                       PointId center, uint32_t k, TraversalWorkspace* ws,
                       std::vector<RangeResult>* out);

}  // namespace netclus

#endif  // NETCLUS_GRAPH_NETWORK_DISTANCE_H_
