#include "graph/network_store.h"

#include <array>
#include <algorithm>
#include <cstring>
#include <queue>

#include "common/random.h"

namespace netclus {

namespace {

template <typename T>
T Load(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
template <typename T>
void Store_(char* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

constexpr uint64_t kAdjMagic = 0x4E43414A464C4154ULL;  // "NCAJFLAT"
constexpr uint64_t kPtsMagic = 0x4E435054464C4154ULL;  // "NCPTFLAT"
constexpr size_t kPageHeader = 2;                       // used bytes u16

// On-disk format version written by Build(). Files written before the
// version field existed read 0 there and are treated as version 1
// (no page checksums); version 2 adds the CRC32C page footer.
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kChecksummedSinceVersion = 2;
// Version field offsets within the two header pages.
constexpr size_t kAdjVersionOffset = 16;
constexpr size_t kPtsVersionOffset = 12;

uint64_t MakeAddr(PageId page, uint32_t offset) {
  return (static_cast<uint64_t>(page) << 32) | offset;
}
PageId AddrPage(uint64_t addr) { return static_cast<PageId>(addr >> 32); }
uint32_t AddrOffset(uint64_t addr) {
  return static_cast<uint32_t>(addr & 0xFFFFFFFFULL);
}

// Validates that flat-file record bytes [offset, offset + len) lie within
// the used region of the fetched page. Catches garbage addresses/lengths
// decoded from corrupted (v1, un-checksummed) pages before they cause
// out-of-bounds reads; the Status names the page and file offset.
Status ValidateRecordBounds(const PageHandle& h, uint32_t usable,
                            uint32_t page_size, uint32_t offset, uint64_t len,
                            const char* what) {
  uint64_t used = Load<uint16_t>(h.data());
  if (used >= kPageHeader && used <= usable && offset >= kPageHeader &&
      offset + len <= used) {
    return Status::OK();
  }
  return Status::Corruption(
      std::string(what) + ": record out of page bounds: page " +
      std::to_string(h.page_id()) + ", offset " + std::to_string(offset) +
      " (file offset " +
      std::to_string(static_cast<uint64_t>(h.page_id()) * page_size + offset) +
      ")");
}

// Sequentially appends variable-length records to a flat file, packing
// them into pages. Records never span pages.
class FlatWriter {
 public:
  FlatWriter(BufferManager* bm, FileId file, uint32_t page_size)
      : bm_(bm), file_(file), page_size_(page_size) {}

  Result<uint64_t> Append(const char* data, size_t len) {
    if (len + kPageHeader > page_size_) {
      return Status::InvalidArgument("flat record larger than a page");
    }
    if (!page_.valid() || used_ + len > page_size_) {
      NETCLUS_RETURN_IF_ERROR(CloseCurrent());
      Result<PageHandle> h = bm_->NewPage(file_);
      if (!h.ok()) return h.status();
      page_ = std::move(h.value());
      used_ = kPageHeader;
    }
    std::memcpy(page_.data() + used_, data, len);
    uint64_t addr = MakeAddr(page_.page_id(), used_);
    used_ += static_cast<uint32_t>(len);
    page_.MarkDirty();
    return addr;
  }

  Status CloseCurrent() {
    if (page_.valid()) {
      Store_<uint16_t>(page_.data(), static_cast<uint16_t>(used_));
      page_.MarkDirty();
      page_.Release();
    }
    return Status::OK();
  }

 private:
  BufferManager* bm_;
  FileId file_;
  uint32_t page_size_;
  PageHandle page_;
  uint32_t used_ = 0;
};

// Adjacency record encoding: [degree u32] + degree * [node u32][group u32]
// [weight f64].
constexpr size_t kAdjEntryBytes = 16;

std::vector<char> EncodeAdjRecord(
    const std::vector<std::pair<NodeId, double>>& neighbors,
    const std::function<PointId(NodeId)>& group_of_neighbor) {
  std::vector<char> rec(4 + neighbors.size() * kAdjEntryBytes);
  Store_<uint32_t>(rec.data(), static_cast<uint32_t>(neighbors.size()));
  char* p = rec.data() + 4;
  for (const auto& [m, w] : neighbors) {
    Store_<NodeId>(p, m);
    Store_<PointId>(p + 4, group_of_neighbor(m));
    Store_<double>(p + 8, w);
    p += kAdjEntryBytes;
  }
  return rec;
}

// Point chunk encoding: [u u32][v u32][count u32] + count * [offset f64].
std::vector<char> EncodePtsChunk(NodeId u, NodeId v, const double* offsets,
                                 uint32_t count) {
  std::vector<char> rec(12 + static_cast<size_t>(count) * 8);
  Store_<NodeId>(rec.data(), u);
  Store_<NodeId>(rec.data() + 4, v);
  Store_<uint32_t>(rec.data() + 8, count);
  for (uint32_t i = 0; i < count; ++i) {
    Store_<double>(rec.data() + 12 + i * 8, offsets[i]);
  }
  return rec;
}

std::vector<NodeId> PlacementOrder(const Network& net, NodePlacement placement,
                                   uint64_t seed) {
  NodeId n = net.num_nodes();
  std::vector<NodeId> order;
  order.reserve(n);
  if (placement == NodePlacement::kRandom) {
    for (NodeId i = 0; i < n; ++i) order.push_back(i);
    Rng rng(seed);
    rng.Shuffle(&order);
    return order;
  }
  // Connectivity order: BFS from each unvisited node in id order, so that
  // adjacent nodes land close together in the flat file (CCAM-style).
  std::vector<bool> seen(n, false);
  for (NodeId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::queue<NodeId> q;
    q.push(s);
    seen[s] = true;
    while (!q.empty()) {
      NodeId x = q.front();
      q.pop();
      order.push_back(x);
      for (const auto& [y, w] : net.neighbors(x)) {
        (void)w;
        if (!seen[y]) {
          seen[y] = true;
          q.push(y);
        }
      }
    }
  }
  return order;
}

}  // namespace

Result<std::unique_ptr<NetworkStore>> NetworkStore::Build(
    const Network& net, const PointSet& points, BufferManager* bm,
    const NetworkStoreFiles& files, NodePlacement placement, uint64_t seed) {
  for (PagedFile* f :
       {files.adj_flat, files.adj_index, files.pts_flat, files.pts_index}) {
    if (f == nullptr) return Status::InvalidArgument("missing file");
    if (f->num_pages() != 0) {
      return Status::InvalidArgument("Build requires empty files");
    }
    if (f->page_size() != bm->page_size()) {
      return Status::InvalidArgument("page size mismatch");
    }
  }
  // New stores are written in the checksummed format (v2): every page of
  // all four files carries the CRC32C footer.
  FileId adj_flat = bm->RegisterFile(files.adj_flat, /*checksummed=*/true);
  FileId adj_index = bm->RegisterFile(files.adj_index, /*checksummed=*/true);
  FileId pts_flat = bm->RegisterFile(files.pts_flat, /*checksummed=*/true);
  FileId pts_index = bm->RegisterFile(files.pts_index, /*checksummed=*/true);
  auto store =
      std::unique_ptr<NetworkStore>(new NetworkStore(bm, adj_flat, pts_flat));
  store->num_nodes_ = net.num_nodes();
  store->num_points_ = points.size();
  store->format_version_ = kFormatVersion;

  // --- Adjacency flat file: header page, then records in placement order.
  {
    Result<PageHandle> h = bm->NewPage(adj_flat);
    if (!h.ok()) return h.status();
    Store_<uint64_t>(h.value().data(), kAdjMagic);
    Store_<uint32_t>(h.value().data() + 8, net.num_nodes());
    Store_<uint32_t>(h.value().data() + 12, points.size());
    Store_<uint32_t>(h.value().data() + kAdjVersionOffset, kFormatVersion);
    h.value().MarkDirty();
  }
  std::vector<std::pair<uint64_t, uint64_t>> adj_entries;  // node -> addr
  adj_entries.reserve(net.num_nodes());
  {
    FlatWriter writer(bm, adj_flat, bm->usable_page_size(adj_flat));
    for (NodeId n : PlacementOrder(net, placement, seed)) {
      std::vector<char> rec =
          EncodeAdjRecord(net.neighbors(n), [&](NodeId m) -> PointId {
            auto [first, count] = points.EdgePointRange(n, m);
            return count > 0 ? first : kInvalidPointId;
          });
      Result<uint64_t> addr = writer.Append(rec.data(), rec.size());
      if (!addr.ok()) return addr.status();
      adj_entries.emplace_back(n, addr.value());
    }
    NETCLUS_RETURN_IF_ERROR(writer.CloseCurrent());
  }
  std::sort(adj_entries.begin(), adj_entries.end());
  {
    Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Create(bm, adj_index);
    if (!tree.ok()) return tree.status();
    store->adj_index_ = std::move(tree.value());
    NETCLUS_RETURN_IF_ERROR(store->adj_index_->BulkLoad(adj_entries));
  }

  // --- Points flat file: header page, then group chunks in point-id order.
  {
    Result<PageHandle> h = bm->NewPage(pts_flat);
    if (!h.ok()) return h.status();
    Store_<uint64_t>(h.value().data(), kPtsMagic);
    Store_<uint32_t>(h.value().data() + 8, points.size());
    Store_<uint32_t>(h.value().data() + kPtsVersionOffset, kFormatVersion);
    h.value().MarkDirty();
  }
  const uint32_t max_chunk = static_cast<uint32_t>(
      (bm->usable_page_size(pts_flat) - kPageHeader - 12) / 8);
  std::vector<std::pair<uint64_t, uint64_t>> pts_entries;  // first pt -> addr
  {
    FlatWriter writer(bm, pts_flat, bm->usable_page_size(pts_flat));
    std::vector<double> offsets;
    for (size_t gi = 0; gi < points.num_groups(); ++gi) {
      const PointSet::Group& g = points.group(gi);
      offsets.clear();
      for (uint32_t i = 0; i < g.count; ++i) {
        offsets.push_back(points.offset(g.first + i));
      }
      for (uint32_t start = 0; start < g.count; start += max_chunk) {
        uint32_t count = std::min(max_chunk, g.count - start);
        std::vector<char> rec =
            EncodePtsChunk(g.u, g.v, offsets.data() + start, count);
        Result<uint64_t> addr = writer.Append(rec.data(), rec.size());
        if (!addr.ok()) return addr.status();
        pts_entries.emplace_back(g.first + start, addr.value());
      }
    }
    NETCLUS_RETURN_IF_ERROR(writer.CloseCurrent());
  }
  {
    Result<std::unique_ptr<BPlusTree>> tree = BPlusTree::Create(bm, pts_index);
    if (!tree.ok()) return tree.status();
    store->pts_index_ = std::move(tree.value());
    NETCLUS_RETURN_IF_ERROR(store->pts_index_->BulkLoad(pts_entries));
  }
  NETCLUS_RETURN_IF_ERROR(bm->FlushAll());
  return store;
}

Result<std::unique_ptr<NetworkStore>> NetworkStore::Open(
    BufferManager* bm, const NetworkStoreFiles& files) {
  // Sniff the adjacency header straight from the file (bypassing the
  // pool) to learn the format version before deciding whether the four
  // files must be registered with checksum verification.
  uint32_t version;
  {
    if (files.adj_flat->num_pages() == 0) {
      return Status::Corruption("adjacency file: missing header page");
    }
    std::vector<char> header(files.adj_flat->page_size());
    NETCLUS_RETURN_IF_ERROR(files.adj_flat->ReadPage(0, header.data()));
    if (Load<uint64_t>(header.data()) != kAdjMagic) {
      return Status::Corruption("adjacency file: bad magic");
    }
    version = Load<uint32_t>(header.data() + kAdjVersionOffset);
    if (version == 0) version = 1;  // files predating the version field
    if (version > kFormatVersion) {
      return Status::Corruption("adjacency file: format version " +
                                std::to_string(version) +
                                " is newer than this build supports");
    }
  }
  const bool checksummed = version >= kChecksummedSinceVersion;
  FileId adj_flat = bm->RegisterFile(files.adj_flat, checksummed);
  FileId adj_index = bm->RegisterFile(files.adj_index, checksummed);
  FileId pts_flat = bm->RegisterFile(files.pts_flat, checksummed);
  FileId pts_index = bm->RegisterFile(files.pts_index, checksummed);
  auto store =
      std::unique_ptr<NetworkStore>(new NetworkStore(bm, adj_flat, pts_flat));
  store->format_version_ = version;
  {
    // Re-read through the pool so a checksummed header page is verified.
    Result<PageHandle> h = bm->FetchPage(adj_flat, 0);
    if (!h.ok()) return h.status();
    if (Load<uint64_t>(h.value().data()) != kAdjMagic) {
      return Status::Corruption("adjacency file: bad magic");
    }
    store->num_nodes_ = Load<uint32_t>(h.value().data() + 8);
    store->num_points_ = Load<uint32_t>(h.value().data() + 12);
  }
  {
    Result<PageHandle> h = bm->FetchPage(pts_flat, 0);
    if (!h.ok()) return h.status();
    if (Load<uint64_t>(h.value().data()) != kPtsMagic) {
      return Status::Corruption("points file: bad magic");
    }
    uint32_t pts_version =
        Load<uint32_t>(h.value().data() + kPtsVersionOffset);
    if (pts_version == 0) pts_version = 1;
    if (pts_version != version) {
      return Status::Corruption("points file: format version " +
                                std::to_string(pts_version) +
                                " does not match adjacency file version " +
                                std::to_string(version));
    }
  }
  Result<std::unique_ptr<BPlusTree>> ai = BPlusTree::Open(bm, adj_index);
  if (!ai.ok()) return ai.status();
  store->adj_index_ = std::move(ai.value());
  Result<std::unique_ptr<BPlusTree>> pi = BPlusTree::Open(bm, pts_index);
  if (!pi.ok()) return pi.status();
  store->pts_index_ = std::move(pi.value());
  return store;
}

Status NetworkStore::ReadAdjacency(
    NodeId n, const std::function<void(NodeId, double, PointId)>& fn) const {
  uint64_t addr;
  NETCLUS_ASSIGN_OR_RETURN(addr, adj_index_->Get(n));
  PageHandle h;
  NETCLUS_ASSIGN_OR_RETURN(h, bm_->FetchPage(adj_flat_, AddrPage(addr)));
  const uint32_t usable = bm_->usable_page_size(adj_flat_);
  const uint32_t offset = AddrOffset(addr);
  NETCLUS_RETURN_IF_ERROR(ValidateRecordBounds(
      h, usable, bm_->page_size(), offset, 4, "adjacency record"));
  const char* p = h.data() + offset;
  uint32_t degree = Load<uint32_t>(p);
  NETCLUS_RETURN_IF_ERROR(ValidateRecordBounds(
      h, usable, bm_->page_size(), offset,
      4 + static_cast<uint64_t>(degree) * kAdjEntryBytes, "adjacency record"));
  p += 4;
  for (uint32_t i = 0; i < degree; ++i) {
    fn(Load<NodeId>(p), Load<double>(p + 8), Load<PointId>(p + 4));
    p += kAdjEntryBytes;
  }
  return Status::OK();
}

Status NetworkStore::ReadGroup(PointId first, NodeId* u, NodeId* v,
                               std::vector<double>* offsets) const {
  offsets->clear();
  *u = kInvalidNodeId;
  *v = kInvalidNodeId;
  PointId next = first;
  while (true) {
    Result<uint64_t> addr_or = pts_index_->Get(next);
    if (!addr_or.ok()) {
      if (addr_or.status().IsNotFound() && next != first) return Status::OK();
      return addr_or.status();
    }
    uint64_t addr = addr_or.value();
    PageHandle h;
    NETCLUS_ASSIGN_OR_RETURN(h, bm_->FetchPage(pts_flat_, AddrPage(addr)));
    const uint32_t usable = bm_->usable_page_size(pts_flat_);
    const uint32_t offset = AddrOffset(addr);
    NETCLUS_RETURN_IF_ERROR(ValidateRecordBounds(
        h, usable, bm_->page_size(), offset, 12, "point chunk"));
    const char* p = h.data() + offset;
    NodeId cu = Load<NodeId>(p);
    NodeId cv = Load<NodeId>(p + 4);
    uint32_t count = Load<uint32_t>(p + 8);
    NETCLUS_RETURN_IF_ERROR(ValidateRecordBounds(
        h, usable, bm_->page_size(), offset,
        12 + static_cast<uint64_t>(count) * 8, "point chunk"));
    if (count == 0) {
      // A zero-count chunk is never written and would loop forever below.
      return Status::Corruption(
          "point chunk: zero point count: page " +
          std::to_string(h.page_id()) + ", offset " + std::to_string(offset));
    }
    if (next == first) {
      *u = cu;
      *v = cv;
    } else if (cu != *u || cv != *v) {
      return Status::OK();  // next group of a different edge
    }
    for (uint32_t i = 0; i < count; ++i) {
      offsets->push_back(Load<double>(p + 12 + i * 8));
    }
    next += count;
  }
}

Result<PointPos> NetworkStore::ReadPointPosition(PointId p) const {
  Result<std::pair<uint64_t, uint64_t>> entry = pts_index_->FloorEntry(p);
  if (!entry.ok()) return entry.status();
  auto [chunk_first, addr] = entry.value();
  PageHandle h;
  NETCLUS_ASSIGN_OR_RETURN(h, bm_->FetchPage(pts_flat_, AddrPage(addr)));
  const uint32_t usable = bm_->usable_page_size(pts_flat_);
  const uint32_t offset = AddrOffset(addr);
  NETCLUS_RETURN_IF_ERROR(ValidateRecordBounds(
      h, usable, bm_->page_size(), offset, 12, "point chunk"));
  const char* rec = h.data() + offset;
  uint32_t count = Load<uint32_t>(rec + 8);
  NETCLUS_RETURN_IF_ERROR(ValidateRecordBounds(
      h, usable, bm_->page_size(), offset,
      12 + static_cast<uint64_t>(count) * 8, "point chunk"));
  uint64_t idx = p - chunk_first;
  if (idx >= count) {
    return Status::NotFound("point id beyond its floor chunk");
  }
  PointPos pos;
  pos.u = Load<NodeId>(rec);
  pos.v = Load<NodeId>(rec + 4);
  pos.offset = Load<double>(rec + 12 + idx * 8);
  return pos;
}

Status NetworkStore::ScanGroups(
    const std::function<void(NodeId, NodeId, PointId, uint32_t)>& fn) const {
  // Materialize the chunk directory first so the flat-file reads below do
  // not run inside a pinned B+-tree leaf scan.
  std::vector<std::pair<uint64_t, uint64_t>> chunks;
  NETCLUS_RETURN_IF_ERROR(
      pts_index_->Scan(0, UINT64_MAX, [&](uint64_t key, uint64_t addr) {
        chunks.emplace_back(key, addr);
        return true;
      }));
  NodeId cur_u = kInvalidNodeId, cur_v = kInvalidNodeId;
  PointId cur_first = kInvalidPointId;
  uint32_t cur_count = 0;
  for (const auto& [key, addr] : chunks) {
    PageHandle h;
    NETCLUS_ASSIGN_OR_RETURN(h, bm_->FetchPage(pts_flat_, AddrPage(addr)));
    const uint32_t offset = AddrOffset(addr);
    NETCLUS_RETURN_IF_ERROR(ValidateRecordBounds(
        h, bm_->usable_page_size(pts_flat_), bm_->page_size(), offset, 12,
        "point chunk"));
    const char* p = h.data() + offset;
    NodeId u = Load<NodeId>(p);
    NodeId v = Load<NodeId>(p + 4);
    uint32_t count = Load<uint32_t>(p + 8);
    if (u == cur_u && v == cur_v) {
      cur_count += count;  // continuation chunk of the same edge
    } else {
      if (cur_count > 0) fn(cur_u, cur_v, cur_first, cur_count);
      cur_u = u;
      cur_v = v;
      cur_first = static_cast<PointId>(key);
      cur_count = count;
    }
  }
  if (cur_count > 0) fn(cur_u, cur_v, cur_first, cur_count);
  return Status::OK();
}

void DiskNetworkView::Record(const Status& s) const {
  MutexLock lock(&mu_);
  if (first_error_.ok()) first_error_ = s;
}

Status DiskNetworkView::status() const {
  MutexLock lock(&mu_);
  return first_error_;
}

void DiskNetworkView::ClearStatus() {
  MutexLock lock(&mu_);
  first_error_ = Status::OK();
}

void DiskNetworkView::ForEachNeighbor(
    NodeId n, const std::function<void(NodeId, double)>& fn) const {
  Status s = store_->ReadAdjacency(
      n, [&](NodeId m, double w, PointId group) {
        (void)group;
        fn(m, w);
      });
  if (!s.ok()) Record(s);
}

double DiskNetworkView::EdgeWeight(NodeId a, NodeId b) const {
  double weight = -1.0;
  Status s = store_->ReadAdjacency(a, [&](NodeId m, double w, PointId group) {
    (void)group;
    if (m == b) weight = w;
  });
  if (!s.ok()) Record(s);
  return weight;
}

PointPos DiskNetworkView::PointPosition(PointId p) const {
  Result<PointPos> pos = store_->ReadPointPosition(p);
  if (!pos.ok()) {
    Record(pos.status());
    // The fallback must stay inside the node-id range: callers index
    // per-node arrays with it, and PointPos{} holds kInvalidNodeId.
    // Node 0 exists whenever the store holds any point at all.
    return PointPos{0, 0, 0.0};
  }
  return pos.value();
}

void DiskNetworkView::GetEdgePoints(NodeId a, NodeId b,
                                    std::vector<EdgePoint>* out) const {
  out->clear();
  PointId group = kInvalidPointId;
  Status s = store_->ReadAdjacency(a, [&](NodeId m, double w, PointId g) {
    (void)w;
    if (m == b) group = g;
  });
  if (!s.ok()) {
    Record(s);
    return;
  }
  if (group == kInvalidPointId) return;
  NodeId u, v;
  std::vector<double> offsets;
  s = store_->ReadGroup(group, &u, &v, &offsets);
  if (!s.ok()) {
    Record(s);
    return;
  }
  for (size_t i = 0; i < offsets.size(); ++i) {
    out->push_back(EdgePoint{group + static_cast<PointId>(i), offsets[i]});
  }
}

void DiskNetworkView::ForEachPointGroup(
    const std::function<void(NodeId, NodeId, PointId, uint32_t)>& fn) const {
  Status s = store_->ScanGroups(fn);
  if (!s.ok()) Record(s);
}

Result<std::unique_ptr<DiskNetworkBundle>> DiskNetworkBundle::Create(
    const Network& net, const PointSet& points, uint64_t pool_bytes,
    uint32_t page_size, NodePlacement placement, uint64_t seed) {
  auto bundle = std::unique_ptr<DiskNetworkBundle>(new DiskNetworkBundle());
  bundle->adj_flat_ = PagedFile::CreateInMemory(page_size);
  bundle->adj_index_ = PagedFile::CreateInMemory(page_size);
  bundle->pts_flat_ = PagedFile::CreateInMemory(page_size);
  bundle->pts_index_ = PagedFile::CreateInMemory(page_size);
  bundle->bm_ = std::make_unique<BufferManager>(pool_bytes, page_size);
  NetworkStoreFiles files;
  files.adj_flat = bundle->adj_flat_.get();
  files.adj_index = bundle->adj_index_.get();
  files.pts_flat = bundle->pts_flat_.get();
  files.pts_index = bundle->pts_index_.get();
  Result<std::unique_ptr<NetworkStore>> store = NetworkStore::Build(
      net, points, bundle->bm_.get(), files, placement, seed);
  if (!store.ok()) return store.status();
  bundle->store_ = std::move(store.value());
  bundle->view_ = std::make_unique<DiskNetworkView>(bundle->store_.get());
  return bundle;
}

namespace {
Result<std::array<std::unique_ptr<PagedFile>, 4>> OpenBundleFiles(
    const std::string& directory, uint32_t page_size, bool truncate) {
  std::array<std::unique_ptr<PagedFile>, 4> files;
  const char* names[4] = {"adj.dat", "adj.idx", "pts.dat", "pts.idx"};
  for (int i = 0; i < 4; ++i) {
    Result<std::unique_ptr<PagedFile>> f =
        PagedFile::Open(directory + "/" + names[i], page_size, truncate);
    if (!f.ok()) return f.status();
    files[i] = std::move(f.value());
  }
  return files;
}
}  // namespace

Result<std::unique_ptr<DiskNetworkBundle>> DiskNetworkBundle::CreateOnDisk(
    const std::string& directory, const Network& net, const PointSet& points,
    uint64_t pool_bytes, uint32_t page_size, NodePlacement placement,
    uint64_t seed) {
  auto bundle = std::unique_ptr<DiskNetworkBundle>(new DiskNetworkBundle());
  Result<std::array<std::unique_ptr<PagedFile>, 4>> files =
      OpenBundleFiles(directory, page_size, /*truncate=*/true);
  if (!files.ok()) return files.status();
  bundle->adj_flat_ = std::move(files.value()[0]);
  bundle->adj_index_ = std::move(files.value()[1]);
  bundle->pts_flat_ = std::move(files.value()[2]);
  bundle->pts_index_ = std::move(files.value()[3]);
  bundle->bm_ = std::make_unique<BufferManager>(pool_bytes, page_size);
  NetworkStoreFiles store_files;
  store_files.adj_flat = bundle->adj_flat_.get();
  store_files.adj_index = bundle->adj_index_.get();
  store_files.pts_flat = bundle->pts_flat_.get();
  store_files.pts_index = bundle->pts_index_.get();
  Result<std::unique_ptr<NetworkStore>> store = NetworkStore::Build(
      net, points, bundle->bm_.get(), store_files, placement, seed);
  if (!store.ok()) return store.status();
  bundle->store_ = std::move(store.value());
  bundle->view_ = std::make_unique<DiskNetworkView>(bundle->store_.get());
  return bundle;
}

Result<std::unique_ptr<DiskNetworkBundle>> DiskNetworkBundle::OpenOnDisk(
    const std::string& directory, uint64_t pool_bytes, uint32_t page_size) {
  auto bundle = std::unique_ptr<DiskNetworkBundle>(new DiskNetworkBundle());
  Result<std::array<std::unique_ptr<PagedFile>, 4>> files =
      OpenBundleFiles(directory, page_size, /*truncate=*/false);
  if (!files.ok()) return files.status();
  bundle->adj_flat_ = std::move(files.value()[0]);
  bundle->adj_index_ = std::move(files.value()[1]);
  bundle->pts_flat_ = std::move(files.value()[2]);
  bundle->pts_index_ = std::move(files.value()[3]);
  bundle->bm_ = std::make_unique<BufferManager>(pool_bytes, page_size);
  NetworkStoreFiles store_files;
  store_files.adj_flat = bundle->adj_flat_.get();
  store_files.adj_index = bundle->adj_index_.get();
  store_files.pts_flat = bundle->pts_flat_.get();
  store_files.pts_index = bundle->pts_index_.get();
  Result<std::unique_ptr<NetworkStore>> store =
      NetworkStore::Open(bundle->bm_.get(), store_files);
  if (!store.ok()) return store.status();
  bundle->store_ = std::move(store.value());
  bundle->view_ = std::make_unique<DiskNetworkView>(bundle->store_.get());
  return bundle;
}

uint64_t DiskNetworkBundle::TotalPhysicalReads() const {
  return adj_flat_->stats().page_reads + adj_index_->stats().page_reads +
         pts_flat_->stats().page_reads + pts_index_->stats().page_reads;
}

DiskNetworkBundle::IoBreakdown DiskNetworkBundle::GetIoBreakdown() const {
  return IoBreakdown{adj_flat_->stats(), adj_index_->stats(),
                     pts_flat_->stats(), pts_index_->stats()};
}

void DiskNetworkBundle::ResetIoStats() {
  adj_flat_->ResetStats();
  adj_index_->ResetStats();
  pts_flat_->ResetStats();
  pts_index_->ResetStats();
  bm_->ResetStats();
}

}  // namespace netclus
