// Fundamental identifiers and value types for spatial networks.
#ifndef NETCLUS_GRAPH_TYPES_H_
#define NETCLUS_GRAPH_TYPES_H_

#include <cstdint>
#include <utility>

namespace netclus {

/// Identifier of a network node (vertex).
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = UINT32_MAX;

/// Identifier of an object (point) lying on a network edge. Point ids are
/// assigned so that points on the same edge are consecutive and ordered by
/// ascending offset (paper Section 4.1). A PointId is DENSE and
/// EPOCH-RELATIVE: rebuilding a PointSet after mutations renumbers it.
/// Anything that crosses an epoch boundary (client APIs, the wire, the
/// distance cache) must use ObjectId instead.
using PointId = uint32_t;
inline constexpr PointId kInvalidPointId = UINT32_MAX;

/// Durable identity of an object (point) or edge, allocated monotonically
/// by the owner of the live world (the query server) and never reused.
/// An ObjectId names the same physical object across every epoch and
/// across restarts (it is persisted in WAL checkpoints); the per-epoch
/// IdentityMap translates it to that epoch's dense PointId.
using ObjectId = uint64_t;
inline constexpr ObjectId kInvalidObjectId = UINT64_MAX;

/// Canonical 64-bit key of the undirected edge {a, b} (smaller id first).
inline uint64_t EdgeKeyOf(NodeId a, NodeId b) {
  NodeId u = a < b ? a : b;
  NodeId v = a < b ? b : a;
  return (static_cast<uint64_t>(u) << 32) | v;
}

inline NodeId EdgeKeyU(uint64_t key) { return static_cast<NodeId>(key >> 32); }
inline NodeId EdgeKeyV(uint64_t key) {
  return static_cast<NodeId>(key & 0xFFFFFFFFULL);
}

/// Position of a point on the network: the triplet <u, v, offset> of
/// Definition 1, with u < v and offset measured from u along edge (u, v).
struct PointPos {
  NodeId u = kInvalidNodeId;
  NodeId v = kInvalidNodeId;
  double offset = 0.0;
};

/// A point on a specific edge, as returned by edge-local queries: its id
/// and its offset from the canonical (smaller-id) endpoint.
struct EdgePoint {
  PointId id = kInvalidPointId;
  double offset = 0.0;
};

/// An undirected weighted edge (canonical orientation u < v).
struct Edge {
  NodeId u = kInvalidNodeId;
  NodeId v = kInvalidNodeId;
  double weight = 0.0;
};

}  // namespace netclus

#endif  // NETCLUS_GRAPH_TYPES_H_
