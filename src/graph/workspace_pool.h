// WorkspacePool: recycled TraversalWorkspace instances for concurrent
// Dijkstra traversals.
//
// A TraversalWorkspace (see graph/dijkstra.h) is O(|V|) to construct;
// algorithms that issue thousands of bounded expansions — DBSCAN's
// per-point range queries above all — amortize that cost by leasing one
// workspace per worker thread from this pool instead of allocating per
// call. Leases return their workspace automatically, so a pool outlives
// any number of ParallelFor rounds without growing past the peak
// concurrency actually used.
#ifndef NETCLUS_GRAPH_WORKSPACE_POOL_H_
#define NETCLUS_GRAPH_WORKSPACE_POOL_H_

#include <memory>
#include <vector>

#include "common/mutex.h"
#include "graph/dijkstra.h"
#include "graph/types.h"

namespace netclus {

/// \brief Thread-safe pool of TraversalWorkspace instances for one
/// network size.
class WorkspacePool {
 public:
  /// All leased workspaces are sized for `num_nodes` nodes.
  explicit WorkspacePool(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// \brief RAII handle to a leased workspace; returns it on destruction.
  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<TraversalWorkspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->Release(std::move(ws_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ws_(std::move(other.ws_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    TraversalWorkspace* get() const { return ws_.get(); }
    TraversalWorkspace* operator->() const { return ws_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<TraversalWorkspace> ws_;
  };

  /// Leases a workspace, reusing a returned one when available.
  Lease Acquire() NETCLUS_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (!free_.empty()) {
        std::unique_ptr<TraversalWorkspace> ws = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(ws));
      }
    }
    return Lease(this, std::make_unique<TraversalWorkspace>(num_nodes_));
  }

  /// Number of idle workspaces currently held (for tests).
  size_t idle_count() const NETCLUS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return free_.size();
  }

 private:
  void Release(std::unique_ptr<TraversalWorkspace> ws) NETCLUS_EXCLUDES(mu_) {
    if (ws == nullptr) return;
    MutexLock lock(&mu_);
    free_.push_back(std::move(ws));
  }

  const NodeId num_nodes_;
  mutable Mutex mu_{lock_rank::kWorkspacePool, "WorkspacePool::mu_"};
  std::vector<std::unique_ptr<TraversalWorkspace>> free_
      NETCLUS_GUARDED_BY(mu_);
};

}  // namespace netclus

#endif  // NETCLUS_GRAPH_WORKSPACE_POOL_H_
