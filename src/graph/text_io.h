// Plain-text serialization of networks and point sets.
//
// Format (whitespace-separated, '#' comments):
//   network <num_nodes>
//   edge <a> <b> <weight>      (one line per undirected edge)
//   points
//   point <a> <b> <offset_from_min(a,b)> <label>
//
// The format lets users bring their own road networks (e.g. converted
// from the datasets the paper used) and is what the netclus_cli example
// consumes.
#ifndef NETCLUS_GRAPH_TEXT_IO_H_
#define NETCLUS_GRAPH_TEXT_IO_H_

#include <iosfwd>
#include <string>
#include <utility>

#include "common/status.h"
#include "graph/network.h"

namespace netclus {

/// Writes `net` (and `points`, if non-null) to `out`.
Status WriteNetworkText(const Network& net, const PointSet* points,
                        std::ostream* out);

/// Parses a network and (possibly empty) point set from `in`.
Result<std::pair<Network, PointSet>> ReadNetworkText(std::istream* in);

/// File-path convenience wrappers.
Status SaveNetworkFile(const std::string& path, const Network& net,
                       const PointSet* points);
Result<std::pair<Network, PointSet>> LoadNetworkFile(const std::string& path);

}  // namespace netclus

#endif  // NETCLUS_GRAPH_TEXT_IO_H_
