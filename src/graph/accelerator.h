// Read-side acceleration interface consumed by the graph-layer query
// primitives and the core algorithms.
//
// The graph layer cannot depend on src/index (layering runs the other
// way), so queries accept this abstract view of "whatever acceleration
// structures exist". The default implementations are the vacuous bounds
// — every query degrades gracefully to the exact unaccelerated path —
// and src/index/distance_index.h provides the real implementation.
//
// Correctness contract (audited by core/validate.cc): for any points p,
// q with exact network distance d(p, q),
//   LowerBound(p, q)  <=  d(p, q)  <=  UpperBound(p, q)
// and a LookupDistance hit returns exactly a value previously passed to
// StoreDistance for that pair. NearestObjectFloor(n, exclude) must
// never exceed the true distance from node n to the nearest point whose
// id differs from `exclude`. RangeExpansionBound(center, eps) must be
// >= the distance from `center` to the farthest point within eps of it
// (it may be > eps-tight; eps itself is always a valid answer).
#ifndef NETCLUS_GRAPH_ACCELERATOR_H_
#define NETCLUS_GRAPH_ACCELERATOR_H_

#include "graph/dijkstra.h"
#include "graph/types.h"

namespace netclus {

/// \brief Abstract acceleration oracle for point-pair distance queries.
///
/// All methods must be safe to call concurrently from many threads.
class DistanceAccelerator {
 public:
  virtual ~DistanceAccelerator() = default;

  /// A value <= the exact network distance d(a, b). kInfDist is a valid
  /// return and proves a and b are disconnected.
  virtual double LowerBound(PointId /*a*/, PointId /*b*/) const {
    return 0.0;
  }

  /// A value >= the exact network distance d(a, b).
  virtual double UpperBound(PointId /*a*/, PointId /*b*/) const {
    return kInfDist;
  }

  /// If the exact distance d(a, b) is cached, writes it to `*out` and
  /// returns true.
  virtual bool LookupDistance(PointId /*a*/, PointId /*b*/,
                              double* /*out*/) const {
    return false;
  }

  /// Offers the exact distance d(a, b) for caching.
  virtual void StoreDistance(PointId /*a*/, PointId /*b*/,
                             double /*dist*/) const {}

  /// A value <= the distance from node n to the nearest point whose id
  /// is not `exclude` (pass kInvalidPointId to exclude nothing). 0 when
  /// no precompute is available.
  virtual double NearestObjectFloor(NodeId /*n*/,
                                    PointId /*exclude*/) const {
    return 0.0;
  }

  /// An expansion radius sufficient for RangeQuery(center, eps) to
  /// reach every point within eps of `center`. Must be in [0, eps];
  /// returning eps means "no tightening".
  virtual double RangeExpansionBound(PointId /*center*/, double eps) const {
    return eps;
  }
};

}  // namespace netclus

#endif  // NETCLUS_GRAPH_ACCELERATOR_H_
