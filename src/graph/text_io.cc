#include "graph/text_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace netclus {

Status WriteNetworkText(const Network& net, const PointSet* points,
                        std::ostream* out) {
  *out << "# netclus network file\n";
  *out << "network " << net.num_nodes() << "\n";
  *out << std::setprecision(17);
  for (const Edge& e : net.Edges()) {
    *out << "edge " << e.u << " " << e.v << " " << e.weight << "\n";
  }
  if (points != nullptr) {
    *out << "points\n";
    for (PointId p = 0; p < points->size(); ++p) {
      PointPos pos = points->position(p);
      *out << "point " << pos.u << " " << pos.v << " " << pos.offset << " "
           << points->label(p) << "\n";
    }
  }
  if (!out->good()) return Status::IOError("write failed");
  return Status::OK();
}

Result<std::pair<Network, PointSet>> ReadNetworkText(std::istream* in) {
  Network net(0);
  PointSetBuilder builder;
  bool have_header = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    auto parse_error = [&](const std::string& what) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (kind == "network") {
      if (have_header) return parse_error("duplicate network header");
      NodeId n;
      if (!(ls >> n)) return parse_error("expected node count");
      net = Network(n);
      have_header = true;
    } else if (kind == "edge") {
      if (!have_header) return parse_error("edge before network header");
      NodeId a, b;
      double w;
      if (!(ls >> a >> b >> w)) return parse_error("malformed edge");
      Status s = net.AddEdge(a, b, w);
      if (!s.ok()) return parse_error(s.ToString());
    } else if (kind == "points") {
      if (!have_header) return parse_error("points before network header");
    } else if (kind == "point") {
      if (!have_header) return parse_error("point before network header");
      NodeId a, b;
      double off;
      int label;
      if (!(ls >> a >> b >> off >> label)) {
        return parse_error("malformed point");
      }
      builder.Add(a, b, off, label);
    } else {
      return parse_error("unknown record '" + kind + "'");
    }
  }
  if (!have_header) return Status::Corruption("missing network header");
  Result<PointSet> points = std::move(builder).Build(net);
  if (!points.ok()) return points.status();
  return std::make_pair(std::move(net), std::move(points.value()));
}

Status SaveNetworkFile(const std::string& path, const Network& net,
                       const PointSet* points) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteNetworkText(net, points, &out);
}

Result<std::pair<Network, PointSet>> LoadNetworkFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadNetworkText(&in);
}

}  // namespace netclus
