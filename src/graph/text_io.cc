#include "graph/text_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace netclus {
namespace {

// Reads one whitespace-delimited token as a double. Unlike operator>>,
// strtod accepts "nan"/"inf" spellings, so those reach the semantic
// validation below instead of being misreported as malformed syntax.
bool ParseDouble(std::istream& ls, double* out) {
  std::string tok;
  if (!(ls >> tok)) return false;
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || tok.empty()) return false;
  *out = v;
  return true;
}

}  // namespace

Status WriteNetworkText(const Network& net, const PointSet* points,
                        std::ostream* out) {
  *out << "# netclus network file\n";
  *out << "network " << net.num_nodes() << "\n";
  *out << std::setprecision(17);
  for (const Edge& e : net.Edges()) {
    *out << "edge " << e.u << " " << e.v << " " << e.weight << "\n";
  }
  if (points != nullptr) {
    *out << "points\n";
    for (PointId p = 0; p < points->size(); ++p) {
      PointPos pos = points->position(p);
      *out << "point " << pos.u << " " << pos.v << " " << pos.offset << " "
           << points->label(p) << "\n";
    }
  }
  if (!out->good()) return Status::IOError("write failed");
  return Status::OK();
}

Result<std::pair<Network, PointSet>> ReadNetworkText(std::istream* in) {
  Network net(0);
  PointSetBuilder builder;
  bool have_header = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    // Corruption = the file is not in the format at all (malformed
    // syntax); InvalidArgument = well-formed but semantically invalid
    // data (bad weights, offsets, duplicate edges). Both carry the line.
    auto parse_error = [&](const std::string& what) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                what);
    };
    auto invalid = [&](const std::string& what) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + what);
    };
    if (kind == "network") {
      if (have_header) return parse_error("duplicate network header");
      NodeId n;
      if (!(ls >> n)) return parse_error("expected node count");
      net = Network(n);
      have_header = true;
    } else if (kind == "edge") {
      if (!have_header) return parse_error("edge before network header");
      NodeId a, b;
      double w;
      if (!(ls >> a >> b) || !ParseDouble(ls, &w)) {
        return parse_error("malformed edge");
      }
      if (std::isnan(w)) return invalid("edge weight is NaN");
      if (std::isinf(w)) return invalid("edge weight is infinite");
      if (w <= 0.0) return invalid("edge weight must be positive");
      // AddEdge re-validates and also rejects self loops, duplicate
      // edges and out-of-range endpoints.
      Status s = net.AddEdge(a, b, w);
      if (!s.ok()) return invalid(s.message());
    } else if (kind == "points") {
      if (!have_header) return parse_error("points before network header");
    } else if (kind == "point") {
      if (!have_header) return parse_error("point before network header");
      NodeId a, b;
      double off;
      int label;
      if (!(ls >> a >> b) || !ParseDouble(ls, &off) || !(ls >> label)) {
        return parse_error("malformed point");
      }
      if (!std::isfinite(off)) return invalid("point offset is not finite");
      if (off < 0.0) return invalid("point offset must be non-negative");
      if (a == b) return invalid("point on a self loop");
      if (a >= net.num_nodes() || b >= net.num_nodes()) {
        return invalid("point endpoint out of range");
      }
      double w = net.EdgeWeight(a, b);
      if (w < 0.0) return invalid("point on a nonexistent edge");
      if (off > w) return invalid("point offset exceeds the edge weight");
      builder.Add(a, b, off, label);
    } else {
      return parse_error("unknown record '" + kind + "'");
    }
  }
  if (!have_header) return Status::Corruption("missing network header");
  Result<PointSet> points = std::move(builder).Build(net);
  if (!points.ok()) return points.status();
  return std::make_pair(std::move(net), std::move(points.value()));
}

Status SaveNetworkFile(const std::string& path, const Network& net,
                       const PointSet* points) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteNetworkText(net, points, &out);
}

Result<std::pair<Network, PointSet>> LoadNetworkFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadNetworkText(&in);
}

}  // namespace netclus
