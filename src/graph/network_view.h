// NetworkView: the access interface the clustering algorithms run against.
//
// Two implementations exist: InMemoryNetworkView (adjacency lists in RAM)
// and DiskNetworkView (the paper's Section 4.1 storage architecture: flat
// files + sparse B+-trees behind an LRU buffer). Algorithms are written
// once against this interface, so disk-backed and in-memory runs execute
// identical logic and must produce identical clusterings.
#ifndef NETCLUS_GRAPH_NETWORK_VIEW_H_
#define NETCLUS_GRAPH_NETWORK_VIEW_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace netclus {

class FrozenGraph;

/// \brief Read-only access to a network and the points lying on it.
class NetworkView {
 public:
  virtual ~NetworkView() = default;

  /// Number of network nodes |V|.
  virtual NodeId num_nodes() const = 0;

  /// Number of objects N lying on edges.
  virtual PointId num_points() const = 0;

  /// Invokes `fn(neighbor, weight)` for every edge incident to `n`.
  virtual void ForEachNeighbor(
      NodeId n, const std::function<void(NodeId, double)>& fn) const = 0;

  /// Weight of edge {a, b}; negative when the edge does not exist.
  virtual double EdgeWeight(NodeId a, NodeId b) const = 0;

  /// Position (Definition 1 triplet) of point `p`.
  virtual PointPos PointPosition(PointId p) const = 0;

  /// Fills `out` with the points on edge {a, b}, ordered by ascending
  /// offset from the smaller-id endpoint. `out` is cleared first.
  virtual void GetEdgePoints(NodeId a, NodeId b,
                             std::vector<EdgePoint>* out) const = 0;

  /// Sequentially scans all point groups (edges holding at least one
  /// point) in point-id order: `fn(u, v, first_point, count)` with u < v.
  /// This is the "single scan on the points file" used by the Single-Link
  /// initialization and the k-medoids assignment phase.
  virtual void ForEachPointGroup(
      const std::function<void(NodeId, NodeId, PointId, uint32_t)>& fn)
      const = 0;

  /// Materializes an immutable CSR snapshot of this view's adjacency
  /// structure (see graph/frozen_graph.h). Neighbor order matches this
  /// view's iteration order, so traversals over the snapshot are
  /// bit-identical to traversals over the view. Works for any backend;
  /// a disk-backed view pages its whole adjacency file once. Fails if
  /// the view has recorded (or records during the scan) an I/O error.
  /// Defined in frozen_graph.cc; callers include graph/frozen_graph.h.
  Result<FrozenGraph> Freeze() const;

  /// First I/O error the view has swallowed, or OK. The accessor methods
  /// above cannot report failures inline (algorithms consume them as pure
  /// data); fallible backends (DiskNetworkView) record the first error
  /// here instead and return neutral values. RunClustering checks this
  /// before and after every run, so storage failures surface as a non-OK
  /// Status at the API boundary rather than as silently wrong clusters.
  virtual Status status() const { return Status::OK(); }
};

}  // namespace netclus

#endif  // NETCLUS_GRAPH_NETWORK_VIEW_H_
