// Per-algorithm invariant validators: independent re-verification of the
// delicate traversal invariants each clustering algorithm rests on.
//
// Every validator re-derives the invariant from primitives the algorithm
// under test does NOT use (point-to-point Dijkstra, ε-range queries,
// union-find replay), in the spirit of validating optimized k-medoids
// variants against the naive formulation. On small inputs the checks are
// exact oracles; at scale they fall back to structural checks plus a
// deterministic sample of points, bounded by ValidateLimits.
//
// Validators return OK or a Status::Internal naming the violated
// invariant and the offending point/merge. They are wired into
// RunClustering behind ClusterSpec::validate and forced on for every run
// in builds configured with -DNETCLUS_VALIDATE=ON, so perf PRs can
// refactor the hot traversals and let the full test suite re-prove the
// clustering semantics.
#ifndef NETCLUS_CORE_VALIDATE_H_
#define NETCLUS_CORE_VALIDATE_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "core/clustering.h"
#include "core/dbscan.h"
#include "core/dendrogram.h"
#include "core/eps_link.h"
#include "core/single_link.h"
#include "graph/accelerator.h"
#include "graph/dijkstra.h"
#include "graph/network_view.h"

namespace netclus {

/// Cost bounds for the exact-oracle parts of validation.
struct ValidateLimits {
  /// Up to this many points the validators run their full independent
  /// oracle (O(N·k) Dijkstra for k-medoids, one ε-range query per point
  /// for the density validators).
  PointId exact_max_points = 512;
  /// Above that, this many points are spot-checked instead, taken at a
  /// fixed stride so the sample is deterministic.
  PointId sample_points = 256;
};

/// Structural sanity of any flat clustering against its view: assignment
/// has one entry per point, ids are kNoise or in [0, num_clusters).
Status ValidateClusteringShape(const NetworkView& view, const Clustering& c);

/// k-medoids (paper Fig. 4/5 + Eq. 1): medoid ids valid and distinct,
/// and every point is tagged with its true nearest medoid — re-verified
/// against an independent point-to-point Dijkstra per (point, medoid)
/// pair in exact mode (which also re-derives the evaluation function R
/// and compares it to `cost`), on a sample of points at scale.
Status ValidateKMedoids(const NetworkView& view, const Clustering& c,
                        const std::vector<PointId>& medoids, double cost,
                        const ValidateLimits& limits = {});

/// ε-Link: clusters are exactly the connected components of the "pairs
/// within ε" graph with components smaller than min_sup demoted to
/// noise. Exact mode rebuilds the components with one independent
/// ε-range query per point and demands a bijection between components
/// and cluster ids — which is simultaneously ε-connectivity (no cluster
/// spans an ε-gap) and ε-separation (no two clusters are ε-linked).
Status ValidateEpsLink(const NetworkView& view, const Clustering& c,
                       const EpsLinkOptions& options,
                       const ValidateLimits& limits = {});

/// Network DBSCAN: core flags match neighborhood sizes, core points are
/// never noise, ε-close core points share a cluster, border points join
/// a core neighbor's cluster, and noise points have no core neighbor.
Status ValidateDbscan(const NetworkView& view, const Clustering& c,
                      const DbscanOptions& options,
                      const ValidateLimits& limits = {});

/// Single-Link dendrogram: merge endpoints valid, every merge joins two
/// previously distinct clusters (union-find replay), and the merge
/// distance sequence is non-decreasing above the δ pre-merge threshold
/// and bounded by stop_distance.
Status ValidateDendrogram(const Dendrogram& dendrogram,
                          const SingleLinkOptions& options);

/// Heap-property audit of reusable Dijkstra heap storage (the min-heap
/// layout push_heap/pop_heap maintain), plus NaN screening.
Status ValidateHeap(const std::vector<DijkstraHeapEntry>& heap);

/// Settle-order audit: node ids in range, each settled at most once,
/// distances finite, non-negative and non-decreasing (the Dijkstra
/// settle-order invariant).
Status ValidateSettleLog(
    const std::vector<std::pair<NodeId, double>>& settled, NodeId num_nodes);

/// Full TraversalWorkspace audit: scratch sized for the network, heap
/// and settle log pass the audits above.
Status ValidateWorkspace(const TraversalWorkspace& ws, NodeId num_nodes);

/// FrozenGraph snapshot audit against its source view: node count, every
/// node's neighbor sequence (ids AND weights, in the view's iteration
/// order — the order bit-identical trajectories rest on), and every
/// point-bearing edge's point-range handles must match the live view
/// exactly. O(V + E + point groups). Wired into RunClustering's
/// validate block so -DNETCLUS_VALIDATE=ON builds re-prove the snapshot
/// on every run.
Status ValidateFrozenGraph(const NetworkView& view, const FrozenGraph& frozen);

/// Distance-accelerator (index) consistency audit, against independent
/// exact traversals:
///  - On a deterministic sample of point pairs, LowerBound and
///    UpperBound must sandwich the exact point-to-point Dijkstra
///    distance, and a cache hit must equal it.
///  - NearestObjectFloor(n, exclude) must not exceed the exact
///    distance from n to its nearest (non-excluded) object, checked for
///    every node against a multi-source oracle (all objects, and all
///    objects minus one for a sample of excluded probes).
///  - RangeExpansionBound(p, eps) must stay within [0, eps] and cover
///    the farthest point an unaccelerated eps-range query finds.
Status ValidateDistanceAccelerator(const NetworkView& view,
                                   const DistanceAccelerator& accel,
                                   const ValidateLimits& limits = {});

}  // namespace netclus

#endif  // NETCLUS_CORE_VALIDATE_H_
