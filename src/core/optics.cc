#include "core/optics.h"

#include <algorithm>
#include <queue>

#include "graph/dijkstra.h"
#include "graph/network_distance.h"

namespace netclus {

namespace {
struct SeedEntry {
  double reach;
  PointId point;
  bool operator>(const SeedEntry& other) const { return reach > other.reach; }
};
using SeedHeap =
    std::priority_queue<SeedEntry, std::vector<SeedEntry>, std::greater<>>;

// min_pts-th smallest distance within the eps-neighborhood (the point
// itself is a member at distance 0), or kInfDist when not core.
double CoreDistance(std::vector<RangeResult>* neighborhood,
                    uint32_t min_pts) {
  if (neighborhood->size() < min_pts) return kInfDist;
  std::nth_element(neighborhood->begin(),
                   neighborhood->begin() + (min_pts - 1), neighborhood->end(),
                   [](const RangeResult& a, const RangeResult& b) {
                     return a.dist < b.dist;
                   });
  return (*neighborhood)[min_pts - 1].dist;
}
}  // namespace

namespace {

Result<OpticsResult> OpticsOrderImpl(const NetworkView& view,
                                     const FrozenGraph* frozen,
                                     const OpticsOptions& options) {
  if (!(options.eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (options.min_pts == 0) {
    return Status::InvalidArgument("min_pts must be positive");
  }
  const PointId n = view.num_points();
  OpticsResult res;
  res.order.reserve(n);
  res.reachability.reserve(n);
  res.core_distance.assign(n, kInfDist);

  std::vector<bool> processed(n, false);
  std::vector<double> reach_best(n, kInfDist);
  TraversalWorkspace ws(view.num_nodes());
  std::vector<RangeResult> neighborhood;

  // Emits `p`, computes its core distance, and relaxes its unprocessed
  // neighbors into the seed heap.
  auto process = [&](PointId p, double reachability, SeedHeap* seeds) {
    processed[p] = true;
    res.order.push_back(p);
    res.reachability.push_back(reachability);
    if (frozen != nullptr) {
      RangeQuery(view, *frozen, p, options.eps, &ws, &neighborhood);
    } else {
      RangeQuery(view, p, options.eps, &ws, &neighborhood);
    }
    double cd = CoreDistance(&neighborhood, options.min_pts);
    res.core_distance[p] = cd;
    if (cd == kInfDist) return;
    for (const RangeResult& r : neighborhood) {
      if (processed[r.id]) continue;
      double new_reach = std::max(cd, r.dist);
      if (new_reach < reach_best[r.id]) {
        reach_best[r.id] = new_reach;
        seeds->push(SeedEntry{new_reach, r.id});
      }
    }
  };

  for (PointId p0 = 0; p0 < n; ++p0) {
    if (processed[p0]) continue;
    SeedHeap seeds;
    process(p0, kInfDist, &seeds);
    while (!seeds.empty()) {
      auto [reach, q] = seeds.top();
      seeds.pop();
      if (processed[q] || reach > reach_best[q]) continue;  // stale
      process(q, reach, &seeds);
    }
  }
  return res;
}

}  // namespace

Result<OpticsResult> OpticsOrder(const NetworkView& view,
                                 const OpticsOptions& options) {
  return OpticsOrderImpl(view, nullptr, options);
}

Result<OpticsResult> OpticsOrder(const NetworkView& view,
                                 const OpticsOptions& options,
                                 const FrozenGraph* frozen) {
  return OpticsOrderImpl(view, frozen, options);
}

Clustering ExtractDbscanClustering(const OpticsResult& optics,
                                   double eps_prime, uint32_t min_pts) {
  (void)min_pts;  // baked into the ordering's core distances
  Clustering out;
  out.assignment.assign(optics.order.size(), kNoise);
  int current = kNoise;
  int next_id = 0;
  for (size_t i = 0; i < optics.order.size(); ++i) {
    PointId p = optics.order[i];
    if (optics.reachability[i] > eps_prime) {
      if (optics.core_distance[p] <= eps_prime) {
        current = next_id++;
        out.assignment[p] = current;
      } else {
        current = kNoise;  // noise (may still be claimed as border below)
      }
    } else if (current != kNoise) {
      out.assignment[p] = current;
    }
  }
  out.num_clusters = next_id;
  return out;
}

}  // namespace netclus
