#include "core/union_find.h"

namespace netclus {

UnionFind::UnionFind(uint32_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
}

uint32_t UnionFind::Find(uint32_t x) {
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a), rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) {
    uint32_t tmp = ra;
    ra = rb;
    rb = tmp;
  }
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

}  // namespace netclus
