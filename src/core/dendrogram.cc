#include "core/dendrogram.h"

#include <algorithm>
#include <cstddef>

#include "core/union_find.h"

namespace netclus {

namespace {
Clustering LabelComponents(UnionFind* uf, PointId n, uint32_t min_size) {
  Clustering out;
  out.assignment.resize(n);
  for (PointId p = 0; p < n; ++p) {
    out.assignment[p] = static_cast<int>(uf->Find(p));
  }
  NormalizeClustering(&out, min_size);
  return out;
}
}  // namespace

Clustering Dendrogram::CutAtDistance(double threshold,
                                     uint32_t min_size) const {
  UnionFind uf(num_points_);
  for (const Merge& m : merges_) {
    if (m.distance <= threshold) uf.Union(m.a, m.b);
  }
  return LabelComponents(&uf, num_points_, min_size);
}

Clustering Dendrogram::CutAtCount(uint32_t k, uint32_t min_size) const {
  std::vector<Merge> sorted = merges_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Merge& a, const Merge& b) {
                     return a.distance < b.distance;
                   });
  UnionFind uf(num_points_);
  for (const Merge& m : sorted) {
    if (uf.num_sets() <= k) break;
    uf.Union(m.a, m.b);
  }
  return LabelComponents(&uf, num_points_, min_size);
}

Clustering Dendrogram::CutAtLargeClusterCount(uint32_t k,
                                              uint32_t min_size) const {
  std::vector<Merge> sorted = merges_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Merge& a, const Merge& b) {
                     return a.distance < b.distance;
                   });
  auto is_large = [&](uint32_t size) { return size >= min_size; };
  // The large-cluster count grows while small clusters assemble and
  // shrinks when large ones merge, so it is not monotone. Pass 1 records
  // the count after each prefix of merges ("state" s_j = first j merges
  // applied); the cut is the LATEST state whose count equals
  // min(k, maximum count ever reached) — i.e. the most-assembled level
  // with (at most) k large clusters.
  std::vector<uint32_t> count_at;  // count_at[j] = large clusters in s_j
  {
    UnionFind uf(num_points_);
    uint32_t large = min_size <= 1 ? num_points_ : 0;
    count_at.push_back(large);
    for (const Merge& m : sorted) {
      uint32_t ra = uf.Find(m.a), rb = uf.Find(m.b);
      if (ra != rb) {
        uint32_t sa = uf.SizeOf(ra), sb = uf.SizeOf(rb);
        uf.Union(ra, rb);
        large += (is_large(sa + sb) ? 1 : 0) - (is_large(sa) ? 1 : 0) -
                 (is_large(sb) ? 1 : 0);
      }
      count_at.push_back(large);
    }
  }
  uint32_t target = std::min<uint32_t>(
      k, *std::max_element(count_at.begin(), count_at.end()));
  size_t apply = 0;
  for (size_t j = 0; j < count_at.size(); ++j) {
    if (count_at[j] == target) apply = j;
  }
  UnionFind uf(num_points_);
  for (size_t i = 0; i < apply; ++i) {
    uf.Union(sorted[i].a, sorted[i].b);
  }
  return LabelComponents(&uf, num_points_, min_size);
}

}  // namespace netclus
