#include "core/parameter_selection.h"

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "graph/network_distance.h"

namespace netclus {

namespace {
double Quantile(std::vector<double>* values, double q) {
  std::sort(values->begin(), values->end());
  double pos = std::clamp(q, 0.0, 1.0) * (values->size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values->size() - 1);
  double frac = pos - static_cast<double>(lo);
  return (*values)[lo] * (1.0 - frac) + (*values)[hi] * frac;
}
}  // namespace

Result<double> SuggestEps(const NetworkView& view,
                          const EpsSuggestionOptions& options) {
  if (view.num_points() < 2) {
    return Status::InvalidArgument("need at least two points");
  }
  if (options.sample_size == 0 || options.quantile < 0.0 ||
      options.quantile > 1.0 || options.slack <= 0.0) {
    return Status::InvalidArgument("bad eps suggestion options");
  }
  // Initial search radius: the typical same-edge gap, or 1.0 if the
  // points never share edges.
  Result<double> gap = SuggestDelta(view, 0.5);
  double radius0 = gap.ok() ? std::max(gap.value(), 1e-9) : 1.0;

  Rng rng(options.seed);
  NodeScratch scratch(view.num_nodes());
  std::vector<RangeResult> found;
  std::vector<double> nn;
  uint32_t samples = std::min<uint32_t>(options.sample_size,
                                        view.num_points());
  for (uint32_t s = 0; s < samples; ++s) {
    PointId p = static_cast<PointId>(rng.NextBounded(view.num_points()));
    // Expanding range search: double the radius until a neighbor shows up.
    double radius = radius0;
    double best = kInfDist;
    for (int attempt = 0; attempt < 24; ++attempt) {
      RangeQuery(view, p, radius, &scratch, &found);
      for (const RangeResult& r : found) {
        if (r.id != p && r.dist < best) best = r.dist;
      }
      if (best < kInfDist) break;
      radius *= 2.0;
    }
    if (best < kInfDist) nn.push_back(best);
  }
  if (nn.empty()) {
    return Status::NotFound("no neighbor found within the search horizon");
  }
  return options.slack * Quantile(&nn, options.quantile);
}

Result<double> SuggestDelta(const NetworkView& view, double quantile) {
  if (quantile < 0.0 || quantile > 1.0) {
    return Status::InvalidArgument("quantile must be in [0, 1]");
  }
  std::vector<double> gaps;
  std::vector<EdgePoint> pts;
  view.ForEachPointGroup(
      [&](NodeId u, NodeId v, PointId first, uint32_t count) {
        (void)first;
        if (count < 2) return;
        view.GetEdgePoints(u, v, &pts);
        for (size_t i = 1; i < pts.size(); ++i) {
          gaps.push_back(pts[i].offset - pts[i - 1].offset);
        }
      });
  if (gaps.empty()) {
    return Status::NotFound("no edge holds two points");
  }
  return Quantile(&gaps, quantile);
}

}  // namespace netclus
