#include "core/validate.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/union_find.h"
#include "graph/frozen_graph.h"
#include "graph/network_distance.h"

namespace netclus {

namespace {

Status Violation(const char* algorithm, std::string msg) {
  return Status::Internal(std::string("validation: ") + algorithm + ": " +
                          std::move(msg));
}

// Relative slack for comparing distances derived through different
// summation orders (the validators' independent Dijkstra vs. the
// algorithm's traversal).
double Tolerance(double scale) {
  return 1e-9 * std::max(1.0, std::abs(scale));
}

// Stride that visits ~limits.sample_points points deterministically.
PointId SampleStride(PointId n, const ValidateLimits& limits) {
  PointId target = std::max<PointId>(1, limits.sample_points);
  return std::max<PointId>(1, n / target);
}

// Distinct cluster ids must be exactly {0, ..., num_clusters-1}; holds
// for every algorithm that runs NormalizeClustering (ε-Link, DBSCAN,
// dendrogram cuts). k-medoids may leave clusters empty, so this is not
// part of ValidateClusteringShape.
Status CheckContiguousIds(const char* algorithm, const Clustering& c) {
  std::unordered_set<int> seen;
  for (int id : c.assignment) {
    if (id != kNoise) seen.insert(id);
  }
  if (static_cast<int>(seen.size()) != c.num_clusters) {
    return Violation(algorithm,
                     "num_clusters = " + std::to_string(c.num_clusters) +
                         " but " + std::to_string(seen.size()) +
                         " distinct cluster ids are assigned");
  }
  return Status::OK();
}

}  // namespace

Status ValidateClusteringShape(const NetworkView& view, const Clustering& c) {
  if (c.assignment.size() != view.num_points()) {
    return Violation("shape",
                     "assignment has " + std::to_string(c.assignment.size()) +
                         " entries for " + std::to_string(view.num_points()) +
                         " points");
  }
  if (c.num_clusters < 0) {
    return Violation("shape",
                     "negative num_clusters " + std::to_string(c.num_clusters));
  }
  for (PointId p = 0; p < c.assignment.size(); ++p) {
    int id = c.assignment[p];
    if (id != kNoise && (id < 0 || id >= c.num_clusters)) {
      return Violation("shape", "point " + std::to_string(p) +
                                    " carries cluster id " +
                                    std::to_string(id) + " outside [0, " +
                                    std::to_string(c.num_clusters) + ")");
    }
  }
  return Status::OK();
}

Status ValidateKMedoids(const NetworkView& view, const Clustering& c,
                        const std::vector<PointId>& medoids, double cost,
                        const ValidateLimits& limits) {
  NETCLUS_RETURN_IF_ERROR(ValidateClusteringShape(view, c));
  const PointId n = view.num_points();
  const size_t k = medoids.size();
  if (k == 0) return Violation("kmedoids", "empty medoid set");
  if (c.num_clusters != static_cast<int>(k)) {
    return Violation("kmedoids",
                     "num_clusters = " + std::to_string(c.num_clusters) +
                         " for " + std::to_string(k) + " medoids");
  }
  std::unordered_set<PointId> medoid_set;
  for (PointId m : medoids) {
    if (m >= n) {
      return Violation("kmedoids",
                       "medoid point id " + std::to_string(m) + " >= N");
    }
    if (!medoid_set.insert(m).second) {
      return Violation("kmedoids",
                       "duplicate medoid point " + std::to_string(m));
    }
  }
  if (!std::isfinite(cost) || cost < 0.0) {
    return Violation("kmedoids",
                     "evaluation function R = " + std::to_string(cost) +
                         " is not a finite non-negative value");
  }

  // Re-verify nearest-medoid tags with an independent per-pair Dijkstra:
  // every point on all points (exact mode), a deterministic sample at
  // scale. Exact mode also re-derives R.
  const bool exact = n <= limits.exact_max_points;
  const PointId stride = exact ? 1 : SampleStride(n, limits);
  NodeScratch scratch(view.num_nodes());
  double recomputed_cost = 0.0;
  for (PointId p = 0; p < n; p += stride) {
    double best = kInfDist;
    for (PointId m : medoids) {
      best = std::min(best, PointNetworkDistance(view, p, m, &scratch));
    }
    int assigned = c.assignment[p];
    if (assigned == kNoise) {
      if (best < kInfDist) {
        return Violation("kmedoids",
                         "point " + std::to_string(p) +
                             " is noise but can reach a medoid at distance " +
                             std::to_string(best));
      }
      continue;
    }
    double d_assigned =
        PointNetworkDistance(view, p, medoids[assigned], &scratch);
    if (d_assigned > best + Tolerance(best)) {
      return Violation(
          "kmedoids",
          "point " + std::to_string(p) + " is tagged with medoid " +
              std::to_string(assigned) + " at distance " +
              std::to_string(d_assigned) + " but its nearest medoid is at " +
              std::to_string(best));
    }
    recomputed_cost += d_assigned;
  }
  if (exact && std::abs(recomputed_cost - cost) >
                   1e-6 * std::max(1.0, std::abs(cost))) {
    return Violation("kmedoids",
                     "reported R = " + std::to_string(cost) +
                         " but independent reassignment gives " +
                         std::to_string(recomputed_cost));
  }
  return Status::OK();
}

Status ValidateEpsLink(const NetworkView& view, const Clustering& c,
                       const EpsLinkOptions& options,
                       const ValidateLimits& limits) {
  NETCLUS_RETURN_IF_ERROR(ValidateClusteringShape(view, c));
  NETCLUS_RETURN_IF_ERROR(CheckContiguousIds("epslink", c));
  if (!(options.eps > 0.0)) {
    return Violation("epslink", "non-positive eps");
  }
  const PointId n = view.num_points();
  if (n == 0) return Status::OK();
  TraversalWorkspace ws(view.num_nodes());
  std::vector<RangeResult> reach;

  if (n <= limits.exact_max_points) {
    // Independent oracle: rebuild the ε-connectivity components with one
    // ε-range query per point, then demand a bijection between
    // components of size >= min_sup and cluster ids.
    UnionFind uf(n);
    for (PointId p = 0; p < n; ++p) {
      RangeQuery(view, p, options.eps, &ws, &reach);
      for (const RangeResult& r : reach) {
        if (r.id != p) uf.Union(p, r.id);
      }
    }
    std::unordered_map<uint32_t, int> component_cluster;
    std::unordered_map<int, uint32_t> cluster_component;
    for (PointId p = 0; p < n; ++p) {
      uint32_t root = uf.Find(p);
      uint32_t size = uf.SizeOf(p);
      int id = c.assignment[p];
      if (size < options.min_sup) {
        if (id != kNoise) {
          return Violation("epslink",
                           "point " + std::to_string(p) +
                               " lies in an ε-component of size " +
                               std::to_string(size) + " < min_sup " +
                               std::to_string(options.min_sup) +
                               " but is not noise");
        }
        continue;
      }
      if (id == kNoise) {
        return Violation("epslink",
                         "point " + std::to_string(p) +
                             " is noise inside an ε-component of size " +
                             std::to_string(size) + " >= min_sup");
      }
      auto [cit, cinserted] = component_cluster.emplace(root, id);
      if (!cinserted && cit->second != id) {
        return Violation(
            "epslink", "clusters " + std::to_string(cit->second) + " and " +
                           std::to_string(id) +
                           " are ε-linked (not ε-separated; point " +
                           std::to_string(p) + ")");
      }
      auto [rit, rinserted] = cluster_component.emplace(id, root);
      if (!rinserted && rit->second != root) {
        return Violation(
            "epslink", "cluster " + std::to_string(id) +
                           " spans two ε-components (not ε-connected; point " +
                           std::to_string(p) + ")");
      }
    }
    return Status::OK();
  }

  // At scale: every ε-linked pair among a deterministic sample of range
  // queries must agree on its cluster id (a clustered point's whole
  // ε-neighborhood belongs to its cluster; noise is only ever ε-linked
  // to noise).
  for (PointId p = 0; p < n; p += SampleStride(n, limits)) {
    RangeQuery(view, p, options.eps, &ws, &reach);
    for (const RangeResult& r : reach) {
      if (c.assignment[r.id] != c.assignment[p]) {
        return Violation("epslink",
                         "points " + std::to_string(p) + " and " +
                             std::to_string(r.id) + " are within ε = " +
                             std::to_string(options.eps) +
                             " but carry cluster ids " +
                             std::to_string(c.assignment[p]) + " and " +
                             std::to_string(c.assignment[r.id]));
      }
    }
  }
  return Status::OK();
}

Status ValidateDbscan(const NetworkView& view, const Clustering& c,
                      const DbscanOptions& options,
                      const ValidateLimits& limits) {
  NETCLUS_RETURN_IF_ERROR(ValidateClusteringShape(view, c));
  NETCLUS_RETURN_IF_ERROR(CheckContiguousIds("dbscan", c));
  if (!(options.eps > 0.0)) {
    return Violation("dbscan", "non-positive eps");
  }
  const PointId n = view.num_points();
  if (n == 0) return Status::OK();
  TraversalWorkspace ws(view.num_nodes());
  std::vector<RangeResult> reach;

  if (n > limits.exact_max_points) {
    // Structural spot check: a point with a core-sized neighborhood can
    // never be noise.
    for (PointId p = 0; p < n; p += SampleStride(n, limits)) {
      RangeQuery(view, p, options.eps, &ws, &reach);
      if (reach.size() >= options.min_pts && c.assignment[p] == kNoise) {
        return Violation("dbscan", "core point " + std::to_string(p) +
                                       " (neighborhood size " +
                                       std::to_string(reach.size()) +
                                       ") is noise");
      }
    }
    return Status::OK();
  }

  // Exact mode: recompute every neighborhood independently, derive core
  // flags, and check the DBSCAN partition axioms point by point.
  std::vector<std::vector<PointId>> nbrs(n);
  std::vector<bool> core(n, false);
  for (PointId p = 0; p < n; ++p) {
    RangeQuery(view, p, options.eps, &ws, &reach);
    nbrs[p].reserve(reach.size());
    for (const RangeResult& r : reach) nbrs[p].push_back(r.id);
    std::sort(nbrs[p].begin(), nbrs[p].end());
    core[p] = nbrs[p].size() >= options.min_pts;
  }
  for (PointId p = 0; p < n; ++p) {
    // ε-neighborhood symmetry — an audit of the range query itself.
    for (PointId q : nbrs[p]) {
      if (!std::binary_search(nbrs[q].begin(), nbrs[q].end(), p)) {
        return Violation("dbscan", "asymmetric ε-neighborhood: " +
                                       std::to_string(q) + " in N(" +
                                       std::to_string(p) + ") but not " +
                                       std::to_string(p) + " in N(" +
                                       std::to_string(q) + ")");
      }
    }
    int id = c.assignment[p];
    if (core[p]) {
      if (id == kNoise) {
        return Violation("dbscan",
                         "core point " + std::to_string(p) + " is noise");
      }
      for (PointId q : nbrs[p]) {
        if (core[q] && c.assignment[q] != id) {
          return Violation("dbscan",
                           "ε-close core points " + std::to_string(p) +
                               " and " + std::to_string(q) +
                               " lie in clusters " + std::to_string(id) +
                               " and " + std::to_string(c.assignment[q]));
        }
      }
    } else if (id != kNoise) {
      bool claimed = false;
      for (PointId q : nbrs[p]) {
        if (core[q] && c.assignment[q] == id) {
          claimed = true;
          break;
        }
      }
      if (!claimed) {
        return Violation("dbscan", "border point " + std::to_string(p) +
                                       " in cluster " + std::to_string(id) +
                                       " has no core point of that cluster "
                                       "within ε");
      }
    } else {
      for (PointId q : nbrs[p]) {
        if (core[q]) {
          return Violation("dbscan",
                           "noise point " + std::to_string(p) +
                               " lies within ε of core point " +
                               std::to_string(q));
        }
      }
    }
  }
  return Status::OK();
}

Status ValidateDendrogram(const Dendrogram& dendrogram,
                          const SingleLinkOptions& options) {
  const PointId n = dendrogram.num_points();
  const std::vector<Merge>& merges = dendrogram.merges();
  if (n == 0) {
    if (!merges.empty()) {
      return Violation("singlelink", "merges recorded over zero points");
    }
    return Status::OK();
  }
  if (merges.size() > static_cast<size_t>(n) - 1) {
    return Violation("singlelink",
                     std::to_string(merges.size()) + " merges over " +
                         std::to_string(n) + " points (max n-1)");
  }
  UnionFind uf(n);
  double prev = -kInfDist;
  for (size_t i = 0; i < merges.size(); ++i) {
    const Merge& m = merges[i];
    if (m.a >= n || m.b >= n) {
      return Violation("singlelink",
                       "merge " + std::to_string(i) +
                           " references point ids " + std::to_string(m.a) +
                           "/" + std::to_string(m.b) + " outside [0, " +
                           std::to_string(n) + ")");
    }
    if (!std::isfinite(m.distance) || m.distance < 0.0) {
      return Violation("singlelink", "merge " + std::to_string(i) +
                                         " carries distance " +
                                         std::to_string(m.distance));
    }
    if (m.distance > options.stop_distance && m.distance > options.delta) {
      return Violation("singlelink",
                       "merge " + std::to_string(i) + " at distance " +
                           std::to_string(m.distance) +
                           " exceeds stop_distance " +
                           std::to_string(options.stop_distance));
    }
    // δ pre-merges (distance <= δ) may appear anywhere out of order; the
    // exact part of the dendrogram must be non-decreasing.
    if (m.distance > options.delta) {
      if (m.distance + Tolerance(prev) < prev) {
        return Violation(
            "singlelink",
            "merge distances not non-decreasing: merge " + std::to_string(i) +
                " at " + std::to_string(m.distance) + " after " +
                std::to_string(prev));
      }
      prev = std::max(prev, m.distance);
    }
    if (!uf.Union(m.a, m.b)) {
      return Violation("singlelink",
                       "merge " + std::to_string(i) + " joins points " +
                           std::to_string(m.a) + " and " +
                           std::to_string(m.b) +
                           " that were already in one cluster");
    }
  }
  return Status::OK();
}

Status ValidateHeap(const std::vector<DijkstraHeapEntry>& heap) {
  for (const DijkstraHeapEntry& e : heap) {
    if (std::isnan(e.dist)) {
      return Violation("workspace", "NaN distance in heap for node " +
                                        std::to_string(e.node));
    }
  }
  if (!std::is_heap(heap.begin(), heap.end(),
                    std::greater<DijkstraHeapEntry>())) {
    return Violation("workspace", "heap property violated");
  }
  return Status::OK();
}

Status ValidateSettleLog(
    const std::vector<std::pair<NodeId, double>>& settled, NodeId num_nodes) {
  std::vector<bool> seen(num_nodes, false);
  double prev = -kInfDist;
  for (size_t i = 0; i < settled.size(); ++i) {
    const auto& [node, dist] = settled[i];
    if (node >= num_nodes) {
      return Violation("workspace", "settle log entry " + std::to_string(i) +
                                        " names node " + std::to_string(node) +
                                        " >= |V|");
    }
    if (seen[node]) {
      return Violation("workspace", "node " + std::to_string(node) +
                                        " settled twice");
    }
    seen[node] = true;
    if (!std::isfinite(dist) || dist < 0.0) {
      return Violation("workspace", "settle log entry " + std::to_string(i) +
                                        " carries distance " +
                                        std::to_string(dist));
    }
    if (dist + Tolerance(prev) < prev) {
      return Violation("workspace",
                       "settle order not non-decreasing: node " +
                           std::to_string(node) + " at " +
                           std::to_string(dist) + " after " +
                           std::to_string(prev));
    }
    prev = std::max(prev, dist);
  }
  return Status::OK();
}

Status ValidateWorkspace(const TraversalWorkspace& ws, NodeId num_nodes) {
  if (ws.scratch.size() != num_nodes) {
    return Violation("workspace",
                     "scratch sized for " + std::to_string(ws.scratch.size()) +
                         " nodes on a network of " + std::to_string(num_nodes));
  }
  NETCLUS_RETURN_IF_ERROR(ValidateHeap(ws.heap));
  return ValidateSettleLog(ws.settled, num_nodes);
}

Status ValidateFrozenGraph(const NetworkView& view,
                           const FrozenGraph& frozen) {
  const NodeId num_nodes = view.num_nodes();
  if (frozen.num_nodes() != num_nodes) {
    return Violation("frozen",
                     "snapshot has " + std::to_string(frozen.num_nodes()) +
                         " nodes for a view of " + std::to_string(num_nodes));
  }

  // Neighbor sequences: same ids and weights in the same order — the
  // exact property bit-identical traversal trajectories depend on.
  std::vector<std::pair<NodeId, double>> expect;
  size_t half_edges = 0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    expect.clear();
    VisitNeighbors(view, n,
                   [&](NodeId m, double w) { expect.emplace_back(m, w); });
    if (frozen.degree(n) != expect.size()) {
      return Violation("frozen",
                       "node " + std::to_string(n) + " has CSR degree " +
                           std::to_string(frozen.degree(n)) +
                           " but view degree " +
                           std::to_string(expect.size()));
    }
    half_edges += expect.size();
    size_t i = 0;
    std::string mismatch;
    VisitNeighbors(frozen, n, [&](NodeId m, double w) {
      if (!mismatch.empty() || i >= expect.size()) {
        ++i;
        return;
      }
      // Exact equality, not tolerance: the slots are copies of the very
      // doubles the view hands out, so any difference is corruption.
      if (expect[i].first != m || expect[i].second != w) {
        mismatch = "node " + std::to_string(n) + " neighbor slot " +
                   std::to_string(i) + ": CSR has (" + std::to_string(m) +
                   ", " + std::to_string(w) + "), view has (" +
                   std::to_string(expect[i].first) + ", " +
                   std::to_string(expect[i].second) + ")";
      }
      ++i;
    });
    if (!mismatch.empty()) return Violation("frozen", std::move(mismatch));
  }
  if (frozen.num_half_edges() != half_edges) {
    return Violation("frozen",
                     "snapshot stores " +
                         std::to_string(frozen.num_half_edges()) +
                         " half-edges but the view iterates " +
                         std::to_string(half_edges));
  }

  // Point-range handles: every point-bearing edge of the view must map
  // to the identical (first, count) range in the snapshot.
  if (!frozen.has_point_ranges()) {
    return Violation("frozen",
                     "snapshot built without point ranges cannot serve "
                     "traversal clients of a point-bearing view");
  }
  std::string pt_mismatch;
  view.ForEachPointGroup(
      [&](NodeId u, NodeId v, PointId first, uint32_t count) {
        if (!pt_mismatch.empty()) return;
        auto [got_first, got_count] = frozen.EdgePointRange(u, v);
        if (got_first != first || got_count != count) {
          pt_mismatch = "edge {" + std::to_string(u) + ", " +
                        std::to_string(v) + "}: CSR point range (" +
                        std::to_string(got_first) + ", " +
                        std::to_string(got_count) + ") != view range (" +
                        std::to_string(first) + ", " + std::to_string(count) +
                        ")";
        }
      });
  if (!pt_mismatch.empty()) return Violation("frozen", std::move(pt_mismatch));
  return view.status();
}

namespace {

// Exact node-to-nearest-object distances by one multi-source Dijkstra
// seeded from both endpoints of every object except `exclude` — the
// independent oracle the accelerator's Voronoi floors are audited
// against.
std::vector<double> NearestObjectOracle(const NetworkView& view,
                                        PointId exclude,
                                        TraversalWorkspace* ws) {
  std::vector<DijkstraSource> sources;
  std::vector<EdgePoint> pts;
  view.ForEachPointGroup([&](NodeId u, NodeId v, PointId /*first*/,
                             uint32_t /*count*/) {
    view.GetEdgePoints(u, v, &pts);
    double w = view.EdgeWeight(u, v);
    for (const EdgePoint& ep : pts) {
      if (ep.id == exclude) continue;
      sources.push_back(DijkstraSource{u, ep.offset});
      sources.push_back(DijkstraSource{v, w - ep.offset});
    }
  });
  std::vector<double> out(view.num_nodes(), kInfDist);
  if (sources.empty()) return out;
  DijkstraDistances(view, sources, ws);
  for (NodeId n = 0; n < view.num_nodes(); ++n) {
    out[n] = ws->scratch.Get(n);
  }
  return out;
}

}  // namespace

Status ValidateDistanceAccelerator(const NetworkView& view,
                                   const DistanceAccelerator& accel,
                                   const ValidateLimits& limits) {
  const PointId n = view.num_points();
  const NodeId num_nodes = view.num_nodes();

  // Point-pair bounds against the exact point-to-point Dijkstra, on a
  // deterministic sample (two partners per sampled point).
  NodeScratch scratch(num_nodes);
  std::vector<double> finite_exact;
  std::vector<PointId> sampled;
  if (n > 0) {
    PointId stride =
        n <= limits.exact_max_points ? 1 : SampleStride(n, limits);
    for (PointId p = 0; p < n; p += stride) {
      sampled.push_back(p);
      for (PointId q : {static_cast<PointId>((p + n / 2 + 1) % n),
                        static_cast<PointId>((p * 31 + 7) % n)}) {
        double exact = PointNetworkDistance(view, p, q, &scratch);
        double lb = accel.LowerBound(p, q);
        double ub = accel.UpperBound(p, q);
        if (exact == kInfDist) {
          if (ub != kInfDist) {
            return Violation("index", "upper bound " + std::to_string(ub) +
                                          " for disconnected pair (" +
                                          std::to_string(p) + ", " +
                                          std::to_string(q) + ")");
          }
        } else {
          finite_exact.push_back(exact);
          if (lb > exact + Tolerance(exact)) {
            return Violation("index",
                             "lower bound " + std::to_string(lb) +
                                 " exceeds exact distance " +
                                 std::to_string(exact) + " for pair (" +
                                 std::to_string(p) + ", " +
                                 std::to_string(q) + ")");
          }
          if (ub < exact - Tolerance(exact)) {
            return Violation("index",
                             "upper bound " + std::to_string(ub) +
                                 " below exact distance " +
                                 std::to_string(exact) + " for pair (" +
                                 std::to_string(p) + ", " +
                                 std::to_string(q) + ")");
          }
        }
        double cached;
        if (accel.LookupDistance(p, q, &cached) &&
            std::abs(cached - exact) > Tolerance(exact)) {
          return Violation("index", "cached distance " +
                                        std::to_string(cached) +
                                        " != exact " + std::to_string(exact) +
                                        " for pair (" + std::to_string(p) +
                                        ", " + std::to_string(q) + ")");
        }
      }
    }
  }

  // Nearest-object floors against the multi-source oracle: once with
  // nothing excluded (every node), then with a few excluded probes.
  std::vector<PointId> probes;
  for (size_t i = 0; i < sampled.size() && probes.size() < 4;
       i += std::max<size_t>(1, sampled.size() / 4)) {
    probes.push_back(sampled[i]);
  }
  std::vector<PointId> excludes = {kInvalidPointId};
  excludes.insert(excludes.end(), probes.begin(), probes.end());
  TraversalWorkspace oracle_ws(num_nodes);
  for (PointId exclude : excludes) {
    std::vector<double> oracle =
        NearestObjectOracle(view, exclude, &oracle_ws);
    for (NodeId node = 0; node < num_nodes; ++node) {
      double floor = accel.NearestObjectFloor(node, exclude);
      if (floor > oracle[node] + Tolerance(oracle[node])) {
        return Violation(
            "index",
            "nearest-object floor " + std::to_string(floor) + " at node " +
                std::to_string(node) + " (excluding " +
                (exclude == kInvalidPointId ? std::string("nothing")
                                            : std::to_string(exclude)) +
                ") exceeds exact nearest-object distance " +
                std::to_string(oracle[node]));
      }
    }
  }

  // Range expansion bounds must stay within [0, eps] and cover the
  // farthest in-range point of an unaccelerated eps-range query.
  if (!sampled.empty() && !finite_exact.empty()) {
    std::sort(finite_exact.begin(), finite_exact.end());
    double eps = finite_exact[finite_exact.size() / 2];  // median: non-trivial
    if (eps > 0.0) {
      TraversalWorkspace ws(num_nodes);
      std::vector<RangeResult> reach;
      size_t audits = std::min<size_t>(sampled.size(), 16);
      for (size_t i = 0; i < audits; ++i) {
        PointId p = sampled[i];
        double bound = accel.RangeExpansionBound(p, eps);
        if (bound < 0.0 || bound > eps + Tolerance(eps)) {
          return Violation("index", "range expansion bound " +
                                        std::to_string(bound) +
                                        " outside [0, eps = " +
                                        std::to_string(eps) + "] for point " +
                                        std::to_string(p));
        }
        RangeQuery(view, p, eps, &ws, &reach);
        double farthest = 0.0;
        for (const RangeResult& r : reach) {
          farthest = std::max(farthest, r.dist);
        }
        if (bound < farthest - Tolerance(farthest)) {
          return Violation(
              "index", "range expansion bound " + std::to_string(bound) +
                           " for point " + std::to_string(p) +
                           " misses in-range point at distance " +
                           std::to_string(farthest));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace netclus
