#include "core/hierarchy_variants.h"

#include <algorithm>

#include "graph/dijkstra.h"

namespace netclus {

Result<Dendrogram> MatrixHierarchical(
    const std::vector<std::vector<double>>& pd, Linkage linkage) {
  const size_t n = pd.size();
  for (const auto& row : pd) {
    if (row.size() != n) {
      return Status::InvalidArgument("distance matrix must be square");
    }
  }
  Dendrogram dendro(static_cast<PointId>(n));
  if (n < 2) return dendro;

  std::vector<std::vector<double>> d = pd;  // working matrix
  std::vector<bool> active(n, true);
  std::vector<uint32_t> size(n, 1);
  // Nearest active neighbor cache per cluster.
  std::vector<double> nn_dist(n, kInfDist);
  std::vector<size_t> nn_idx(n, SIZE_MAX);
  auto recompute_nn = [&](size_t i) {
    nn_dist[i] = kInfDist;
    nn_idx[i] = SIZE_MAX;
    for (size_t k = 0; k < n; ++k) {
      if (k != i && active[k] && d[i][k] < nn_dist[i]) {
        nn_dist[i] = d[i][k];
        nn_idx[i] = k;
      }
    }
  };
  for (size_t i = 0; i < n; ++i) recompute_nn(i);

  for (size_t step = 0; step + 1 < n; ++step) {
    // Global closest pair.
    size_t best = SIZE_MAX;
    double best_dist = kInfDist;
    for (size_t i = 0; i < n; ++i) {
      if (active[i] && nn_dist[i] < best_dist) {
        best_dist = nn_dist[i];
        best = i;
      }
    }
    if (best == SIZE_MAX) break;  // only unreachable pairs remain
    size_t i = best, j = nn_idx[best];
    dendro.AddMerge(static_cast<PointId>(i), static_cast<PointId>(j),
                    best_dist);
    // Lance–Williams update into slot i; j dies.
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == i || k == j) continue;
      double dik = d[i][k], djk = d[j][k];
      double merged = kInfDist;
      switch (linkage) {
        case Linkage::kSingle:
          merged = std::min(dik, djk);
          break;
        case Linkage::kComplete:
          merged = std::max(dik, djk);
          break;
        case Linkage::kAverage:
          if (dik == kInfDist || djk == kInfDist) {
            merged = kInfDist;
          } else {
            merged = (size[i] * dik + size[j] * djk) / (size[i] + size[j]);
          }
          break;
      }
      d[i][k] = d[k][i] = merged;
    }
    active[j] = false;
    size[i] += size[j];
    recompute_nn(i);
    // Any cluster whose nearest neighbor involved i or j, or got closer
    // to the merged cluster, needs a refresh.
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == i) continue;
      if (nn_idx[k] == i || nn_idx[k] == j) {
        recompute_nn(k);
      } else if (d[k][i] < nn_dist[k]) {
        nn_dist[k] = d[k][i];
        nn_idx[k] = i;
      }
    }
  }
  return dendro;
}

}  // namespace netclus
