// Hierarchical clustering variants beyond single-link (paper Sections 2
// and 7).
//
// The paper's Single-Link exploits that the single-link cluster distance
// is realized along network paths; complete-link and average-link (the
// "distances between multiple points from the merged clusters" direction
// of Section 7) have no such locality and need the full distance matrix.
// These Lance–Williams implementations provide them as exact references:
// usable on moderate N, and the baseline a future network-aware variant
// would be validated against.
#ifndef NETCLUS_CORE_HIERARCHY_VARIANTS_H_
#define NETCLUS_CORE_HIERARCHY_VARIANTS_H_

#include <vector>

#include "common/status.h"
#include "core/dendrogram.h"

namespace netclus {

/// Cluster-distance update rule for agglomerative merging.
enum class Linkage {
  kSingle,    // min pairwise distance
  kComplete,  // max pairwise distance
  kAverage,   // unweighted average pairwise distance (UPGMA)
};

/// Exact agglomerative clustering over a full point-distance matrix
/// (O(N^2) memory, O(N^2 log N) time via Lance–Williams updates).
/// `pd` must be square and symmetric; infinite entries mean unreachable
/// (such pairs never merge).
Result<Dendrogram> MatrixHierarchical(
    const std::vector<std::vector<double>>& pd, Linkage linkage);

}  // namespace netclus

#endif  // NETCLUS_CORE_HIERARCHY_VARIANTS_H_
