// Common result types shared by all clustering algorithms.
#ifndef NETCLUS_CORE_CLUSTERING_H_
#define NETCLUS_CORE_CLUSTERING_H_

#include <vector>

#include "graph/types.h"

namespace netclus {

/// Cluster id of noise/outlier points.
inline constexpr int kNoise = -1;

/// \brief A flat clustering: one cluster id (or kNoise) per point.
struct Clustering {
  /// assignment[p] = cluster id in [0, num_clusters) or kNoise.
  std::vector<int> assignment;
  int num_clusters = 0;
};

/// Renumbers cluster ids to 0..m-1 in order of first appearance, drops
/// clusters with fewer than `min_size` points to kNoise, and sets
/// num_clusters. Useful after algorithms that produce sparse ids.
void NormalizeClustering(Clustering* c, uint32_t min_size = 1);

}  // namespace netclus

#endif  // NETCLUS_CORE_CLUSTERING_H_
