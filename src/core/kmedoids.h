// Partitioning-based clustering on a spatial network (paper Section 4.2).
//
// A k-medoids search: k random points serve as medoids, every point is
// assigned to its nearest medoid by network distance, and random
// medoid/point swaps are committed whenever they reduce the evaluation
// function R = sum over points of d(p, medoid(p)).
//
// The two traversal routines of the paper are both implemented:
//  * Medoid_Dist_Find (Fig. 4): one concurrent multi-source Dijkstra tags
//    every network node with its nearest medoid and distance.
//  * Inc_Medoid_Update (Fig. 5): after one medoid is swapped, only the
//    affected region is repaired (the replaced medoid's nodes are
//    unassigned and re-conquered from the boundary and the new medoid).
// Point assignment then follows Equation (1): a point's nearest medoid is
// reachable via either endpoint of its edge, or lies on the same edge.
#ifndef NETCLUS_CORE_KMEDOIDS_H_
#define NETCLUS_CORE_KMEDOIDS_H_

#include <vector>

#include "common/status.h"
#include "core/clustering.h"
#include "graph/accelerator.h"
#include "graph/network_view.h"

namespace netclus {

/// Options for KMedoidsCluster.
struct KMedoidsOptions {
  uint32_t k = 10;
  /// Consecutive rejected swaps before declaring a local optimum (the
  /// paper allows 15).
  uint32_t max_unsuccessful_swaps = 15;
  /// Safety cap on total attempted swaps.
  uint32_t max_swaps = 10000;
  /// Use Inc_Medoid_Update (true) or rerun Medoid_Dist_Find from scratch
  /// after every swap (false) — the ablation of Fig. 12 / Table 1.
  bool incremental_updates = true;
  /// Random restarts; the best local optimum wins. Restart r draws its
  /// randomness from Rng(Rng::DeriveSeed(seed, r)), so the set of
  /// restarts — and therefore the result — is identical at any
  /// `num_threads`.
  uint32_t num_restarts = 1;
  uint64_t seed = 1;
  /// Fixed initial medoids (e.g. the generated cluster seeds — the
  /// "ideal" seeding of Fig. 11b). Empty = random initialization. When
  /// non-empty, `k` is ignored and `num_restarts` is treated as 1.
  std::vector<PointId> initial_medoids;
  /// Worker threads for the restart loop: restarts run one per task.
  /// 0 = one per hardware core, 1 = serial. Results are bit-identical
  /// across thread counts for a fixed seed.
  uint32_t num_threads = 1;
};

/// Timing/convergence statistics of one run (Table 1's columns).
struct KMedoidsStats {
  /// Committed improving swaps (excluding the initial assignment).
  uint32_t committed_swaps = 0;
  uint32_t attempted_swaps = 0;
  /// Attempted swaps rejected by the accelerator's cost lower bound
  /// before any traversal ran (always 0 without an accelerator). A
  /// pruned swap is provably non-improving, so the search trajectory is
  /// identical to the unaccelerated run.
  uint32_t pruned_swaps = 0;
  /// Wall time of the initial full assignment ("first iteration").
  double first_iteration_seconds = 0.0;
  /// Mean wall time of one subsequent swap evaluation ("next ones").
  double avg_swap_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Result of KMedoidsCluster.
struct KMedoidsResult {
  Clustering clustering;            ///< assignment[p] = medoid index
  std::vector<PointId> medoids;     ///< point id of each medoid
  double cost = 0.0;                ///< final evaluation function R
  KMedoidsStats stats;
};

/// Runs k-medoids: random initial medoids unless
/// `options.initial_medoids` is set. Restarts execute in parallel on
/// `options.num_threads` workers with per-restart derived seeds; the
/// winning run (lowest cost, ties broken by lowest restart index) is
/// bit-identical to a serial execution.
///
/// Deprecated legacy entry point: call
/// RunClustering(view, MakeSpec(options)) instead (netclus.h).
[[deprecated("use RunClustering(view, MakeSpec(options))")]]
Result<KMedoidsResult> KMedoidsCluster(const NetworkView& view,
                                       const KMedoidsOptions& options);

/// As above with an optional distance accelerator (null = identical to
/// the overload above). Before a tentative swap is evaluated, a sound
/// lower bound on the post-swap cost is assembled from the
/// accelerator's per-pair bounds; swaps whose bound already exceeds the
/// current cost are rejected without running Inc_Medoid_Update or the
/// assignment scan. Pruning never changes the result: the rng draws and
/// the accept/reject sequence are identical with the index on or off.
///
/// Deprecated legacy entry point: RunClustering builds the accelerator
/// itself from ClusterSpec::index.
[[deprecated("use RunClustering with ClusterSpec::index")]]
Result<KMedoidsResult> KMedoidsCluster(const NetworkView& view,
                                       const KMedoidsOptions& options,
                                       const DistanceAccelerator* accel);

/// As above with an optional FrozenGraph snapshot of `view` (see
/// NetworkView::Freeze()): when non-null, every traversal
/// (Medoid_Dist_Find, Inc_Medoid_Update, the assignment scan's edge
/// weights) runs over the snapshot's CSR arrays with no virtual
/// dispatch, shared read-only across the restart workers. Results are
/// bit-identical to the unfrozen run.
Result<KMedoidsResult> KMedoidsCluster(const NetworkView& view,
                                       const KMedoidsOptions& options,
                                       const DistanceAccelerator* accel,
                                       const FrozenGraph* frozen);

/// Evaluates R for an arbitrary medoid set (no search), assigning every
/// point to its nearest medoid. Exposed for tests and for the evaluation
/// module. `frozen`, when non-null, must be a snapshot of `view`.
Result<KMedoidsResult> AssignToMedoids(const NetworkView& view,
                                       const std::vector<PointId>& medoids,
                                       const FrozenGraph* frozen = nullptr);

}  // namespace netclus

#endif  // NETCLUS_CORE_KMEDOIDS_H_
