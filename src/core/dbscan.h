// Network adaptation of DBSCAN (paper Section 4.3).
//
// The straightforward density-based baseline: an eps-range query (network
// expansion) is issued for every point, and clusters are grown from core
// points exactly as in the original DBSCAN. With MinPts = 2 it discovers
// the same clusters as ε-Link, at a higher cost — the comparison the
// paper's Table 2 reports.
#ifndef NETCLUS_CORE_DBSCAN_H_
#define NETCLUS_CORE_DBSCAN_H_

#include "common/status.h"
#include "core/clustering.h"
#include "graph/accelerator.h"
#include "graph/network_view.h"

namespace netclus {

/// Options for DbscanCluster.
struct DbscanOptions {
  double eps = 1.0;
  /// Minimum neighborhood size (the point itself counts, as in the
  /// original DBSCAN) for a point to be a core point.
  uint32_t min_pts = 2;
  /// Worker threads for the eps-range queries (one query per point, each
  /// an independent bounded network expansion). 0 = one per hardware
  /// core, 1 = the serial on-the-fly path. The clustering is identical
  /// at any thread count: with > 1 thread all N neighborhoods are
  /// precomputed in parallel (per-worker TraversalWorkspace leases, no
  /// shared mutable state), then the cluster-growth phase replays the
  /// exact serial scan order over the cached neighborhoods.
  uint32_t num_threads = 1;
};

/// Runs network DBSCAN over all points. Border points join the first core
/// point that reaches them (scan order: ascending point id); unreached
/// points are noise.
///
/// Deprecated legacy entry point: call
/// RunClustering(view, MakeSpec(options)) instead (netclus.h).
[[deprecated("use RunClustering(view, MakeSpec(options))")]]
Result<Clustering> DbscanCluster(const NetworkView& view,
                                 const DbscanOptions& options);

/// As above with an optional distance accelerator (null = identical to
/// the overload above) threaded into every eps-range query. The
/// accelerated queries return the same neighborhoods, so the clustering
/// is identical with the index on or off (audited under validate mode).
///
/// Deprecated legacy entry point: RunClustering builds the accelerator
/// itself from ClusterSpec::index.
[[deprecated("use RunClustering with ClusterSpec::index")]]
Result<Clustering> DbscanCluster(const NetworkView& view,
                                 const DbscanOptions& options,
                                 const DistanceAccelerator* accel);

/// As above with an optional FrozenGraph snapshot of `view` (see
/// NetworkView::Freeze()): when non-null, every eps-range query expands
/// over the snapshot's CSR arrays (shared read-only across the query
/// workers) instead of the virtual view. Bit-identical clustering.
Result<Clustering> DbscanCluster(const NetworkView& view,
                                 const DbscanOptions& options,
                                 const DistanceAccelerator* accel,
                                 const FrozenGraph* frozen);

}  // namespace netclus

#endif  // NETCLUS_CORE_DBSCAN_H_
