#include "core/eps_link.h"

#include <queue>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/frozen_graph.h"

namespace netclus {

namespace {

struct QEntry {
  double dist;
  NodeId node;
  bool operator>(const QEntry& other) const { return dist > other.dist; }
};
using MinHeap = std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>>;

// Grows one cluster at a time with the Fig. 6 expansion. The per-node
// cluster distances (NNdist) live in an epoch-reset NodeScratch so a run
// over many clusters never pays O(|V|) re-initialization. Templated on
// the traversal graph (the view itself, or a FrozenGraph snapshot for
// the de-virtualized path); both instantiations visit edges in the same
// order, so clusterings are bit-identical.
template <typename Graph>
class EpsLinkRunner {
 public:
  EpsLinkRunner(const NetworkView& view, const Graph& graph, double eps,
                Clustering* out)
      : view_(view),
        graph_(graph),
        eps_(eps),
        out_(out),
        nndist_(view.num_nodes()) {}

  void GrowCluster(PointId seed, int cluster_id) {
    nndist_.NewEpoch();
    MinHeap q;
    Assign(seed, cluster_id);

    // Initialization: chain along the seed's edge in both directions and
    // enqueue the endpoints that end up within eps of the cluster.
    PointPos pos = view_.PointPosition(seed);
    double w = graph_.EdgeWeight(pos.u, pos.v);
    view_.GetEdgePoints(pos.u, pos.v, &pts_);
    size_t idx = 0;
    while (idx < pts_.size() && pts_[idx].id != seed) ++idx;
    // Toward u (descending offsets).
    double last_off = pos.offset;
    for (size_t j = idx; j-- > 0;) {
      if (Clustered(pts_[j].id) || last_off - pts_[j].offset > eps_) break;
      Assign(pts_[j].id, cluster_id);
      last_off = pts_[j].offset;
    }
    MaybeEnqueue(&q, pos.u, last_off);
    // Toward v (ascending offsets).
    last_off = pos.offset;
    for (size_t j = idx + 1; j < pts_.size(); ++j) {
      if (Clustered(pts_[j].id) || pts_[j].offset - last_off > eps_) break;
      Assign(pts_[j].id, cluster_id);
      last_off = pts_[j].offset;
    }
    MaybeEnqueue(&q, pos.v, w - last_off);

    // Expansion: node distances shrink as points join the cluster; a node
    // is re-expanded whenever it is popped with an improved distance.
    while (!q.empty()) {
      QEntry b = q.top();
      q.pop();
      if (b.dist >= nndist_.Get(b.node)) continue;
      nndist_.Set(b.node, b.dist);
      VisitNeighbors(graph_, b.node, [&](NodeId nz, double we) {
        TraverseEdge(&q, b, nz, we, cluster_id);
      });
    }
  }

  bool Clustered(PointId p) const { return out_->assignment[p] != kNoise; }

 private:
  void Assign(PointId p, int cluster_id) {
    out_->assignment[p] = cluster_id;
  }

  void MaybeEnqueue(MinHeap* q, NodeId n, double dist) {
    if (dist <= eps_ && dist < nndist_.Get(n)) {
      q->push(QEntry{dist, n});
    }
  }

  // Visits edge (b.node, nz): clusters reachable points on it and
  // re-enqueues whichever endpoints got closer to the cluster.
  void TraverseEdge(MinHeap* q, const QEntry& b, NodeId nz, double we,
                    int cluster_id) {
    view_.GetEdgePoints(b.node, nz, &pts_);
    double newd_b = kInfDist;   // new distance from b.node to the cluster
    double newd_nz = kInfDist;  // new distance from nz to the cluster
    if (pts_.empty()) {
      newd_nz = b.dist + we;
    } else {
      // Offsets are stored from the canonical (smaller-id) endpoint;
      // traverse from the b.node side.
      bool forward = b.node < nz;
      auto off_from_b = [&](size_t j) {
        const EdgePoint& ep = forward ? pts_[j] : pts_[pts_.size() - 1 - j];
        return forward ? ep.offset : we - ep.offset;
      };
      auto point_at = [&](size_t j) {
        return (forward ? pts_[j] : pts_[pts_.size() - 1 - j]).id;
      };
      size_t n = pts_.size();
      if (!Clustered(point_at(0)) && off_from_b(0) + b.dist <= eps_) {
        newd_b = off_from_b(0);
        Assign(point_at(0), cluster_id);
        double last = off_from_b(0);
        newd_nz = we - last;
        for (size_t j = 1; j < n; ++j) {
          if (Clustered(point_at(j)) || off_from_b(j) - last > eps_) break;
          Assign(point_at(j), cluster_id);
          last = off_from_b(j);
          newd_nz = we - last;
        }
      }
      MaybeEnqueue(q, b.node, newd_b);
    }
    MaybeEnqueue(q, nz, newd_nz);
  }

  const NetworkView& view_;
  const Graph& graph_;
  double eps_;
  Clustering* out_;
  NodeScratch nndist_;
  std::vector<EdgePoint> pts_;
};

template <typename Graph>
Result<Clustering> EpsLinkImpl(const NetworkView& view, const Graph& graph,
                               const EpsLinkOptions& options) {
  if (!(options.eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  Clustering out;
  out.assignment.assign(view.num_points(), kNoise);
  EpsLinkRunner<Graph> runner(view, graph, options.eps, &out);
  int next_cluster = 0;
  for (PointId m = 0; m < view.num_points(); ++m) {
    if (!runner.Clustered(m)) {
      runner.GrowCluster(m, next_cluster++);
    }
  }
  NormalizeClustering(&out, options.min_sup);
  return out;
}

}  // namespace

Result<Clustering> EpsLinkCluster(const NetworkView& view,
                                  const EpsLinkOptions& options) {
  return EpsLinkImpl(view, view, options);
}

Result<Clustering> EpsLinkCluster(const NetworkView& view,
                                  const EpsLinkOptions& options,
                                  const FrozenGraph* frozen) {
  return frozen != nullptr ? EpsLinkImpl(view, *frozen, options)
                           : EpsLinkImpl(view, view, options);
}

}  // namespace netclus
