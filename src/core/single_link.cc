#include "core/single_link.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/union_find.h"
#include "graph/dijkstra.h"
#include "graph/frozen_graph.h"

namespace netclus {

namespace {

struct PairEntry {
  double dist;
  PointId a, b;  // representative points of the two clusters
  bool operator>(const PairEntry& other) const { return dist > other.dist; }
};

struct NodeEntry {
  double dist;
  NodeId node;
  bool operator>(const NodeEntry& other) const { return dist > other.dist; }
};

template <typename T>
using MinHeap = std::priority_queue<T, std::vector<T>, std::greater<>>;

// The whole run, templated on the traversal graph (the view itself on
// the compatibility path, a FrozenGraph snapshot on the de-virtualized
// one). Point scans stay on the view; the expansion and edge weights go
// through the graph. Same visit order either way → identical dendrogram.
template <typename Graph>
Result<SingleLinkResult> SingleLinkImpl(const NetworkView& view,
                                        const Graph& graph,
                                        const SingleLinkOptions& options) {
  if (options.delta < 0.0) {
    return Status::InvalidArgument("delta must be non-negative");
  }
  if (options.stop_cluster_count == 0) {
    return Status::InvalidArgument("stop_cluster_count must be >= 1");
  }
  const PointId n = view.num_points();
  const NodeId num_nodes = view.num_nodes();
  SingleLinkResult result(n);
  if (n == 0) return result;

  UnionFind uf(n);
  MinHeap<PairEntry> pair_heap;   // P
  MinHeap<NodeEntry> node_heap;   // Q
  std::vector<PointId> nnclus(num_nodes, kInvalidPointId);
  std::vector<double> nndist(num_nodes, kInfDist);

  auto merge_pair = [&](PointId a, PointId b, double dist) {
    if (uf.Find(a) != uf.Find(b)) {
      result.dendrogram.AddMerge(a, b, dist);
      uf.Union(a, b);
    }
  };
  auto push_pair = [&](PointId a, PointId b, double dist) {
    if (dist <= options.delta) {
      merge_pair(a, b, dist);  // scalability heuristic: merge immediately
      return;
    }
    pair_heap.push(PairEntry{dist, a, b});
    result.stats.max_pair_heap =
        std::max(result.stats.max_pair_heap, pair_heap.size());
  };
  auto push_node = [&](NodeId node, double dist) {
    node_heap.push(NodeEntry{dist, node});
    result.stats.max_node_heap =
        std::max(result.stats.max_node_heap, node_heap.size());
  };

  // ---- Initialization phase (paper Fig. 8 lines 1-21). One scan of the
  // point groups: intra-edge consecutive pairs feed P directly; the first
  // point seen from each endpoint goes to the per-node table T.
  std::unordered_map<NodeId, std::vector<std::pair<double, PointId>>> table;
  {
    std::vector<EdgePoint> pts;
    view.ForEachPointGroup([&](NodeId u, NodeId v, PointId first,
                               uint32_t count) {
      (void)first;
      (void)count;
      double w = graph.EdgeWeight(u, v);
      view.GetEdgePoints(u, v, &pts);
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        push_pair(pts[i].id, pts[i + 1].id,
                  pts[i + 1].offset - pts[i].offset);
      }
      table[u].emplace_back(pts.front().offset, pts.front().id);
      table[v].emplace_back(w - pts.back().offset, pts.back().id);
    });
  }
  for (auto& [node, tuples] : table) {
    std::sort(tuples.begin(), tuples.end());
    const auto& [d1, c1] = tuples.front();
    nnclus[node] = c1;
    nndist[node] = d1;
    push_node(node, d1);
    // Pairs (nearest cluster, any other adjacent cluster): no other pair
    // via this node can be merged before one containing the nearest.
    for (size_t j = 1; j < tuples.size(); ++j) {
      push_pair(c1, tuples[j].second, d1 + tuples[j].first);
    }
  }
  table.clear();
  result.stats.initial_clusters = uf.num_sets();

  // ---- Expansion phase (lines 22-44).
  std::vector<bool> expanded(num_nodes, false);
  auto gate_merges = [&](double gate) {
    while (!pair_heap.empty() && uf.num_sets() > options.stop_cluster_count) {
      const PairEntry& top = pair_heap.top();
      if (top.dist > gate || top.dist > options.stop_distance) break;
      PairEntry e = top;
      pair_heap.pop();
      merge_pair(e.a, e.b, e.dist);
    }
  };

  while (uf.num_sets() > options.stop_cluster_count && !node_heap.empty()) {
    NodeEntry b = node_heap.top();
    node_heap.pop();
    // Any pair not yet discovered must connect through some unexpanded
    // node, i.e. has distance >= 2 * b.dist: safe to merge up to that.
    gate_merges(2.0 * b.dist);
    if (uf.num_sets() <= options.stop_cluster_count) break;
    if (2.0 * b.dist > options.stop_distance) break;  // nothing mergeable left
    if (expanded[b.node]) continue;  // stale or duplicate queue entry
    expanded[b.node] = true;
    ++result.stats.nodes_expanded;

    VisitNeighbors(graph, b.node, [&](NodeId nz, double w) {
      double via = nndist[b.node] + w;
      if (nnclus[nz] == kInvalidPointId) {
        // First visit of nz.
        nnclus[nz] = nnclus[b.node];
        nndist[nz] = via;
        push_node(nz, via);
      } else if (uf.Find(nnclus[nz]) == uf.Find(nnclus[b.node])) {
        // Same cluster: plain Dijkstra relaxation.
        if (via < nndist[nz]) {
          nndist[nz] = via;
          nnclus[nz] = nnclus[b.node];
          push_node(nz, via);
        }
      } else {
        // Two clusters meet across this edge: record the candidate pair,
        // then relax nz if this side is closer.
        push_pair(nnclus[b.node], nnclus[nz], nndist[b.node] + nndist[nz] + w);
        if (!expanded[nz] && via < nndist[nz]) {
          nnclus[nz] = nnclus[b.node];
          nndist[nz] = via;
          push_node(nz, via);
        }
      }
    });
  }
  // Endgame: every node settled; the remaining exact pairs finish the
  // dendrogram (bounded by stop_distance / stop_cluster_count).
  gate_merges(kInfDist);
  return result;
}

}  // namespace

Result<SingleLinkResult> SingleLinkCluster(const NetworkView& view,
                                           const SingleLinkOptions& options) {
  return SingleLinkImpl(view, view, options);
}

Result<SingleLinkResult> SingleLinkCluster(const NetworkView& view,
                                           const SingleLinkOptions& options,
                                           const FrozenGraph* frozen) {
  return frozen != nullptr ? SingleLinkImpl(view, *frozen, options)
                           : SingleLinkImpl(view, view, options);
}

}  // namespace netclus
