// Automatic discovery of interesting clustering levels (paper Section 5.3).
//
// While Single-Link merges, sharp jumps in the merge-distance sequence
// mark natural clusterings (e.g. the moment the generated clusters have
// all been found). The detector keeps the average of the last K merge
// distance differences and flags a merge whose difference exceeds that
// average by a factor.
#ifndef NETCLUS_CORE_INTERESTING_LEVELS_H_
#define NETCLUS_CORE_INTERESTING_LEVELS_H_

#include <cstddef>
#include <vector>

#include "core/dendrogram.h"

namespace netclus {

/// One detected level: cutting just below `distance_after` (i.e. at
/// `distance_before`) yields `clusters_remaining` clusters.
struct InterestingLevel {
  size_t merge_index = 0;        ///< index (in ascending-distance order)
  double distance_before = 0.0;  ///< distance of the last "normal" merge
  double distance_after = 0.0;   ///< distance of the jumping merge
  uint32_t clusters_remaining = 0;
  double jump_ratio = 0.0;       ///< difference / windowed average
};

/// Detector parameters.
struct InterestingLevelOptions {
  size_t window = 10;   ///< K: differences averaged
  double factor = 5.0;  ///< flag when difference > factor * average
  /// Ignore jumps below this absolute difference (filters float noise in
  /// flat regions of the merge curve).
  double min_difference = 1e-12;
  /// Ignore jumps smaller than this fraction of the current merge
  /// distance: in a dense region of thousands of near-equal merges the
  /// windowed average of differences is tiny, and a microscopic
  /// difference would otherwise register as a "jump". A real clustering
  /// level raises the merge distance by a visible fraction.
  double min_relative = 0.05;
};

/// Scans the dendrogram's merges in ascending distance order and returns
/// every flagged level, shallowest first. Multiple resolutions (e.g.
/// dense sub-clusters inside sparse ones) yield multiple levels.
std::vector<InterestingLevel> DetectInterestingLevels(
    const Dendrogram& dendrogram, const InterestingLevelOptions& options);

}  // namespace netclus

#endif  // NETCLUS_CORE_INTERESTING_LEVELS_H_
