// Network OPTICS: density-based cluster ordering over the network
// distance.
//
// The paper notes (Section 2) that choosing ε and MinPts for DBSCAN is
// hard, and that OPTICS [Ankerst et al. 1999] alleviates this. This
// module adapts OPTICS to spatial networks using the same ε-range
// machinery as the DBSCAN adaptation: one run produces a reachability
// ordering from which the DBSCAN clustering for ANY eps' <= eps can be
// extracted without re-touching the network.
#ifndef NETCLUS_CORE_OPTICS_H_
#define NETCLUS_CORE_OPTICS_H_

#include <vector>

#include "common/status.h"
#include "core/clustering.h"
#include "graph/network_view.h"

namespace netclus {

/// Options for OpticsOrder.
struct OpticsOptions {
  /// Generating radius: the ordering answers every eps' <= eps.
  double eps = 1.0;
  /// Core threshold (the point itself counts, as in our DBSCAN).
  uint32_t min_pts = 2;
};

/// The cluster ordering: points in visit order with their reachability
/// and core distances (kInfDist = undefined).
struct OpticsResult {
  std::vector<PointId> order;
  std::vector<double> reachability;   ///< per order position
  std::vector<double> core_distance;  ///< per point id
};

/// Computes the OPTICS ordering of all points.
Result<OpticsResult> OpticsOrder(const NetworkView& view,
                                 const OpticsOptions& options);

/// As above with an optional FrozenGraph snapshot of `view` (see
/// NetworkView::Freeze()): when non-null, every range expansion runs
/// over the snapshot's CSR arrays. Bit-identical ordering.
Result<OpticsResult> OpticsOrder(const NetworkView& view,
                                 const OpticsOptions& options,
                                 const FrozenGraph* frozen);

/// Extracts the DBSCAN-equivalent clustering at `eps_prime` (must be <=
/// the generating eps) from an ordering computed with `min_pts`.
Clustering ExtractDbscanClustering(const OpticsResult& optics,
                                   double eps_prime, uint32_t min_pts);

}  // namespace netclus

#endif  // NETCLUS_CORE_OPTICS_H_
