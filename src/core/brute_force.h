// Brute-force reference implementations (paper Section 3.2).
//
// The "straightforward" methods the paper argues against: precompute the
// full node/point distance matrices and run textbook clustering on them.
// Quadratic or cubic, hence only usable on small inputs — which is exactly
// their role here: correctness oracles for the network-traversal
// algorithms, and the cost baseline the specialized methods beat.
#ifndef NETCLUS_CORE_BRUTE_FORCE_H_
#define NETCLUS_CORE_BRUTE_FORCE_H_

#include <vector>

#include "core/clustering.h"
#include "core/dendrogram.h"
#include "graph/network.h"

namespace netclus {

/// All-pairs node distances by Floyd–Warshall. O(|V|^3): tests only.
std::vector<std::vector<double>> BruteNodeDistances(const Network& net);

/// Definition 4 applied literally on a precomputed node matrix.
double BrutePointDistance(const Network& net, const PointSet& points,
                          const std::vector<std::vector<double>>& node_dist,
                          PointId p, PointId q);

/// Full N x N point distance matrix (via BruteNodeDistances).
std::vector<std::vector<double>> BrutePointDistanceMatrix(
    const Network& net, const PointSet& points);

/// Connected components of the graph "d(p, q) <= eps"; components smaller
/// than min_sup become noise. The ε-Link semantics, by definition.
Clustering BruteEpsComponents(const std::vector<std::vector<double>>& pd,
                              double eps, uint32_t min_sup);

/// Exact single-link dendrogram: Kruskal over all point pairs.
Dendrogram BruteSingleLink(const std::vector<std::vector<double>>& pd);

/// Evaluation function R and nearest-medoid assignment straight off the
/// distance matrix (the oracle for Equation (1) / Fig. 4).
double BruteMedoidAssign(const std::vector<std::vector<double>>& pd,
                         const std::vector<PointId>& medoids,
                         std::vector<int>* assignment);

/// Core flags per DBSCAN semantics: |{q : d(p,q) <= eps}| >= min_pts
/// (the point itself counts).
std::vector<bool> BruteCoreFlags(const std::vector<std::vector<double>>& pd,
                                 double eps, uint32_t min_pts);

}  // namespace netclus

#endif  // NETCLUS_CORE_BRUTE_FORCE_H_
