// Density-based clustering: the ε-Link algorithm (paper Section 4.3.1).
//
// ε-Link is the MinPts = 2 specialization of density-based clustering:
// two points belong to the same cluster whenever their network distance is
// at most ε. Each cluster is discovered with a single Dijkstra-like
// expansion whose node distances shrink dynamically as new points join
// the cluster, so only the part of the network within ε of some cluster
// point is ever traversed.
#ifndef NETCLUS_CORE_EPS_LINK_H_
#define NETCLUS_CORE_EPS_LINK_H_

#include "common/status.h"
#include "core/clustering.h"
#include "graph/network_view.h"

namespace netclus {

/// Options for EpsLinkCluster.
struct EpsLinkOptions {
  /// Two points within network distance eps are linked into one cluster.
  double eps = 1.0;
  /// Clusters with fewer than `min_sup` points are declared outliers
  /// (the paper's optional min_sup parameter).
  uint32_t min_sup = 1;
};

/// Clusters all points; the result's clusters are exactly the connected
/// components of the "pairs within eps" graph, with components smaller
/// than min_sup downgraded to noise. Deterministic for fixed input.
///
/// Deprecated legacy entry point: call
/// RunClustering(view, MakeSpec(options)) instead (netclus.h).
[[deprecated("use RunClustering(view, MakeSpec(options))")]]
Result<Clustering> EpsLinkCluster(const NetworkView& view,
                                  const EpsLinkOptions& options);

/// As above with an optional FrozenGraph snapshot of `view` (see
/// NetworkView::Freeze()): when non-null, the expansion traverses the
/// snapshot's CSR arrays with no virtual dispatch. Bit-identical result.
Result<Clustering> EpsLinkCluster(const NetworkView& view,
                                  const EpsLinkOptions& options,
                                  const FrozenGraph* frozen);

}  // namespace netclus

#endif  // NETCLUS_CORE_EPS_LINK_H_
