// Dendrogram: the merge history produced by hierarchical clustering.
#ifndef NETCLUS_CORE_DENDROGRAM_H_
#define NETCLUS_CORE_DENDROGRAM_H_

#include <vector>

#include "core/clustering.h"
#include "graph/types.h"

namespace netclus {

/// One agglomerative merge: the clusters containing points `a` and `b`
/// were joined at the given (single-link) distance.
struct Merge {
  PointId a = kInvalidPointId;
  PointId b = kInvalidPointId;
  double distance = 0.0;
};

/// \brief Merge history over `num_points` initial singleton clusters.
///
/// Merges recorded by Single-Link are nondecreasing in distance, except
/// that δ-heuristic pre-merges (all with distance <= δ) come first in
/// arbitrary order; flat cuts account for this by scanning all merges.
class Dendrogram {
 public:
  explicit Dendrogram(PointId num_points) : num_points_(num_points) {}

  void AddMerge(PointId a, PointId b, double distance) {
    merges_.push_back(Merge{a, b, distance});
  }

  PointId num_points() const { return num_points_; }
  const std::vector<Merge>& merges() const { return merges_; }

  /// Flat clustering obtained by applying every merge with distance <=
  /// `threshold`; components smaller than `min_size` become noise.
  /// Exactly the paper's remark: cutting at eps reproduces ε-Link.
  Clustering CutAtDistance(double threshold, uint32_t min_size = 1) const;

  /// Flat clustering with (at least) `k` clusters: merges are applied in
  /// ascending distance order until k components remain.
  Clustering CutAtCount(uint32_t k, uint32_t min_size = 1) const;

  /// Flat clustering at the shallowest level where at most `k` clusters
  /// of size >= `min_size` remain. Unlike CutAtCount, outlier singletons
  /// do not inflate the count — this is the "6 large clusters" reading of
  /// the paper's Fig. 11f.
  Clustering CutAtLargeClusterCount(uint32_t k, uint32_t min_size) const;

 private:
  PointId num_points_;
  std::vector<Merge> merges_;
};

}  // namespace netclus

#endif  // NETCLUS_CORE_DENDROGRAM_H_
