// Hierarchical clustering: the Single-Link algorithm (paper Section 4.4).
//
// Computes the exact single-link dendrogram over the network distance with
// one traversal of the graph. Two priority queues drive the run: P holds
// candidate cluster pairs with path-length upper bounds, Q holds network
// nodes keyed by their distance to the nearest cluster (a multi-source
// Dijkstra / network Voronoi expansion). A pair is merged only once the
// doubled distance of the current Q node reaches it — at that moment no
// shorter undiscovered connection can exist, because the two settled
// endpoints of a minimal inter-cluster path each lie within half its
// length (the Voronoi-boundary property).
//
// The δ heuristic (Section 4.4.2) immediately merges initial clusters
// closer than δ, shrinking the starting cluster count and both heaps; the
// dendrogram is then exact above δ.
#ifndef NETCLUS_CORE_SINGLE_LINK_H_
#define NETCLUS_CORE_SINGLE_LINK_H_

#include <limits>

#include "common/status.h"
#include "core/dendrogram.h"
#include "graph/network_view.h"

namespace netclus {

/// Options for SingleLinkCluster.
struct SingleLinkOptions {
  /// Pre-merge threshold of the scalability heuristic; 0 disables it.
  /// With delta > 0 the dendrogram is exact only above delta.
  double delta = 0.0;
  /// Stop once this many clusters remain (1 = full dendrogram).
  uint32_t stop_cluster_count = 1;
  /// Stop before any merge whose distance exceeds this (e.g. eps, to
  /// reproduce ε-Link per the paper's Section 5.1 remark).
  double stop_distance = std::numeric_limits<double>::infinity();
};

/// Size/cost counters (the δ-heuristic ablation reads these).
struct SingleLinkStats {
  size_t initial_clusters = 0;  ///< clusters after the δ pre-merge phase
  size_t max_pair_heap = 0;     ///< peak size of P
  size_t max_node_heap = 0;     ///< peak size of Q
  size_t nodes_expanded = 0;
};

/// Result: the dendrogram (including δ pre-merges, which carry their true
/// sub-δ distances) plus run statistics.
struct SingleLinkResult {
  Dendrogram dendrogram;
  SingleLinkStats stats;

  explicit SingleLinkResult(PointId n) : dendrogram(n) {}
};

/// Runs Single-Link over all points of `view`.
///
/// Deprecated legacy entry point: call
/// RunClustering(view, MakeSpec(options)) instead (netclus.h).
[[deprecated("use RunClustering(view, MakeSpec(options))")]]
Result<SingleLinkResult> SingleLinkCluster(const NetworkView& view,
                                           const SingleLinkOptions& options);

/// As above with an optional FrozenGraph snapshot of `view` (see
/// NetworkView::Freeze()): when non-null, the Voronoi expansion runs
/// over the snapshot's CSR arrays with no virtual dispatch. The
/// dendrogram and stats are bit-identical to the unfrozen run.
Result<SingleLinkResult> SingleLinkCluster(const NetworkView& view,
                                           const SingleLinkOptions& options,
                                           const FrozenGraph* frozen);

}  // namespace netclus

#endif  // NETCLUS_CORE_SINGLE_LINK_H_
