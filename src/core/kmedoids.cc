#include "core/kmedoids.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "graph/dijkstra.h"
#include "graph/frozen_graph.h"

namespace netclus {

namespace {

struct QEntry {
  double dist;
  NodeId node;
  int med;
  bool operator>(const QEntry& other) const { return dist > other.dist; }
};
using MedHeap = std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>>;

// Shared machinery of Medoid_Dist_Find / Inc_Medoid_Update and the
// point-assignment scan, with O(|V|) rollback snapshots for rejected swaps.
//
// Templated on the traversal graph: `graph` is either the view itself
// (compatibility path) or a FrozenGraph snapshot of it (de-virtualized
// CSR walk). Point positions and edge-point scans stay on the view;
// neighbor iteration and edge weights go through the graph. Both
// instantiations expand in the same order, so trajectories (rng draws,
// accept/reject sequence, final medoids) are bit-identical.
template <typename Graph>
class KMedoidsEngine {
 public:
  KMedoidsEngine(const NetworkView& view, const Graph& graph)
      : view_(view),
        graph_(graph),
        node_med_(view.num_nodes(), -1),
        node_dist_(view.num_nodes(), kInfDist) {}

  void SetMedoids(std::vector<PointId> medoids) {
    medoids_ = std::move(medoids);
    RefreshMedoidGeometry();
  }
  const std::vector<PointId>& medoids() const { return medoids_; }
  bool IsMedoid(PointId p) const { return medoid_set_.count(p) > 0; }

  /// Paper Fig. 4: concurrent Dijkstra from all medoids; every node ends
  /// up tagged with its nearest medoid and distance.
  void MedoidDistFind() {
    std::fill(node_med_.begin(), node_med_.end(), -1);
    std::fill(node_dist_.begin(), node_dist_.end(), kInfDist);
    MedHeap q;
    EnqueueMedoidSeeds(&q);
    ConcurrentExpansion(&q, /*allow_improve=*/false);
  }

  /// Paper Fig. 5: repair node tags after medoid slot `med_idx` changed
  /// its point (medoids_[med_idx] must already hold the new point).
  void IncMedoidUpdate(int med_idx) {
    // Unassign the replaced medoid's nodes first, then seed the frontier
    // from their neighbors that belong to surviving medoids.
    std::vector<NodeId> orphans;
    for (NodeId n = 0; n < view_.num_nodes(); ++n) {
      if (node_med_[n] == med_idx) {
        node_med_[n] = -1;
        node_dist_[n] = kInfDist;
        orphans.push_back(n);
      }
    }
    MedHeap q;
    for (NodeId n : orphans) {
      VisitNeighbors(graph_, n, [&](NodeId z, double w) {
        if (node_med_[z] >= 0) {
          q.push(QEntry{node_dist_[z] + w, n, node_med_[z]});
        }
      });
    }
    // Seed the new medoid's edge endpoints.
    const PointPos& pos = medoid_pos_[med_idx];
    double w = medoid_edge_w_[med_idx];
    q.push(QEntry{pos.offset, pos.u, med_idx});
    q.push(QEntry{w - pos.offset, pos.v, med_idx});
    ConcurrentExpansion(&q, /*allow_improve=*/true);
  }

  /// Equation (1): assigns every point to its nearest medoid via either
  /// endpoint of its edge or directly along the edge; returns the
  /// evaluation function R.
  double AssignPoints(std::vector<int>* assignment) {
    assignment->assign(view_.num_points(), kNoise);
    double cost = 0.0;
    std::vector<EdgePoint> pts;
    view_.ForEachPointGroup([&](NodeId u, NodeId v, PointId first,
                                uint32_t count) {
      (void)first;
      (void)count;
      double w = graph_.EdgeWeight(u, v);
      double du = node_dist_[u], dv = node_dist_[v];
      int mu = node_med_[u], mv = node_med_[v];
      auto it = edge_medoids_.find(EdgeKeyOf(u, v));
      view_.GetEdgePoints(u, v, &pts);
      for (const EdgePoint& ep : pts) {
        double best = kInfDist;
        int best_med = kNoise;
        if (mu >= 0 && du + ep.offset < best) {
          best = du + ep.offset;
          best_med = mu;
        }
        if (mv >= 0 && dv + (w - ep.offset) < best) {
          best = dv + (w - ep.offset);
          best_med = mv;
        }
        if (it != edge_medoids_.end()) {
          for (const auto& [mi, moff] : it->second) {
            double d = ep.offset > moff ? ep.offset - moff : moff - ep.offset;
            if (d < best) {
              best = d;
              best_med = mi;
            }
          }
        }
        (*assignment)[ep.id] = best_med;
        if (best_med != kNoise) cost += best;
      }
    });
    return cost;
  }

  /// A sound lower bound on the evaluation function after replacing
  /// medoid slot `med_idx` with `candidate`, from the accelerator's
  /// per-pair bounds: a point provably reachable from some new medoid
  /// (finite upper bound) contributes at least its smallest lower bound
  /// over the new medoid set; a point with no finite upper bound may be
  /// unreachable, in which case AssignPoints charges nothing for it, so
  /// it must contribute 0 here. Returns early (with a value > `cut`)
  /// once the accumulated bound proves the swap non-improving.
  double SwapCostLowerBound(int med_idx, PointId candidate,
                            const DistanceAccelerator& accel,
                            double cut) const {
    double lb_sum = 0.0;
    const size_t k = medoids_.size();
    const PointId n = view_.num_points();
    for (PointId p = 0; p < n; ++p) {
      double lb = kInfDist;
      double ub = kInfDist;
      for (size_t i = 0; i < k; ++i) {
        PointId m =
            i == static_cast<size_t>(med_idx) ? candidate : medoids_[i];
        lb = std::min(lb, accel.LowerBound(p, m));
        ub = std::min(ub, accel.UpperBound(p, m));
        if (lb == 0.0 && ub < kInfDist) break;  // contribution bound is 0
      }
      if (ub == kInfDist) continue;  // possibly unreachable: contributes 0
      lb_sum += lb;
      if (lb_sum > cut) return lb_sum;
    }
    return lb_sum;
  }

  // Swap bookkeeping: snapshot before a tentative swap, restore on reject.
  void Snapshot() {
    snap_med_ = node_med_;
    snap_dist_ = node_dist_;
    snap_medoids_ = medoids_;
  }
  void Rollback() {
    node_med_ = snap_med_;
    node_dist_ = snap_dist_;
    medoids_ = snap_medoids_;
    RefreshMedoidGeometry();
  }

  void ReplaceMedoid(int med_idx, PointId p) {
    medoids_[med_idx] = p;
    RefreshMedoidGeometry();
  }

 private:
  void RefreshMedoidGeometry() {
    size_t k = medoids_.size();
    medoid_pos_.resize(k);
    medoid_edge_w_.resize(k);
    edge_medoids_.clear();
    medoid_set_.clear();
    for (size_t i = 0; i < k; ++i) {
      medoid_pos_[i] = view_.PointPosition(medoids_[i]);
      medoid_edge_w_[i] = graph_.EdgeWeight(medoid_pos_[i].u, medoid_pos_[i].v);
      edge_medoids_[EdgeKeyOf(medoid_pos_[i].u, medoid_pos_[i].v)]
          .emplace_back(static_cast<int>(i), medoid_pos_[i].offset);
      medoid_set_.insert(medoids_[i]);
    }
  }

  void EnqueueMedoidSeeds(MedHeap* q) {
    for (size_t i = 0; i < medoids_.size(); ++i) {
      const PointPos& pos = medoid_pos_[i];
      double w = medoid_edge_w_[i];
      q->push(QEntry{pos.offset, pos.u, static_cast<int>(i)});
      q->push(QEntry{w - pos.offset, pos.v, static_cast<int>(i)});
    }
  }

  // Fig. 4's Concurrent_Expansion; with `allow_improve` it also accepts
  // strictly closer re-assignments (the Fig. 5 variant).
  void ConcurrentExpansion(MedHeap* q, bool allow_improve) {
    TraversalCounters& tc = LocalTraversalCounters();
    while (!q->empty()) {
      QEntry b = q->top();
      q->pop();
      ++tc.heap_pops;
      bool take = node_med_[b.node] < 0 ||
                  (allow_improve && b.dist < node_dist_[b.node]);
      if (!take) continue;
      ++tc.settled_nodes;
      node_med_[b.node] = b.med;
      node_dist_[b.node] = b.dist;
      VisitNeighbors(graph_, b.node, [&](NodeId z, double w) {
        double nd = b.dist + w;
        if (node_med_[z] < 0 || (allow_improve && nd < node_dist_[z])) {
          q->push(QEntry{nd, z, b.med});
          ++tc.heap_pushes;
        }
      });
    }
  }

  const NetworkView& view_;
  const Graph& graph_;
  std::vector<PointId> medoids_;
  std::vector<int> node_med_;        // nearest medoid index per node
  std::vector<double> node_dist_;    // distance to it
  std::vector<PointPos> medoid_pos_;
  std::vector<double> medoid_edge_w_;
  std::unordered_map<uint64_t, std::vector<std::pair<int, double>>>
      edge_medoids_;
  std::unordered_set<PointId> medoid_set_;
  std::vector<int> snap_med_;
  std::vector<double> snap_dist_;
  std::vector<PointId> snap_medoids_;
};

template <typename Graph>
Result<KMedoidsResult> RunOnce(const NetworkView& view, const Graph& graph,
                               const KMedoidsOptions& options,
                               std::vector<PointId> initial, Rng* rng,
                               const DistanceAccelerator* accel) {
  uint32_t k = static_cast<uint32_t>(initial.size());
  WallTimer total_timer;
  KMedoidsEngine<Graph> engine(view, graph);
  engine.SetMedoids(std::move(initial));

  KMedoidsResult result;
  WallTimer timer;
  engine.MedoidDistFind();
  std::vector<int> assignment;
  double cost = engine.AssignPoints(&assignment);
  result.stats.first_iteration_seconds = timer.ElapsedSeconds();

  uint32_t unsuccessful = 0;
  double swap_seconds_sum = 0.0;
  std::vector<int> tentative;
  // With k == N every point is a medoid and no swap candidate exists.
  while (k < view.num_points() &&
         unsuccessful < options.max_unsuccessful_swaps &&
         result.stats.attempted_swaps < options.max_swaps) {
    ++result.stats.attempted_swaps;
    int med_idx = static_cast<int>(rng->NextBounded(k));
    PointId candidate;
    do {
      candidate = static_cast<PointId>(rng->NextBounded(view.num_points()));
    } while (engine.IsMedoid(candidate));

    timer.Restart();
    if (accel != nullptr) {
      // Prune decisions must match the evaluated decision bit-for-bit:
      // the evaluation rejects when new_cost >= cost, so only prune when
      // the lower bound clears `cost` by more than the fp slack its own
      // summation could have introduced.
      double cut = cost + 1e-9 * std::max(1.0, cost);
      if (engine.SwapCostLowerBound(med_idx, candidate, *accel, cut) > cut) {
        swap_seconds_sum += timer.ElapsedSeconds();
        ++result.stats.pruned_swaps;
        ++unsuccessful;
        continue;
      }
    }
    engine.Snapshot();
    engine.ReplaceMedoid(med_idx, candidate);
    if (options.incremental_updates) {
      engine.IncMedoidUpdate(med_idx);
    } else {
      engine.MedoidDistFind();
    }
    double new_cost = engine.AssignPoints(&tentative);
    swap_seconds_sum += timer.ElapsedSeconds();

    if (new_cost < cost) {
      cost = new_cost;
      assignment.swap(tentative);
      unsuccessful = 0;
      ++result.stats.committed_swaps;
    } else {
      engine.Rollback();
      ++unsuccessful;
    }
  }
  if (result.stats.attempted_swaps > 0) {
    result.stats.avg_swap_seconds =
        swap_seconds_sum / result.stats.attempted_swaps;
  }
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  result.cost = cost;
  result.medoids = engine.medoids();
  result.clustering.assignment = std::move(assignment);
  result.clustering.num_clusters = static_cast<int>(k);
  return result;
}

}  // namespace

Result<KMedoidsResult> KMedoidsCluster(const NetworkView& view,
                                       const KMedoidsOptions& options) {
  return KMedoidsCluster(view, options, nullptr, nullptr);
}

Result<KMedoidsResult> KMedoidsCluster(const NetworkView& view,
                                       const KMedoidsOptions& options,
                                       const DistanceAccelerator* accel) {
  return KMedoidsCluster(view, options, accel, nullptr);
}

Result<KMedoidsResult> KMedoidsCluster(const NetworkView& view,
                                       const KMedoidsOptions& options,
                                       const DistanceAccelerator* accel,
                                       const FrozenGraph* frozen) {
  const bool fixed_initial = !options.initial_medoids.empty();
  if (fixed_initial) {
    if (options.initial_medoids.size() > view.num_points()) {
      return Status::InvalidArgument(
          "initial medoid set size must be in [1, N]");
    }
    for (PointId p : options.initial_medoids) {
      if (p >= view.num_points()) {
        return Status::InvalidArgument("initial medoid id out of range");
      }
    }
  } else if (options.k == 0 || options.k > view.num_points()) {
    return Status::InvalidArgument("k must be in [1, N]");
  }
  const uint32_t restarts =
      fixed_initial ? 1 : std::max<uint32_t>(1, options.num_restarts);

  // One restart per task. Restart r draws from Rng(DeriveSeed(seed, r)),
  // so its whole trajectory (initial sample + swap sequence) is a pure
  // function of (view, options, r) — independent of scheduling.
  std::vector<Result<KMedoidsResult>> runs(
      restarts, Status::Internal("restart did not run"));
  uint32_t threads =
      std::min<uint32_t>(ResolveNumThreads(options.num_threads), restarts);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  ParallelFor(pool ? &*pool : nullptr, restarts, [&](size_t r, uint32_t) {
    Rng rng(Rng::DeriveSeed(options.seed, r));
    std::vector<PointId> initial;
    if (fixed_initial) {
      initial = options.initial_medoids;
    } else {
      std::vector<uint64_t> sample =
          rng.SampleWithoutReplacement(view.num_points(), options.k);
      initial.assign(sample.begin(), sample.end());
    }
    runs[r] = frozen != nullptr
                  ? RunOnce(view, *frozen, options, std::move(initial), &rng,
                            accel)
                  : RunOnce(view, view, options, std::move(initial), &rng,
                            accel);
  });

  // Deterministic reduction: lowest cost wins, ties broken by lowest
  // restart index; total_seconds aggregates every restart's work.
  Result<KMedoidsResult> best = Status::Internal("no restart ran");
  double total_seconds = 0.0;
  for (uint32_t r = 0; r < restarts; ++r) {
    if (!runs[r].ok()) return runs[r];
    total_seconds += runs[r].value().stats.total_seconds;
    if (!best.ok() || runs[r].value().cost < best.value().cost) {
      best = std::move(runs[r]);
    }
  }
  best.value().stats.total_seconds = total_seconds;
  return best;
}

namespace {

template <typename Graph>
Result<KMedoidsResult> AssignToMedoidsImpl(
    const NetworkView& view, const Graph& graph,
    const std::vector<PointId>& medoids) {
  if (medoids.empty()) {
    return Status::InvalidArgument("medoid set must be non-empty");
  }
  KMedoidsEngine<Graph> engine(view, graph);
  engine.SetMedoids(medoids);
  engine.MedoidDistFind();
  KMedoidsResult result;
  result.cost = engine.AssignPoints(&result.clustering.assignment);
  result.medoids = medoids;
  result.clustering.num_clusters = static_cast<int>(medoids.size());
  return result;
}

}  // namespace

Result<KMedoidsResult> AssignToMedoids(const NetworkView& view,
                                       const std::vector<PointId>& medoids,
                                       const FrozenGraph* frozen) {
  return frozen != nullptr ? AssignToMedoidsImpl(view, *frozen, medoids)
                           : AssignToMedoidsImpl(view, view, medoids);
}

}  // namespace netclus
