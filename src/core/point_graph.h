// The Section 3.2 transformation: network-with-objects -> conventional
// weighted graph over the objects.
//
// G' has one node per object, and an edge (p, q) whenever some path from
// p to q passes through no other object; its weight is the length of the
// shortest such path. Shortest paths in G' between objects equal the
// network distances in G — which makes G' both a correctness oracle and
// the baseline the paper argues against: the transformation is expensive
//, and G' can be far denser than G (the paper's example: a ring with
// n objects becomes a clique of n(n-1)/2 edges).
#ifndef NETCLUS_CORE_POINT_GRAPH_H_
#define NETCLUS_CORE_POINT_GRAPH_H_

#include "common/status.h"
#include "graph/network.h"
#include "graph/network_view.h"

namespace netclus {

/// \brief The transformed graph plus construction statistics.
struct PointGraph {
  /// One node per object (node id == point id); edge weights are
  /// object-to-object path lengths avoiding intermediate objects.
  Network graph;
  /// Candidate object pairs examined (>= graph.num_edges(): parallel
  /// routes between the same pair collapse to the minimum).
  size_t candidate_edges = 0;
};

/// Builds G' by expanding the network around every object until blocked
/// by other objects. O(N * local expansion); exact.
Result<PointGraph> BuildPointGraph(const NetworkView& view);

}  // namespace netclus

#endif  // NETCLUS_CORE_POINT_GRAPH_H_
