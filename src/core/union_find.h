// Disjoint-set forest with union by size and path compression — the
// "weighted-union heuristic" the paper uses for efficient cluster merging
// in Single-Link.
#ifndef NETCLUS_CORE_UNION_FIND_H_
#define NETCLUS_CORE_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace netclus {

/// \brief Disjoint sets over elements 0..n-1.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n);

  /// Representative of the set containing `x` (with path compression).
  uint32_t Find(uint32_t x);

  /// Merges the sets of `a` and `b`; returns false when already merged.
  bool Union(uint32_t a, uint32_t b);

  /// Size of the set containing `x`.
  uint32_t SizeOf(uint32_t x) { return size_[Find(x)]; }

  uint32_t num_sets() const { return num_sets_; }
  uint32_t num_elements() const { return static_cast<uint32_t>(parent_.size()); }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  uint32_t num_sets_;
};

}  // namespace netclus

#endif  // NETCLUS_CORE_UNION_FIND_H_
