#include "core/interesting_levels.h"

#include <algorithm>

#include "common/stats.h"

namespace netclus {

std::vector<InterestingLevel> DetectInterestingLevels(
    const Dendrogram& dendrogram, const InterestingLevelOptions& options) {
  std::vector<double> dists;
  dists.reserve(dendrogram.merges().size());
  for (const Merge& m : dendrogram.merges()) dists.push_back(m.distance);
  std::sort(dists.begin(), dists.end());

  std::vector<InterestingLevel> levels;
  SlidingWindowMean window(std::max<size_t>(1, options.window));
  for (size_t i = 1; i < dists.size(); ++i) {
    double diff = dists[i] - dists[i - 1];
    if (window.full()) {
      double avg = window.mean();
      if (diff > options.min_difference &&
          diff > options.min_relative * dists[i - 1] &&
          diff > options.factor * avg) {
        InterestingLevel level;
        level.merge_index = i;
        level.distance_before = dists[i - 1];
        level.distance_after = dists[i];
        // Each recorded merge reduces the cluster count by one; after the
        // first i merges, num_points - i clusters remain.
        level.clusters_remaining =
            static_cast<uint32_t>(dendrogram.num_points() - i);
        level.jump_ratio = avg > 0.0 ? diff / avg : 0.0;
        levels.push_back(level);
      }
    }
    window.Add(diff);
  }
  return levels;
}

}  // namespace netclus
