// Data-driven parameter suggestions (paper Sections 4.3.2 and 4.4.2).
//
// "An appropriate value for ε may be hard to determine a priori. A
// possible way ... is to use a value determined by the user's experience,
// or by sampling on the network edges." Likewise δ for Single-Link's
// pre-merge phase "can be chosen by sampling on the dense edges of the
// network". These helpers implement both samplings.
#ifndef NETCLUS_CORE_PARAMETER_SELECTION_H_
#define NETCLUS_CORE_PARAMETER_SELECTION_H_

#include <cstdint>

#include "common/status.h"
#include "graph/network_view.h"

namespace netclus {

/// Options for SuggestEps.
struct EpsSuggestionOptions {
  /// Points sampled for nearest-neighbor distance measurement.
  uint32_t sample_size = 200;
  /// Quantile of the sampled NN distances taken as the base (robust
  /// against outliers, which have huge NN distances).
  double quantile = 0.9;
  /// Multiplier on the quantile; > 1 keeps chains connected across the
  /// sampled spread.
  double slack = 1.5;
  uint64_t seed = 1;
};

/// Suggests an eps for the density methods by sampling nearest-neighbor
/// network distances. Fails when the point set has fewer than 2 points.
Result<double> SuggestEps(const NetworkView& view,
                          const EpsSuggestionOptions& options);

/// Suggests a delta for Single-Link's scalability heuristic: the given
/// quantile of the consecutive same-edge point gaps (the "dense edge"
/// spacing). Fails when no edge holds two points.
Result<double> SuggestDelta(const NetworkView& view, double quantile);

}  // namespace netclus

#endif  // NETCLUS_CORE_PARAMETER_SELECTION_H_
