#include "core/brute_force.h"

#include <algorithm>
#include <cmath>

#include "core/union_find.h"
#include "graph/dijkstra.h"

namespace netclus {

std::vector<std::vector<double>> BruteNodeDistances(const Network& net) {
  NodeId n = net.num_nodes();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, kInfDist));
  for (NodeId i = 0; i < n; ++i) d[i][i] = 0.0;
  for (const Edge& e : net.Edges()) {
    d[e.u][e.v] = std::min(d[e.u][e.v], e.weight);
    d[e.v][e.u] = d[e.u][e.v];
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      if (d[i][k] == kInfDist) continue;
      for (NodeId j = 0; j < n; ++j) {
        double via = d[i][k] + d[k][j];
        if (via < d[i][j]) d[i][j] = via;
      }
    }
  }
  return d;
}

double BrutePointDistance(const Network& net, const PointSet& points,
                          const std::vector<std::vector<double>>& node_dist,
                          PointId p, PointId q) {
  PointPos pp = points.position(p);
  PointPos qq = points.position(q);
  double wp = net.EdgeWeight(pp.u, pp.v);
  double wq = net.EdgeWeight(qq.u, qq.v);
  double dl_p[2] = {pp.offset, wp - pp.offset};
  double dl_q[2] = {qq.offset, wq - qq.offset};
  NodeId np[2] = {pp.u, pp.v};
  NodeId nq[2] = {qq.u, qq.v};
  double best = kInfDist;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      best = std::min(best, dl_p[x] + node_dist[np[x]][nq[y]] + dl_q[y]);
    }
  }
  if (pp.u == qq.u && pp.v == qq.v) {
    best = std::min(best, std::fabs(pp.offset - qq.offset));
  }
  return best;
}

std::vector<std::vector<double>> BrutePointDistanceMatrix(
    const Network& net, const PointSet& points) {
  std::vector<std::vector<double>> nd = BruteNodeDistances(net);
  PointId n = points.size();
  std::vector<std::vector<double>> pd(n, std::vector<double>(n, 0.0));
  for (PointId i = 0; i < n; ++i) {
    for (PointId j = i + 1; j < n; ++j) {
      pd[i][j] = pd[j][i] = BrutePointDistance(net, points, nd, i, j);
    }
  }
  return pd;
}

Clustering BruteEpsComponents(const std::vector<std::vector<double>>& pd,
                              double eps, uint32_t min_sup) {
  PointId n = static_cast<PointId>(pd.size());
  UnionFind uf(n);
  for (PointId i = 0; i < n; ++i) {
    for (PointId j = i + 1; j < n; ++j) {
      if (pd[i][j] <= eps) uf.Union(i, j);
    }
  }
  Clustering out;
  out.assignment.resize(n);
  for (PointId p = 0; p < n; ++p) {
    out.assignment[p] = static_cast<int>(uf.Find(p));
  }
  NormalizeClustering(&out, min_sup);
  return out;
}

Dendrogram BruteSingleLink(const std::vector<std::vector<double>>& pd) {
  PointId n = static_cast<PointId>(pd.size());
  struct Pair {
    double d;
    PointId a, b;
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (PointId i = 0; i < n; ++i) {
    for (PointId j = i + 1; j < n; ++j) {
      if (pd[i][j] < kInfDist) pairs.push_back(Pair{pd[i][j], i, j});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.d < b.d; });
  Dendrogram dendro(n);
  UnionFind uf(n);
  for (const Pair& pr : pairs) {
    if (uf.Union(pr.a, pr.b)) dendro.AddMerge(pr.a, pr.b, pr.d);
  }
  return dendro;
}

double BruteMedoidAssign(const std::vector<std::vector<double>>& pd,
                         const std::vector<PointId>& medoids,
                         std::vector<int>* assignment) {
  PointId n = static_cast<PointId>(pd.size());
  assignment->assign(n, kNoise);
  double cost = 0.0;
  for (PointId p = 0; p < n; ++p) {
    double best = kInfDist;
    int best_m = kNoise;
    for (size_t m = 0; m < medoids.size(); ++m) {
      if (pd[p][medoids[m]] < best) {
        best = pd[p][medoids[m]];
        best_m = static_cast<int>(m);
      }
    }
    (*assignment)[p] = best_m;
    if (best_m != kNoise) cost += best;
  }
  return cost;
}

std::vector<bool> BruteCoreFlags(const std::vector<std::vector<double>>& pd,
                                 double eps, uint32_t min_pts) {
  PointId n = static_cast<PointId>(pd.size());
  std::vector<bool> core(n, false);
  for (PointId p = 0; p < n; ++p) {
    uint32_t count = 0;
    for (PointId q = 0; q < n; ++q) {
      if (pd[p][q] <= eps) ++count;
    }
    core[p] = count >= min_pts;
  }
  return core;
}

}  // namespace netclus
