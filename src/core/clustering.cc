#include "core/clustering.h"

#include <unordered_map>

namespace netclus {

void NormalizeClustering(Clustering* c, uint32_t min_size) {
  std::unordered_map<int, uint32_t> counts;
  for (int id : c->assignment) {
    if (id != kNoise) ++counts[id];
  }
  std::unordered_map<int, int> remap;
  int next = 0;
  for (int& id : c->assignment) {
    if (id == kNoise) continue;
    if (counts[id] < min_size) {
      id = kNoise;
      continue;
    }
    auto [it, inserted] = remap.emplace(id, next);
    if (inserted) ++next;
    id = it->second;
  }
  c->num_clusters = next;
}

}  // namespace netclus
