#include "core/point_graph.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "graph/dijkstra.h"

namespace netclus {

namespace {
struct HeapEntry {
  double dist;
  NodeId node;
  bool operator>(const HeapEntry& other) const { return dist > other.dist; }
};
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
}  // namespace

Result<PointGraph> BuildPointGraph(const NetworkView& view) {
  const PointId n = view.num_points();
  PointGraph out{Network(n), 0};
  std::unordered_map<uint64_t, double> best;  // point pair -> min weight
  auto candidate = [&](PointId p, PointId q, double w) {
    if (p == q) return;
    ++out.candidate_edges;
    uint64_t key = EdgeKeyOf(p, q);
    auto [it, inserted] = best.emplace(key, w);
    if (!inserted && w < it->second) it->second = w;
  };

  NodeScratch dist(view.num_nodes());
  std::vector<EdgePoint> pts;
  for (PointId p = 0; p < n; ++p) {
    PointPos pos = view.PointPosition(p);
    double w = view.EdgeWeight(pos.u, pos.v);
    view.GetEdgePoints(pos.u, pos.v, &pts);
    size_t idx = 0;
    while (idx < pts.size() && pts[idx].id != p) ++idx;

    dist.NewEpoch();
    MinHeap heap;
    // Along p's own edge: the adjacent object blocks, otherwise the
    // endpoint node seeds the expansion.
    if (idx > 0) {
      candidate(p, pts[idx - 1].id, pos.offset - pts[idx - 1].offset);
    } else {
      dist.Set(pos.u, pos.offset);
      heap.push(HeapEntry{pos.offset, pos.u});
    }
    if (idx + 1 < pts.size()) {
      candidate(p, pts[idx + 1].id, pts[idx + 1].offset - pos.offset);
    } else {
      dist.Set(pos.v, w - pos.offset);
      heap.push(HeapEntry{w - pos.offset, pos.v});
    }

    // Dijkstra over nodes; an edge holding objects blocks traversal and
    // instead yields a candidate to its nearest object.
    while (!heap.empty()) {
      auto [d, node] = heap.top();
      heap.pop();
      if (d > dist.Get(node)) continue;
      VisitNeighbors(view, node, [&](NodeId m, double we) {
        view.GetEdgePoints(node, m, &pts);
        if (!pts.empty()) {
          const EdgePoint& nearest =
              node < m ? pts.front() : pts.back();
          double dl = node < m ? nearest.offset : we - nearest.offset;
          candidate(p, nearest.id, d + dl);
          return;  // blocked
        }
        double nd = d + we;
        if (nd < dist.Get(m)) {
          dist.Set(m, nd);
          heap.push(HeapEntry{nd, m});
        }
      });
    }
  }
  for (const auto& [key, weight] : best) {
    if (weight <= 0.0) continue;  // coincident objects: zero-length link
    NETCLUS_RETURN_IF_ERROR(
        out.graph.AddEdge(EdgeKeyU(key), EdgeKeyV(key), weight));
  }
  return out;
}

}  // namespace netclus
