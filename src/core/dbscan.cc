#include "core/dbscan.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "graph/dijkstra.h"
#include "graph/network_distance.h"
#include "graph/workspace_pool.h"

namespace netclus {

Result<Clustering> DbscanCluster(const NetworkView& view,
                                 const DbscanOptions& options) {
  return DbscanCluster(view, options, nullptr, nullptr);
}

Result<Clustering> DbscanCluster(const NetworkView& view,
                                 const DbscanOptions& options,
                                 const DistanceAccelerator* accel) {
  return DbscanCluster(view, options, accel, nullptr);
}

Result<Clustering> DbscanCluster(const NetworkView& view,
                                 const DbscanOptions& options,
                                 const DistanceAccelerator* accel,
                                 const FrozenGraph* frozen) {
  if (!(options.eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (options.min_pts == 0) {
    return Status::InvalidArgument("min_pts must be positive");
  }
  const PointId n = view.num_points();
  Clustering out;
  out.assignment.assign(n, kNoise);
  std::vector<bool> visited(n, false);  // a range query was issued for p
  int next_cluster = 0;

  // The serial algorithm issues exactly one eps-range query per point,
  // and each query is an independent bounded expansion — the
  // embarrassingly-parallel hot path. With > 1 worker all N
  // neighborhoods are computed up front (each worker leasing one
  // TraversalWorkspace), and the growth phase below consumes the cache;
  // since a neighborhood is a pure function of (view, p, eps), the
  // result is bit-identical to the serial on-the-fly run.
  const uint32_t threads =
      std::min<uint32_t>(ResolveNumThreads(options.num_threads), n > 0 ? n : 1);
  const bool precomputed = threads > 1;
  std::vector<std::vector<RangeResult>> cache;
  if (precomputed) {
    cache.resize(n);
    ThreadPool pool(threads);
    WorkspacePool workspaces(view.num_nodes());
    std::vector<WorkspacePool::Lease> leases;
    leases.reserve(pool.size());
    for (uint32_t w = 0; w < pool.size(); ++w) {
      leases.push_back(workspaces.Acquire());
    }
    // The snapshot is immutable, so all workers share it read-only.
    pool.ParallelFor(n, [&](size_t p, uint32_t worker) {
      if (frozen != nullptr) {
        RangeQuery(view, *frozen, static_cast<PointId>(p), options.eps,
                   leases[worker].get(), accel, &cache[p]);
      } else {
        RangeQuery(view, static_cast<PointId>(p), options.eps,
                   leases[worker].get(), accel, &cache[p]);
      }
    });
  }

  std::optional<TraversalWorkspace> serial_ws;
  if (!precomputed) serial_ws.emplace(view.num_nodes());
  std::vector<RangeResult> buffer;
  auto neighborhood = [&](PointId p) -> const std::vector<RangeResult>& {
    if (precomputed) return cache[p];
    if (frozen != nullptr) {
      RangeQuery(view, *frozen, p, options.eps, &*serial_ws, accel, &buffer);
    } else {
      RangeQuery(view, p, options.eps, &*serial_ws, accel, &buffer);
    }
    return buffer;
  };

  for (PointId p = 0; p < n; ++p) {
    if (visited[p]) continue;
    visited[p] = true;
    const std::vector<RangeResult>& seed_hood = neighborhood(p);
    if (seed_hood.size() < options.min_pts) continue;  // noise (for now)

    int cluster_id = next_cluster++;
    out.assignment[p] = cluster_id;
    std::deque<PointId> seeds;
    for (const RangeResult& r : seed_hood) {
      if (r.id != p) seeds.push_back(r.id);
    }
    while (!seeds.empty()) {
      PointId q = seeds.front();
      seeds.pop_front();
      if (out.assignment[q] == kNoise) {
        out.assignment[q] = cluster_id;  // border or not-yet-expanded point
      } else if (out.assignment[q] != cluster_id) {
        continue;  // already claimed by an earlier cluster (border point)
      }
      if (visited[q]) continue;
      visited[q] = true;
      const std::vector<RangeResult>& hood = neighborhood(q);
      if (hood.size() >= options.min_pts) {
        // q is core: its whole neighborhood is density-reachable.
        for (const RangeResult& r : hood) {
          if (out.assignment[r.id] == kNoise || !visited[r.id]) {
            seeds.push_back(r.id);
          }
        }
      }
    }
  }
  NormalizeClustering(&out);
  return out;
}

}  // namespace netclus
