#include "core/dbscan.h"

#include <deque>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/network_distance.h"

namespace netclus {

Result<Clustering> DbscanCluster(const NetworkView& view,
                                 const DbscanOptions& options) {
  if (!(options.eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (options.min_pts == 0) {
    return Status::InvalidArgument("min_pts must be positive");
  }
  const PointId n = view.num_points();
  Clustering out;
  out.assignment.assign(n, kNoise);
  std::vector<bool> visited(n, false);  // a range query was issued for p
  NodeScratch scratch(view.num_nodes());
  std::vector<RangeResult> neighborhood;
  int next_cluster = 0;

  for (PointId p = 0; p < n; ++p) {
    if (visited[p]) continue;
    visited[p] = true;
    RangeQuery(view, p, options.eps, &scratch, &neighborhood);
    if (neighborhood.size() < options.min_pts) continue;  // noise (for now)

    int cluster_id = next_cluster++;
    out.assignment[p] = cluster_id;
    std::deque<PointId> seeds;
    for (const RangeResult& r : neighborhood) {
      if (r.id != p) seeds.push_back(r.id);
    }
    while (!seeds.empty()) {
      PointId q = seeds.front();
      seeds.pop_front();
      if (out.assignment[q] == kNoise) {
        out.assignment[q] = cluster_id;  // border or not-yet-expanded point
      } else if (out.assignment[q] != cluster_id) {
        continue;  // already claimed by an earlier cluster (border point)
      }
      if (visited[q]) continue;
      visited[q] = true;
      RangeQuery(view, q, options.eps, &scratch, &neighborhood);
      if (neighborhood.size() >= options.min_pts) {
        // q is core: its whole neighborhood is density-reachable.
        for (const RangeResult& r : neighborhood) {
          if (out.assignment[r.id] == kNoise || !visited[r.id]) {
            seeds.push_back(r.id);
          }
        }
      }
    }
  }
  NormalizeClustering(&out);
  return out;
}

}  // namespace netclus
