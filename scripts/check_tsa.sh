#!/bin/sh
# check_tsa.sh: proves the compile-time half of the lock discipline.
#
# The discipline has two enforcement layers (see src/common/mutex.h and
# DESIGN.md section 14): clang Thread Safety Analysis at compile time,
# and the lock-rank deadlock detector at runtime (tests/mutex_test.cc).
# This script is the compile-time proof, in two steps:
#
#   1. Negative-compile harness over tests/tsa/:
#      - clean_control.cc MUST compile (otherwise the harness itself is
#        broken and a failing violation snippet proves nothing);
#      - every violation_*.cc MUST fail to compile, AND the diagnostic
#        must actually come from -Wthread-safety (a snippet dying to a
#        typo would otherwise pass as a false negative).
#   2. Full-tree build with clang, -Wthread-safety promoted to an error:
#      every annotated subsystem in src/ must analyze clean.
#
# Clang is required (gcc has no thread-safety analysis); on toolchains
# without it the script prints a notice and exits 0 — the runtime
# detector and the netclus-lint no-raw-mutex rule still hold the line.
# Point NETCLUS_CLANGXX at a specific clang++ to override lookup.
set -u
cd "$(dirname "$0")/.."

CLANGXX=${NETCLUS_CLANGXX:-clang++}
if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "check_tsa: $CLANGXX not found; skipping thread-safety analysis" \
       "(runtime lock-rank detector + netclus-lint no-raw-mutex rule" \
       "still enforce the discipline)"
  exit 0
fi

failures=0
fail() {
  printf 'check_tsa: %s\n' "$*" >&2
  failures=$((failures + 1))
}

TSA_FLAGS="-std=c++20 -Isrc -Wthread-safety -Werror -fsyntax-only"

# --- Layer 1a: the clean control must compile -------------------------
echo "check_tsa: [1a] positive control tests/tsa/clean_control.cc"
# shellcheck disable=SC2086 — TSA_FLAGS is a deliberate word list.
if ! "$CLANGXX" $TSA_FLAGS tests/tsa/clean_control.cc; then
  fail "clean_control.cc failed to compile — harness broken, violation results are meaningless"
fi

# --- Layer 1b: every seeded violation must be rejected ----------------
for f in tests/tsa/violation_*.cc; do
  echo "check_tsa: [1b] seeded violation $f must fail"
  # shellcheck disable=SC2086
  out=$("$CLANGXX" $TSA_FLAGS "$f" 2>&1)
  status=$?
  if [ "$status" -eq 0 ]; then
    fail "$f compiled clean — the analysis missed a seeded violation"
  elif ! printf '%s\n' "$out" | grep -q 'thread-safety'; then
    fail "$f failed for the wrong reason (no -Wthread-safety diagnostic):
$out"
  fi
done

# --- Layer 2: full-tree clang build, -Wthread-safety as errors --------
# A dedicated build tree: the default build/ belongs to the host
# toolchain and must not be reconfigured under it. -Werror is already on
# by default (NETCLUS_WERROR), which promotes -Wthread-safety findings
# to build failures.
echo "check_tsa: [2] full-tree clang build with -Wthread-safety -Werror"
GEN=""
if command -v ninja >/dev/null 2>&1 && [ ! -f build-tsa/CMakeCache.txt ]; then
  GEN="-G Ninja"
fi
# shellcheck disable=SC2086 — GEN is empty or a flag pair.
if ! cmake -B build-tsa -S . $GEN \
       -DCMAKE_CXX_COMPILER="$CLANGXX" >/dev/null; then
  fail "cmake configure with $CLANGXX failed"
elif ! cmake --build build-tsa -j "$(nproc)"; then
  fail "full-tree clang build reported thread-safety (or other) errors"
fi

if [ "$failures" -gt 0 ]; then
  echo "check_tsa: FAILED ($failures finding(s))" >&2
  exit 1
fi
echo "check_tsa: OK (control compiled; all seeded violations rejected; tree analyzes clean)"
