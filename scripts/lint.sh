#!/bin/sh
# netclus-lint: static policy checks for the netclus tree.
#
# Two layers:
#   1. clang-tidy with the repo's .clang-tidy config, when clang-tidy is
#      installed (it consumes build/compile_commands.json, configuring
#      the build tree if needed). Skipped with a notice otherwise.
#   2. grep-based netclus-lint rules that encode house policy no
#      general-purpose tool checks:
#        - no raw assert() / <cassert> in src/ — failures must go
#          through NETCLUS_CHECK (fatal invariants) or Status (fallible
#          paths, e.g. I/O) so release builds keep their guarantees;
#        - no naked new / delete — ownership lives in containers and
#          smart pointers. The one sanctioned form is
#          std::unique_ptr<T>(new T(...)) where T's constructor is
#          private and std::make_unique cannot reach it;
#        - Status and Result<T> must stay [[nodiscard]] so ignored
#          fallible calls are compile errors under -Werror;
#        - header guards must spell NETCLUS_<PATH>_H_ so a moved header
#          cannot silently shadow another;
#        - no raw std::mutex / lock_guard / unique_lock /
#          condition_variable / shared_mutex in src/ outside
#          common/mutex.h. All locking goes through the annotated
#          netclus::Mutex wrappers: a raw primitive is invisible to
#          clang's thread-safety analysis AND to the runtime lock-rank
#          deadlock detector, so it silently re-opens both the
#          data-race and the lock-cycle holes this layer closes. New
#          code must take a rank from common/mutex.h's lock_rank table
#          (documented in DESIGN.md section 14);
#        - raw POSIX socket syscalls/headers are confined to src/net/ —
#          everything else uses the net/socket.h RAII wrappers so EINTR
#          retries, timeout mapping, and fd lifetimes stay in one place;
#        - the query vocabulary (src/server/query.h) and the wire layer
#          (src/net/) speak stable ObjectIds only — a raw PointId there
#          would leak epoch-local dense indices to clients.
#
# Exits non-zero if any layer reports a finding.
set -u
cd "$(dirname "$0")/.."

failures=0
fail() {
  printf 'lint: %s\n' "$*" >&2
  failures=$((failures + 1))
}

# --- clang-tidy (optional layer) --------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f build/compile_commands.json ]; then
    # Same generator logic as scripts/run_all.sh: an existing build tree
    # keeps whatever generator configured it (forcing -G Ninja onto a
    # Makefiles tree is a hard CMake error); a fresh tree prefers Ninja.
    if [ -f build/CMakeCache.txt ]; then
      cmake -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    else
      cmake -B build -G Ninja -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
  fi
  echo "lint: clang-tidy over src/ (WarningsAsErrors, see .clang-tidy)"
  # shellcheck disable=SC2046 — source paths contain no whitespace.
  if ! clang-tidy --quiet -p build $(find src -name '*.cc' | sort); then
    fail "clang-tidy reported findings"
  fi
else
  echo "lint: clang-tidy not installed; skipping (netclus-lint rules still run)"
fi

# --- netclus-lint (always-on layer) -----------------------------------
for f in $(find src -name '*.h' -o -name '*.cc' | sort); do
  # Strip // comments first so prose mentioning "new" or "assert" does
  # not trip the code-pattern rules.
  stripped=$(sed 's@//.*@@' "$f")

  hits=$(printf '%s\n' "$stripped" |
    grep -nE '(^|[^[:alnum:]_])assert[[:space:]]*\(|<cassert>' |
    grep -v 'static_assert' || true)
  if [ -n "$hits" ]; then
    fail "$f: raw assert()/<cassert>; use NETCLUS_CHECK/NETCLUS_DCHECK or return a Status
$hits"
  fi

  hits=$(printf '%s\n' "$stripped" |
    grep -nE '(^|[^[:alnum:]_])new($|[^[:alnum:]_])' |
    grep -vE 'unique_ptr<[A-Za-z_:[:space:]]+>\(new ' || true)
  if [ -n "$hits" ]; then
    fail "$f: naked new; own memory via containers/smart pointers (unique_ptr<T>(new T) is allowed only for private constructors)
$hits"
  fi

  hits=$(printf '%s\n' "$stripped" |
    grep -nE '(^|[^[:alnum:]_])delete($|[^[:alnum:]_])' |
    grep -vE '=[[:space:]]*delete' || true)
  if [ -n "$hits" ]; then
    fail "$f: naked delete; ownership must be automatic
$hits"
  fi
done

# Lock-discipline tripwire: raw standard-library synchronization
# primitives bypass both the clang thread-safety annotations and the
# runtime lock-rank deadlock detector; src/common/mutex.{h,cc} is the
# one sanctioned wrapper over them.
for f in $(find src -name '*.h' -o -name '*.cc' | sort); do
  case "$f" in
    src/common/mutex.h|src/common/mutex.cc) continue ;;
  esac
  stripped=$(sed 's@//.*@@' "$f")
  hits=$(printf '%s\n' "$stripped" |
    grep -nE 'std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable|condition_variable_any)($|[^[:alnum:]_])' || true)
  if [ -n "$hits" ]; then
    fail "$f: raw std synchronization primitive; use netclus::Mutex/MutexLock/CondVar from common/mutex.h (annotated for clang TSA + ranked for the deadlock detector)
$hits"
  fi
  hits=$(printf '%s\n' "$stripped" |
    grep -nE '#include[[:space:]]*<(mutex|shared_mutex|condition_variable)>' || true)
  if [ -n "$hits" ]; then
    fail "$f: direct <mutex>/<shared_mutex>/<condition_variable> include; include \"common/mutex.h\" instead
$hits"
  fi
done

# Traversal layering tripwire: the clustering algorithms in src/core/
# must reach the Dijkstra substrate only through the graph-layer entry
# points (PointNetworkDistance / RangeQuery) or a DistanceAccelerator —
# a direct expansion call would bypass the accelerator hooks and the
# traversal counters. The one sanctioned caller is validate.cc, whose
# oracles must stay independent of the accelerated paths they audit.
for f in $(find src/core -name '*.h' -o -name '*.cc' | sort); do
  [ "$f" = "src/core/validate.cc" ] && continue
  stripped=$(sed 's@//.*@@' "$f")
  hits=$(printf '%s\n' "$stripped" |
    grep -nE 'DijkstraExpandBounded[[:space:]]*\(|DijkstraDistances[[:space:]]*\(' || true)
  if [ -n "$hits" ]; then
    fail "$f: direct Dijkstra expansion from src/core/; go through PointNetworkDistance/RangeQuery (or a DistanceAccelerator) so index hooks and traversal counters stay wired
$hits"
  fi
done

# De-virtualization tripwire: traversal inner loops in src/core/ and
# src/index/ must iterate neighbors through the template adapter
# VisitNeighbors(graph, n, fn) — which inlines the FrozenGraph CSR walk
# — never through the virtual NetworkView::ForEachNeighbor, and must
# never take a settle callback as std::function (type erasure defeats
# the inlining the snapshot exists for). The std::function compat
# wrappers live in src/graph/ only.
for f in $(find src/core src/index -name '*.h' -o -name '*.cc' | sort); do
  stripped=$(sed 's@//.*@@' "$f")
  hits=$(printf '%s\n' "$stripped" |
    grep -nE 'ForEachNeighbor[[:space:]]*\(' || true)
  if [ -n "$hits" ]; then
    fail "$f: ForEachNeighbor call outside src/graph/; traverse via VisitNeighbors(graph, n, fn) so the FrozenGraph CSR path stays inlined
$hits"
  fi
  hits=$(printf '%s\n' "$stripped" |
    grep -nE 'std::function<(SettleAction|bool)[[:space:]]*\(' || true)
  if [ -n "$hits" ]; then
    fail "$f: std::function settle callback outside src/graph/; pass the functor as a template parameter (see DijkstraExpandKernel)
$hits"
  fi
done

# Socket-confinement tripwire: raw POSIX socket syscalls and their
# headers live in src/net/ only. Everywhere else talks to the network
# through net/socket.h's RAII wrappers (which own EINTR retries,
# MSG_NOSIGNAL, timeout-errno mapping, and fd lifetimes) or the
# client/server layers above them — a stray socket() elsewhere would
# re-open every one of those holes and dodge the net.* counters.
for f in $(find src tests examples bench -name '*.h' -o -name '*.cc' -o -name '*.cpp' | sort); do
  case "$f" in src/net/*) continue ;; esac
  stripped=$(sed 's@//.*@@' "$f")
  hits=$(printf '%s\n' "$stripped" |
    grep -nE '#include[[:space:]]*<(sys/socket\.h|netinet/in\.h|netinet/tcp\.h|arpa/inet\.h|netdb\.h)>' || true)
  if [ -n "$hits" ]; then
    fail "$f: raw socket header outside src/net/; use net/socket.h (RAII fds, EINTR retries, timeout mapping)
$hits"
  fi
  hits=$(printf '%s\n' "$stripped" |
    grep -nE '(^|[^[:alnum:]_:.])(socket|bind|listen|accept|connect|setsockopt|getsockname|getaddrinfo|recvfrom|sendto)[[:space:]]*\(' || true)
  if [ -n "$hits" ]; then
    fail "$f: raw socket syscall outside src/net/; go through net/socket.h's Socket/ListenSocket wrappers
$hits"
  fi
done

# Identity-boundary tripwire: the public query vocabulary
# (src/server/query.h) and the wire layer (src/net/) speak stable
# ObjectIds only. A raw PointId there would leak dense epoch-local
# indices to clients, where they go stale at the next publish —
# exactly the bug the identity map exists to prevent (DESIGN.md
# section 16). Translation happens inside the server, against the
# epoch snapshot that resolved the query.
for f in src/server/query.h $(find src/net -name '*.h' -o -name '*.cc' | sort); do
  stripped=$(sed 's@//.*@@' "$f")
  hits=$(printf '%s\n' "$stripped" |
    grep -nE '(^|[^[:alnum:]_])(PointId|kInvalidPointId)($|[^[:alnum:]_])' || true)
  if [ -n "$hits" ]; then
    fail "$f: raw PointId at the identity boundary; query payloads and the wire speak stable ObjectIds (translate inside the server against the resolving epoch)
$hits"
  fi
done

# Header guards: src/foo/bar.h must guard with NETCLUS_FOO_BAR_H_.
for f in $(find src -name '*.h' | sort); do
  rel=${f#src/}
  guard="NETCLUS_$(printf '%s' "${rel%.h}" | tr 'a-z/.' 'A-Z__')_H_"
  if ! grep -q "^#ifndef ${guard}\$" "$f" ||
     ! grep -q "^#define ${guard}\$" "$f"; then
    fail "$f: header guard must be ${guard}"
  fi
done

# Legacy-entry tripwire: the per-algorithm convenience overloads
# (KMedoidsCluster & friends) are deprecated in favor of
# RunClustering(view, MakeSpec(options)). tests/compat/ is the one
# place that still exercises them (equivalence coverage); everything
# else in tests/, examples/ and bench/ must go through the unified
# entry. A file may opt out with a `netclus-lint: allow-legacy-entry`
# comment when it deliberately times a non-deprecated engine overload.
for f in $(find tests examples bench -name '*.h' -o -name '*.cc' -o -name '*.cpp' | sort); do
  case "$f" in tests/compat/*) continue ;; esac
  grep -q 'netclus-lint: allow-legacy-entry' "$f" && continue
  stripped=$(sed 's@//.*@@' "$f")
  hits=$(printf '%s\n' "$stripped" |
    grep -nE '(^|[^[:alnum:]_])(KMedoidsCluster|EpsLinkCluster|DbscanCluster|SingleLinkCluster)[[:space:]]*\(' || true)
  if [ -n "$hits" ]; then
    fail "$f: legacy per-algorithm entry point; call RunClustering(view, MakeSpec(options)) (tests/compat/ is the only sanctioned caller; see also 'netclus-lint: allow-legacy-entry')
$hits"
  fi
done

# The whole ignored-Status story hangs on these two annotations; make
# sure a refactor cannot drop them silently.
if ! grep -q 'class \[\[nodiscard\]\] Status' src/common/status.h; then
  fail "src/common/status.h: Status lost its [[nodiscard]]"
fi
if ! grep -q 'class \[\[nodiscard\]\] Result' src/common/status.h; then
  fail "src/common/status.h: Result<T> lost its [[nodiscard]]"
fi

if [ "$failures" -gt 0 ]; then
  echo "lint: FAILED ($failures finding(s))" >&2
  exit 1
fi
echo "lint: OK"
