#!/bin/sh
# Builds everything, runs the test suite, and regenerates every paper
# table/figure. Outputs land in test_output.txt and bench_output.txt at
# the repository root.
#
# NETCLUS_BENCH_SCALE (default 0.1) selects the fraction of the paper's
# published dataset sizes the harnesses run at. NETCLUS_BENCH_THREADS
# (default 1) sets the worker count the harnesses hand to the execution
# engine.
#
# `scripts/run_all.sh tsan` instead builds a ThreadSanitizer
# configuration in build-tsan and runs the concurrency-sensitive tests
# (thread pool, parallel restarts/range queries, determinism) under it.
#
# `scripts/run_all.sh asan` builds an AddressSanitizer configuration in
# build-asan and runs the storage + fault-injection + corruption suites —
# the paths that chew on deliberately damaged bytes — under it.
set -e
cd "$(dirname "$0")/.."

if [ "${1:-}" = "asan" ]; then
  cmake -B build-asan -G Ninja -DNETCLUS_SANITIZE=address
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure \
    -R 'Storage|Buffer|Checksum|Crc32c|FaultInjection|FaultSoak|Corruption|Bptree|NetworkStore|TextIo' \
    2>&1 | tee asan_output.txt
  exit 0
fi

if [ "${1:-}" = "tsan" ]; then
  cmake -B build-tsan -G Ninja -DNETCLUS_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure \
    -R 'ThreadPool|WorkspacePool|Parallel|Determin|Restart' \
    2>&1 | tee tsan_output.txt
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
