#!/bin/sh
# Builds everything, runs the test suite, and regenerates every paper
# table/figure. Outputs land in test_output.txt and bench_output.txt at
# the repository root.
#
# NETCLUS_BENCH_SCALE (default 0.1) selects the fraction of the paper's
# published dataset sizes the harnesses run at. NETCLUS_BENCH_THREADS
# (default 1) sets the worker count the harnesses hand to the execution
# engine.
#
# `scripts/run_all.sh tsan` instead builds a ThreadSanitizer
# configuration in build-tsan and runs the concurrency-sensitive tests
# (thread pool, parallel restarts/range queries, determinism) under it.
#
# `scripts/run_all.sh asan` builds an AddressSanitizer configuration in
# build-asan and runs the storage + fault-injection + corruption suites —
# the paths that chew on deliberately damaged bytes — under it.
#
# `scripts/run_all.sh ubsan` builds an UndefinedBehaviorSanitizer
# configuration (-fno-sanitize-recover=all, so any UB is a hard test
# failure) in build-ubsan and runs the core algorithm suites under it.
#
# `scripts/run_all.sh validate` builds with -DNETCLUS_VALIDATE=ON in
# build-validate — every RunClustering re-verifies its result with the
# core/validate.h invariant validators — and runs the full test suite.
#
# `scripts/run_all.sh lint` runs scripts/lint.sh (clang-tidy when
# installed, plus the grep-based netclus-lint policy rules) and fails on
# any finding.
#
# `scripts/run_all.sh tsa` runs scripts/check_tsa.sh: clang's
# -Wthread-safety analysis over the negative-compile snippets in
# tests/tsa/ (seeded lock-discipline violations must be rejected) and
# then the whole tree, writing tsa_output.txt. Skips with a notice when
# no clang is installed (gcc has no thread-safety analysis).
#
# `scripts/run_all.sh bench-smoke` builds the default configuration and
# runs the minutes-scale bench_smoke harness (distance-index on/off
# contrasts on a small generated network) plus the frozen_traversal
# contrast (FrozenGraph snapshot vs live view: identical counters,
# >= 1.3x speedup) and the server_throughput harness (queries/sec at
# 1/4/8 workers + p99 queue wait, with a hardware-aware 1->4 worker
# scaling gate), leaving machine-readable BENCH_*.json files at the
# repository root.
#
# `scripts/run_all.sh server-smoke` builds the default configuration,
# runs the query-server test suites (vocabulary, epoch manager,
# QueryServer), an end-to-end netclus_cli serve pass with replay
# validation on, and the server_throughput bench.
#
# `scripts/run_all.sh net-smoke` builds the default configuration, runs
# the wire-codec and socket front-end suites, serves a generated town on
# an ephemeral TCP port, drives it with the netclus_cli query client
# (client-side replay against the inline path), and runs the
# net_throughput bench (loopback qps + p99 RTT vs in-process,
# BENCH_net.json). Both ends must report zero replay mismatches.
#
# `scripts/run_all.sh chaos-smoke` builds the default configuration and
# runs the resilience suites (mutation WAL, chaos soak, deadline &
# cancellation) plus a netclus_cli serve pass with a durable WAL and a
# per-query deadline, restarted once on the same log to prove crash
# recovery end to end.
#
# The default mode is the full verify flow: lint, then the tsa check
# (skips cleanly without clang), then build + tests + benches, then the
# ubsan configuration over the core algorithm suites.
set -e
cd "$(dirname "$0")/.."

# Configures the default build tree. Prefer Ninja on a fresh checkout,
# but an existing build/ keeps whatever generator created it (the tier-1
# verify flow configures it with the platform default).
configure_build() {
  if [ -f build/CMakeCache.txt ]; then
    cmake -B build
  else
    cmake -B build -G Ninja
  fi
}

if [ "${1:-}" = "lint" ]; then
  exec sh scripts/lint.sh
fi

# Note: no `| tee` here — under `set -e` a pipeline's status is tee's,
# which would swallow a check_tsa.sh failure. Redirect, then replay.
run_tsa() {
  if sh scripts/check_tsa.sh > tsa_output.txt 2>&1; then
    cat tsa_output.txt
  else
    cat tsa_output.txt
    echo "run_all: tsa check failed (see tsa_output.txt)" >&2
    exit 1
  fi
}

if [ "${1:-}" = "tsa" ]; then
  run_tsa
  exit 0
fi

if [ "${1:-}" = "ubsan" ]; then
  cmake -B build-ubsan -G Ninja -DNETCLUS_SANITIZE=undefined
  cmake --build build-ubsan
  ctest --test-dir build-ubsan --output-on-failure \
    -R 'KMedoids|EpsLink|Dbscan|SingleLink|Dendrogram|Dijkstra|RangeQuery|Knn|DirectDistance|PointDistance|InterestingLevels|Optics|Hierarchy|Validate|NetclusApi|Integration|Index|DistanceCache|LandmarkOracle|Voronoi|Frozen|Wal|Checkpoint|Incremental|Cancel|Deadline|WireCodec|WireFrame' \
    2>&1 | tee ubsan_output.txt
  exit 0
fi

if [ "${1:-}" = "validate" ]; then
  cmake -B build-validate -G Ninja -DNETCLUS_VALIDATE=ON
  cmake --build build-validate
  ctest --test-dir build-validate --output-on-failure \
    2>&1 | tee validate_output.txt
  exit 0
fi

if [ "${1:-}" = "asan" ]; then
  cmake -B build-asan -G Ninja -DNETCLUS_SANITIZE=address
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure \
    -R 'Storage|Buffer|Checksum|Crc32c|FaultInjection|FaultSoak|Corruption|Bptree|NetworkStore|TextIo' \
    2>&1 | tee asan_output.txt
  exit 0
fi

if [ "${1:-}" = "tsan" ]; then
  cmake -B build-tsan -G Ninja -DNETCLUS_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure \
    -R 'ThreadPool|WorkspacePool|Parallel|Determin|Restart|DistanceCache|EpochManager|QueryServer|Wal|Checkpoint|Incremental|Chaos|Deadline|Cancel|Mutex|CondVar|TcpServerLoopback|NetClient|NetSoak|NetStats' \
    2>&1 | tee tsan_output.txt
  exit 0
fi

if [ "${1:-}" = "server-smoke" ]; then
  configure_build
  cmake --build build
  ctest --test-dir build --output-on-failure \
    -R 'QueryVocabulary|EpochManager|QueryServer' \
    2>&1 | tee server_smoke_output.txt
  # End-to-end: generate a town, serve it with concurrent clients and
  # mutating epochs, with every served batch replay-validated against
  # the inline path.
  ./build/examples/netclus_cli generate --nodes 1500 --points 3000 \
    --clusters 6 --seed 7 --out /tmp/netclus_serve_smoke.net \
    2>&1 | tee -a server_smoke_output.txt
  ./build/examples/netclus_cli serve --in /tmp/netclus_serve_smoke.net \
    --workers 4 --clients 4 --queries 2000 --mutations 12 --validate on \
    2>&1 | tee -a server_smoke_output.txt
  ./build/bench/server_throughput 2>&1 | tee -a server_smoke_output.txt
  ls BENCH_server.json
  exit 0
fi

if [ "${1:-}" = "net-smoke" ]; then
  configure_build
  cmake --build build
  ctest --test-dir build --output-on-failure \
    -R 'WireCodec|WireFrame|TcpServerLoopback|NetClient|NetSoak|NetStats' \
    2>&1 | tee net_smoke_output.txt
  # End-to-end over a real socket: serve a generated town on an
  # ephemeral port with replay validation on, drive it with the CLI
  # query client (which replays every response against the inline
  # path), then stop the server via its stop-file. Both the client and
  # the server must report zero replay mismatches.
  rm -f /tmp/netclus_net_smoke.port /tmp/netclus_net_smoke.stop
  ./build/examples/netclus_cli generate --nodes 1500 --points 3000 \
    --clusters 6 --seed 7 --out /tmp/netclus_net_smoke.net \
    2>&1 | tee -a net_smoke_output.txt
  ./build/examples/netclus_cli serve --in /tmp/netclus_net_smoke.net \
    --workers 4 --validate on --port 0 \
    --port-file /tmp/netclus_net_smoke.port \
    --stop-file /tmp/netclus_net_smoke.stop --serve-seconds 120 \
    >> net_smoke_output.txt 2>&1 &
  serve_pid=$!
  tries=0
  while [ ! -s /tmp/netclus_net_smoke.port ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "run_all: serve never published its port" >&2
      kill "$serve_pid" 2>/dev/null || true
      exit 1
    fi
    sleep 0.1
  done
  ./build/examples/netclus_cli query --in /tmp/netclus_net_smoke.net \
    --connect "127.0.0.1:$(cat /tmp/netclus_net_smoke.port)" \
    --clients 4 --queries 2000 --check on \
    2>&1 | tee -a net_smoke_output.txt
  touch /tmp/netclus_net_smoke.stop
  wait "$serve_pid"
  grep -q 'client replay: .* 0 mismatches' net_smoke_output.txt
  grep -q '^replay: .* batches validated, 0 mismatches' net_smoke_output.txt
  ./build/bench/net_throughput 2>&1 | tee -a net_smoke_output.txt
  ls BENCH_net.json
  exit 0
fi

if [ "${1:-}" = "chaos-smoke" ]; then
  configure_build
  cmake --build build
  ctest --test-dir build --output-on-failure \
    -R 'Wal|Checkpoint|Incremental|Chaos|Deadline|Cancel' \
    2>&1 | tee chaos_smoke_output.txt
  # End-to-end crash recovery: serve with a durable WAL and per-query
  # deadlines, then restart on the same log — the second run must
  # replay every mutation the first one accepted.
  rm -f /tmp/netclus_chaos_smoke.wal /tmp/netclus_chaos_smoke.wal.ckpt.a \
    /tmp/netclus_chaos_smoke.wal.ckpt.b
  ./build/examples/netclus_cli generate --nodes 1500 --points 3000 \
    --clusters 6 --seed 7 --out /tmp/netclus_chaos_smoke.net \
    2>&1 | tee -a chaos_smoke_output.txt
  ./build/examples/netclus_cli serve --in /tmp/netclus_chaos_smoke.net \
    --workers 4 --clients 4 --queries 2000 --mutations 12 --validate on \
    --wal /tmp/netclus_chaos_smoke.wal --deadline-ms 250 \
    2>&1 | tee -a chaos_smoke_output.txt
  ./build/examples/netclus_cli serve --in /tmp/netclus_chaos_smoke.net \
    --workers 4 --clients 4 --queries 1000 --mutations 0 \
    --wal /tmp/netclus_chaos_smoke.wal --deadline-ms 250 \
    2>&1 | tee -a chaos_smoke_output.txt
  grep -q '12 records replayed at boot' chaos_smoke_output.txt
  # Checkpoint + compaction round: the same world, now checkpointing
  # every 4 records. The serve replays the 12 logged mutations, adds 12
  # more, and compacts the log behind its checkpoints; `wal inspect`
  # must show a valid checkpoint, and a final kill/restart must boot
  # from it rather than from a full-log replay.
  ./build/examples/netclus_cli serve --in /tmp/netclus_chaos_smoke.net \
    --workers 4 --clients 4 --queries 1000 --mutations 12 --validate on \
    --wal /tmp/netclus_chaos_smoke.wal --wal-checkpoint-every 4 \
    2>&1 | tee -a chaos_smoke_output.txt
  ./build/examples/netclus_cli wal inspect \
    --wal /tmp/netclus_chaos_smoke.wal \
    2>&1 | tee -a chaos_smoke_output.txt
  grep -q 'checkpoint /tmp/netclus_chaos_smoke.wal.ckpt.[ab]: generation' \
    chaos_smoke_output.txt
  ./build/examples/netclus_cli serve --in /tmp/netclus_chaos_smoke.net \
    --workers 4 --clients 4 --queries 500 --mutations 0 \
    --wal /tmp/netclus_chaos_smoke.wal --wal-checkpoint-every 4 \
    2>&1 | tee -a chaos_smoke_output.txt
  grep -q 'recovered from checkpoint' chaos_smoke_output.txt
  exit 0
fi

if [ "${1:-}" = "bench-smoke" ]; then
  configure_build
  cmake --build build
  ./build/bench/bench_smoke 2>&1 | tee bench_smoke_output.txt
  # Frozen-vs-view traversal contrast: exits non-zero unless the
  # counters match exactly and the snapshot path is >= 1.3x faster.
  ./build/bench/frozen_traversal 2>&1 | tee -a bench_smoke_output.txt
  # Query-server throughput at 1/4/8 workers with the hardware-aware
  # 1->4 scaling gate, plus the publish-latency contrast (incremental
  # splice vs full rebuild on a sparse-mutation workload).
  ./build/bench/server_throughput 2>&1 | tee -a bench_smoke_output.txt
  # Plain sh has no pipefail, so the tee above swallows the harnesses'
  # exit codes — re-assert their gates from the captured output: the
  # publish-latency row must be present and no harness printed FAIL.
  grep -q 'publish latency: full .* ratio' bench_smoke_output.txt
  if grep -q 'FAIL' bench_smoke_output.txt; then
    echo "run_all: a bench gate failed (see bench_smoke_output.txt)" >&2
    exit 1
  fi
  ls BENCH_*.json
  exit 0
fi

sh scripts/lint.sh
run_tsa
configure_build
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt

# UB-freedom of the core algorithms is part of the default verify bar.
sh scripts/run_all.sh ubsan
