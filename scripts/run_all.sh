#!/bin/sh
# Builds everything, runs the test suite, and regenerates every paper
# table/figure. Outputs land in test_output.txt and bench_output.txt at
# the repository root.
#
# NETCLUS_BENCH_SCALE (default 0.1) selects the fraction of the paper's
# published dataset sizes the harnesses run at.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
