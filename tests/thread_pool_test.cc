// Tests for the shared execution layer: ThreadPool / ParallelFor
// semantics (coverage, worker-id bounds, exception propagation, inline
// serial path) and WorkspacePool lease recycling.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "graph/workspace_pool.h"

namespace netclus {
namespace {

TEST(ThreadPoolTest, ResolveNumThreadsClampsToAtLeastOne) {
  EXPECT_GE(ResolveNumThreads(0), 1u);  // 0 = hardware concurrency
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(4), 4u);
}

TEST(ThreadPoolTest, StartupShutdownCycles) {
  // Pools must come up and tear down cleanly even when never used, and
  // repeatedly.
  for (int cycle = 0; cycle < 8; ++cycle) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
  }
  ThreadPool clamped(0);
  EXPECT_GE(clamped.size(), 1u);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, uint32_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleItemRange) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  size_t seen_index = 99;
  pool.ParallelFor(1, [&](size_t i, uint32_t worker) {
    calls.fetch_add(1);
    seen_index = i;
    EXPECT_LT(worker, pool.size());
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_index, 0u);
}

TEST(ThreadPoolTest, OddRangeCoversEveryIndexExactlyOnce) {
  // n not divisible by the worker count: every index still runs exactly
  // once, and every reported worker id is in range.
  ThreadPool pool(4);
  const size_t n = 103;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<bool> worker_ok{true};
  pool.ParallelFor(n, [&](size_t i, uint32_t worker) {
    hits[i].fetch_add(1);
    if (worker >= pool.size()) worker_ok.store(false);
  });
  EXPECT_TRUE(worker_ok.load());
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, PerIndexOutputSlotsNeedNoSynchronization) {
  // The determinism contract's write pattern: each body writes only its
  // own slot, so a plain vector is safe and the result is order-free.
  ThreadPool pool(3);
  const size_t n = 50;
  std::vector<size_t> out(n, 0);
  pool.ParallelFor(n, [&](size_t i, uint32_t) { out[i] = i * i; });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(20,
                       [&](size_t i, uint32_t) {
                         if (i == 7) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a throwing loop and run subsequent loops fully.
  std::atomic<int> calls{0};
  pool.ParallelFor(10, [&](size_t, uint32_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPoolTest, FirstExceptionWinsWhenSeveralThrow) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(16, [&](size_t i, uint32_t) {
      throw std::runtime_error("item " + std::to_string(i));
    });
    FAIL() << "ParallelFor did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("item "), std::string::npos);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(17, [&](size_t, uint32_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 20u * 17u);
}

TEST(ThreadPoolTest, FreeFunctionNullPoolRunsInlineInOrder) {
  // The serial reference path: worker id 0, strictly ascending order on
  // the calling thread.
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&](size_t i, uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, FreeFunctionSingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  ParallelFor(&pool, 4, [&](size_t i, uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ThreadPoolTest, FreeFunctionNullPoolPropagatesExceptions) {
  EXPECT_THROW(ParallelFor(nullptr, 3,
                           [&](size_t i, uint32_t) {
                             if (i == 1) throw std::runtime_error("inline");
                           }),
               std::runtime_error);
}

TEST(WorkspacePoolTest, LeaseIsSizedForTheNetwork) {
  WorkspacePool pool(32);
  WorkspacePool::Lease lease = pool.Acquire();
  ASSERT_NE(lease.get(), nullptr);
  EXPECT_EQ(lease->scratch.size(), 32u);
}

TEST(WorkspacePoolTest, ReleasedWorkspaceIsRecycled) {
  WorkspacePool pool(16);
  EXPECT_EQ(pool.idle_count(), 0u);
  TraversalWorkspace* first = nullptr;
  {
    WorkspacePool::Lease lease = pool.Acquire();
    first = lease.get();
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  WorkspacePool::Lease again = pool.Acquire();
  EXPECT_EQ(again.get(), first);  // same instance, not a new allocation
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(WorkspacePoolTest, ConcurrentLeasesAreDistinct) {
  WorkspacePool pool(8);
  WorkspacePool::Lease a = pool.Acquire();
  WorkspacePool::Lease b = pool.Acquire();
  EXPECT_NE(a.get(), b.get());
}

TEST(WorkspacePoolTest, PoolSizeTracksPeakConcurrencyOnly) {
  WorkspacePool pool(8);
  {
    WorkspacePool::Lease a = pool.Acquire();
    WorkspacePool::Lease b = pool.Acquire();
    WorkspacePool::Lease c = pool.Acquire();
  }
  EXPECT_EQ(pool.idle_count(), 3u);
  // Many sequential acquire/release rounds never grow the pool further.
  for (int i = 0; i < 10; ++i) {
    WorkspacePool::Lease lease = pool.Acquire();
  }
  EXPECT_EQ(pool.idle_count(), 3u);
}

TEST(WorkspacePoolTest, LeasesUnderParallelForShareNothing) {
  // The usage pattern from DBSCAN: one lease per worker, addressed by the
  // worker id ParallelFor reports.
  ThreadPool exec(4);
  WorkspacePool workspaces(64);
  std::vector<WorkspacePool::Lease> leases;
  leases.reserve(exec.size());
  for (uint32_t w = 0; w < exec.size(); ++w) {
    leases.push_back(workspaces.Acquire());
  }
  std::vector<int> out(200, -1);
  exec.ParallelFor(out.size(), [&](size_t i, uint32_t worker) {
    TraversalWorkspace* ws = leases[worker].get();
    ws->settled.clear();
    ws->settled.emplace_back(static_cast<NodeId>(i % 64), 1.0);
    out[i] = static_cast<int>(ws->settled.size());
  });
  for (int v : out) EXPECT_EQ(v, 1);
}

}  // namespace
}  // namespace netclus
