// Tests for the FrozenGraph CSR snapshot (src/graph/frozen_graph.*):
// neighbor-sequence equality with the source view on random networks,
// Freeze() on both view implementations (in-memory and disk-backed),
// edge-weight and point-range lookups, the validator's rejection of a
// corrupted snapshot, identical Dijkstra traversal counters over view
// and snapshot, and snapshot ownership across Network mutation. The
// per-algorithm frozen-vs-live bit-identity checks live in
// tests/compat/legacy_api_test.cc (they exercise the deprecated
// per-algorithm entry points).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/optics.h"
#include "core/validate.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/dijkstra.h"
#include "graph/frozen_graph.h"
#include "graph/network_store.h"
#include "netclus.h"

namespace netclus {
namespace {

// A generated network + uniform points + in-memory view + snapshot.
struct Scenario {
  GeneratedNetwork gen;
  PointSet points;
  std::optional<InMemoryNetworkView> view;
  FrozenGraph frozen;

  Scenario(NodeId nodes, PointId n_points, uint64_t seed) {
    gen = GenerateRoadNetwork({nodes, 1.3, 0.3, seed});
    points =
        std::move(GenerateUniformPoints(gen.net, n_points, seed + 1)).value();
    view.emplace(gen.net, points);
    frozen = std::move(view->Freeze()).value();
  }
};

// The property the whole refactor rests on: for every node, the CSR row
// replays the view's neighbor iteration exactly — same ids, same
// weights, same order.
void ExpectSameNeighborSequences(const NetworkView& view,
                                 const FrozenGraph& frozen) {
  ASSERT_EQ(frozen.num_nodes(), view.num_nodes());
  size_t half_edges = 0;
  for (NodeId n = 0; n < view.num_nodes(); ++n) {
    std::vector<std::pair<NodeId, double>> from_view;
    view.ForEachNeighbor(
        n, [&](NodeId m, double w) { from_view.emplace_back(m, w); });
    std::vector<std::pair<NodeId, double>> from_csr;
    frozen.ForEachNeighbor(
        n, [&](NodeId m, double w) { from_csr.emplace_back(m, w); });
    EXPECT_EQ(from_csr, from_view) << "node " << n;
    EXPECT_EQ(frozen.degree(n), from_view.size()) << "node " << n;
    half_edges += from_view.size();
  }
  EXPECT_EQ(frozen.num_half_edges(), half_edges);
}

TEST(FrozenGraphTest, NeighborSequencesMatchViewOnRandomNetworks) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    Scenario s(150, 200, seed);
    ExpectSameNeighborSequences(*s.view, s.frozen);
    EXPECT_TRUE(s.frozen.has_point_ranges());
  }
}

TEST(FrozenGraphTest, EdgeWeightMatchesViewBothDirections) {
  Scenario s(120, 80, 21);
  for (const auto& [u, v, w] : s.gen.net.Edges()) {
    EXPECT_EQ(s.frozen.EdgeWeight(u, v), w);
    EXPECT_EQ(s.frozen.EdgeWeight(v, u), w);
    EXPECT_TRUE(s.frozen.HasEdge(u, v));
  }
  // Absent edges (including out-of-range and self loops) are negative.
  EXPECT_LT(s.frozen.EdgeWeight(0, 0), 0.0);
  EXPECT_FALSE(s.frozen.HasEdge(0, 0));
}

TEST(FrozenGraphTest, EdgePointRangesMatchViewPointGroups) {
  Scenario s(100, 160, 31);
  size_t groups = 0;
  s.view->ForEachPointGroup(
      [&](NodeId u, NodeId v, PointId first, uint32_t count) {
        ++groups;
        EXPECT_EQ(s.frozen.EdgePointRange(u, v),
                  std::make_pair(first, count));
        EXPECT_EQ(s.frozen.EdgePointRange(v, u),
                  std::make_pair(first, count));
      });
  ASSERT_GT(groups, 0u);
  // An edge with no points reports an empty range.
  for (const auto& [u, v, w] : s.gen.net.Edges()) {
    auto [first, count] = s.frozen.EdgePointRange(u, v);
    if (count == 0) {
      EXPECT_EQ(first, kInvalidPointId);
      return;  // found one: done
    }
  }
}

TEST(FrozenGraphTest, FromAdjacencyCarriesNoPointRanges) {
  std::vector<std::vector<std::pair<NodeId, double>>> adj(3);
  adj[0] = {{1, 2.0}, {2, 5.0}};
  adj[1] = {{0, 2.0}};
  adj[2] = {{0, 5.0}};
  FrozenGraph g = FrozenGraph::FromAdjacency(adj);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_half_edges(), 4u);
  EXPECT_EQ(g.EdgeWeight(0, 2), 5.0);
  EXPECT_FALSE(g.has_point_ranges());
  EXPECT_EQ(g.EdgePointRange(0, 1).second, 0u);
}

TEST(FrozenGraphTest, FreezeOnDiskViewMatchesInMemoryFreeze) {
  Scenario s(140, 180, 41);
  auto bundle = std::move(DiskNetworkBundle::Create(
                              s.gen.net, s.points, 64 * 4096, 4096,
                              NodePlacement::kConnectivity, 1)
                              .value());
  Result<FrozenGraph> disk_frozen = bundle->view().Freeze();
  ASSERT_TRUE(disk_frozen.ok()) << disk_frozen.status().ToString();
  ExpectSameNeighborSequences(bundle->view(), disk_frozen.value());
  ExpectSameNeighborSequences(*s.view, disk_frozen.value());
  EXPECT_TRUE(
      ValidateFrozenGraph(bundle->view(), disk_frozen.value()).ok());
}

TEST(FrozenGraphTest, ValidatorAcceptsFaithfulSnapshot) {
  Scenario s(110, 130, 51);
  EXPECT_TRUE(ValidateFrozenGraph(*s.view, s.frozen).ok());
}

TEST(FrozenGraphTest, ValidatorRejectsCorruptedWeight) {
  Scenario s(110, 130, 52);
  ASSERT_GT(s.frozen.num_half_edges(), 0u);
  s.frozen.CorruptHalfEdgeForTest(s.frozen.num_half_edges() / 2, 0, -3.5);
  Status st = ValidateFrozenGraph(*s.view, s.frozen);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
}

TEST(FrozenGraphTest, NetworkEdgeWeightSurvivesMutation) {
  // Network::EdgeWeight serves from a cached FromAdjacency snapshot;
  // AddEdge must invalidate it so lookups never go stale.
  Network net(4);
  ASSERT_TRUE(net.AddEdge(0, 1, 1.5).ok());
  net.Freeze();
  EXPECT_EQ(net.EdgeWeight(0, 1), 1.5);
  ASSERT_TRUE(net.AddEdge(1, 2, 2.5).ok());  // invalidates the snapshot
  EXPECT_EQ(net.EdgeWeight(1, 2), 2.5);
  EXPECT_EQ(net.EdgeWeight(0, 1), 1.5);
  EXPECT_LT(net.EdgeWeight(0, 2), 0.0);
}

TEST(FrozenGraphTest, HeldSnapshotSurvivesAddEdge) {
  // The ownership rule behind RCU epochs: AddEdge drops only the
  // network's own reference to the cached snapshot. A caller-held
  // shared_ptr keeps the old CSR alive and unchanged, while the next
  // Freeze() builds a fresh snapshot reflecting the mutation.
  Network net(4);
  ASSERT_TRUE(net.AddEdge(0, 1, 1.5).ok());
  std::shared_ptr<const FrozenGraph> old_snap = net.Freeze();
  ASSERT_NE(old_snap, nullptr);
  EXPECT_EQ(old_snap->EdgeWeight(0, 1), 1.5);

  ASSERT_TRUE(net.AddEdge(1, 2, 2.5).ok());
  // The held snapshot still describes the pre-mutation adjacency.
  EXPECT_EQ(old_snap->EdgeWeight(0, 1), 1.5);
  EXPECT_LT(old_snap->EdgeWeight(1, 2), 0.0);
  EXPECT_EQ(old_snap.use_count(), 1);  // network dropped its reference

  std::shared_ptr<const FrozenGraph> new_snap = net.Freeze();
  ASSERT_NE(new_snap, nullptr);
  EXPECT_NE(new_snap, old_snap);
  EXPECT_EQ(new_snap->EdgeWeight(1, 2), 2.5);
  EXPECT_EQ(old_snap->EdgeWeight(0, 1), 1.5);
}

// Multi-source SSSP over the snapshot settles the same nodes in the
// same order with the same heap traffic as over the live view.
TEST(FrozenGraphTest, DijkstraCountersIdenticalOverViewAndSnapshot) {
  Scenario s(200, 100, 61);
  std::vector<DijkstraSource> sources = {DijkstraSource{0, 0.0},
                                         DijkstraSource{5, 1.25}};
  TraversalWorkspace ws(s.view->num_nodes());

  TraversalCounters before_view = LocalTraversalCounters();
  DijkstraDistances(*s.view, sources, &ws);
  TraversalCounters view_delta = LocalTraversalCounters() - before_view;
  std::vector<double> view_dist(s.view->num_nodes());
  for (NodeId n = 0; n < s.view->num_nodes(); ++n) {
    view_dist[n] = ws.scratch.Get(n);
  }

  TraversalCounters before_frozen = LocalTraversalCounters();
  DijkstraDistances(s.frozen, sources, &ws);
  TraversalCounters frozen_delta = LocalTraversalCounters() - before_frozen;

  EXPECT_EQ(frozen_delta.settled_nodes, view_delta.settled_nodes);
  EXPECT_EQ(frozen_delta.heap_pushes, view_delta.heap_pushes);
  EXPECT_EQ(frozen_delta.heap_pops, view_delta.heap_pops);
  for (NodeId n = 0; n < s.view->num_nodes(); ++n) {
    EXPECT_EQ(ws.scratch.Get(n), view_dist[n]) << "node " << n;
  }
}

// The per-algorithm frozen-vs-live equivalence tests moved to
// tests/compat/legacy_api_test.cc together with the other deprecated
// entry-point checks; OPTICS (not deprecated) stays here.
class FrozenRunFixture : public ::testing::Test {
 protected:
  void SetUp() override { s_.emplace(90, 140, 71); }
  std::optional<Scenario> s_;
};

TEST_F(FrozenRunFixture, OpticsIdentical) {
  OpticsOptions options;
  options.eps = 3.0;
  options.min_pts = 3;
  Result<OpticsResult> legacy = OpticsOrder(*s_->view, options);
  Result<OpticsResult> frozen = OpticsOrder(*s_->view, options, &s_->frozen);
  ASSERT_TRUE(legacy.ok() && frozen.ok());
  EXPECT_EQ(frozen.value().order, legacy.value().order);
  EXPECT_EQ(frozen.value().reachability, legacy.value().reachability);
  EXPECT_EQ(frozen.value().core_distance, legacy.value().core_distance);
}

// RunClustering freezes internally; with validation on, every algorithm
// passes ValidateFrozenGraph plus its own output audit end to end.
TEST_F(FrozenRunFixture, RunClusteringValidatesSnapshotForAllAlgorithms) {
  for (Algorithm a : {Algorithm::kKMedoids, Algorithm::kEpsLink,
                      Algorithm::kSingleLink, Algorithm::kDbscan}) {
    ClusterSpec spec;
    spec.algorithm = a;
    spec.validate = true;
    spec.kmedoids.k = 4;
    spec.kmedoids.seed = 73;
    spec.eps_link.eps = 3.0;
    spec.dbscan.eps = 3.0;
    spec.single_link.delta = 1.0;
    spec.cut_distance = 3.0;
    Result<ClusterOutput> out = RunClustering(*s_->view, spec);
    EXPECT_TRUE(out.ok()) << AlgorithmName(a) << ": "
                          << out.status().ToString();
  }
}

}  // namespace
}  // namespace netclus
