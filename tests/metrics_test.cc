// Tests for clustering quality metrics and reporting helpers.
#include <gtest/gtest.h>

#include "eval/evaluation.h"
#include "eval/metrics.h"
#include "gen/network_gen.h"

namespace netclus {
namespace {

TEST(AriTest, IdenticalPartitionsScoreOne) {
  std::vector<int> a{0, 0, 1, 1, 2};
  std::vector<int> b{5, 5, 9, 9, 7};  // same partition, different ids
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, b), 1.0);
  EXPECT_TRUE(SamePartition(a, b));
}

TEST(AriTest, KnownContingencyValue) {
  // Classic example: ARI of these two partitions is 0.24242...
  std::vector<int> a{0, 0, 0, 1, 1, 1};
  std::vector<int> b{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.242424242424, 1e-9);
}

TEST(AriTest, OppositeExtremes) {
  std::vector<int> same{0, 0, 0, 0};
  std::vector<int> split{0, 1, 2, 3};
  double ari = AdjustedRandIndex(same, split);
  EXPECT_LE(ari, 0.0 + 1e-12);  // no agreement beyond chance
}

TEST(AriTest, NoiseAsSingletons) {
  std::vector<int> truth{0, 0, 1, 1};
  std::vector<int> pred{0, 0, 1, kNoise};
  double with_noise = AdjustedRandIndex(truth, pred,
                                        NoiseHandling::kSingletons);
  double ignoring = AdjustedRandIndex(truth, pred, NoiseHandling::kIgnore);
  EXPECT_LT(with_noise, 1.0);
  EXPECT_DOUBLE_EQ(ignoring, 1.0);
}

TEST(NmiTest, IndependentPartitionsNearZero) {
  // Perfectly crossed partitions share no information.
  std::vector<int> a{0, 0, 1, 1};
  std::vector<int> b{0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 0.0, 1e-9);
}

TEST(PurityTest, MajorityLabelWins) {
  std::vector<int> truth{0, 0, 0, 1, 1, 1};
  std::vector<int> pred{7, 7, 7, 7, 8, 8};
  // Cluster 7: majority label 0 (3 of 4). Cluster 8: label 1 (2 of 2).
  EXPECT_NEAR(Purity(truth, pred), 5.0 / 6.0, 1e-12);
}

TEST(PurityTest, NoisePredictionsCountAsMisses) {
  std::vector<int> truth{0, 0};
  std::vector<int> pred{0, kNoise};
  EXPECT_NEAR(Purity(truth, pred), 0.5, 1e-12);
  EXPECT_NEAR(Purity(truth, pred, NoiseHandling::kIgnore), 1.0, 1e-12);
}

TEST(SamePartitionTest, DetectsDifferences) {
  EXPECT_TRUE(SamePartition({0, 1, 0}, {4, 2, 4}));
  EXPECT_FALSE(SamePartition({0, 1, 0}, {4, 2, 2}));
  EXPECT_FALSE(SamePartition({0, 0}, {1, kNoise}));      // noise mismatch
  EXPECT_TRUE(SamePartition({kNoise, 3}, {kNoise, 0}));
  EXPECT_FALSE(SamePartition({0, 0, 1}, {2, 2, 2}));     // merged
  EXPECT_FALSE(SamePartition({2, 2, 2}, {0, 0, 1}));     // split (other way)
  EXPECT_FALSE(SamePartition({0}, {0, 1}));              // length mismatch
}

TEST(SummarizeTest, CountsClustersAndNoise) {
  Clustering c;
  c.assignment = {0, 0, 0, 1, kNoise, kNoise, 1, 2};
  ClusterSummary s = Summarize(c);
  EXPECT_EQ(s.num_clusters, 3);
  EXPECT_EQ(s.num_points, 8u);
  EXPECT_EQ(s.noise_points, 2u);
  EXPECT_EQ(s.largest_cluster, 3u);
  EXPECT_EQ(s.smallest_cluster, 1u);
}

TEST(AsciiMapTest, RendersDominantClusters) {
  Network net = MakePathNetwork(2, 1.0);
  PointSetBuilder b;
  b.Add(0, 1, 0.1, 0);
  b.Add(0, 1, 0.9, 0);
  PointSet ps = std::move(std::move(b).Build(net)).value();
  std::vector<std::pair<double, double>> coords{{0.0, 0.0}, {1.0, 0.0}};
  Clustering c;
  c.assignment = {0, 1};
  c.num_clusters = 2;
  std::string map = AsciiClusterMap(net, ps, coords, c, 1, 10);
  // One row of 10 cells plus newline; points at x = 0.1 / 0.9 land in
  // cells 1 and 9 of the [0, 1] range.
  ASSERT_EQ(map.size(), 11u);
  EXPECT_EQ(map[1], 'a');
  EXPECT_EQ(map[9], 'b');
  EXPECT_EQ(map[10], '\n');
}

TEST(PointCoordinatesTest, InterpolatesAlongEdge) {
  Network net = MakePathNetwork(2, 4.0);
  PointSetBuilder b;
  b.Add(0, 1, 1.0, 0);  // quarter of the way
  PointSet ps = std::move(std::move(b).Build(net)).value();
  std::vector<std::pair<double, double>> coords{{0.0, 0.0}, {8.0, 4.0}};
  auto [x, y] = PointCoordinates(net, ps, coords, 0);
  EXPECT_DOUBLE_EQ(x, 2.0);
  EXPECT_DOUBLE_EQ(y, 1.0);
}

}  // namespace
}  // namespace netclus
