// Tests for the distance index subsystem (src/index/): ALT landmark
// bound sandwiching on randomized and adversarial networks, the sharded
// LRU cache (semantics + concurrent hammer), Voronoi nearest-object
// floors against brute force, result-equivalence of the indexed query
// and clustering paths, and the validator's rejection of seeded bad
// bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/validate.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/network_distance.h"
#include "index/distance_cache.h"
#include "index/distance_index.h"
#include "index/landmark_oracle.h"
#include "index/voronoi.h"
#include "netclus.h"

namespace netclus {
namespace {

double Tol(double scale) { return 1e-9 * std::max(1.0, std::abs(scale)); }

// A generated network + uniform points + index, the common setup.
struct Scenario {
  GeneratedNetwork gen;
  PointSet points;
  std::optional<InMemoryNetworkView> view;
  std::unique_ptr<DistanceIndex> index;

  Scenario(NodeId nodes, PointId n_points, uint64_t seed,
           const IndexOptions& io = DefaultOptions()) {
    gen = GenerateRoadNetwork({nodes, 1.3, 0.3, seed});
    points =
        std::move(GenerateUniformPoints(gen.net, n_points, seed + 1)).value();
    view.emplace(gen.net, points);
    index = std::move(DistanceIndex::Build(*view, io, nullptr).value());
  }

  static IndexOptions DefaultOptions() {
    IndexOptions io;
    io.enable = true;
    io.num_landmarks = 4;
    return io;
  }
};

// Exhaustive (or strided) sandwich check of the ALT bounds against the
// exact point-to-point Dijkstra.
void CheckSandwich(const NetworkView& view, const DistanceIndex& index) {
  NodeScratch scratch(view.num_nodes());
  PointId n = view.num_points();
  PointId stride = n > 64 ? n / 64 : 1;
  for (PointId p = 0; p < n; p += stride) {
    for (PointId q = 0; q < n; q += stride) {
      double exact = PointNetworkDistance(view, p, q, &scratch);
      double lb = index.LowerBound(p, q);
      double ub = index.UpperBound(p, q);
      if (exact == kInfDist) {
        EXPECT_EQ(ub, kInfDist) << "pair (" << p << ", " << q << ")";
      } else {
        EXPECT_LE(lb, exact + Tol(exact)) << "pair (" << p << ", " << q << ")";
        EXPECT_GE(ub, exact - Tol(exact)) << "pair (" << p << ", " << q << ")";
      }
    }
  }
}

TEST(LandmarkOracleTest, BoundsSandwichExactDistancesOnRandomGraphs) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    Scenario s(120, 150, seed);
    ASSERT_GT(s.index->landmarks().num_landmarks(), 0u);
    CheckSandwich(*s.view, *s.index);
  }
}

TEST(LandmarkOracleTest, BoundsSandwichOnDisconnectedNetworkWithZeroOffsets) {
  // Two generated components glued into one node space, with handcrafted
  // points including zero-offset placements (points sitting exactly on a
  // node). Cross-component pairs must come back as proven-disconnected.
  GeneratedNetwork a = GenerateRoadNetwork({40, 1.3, 0.3, 21});
  GeneratedNetwork b = GenerateRoadNetwork({40, 1.3, 0.3, 22});
  NodeId na = a.net.num_nodes();
  Network net(na + b.net.num_nodes());
  for (const Edge& e : a.net.Edges()) {
    ASSERT_TRUE(net.AddEdge(e.u, e.v, e.weight).ok());
  }
  for (const Edge& e : b.net.Edges()) {
    ASSERT_TRUE(net.AddEdge(na + e.u, na + e.v, e.weight).ok());
  }
  ASSERT_FALSE(net.IsConnected());

  PointSetBuilder builder;
  uint32_t added = 0;
  for (const Edge& e : net.Edges()) {
    // Zero-offset point on every 3rd edge, interior point on the rest.
    if (added % 3 == 0) {
      builder.Add(e.u, e.v, 0.0, -1);
    } else {
      builder.Add(e.u, e.v, 0.5 * e.weight, -1);
    }
    if (++added == 60) break;
  }
  PointSet points = std::move(std::move(builder).Build(net).value());
  InMemoryNetworkView view(net, points);

  IndexOptions io = Scenario::DefaultOptions();
  std::unique_ptr<DistanceIndex> index =
      std::move(DistanceIndex::Build(view, io, nullptr).value());
  CheckSandwich(view, *index);

  // FPS places landmarks in both components, so every cross-component
  // pair gets an infinite lower bound (a disconnection proof).
  NodeScratch scratch(view.num_nodes());
  bool saw_disconnected = false;
  for (PointId p = 0; p < points.size() && !saw_disconnected; ++p) {
    for (PointId q = p + 1; q < points.size(); ++q) {
      if (PointNetworkDistance(view, p, q, &scratch) == kInfDist) {
        EXPECT_EQ(index->LowerBound(p, q), kInfDist);
        saw_disconnected = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_disconnected);
}

TEST(VoronoiTest, FloorsMatchBruteForceWithAndWithoutExclusion) {
  Scenario s(60, 25, 31);
  const VoronoiPrecompute* voronoi = s.index->voronoi();
  ASSERT_NE(voronoi, nullptr);

  // Brute force: per point, one SSSP from its edge endpoints gives the
  // exact distance from every node to that point.
  PointId n = s.points.size();
  std::vector<std::vector<double>> to_point(n);
  for (PointId p = 0; p < n; ++p) {
    PointPos pos = s.view->PointPosition(p);
    double w = s.view->EdgeWeight(pos.u, pos.v);
    to_point[p] = DijkstraDistances(
        *s.view, {{pos.u, pos.offset}, {pos.v, w - pos.offset}});
  }
  for (NodeId node = 0; node < s.view->num_nodes(); ++node) {
    double best_all = kInfDist;
    for (PointId p = 0; p < n; ++p) {
      best_all = std::min(best_all, to_point[p][node]);
    }
    EXPECT_NEAR(voronoi->FloorExcluding(node, kInvalidPointId), best_all,
                Tol(best_all))
        << "node " << node;
    for (PointId exclude : {PointId{0}, PointId{7}, PointId{n - 1}}) {
      double best = kInfDist;
      for (PointId p = 0; p < n; ++p) {
        if (p != exclude) best = std::min(best, to_point[p][node]);
      }
      double floor = voronoi->FloorExcluding(node, exclude);
      EXPECT_NEAR(floor, best, Tol(best))
          << "node " << node << " excluding " << exclude;
    }
  }
}

TEST(DistanceCacheTest, LruSemanticsAndEviction) {
  DistanceCache cache(4, 1);  // one shard: deterministic LRU order
  double d = 0.0;
  EXPECT_FALSE(cache.Lookup(1, 2, &d));
  cache.Store(1, 2, 1.5);
  cache.Store(2, 1, 2.5);  // same unordered pair: refresh, not insert
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Lookup(2, 1, &d));
  EXPECT_EQ(d, 2.5);

  cache.Store(3, 4, 3.0);
  cache.Store(5, 6, 4.0);
  cache.Store(7, 8, 5.0);
  EXPECT_EQ(cache.size(), 4u);
  ASSERT_TRUE(cache.Lookup(1, 2, &d));  // refresh {1,2}: now {3,4} is LRU
  cache.Store(9, 10, 6.0);              // evicts {3,4}
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_FALSE(cache.Lookup(3, 4, &d));
  EXPECT_TRUE(cache.Lookup(1, 2, &d));

  DistanceCache::Counters c = cache.counters();
  EXPECT_EQ(c.stores, 6u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_GE(c.hits, 3u);
  EXPECT_GE(c.misses, 2u);
}

TEST(DistanceCacheTest, ZeroCapacityDropsEverything) {
  DistanceCache cache(0);
  cache.Store(1, 2, 1.0);
  double d = 0.0;
  EXPECT_FALSE(cache.Lookup(1, 2, &d));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DistanceCacheTest, EpochInvalidationDropsEntriesLazily) {
  DistanceCache cache(64, 4);
  for (PointId p = 0; p < 10; ++p) cache.Store(p, p + 100, 1.0 * p);
  EXPECT_EQ(cache.size(), 10u);
  uint64_t epoch_before = cache.epoch();
  cache.Invalidate();
  EXPECT_EQ(cache.epoch(), epoch_before + 1);
  EXPECT_EQ(cache.size(), 0u);
  double d = 0.0;
  EXPECT_FALSE(cache.Lookup(3, 103, &d));
  cache.Store(3, 103, 9.0);
  ASSERT_TRUE(cache.Lookup(3, 103, &d));
  EXPECT_EQ(d, 9.0);
}

// Matched by the tsan suite filter (run_all.sh tsan): concurrent writers,
// readers, and invalidators on a small cache force constant shard
// contention, eviction, and epoch-refresh races.
TEST(DistanceCacheTest, ConcurrentHammerKeepsValuesConsistent) {
  DistanceCache cache(128, 4);
  std::atomic<bool> bad_value{false};
  auto value_for = [](PointId a, PointId b) {
    return static_cast<double>(a < b ? a : b) * 1000.0 +
           static_cast<double>(a < b ? b : a);
  };
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 20000; ++i) {
        PointId a = static_cast<PointId>(rng.NextBounded(300));
        PointId b = static_cast<PointId>(rng.NextBounded(300));
        switch (i % 4) {
          case 0:
          case 1:
            cache.Store(a, b, value_for(a, b));
            break;
          case 2: {
            double d = 0.0;
            if (cache.Lookup(a, b, &d) && d != value_for(a, b)) {
              bad_value.store(true);
            }
            break;
          }
          default:
            if (i % 4096 == 3) cache.Invalidate();
            break;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_FALSE(bad_value.load());
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(DistanceIndexTest, IndexedPointDistanceMatchesExact) {
  Scenario s(100, 120, 41);
  NodeScratch scratch(s.view->num_nodes());
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    PointId p = static_cast<PointId>(rng.NextBounded(s.points.size()));
    PointId q = static_cast<PointId>(rng.NextBounded(s.points.size()));
    double exact = PointNetworkDistance(*s.view, p, q, &scratch);
    double indexed =
        PointNetworkDistance(*s.view, p, q, &scratch, s.index.get());
    EXPECT_NEAR(indexed, exact, Tol(exact)) << "pair (" << p << ", " << q
                                            << ")";
  }
  IndexStats stats = s.index->Stats();
  EXPECT_GT(stats.cache_hits + stats.cache_stores, 0u);
}

TEST(DistanceIndexTest, ThresholdedDistanceOnlyDivergesAboveTheCut) {
  Scenario s(100, 120, 51);
  NodeScratch scratch(s.view->num_nodes());
  Rng rng(52);
  const double threshold = 4.0;
  for (int i = 0; i < 500; ++i) {
    PointId p = static_cast<PointId>(rng.NextBounded(s.points.size()));
    PointId q = static_cast<PointId>(rng.NextBounded(s.points.size()));
    double exact = PointNetworkDistance(*s.view, p, q, &scratch);
    double cut = PointNetworkDistance(*s.view, p, q, &scratch, s.index.get(),
                                      threshold);
    // Below the cut the value is exact; above it any returned value must
    // still be on the same side of the cut as the exact distance.
    if (exact <= threshold) {
      EXPECT_NEAR(cut, exact, Tol(exact));
    } else {
      EXPECT_GT(cut, threshold);
    }
  }
}

TEST(DistanceIndexTest, IndexedRangeQueryMatchesPlain) {
  Scenario s(100, 120, 61);
  TraversalWorkspace ws(s.view->num_nodes());
  std::vector<RangeResult> plain, indexed;
  Rng rng(62);
  for (double eps : {0.5, 2.0, 8.0}) {
    for (int i = 0; i < 40; ++i) {
      PointId p = static_cast<PointId>(rng.NextBounded(s.points.size()));
      RangeQuery(*s.view, p, eps, &ws, &plain);
      RangeQuery(*s.view, p, eps, &ws, s.index.get(), &indexed);
      std::sort(plain.begin(), plain.end(),
                [](const RangeResult& a, const RangeResult& b) {
                  return a.id < b.id;
                });
      ASSERT_EQ(indexed.size(), plain.size())
          << "center " << p << " eps " << eps;
      for (size_t j = 0; j < plain.size(); ++j) {
        EXPECT_EQ(indexed[j].id, plain[j].id);
        EXPECT_NEAR(indexed[j].dist, plain[j].dist, Tol(plain[j].dist));
      }
    }
  }
}

TEST(DistanceIndexTest, ValidatorAcceptsHealthyIndex) {
  Scenario s(80, 90, 71);
  // Warm the cache so the cache-hit audit has entries to check.
  NodeScratch scratch(s.view->num_nodes());
  for (PointId p = 0; p + 1 < s.points.size(); p += 7) {
    (void)PointNetworkDistance(*s.view, p, p + 1, &scratch, s.index.get());
  }
  EXPECT_TRUE(ValidateDistanceAccelerator(*s.view, *s.index).ok());
}

TEST(DistanceIndexTest, ValidatorRejectsSeededBadBound) {
  Scenario s(80, 90, 81);
  ASSERT_TRUE(ValidateDistanceAccelerator(*s.view, *s.index).ok());
  // Corrupt landmark 0's distance to every point: all lower bounds
  // involving a sampled pair explode past the exact distance.
  LandmarkOracle* oracle = s.index->mutable_landmarks_for_testing();
  ASSERT_GT(oracle->num_landmarks(), 0u);
  for (PointId p = 0; p < s.points.size(); ++p) {
    oracle->CorruptEntryForTesting(0, p, p % 2 == 0 ? 1e9 : 0.0);
  }
  Status st = ValidateDistanceAccelerator(*s.view, *s.index);
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
}

TEST(DistanceIndexTest, StatsPublishDeltasIntoCollector) {
  Scenario s(60, 60, 91);
  NodeScratch scratch(s.view->num_nodes());
  for (int rep = 0; rep < 2; ++rep) {
    (void)PointNetworkDistance(*s.view, 1, 2, &scratch, s.index.get());
  }
  IndexStats stats = s.index->Stats();
  EXPECT_GE(stats.cache_stores, 1u);
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_EQ(stats.num_landmarks, s.index->landmarks().num_landmarks());
  EXPECT_TRUE(stats.voronoi_built);

  StatsCollector collector;
  s.index->PublishStats(&collector);
  EXPECT_EQ(collector.value("index.cache.hits"), stats.cache_hits);
  EXPECT_EQ(collector.value("index.cache.stores"), stats.cache_stores);
  // A second publish with no traffic in between adds nothing (deltas).
  s.index->PublishStats(&collector);
  EXPECT_EQ(collector.value("index.cache.hits"), stats.cache_hits);
}

// The headline equivalence: with validation on, every algorithm produces
// the identical clustering with the index enabled and disabled.
class IndexedRunFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    gen_ = GenerateRoadNetwork({90, 1.3, 0.3, 101});
    points_ = std::move(GenerateUniformPoints(gen_.net, 140, 102)).value();
    view_.emplace(gen_.net, points_);
  }

  void ExpectIndexedMatchesUnindexed(ClusterSpec spec) {
    spec.validate = true;
    spec.index.enable = false;
    Result<ClusterOutput> off = RunClustering(*view_, spec);
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    spec.index.enable = true;
    spec.index.num_landmarks = 4;
    Result<ClusterOutput> on = RunClustering(*view_, spec);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    EXPECT_EQ(on.value().clustering.assignment,
              off.value().clustering.assignment);
    EXPECT_EQ(on.value().clustering.num_clusters,
              off.value().clustering.num_clusters);
    EXPECT_EQ(on.value().medoids, off.value().medoids);
    EXPECT_EQ(on.value().cost, off.value().cost);
    EXPECT_EQ(on.value().index_stats.num_landmarks, 4u);
    EXPECT_EQ(off.value().index_stats.num_landmarks, 0u);
  }

  GeneratedNetwork gen_;
  PointSet points_;
  std::optional<InMemoryNetworkView> view_;
};

TEST_F(IndexedRunFixture, KMedoidsIdenticalWithIndexOnAndOff) {
  ClusterSpec spec;
  spec.algorithm = Algorithm::kKMedoids;
  spec.kmedoids.k = 5;
  spec.kmedoids.seed = 103;
  ExpectIndexedMatchesUnindexed(spec);
}

TEST_F(IndexedRunFixture, DbscanIdenticalWithIndexOnAndOff) {
  ClusterSpec spec;
  spec.algorithm = Algorithm::kDbscan;
  spec.dbscan.eps = 3.0;
  spec.dbscan.min_pts = 3;
  ExpectIndexedMatchesUnindexed(spec);
}

TEST_F(IndexedRunFixture, EpsLinkIdenticalWithIndexOnAndOff) {
  ClusterSpec spec;
  spec.algorithm = Algorithm::kEpsLink;
  spec.eps_link.eps = 3.0;
  spec.eps_link.min_sup = 3;
  ExpectIndexedMatchesUnindexed(spec);
}

TEST_F(IndexedRunFixture, SingleLinkIdenticalWithIndexOnAndOff) {
  ClusterSpec spec;
  spec.algorithm = Algorithm::kSingleLink;
  spec.single_link.delta = 1.0;
  spec.cut_distance = 3.0;
  ExpectIndexedMatchesUnindexed(spec);
}

}  // namespace
}  // namespace netclus
