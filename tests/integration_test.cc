// Integration tests: full pipelines over generated workloads, and the
// guarantee that the disk-backed storage architecture yields results
// identical to in-memory execution for every algorithm.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dbscan.h"
#include "core/eps_link.h"
#include "core/interesting_levels.h"
#include "core/kmedoids.h"
#include "core/optics.h"
#include "core/single_link.h"
#include "eval/evaluation.h"
#include "eval/metrics.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/network_distance.h"
#include "graph/network_store.h"
#include "run_helpers.h"

namespace netclus {
namespace {

struct Pipeline {
  GeneratedNetwork gen;
  GeneratedWorkload workload;
  std::unique_ptr<InMemoryNetworkView> mem_view;
  std::unique_ptr<DiskNetworkBundle> disk;
};

Pipeline MakePipeline(NodeId nodes, PointId points, uint32_t k,
                      uint64_t seed, double s_init = 0.02) {
  Pipeline p;
  p.gen = GenerateRoadNetwork({nodes, 1.3, 0.3, seed});
  ClusterWorkloadSpec spec;
  spec.total_points = points;
  spec.num_clusters = k;
  spec.outlier_fraction = 0.01;
  spec.s_init = s_init;
  spec.seed = seed + 1;
  p.workload = std::move(GenerateClusteredPoints(p.gen.net, spec).value());
  p.mem_view =
      std::make_unique<InMemoryNetworkView>(p.gen.net, p.workload.points);
  p.disk = std::move(DiskNetworkBundle::Create(p.gen.net, p.workload.points,
                                               1 << 20, 4096,
                                               NodePlacement::kConnectivity,
                                               seed)
                         .value());
  return p;
}

TEST(IntegrationTest, DiskAndMemoryKMedoidsIdentical) {
  Pipeline p = MakePipeline(400, 1200, 4, 1001);
  KMedoidsOptions opts;
  opts.k = 4;
  opts.seed = 5;
  opts.max_unsuccessful_swaps = 5;
  Result<KMedoidsResult> mem = RunKMedoids(*p.mem_view, opts);
  Result<KMedoidsResult> disk = RunKMedoids(p.disk->view(), opts);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(mem.value().medoids, disk.value().medoids);
  EXPECT_NEAR(mem.value().cost, disk.value().cost, 1e-9);
  EXPECT_EQ(mem.value().clustering.assignment,
            disk.value().clustering.assignment);
}

TEST(IntegrationTest, DiskAndMemoryEpsLinkIdentical) {
  Pipeline p = MakePipeline(400, 1500, 5, 1002);
  EpsLinkOptions opts;
  opts.eps = p.workload.max_intra_gap;
  opts.min_sup = 3;
  Result<Clustering> mem = RunEpsLink(*p.mem_view, opts);
  Result<Clustering> disk = RunEpsLink(p.disk->view(), opts);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(mem.value().assignment, disk.value().assignment);
}

TEST(IntegrationTest, DiskAndMemoryDbscanIdentical) {
  Pipeline p = MakePipeline(300, 900, 4, 1003);
  DbscanOptions opts;
  opts.eps = p.workload.max_intra_gap;
  opts.min_pts = 3;
  Result<Clustering> mem = RunDbscan(*p.mem_view, opts);
  Result<Clustering> disk = RunDbscan(p.disk->view(), opts);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(mem.value().assignment, disk.value().assignment);
}

TEST(IntegrationTest, DiskAndMemorySingleLinkIdentical) {
  Pipeline p = MakePipeline(300, 800, 4, 1004);
  SingleLinkOptions opts;
  opts.delta = 0.1 * p.workload.max_intra_gap;
  Result<SingleLinkResult> mem = RunSingleLink(*p.mem_view, opts);
  Result<SingleLinkResult> disk = RunSingleLink(p.disk->view(), opts);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(disk.ok());
  const auto& mm = mem.value().dendrogram.merges();
  const auto& dm = disk.value().dendrogram.merges();
  ASSERT_EQ(mm.size(), dm.size());
  for (size_t i = 0; i < mm.size(); ++i) {
    EXPECT_EQ(mm[i].a, dm[i].a);
    EXPECT_EQ(mm[i].b, dm[i].b);
    EXPECT_DOUBLE_EQ(mm[i].distance, dm[i].distance);
  }
}

TEST(IntegrationTest, DensityMethodsRecoverWorkload) {
  Pipeline p = MakePipeline(1200, 3000, 6, 1005);
  EpsLinkOptions opts;
  opts.eps = p.workload.max_intra_gap;
  opts.min_sup = 10;
  Clustering c = std::move(RunEpsLink(*p.mem_view, opts)).value();
  // Every planted cluster intact (never split, never lost to noise).
  for (int label = 0; label < 6; ++label) {
    int first_cluster = -2;
    for (PointId q = 0; q < p.workload.points.size(); ++q) {
      if (p.workload.points.label(q) != label) continue;
      ASSERT_NE(c.assignment[q], kNoise);
      if (first_cluster == -2) {
        first_cluster = c.assignment[q];
      } else {
        ASSERT_EQ(c.assignment[q], first_cluster);
      }
    }
  }
}

TEST(IntegrationTest, SingleLinkFindsInterestingLevelAtPlantedK) {
  // The paper's Fig. 15 claim: the sharpest merge-distance jump appears
  // when the planted clusters have just been assembled.
  Pipeline p = MakePipeline(2000, 4000, 8, 1009, /*s_init=*/0.008);
  SingleLinkOptions opts;
  opts.delta = 0.5 * p.workload.max_intra_gap;
  Result<SingleLinkResult> r = RunSingleLink(*p.mem_view, opts);
  ASSERT_TRUE(r.ok());
  InterestingLevelOptions ilo;
  ilo.window = 10;
  ilo.factor = 8.0;
  std::vector<InterestingLevel> levels =
      DetectInterestingLevels(r.value().dendrogram, ilo);
  ASSERT_FALSE(levels.empty());
  // Some detected level must sit near the planted cluster count plus
  // outliers (outliers remain singletons at that height).
  bool found_plausible = false;
  const InterestingLevel* sharpest = &levels.front();
  for (const InterestingLevel& level : levels) {
    if (level.clusters_remaining >= 8 &&
        level.clusters_remaining <= 8 + 80) {
      found_plausible = true;
    }
    if (level.jump_ratio > sharpest->jump_ratio) sharpest = &level;
  }
  EXPECT_TRUE(found_plausible);
  // Cutting just below the sharpest jump recovers the ground truth well
  // (the paper's "sharpest distance change" is the cluster level).
  Clustering cut = r.value().dendrogram.CutAtDistance(
      sharpest->distance_before, /*min_size=*/10);
  double ari = AdjustedRandIndex(p.workload.points.labels(), cut.assignment,
                                 NoiseHandling::kIgnore);
  EXPECT_GT(ari, 0.9);
}

TEST(IntegrationTest, AllMethodsAgreeOnWellSeparatedClusters) {
  Pipeline p = MakePipeline(1000, 2500, 5, 1007);
  double eps = p.workload.max_intra_gap;
  EpsLinkOptions eo;
  eo.eps = eps;
  eo.min_sup = 10;
  Clustering el = std::move(RunEpsLink(*p.mem_view, eo)).value();
  DbscanOptions dbo;
  dbo.eps = eps;
  dbo.min_pts = 2;
  Clustering db = std::move(RunDbscan(*p.mem_view, dbo)).value();
  Result<SingleLinkResult> sl =
      RunSingleLink(*p.mem_view, SingleLinkOptions{});
  ASSERT_TRUE(sl.ok());
  Clustering cut = sl.value().dendrogram.CutAtDistance(eps, /*min_size=*/10);
  // eps-link vs single-link cut: identical partitions by theory.
  EXPECT_TRUE(SamePartition(el.assignment, cut.assignment));
  // DBSCAN(MinPts=2) agrees on everything except min_sup handling; the
  // cluster structures must match on points both consider clustered.
  double ari = AdjustedRandIndex(el.assignment, db.assignment,
                                 NoiseHandling::kIgnore);
  EXPECT_GT(ari, 0.999);
}

TEST(IntegrationTest, DiskAndMemoryQueriesIdentical) {
  // The query primitives (k-NN, range, OPTICS) must also be storage-
  // agnostic.
  Pipeline p = MakePipeline(300, 800, 4, 1010);
  NodeScratch mem_scratch(p.gen.net.num_nodes());
  NodeScratch disk_scratch(p.gen.net.num_nodes());
  double eps = p.workload.max_intra_gap;
  for (PointId q = 0; q < 800; q += 97) {
    std::vector<RangeResult> a, b;
    RangeQuery(*p.mem_view, q, eps, &mem_scratch, &a);
    RangeQuery(p.disk->view(), q, eps, &disk_scratch, &b);
    auto by_id = [](const RangeResult& x, const RangeResult& y) {
      return x.id < y.id;
    };
    std::sort(a.begin(), a.end(), by_id);
    std::sort(b.begin(), b.end(), by_id);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].id, b[i].id);
      ASSERT_DOUBLE_EQ(a[i].dist, b[i].dist);
    }
    KNearestNeighbors(*p.mem_view, q, 7, &mem_scratch, &a);
    KNearestNeighbors(p.disk->view(), q, 7, &disk_scratch, &b);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].id, b[i].id);
      ASSERT_DOUBLE_EQ(a[i].dist, b[i].dist);
    }
  }
  OpticsOptions oo;
  oo.eps = eps;
  oo.min_pts = 3;
  OpticsResult om = std::move(OpticsOrder(*p.mem_view, oo).value());
  OpticsResult od = std::move(OpticsOrder(p.disk->view(), oo).value());
  EXPECT_EQ(om.order, od.order);
  EXPECT_EQ(om.reachability, od.reachability);
  EXPECT_EQ(om.core_distance, od.core_distance);
}

TEST(IntegrationTest, AsciiMapShowsPlantedClusters) {
  Pipeline p = MakePipeline(900, 2000, 4, 1008);
  Clustering truth;
  truth.assignment = p.workload.points.labels();
  truth.num_clusters = 4;
  std::string map = AsciiClusterMap(p.gen.net, p.workload.points,
                                    p.gen.coords, truth, 12, 40);
  // The map must mention every cluster letter at least once.
  for (char c : {'a', 'b', 'c', 'd'}) {
    EXPECT_NE(map.find(c), std::string::npos) << "missing cluster " << c;
  }
}

}  // namespace
}  // namespace netclus
