// Tests for the paged file and the LRU buffer manager.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/paged_file.h"

namespace netclus {
namespace {

constexpr uint32_t kPage = 4096;

std::vector<char> MakePage(char fill) {
  return std::vector<char>(kPage, fill);
}

TEST(PagedFileTest, InMemoryAllocateReadWrite) {
  auto f = PagedFile::CreateInMemory(kPage);
  EXPECT_EQ(f->num_pages(), 0u);
  Result<PageId> p0 = f->AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0.value(), 0u);
  Result<PageId> p1 = f->AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1.value(), 1u);
  EXPECT_EQ(f->num_pages(), 2u);

  std::vector<char> w = MakePage('x');
  ASSERT_TRUE(f->WritePage(1, w.data()).ok());
  std::vector<char> r(kPage);
  ASSERT_TRUE(f->ReadPage(1, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kPage), 0);
}

TEST(PagedFileTest, FreshPagesAreZeroed) {
  auto f = PagedFile::CreateInMemory(kPage);
  ASSERT_TRUE(f->AllocatePage().ok());
  std::vector<char> r(kPage, 'x');
  ASSERT_TRUE(f->ReadPage(0, r.data()).ok());
  for (char c : r) ASSERT_EQ(c, 0);
}

TEST(PagedFileTest, OutOfRangeAccessFails) {
  auto f = PagedFile::CreateInMemory(kPage);
  std::vector<char> buf(kPage);
  EXPECT_TRUE(f->ReadPage(0, buf.data()).IsOutOfRange());
  EXPECT_TRUE(f->WritePage(3, buf.data()).IsOutOfRange());
}

TEST(PagedFileTest, CountsIo) {
  auto f = PagedFile::CreateInMemory(kPage);
  ASSERT_TRUE(f->AllocatePage().ok());
  std::vector<char> buf(kPage);
  ASSERT_TRUE(f->ReadPage(0, buf.data()).ok());
  ASSERT_TRUE(f->ReadPage(0, buf.data()).ok());
  ASSERT_TRUE(f->WritePage(0, buf.data()).ok());
  EXPECT_EQ(f->stats().page_reads, 2u);
  EXPECT_EQ(f->stats().page_writes, 1u);
  EXPECT_EQ(f->stats().pages_allocated, 1u);
  f->ResetStats();
  EXPECT_EQ(f->stats().page_reads, 0u);
}

TEST(PagedFileTest, DiskBackedRoundTrip) {
  std::string path = std::filesystem::temp_directory_path() /
                     "netclus_paged_file_test.bin";
  {
    Result<std::unique_ptr<PagedFile>> f =
        PagedFile::Open(path, kPage, /*truncate=*/true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->AllocatePage().ok());
    ASSERT_TRUE(f.value()->AllocatePage().ok());
    std::vector<char> w = MakePage('q');
    ASSERT_TRUE(f.value()->WritePage(1, w.data()).ok());
  }
  {
    Result<std::unique_ptr<PagedFile>> f =
        PagedFile::Open(path, kPage, /*truncate=*/false);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(f.value()->num_pages(), 2u);
    std::vector<char> r(kPage);
    ASSERT_TRUE(f.value()->ReadPage(1, r.data()).ok());
    EXPECT_EQ(r[100], 'q');
  }
  std::filesystem::remove(path);
}

TEST(PagedFileTest, RejectsMisalignedExistingFile) {
  std::string path =
      std::filesystem::temp_directory_path() / "netclus_misaligned.bin";
  {
    FILE* fp = fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    fputs("not a page multiple", fp);
    fclose(fp);
  }
  Result<std::unique_ptr<PagedFile>> f =
      PagedFile::Open(path, kPage, /*truncate=*/false);
  EXPECT_FALSE(f.ok());
  EXPECT_TRUE(f.status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(PagedFileTest, OutOfRangeOpsCountNothing) {
  // Bounds violations are caller bugs, rejected before the I/O counters;
  // failed_reads/failed_writes track backend failures only (exercised in
  // fault_injection_test with an injecting backend).
  auto f = PagedFile::CreateInMemory(kPage);
  std::vector<char> buf(kPage);
  EXPECT_TRUE(f->ReadPage(5, buf.data()).IsOutOfRange());
  EXPECT_TRUE(f->WritePage(5, buf.data()).IsOutOfRange());
  EXPECT_EQ(f->stats().page_reads, 0u);
  EXPECT_EQ(f->stats().page_writes, 0u);
  EXPECT_EQ(f->stats().failed_reads, 0u);
  EXPECT_EQ(f->stats().failed_writes, 0u);
}

TEST(PagedFileTest, V1CompatUnchecksummedRegistrationUsesFullPage) {
  // Files registered without checksums (the v1 on-disk format path) keep
  // the full page for payload and never report Corruption for raw bytes.
  auto f = PagedFile::CreateInMemory(kPage);
  BufferManager bm(2 * kPage, kPage);
  FileId fid = bm.RegisterFile(f.get());  // checksummed defaults to false
  EXPECT_EQ(bm.usable_page_size(fid), kPage);
  {
    Result<PageHandle> h = bm.NewPage(fid);
    ASSERT_TRUE(h.ok());
    std::memset(h.value().data(), 'v', kPage);  // full page is writable
    h.value().MarkDirty();
  }
  ASSERT_TRUE(bm.FlushAll().ok());
  std::vector<char> raw(kPage);
  ASSERT_TRUE(f->ReadPage(0, raw.data()).ok());
  EXPECT_EQ(raw[kPage - 1], 'v');  // no footer was stamped
  raw[10] ^= 0x40;
  ASSERT_TRUE(f->WritePage(0, raw.data()).ok());
  (void)bm.NewPage(fid);  // evict page 0 from the 2-frame pool
  (void)bm.NewPage(fid);
  Result<PageHandle> h = bm.FetchPage(fid, 0);
  ASSERT_TRUE(h.ok());  // unverified: v1 reads never fail the CRC
  EXPECT_EQ(bm.stats().checksum_failures, 0u);
}

// ---------------------------------------------------------------- Buffer.

class BufferManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = PagedFile::CreateInMemory(kPage);
    bm_ = std::make_unique<BufferManager>(4 * kPage, kPage);  // 4 frames
    fid_ = bm_->RegisterFile(file_.get());
  }
  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<BufferManager> bm_;
  FileId fid_ = 0;
};

TEST_F(BufferManagerTest, NewPageThenFetchHits) {
  Result<PageHandle> h = bm_->NewPage(fid_);
  ASSERT_TRUE(h.ok());
  PageId id = h.value().page_id();
  h.value().data()[0] = 'a';
  h.value().MarkDirty();
  h.value().Release();

  Result<PageHandle> again = bm_->FetchPage(fid_, id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().data()[0], 'a');
  EXPECT_GE(bm_->stats().hits, 1u);
}

TEST_F(BufferManagerTest, EvictsLeastRecentlyUsed) {
  // Fill 4 frames with pages 0..3, then touch 0 so 1 becomes the victim.
  for (int i = 0; i < 4; ++i) {
    Result<PageHandle> h = bm_->NewPage(fid_);
    ASSERT_TRUE(h.ok());
    h.value().data()[0] = static_cast<char>('0' + i);
    h.value().MarkDirty();
  }
  { ASSERT_TRUE(bm_->FetchPage(fid_, 0).ok()); }
  bm_->ResetStats();
  { ASSERT_TRUE(bm_->FetchPage(fid_, 0).ok()); }  // hit
  EXPECT_EQ(bm_->stats().misses, 0u);

  Result<PageHandle> p5 = bm_->NewPage(fid_);  // must evict page 1
  ASSERT_TRUE(p5.ok());
  p5.value().Release();
  bm_->ResetStats();
  { ASSERT_TRUE(bm_->FetchPage(fid_, 0).ok()); }  // still resident
  EXPECT_EQ(bm_->stats().misses, 0u);
  { ASSERT_TRUE(bm_->FetchPage(fid_, 1).ok()); }  // was evicted
  EXPECT_EQ(bm_->stats().misses, 1u);
}

TEST_F(BufferManagerTest, DirtyPageSurvivesEviction) {
  PageId first;
  {
    Result<PageHandle> h = bm_->NewPage(fid_);
    ASSERT_TRUE(h.ok());
    first = h.value().page_id();
    std::memcpy(h.value().data(), "persist", 8);
    h.value().MarkDirty();
  }
  // Evict it by filling the pool.
  for (int i = 0; i < 8; ++i) {
    Result<PageHandle> h = bm_->NewPage(fid_);
    ASSERT_TRUE(h.ok());
  }
  Result<PageHandle> back = bm_->FetchPage(fid_, first);
  ASSERT_TRUE(back.ok());
  EXPECT_STREQ(back.value().data(), "persist");
  EXPECT_GE(bm_->stats().dirty_writebacks, 1u);
}

TEST_F(BufferManagerTest, PinnedPagesAreNotEvicted) {
  std::vector<PageHandle> pinned;
  for (int i = 0; i < 4; ++i) {
    Result<PageHandle> h = bm_->NewPage(fid_);
    ASSERT_TRUE(h.ok());
    pinned.push_back(std::move(h.value()));
  }
  EXPECT_EQ(bm_->pinned_frames(), 4u);
  Result<PageHandle> overflow = bm_->NewPage(fid_);
  EXPECT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsInternal());
  pinned.clear();
  EXPECT_EQ(bm_->pinned_frames(), 0u);
  EXPECT_TRUE(bm_->NewPage(fid_).ok());
}

TEST_F(BufferManagerTest, MultiplePinsOnSamePage) {
  Result<PageHandle> h1 = bm_->NewPage(fid_);
  ASSERT_TRUE(h1.ok());
  PageId id = h1.value().page_id();
  Result<PageHandle> h2 = bm_->FetchPage(fid_, id);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1.value().data(), h2.value().data());
  h1.value().Release();
  EXPECT_EQ(bm_->pinned_frames(), 1u);  // still pinned once
  h2.value().Release();
  EXPECT_EQ(bm_->pinned_frames(), 0u);
}

TEST_F(BufferManagerTest, FlushAllWritesDirtyFrames) {
  Result<PageHandle> h = bm_->NewPage(fid_);
  ASSERT_TRUE(h.ok());
  std::memcpy(h.value().data(), "flushme", 8);
  h.value().MarkDirty();
  h.value().Release();
  ASSERT_TRUE(bm_->FlushAll().ok());
  std::vector<char> raw(kPage);
  ASSERT_TRUE(file_->ReadPage(0, raw.data()).ok());
  EXPECT_STREQ(raw.data(), "flushme");
}

TEST_F(BufferManagerTest, TwoFilesDoNotCollide) {
  auto other = PagedFile::CreateInMemory(kPage);
  FileId fid2 = bm_->RegisterFile(other.get());
  Result<PageHandle> a = bm_->NewPage(fid_);
  ASSERT_TRUE(a.ok());
  a.value().data()[0] = 'A';
  a.value().MarkDirty();
  a.value().Release();
  Result<PageHandle> b = bm_->NewPage(fid2);
  ASSERT_TRUE(b.ok());
  b.value().data()[0] = 'B';
  b.value().MarkDirty();
  b.value().Release();
  // Both files have page 0; contents must stay distinct.
  EXPECT_EQ(bm_->FetchPage(fid_, 0).value().data()[0], 'A');
  EXPECT_EQ(bm_->FetchPage(fid2, 0).value().data()[0], 'B');
  // `other` dies before the fixture's BufferManager: flush now so the
  // manager's destructor has nothing left to write into it.
  ASSERT_TRUE(bm_->FlushAll().ok());
}

TEST_F(BufferManagerTest, UnknownFileIdRejected) {
  EXPECT_FALSE(bm_->FetchPage(99, 0).ok());
  EXPECT_FALSE(bm_->NewPage(99).ok());
}

TEST_F(BufferManagerTest, MoveTransfersPin) {
  Result<PageHandle> h = bm_->NewPage(fid_);
  ASSERT_TRUE(h.ok());
  PageHandle moved = std::move(h.value());
  EXPECT_FALSE(h.value().valid());
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(bm_->pinned_frames(), 1u);
  moved.Release();
  EXPECT_EQ(bm_->pinned_frames(), 0u);
}

// Randomized consistency: the buffered view must always match a shadow
// array, across evictions and writebacks.
TEST(BufferManagerPropertyTest, RandomWorkloadMatchesShadow) {
  auto file = PagedFile::CreateInMemory(kPage);
  BufferManager bm(8 * kPage, kPage);  // small pool forces evictions
  FileId fid = bm.RegisterFile(file.get());
  Rng rng(77);
  std::vector<std::vector<char>> shadow;
  for (int op = 0; op < 3000; ++op) {
    if (shadow.empty() || rng.NextBernoulli(0.05)) {
      Result<PageHandle> h = bm.NewPage(fid);
      ASSERT_TRUE(h.ok());
      shadow.emplace_back(kPage, 0);
      continue;
    }
    PageId id = static_cast<PageId>(rng.NextBounded(shadow.size()));
    Result<PageHandle> h = bm.FetchPage(fid, id);
    ASSERT_TRUE(h.ok());
    ASSERT_EQ(std::memcmp(h.value().data(), shadow[id].data(), kPage), 0)
        << "page " << id << " diverged at op " << op;
    if (rng.NextBernoulli(0.5)) {
      char val = static_cast<char>(rng.NextBounded(256));
      size_t off = rng.NextBounded(kPage);
      h.value().data()[off] = val;
      shadow[id][off] = val;
      h.value().MarkDirty();
    }
  }
}

}  // namespace
}  // namespace netclus
