// Tests for the binary wire codec (net/wire.h): round-trip
// bit-exactness for every request/response/status shape, every-byte
// corruption and every-prefix truncation rejection sweeps (the
// torn-tail discipline of tests/wal_test.cc applied to the stream
// framing), and a hostile-bytes soak — the decoder must classify, never
// crash.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/dijkstra.h"
#include "net/wire.h"
#include "server/query.h"

namespace netclus {
namespace {

// Requests whose every field carries entropy: non-representable
// doubles, ids near the unsigned edge, all kinds. Several ids exceed
// 2^32 — the version-2 wire carries full 64-bit ObjectIds, and the
// widened fields must round-trip without truncation.
std::vector<QueryRequest> SampleRequests() {
  std::vector<QueryRequest> out;
  out.push_back(QueryRequest::PointDistance(3, 0x7fffffffu));
  out.push_back(QueryRequest::PointDistance(0x100000001ull,
                                            0xfedcba9876543210ull));
  QueryRequest range = QueryRequest::Range(0xdeadbeef12345678ull, 0.1 + 0.2);
  range.deadline_ms = 12.75;
  out.push_back(range);
  QueryRequest nearest = QueryRequest::NearestObject(0, 5);
  nearest.deadline_ms = 1e-3;
  out.push_back(nearest);
  out.push_back(QueryRequest::ClusterMembership(kInvalidObjectId - 1));
  out.push_back(QueryRequest::Healthz());
  return out;
}

std::vector<QueryResponse> SampleResponses() {
  std::vector<QueryResponse> out;
  QueryResponse dist;
  dist.kind = QueryKind::kPointDistance;
  dist.distance = kInfDist;  // disconnected pair: infinity must survive
  dist.epoch = 0xdeadbeefcafef00dull;
  out.push_back(dist);
  QueryResponse range;
  range.kind = QueryKind::kRange;
  range.health = ServerHealth::kDegraded;
  range.epoch = 2;
  for (uint32_t i = 0; i < 17; ++i) {
    range.results.push_back({i * 7 + 1, 0.1 * i + 0.7});
  }
  out.push_back(range);
  QueryResponse nearest;
  nearest.kind = QueryKind::kNearestObject;
  nearest.results.push_back({42, std::numeric_limits<double>::denorm_min()});
  // Result ids are 64-bit on the wire too: an id past 2^32 must come
  // back intact.
  nearest.results.push_back({0x123456789abcdef0ull, 0.5});
  out.push_back(nearest);
  QueryResponse member;
  member.kind = QueryKind::kClusterMembership;
  member.cluster_id = -1;  // noise label: the sign must survive the wire
  out.push_back(member);
  QueryResponse hz;
  hz.kind = QueryKind::kHealthz;
  hz.health = ServerHealth::kStopping;
  hz.epoch = 9;
  out.push_back(hz);
  return out;
}

// Extracts the single frame `encoded` holds, expecting success.
WireFrame MustDecode(const std::string& encoded) {
  FrameReader reader;
  reader.Append(encoded.data(), encoded.size());
  WireFrame frame;
  bool got = false;
  const Status s = reader.Next(&frame, &got);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(got);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
  return frame;
}

TEST(WireCodec, QueryRoundTripIsBitExact) {
  for (const QueryRequest& req : SampleRequests()) {
    const std::string encoded = EncodeQueryFrame(req);
    ASSERT_EQ(encoded.size(), kFrameHeaderBytes + 40);
    const WireFrame frame = MustDecode(encoded);
    EXPECT_EQ(frame.type, FrameType::kQuery);
    QueryRequest got;
    ASSERT_TRUE(
        DecodeQueryPayload(frame.payload.data(), frame.payload.size(), &got)
            .ok());
    EXPECT_EQ(got.kind, req.kind);
    EXPECT_EQ(got.a, req.a);
    EXPECT_EQ(got.b, req.b);
    EXPECT_EQ(std::memcmp(&got.eps, &req.eps, sizeof(double)), 0);
    EXPECT_EQ(got.k, req.k);
    EXPECT_EQ(std::memcmp(&got.deadline_ms, &req.deadline_ms, sizeof(double)),
              0);
  }
}

TEST(WireCodec, ResponseRoundTripIsBitExact) {
  for (const QueryResponse& resp : SampleResponses()) {
    const std::string encoded = EncodeResponseFrame(resp);
    const WireFrame frame = MustDecode(encoded);
    EXPECT_EQ(frame.type, FrameType::kResponse);
    QueryResponse got;
    ASSERT_TRUE(
        DecodeResponsePayload(frame.payload.data(), frame.payload.size(), &got)
            .ok());
    // ResponsePayloadsEqual is the serving stack's own replay
    // comparator (doubles exact); the epoch and result list are checked
    // on top since the comparator scopes them out for some kinds.
    EXPECT_TRUE(ResponsePayloadsEqual(got, resp));
    EXPECT_EQ(got.health, resp.health);
    EXPECT_EQ(got.epoch, resp.epoch);
    ASSERT_EQ(got.results.size(), resp.results.size());
    for (size_t i = 0; i < got.results.size(); ++i) {
      EXPECT_EQ(got.results[i].id, resp.results[i].id);
      EXPECT_EQ(std::memcmp(&got.results[i].dist, &resp.results[i].dist,
                            sizeof(double)),
                0);
    }
  }
}

TEST(WireCodec, StatusRoundTripCoversEveryCodeRetryAndHealth) {
  const Status::Code codes[] = {
      Status::Code::kInvalidArgument, Status::Code::kNotFound,
      Status::Code::kOutOfRange,      Status::Code::kIOError,
      Status::Code::kCorruption,      Status::Code::kInternal,
      Status::Code::kUnavailable,     Status::Code::kDeadlineExceeded,
  };
  const ServerHealth healths[] = {ServerHealth::kServing,
                                  ServerHealth::kDegraded,
                                  ServerHealth::kStopping};
  for (Status::Code code : codes) {
    for (ServerHealth health : healths) {
      for (bool retry : {false, true}) {
        WireStatus ws;
        ws.code = code;
        // Arbitrary bytes, not text: an embedded nul must survive.
        ws.message = std::string("m\xc3\xa9ssage\0with a nul", 19);
        ws.has_retry_after = retry;
        ws.retry_after_ms = retry ? 12.5 : 0.0;
        ws.health = health;
        const std::string encoded = EncodeStatusFrame(ws);
        const WireFrame frame = MustDecode(encoded);
        EXPECT_EQ(frame.type, FrameType::kStatus);
        WireStatus got;
        ASSERT_TRUE(DecodeStatusPayload(frame.payload.data(),
                                        frame.payload.size(), &got)
                        .ok());
        EXPECT_EQ(got.code, ws.code);
        EXPECT_EQ(got.message, ws.message);
        EXPECT_EQ(got.has_retry_after, ws.has_retry_after);
        EXPECT_EQ(got.retry_after_ms, ws.retry_after_ms);
        EXPECT_EQ(got.health, ws.health);
      }
    }
  }
}

TEST(WireCodec, StatusSurvivesTheWireAsAStatus) {
  // The in-process Status -> wire -> in-process Status loop preserves
  // code, message, and the structured retry hint.
  const Status original =
      Status::UnavailableWithRetry("queue full", 37.25);
  const WireStatus ws = WireStatus::FromStatus(original,
                                               ServerHealth::kDegraded);
  const std::string encoded = EncodeStatusFrame(ws);
  const WireFrame frame = MustDecode(encoded);
  WireStatus got;
  ASSERT_TRUE(
      DecodeStatusPayload(frame.payload.data(), frame.payload.size(), &got)
          .ok());
  const Status back = got.ToStatus();
  EXPECT_EQ(back.code(), Status::Code::kUnavailable);
  EXPECT_EQ(back.message(), original.message());
  ASSERT_TRUE(back.retry_after_ms().has_value());
  EXPECT_EQ(*back.retry_after_ms(), 37.25);
  EXPECT_EQ(got.health, ServerHealth::kDegraded);
}

TEST(WireCodec, HealthzFrameIsEmpty) {
  const std::string encoded = EncodeHealthzFrame();
  EXPECT_EQ(encoded.size(), kFrameHeaderBytes);
  const WireFrame frame = MustDecode(encoded);
  EXPECT_EQ(frame.type, FrameType::kHealthz);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireCodec, PayloadDecodersRejectMalformedBytes) {
  QueryRequest req;
  QueryResponse resp;
  WireStatus ws;
  // Wrong sizes.
  EXPECT_EQ(DecodeQueryPayload("", 0, &req).code(), Status::Code::kCorruption);
  EXPECT_EQ(DecodeResponsePayload("", 0, &resp).code(),
            Status::Code::kCorruption);
  EXPECT_EQ(DecodeStatusPayload("", 0, &ws).code(), Status::Code::kCorruption);
  // Unknown query kind.
  char q[40] = {};
  q[0] = 17;
  EXPECT_EQ(DecodeQueryPayload(q, sizeof(q), &req).code(),
            Status::Code::kCorruption);
  // Nonzero query padding.
  q[0] = 0;
  q[2] = 1;
  EXPECT_EQ(DecodeQueryPayload(q, sizeof(q), &req).code(),
            Status::Code::kCorruption);
  // Response announcing more results than it carries.
  char r[28] = {};
  r[24] = 5;  // num_results = 5, but zero result bytes follow
  EXPECT_EQ(DecodeResponsePayload(r, sizeof(r), &resp).code(),
            Status::Code::kCorruption);
  // A kStatus frame carrying kOk is hostile: success never travels as
  // a status frame.
  char s[16] = {};
  EXPECT_EQ(DecodeStatusPayload(s, sizeof(s), &ws).code(),
            Status::Code::kCorruption);
  // Retry-hint bytes set without the flag.
  s[0] = static_cast<char>(Status::Code::kUnavailable);
  s[5] = 0x40;  // some retry_after bits, has_retry_after still 0
  EXPECT_EQ(DecodeStatusPayload(s, sizeof(s), &ws).code(),
            Status::Code::kCorruption);
}

TEST(WireFrame, TruncationAtEveryByteIsIncompleteNeverCorrupt) {
  // A torn prefix of a valid frame is "need more bytes" at every cut
  // point — the reader must never misread a truncation as corruption
  // (or worse, as a shorter valid frame).
  const std::string encoded = EncodeResponseFrame(SampleResponses()[1]);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    FrameReader reader;
    reader.Append(encoded.data(), cut);
    WireFrame frame;
    bool got = true;
    const Status s = reader.Next(&frame, &got);
    EXPECT_TRUE(s.ok()) << "cut at " << cut << ": " << s.ToString();
    EXPECT_FALSE(got) << "cut at " << cut;
    EXPECT_EQ(reader.buffered_bytes(), cut);
  }
}

TEST(WireFrame, CorruptingAnyByteNeverYieldsAValidFrame) {
  // Flip one byte anywhere in the frame: the reader must answer
  // kCorruption (header/CRC violation) or keep waiting (a length that
  // grew within bounds) — but a complete decoded frame is impossible.
  const std::string pristine = EncodeQueryFrame(SampleRequests()[1]);
  for (size_t byte = 0; byte < pristine.size(); ++byte) {
    std::string bad = pristine;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x10);
    FrameReader reader;
    reader.Append(bad.data(), bad.size());
    WireFrame frame;
    bool got = false;
    const Status s = reader.Next(&frame, &got);
    EXPECT_FALSE(s.ok() && got) << "flipped byte " << byte
                                << " produced a valid frame";
    if (!s.ok()) {
      EXPECT_EQ(s.code(), Status::Code::kCorruption) << "byte " << byte;
    }
  }
}

TEST(WireFrame, OversizedLengthIsRejectedBeforeBuffering) {
  // A syntactically clean header announcing an absurd payload must be
  // refused from the 16 header bytes alone.
  char h[kFrameHeaderBytes] = {};
  std::memcpy(h + 4, "NCLW", 4);
  h[8] = static_cast<char>(kWireVersion);
  h[9] = static_cast<char>(FrameType::kQuery);
  const uint32_t huge = static_cast<uint32_t>(kMaxPayloadBytes) + 1;
  std::memcpy(h + 12, &huge, 4);
  FrameReader reader;
  reader.Append(h, sizeof(h));
  WireFrame frame;
  bool got = false;
  const Status s = reader.Next(&frame, &got);
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
  EXPECT_FALSE(got);
}

TEST(WireFrame, CorruptionIsStickyAcrossLaterValidBytes) {
  // Once framing is lost the stream is unrecoverable: a later valid
  // frame appended after garbage must not resynchronize the reader.
  FrameReader reader;
  const char garbage[kFrameHeaderBytes] = {'x', 'x', 'x', 'x', 'x', 'x',
                                           'x', 'x', 'x', 'x', 'x', 'x',
                                           'x', 'x', 'x', 'x'};
  reader.Append(garbage, sizeof(garbage));
  WireFrame frame;
  bool got = false;
  EXPECT_EQ(reader.Next(&frame, &got).code(), Status::Code::kCorruption);
  const std::string valid = EncodeHealthzFrame();
  reader.Append(valid.data(), valid.size());
  EXPECT_EQ(reader.Next(&frame, &got).code(), Status::Code::kCorruption);
  EXPECT_FALSE(got);
}

TEST(WireFrame, StreamReassemblesFramesFedOneByteAtATime) {
  // Several frames concatenated, dribbled in byte by byte: each frame
  // must pop out exactly once, in order, intact.
  std::string stream;
  const std::vector<QueryRequest> reqs = SampleRequests();
  for (const QueryRequest& req : reqs) stream += EncodeQueryFrame(req);
  stream += EncodeHealthzFrame();

  FrameReader reader;
  std::vector<WireFrame> frames;
  for (char c : stream) {
    reader.Append(&c, 1);
    WireFrame frame;
    bool got = false;
    ASSERT_TRUE(reader.Next(&frame, &got).ok());
    if (got) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), reqs.size() + 1);
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(frames[i].type, FrameType::kQuery);
    QueryRequest got;
    ASSERT_TRUE(DecodeQueryPayload(frames[i].payload.data(),
                                   frames[i].payload.size(), &got)
                    .ok());
    EXPECT_EQ(got.kind, reqs[i].kind);
    EXPECT_EQ(got.a, reqs[i].a);
  }
  EXPECT_EQ(frames.back().type, FrameType::kHealthz);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(WireFrame, RandomBytesSoakClassifiesWithoutCrashing) {
  // 64 streams of seeded random garbage: every outcome must be a clean
  // classification (frame, need-more, or corruption) — never a crash,
  // never unbounded buffering.
  Rng rng(20260809);
  for (int round = 0; round < 64; ++round) {
    FrameReader reader;
    Status verdict = Status::OK();
    for (int chunk = 0; chunk < 32 && verdict.ok(); ++chunk) {
      char buf[64];
      for (char& c : buf) {
        c = static_cast<char>(rng.NextBounded(256));
      }
      reader.Append(buf, sizeof(buf));
      WireFrame frame;
      bool got = false;
      verdict = reader.Next(&frame, &got);
    }
    // Random 16-byte headers almost surely break magic/CRC; either way
    // the reader stayed bounded and classified.
    EXPECT_LE(reader.buffered_bytes(), 64u * 32u);
  }
}

}  // namespace
}  // namespace netclus
