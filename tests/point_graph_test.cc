// Tests for the Section 3.2 point-graph transformation and the
// parameter-suggestion helpers.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/parameter_selection.h"
#include "core/point_graph.h"
#include "gen/network_gen.h"
#include "gen/workload_gen.h"
#include "graph/dijkstra.h"

namespace netclus {
namespace {

TEST(PointGraphTest, ChainOnOneEdge) {
  Network net = MakePathNetwork(2, 10.0);
  PointSetBuilder b;
  for (double off : {2.0, 5.0, 9.0}) b.Add(0, 1, off, 0);
  PointSet ps = std::move(std::move(b).Build(net)).value();
  InMemoryNetworkView view(net, ps);
  PointGraph pg = std::move(BuildPointGraph(view).value());
  // A path network yields a path graph: 0-1, 1-2 only.
  EXPECT_EQ(pg.graph.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(pg.graph.EdgeWeight(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(pg.graph.EdgeWeight(1, 2), 4.0);
  EXPECT_FALSE(pg.graph.HasEdge(0, 2));  // blocked by point 1
}

TEST(PointGraphTest, RingBecomesClique) {
  // The paper's Figure 2b: objects on a ring translate to a clique.
  Network net = MakeRingNetwork(6, 1.0);
  PointSetBuilder b;
  for (NodeId i = 0; i < 6; ++i) b.Add(i, (i + 1) % 6, 0.5, 0);
  PointSet ps = std::move(std::move(b).Build(net)).value();
  InMemoryNetworkView view(net, ps);
  PointGraph pg = std::move(BuildPointGraph(view).value());
  // With one object on every ring edge each object connects exactly to
  // its two ring neighbors (all other routes pass through objects): the
  // transformed graph is a 6-cycle. The clique of the paper's Figure 2b
  // needs an object-free bypass arc — covered by the next test.
  EXPECT_EQ(pg.graph.num_edges(), 6u);
  for (PointId p = 0; p < 6; ++p) {
    EXPECT_EQ(pg.graph.neighbors(p).size(), 2u);
  }
}

TEST(PointGraphTest, OpenRingCreatesDenseGraph) {
  // Objects clustered on one arc of a ring: the opposite arc provides an
  // object-free bypass, so far-apart objects gain direct G' edges — the
  // "transformation increases complexity" effect of Section 3.2.
  Network net = MakeRingNetwork(8, 1.0);
  PointSetBuilder b;
  b.Add(0, 1, 0.5, 0);
  b.Add(1, 2, 0.5, 0);
  b.Add(2, 3, 0.5, 0);
  PointSet ps = std::move(std::move(b).Build(net)).value();
  InMemoryNetworkView view(net, ps);
  PointGraph pg = std::move(BuildPointGraph(view).value());
  // 0-1 and 1-2 along the arc, plus 0-2 around the free arc: a triangle.
  EXPECT_EQ(pg.graph.num_edges(), 3u);
  EXPECT_TRUE(pg.graph.HasEdge(0, 2));
  EXPECT_DOUBLE_EQ(pg.graph.EdgeWeight(0, 2), 6.0);  // the long way round
}

class PointGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PointGraphPropertyTest, ShortestPathsEqualNetworkDistances) {
  uint64_t seed = GetParam();
  GeneratedNetwork g = GenerateRoadNetwork({50, 1.35, 0.3, seed});
  PointSet ps = std::move(GenerateUniformPoints(g.net, 40, seed + 4)).value();
  InMemoryNetworkView view(g.net, ps);
  PointGraph pg = std::move(BuildPointGraph(view).value());
  auto pd = BrutePointDistanceMatrix(g.net, ps);
  // Dijkstra over G' must reproduce the network distances exactly.
  PointSet empty;
  InMemoryNetworkView gprime(pg.graph, empty);
  for (PointId s = 0; s < 40; s += 5) {
    std::vector<double> d = DijkstraDistances(gprime, {{s, 0.0}});
    for (PointId t = 0; t < 40; ++t) {
      ASSERT_NEAR(d[t], pd[s][t], 1e-9) << "seed " << seed << " " << s
                                        << "->" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointGraphPropertyTest,
                         ::testing::Values(61u, 62u, 63u));

TEST(PointGraphTest, DenserThanSourceNetworkOnClusteredData) {
  // Sparse objects on a sparse network: G' edge count routinely exceeds
  // the object count (the scalability argument of Section 3.2).
  GeneratedNetwork g = GenerateRoadNetwork({200, 1.4, 0.3, 71});
  PointSet ps = std::move(GenerateUniformPoints(g.net, 60, 72)).value();
  InMemoryNetworkView view(g.net, ps);
  PointGraph pg = std::move(BuildPointGraph(view).value());
  EXPECT_GT(pg.graph.num_edges(), 60u);
  EXPECT_GE(pg.candidate_edges, pg.graph.num_edges());
}

// --------------------------------------------- parameter suggestions.

TEST(ParameterSelectionTest, SuggestDeltaQuantilesOfGaps) {
  Network net = MakePathNetwork(2, 10.0);
  PointSetBuilder b;
  for (double off : {1.0, 2.0, 4.0, 8.0}) b.Add(0, 1, off, 0);  // gaps 1,2,4
  PointSet ps = std::move(std::move(b).Build(net)).value();
  InMemoryNetworkView view(net, ps);
  EXPECT_DOUBLE_EQ(SuggestDelta(view, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(SuggestDelta(view, 0.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(SuggestDelta(view, 1.0).value(), 4.0);
}

TEST(ParameterSelectionTest, SuggestDeltaNeedsDenseEdges) {
  Network net = MakePathNetwork(3, 10.0);
  PointSetBuilder b;
  b.Add(0, 1, 1.0, 0);
  b.Add(1, 2, 1.0, 0);  // one point per edge
  PointSet ps = std::move(std::move(b).Build(net)).value();
  InMemoryNetworkView view(net, ps);
  EXPECT_TRUE(SuggestDelta(view, 0.5).status().IsNotFound());
  EXPECT_TRUE(SuggestDelta(view, 2.0).status().IsInvalidArgument());
}

TEST(ParameterSelectionTest, SuggestedEpsRecoversGeneratedClusters) {
  GeneratedNetwork g = GenerateRoadNetwork({2000, 1.3, 0.3, 81});
  double total = 0.0;
  for (const Edge& e : g.net.Edges()) total += e.weight;
  ClusterWorkloadSpec spec;
  spec.total_points = 3000;
  spec.num_clusters = 5;
  spec.outlier_fraction = 0.01;
  spec.s_init = 0.05 * total / (3.0 * 2970);
  spec.seed = 82;
  GeneratedWorkload w = std::move(GenerateClusteredPoints(g.net, spec).value());
  InMemoryNetworkView view(g.net, w.points);
  EpsSuggestionOptions opts;
  opts.seed = 83;
  Result<double> eps = SuggestEps(view, opts);
  ASSERT_TRUE(eps.ok());
  // The suggestion must land in the workable band: above the typical
  // intra-cluster gap, not absurdly large.
  EXPECT_GT(eps.value(), spec.s_init);
  EXPECT_LT(eps.value(), 50 * w.max_intra_gap);
}

TEST(ParameterSelectionTest, SuggestEpsValidation) {
  Network net = MakePathNetwork(2, 1.0);
  PointSetBuilder b;
  b.Add(0, 1, 0.5, 0);
  PointSet ps = std::move(std::move(b).Build(net)).value();
  InMemoryNetworkView view(net, ps);
  EXPECT_TRUE(SuggestEps(view, EpsSuggestionOptions{}).status()
                  .IsInvalidArgument());  // one point only
}

}  // namespace
}  // namespace netclus
